package xhash

import (
	"testing"
	"testing/quick"
)

func TestFoldKnownValues(t *testing.T) {
	tests := []struct {
		v     uint64
		width uint
		want  uint64
	}{
		{0, 6, 0},
		{1, 6, 1},
		{0x3f, 6, 0x3f},
		{0x40, 6, 1},                // second subblock
		{0x41, 6, 0},                // 1 ^ 1
		{0xffffffffffffffff, 1, 0},  // 64 ones XOR to 0
		{0xffffffffffffffff, 4, 0},  // 16 subblocks of 0xf XOR to 0
		{0xfffffffffffffff, 4, 0xf}, // 15 subblocks of 0xf
		{0xf0f0, 4, 0},
		{0xf0f1, 4, 1},
	}
	for _, tc := range tests {
		if got := Fold(tc.v, tc.width); got != tc.want {
			t.Errorf("Fold(%#x, %d) = %#x, want %#x", tc.v, tc.width, got, tc.want)
		}
	}
}

func TestFoldPanicsOnBadWidth(t *testing.T) {
	for _, w := range []uint{0, 64, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Fold width %d did not panic", w)
				}
			}()
			Fold(1, w)
		}()
	}
}

// Property: the result always fits in the requested width.
func TestFoldRangeProperty(t *testing.T) {
	f := func(v uint64, w uint8) bool {
		width := uint(w%63) + 1
		return Fold(v, width) < 1<<width
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Fold is deterministic.
func TestFoldDeterministicProperty(t *testing.T) {
	f := func(v uint64, w uint8) bool {
		width := uint(w%63) + 1
		return Fold(v, width) == Fold(v, width)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: folding distributes XOR: Fold(a) ^ Fold(b) == Fold over
// subblock-wise XOR of a and b (linearity of the construction).
func TestFoldLinearityProperty(t *testing.T) {
	f := func(a, b uint64, w uint8) bool {
		width := uint(w%63) + 1
		return Fold(a, width)^Fold(b, width) == Fold(a^b, width)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashAliasesDiffer(t *testing.T) {
	// Sanity: distinct nearby pages should not all collapse to one bucket.
	seen := make(map[uint64]bool)
	for vpn := uint64(0); vpn < 16; vpn++ {
		seen[VPN(vpn, 4)] = true
	}
	if len(seen) != 16 {
		t.Errorf("16 consecutive VPNs hash to %d buckets, want 16", len(seen))
	}
}

func TestPCHashWidth(t *testing.T) {
	for pc := uint64(0x400000); pc < 0x400000+4096; pc += 7 {
		if h := PC(pc, 6); h >= 64 {
			t.Fatalf("PC hash %#x out of 6-bit range", h)
		}
	}
}

func TestBlockAddrSpreads(t *testing.T) {
	// 4096 consecutive block numbers should cover many of the 4096 buckets.
	seen := make(map[uint64]bool)
	for b := uint64(0); b < 4096; b++ {
		seen[BlockAddr(b, 12)] = true
	}
	if len(seen) < 4096 {
		t.Errorf("4096 consecutive blocks map to %d buckets, want 4096", len(seen))
	}
}
