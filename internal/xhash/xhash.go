// Package xhash provides the folding XOR hashes used by the predictors.
//
// The paper (§V-A) computes the hash of a program counter "by dividing the
// PC into subblocks and XOR-ing them"; the same construction is used for
// VPN hashes and for the 12-bit block-address hash that indexes cbPred's
// bHIST table (§V-B). Fold implements that construction for any width.
package xhash

// Fold reduces a 64-bit value to the requested number of bits by splitting
// it into width-sized subblocks and XOR-ing them together. width must be in
// [1, 63].
func Fold(v uint64, width uint) uint64 {
	if width == 0 || width > 63 {
		panic("xhash: Fold width out of range")
	}
	mask := uint64(1)<<width - 1
	if width&(width-1) == 0 {
		// Power-of-two widths admit a logarithmic fold: each halving
		// XORs the upper half of the remaining value onto the lower,
		// leaving the XOR of all width-sized subblocks in the low bits —
		// the same result as the block-serial loop below.
		for s := uint(32); s >= width; s >>= 1 {
			v ^= v >> s
		}
		return v & mask
	}
	var h uint64
	for v != 0 {
		h ^= v & mask
		v >>= width
	}
	return h
}

// PC hashes a program counter to the given number of bits. Instructions are
// at least 1 byte on x86, but hot PCs tend to differ in low bits, so the
// raw PC is folded directly.
func PC(pc uint64, bits uint) uint64 { return Fold(pc, bits) }

// VPN hashes a virtual page number to the given number of bits.
func VPN(vpn uint64, bits uint) uint64 { return Fold(vpn, bits) }

// BlockAddr hashes a physical block address to the given number of bits.
// The block-offset bits are stripped by the caller; what is folded is the
// block number so that neighbouring blocks land in different entries.
func BlockAddr(blockNum uint64, bits uint) uint64 { return Fold(blockNum, bits) }
