package sim

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/pred"
	"repro/internal/trace"
)

// warmSystem builds a dpPred+cbPred machine, warms it over a materialized
// buffer, and returns the system plus the shared buffer and post-warmup
// cursor. dpPred+cbPred is the deepest-state configuration, so it exercises
// every Clone path.
func warmSystem(t testing.TB, warm uint64) (*System, *trace.Buffer, uint64) {
	t.Helper()
	s := MustNew(smallConfig())
	dp, err := newTestDPPred(s)
	if err != nil {
		t.Fatal(err)
	}
	s.SetTLBPredictor(dp)
	cb, err := core.NewCBPred(core.DefaultCBPredConfig(s.LLC().Capacity()))
	if err != nil {
		t.Fatal(err)
	}
	s.SetLLCPredictor(cb)

	w, err := trace.ByName("sssp")
	if err != nil {
		t.Fatal(err)
	}
	buf, err := trace.Materialize(w.New(42), warm+400_000)
	if err != nil {
		t.Fatal(err)
	}
	rd := buf.Reader()
	if err := s.Run(rd, warm); err != nil {
		t.Fatal(err)
	}
	return s, buf, rd.Pos()
}

func measureFrom(t *testing.T, s *System, buf *trace.Buffer, pos, n uint64) Result {
	t.Helper()
	s.StartMeasurement()
	if err := s.Run(buf.ReaderAt(pos), n); err != nil {
		t.Fatal(err)
	}
	s.Finish()
	return s.Result()
}

// TestForkBitIdentical is the fork contract: measuring on a fork must be
// bit-identical to measuring on the master it was taken from.
func TestForkBitIdentical(t *testing.T) {
	const warm, meas = 100_000, 200_000
	s, buf, pos := warmSystem(t, warm)
	f, err := s.Fork()
	if err != nil {
		t.Fatal(err)
	}
	got := measureFrom(t, f, buf, pos, meas)
	want := measureFrom(t, s, buf, pos, meas)
	if got != want {
		t.Errorf("forked run diverged from master:\n  fork=%+v\n  master=%+v", got, want)
	}
}

// TestForkSiblingsIndependent: running one fork must not perturb another.
// Both siblings replay the same stream, so their results must be bit-equal
// regardless of execution order.
func TestForkSiblingsIndependent(t *testing.T) {
	const warm, meas = 100_000, 200_000
	s, buf, pos := warmSystem(t, warm)
	a, err := s.Fork()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Fork()
	if err != nil {
		t.Fatal(err)
	}
	ra := measureFrom(t, a, buf, pos, meas)
	rb := measureFrom(t, b, buf, pos, meas)
	if ra != rb {
		t.Errorf("sibling forks diverged:\n  a=%+v\n  b=%+v", ra, rb)
	}
}

// TestConcurrentSiblingForks runs sibling forks in parallel goroutines over
// the same shared buffer. Under -race this proves forks share no mutable
// state with each other or with the read-only trace.
func TestConcurrentSiblingForks(t *testing.T) {
	const warm, meas, n = 80_000, 150_000, 4
	s, buf, pos := warmSystem(t, warm)

	results := make([]Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		f, err := s.Fork()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, f *System) {
			defer wg.Done()
			f.StartMeasurement()
			if err := f.Run(buf.ReaderAt(pos), meas); err != nil {
				t.Error(err)
				return
			}
			f.Finish()
			results[i] = f.Result()
		}(i, f)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Errorf("concurrent fork %d diverged:\n  got=%+v\n  want=%+v", i, results[i], results[0])
		}
	}
}

// TestForkRefusals: a fork would alias live instrumentation or observer
// state, and non-clonable predictors (the two-pass oracle machinery) cannot
// be duplicated — all must be refused, not silently shallow-copied.
func TestForkRefusals(t *testing.T) {
	t.Run("accuracy", func(t *testing.T) {
		s := MustNew(smallConfig())
		if err := s.EnableAccuracyTracking(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Fork(); err == nil {
			t.Error("fork with accuracy tracking enabled was not refused")
		}
	})
	t.Run("characterize", func(t *testing.T) {
		s := MustNew(smallConfig())
		s.EnableCharacterization(1000)
		if _, err := s.Fork(); err == nil {
			t.Error("fork with characterization enabled was not refused")
		}
	})
	t.Run("recorder", func(t *testing.T) {
		s := MustNew(smallConfig())
		s.SetTLBPredictor(pred.NewRecorderTLB(pred.NewDOARecord()))
		if _, err := s.Fork(); err == nil {
			t.Error("fork with the oracle recorder installed was not refused")
		}
	})
}

// BenchmarkSystemFork prices a warm-state fork of the full dpPred+cbPred
// machine — the cost the runner pays instead of re-simulating a warmup.
func BenchmarkSystemFork(b *testing.B) {
	s, _, _ := warmSystem(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fork(); err != nil {
			b.Fatal(err)
		}
	}
}
