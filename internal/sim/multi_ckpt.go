package sim

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/ckpt"
)

// Multi-machine checkpoint framing: its own magic (a MultiSystem restore
// into a System, or vice versa, must fail on the first read), the meta
// block, scheduler state, the shared structures once, then per-tenant and
// per-core sections in index order.
const (
	multiCkptMagic   = "DPMK"
	multiCkptVersion = 1
)

// MultiCheckpointMeta identifies what a multi-machine checkpoint was taken
// from. The restoring side verifies every field that shapes future
// behavior and fast-forwards each tenant's generator by its entry in
// TenantAccesses to splice onto the same stream positions.
type MultiCheckpointMeta struct {
	Workload       string
	Seed           uint64
	Cores, Tenants int
	Quantum        uint64
	Shootdown      ShootdownPolicy
	UnmapEvery     uint64
	// Accesses is the machine-total access count at checkpoint time;
	// TenantAccesses is the per-tenant breakdown (len == Tenants).
	Accesses       uint64
	TenantAccesses []uint64
	TLBPred        string
	LLCPred        string
}

// ckptCodecs mirrors System.ckptCodecs for the shared predictors.
func (m *MultiSystem) ckptCodecs() (tlbC, llcC stateCodec, err error) {
	tlbC, ok := m.tlbPred.(stateCodec)
	if !ok {
		return nil, nil, fmt.Errorf("sim: TLB predictor %q is not checkpointable", m.tlbPred.Name())
	}
	llcC, ok = m.llcPred.(stateCodec)
	if !ok {
		return nil, nil, fmt.Errorf("sim: LLC predictor %q is not checkpointable", m.llcPred.Name())
	}
	return tlbC, llcC, nil
}

// WriteCheckpoint serializes the multi-machine's full warm state. Like the
// single-machine codec it captures pre-measurement state: take it after
// warmup, before StartMeasurement and before enabling instrumentation.
func (m *MultiSystem) WriteCheckpoint(wr io.Writer, workload string) error {
	if m.lltAcc != nil || m.lltConf != nil {
		return fmt.Errorf("sim: cannot checkpoint with instrumentation enabled")
	}
	tlbC, llcC, err := m.ckptCodecs()
	if err != nil {
		return err
	}

	w := ckpt.NewWriter(wr)
	w.String(multiCkptMagic)
	w.U16(multiCkptVersion)
	w.String(workload)
	w.U64(m.cfg.Machine.Seed)
	w.U64(uint64(len(m.cores)))
	w.U64(uint64(len(m.tenants)))
	w.U64(m.cfg.Quantum)
	w.U64(uint64(m.cfg.Shootdown))
	w.U64(m.cfg.UnmapEvery)
	w.U64(m.steps)
	for _, t := range m.tenants {
		w.U64(t.accesses)
	}
	w.String(m.tlbPred.Name())
	w.String(m.llcPred.Name())

	w.Mark("sched")
	w.U64(uint64(m.rr))
	w.U64(m.switches)
	w.U64(m.shootdowns)
	w.U64(m.shootdownFlushed)
	w.U64(m.unmaps)
	for c := range m.cores {
		w.U64(uint64(m.curTenant[c]))
		w.U64(m.sliceLeft[c])
	}

	w.Mark("shared")
	m.llt.EncodeState(w)
	m.llc.EncodeState(w)
	tlbC.EncodeState(w)
	llcC.EncodeState(w)

	for i, t := range m.tenants {
		w.Mark(fmt.Sprintf("tenant%d", i))
		w.U64(t.unmaps)
		w.U64(uint64(t.count))
		for j := 0; j < t.count; j++ {
			w.U64(uint64(t.recent[(t.head+j)%unmapRingSize]))
		}
		// Each table embeds the shared allocator's state; all snapshots
		// are taken at the same instant, so decoding them in order is
		// idempotent on the shared allocator.
		t.pt.EncodeState(w)
	}

	for i, s := range m.cores {
		w.Mark(fmt.Sprintf("core%d", i))
		w.U64(s.accesses)
		w.U64(s.walks)
		w.U64(s.shadowFills)
		w.U64(s.walkerBusyUntil)
		w.U64(s.walkQueueCycles)
		w.U64(s.stepNow)
		s.cpuCore.EncodeState(w)
		s.itlb.EncodeState(w)
		s.dtlb.EncodeState(w)
		s.l1d.EncodeState(w)
		s.l2.EncodeState(w)
		s.walk.EncodeState(w)
	}
	w.Mark("end")
	return w.Flush()
}

// ReadCheckpoint restores state written by WriteCheckpoint into a machine
// built with the identical MultiConfig and predictors. After it returns,
// fast-forward tenant t's generator by meta.TenantAccesses[t]; stepping
// the restored machine is then bit-identical to having continued the
// checkpointed run.
func (m *MultiSystem) ReadCheckpoint(rd io.Reader) (MultiCheckpointMeta, error) {
	tlbC, llcC, err := m.ckptCodecs()
	if err != nil {
		return MultiCheckpointMeta{}, err
	}

	r := ckpt.NewReader(rd)
	if magic := r.String(); r.Err() == nil && magic != multiCkptMagic {
		return MultiCheckpointMeta{}, fmt.Errorf("sim: not a multi-machine checkpoint (magic %q)", magic)
	}
	if v := r.U16(); r.Err() == nil && v != multiCkptVersion {
		return MultiCheckpointMeta{}, fmt.Errorf("sim: unsupported multi checkpoint version %d (want %d)", v, multiCkptVersion)
	}
	meta := MultiCheckpointMeta{
		Workload:   r.String(),
		Seed:       r.U64(),
		Cores:      int(r.U64()),
		Tenants:    int(r.U64()),
		Quantum:    r.U64(),
		Shootdown:  ShootdownPolicy(r.U64()),
		UnmapEvery: r.U64(),
		Accesses:   r.U64(),
	}
	if r.Err() != nil {
		return MultiCheckpointMeta{}, r.Err()
	}
	if meta.Cores != len(m.cores) || meta.Tenants != len(m.tenants) {
		return MultiCheckpointMeta{}, fmt.Errorf("sim: checkpoint machine %dc×%dt does not match configured %dc×%dt",
			meta.Cores, meta.Tenants, len(m.cores), len(m.tenants))
	}
	meta.TenantAccesses = make([]uint64, meta.Tenants)
	for i := range meta.TenantAccesses {
		meta.TenantAccesses[i] = r.U64()
	}
	meta.TLBPred = r.String()
	meta.LLCPred = r.String()
	if r.Err() != nil {
		return MultiCheckpointMeta{}, r.Err()
	}
	if meta.Seed != m.cfg.Machine.Seed {
		return MultiCheckpointMeta{}, fmt.Errorf("sim: checkpoint seed %d does not match configured %d", meta.Seed, m.cfg.Machine.Seed)
	}
	if meta.Quantum != m.cfg.Quantum || meta.Shootdown != m.cfg.Shootdown || meta.UnmapEvery != m.cfg.UnmapEvery {
		return MultiCheckpointMeta{}, fmt.Errorf("sim: checkpoint scheduling (quantum=%d shootdown=%s unmap=%d) does not match configured (quantum=%d shootdown=%s unmap=%d)",
			meta.Quantum, meta.Shootdown, meta.UnmapEvery, m.cfg.Quantum, m.cfg.Shootdown, m.cfg.UnmapEvery)
	}
	if meta.TLBPred != m.tlbPred.Name() || meta.LLCPred != m.llcPred.Name() {
		return MultiCheckpointMeta{}, fmt.Errorf("sim: checkpoint predictors (tlb=%s llc=%s) do not match installed (tlb=%s llc=%s)",
			meta.TLBPred, meta.LLCPred, m.tlbPred.Name(), m.llcPred.Name())
	}

	r.Expect("sched")
	m.steps = meta.Accesses
	m.rr = int(r.U64())
	m.switches = r.U64()
	m.shootdowns = r.U64()
	m.shootdownFlushed = r.U64()
	m.unmaps = r.U64()
	for c := range m.cores {
		m.curTenant[c] = int(r.U64())
		m.sliceLeft[c] = r.U64()
	}
	if r.Err() != nil {
		return MultiCheckpointMeta{}, r.Err()
	}
	for c, lst := range m.coreTenants {
		if len(lst) > 0 && m.curTenant[c] >= len(lst) {
			return MultiCheckpointMeta{}, fmt.Errorf("sim: checkpoint running tenant %d out of range for core %d", m.curTenant[c], c)
		}
	}

	r.Expect("shared")
	for _, c := range []stateCodec{m.llt, m.llc, tlbC, llcC} {
		if err := c.DecodeState(r); err != nil {
			return MultiCheckpointMeta{}, err
		}
	}

	for i, t := range m.tenants {
		r.Expect(fmt.Sprintf("tenant%d", i))
		t.accesses = meta.TenantAccesses[i]
		t.unmaps = r.U64()
		count := r.U64()
		if count > unmapRingSize {
			return MultiCheckpointMeta{}, fmt.Errorf("sim: checkpoint unmap ring size %d exceeds %d", count, unmapRingSize)
		}
		t.head = 0
		t.count = int(count)
		for j := 0; j < t.count; j++ {
			t.recent[j] = arch.VPN(r.U64())
		}
		if err := t.pt.DecodeState(r); err != nil {
			return MultiCheckpointMeta{}, err
		}
	}

	for i, s := range m.cores {
		r.Expect(fmt.Sprintf("core%d", i))
		s.accesses = r.U64()
		s.walks = r.U64()
		s.shadowFills = r.U64()
		s.walkerBusyUntil = r.U64()
		s.walkQueueCycles = r.U64()
		s.stepNow = r.U64()
		for _, c := range []stateCodec{s.cpuCore, s.itlb, s.dtlb, s.l1d, s.l2, s.walk} {
			if err := c.DecodeState(r); err != nil {
				return MultiCheckpointMeta{}, err
			}
		}
	}
	r.Expect("end")
	if r.Err() != nil {
		return MultiCheckpointMeta{}, r.Err()
	}

	// Rebind each core to its (restored) running tenant: the decode
	// replaced page-table trees, and the scheduler cursors may point at a
	// different tenant than at construction time.
	for c, s := range m.cores {
		t := m.tenants[0]
		if lst := m.coreTenants[c]; len(lst) > 0 {
			t = m.tenants[lst[m.curTenant[c]]]
		}
		s.asidKey = t.asidKey
		s.pt = t.pt
		s.walk.Rebind(t.pt)
	}
	return meta, nil
}
