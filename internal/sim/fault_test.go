package sim

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/faultio"
	"repro/internal/trace"
)

// TestCheckpointSurvivesNoInjectedFault sanity-checks the harness itself:
// the fault wrappers set to fire past the end of the data must be inert.
func TestCheckpointSurvivesNoInjectedFault(t *testing.T) {
	s := newCkptSystem(t)
	w, err := trace.ByName("cc")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(w.New(s.cfg.Seed), 20_000); err != nil {
		t.Fatal(err)
	}
	var ck bytes.Buffer
	if err := s.WriteCheckpoint(&ck, w.Name); err != nil {
		t.Fatal(err)
	}
	rest := newCkptSystem(t)
	r := faultio.NewFailingReader(bytes.NewReader(ck.Bytes()), int64(ck.Len())+1, nil)
	if _, err := rest.ReadCheckpoint(r); err != nil {
		t.Fatalf("restore through an inert fault wrapper failed: %v", err)
	}
}

// TestCheckpointRestoreInjectedFaults: a checkpoint whose read dies
// mid-stream, is truncated, or has a corrupted byte must fail restore with
// an error — never panic, never silently restore partial state.
func TestCheckpointRestoreInjectedFaults(t *testing.T) {
	s := newCkptSystem(t)
	w, err := trace.ByName("cc")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(w.New(s.cfg.Seed), 20_000); err != nil {
		t.Fatal(err)
	}
	var ck bytes.Buffer
	if err := s.WriteCheckpoint(&ck, w.Name); err != nil {
		t.Fatal(err)
	}
	raw := ck.Bytes()

	t.Run("read error mid-stream", func(t *testing.T) {
		rest := newCkptSystem(t)
		r := faultio.NewFailingReader(bytes.NewReader(raw), int64(len(raw)/3), nil)
		if _, err := rest.ReadCheckpoint(r); !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("err = %v, want wrapped faultio.ErrInjected", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		rest := newCkptSystem(t)
		if _, err := rest.ReadCheckpoint(faultio.Truncate(bytes.NewReader(raw), int64(len(raw)-9))); err == nil {
			t.Fatal("truncated checkpoint restored")
		}
	})
	t.Run("corrupt magic", func(t *testing.T) {
		rest := newCkptSystem(t)
		if _, err := rest.ReadCheckpoint(faultio.NewCorruptReader(bytes.NewReader(raw), 1)); err == nil {
			t.Fatal("corrupt-magic checkpoint restored")
		}
	})
}

// TestCheckpointWriteFullDisk: a sink that fills mid-write must surface the
// error from WriteCheckpoint.
func TestCheckpointWriteFullDisk(t *testing.T) {
	s := newCkptSystem(t)
	w, err := trace.ByName("cc")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(w.New(s.cfg.Seed), 20_000); err != nil {
		t.Fatal(err)
	}
	sink := faultio.NewFailingWriter(nil, 512, nil)
	if err := s.WriteCheckpoint(sink, w.Name); !errors.Is(err, faultio.ErrNoSpace) {
		t.Fatalf("err = %v, want wrapped faultio.ErrNoSpace", err)
	}
}

// TestRunContextCancellation: a canceled context must stop the simulation
// at a stride boundary with the context's error, and an uncancelable
// context must take the unchecked loop and run to completion.
func TestRunContextCancellation(t *testing.T) {
	w, err := trace.ByName("cc")
	if err != nil {
		t.Fatal(err)
	}

	s := MustNew(smallConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = s.RunContext(ctx, w.New(1), 1_000_000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled RunContext err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "canceled at access 0") {
		t.Errorf("err = %v, want the abort position in the message", err)
	}

	s2 := MustNew(smallConfig())
	if err := s2.RunContext(context.Background(), w.New(1), 50_000); err != nil {
		t.Fatalf("background RunContext err = %v", err)
	}
}

// TestRunSurfacesGeneratorError: feeding the simulator from a replayer
// over a truncated trace must fail the run, not quietly simulate the
// repeated final record.
func TestRunSurfacesGeneratorError(t *testing.T) {
	w, err := trace.ByName("cc")
	if err != nil {
		t.Fatal(err)
	}
	var rec bytes.Buffer
	if err := trace.Record(&rec, w.New(1), 1_000); err != nil {
		t.Fatal(err)
	}
	raw := rec.Bytes()
	rp, err := trace.NewReplayer(faultio.Truncate(bytes.NewReader(raw), int64(len(raw)-11)), false)
	if err != nil {
		t.Fatal(err)
	}
	s := MustNew(smallConfig())
	err = s.Run(rp, 1_000)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("err = %v, want the replayer's latched truncation error", err)
	}
}
