package sim

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/pagetable"
	"repro/internal/pred"
	"repro/internal/stats"
	"repro/internal/tlb"
	"repro/internal/trace"
	"repro/internal/walker"
)

// ShootdownPolicy selects how a TLB shootdown after an unmap invalidates
// stale translations.
type ShootdownPolicy int

const (
	// ShootdownFlushASID flushes only the unmapping tenant's entries —
	// the precise invalidation an ASID-tagged TLB offers. Private L1
	// TLBs are flushed on the tenant's own core only (tenants are pinned,
	// so no other core can hold their entries); the shared LLT is flushed
	// by ASID.
	ShootdownFlushASID ShootdownPolicy = iota
	// ShootdownFullFlush drops every entry of every TLB on every core —
	// the ASID-oblivious sledgehammer older kernels broadcast. Other
	// tenants lose their warm translations and re-walk, which is exactly
	// the cross-tenant interference the policy comparison measures.
	ShootdownFullFlush
)

// String names the policy for reports and flags.
func (p ShootdownPolicy) String() string {
	switch p {
	case ShootdownFlushASID:
		return "asid"
	case ShootdownFullFlush:
		return "full"
	}
	return fmt.Sprintf("ShootdownPolicy(%d)", int(p))
}

// ParseShootdown maps a flag value to a policy.
func ParseShootdown(s string) (ShootdownPolicy, error) {
	switch s {
	case "asid":
		return ShootdownFlushASID, nil
	case "full":
		return ShootdownFullFlush, nil
	}
	return 0, fmt.Errorf("sim: unknown shootdown policy %q (want asid or full)", s)
}

// MultiConfig describes a multi-core, multi-tenant machine: N cores with
// private L1 TLBs, L1D/L2 caches and timing cores over a shared LLT and a
// shared inclusive LLC, running M tenant address spaces over one physical
// memory.
type MultiConfig struct {
	// Machine configures each core's private structures and the shared
	// LLT/LLC geometry (one Config describes the whole machine; the
	// shared levels are built once from its LLT and LLC sections).
	Machine Config
	// Cores is the core count.
	Cores int
	// Tenants is the tenant (address space) count. Tenant t is pinned to
	// core t mod Cores.
	Tenants int
	// Quantum is the number of accesses a tenant runs before its core
	// context-switches to the next tenant sharing it. 0 never switches.
	// Cores whose tenant runs alone never switch regardless.
	Quantum uint64
	// Shootdown selects the TLB invalidation broadcast after an unmap.
	Shootdown ShootdownPolicy
	// UnmapEvery injects one page unmap (plus shootdown) per tenant every
	// UnmapEvery of that tenant's accesses. 0 disables unmapping.
	UnmapEvery uint64
}

// maxTenants bounds the ASID space: tenant IDs must fit the key bits above
// the 36-bit VPN with slack to spare; 1<<16 is far beyond any sweep.
const maxTenants = 1 << 16

func (mc MultiConfig) validate() error {
	if mc.Cores < 1 {
		return fmt.Errorf("sim: multi config needs at least one core (got %d)", mc.Cores)
	}
	if mc.Tenants < 1 {
		return fmt.Errorf("sim: multi config needs at least one tenant (got %d)", mc.Tenants)
	}
	if mc.Tenants > maxTenants {
		return fmt.Errorf("sim: %d tenants exceed the ASID space (%d)", mc.Tenants, maxTenants)
	}
	if mc.Shootdown != ShootdownFlushASID && mc.Shootdown != ShootdownFullFlush {
		return fmt.Errorf("sim: unknown shootdown policy %d", int(mc.Shootdown))
	}
	return mc.Machine.validate()
}

// unmapRingSize is how many recently-touched pages per tenant are
// candidates for unmap injection. Oldest-first unmapping from a small ring
// keeps a realistic mix: some unmapped pages are genuinely cold, some are
// about to be re-touched (the premature-kill pressure the sweep measures).
const unmapRingSize = 64

// tenantState is one address space: its page table over the shared frame
// allocator, its ASID tag, and the unmap-injection bookkeeping.
type tenantState struct {
	id      uint64
	asidKey uint64 // id << arch.VPNBits; OR-ed into every VPN while running
	core    int    // the core this tenant is pinned to
	pt      *pagetable.PageTable

	accesses uint64 // accesses this tenant has executed
	unmaps   uint64 // successful unmap injections

	// Ring of recently-touched (ASID-qualified) data pages, oldest first.
	recent [unmapRingSize]arch.VPN
	head   int
	count  int
}

// touch records a data page as recently used; adjacent duplicates are
// skipped so a streaming phase doesn't fill the ring with one page.
func (t *tenantState) touch(vpn arch.VPN) {
	if t.count > 0 && t.recent[(t.head+t.count-1)%unmapRingSize] == vpn {
		return
	}
	if t.count == unmapRingSize {
		t.recent[t.head] = vpn
		t.head = (t.head + 1) % unmapRingSize
		return
	}
	t.recent[(t.head+t.count)%unmapRingSize] = vpn
	t.count++
}

// popOldest removes and returns the oldest recently-touched page.
func (t *tenantState) popOldest() (arch.VPN, bool) {
	if t.count == 0 {
		return 0, false
	}
	vpn := t.recent[t.head]
	t.head = (t.head + 1) % unmapRingSize
	t.count--
	return vpn, true
}

// MultiSystem is N cores over a shared LLT and shared inclusive LLC,
// time-multiplexing M tenant address spaces. Scheduling is a deterministic
// round-robin: cores advance one access at a time in core order, and each
// core rotates through its pinned tenants on a fixed access quantum, so a
// run is a pure function of (MultiConfig, generators).
//
// With one core and one tenant every moving part degenerates to the
// single-System machine: the ASID key is zero (VPN keys unchanged), no
// context switch or shootdown ever fires, and the shared LLT/LLC are the
// core's own — results are bit-identical to a standalone System.
type MultiSystem struct {
	cfg MultiConfig

	cores   []*System
	tenants []*tenantState

	alloc *pagetable.Allocator
	llt   *tlb.TLB
	llc   *cache.Cache

	tlbPred pred.TLBPredictor
	llcPred pred.LLCPredictor

	// Scheduling state.
	coreTenants [][]int  // tenant indices pinned to each core
	curTenant   []int    // index into coreTenants[c] of the running tenant
	sliceLeft   []uint64 // accesses left in the running tenant's quantum
	active      []int    // cores with at least one tenant, in core order
	rr          int      // next entry of active to step

	// Counters.
	steps            uint64
	switches         uint64
	shootdowns       uint64
	shootdownFlushed uint64
	unmaps           uint64

	// Shared instrumentation (nil unless enabled). The trackers mirror
	// the shared LLT/LLC, so one instance serves every core; they are
	// assigned into each core System's hook fields and flushed exactly
	// once by Finish.
	lltAcc, llcAcc   *stats.AccuracyTracker
	lltConf, llcConf *stats.ConfusionTracker

	base multiBase
}

// multiBase is the measurement baseline for the multi-level counters.
type multiBase struct {
	steps, switches, shootdowns, shootdownFlushed, unmaps uint64
}

// NewMulti builds the multi-core machine.
func NewMulti(mc MultiConfig) (*MultiSystem, error) {
	if err := mc.validate(); err != nil {
		return nil, err
	}
	cfg := mc.Machine
	m := &MultiSystem{cfg: mc, tlbPred: pred.NullTLB{}, llcPred: pred.NullLLC{}}

	var err error
	if m.llt, err = tlb.New(cfg.LLT); err != nil {
		return nil, err
	}
	if m.llc, err = cache.New(cache.Config{
		Name: cfg.LLC.Name, Sets: cfg.LLC.sets(), Ways: cfg.LLC.Ways, Policy: cfg.LLC.Policy,
	}); err != nil {
		return nil, err
	}
	if m.alloc, err = pagetable.NewAllocator(cfg.PhysMemMB<<20/arch.PageSize, cfg.Alloc, cfg.Seed); err != nil {
		return nil, err
	}

	// Tenants draw page-table frames from the one shared allocator in
	// tenant order; tenant 0's root is the allocator's first frame,
	// exactly as in a standalone System.
	m.tenants = make([]*tenantState, mc.Tenants)
	m.coreTenants = make([][]int, mc.Cores)
	for t := range m.tenants {
		pt, err := pagetable.New(m.alloc)
		if err != nil {
			return nil, err
		}
		c := t % mc.Cores
		m.tenants[t] = &tenantState{
			id:      uint64(t),
			asidKey: uint64(t) << arch.VPNBits,
			core:    c,
			pt:      pt,
		}
		m.coreTenants[c] = append(m.coreTenants[c], t)
	}

	m.cores = make([]*System, mc.Cores)
	m.curTenant = make([]int, mc.Cores)
	m.sliceLeft = make([]uint64, mc.Cores)
	for c := range m.cores {
		s := &System{cfg: cfg, tlbPred: pred.NullTLB{}, llcPred: pred.NullLLC{},
			sampleEvery: 50_000}
		if s.itlb, err = tlb.New(cfg.L1ITLB); err != nil {
			return nil, err
		}
		if s.dtlb, err = tlb.New(cfg.L1DTLB); err != nil {
			return nil, err
		}
		s.llt = m.llt
		s.llc = m.llc
		// An idle core (no pinned tenant) still needs a bound address
		// space for its walker seam; it never steps, so tenant 0's is as
		// good as any.
		first := m.tenants[0]
		if len(m.coreTenants[c]) > 0 {
			first = m.tenants[m.coreTenants[c][0]]
		}
		s.pt = first.pt
		s.asidKey = first.asidKey
		if s.walk, err = walker.New(s.pt, cfg.PWC, s.ptFetch); err != nil {
			return nil, err
		}
		mk := func(cc CacheConfig) (*cache.Cache, error) {
			return cache.New(cache.Config{Name: cc.Name, Sets: cc.sets(), Ways: cc.Ways, Policy: cc.Policy})
		}
		if s.l1d, err = mk(cfg.L1D); err != nil {
			return nil, err
		}
		if s.l2, err = mk(cfg.L2); err != nil {
			return nil, err
		}
		core, err := cpu.New(cfg.Core)
		if err != nil {
			return nil, err
		}
		s.core = core
		s.cpuCore = core
		s.cachePredIfaces()
		if mc.Cores > 1 {
			// Inclusive-LLC back-invalidation must reach every core's
			// inner caches. The single-core default (invalidate own
			// L2/L1D) is left in place for Cores==1 so the machine stays
			// on the exact standalone code path.
			s.backInv = m.backInvalidate
		}
		m.cores[c] = s
		m.sliceLeft[c] = mc.Quantum
		if len(m.coreTenants[c]) > 0 {
			m.active = append(m.active, c)
		}
	}
	return m, nil
}

// backInvalidate drops a block evicted from the shared inclusive LLC from
// every core's inner caches.
func (m *MultiSystem) backInvalidate(key uint64) {
	for _, s := range m.cores {
		s.l2.Invalidate(key)
		s.l1d.Invalidate(key)
	}
}

// Cores returns the core count.
func (m *MultiSystem) Cores() int { return len(m.cores) }

// Tenants returns the tenant count.
func (m *MultiSystem) Tenants() int { return len(m.tenants) }

// Core exposes core i's System (tests and stats).
func (m *MultiSystem) Core(i int) *System { return m.cores[i] }

// LLT exposes the shared last-level TLB (predictor constructors need its
// backing structure).
func (m *MultiSystem) LLT() *tlb.TLB { return m.llt }

// LLC exposes the shared last-level cache.
func (m *MultiSystem) LLC() *cache.Cache { return m.llc }

// Config returns the machine configuration.
func (m *MultiSystem) Config() MultiConfig { return m.cfg }

// SetTLBPredictor installs one LLT predictor instance shared by every core
// (the LLT it guards is shared; nil restores the baseline).
func (m *MultiSystem) SetTLBPredictor(p pred.TLBPredictor) {
	if p == nil {
		p = pred.NullTLB{}
	}
	m.tlbPred = p
	for _, s := range m.cores {
		s.tlbPred = p
		s.cachePredIfaces()
	}
}

// SetLLCPredictor installs one LLC predictor instance shared by every core
// (nil restores the baseline).
func (m *MultiSystem) SetLLCPredictor(p pred.LLCPredictor) {
	if p == nil {
		p = pred.NullLLC{}
	}
	m.llcPred = p
	for _, s := range m.cores {
		s.llcPred = p
		s.cachePredIfaces()
	}
}

// Step advances the machine by one access: the next core in the fixed
// round-robin consumes one record from its running tenant's generator.
// gens holds one generator per tenant, indexed by tenant ID.
func (m *MultiSystem) Step(gens []trace.Generator) error {
	if len(gens) != len(m.tenants) {
		return fmt.Errorf("sim: %d generators for %d tenants", len(gens), len(m.tenants))
	}
	c := m.active[m.rr]
	m.rr = (m.rr + 1) % len(m.active)
	return m.stepCore(c, gens)
}

func (m *MultiSystem) stepCore(c int, gens []trace.Generator) error {
	ti := m.coreTenants[c][m.curTenant[c]]
	return m.stepCoreAccess(c, ti, gens[ti].Next())
}

// stepCoreAccess feeds one already-fetched record of tenant ti through
// core c — the shared tail of the per-access and chunked step loops.
func (m *MultiSystem) stepCoreAccess(c, ti int, a trace.Access) error {
	t := m.tenants[ti]
	s := m.cores[c]

	if err := s.Step(a); err != nil {
		return fmt.Errorf("sim: core %d tenant %d: %w", c, ti, err)
	}
	m.steps++
	t.accesses++
	if m.cfg.UnmapEvery > 0 {
		t.touch(arch.VPN(a.Addr.Page()) | arch.VPN(t.asidKey))
		if t.accesses%m.cfg.UnmapEvery == 0 {
			m.injectUnmap(t)
		}
	}
	if m.cfg.Quantum > 0 && len(m.coreTenants[c]) > 1 {
		m.sliceLeft[c]--
		if m.sliceLeft[c] == 0 {
			m.contextSwitch(c)
			m.sliceLeft[c] = m.cfg.Quantum
		}
	}
	return nil
}

// contextSwitch rotates core c to its next pinned tenant: the ASID key and
// page-table binding swap; every hardware structure keeps its contents.
// TLB entries, predictor state and page-walk-cache entries are all keyed by
// ASID-qualified VPNs, so nothing needs flushing — the incoming tenant
// simply cannot hit the outgoing tenant's entries.
func (m *MultiSystem) contextSwitch(c int) {
	lst := m.coreTenants[c]
	m.curTenant[c] = (m.curTenant[c] + 1) % len(lst)
	t := m.tenants[lst[m.curTenant[c]]]
	s := m.cores[c]
	s.asidKey = t.asidKey
	s.pt = t.pt
	s.walk.Rebind(t.pt)
	m.switches++
}

// injectUnmap unmaps the oldest recently-touched page of tenant t and
// broadcasts the TLB shootdown. The freed frame is never reallocated, so
// stale data-cache blocks are unreachable and need no invalidation; a
// later touch of the page faults in a fresh frame through a full walk.
func (m *MultiSystem) injectUnmap(t *tenantState) {
	vpn, ok := t.popOldest()
	if !ok || !t.pt.Unmap(vpn) {
		return
	}
	t.unmaps++
	m.unmaps++
	m.shootdown(t)
}

// shootdown invalidates stale TLB entries after an unmap by tenant t.
// Flushes are hardware invalidations, not replacement decisions: no
// predictor, sampler or mirror observes them, so a flush-heavy tenant
// floods the shared structures with dead entries the predictors never see
// die — the stress case the multi-tenant sweep measures.
func (m *MultiSystem) shootdown(t *tenantState) {
	m.shootdowns++
	flushed := 0
	switch m.cfg.Shootdown {
	case ShootdownFullFlush:
		for _, s := range m.cores {
			flushed += s.itlb.FlushAll()
			flushed += s.dtlb.FlushAll()
		}
		flushed += m.llt.FlushAll()
	default: // ShootdownFlushASID
		asid := t.asidKey >> arch.VPNBits
		s := m.cores[t.core] // tenants are pinned: no other core holds their entries
		flushed += s.itlb.FlushASID(asid)
		flushed += s.dtlb.FlushASID(asid)
		flushed += m.llt.FlushASID(asid)
	}
	m.shootdownFlushed += uint64(flushed)
}

// Run feeds n total accesses through the machine (round-robin across
// cores), one generator per tenant.
func (m *MultiSystem) Run(gens []trace.Generator, n uint64) error {
	return m.RunContext(context.Background(), gens, n)
}

// RunContext is Run with cancellation, checked on the same coarse stride
// as System.RunContext. When every tenant's generator supports columnar
// chunk draining it switches to the chunked step loop, which consumes
// whole chunks per tenant instead of one Generator interface call per
// access; results are bit-identical either way.
func (m *MultiSystem) RunContext(ctx context.Context, gens []trace.Generator, n uint64) error {
	if len(gens) != len(m.tenants) {
		return fmt.Errorf("sim: %d generators for %d tenants", len(gens), len(m.tenants))
	}
	if crs := chunkReaders(gens); crs != nil {
		return m.runContextChunked(ctx, gens, crs, n)
	}
	if done := ctx.Done(); done != nil {
		for i := uint64(0); i < n; i++ {
			if i&(ctxCheckStride-1) == 0 {
				select {
				case <-done:
					return fmt.Errorf("sim: canceled at access %d of %d: %w", i, n, ctx.Err())
				default:
				}
			}
			if err := m.Step(gens); err != nil {
				return fmt.Errorf("sim: access %d: %w", i, err)
			}
		}
	} else {
		for i := uint64(0); i < n; i++ {
			if err := m.Step(gens); err != nil {
				return fmt.Errorf("sim: access %d: %w", i, err)
			}
		}
	}
	for ti, g := range gens {
		if err := trace.GeneratorErr(g); err != nil {
			return fmt.Errorf("sim: tenant %d after %d total accesses: %w", ti, n, err)
		}
	}
	return nil
}

// chunkReaders returns the generators' ChunkReader views, or nil unless
// every one supports chunk draining.
func chunkReaders(gens []trace.Generator) []trace.ChunkReader {
	if len(gens) == 0 {
		return nil
	}
	crs := make([]trace.ChunkReader, len(gens))
	for i, g := range gens {
		cr, ok := g.(trace.ChunkReader)
		if !ok {
			return nil
		}
		crs[i] = cr
	}
	return crs
}

// tenantQuota computes how many accesses each tenant will consume over
// the next n machine steps. The schedule is a pure function of the
// current scheduling state (round-robin cursor, per-core tenant rotation,
// quantum remainders) and nothing an access does feeds back into it, so
// the chunked loop can replay it cheaply in advance and bound each
// tenant's generator draw to exactly its consumption — keeping generator
// positions identical to the per-access loop's, which the checkpoint
// splice protocol depends on.
func (m *MultiSystem) tenantQuota(n uint64) []uint64 {
	quota := make([]uint64, len(m.tenants))
	multi := false
	for _, lst := range m.coreTenants {
		if len(lst) > 1 {
			multi = true
			break
		}
	}
	if !multi {
		// One tenant per core: pure round-robin over the active cores,
		// in closed form.
		k := uint64(len(m.active))
		for off, c := range m.active {
			ci := (uint64(off) - uint64(m.rr) + k) % k
			share := n / k
			if ci < n%k {
				share++
			}
			quota[m.coreTenants[c][0]] = share
		}
		return quota
	}
	cur := append([]int(nil), m.curTenant...)
	slice := append([]uint64(nil), m.sliceLeft...)
	rr := m.rr
	for i := uint64(0); i < n; i++ {
		c := m.active[rr]
		rr = (rr + 1) % len(m.active)
		ti := m.coreTenants[c][cur[c]]
		quota[ti]++
		if m.cfg.Quantum > 0 && len(m.coreTenants[c]) > 1 {
			slice[c]--
			if slice[c] == 0 {
				cur[c] = (cur[c] + 1) % len(m.coreTenants[c])
				slice[c] = m.cfg.Quantum
			}
		}
	}
	return quota
}

// runContextChunked is the chunked multi-generator step loop: each tenant
// keeps a cursor into its generator's current columnar chunk and refills
// it with one NextChunk call per ctxCheckStride records, so the
// round-robin scheduler — which is unchanged, access for access — no
// longer pays a Generator interface call per access. Draws are bounded by
// the precomputed per-tenant quota so generators end at exactly the
// positions the per-access loop leaves them at. A tenant whose source can
// produce no chunk (empty trace, latched v2 decode error) degrades to
// per-access Next for exactly the accesses scheduled to it, which is what
// the per-access loop would have fed the core anyway.
func (m *MultiSystem) runContextChunked(ctx context.Context, gens []trace.Generator, crs []trace.ChunkReader, n uint64) error {
	type cursor struct {
		c   trace.Chunk
		off int
	}
	cur := make([]cursor, len(crs))
	left := m.tenantQuota(n)
	done := ctx.Done()
	for i := uint64(0); i < n; i++ {
		if done != nil && i&(ctxCheckStride-1) == 0 {
			select {
			case <-done:
				return fmt.Errorf("sim: canceled at access %d of %d: %w", i, n, ctx.Err())
			default:
			}
		}
		c := m.active[m.rr]
		m.rr = (m.rr + 1) % len(m.active)
		ti := m.coreTenants[c][m.curTenant[c]]
		tc := &cur[ti]
		if tc.off >= tc.c.Len() {
			want := left[ti]
			if want > ctxCheckStride {
				want = ctxCheckStride
			}
			ch, _ := crs[ti].NextChunk(int(want))
			left[ti] -= uint64(ch.Len())
			if ch.Len() == 0 {
				if err := m.stepCoreAccess(c, ti, crs[ti].Next()); err != nil {
					return fmt.Errorf("sim: access %d: %w", i, err)
				}
				continue
			}
			tc.c, tc.off = ch, 0
		}
		o := tc.off
		tc.off++
		a := trace.Access{
			PC:        tc.c.PC[o],
			Addr:      arch.VAddr(tc.c.VA[o]),
			Gap:       tc.c.Gap[o],
			Write:     tc.c.Flags[o]&trace.FlagWrite != 0,
			Dependent: tc.c.Flags[o]&trace.FlagDependent != 0,
		}
		if err := m.stepCoreAccess(c, ti, a); err != nil {
			return fmt.Errorf("sim: access %d: %w", i, err)
		}
	}
	for ti, g := range gens {
		if err := trace.GeneratorErr(g); err != nil {
			return fmt.Errorf("sim: tenant %d after %d total accesses: %w", ti, n, err)
		}
	}
	return nil
}

// EnableAccuracyTracking creates one pair of mirror accuracy trackers over
// the shared LLT and LLC and wires them into every core's fill/access
// hooks. One mirror per shared structure is the only correct shape:
// per-core mirrors would each see a fraction of the interleaved stream and
// diverge from the real shared contents.
func (m *MultiSystem) EnableAccuracyTracking() error {
	inner := m.llt.Inner()
	la, err := stats.NewAccuracyTracker("LLT", inner.Sets(), inner.Ways(), m.cfg.Machine.LLT.Policy)
	if err != nil {
		return err
	}
	ca, err := stats.NewAccuracyTracker("LLC", m.llc.Sets(), m.llc.Ways(), m.cfg.Machine.LLC.Policy)
	if err != nil {
		return err
	}
	m.lltAcc, m.llcAcc = la, ca
	for _, s := range m.cores {
		s.lltAcc, s.llcAcc = la, ca
	}
	return nil
}

// EnableConfusionTracking creates the shared ground-truth confusion
// trackers (true-dead / premature / missed grading) over the shared LLT
// and LLC, wired into every core like the accuracy mirrors.
func (m *MultiSystem) EnableConfusionTracking() error {
	inner := m.llt.Inner()
	lt, err := stats.NewConfusionTracker("llt", inner.Sets(), inner.Ways(), m.cfg.Machine.LLT.Policy)
	if err != nil {
		return err
	}
	ct, err := stats.NewConfusionTracker("llc", m.llc.Sets(), m.llc.Ways(), m.cfg.Machine.LLC.Policy)
	if err != nil {
		return err
	}
	m.lltConf, m.llcConf = lt, ct
	for _, s := range m.cores {
		s.lltConf, s.llcConf = lt, ct
	}
	return nil
}

// AttachMetrics publishes every core's structure counters under a
// "coreN." prefix plus the machine-level scheduling counters, and enables
// per-core latency/lifetime histograms. Registration is passive — results
// stay bit-identical with or without it.
func (m *MultiSystem) AttachMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for i, s := range m.cores {
		sub := reg.Sub(fmt.Sprintf("core%d.", i))
		s.histMemLat = sub.Histogram("hist.mem_latency")
		s.histWalkDepth = sub.Histogram("hist.walk_depth")
		s.histWalkLat = sub.Histogram("hist.walk_latency")
		s.histLLTLife = sub.Histogram("hist.llt_lifetime")
		s.histLLCLife = sub.Histogram("hist.llc_lifetime")
		s.registerMetrics(sub)
	}
	reg.RegisterProbe("multi.steps", func() float64 { return float64(m.steps) })
	reg.RegisterProbe("multi.switches", func() float64 { return float64(m.switches) })
	reg.RegisterProbe("multi.shootdowns", func() float64 { return float64(m.shootdowns) })
	reg.RegisterProbe("multi.shootdown_flushed", func() float64 { return float64(m.shootdownFlushed) })
	reg.RegisterProbe("multi.unmaps", func() float64 { return float64(m.unmaps) })
	reg.RegisterProbe("multi.cores", func() float64 { return float64(len(m.cores)) })
	reg.RegisterProbe("multi.tenants", func() float64 { return float64(len(m.tenants)) })
}

// StartMeasurement marks the end of warmup on every core and for the
// machine-level counters.
func (m *MultiSystem) StartMeasurement() {
	for _, s := range m.cores {
		s.StartMeasurement()
	}
	m.base = multiBase{
		steps:            m.steps,
		switches:         m.switches,
		shootdowns:       m.shootdowns,
		shootdownFlushed: m.shootdownFlushed,
		unmaps:           m.unmaps,
	}
}

// Finish resolves end-of-run instrumentation. Call it on the MultiSystem,
// not on individual cores: the confusion trackers are shared, and flushing
// them once is what grades each still-resident entry exactly once.
func (m *MultiSystem) Finish() {
	if m.lltConf != nil {
		m.lltConf.Flush()
		m.llcConf.Flush()
	}
}

// MultiResult summarizes a measured region of the multi-core machine.
type MultiResult struct {
	// PerCore holds each core's Result. The shared-structure counters
	// (LLT/LLC lookups and misses) and the shared accuracy/confusion
	// tallies are machine-global, so they repeat identically in every
	// per-core entry; the private counters (IPC, L1/L2, walks) are the
	// core's own.
	PerCore []Result

	// Accesses is the total access count across cores; the scheduling
	// counters cover the same region.
	Accesses         uint64
	Switches         uint64
	Shootdowns       uint64
	ShootdownFlushed uint64
	Unmaps           uint64

	// Instructions sums the cores; Cycles is the slowest core's cycle
	// count (cores run in parallel); IPC is aggregate throughput
	// (summed instructions over the slowest core's cycles).
	Instructions uint64
	Cycles       float64
	IPC          float64

	// Walks sums demand page walks across cores; LLTMPKI and LLCMPKI are
	// per-kilo-instruction over the summed instruction count.
	Walks   uint64
	LLTMPKI float64
	LLCMPKI float64

	// Shared-structure instrumentation (zero when not enabled).
	LLTAccuracy  stats.AccuracyResult
	LLCAccuracy  stats.AccuracyResult
	LLTConfusion stats.Confusion
	LLCConfusion stats.Confusion
}

// Result computes the summary for everything since StartMeasurement.
func (m *MultiSystem) Result() MultiResult {
	r := MultiResult{
		Accesses:         m.steps - m.base.steps,
		Switches:         m.switches - m.base.switches,
		Shootdowns:       m.shootdowns - m.base.shootdowns,
		ShootdownFlushed: m.shootdownFlushed - m.base.shootdownFlushed,
		Unmaps:           m.unmaps - m.base.unmaps,
	}
	var llcMisses uint64
	for _, s := range m.cores {
		cr := s.Result()
		r.PerCore = append(r.PerCore, cr)
		r.Instructions += cr.Instructions
		r.Walks += cr.Walks
		if cr.Cycles > r.Cycles {
			r.Cycles = cr.Cycles
		}
	}
	// LLC misses are counted at the shared structure; every core's Result
	// reports the same machine-global delta, so take one, not the sum.
	if len(r.PerCore) > 0 {
		llcMisses = r.PerCore[0].LLCMisses
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.Instructions) / r.Cycles
	}
	if r.Instructions > 0 {
		ki := float64(r.Instructions) / 1000
		r.LLTMPKI = float64(r.Walks) / ki
		r.LLCMPKI = float64(llcMisses) / ki
	}
	if m.lltAcc != nil {
		r.LLTAccuracy = m.lltAcc.Result()
		r.LLCAccuracy = m.llcAcc.Result()
	}
	if m.lltConf != nil {
		r.LLTConfusion = m.lltConf.Counts()
		r.LLCConfusion = m.llcConf.Counts()
	}
	return r
}
