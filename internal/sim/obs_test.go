package sim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// obsTestMix is a small two-stream workload whose footprint the machine
// fully warms, so steady-state stepping allocates nothing.
func obsTestMix(t testing.TB, seed uint64) trace.Generator {
	t.Helper()
	g, err := trace.NewMix(trace.MixSpec{
		Name:   "obs-mix",
		GapMin: 2, GapMax: 6,
		Streams: []trace.StreamSpec{
			{Label: "seq", PC: 0x400000, Pattern: trace.Sequential, Base: arch.VAddr(1 << 30), Size: 1 << 22, Weight: 3},
			{Label: "rand", PC: 0x410000, Pattern: trace.Random, Base: arch.VAddr(2 << 30), Size: 1 << 22, Weight: 1},
		},
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func runObsSystem(t testing.TB, o *obs.Observer) Result {
	t.Helper()
	cfg := DefaultConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := attachPaper(s); err != nil {
		t.Fatal(err)
	}
	s.AttachObserver(o)
	g := obsTestMix(t, 7)
	if err := s.Run(g, 60_000); err != nil {
		t.Fatal(err)
	}
	s.StartMeasurement()
	if err := s.Run(g, 120_000); err != nil {
		t.Fatal(err)
	}
	s.Finish()
	return s.Result()
}

// TestObserverDoesNotPerturbResult proves enabling tracing, interval
// sampling and metrics changes nothing about the simulation: a fixed-seed
// run with full observability yields a byte-identical Result to a run
// without it.
func TestObserverDoesNotPerturbResult(t *testing.T) {
	plain := runObsSystem(t, nil)
	o := &obs.Observer{
		Tracer:   obs.NewTracer(0, obs.NullSink{}),
		Metrics:  obs.NewRegistry(),
		Interval: obs.NewIntervalRecorder(10_000),
	}
	o.BeginRun("obs-mix", "dpPred+cbPred")
	observed := runObsSystem(t, o)

	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("observability changed the result:\nplain    %+v\nobserved %+v", plain, observed)
	}
	if a, b := fmt.Sprintf("%+v", plain), fmt.Sprintf("%+v", observed); a != b {
		t.Fatalf("results not byte-identical:\n%s\n%s", a, b)
	}
	if o.Tracer.Count() == 0 {
		t.Fatal("tracer saw no events")
	}
	if len(o.Interval.Samples()) == 0 {
		t.Fatal("interval recorder collected no samples")
	}
}

// TestObserverEventAndSampleContents checks the hook points actually fire
// and the interval series carries the learning-curve signals.
func TestObserverEventAndSampleContents(t *testing.T) {
	o := &obs.Observer{
		Tracer:   obs.NewTracer(1<<16, obs.NullSink{}),
		Metrics:  obs.NewRegistry(),
		Interval: obs.NewIntervalRecorder(10_000),
	}
	o.BeginRun("obs-mix", "dpPred+cbPred")
	runObsSystem(t, o)

	kinds := map[obs.Kind]int{}
	for _, ev := range o.Tracer.Events() {
		kinds[ev.Kind]++
	}
	for _, want := range []obs.Kind{obs.EvLLTFill, obs.EvLLTEvict, obs.EvWalk, obs.EvLLCFill, obs.EvLLCEvict, obs.EvInterval} {
		if kinds[want] == 0 {
			t.Errorf("no %v events traced (kinds seen: %v)", want, kinds)
		}
	}

	samples := o.Interval.Samples()
	if len(samples) < 5 {
		t.Fatalf("got %d interval samples, want ≥ 5", len(samples))
	}
	last := samples[len(samples)-1]
	if last.Run != "obs-mix/dpPred+cbPred" || last.IPC <= 0 || last.Instructions == 0 {
		t.Errorf("sample looks empty: %+v", last)
	}
	if last.PHISTHist == nil || last.BHISTHist == nil {
		t.Errorf("predictor counter histograms missing: %+v", last)
	}

	snap := o.Metrics.Snapshot()
	for _, name := range []string{
		"obs-mix/dpPred+cbPred/llt.lookups",
		"obs-mix/dpPred+cbPred/llc.misses",
		"obs-mix/dpPred+cbPred/walker.walks",
		"obs-mix/dpPred+cbPred/core.ipc",
		"obs-mix/dpPred+cbPred/dppred.increments",
		"obs-mix/dpPred+cbPred/cbpred.notifications",
	} {
		if snap[name] == 0 {
			t.Errorf("metric %s is zero or missing", name)
		}
	}
}

// TestDisabledObserverStepAllocatesNothing asserts the disabled-observer
// hot path stays allocation-free: tracing must cost nothing when off.
func TestDisabledObserverStepAllocatesNothing(t *testing.T) {
	cfg := DefaultConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := attachPaper(s); err != nil {
		t.Fatal(err)
	}
	g := obsTestMix(t, 3)
	// Warm the page table, caches and generator so steady state remains.
	if err := s.Run(g, 400_000); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(2000, func() {
		if err := s.Step(g.Next()); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("Step with observer disabled allocates %.2f/op, want 0", allocs)
	}
}

// attachPaper installs dpPred + cbPred with default parameters (the root
// package's AttachPaperPredictors would import-cycle from here).
func attachPaper(s *System) (*core.DPPred, error) {
	dp, err := core.NewDPPred(core.DefaultDPPredConfig(s.LLT().Entries()))
	if err != nil {
		return nil, err
	}
	cb, err := core.NewCBPred(core.DefaultCBPredConfig(s.LLC().Capacity()))
	if err != nil {
		return nil, err
	}
	s.SetTLBPredictor(dp)
	s.SetLLCPredictor(cb)
	return dp, nil
}

func BenchmarkStepObserverDisabled(b *testing.B) {
	cfg := DefaultConfig()
	s := MustNew(cfg)
	if _, err := attachPaper(s); err != nil {
		b.Fatal(err)
	}
	g := obsTestMix(b, 3)
	if err := s.Run(g, 100_000); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(g.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepObserverTracing(b *testing.B) {
	cfg := DefaultConfig()
	s := MustNew(cfg)
	if _, err := attachPaper(s); err != nil {
		b.Fatal(err)
	}
	o := &obs.Observer{
		Tracer:   obs.NewTracer(0, obs.NullSink{}),
		Interval: obs.NewIntervalRecorder(10_000),
	}
	s.AttachObserver(o)
	g := obsTestMix(b, 3)
	if err := s.Run(g, 100_000); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(g.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepWarm measures the bare machine — no predictors attached —
// stepping a fully-warm system. The delta against
// BenchmarkStepObserverDisabled is the paper predictors' overhead.
func BenchmarkStepWarm(b *testing.B) {
	cfg := DefaultConfig()
	s := MustNew(cfg)
	g := obsTestMix(b, 3)
	if err := s.Run(g, 100_000); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(g.Next()); err != nil {
			b.Fatal(err)
		}
	}
}
