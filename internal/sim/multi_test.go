package sim

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/tlb"
	"repro/internal/trace"
)

// multiBuffers materializes n accesses per tenant (deterministic mixes
// with spread seeds) so warm state can be replayed bit-identically from
// any position.
func multiBuffers(t testing.TB, tenants int, seed, n uint64) []*trace.Buffer {
	t.Helper()
	bufs := make([]*trace.Buffer, tenants)
	for i := range bufs {
		b, err := trace.Materialize(obsTestMix(t, seed+uint64(i)), n)
		if err != nil {
			t.Fatal(err)
		}
		bufs[i] = b
	}
	return bufs
}

// readers builds one positioned generator per tenant buffer (pos nil
// starts everyone at zero).
func readers(bufs []*trace.Buffer, pos []uint64) []trace.Generator {
	gens := make([]trace.Generator, len(bufs))
	for i, b := range bufs {
		p := uint64(0)
		if pos != nil {
			p = pos[i]
		}
		gens[i] = b.ReaderAt(p)
	}
	return gens
}

// positions snapshots each reader's cursor.
func positions(gens []trace.Generator) []uint64 {
	pos := make([]uint64, len(gens))
	for i, g := range gens {
		pos[i] = g.(*trace.BufferReader).Pos()
	}
	return pos
}

// installMultiPreds gives the machine the deepest-state predictor pair.
func installMultiPreds(t testing.TB, m *MultiSystem) {
	t.Helper()
	dp, err := core.NewDPPred(core.DefaultDPPredConfig(m.LLT().Entries()))
	if err != nil {
		t.Fatal(err)
	}
	cb, err := core.NewCBPred(core.DefaultCBPredConfig(m.LLC().Capacity()))
	if err != nil {
		t.Fatal(err)
	}
	m.SetTLBPredictor(dp)
	m.SetLLCPredictor(cb)
}

func TestNewMultiValidates(t *testing.T) {
	for _, mc := range []MultiConfig{
		{Machine: smallConfig(), Cores: 0, Tenants: 1},
		{Machine: smallConfig(), Cores: 1, Tenants: 0},
		{Machine: smallConfig(), Cores: 1, Tenants: maxTenants + 1},
		{Machine: smallConfig(), Cores: 1, Tenants: 1, Shootdown: ShootdownPolicy(7)},
	} {
		if _, err := NewMulti(mc); err == nil {
			t.Errorf("config %+v accepted", mc)
		}
	}
	bad := smallConfig()
	bad.PhysMemMB = 0
	if _, err := NewMulti(MultiConfig{Machine: bad, Cores: 1, Tenants: 1}); err == nil {
		t.Error("bad machine config accepted")
	}
}

func TestParseShootdown(t *testing.T) {
	for s, want := range map[string]ShootdownPolicy{"asid": ShootdownFlushASID, "full": ShootdownFullFlush} {
		got, err := ParseShootdown(s)
		if err != nil || got != want {
			t.Errorf("ParseShootdown(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := ParseShootdown("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestMultiSingleBitIdentical is the tentpole invariant: a 1-core 1-tenant
// MultiSystem is the existing single machine, bit for bit — on the
// baseline and on the full dpPred+cbPred configuration, with a nonzero
// quantum (a lone tenant never switches) and accuracy tracking enabled.
func TestMultiSingleBitIdentical(t *testing.T) {
	const warm, meas = 50_000, 150_000
	for _, withPreds := range []bool{false, true} {
		buf, err := trace.Materialize(obsTestMix(t, 7), warm+meas)
		if err != nil {
			t.Fatal(err)
		}

		s := MustNew(smallConfig())
		m, err := NewMulti(MultiConfig{Machine: smallConfig(), Cores: 1, Tenants: 1,
			Quantum: 5_000, Shootdown: ShootdownFlushASID})
		if err != nil {
			t.Fatal(err)
		}
		if withPreds {
			dp, err := core.NewDPPred(core.DefaultDPPredConfig(s.LLT().Entries()))
			if err != nil {
				t.Fatal(err)
			}
			cb, err := core.NewCBPred(core.DefaultCBPredConfig(s.LLC().Capacity()))
			if err != nil {
				t.Fatal(err)
			}
			s.SetTLBPredictor(dp)
			s.SetLLCPredictor(cb)
			installMultiPreds(t, m)
		}

		if err := s.Run(buf.Reader(), warm); err != nil {
			t.Fatal(err)
		}
		if err := m.Run([]trace.Generator{buf.Reader()}, warm); err != nil {
			t.Fatal(err)
		}
		if err := s.EnableAccuracyTracking(); err != nil {
			t.Fatal(err)
		}
		if err := m.EnableAccuracyTracking(); err != nil {
			t.Fatal(err)
		}
		s.StartMeasurement()
		m.StartMeasurement()
		if err := s.Run(buf.ReaderAt(warm), meas); err != nil {
			t.Fatal(err)
		}
		if err := m.Run([]trace.Generator{buf.ReaderAt(warm)}, meas); err != nil {
			t.Fatal(err)
		}
		s.Finish()
		m.Finish()

		want := s.Result()
		mr := m.Result()
		if len(mr.PerCore) != 1 {
			t.Fatalf("PerCore has %d entries", len(mr.PerCore))
		}
		if got := mr.PerCore[0]; got != want {
			t.Errorf("preds=%v: 1c×1t MultiSystem diverged from System:\n  multi=%+v\n  single=%+v",
				withPreds, got, want)
		}
		if mr.Switches != 0 || mr.Shootdowns != 0 || mr.Unmaps != 0 {
			t.Errorf("1c×1t machine scheduled: switches=%d shootdowns=%d unmaps=%d",
				mr.Switches, mr.Shootdowns, mr.Unmaps)
		}
	}
}

// tlbCount returns a TLB's live-entry count.
func tlbCount(tl *tlb.TLB) int {
	n := 0
	tl.Inner().ForEach(func(_, _ int, _ *cache.Block) { n++ })
	return n
}

// tlbKeysByASID snapshots which keys each address space holds in a TLB.
func tlbKeysByASID(tl *tlb.TLB) map[uint64]map[uint64]bool {
	out := map[uint64]map[uint64]bool{}
	tl.Inner().ForEach(func(_, _ int, b *cache.Block) {
		asid := b.Key >> arch.VPNBits
		if out[asid] == nil {
			out[asid] = map[uint64]bool{}
		}
		out[asid][b.Key] = true
	})
	return out
}

// TestFlushASIDProperty: over randomized fill sequences, FlushASID(a)
// drops exactly the entries tagged a — never another tenant's — and
// FlushAll drops everything.
func TestFlushASIDProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		tl := tlb.MustNew(tlb.Config{Name: "t", Entries: 64, Ways: 4, Latency: 1})
		for i := 0; i < 300; i++ {
			asid := uint64(rng.Intn(4))
			vpn := arch.VPN(asid<<arch.VPNBits | uint64(rng.Intn(512)))
			// Fill only on miss, as the simulator does: Fill assumes the
			// key is absent, and a duplicate fill would create two blocks
			// under one key.
			if _, resident := tl.Probe(vpn); !resident {
				tl.Fill(vpn, arch.PFN(i), 0, 0, uint64(i))
			}
		}
		victim := uint64(rng.Intn(4))
		before := tlbKeysByASID(tl)
		flushed := tl.FlushASID(victim)
		after := tlbKeysByASID(tl)

		if flushed != len(before[victim]) {
			t.Fatalf("trial %d: FlushASID(%d) reported %d, held %d", trial, victim, flushed, len(before[victim]))
		}
		if len(after[victim]) != 0 {
			t.Fatalf("trial %d: %d entries of flushed ASID %d survived", trial, len(after[victim]), victim)
		}
		for asid, keys := range before {
			if asid == victim {
				continue
			}
			if !reflect.DeepEqual(after[asid], keys) {
				t.Fatalf("trial %d: FlushASID(%d) disturbed ASID %d: before=%d after=%d",
					trial, victim, asid, len(keys), len(after[asid]))
			}
		}
		tl.FlushAll()
		if n := tlbCount(tl); n != 0 {
			t.Fatalf("trial %d: FlushAll left %d entries", trial, n)
		}
	}
}

// TestShootdownASIDIsolation runs a real two-tenant machine and checks the
// system-level property: an ASID-targeted shootdown leaves every other
// tenant's LLT and L1 TLB entries untouched.
func TestShootdownASIDIsolation(t *testing.T) {
	m, err := NewMulti(MultiConfig{Machine: smallConfig(), Cores: 1, Tenants: 2,
		Quantum: 1_000, Shootdown: ShootdownFlushASID})
	if err != nil {
		t.Fatal(err)
	}
	bufs := multiBuffers(t, 2, 11, 40_000)
	if err := m.Run(readers(bufs, nil), 40_000); err != nil {
		t.Fatal(err)
	}

	lltBefore := tlbKeysByASID(m.LLT())
	dtlbBefore := tlbKeysByASID(m.Core(0).dtlb)
	if len(lltBefore[0]) == 0 || len(lltBefore[1]) == 0 {
		t.Fatalf("warmup left an empty ASID in the LLT: %d/%d", len(lltBefore[0]), len(lltBefore[1]))
	}

	m.shootdown(m.tenants[1])

	lltAfter := tlbKeysByASID(m.LLT())
	if len(lltAfter[1]) != 0 {
		t.Errorf("%d LLT entries of shot-down tenant 1 survived", len(lltAfter[1]))
	}
	if !reflect.DeepEqual(lltAfter[0], lltBefore[0]) {
		t.Errorf("shootdown of tenant 1 disturbed tenant 0's LLT entries (%d -> %d)",
			len(lltBefore[0]), len(lltAfter[0]))
	}
	dtlbAfter := tlbKeysByASID(m.Core(0).dtlb)
	if len(dtlbAfter[1]) != 0 {
		t.Errorf("%d D-TLB entries of shot-down tenant 1 survived", len(dtlbAfter[1]))
	}
	if !reflect.DeepEqual(dtlbAfter[0], dtlbBefore[0]) {
		t.Errorf("shootdown of tenant 1 disturbed tenant 0's D-TLB entries")
	}
}

// TestShootdownFullFlush: the ASID-oblivious policy drops everything,
// including innocent tenants' entries.
func TestShootdownFullFlush(t *testing.T) {
	m, err := NewMulti(MultiConfig{Machine: smallConfig(), Cores: 2, Tenants: 2,
		Shootdown: ShootdownFullFlush})
	if err != nil {
		t.Fatal(err)
	}
	bufs := multiBuffers(t, 2, 13, 40_000)
	if err := m.Run(readers(bufs, nil), 40_000); err != nil {
		t.Fatal(err)
	}
	if tlbCount(m.LLT()) == 0 {
		t.Fatal("warmup left the LLT empty")
	}
	m.shootdown(m.tenants[0])
	if n := tlbCount(m.LLT()); n != 0 {
		t.Errorf("full flush left %d LLT entries", n)
	}
	for c := 0; c < 2; c++ {
		if n := tlbCount(m.Core(c).dtlb); n != 0 {
			t.Errorf("full flush left %d D-TLB entries on core %d", n, c)
		}
		if n := tlbCount(m.Core(c).itlb); n != 0 {
			t.Errorf("full flush left %d I-TLB entries on core %d", n, c)
		}
	}
}

// TestPostShootdownMiss: after an unmap+shootdown, the next touch of the
// page misses the whole TLB hierarchy, triggers a fresh page walk, and
// faults in a different physical frame (the old one is never reissued).
func TestPostShootdownMiss(t *testing.T) {
	m, err := NewMulti(MultiConfig{Machine: smallConfig(), Cores: 1, Tenants: 1,
		Shootdown: ShootdownFlushASID})
	if err != nil {
		t.Fatal(err)
	}
	page := arch.VAddr(1 << 30)
	var accs []trace.Access
	for i := 0; i < 64; i++ {
		accs = append(accs, access(0x400000, page+arch.VAddr(i*64)))
	}
	g := &seqGen{name: "page", list: accs}
	if err := m.Run([]trace.Generator{g}, 64); err != nil {
		t.Fatal(err)
	}

	vpn := page.Page()
	tn := m.tenants[0]
	oldPFN, mapped := tn.pt.TranslateIfMapped(vpn)
	if !mapped {
		t.Fatal("page not mapped after warm accesses")
	}
	if _, ok := m.LLT().Probe(vpn); !ok {
		t.Fatal("page not resident in LLT before shootdown")
	}

	if !tn.pt.Unmap(vpn) {
		t.Fatal("unmap of mapped page failed")
	}
	m.shootdown(tn)

	if _, ok := m.LLT().Probe(vpn); ok {
		t.Error("LLT still holds the shot-down translation")
	}
	if _, ok := m.Core(0).dtlb.Probe(vpn); ok {
		t.Error("D-TLB still holds the shot-down translation")
	}

	walksBefore := m.Core(0).walks
	if err := m.Step([]trace.Generator{g}); err != nil {
		t.Fatal(err)
	}
	// The single-tenant shootdown flushed the instruction page's
	// translation too, so this access walks twice: once for the PC's
	// page, once for the unmapped data page.
	if m.Core(0).walks != walksBefore+2 {
		t.Errorf("post-shootdown access walked %d times, want 2", m.Core(0).walks-walksBefore)
	}
	newPFN, mapped := tn.pt.TranslateIfMapped(vpn)
	if !mapped {
		t.Fatal("page not remapped by post-shootdown access")
	}
	if newPFN == oldPFN {
		t.Errorf("remapped page reused frame %d", oldPFN)
	}
}

// runMulti measures n accesses and returns the result.
func runMulti(t testing.TB, m *MultiSystem, gens []trace.Generator, n uint64) MultiResult {
	t.Helper()
	m.StartMeasurement()
	if err := m.Run(gens, n); err != nil {
		t.Fatal(err)
	}
	m.Finish()
	return m.Result()
}

// warmMulti builds a full-featured machine (2 cores, 3 tenants, context
// switching, unmap injection, dpPred+cbPred), warms it, and returns the
// machine with its buffers and post-warmup positions.
func warmMulti(t testing.TB, warm uint64) (*MultiSystem, []*trace.Buffer, []uint64) {
	t.Helper()
	m, err := NewMulti(MultiConfig{Machine: smallConfig(), Cores: 2, Tenants: 3,
		Quantum: 700, Shootdown: ShootdownFlushASID, UnmapEvery: 900})
	if err != nil {
		t.Fatal(err)
	}
	installMultiPreds(t, m)
	bufs := multiBuffers(t, 3, 21, warm+300_000)
	gens := readers(bufs, nil)
	if err := m.Run(gens, warm); err != nil {
		t.Fatal(err)
	}
	return m, bufs, positions(gens)
}

// TestMultiForkBitIdentical: measuring on a fork must be bit-identical to
// measuring on the master it was taken from.
func TestMultiForkBitIdentical(t *testing.T) {
	const warm, meas = 60_000, 120_000
	m, bufs, pos := warmMulti(t, warm)
	f, err := m.Fork()
	if err != nil {
		t.Fatal(err)
	}
	got := runMulti(t, f, readers(bufs, pos), meas)
	want := runMulti(t, m, readers(bufs, pos), meas)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("forked multi run diverged from master:\n  fork=%+v\n  master=%+v", got, want)
	}
}

// TestMultiForkRefusesInstrumented mirrors the single-machine contract.
func TestMultiForkRefusesInstrumented(t *testing.T) {
	m, err := NewMulti(MultiConfig{Machine: smallConfig(), Cores: 1, Tenants: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnableAccuracyTracking(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fork(); err == nil {
		t.Error("fork of instrumented machine accepted")
	}
}

// TestMultiCheckpointRoundTrip: restore into a fresh machine, splice the
// generators at the checkpoint's per-tenant positions, and the restored
// run must be bit-identical to the continuing master.
func TestMultiCheckpointRoundTrip(t *testing.T) {
	const warm, meas = 60_000, 120_000
	m, bufs, pos := warmMulti(t, warm)

	var ck bytes.Buffer
	if err := m.WriteCheckpoint(&ck, "mix"); err != nil {
		t.Fatal(err)
	}

	r, err := NewMulti(m.Config())
	if err != nil {
		t.Fatal(err)
	}
	installMultiPreds(t, r)
	meta, err := r.ReadCheckpoint(bytes.NewReader(ck.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for i, ta := range meta.TenantAccesses {
		total += ta
		if ta != pos[i] {
			t.Errorf("tenant %d checkpoint accesses %d, generator position %d", i, ta, pos[i])
		}
	}
	if meta.Accesses != warm || total != warm {
		t.Errorf("checkpoint covers %d accesses (tenant sum %d), want %d", meta.Accesses, total, warm)
	}

	got := runMulti(t, r, readers(bufs, pos), meas)
	want := runMulti(t, m, readers(bufs, pos), meas)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("restored multi run diverged from master:\n  restored=%+v\n  master=%+v", got, want)
	}
}

// TestMultiCheckpointRejectsMismatch: a checkpoint must not restore into a
// machine with different dimensions or scheduling parameters.
func TestMultiCheckpointRejectsMismatch(t *testing.T) {
	m, _, _ := warmMulti(t, 10_000)
	var ck bytes.Buffer
	if err := m.WriteCheckpoint(&ck, "mix"); err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*MultiConfig){
		func(c *MultiConfig) { c.Cores = 1 },
		func(c *MultiConfig) { c.Tenants = 2 },
		func(c *MultiConfig) { c.Quantum = 123 },
		func(c *MultiConfig) { c.Shootdown = ShootdownFullFlush },
		func(c *MultiConfig) { c.UnmapEvery = 1 },
	} {
		cfg := m.Config()
		mut(&cfg)
		r, err := NewMulti(cfg)
		if err != nil {
			t.Fatal(err)
		}
		installMultiPreds(t, r)
		if _, err := r.ReadCheckpoint(bytes.NewReader(ck.Bytes())); err == nil {
			t.Errorf("mismatched restore accepted for %+v", cfg)
		}
	}
}

// TestMultiDeterminism: two identical 4-core 6-tenant runs — context
// switches (two cores run two tenants each), shootdowns, shared-structure
// contention and all — produce deeply equal results.
func TestMultiDeterminism(t *testing.T) {
	run := func() MultiResult {
		m, err := NewMulti(MultiConfig{Machine: smallConfig(), Cores: 4, Tenants: 6,
			Quantum: 1_000, Shootdown: ShootdownFullFlush, UnmapEvery: 1_500})
		if err != nil {
			t.Fatal(err)
		}
		installMultiPreds(t, m)
		if err := m.EnableAccuracyTracking(); err != nil {
			t.Fatal(err)
		}
		if err := m.EnableConfusionTracking(); err != nil {
			t.Fatal(err)
		}
		bufs := multiBuffers(t, 6, 31, 100_000)
		return runMulti(t, m, readers(bufs, nil), 100_000)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("repeated multi runs diverged:\n  a=%+v\n  b=%+v", a, b)
	}
	if a.Switches == 0 || a.Shootdowns == 0 || a.Unmaps == 0 {
		t.Errorf("stress run did not exercise scheduling: switches=%d shootdowns=%d unmaps=%d",
			a.Switches, a.Shootdowns, a.Unmaps)
	}
}
