package sim

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/trace"
)

// Every batched drain loop below tests the chunk stride with the mask form
// consumed&(ctxCheckStride-1); that is only equivalent to a modulus when
// the stride is a power of two, and this constant fails to compile
// otherwise (a negative value cannot convert to uint).
const _ uint = -(ctxCheckStride & (ctxCheckStride - 1))

// batchMemo tracks, for the three L1 structures an access stream keeps
// re-hitting — the two L1 TLBs and the L1D — the slot of the current run's
// entry plus the run of deferred hits against it. A run of accesses to the
// same key defers its hit-path side effects (counters, Accessed bit, LRU
// touches) and applies them in one closed-form HitRun when the run breaks,
// which is bit-identical to replaying them one by one because nothing else
// touches the structure mid-run (see the invariant below).
//
// Slot resolution is lazy: a slow path records only the key it installed
// (OK flag) and leaves the set/way unresolved (Loc flag clear). The first
// repeat of the key probes Locate — a genuine tag check — and only then
// does the run extend through the memoized slot. Streams with no reuse
// (run length 1, the common case on low-locality workloads) therefore
// never pay a Locate per slow path; streams with reuse pay exactly one per
// run.
//
// Invariant: while a structure's Loc flag is set, its memoized slot holds
// the memoized key and the structure has seen no traffic since the slot
// was resolved except this memo's own (possibly still pending) hits. The
// loop maintains it by construction: itlb traffic only originates from
// instruction-side translate calls, dtlb traffic from data-side translate
// calls, and l1d traffic from memAccess and from page walks (whose PTE
// fetches traverse the data caches) — and every one of those slow-path
// calls first flushes the affected structure's pending run and afterwards
// re-keys its memo (or, for walk-perturbed L1D state, clears Loc so the
// next repeat re-probes). Entries can therefore never be evicted or moved
// behind a set Loc flag, so the run-extension fast path needs no tag check
// at all. The memo lives on the stack of one RunBatch/RunBuffer call — it
// is never stored on the System, so Fork, checkpointing and interleaved
// Step calls are unaffected.
type batchMemo struct {
	iKey       arch.VPN // ASID-qualified instruction page
	iSet, iWay int
	iOK        bool   // iKey holds the most recent slow-path install
	iLoc       bool   // iSet/iWay resolved for iKey (implies iOK)
	iPend      uint64 // deferred hits on the slot
	iLast      uint64 // timestamp of the newest deferred hit

	dKey       arch.VPN // ASID-qualified data page
	dPFN       arch.PFN // its translation (immutable while resident)
	dSet, dWay int
	dOK        bool
	dLoc       bool
	dPend      uint64
	dLast      uint64

	// bVB keys the L1D run by *virtual* block number. Within one address
	// space frames are never aliased or remapped (System never unmaps),
	// so virtual blocks map 1:1 to physical blocks and the fast path can
	// recognize a same-block repeat without translating at all.
	bVB        uint64
	bSet, bWay int
	bOK        bool
	bLoc       bool
	bPend      uint64
	bLast      uint64
	bDirty     bool // OR of the deferred hits' write bits

	// Per-structure CoalescibleHits, resolved once per run: a pluggable
	// replacement policy keeps opaque per-hit state, so its hits are
	// replayed individually through HitAt instead of deferred.
	iCo, dCo, bCo bool
}

func (s *System) newBatchMemo() batchMemo {
	return batchMemo{
		iCo: s.itlb.Inner().CoalescibleHits(),
		dCo: s.dtlb.Inner().CoalescibleHits(),
		bCo: s.l1d.CoalescibleHits(),
	}
}

// flushRuns applies every pending deferred-hit run. Called whenever the
// pending hits' structure is about to see other traffic, before anything
// that reads structure state (segment epilogues, returns), and on the
// error path so the machine is always left consistent.
func (s *System) flushRuns(m *batchMemo) {
	if m.iPend > 0 {
		s.itlb.Inner().HitRun(m.iSet, m.iWay, m.iPend, m.iLast)
		m.iPend = 0
	}
	if m.dPend > 0 {
		s.dtlb.Inner().HitRun(m.dSet, m.dWay, m.dPend, m.dLast)
		m.dPend = 0
	}
	if m.bPend > 0 {
		b := s.l1d.HitRun(m.bSet, m.bWay, m.bPend, m.bLast)
		b.Dirty = b.Dirty || m.bDirty
		m.bPend, m.bDirty = 0, false
	}
}

// RunBatch feeds one columnar batch of accesses through the machine. The
// parallel slices hold one access per index in the Buffer's
// struct-of-arrays layout (flags as in trace.FlagWrite/FlagDependent).
// Results are bit-identical to calling Step once per access.
func (s *System) RunBatch(pc, va []uint64, gap []uint32, flags []uint8) error {
	m := s.newBatchMemo()
	_, err := s.runBatch(&m, pc, va, gap, flags)
	return err
}

// runBatch is the batched inner loop. It replicates Step exactly — same
// structure-touch order, same timestamps, same counter increments — but
// hoists the per-access sampler/interval modulus checks out of the loop
// (the loop is split at the next sampling boundary and the checks run in
// a per-segment epilogue) and turns same-page/same-block runs into
// deferred-hit runs resolved by one coalesced update each. On error it
// returns the index of the access that failed.
func (s *System) runBatch(m *batchMemo, pc, va []uint64, gap []uint32, flags []uint8) (int, error) {
	n := len(pc)
	asid := arch.VPN(s.asidKey)
	i := 0
	for i < n {
		// Split the batch at the next access count where Step would run a
		// sampler or interval snapshot, so the inner loop needs no modulus
		// checks and the epilogue fires them at exactly Step's points.
		lim := n
		if s.lltSampler != nil {
			if next := i + int(s.sampleEvery-s.accesses%s.sampleEvery); next < lim {
				lim = next
			}
		}
		if s.intervalEvery != 0 {
			if next := i + int(s.intervalEvery-s.accesses%s.intervalEvery); next < lim {
				lim = next
			}
		}

		for ; i < lim; i++ {
			if g := gap[i]; g > 0 {
				if cc := s.cpuCore; cc != nil {
					cc.Advance(uint64(g))
				} else {
					s.core.Advance(uint64(g))
				}
			}
			if cc := s.cpuCore; cc != nil {
				s.stepNow = uint64(cc.Cycles())
			} else {
				s.stepNow = uint64(s.core.Cycles())
			}
			s.accesses++
			now := s.stepNow

			// Instruction-side translation. A repeat of the memoized
			// instruction page extends the deferred-hit run (latency 0, as
			// L1 hits are free); anything else flushes the run and takes
			// the full translate path, then re-keys the memo. The slot is
			// resolved lazily on the first repeat.
			var iLat arch.Lat
			ivpn := arch.VAddr(pc[i]).Page() | asid
			iHit := m.iOK && ivpn == m.iKey
			if iHit && !m.iLoc {
				m.iSet, m.iWay, m.iLoc = s.itlb.Inner().Locate(uint64(ivpn))
				iHit = m.iLoc
			}
			if iHit {
				if m.iCo {
					m.iPend++
					m.iLast = now
				} else {
					s.itlb.Inner().HitAt(m.iSet, m.iWay, uint64(ivpn), now)
				}
			} else {
				// A translate may page-walk, and PTE fetches traverse the
				// data caches: settle the L1D run first and drop its memo
				// if a walk really happened.
				if m.bPend > 0 {
					b := s.l1d.HitRun(m.bSet, m.bWay, m.bPend, m.bLast)
					b.Dirty = b.Dirty || m.bDirty
					m.bPend, m.bDirty = 0, false
				}
				if m.iPend > 0 {
					s.itlb.Inner().HitRun(m.iSet, m.iWay, m.iPend, m.iLast)
					m.iPend = 0
				}
				walks := s.walks
				lat, _, err := s.translate(arch.VAddr(pc[i]).Page(), pc[i], true)
				if err != nil {
					s.flushRuns(m)
					return i, err
				}
				iLat = lat
				if s.walks != walks {
					m.bLoc = false
				}
				m.iKey, m.iOK, m.iLoc = ivpn, true, false
			}

			// Data-side translation; the memo carries the page's PFN,
			// which is immutable while the entry is resident.
			var dLat arch.Lat
			var pfn arch.PFN
			dvpn := arch.VAddr(va[i]).Page() | asid
			dHit := m.dOK && dvpn == m.dKey
			if dHit && !m.dLoc {
				m.dSet, m.dWay, m.dLoc = s.dtlb.Inner().Locate(uint64(dvpn))
				dHit = m.dLoc
			}
			if dHit {
				pfn = m.dPFN
				if m.dCo {
					m.dPend++
					m.dLast = now
				} else {
					s.dtlb.Inner().HitAt(m.dSet, m.dWay, uint64(dvpn), now)
				}
			} else {
				if m.bPend > 0 {
					b := s.l1d.HitRun(m.bSet, m.bWay, m.bPend, m.bLast)
					b.Dirty = b.Dirty || m.bDirty
					m.bPend, m.bDirty = 0, false
				}
				if m.dPend > 0 {
					s.dtlb.Inner().HitRun(m.dSet, m.dWay, m.dPend, m.dLast)
					m.dPend = 0
				}
				walks := s.walks
				lat, p, err := s.translate(arch.VAddr(va[i]).Page(), pc[i], false)
				if err != nil {
					s.flushRuns(m)
					return i, err
				}
				dLat, pfn = lat, p
				if s.walks != walks {
					m.bLoc = false
				}
				m.dKey, m.dPFN = dvpn, p
				m.dOK, m.dLoc = true, false
			}

			// Data access. A same-virtual-block repeat extends the L1D
			// run without translating (the fast path above already proved
			// nothing remapped); a new block flushes the run, takes the
			// full memAccess path and re-keys. The slot resolves lazily on
			// the first repeat — and re-resolves after a page walk
			// perturbed the data caches, so a block that survived the
			// walk's PTE fetches keeps its run (exactly the L1D hit Step
			// would take), while an evicted one falls through to memAccess
			// (exactly Step's miss).
			write := flags[i]&trace.FlagWrite != 0
			var memLat arch.Lat
			vb := va[i] >> arch.BlockShift
			bHit := m.bOK && vb == m.bVB
			if bHit && !m.bLoc {
				pa := arch.Translate(pfn, arch.VAddr(va[i]))
				key := uint64(pa.Block() >> arch.BlockShift)
				m.bSet, m.bWay, m.bLoc = s.l1d.Locate(key)
				bHit = m.bLoc
			}
			if bHit {
				memLat = s.cfg.L1D.Latency
				if m.bCo {
					m.bPend++
					m.bLast = now
					m.bDirty = m.bDirty || write
				} else {
					pa := arch.Translate(pfn, arch.VAddr(va[i]))
					key := uint64(pa.Block() >> arch.BlockShift)
					if b, ok := s.l1d.HitAt(m.bSet, m.bWay, key, now); ok {
						b.Dirty = b.Dirty || write
					}
				}
			} else {
				if m.bPend > 0 {
					b := s.l1d.HitRun(m.bSet, m.bWay, m.bPend, m.bLast)
					b.Dirty = b.Dirty || m.bDirty
					m.bPend, m.bDirty = 0, false
				}
				pa := arch.Translate(pfn, arch.VAddr(va[i]))
				memLat = s.memAccess(pa, pc[i], write)
				m.bVB = vb
				m.bOK, m.bLoc = true, false
			}

			if s.histMemLat != nil {
				s.histMemLat.Observe(uint64(iLat) + uint64(dLat) + uint64(memLat))
			}
			if cc := s.cpuCore; cc != nil {
				cc.Memory(uint64(iLat)+uint64(dLat)+uint64(memLat), flags[i]&trace.FlagDependent != 0)
			} else {
				s.core.Memory(uint64(iLat)+uint64(dLat)+uint64(memLat), flags[i]&trace.FlagDependent != 0)
			}
		}

		// Epilogue: settle the deferred runs (the samplers and the
		// interval snapshot read structure state and counters), then the
		// checks Step runs after every access — valid here because the
		// segment limit guarantees no boundary was crossed mid-segment.
		// Order matches Step: samplers, then the interval.
		s.flushRuns(m)
		if s.lltSampler != nil && s.accesses%s.sampleEvery == 0 {
			s.lltSampler.Sample(s.llt.Inner())
			s.llcSampler.Sample(s.llc)
		}
		if s.intervalEvery != 0 && s.accesses%s.intervalEvery == 0 {
			s.sampleInterval()
		}
	}
	return n, nil
}

// RunBuffer feeds n accesses through the machine in columnar chunks
// drained from src — the batched equivalent of Run over the same
// generator, with bit-identical results.
func (s *System) RunBuffer(src trace.ChunkReader, n uint64) error {
	return s.RunBufferContext(context.Background(), src, n)
}

// RunBufferContext is RunBuffer with cancellation, checked at chunk
// boundaries — at least the ctxCheckStride granularity of RunContext,
// since chunks are never longer than the stride.
func (s *System) RunBufferContext(ctx context.Context, src trace.ChunkReader, n uint64) error {
	m := s.newBatchMemo()
	done := ctx.Done()
	for consumed := uint64(0); consumed < n; {
		if done != nil {
			select {
			case <-done:
				return fmt.Errorf("sim: canceled at access %d of %d: %w", consumed, n, ctx.Err())
			default:
			}
		}
		want := n - consumed
		if want > ctxCheckStride {
			want = ctxCheckStride
		}
		c, _ := src.NextChunk(int(want))
		if c.Len() == 0 {
			// The source can produce no records (empty trace, or a v2
			// stream that latched a decode error mid-run). The per-access
			// path defines the behaviour here — Next keeps returning the
			// latched last/zero access and GeneratorErr reports the cause
			// — so finish the run through it for bit-identical results.
			return s.stepRemaining(ctx, src, consumed, n)
		}
		at, err := s.runBatch(&m, c.PC, c.VA, c.Gap, c.Flags)
		if err != nil {
			return fmt.Errorf("sim: access %d: %w", consumed+uint64(at), err)
		}
		consumed += uint64(c.Len())
	}
	if err := trace.GeneratorErr(src); err != nil {
		return fmt.Errorf("sim: after %d accesses: %w", n, err)
	}
	return nil
}

// stepRemaining finishes accesses [consumed, n) through the per-access
// path, mirroring RunContext's loop exactly (stride-masked context checks,
// identical error wrapping with global indices, trailing GeneratorErr).
func (s *System) stepRemaining(ctx context.Context, g trace.Generator, consumed, n uint64) error {
	done := ctx.Done()
	for i := consumed; i < n; i++ {
		if done != nil && i&(ctxCheckStride-1) == 0 {
			select {
			case <-done:
				return fmt.Errorf("sim: canceled at access %d of %d: %w", i, n, ctx.Err())
			default:
			}
		}
		if err := s.Step(g.Next()); err != nil {
			return fmt.Errorf("sim: access %d: %w", i, err)
		}
	}
	if err := trace.GeneratorErr(g); err != nil {
		return fmt.Errorf("sim: after %d accesses: %w", n, err)
	}
	return nil
}
