package sim

import (
	"repro/internal/cpu"
	"repro/internal/stats"
)

// newCore adapts the cpu package to the coreModel seam.
func newCore(cfg cpu.Config) (coreModel, error) {
	return cpu.New(cfg)
}

// snapshot captures the monotone counters a measurement subtracts.
type snapshot struct {
	instructions uint64
	cycles       float64
	accesses     uint64
	walks        uint64
	shadowFills  uint64
	lltLookups   uint64
	lltMisses    uint64
	llcLookups   uint64
	llcMisses    uint64
	llcBypasses  uint64
	lltBypasses  uint64
	ptAccesses   uint64
	walkCycles   uint64
	walkQueue    uint64

	l1dLookups, l1dMisses   uint64
	l2Lookups, l2Misses     uint64
	itlbLookups, itlbMisses uint64
	dtlbLookups, dtlbMisses uint64
	pwcHits                 [3]uint64
	fullWalks               uint64

	memLatSum, memOps uint64

	// Confusion-tracker classifications (zero when tracking is off).
	lltConf, llcConf stats.Confusion
}

func (s *System) snap() snapshot {
	llt := s.llt.Stats()
	llc := s.llc.Stats()
	l1d := s.l1d.Stats()
	l2 := s.l2.Stats()
	itlb := s.itlb.Stats()
	dtlb := s.dtlb.Stats()
	wk := s.walk.Stats()
	latSum, memOps := s.core.MemLatencyStats()
	var lltConf, llcConf stats.Confusion
	if s.lltConf != nil {
		lltConf = s.lltConf.Counts()
	}
	if s.llcConf != nil {
		llcConf = s.llcConf.Counts()
	}
	return snapshot{
		lltConf: lltConf, llcConf: llcConf,
		l1dLookups: l1d.Lookups, l1dMisses: l1d.Misses,
		l2Lookups: l2.Lookups, l2Misses: l2.Misses,
		itlbLookups: itlb.Lookups, itlbMisses: itlb.Misses,
		dtlbLookups: dtlb.Lookups, dtlbMisses: dtlb.Misses,
		pwcHits:      wk.PWCHits,
		fullWalks:    wk.FullWalks,
		instructions: s.core.Instructions(),
		cycles:       s.core.Cycles(),
		accesses:     s.accesses,
		walks:        s.walks,
		shadowFills:  s.shadowFills,
		lltLookups:   llt.Lookups,
		lltMisses:    llt.Misses,
		llcLookups:   llc.Lookups,
		llcMisses:    llc.Misses,
		llcBypasses:  llc.Bypasses,
		lltBypasses:  llt.Bypasses,
		ptAccesses:   wk.PTAccesses,
		walkCycles:   wk.WalkCycles,
		walkQueue:    s.walkQueueCycles,
		memLatSum:    latSum,
		memOps:       memOps,
	}
}

// StartMeasurement marks the end of warmup: the Result will report only
// activity after this point. Instrumentation enabled earlier keeps
// accumulating; enable it just before calling this to scope it to the
// measured region.
func (s *System) StartMeasurement() { s.base = s.snap() }

// Result summarizes a measured region.
type Result struct {
	// Instructions and Cycles cover the measured region; IPC is their
	// ratio.
	Instructions uint64
	Cycles       float64
	IPC          float64

	// MemAccesses is the number of trace records processed.
	MemAccesses uint64

	// LLT-side counters. Walks excludes misses served by a predictor's
	// victim buffer; LLTMPKI is walks per kilo-instruction (the paper's
	// LLT miss metric — every walk is a real page-table walk).
	LLTLookups, LLTMisses, Walks, ShadowFills, LLTBypasses uint64
	LLTMPKI                                                float64

	// LLC-side counters; LLCMPKI is LLC misses per kilo-instruction.
	LLCLookups, LLCMisses, LLCBypasses uint64
	LLCMPKI                            float64

	// PTAccesses is the number of PTE fetches issued by the walker.
	PTAccesses uint64
	// WalkCycles is the summed raw walk latency; WalkQueueCycles is the
	// additional time walks queued behind the single page walker.
	WalkCycles, WalkQueueCycles uint64

	// Per-level breakdowns: the inner cache levels, split L1 TLBs and
	// the page-walk caches.
	L1DLookups, L1DMisses   uint64
	L2Lookups, L2Misses     uint64
	ITLBLookups, ITLBMisses uint64
	DTLBLookups, DTLBMisses uint64
	// PWCHits counts page-walk-cache hits per level (0 = PDE cache);
	// FullWalks counts walks that missed every PWC level.
	PWCHits   [3]uint64
	FullWalks uint64

	// AvgMemLatency is the mean hierarchy latency per memory op over the
	// measured region.
	AvgMemLatency float64

	// Instrumentation results (zero values when not enabled).
	LLTAccuracy stats.AccuracyResult
	LLCAccuracy stats.AccuracyResult
	LLTDead     stats.DeadResult
	LLCDead     stats.DeadResult
	Correlation stats.CorrelationResult
}

// Result computes the summary for everything since StartMeasurement.
func (s *System) Result() Result {
	cur := s.snap()
	b := s.base
	r := Result{
		Instructions:    cur.instructions - b.instructions,
		Cycles:          cur.cycles - b.cycles,
		MemAccesses:     cur.accesses - b.accesses,
		LLTLookups:      cur.lltLookups - b.lltLookups,
		LLTMisses:       cur.lltMisses - b.lltMisses,
		Walks:           cur.walks - b.walks,
		ShadowFills:     cur.shadowFills - b.shadowFills,
		LLTBypasses:     cur.lltBypasses - b.lltBypasses,
		LLCLookups:      cur.llcLookups - b.llcLookups,
		LLCMisses:       cur.llcMisses - b.llcMisses,
		LLCBypasses:     cur.llcBypasses - b.llcBypasses,
		PTAccesses:      cur.ptAccesses - b.ptAccesses,
		WalkCycles:      cur.walkCycles - b.walkCycles,
		WalkQueueCycles: cur.walkQueue - b.walkQueue,
		L1DLookups:      cur.l1dLookups - b.l1dLookups,
		L1DMisses:       cur.l1dMisses - b.l1dMisses,
		L2Lookups:       cur.l2Lookups - b.l2Lookups,
		L2Misses:        cur.l2Misses - b.l2Misses,
		ITLBLookups:     cur.itlbLookups - b.itlbLookups,
		ITLBMisses:      cur.itlbMisses - b.itlbMisses,
		DTLBLookups:     cur.dtlbLookups - b.dtlbLookups,
		DTLBMisses:      cur.dtlbMisses - b.dtlbMisses,
		FullWalks:       cur.fullWalks - b.fullWalks,
	}
	for i := range r.PWCHits {
		r.PWCHits[i] = cur.pwcHits[i] - b.pwcHits[i]
	}
	if ops := cur.memOps - b.memOps; ops > 0 {
		r.AvgMemLatency = float64(cur.memLatSum-b.memLatSum) / float64(ops)
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.Instructions) / r.Cycles
	}
	if r.Instructions > 0 {
		ki := float64(r.Instructions) / 1000
		r.LLTMPKI = float64(r.Walks) / ki
		r.LLCMPKI = float64(r.LLCMisses) / ki
	}
	if s.lltAcc != nil {
		r.LLTAccuracy = s.lltAcc.Result()
		r.LLCAccuracy = s.llcAcc.Result()
	}
	if s.lltSampler != nil {
		r.LLTDead = s.lltSampler.Result()
		r.LLCDead = s.llcSampler.Result()
	}
	if s.corr != nil {
		r.Correlation = s.corr.Result()
	}
	return r
}
