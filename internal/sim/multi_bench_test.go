package sim

import (
	"testing"

	"repro/internal/trace"
)

// benchMulti warms a machine and returns it with infinite per-tenant
// generators, ready for steady-state stepping.
func benchMulti(b *testing.B, mc MultiConfig) (*MultiSystem, []trace.Generator) {
	b.Helper()
	m, err := NewMulti(mc)
	if err != nil {
		b.Fatal(err)
	}
	installMultiPreds(b, m)
	gens := make([]trace.Generator, mc.Tenants)
	for i := range gens {
		gens[i] = obsTestMix(b, uint64(i)+3)
	}
	if err := m.Run(gens, 200_000); err != nil {
		b.Fatal(err)
	}
	return m, gens
}

// BenchmarkMultiCoreStep is the multi-machine counterpart of
// BenchmarkStepWarm: steady-state per-access cost on a warm 4-core
// 4-tenant machine with the dpPred+cbPred pair. The access path must stay
// allocation-free.
func BenchmarkMultiCoreStep(b *testing.B) {
	m, gens := benchMulti(b, MultiConfig{Machine: DefaultConfig(), Cores: 4, Tenants: 4,
		Quantum: 10_000, Shootdown: ShootdownFlushASID})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(gens); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSharedLLTContention stresses the shared LLT with a deliberately
// undersized geometry (128 entries for 4 tenants' working sets plus
// ASID-targeted shootdowns), the configuration where cross-tenant eviction
// and flush traffic dominates.
func BenchmarkSharedLLTContention(b *testing.B) {
	cfg := DefaultConfig()
	cfg.LLT.Entries = 128
	m, gens := benchMulti(b, MultiConfig{Machine: cfg, Cores: 4, Tenants: 4,
		Quantum: 2_000, Shootdown: ShootdownFlushASID, UnmapEvery: 5_000})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(gens); err != nil {
			b.Fatal(err)
		}
	}
}
