package sim

import (
	"fmt"
	"io"

	"repro/internal/ckpt"
)

// Checkpoint file framing: magic, format version, then the meta block and
// every component's state in a fixed order, each behind a labeled section
// mark.
const (
	ckptMagic   = "DPCK"
	ckptVersion = 1
)

// stateCodec is implemented by every component whose warm state a
// checkpoint carries.
type stateCodec interface {
	EncodeState(w *ckpt.Writer)
	DecodeState(r *ckpt.Reader) error
}

// CheckpointMeta identifies what a checkpoint was taken from, so a restore
// under different flags fails loudly instead of silently diverging.
type CheckpointMeta struct {
	// Workload names the trace the checkpointed run consumed.
	Workload string
	// Seed is the workload/allocator seed.
	Seed uint64
	// Accesses is how many trace accesses the run had consumed when the
	// checkpoint was taken; a restoring run fast-forwards its generator by
	// this count to splice onto the same stream position.
	Accesses uint64
	// TLBPred and LLCPred are the installed predictors' names.
	TLBPred string
	LLCPred string
}

// ckptCodecs returns the predictor codecs, or an error naming the first
// component that cannot be checkpointed.
func (s *System) ckptCodecs() (tlbC, llcC stateCodec, err error) {
	if s.cpuCore == nil {
		return nil, nil, fmt.Errorf("sim: cannot checkpoint a system with a substituted core model")
	}
	if s.tlbPref != nil {
		return nil, nil, fmt.Errorf("sim: cannot checkpoint with a TLB prefetcher installed")
	}
	tlbC, ok := s.tlbPred.(stateCodec)
	if !ok {
		return nil, nil, fmt.Errorf("sim: TLB predictor %q is not checkpointable", s.tlbPred.Name())
	}
	llcC, ok = s.llcPred.(stateCodec)
	if !ok {
		return nil, nil, fmt.Errorf("sim: LLC predictor %q is not checkpointable", s.llcPred.Name())
	}
	return tlbC, llcC, nil
}

// WriteCheckpoint serializes the machine's full warm state to wr. The
// checkpoint captures pre-measurement state: take it after warmup, before
// StartMeasurement and before enabling instrumentation (accuracy mirrors,
// samplers and observers hold references into the live run and are rebuilt
// by the restoring side).
func (s *System) WriteCheckpoint(wr io.Writer, workload string) error {
	if s.lltAcc != nil || s.lltSampler != nil || s.corr != nil {
		return fmt.Errorf("sim: cannot checkpoint with instrumentation enabled")
	}
	tlbC, llcC, err := s.ckptCodecs()
	if err != nil {
		return err
	}

	w := ckpt.NewWriter(wr)
	w.String(ckptMagic)
	w.U16(ckptVersion)
	w.String(workload)
	w.U64(s.cfg.Seed)
	w.U64(s.accesses)
	w.String(s.tlbPred.Name())
	w.String(s.llcPred.Name())

	w.Mark("sim")
	w.U64(s.walks)
	w.U64(s.shadowFills)
	w.U64(s.prefFills)
	w.U64(s.prefUseful)
	w.U64(s.walkerBusyUntil)
	w.U64(s.walkQueueCycles)
	w.U64(s.stepNow)

	s.cpuCore.EncodeState(w)
	s.itlb.EncodeState(w)
	s.dtlb.EncodeState(w)
	s.llt.EncodeState(w)
	s.l1d.EncodeState(w)
	s.l2.EncodeState(w)
	s.llc.EncodeState(w)
	s.pt.EncodeState(w)
	s.walk.EncodeState(w)
	tlbC.EncodeState(w)
	llcC.EncodeState(w)
	w.Mark("end")
	return w.Flush()
}

// ReadCheckpoint restores state written by WriteCheckpoint into a system
// built with the identical configuration and predictors, returning the
// checkpoint's meta block. The caller verifies the meta against its own
// flags and fast-forwards its trace generator by meta.Accesses; after that,
// stepping the restored system is bit-identical to having continued the
// checkpointed run.
func (s *System) ReadCheckpoint(rd io.Reader) (CheckpointMeta, error) {
	tlbC, llcC, err := s.ckptCodecs()
	if err != nil {
		return CheckpointMeta{}, err
	}

	r := ckpt.NewReader(rd)
	if magic := r.String(); r.Err() == nil && magic != ckptMagic {
		return CheckpointMeta{}, fmt.Errorf("sim: not a checkpoint file (magic %q)", magic)
	}
	if v := r.U16(); r.Err() == nil && v != ckptVersion {
		return CheckpointMeta{}, fmt.Errorf("sim: unsupported checkpoint version %d (want %d)", v, ckptVersion)
	}
	meta := CheckpointMeta{
		Workload: r.String(),
		Seed:     r.U64(),
		Accesses: r.U64(),
		TLBPred:  r.String(),
		LLCPred:  r.String(),
	}
	if r.Err() != nil {
		return CheckpointMeta{}, r.Err()
	}
	if meta.Seed != s.cfg.Seed {
		return CheckpointMeta{}, fmt.Errorf("sim: checkpoint seed %d does not match configured %d", meta.Seed, s.cfg.Seed)
	}
	if meta.TLBPred != s.tlbPred.Name() || meta.LLCPred != s.llcPred.Name() {
		return CheckpointMeta{}, fmt.Errorf("sim: checkpoint predictors (tlb=%s llc=%s) do not match installed (tlb=%s llc=%s)",
			meta.TLBPred, meta.LLCPred, s.tlbPred.Name(), s.llcPred.Name())
	}

	r.Expect("sim")
	s.accesses = meta.Accesses
	s.walks = r.U64()
	s.shadowFills = r.U64()
	s.prefFills = r.U64()
	s.prefUseful = r.U64()
	s.walkerBusyUntil = r.U64()
	s.walkQueueCycles = r.U64()
	s.stepNow = r.U64()

	for _, c := range []stateCodec{
		s.cpuCore, s.itlb, s.dtlb, s.llt, s.l1d, s.l2, s.llc,
		s.pt, s.walk, tlbC, llcC,
	} {
		if err := c.DecodeState(r); err != nil {
			return CheckpointMeta{}, err
		}
	}
	r.Expect("end")
	return meta, r.Err()
}
