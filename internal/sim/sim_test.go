package sim

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/pred"
	"repro/internal/trace"
)

// seqGen produces a scripted access list, then repeats its last access.
type seqGen struct {
	name string
	list []trace.Access
	pos  int
}

func (g *seqGen) Name() string { return g.name }
func (g *seqGen) Next() trace.Access {
	if g.pos < len(g.list) {
		a := g.list[g.pos]
		g.pos++
		return a
	}
	return g.list[len(g.list)-1]
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.PhysMemMB = 256
	return cfg
}

func access(pc uint64, addr arch.VAddr) trace.Access {
	return trace.Access{PC: pc, Addr: addr, Gap: 2}
}

func TestNewValidatesConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.L1D.SizeKB = 0
	if _, err := New(cfg); err == nil {
		t.Error("bad cache geometry accepted")
	}
	cfg = smallConfig()
	cfg.PhysMemMB = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero physical memory accepted")
	}
}

func TestStepProducesForwardProgress(t *testing.T) {
	s := MustNew(smallConfig())
	g := &seqGen{name: "t", list: []trace.Access{access(0x400000, 0x10000000)}}
	s.StartMeasurement()
	if err := s.Run(g, 100); err != nil {
		t.Fatal(err)
	}
	r := s.Result()
	if r.Instructions == 0 || r.Cycles == 0 || r.IPC <= 0 {
		t.Fatalf("no progress: %+v", r)
	}
	if r.MemAccesses != 100 {
		t.Errorf("MemAccesses = %d, want 100", r.MemAccesses)
	}
}

func TestRepeatedAccessHitsEverywhere(t *testing.T) {
	s := MustNew(smallConfig())
	g := &seqGen{name: "t", list: []trace.Access{access(0x400000, 0x10000000)}}
	if err := s.Run(g, 10); err != nil {
		t.Fatal(err)
	}
	s.StartMeasurement()
	if err := s.Run(g, 1000); err != nil {
		t.Fatal(err)
	}
	r := s.Result()
	if r.Walks != 0 {
		t.Errorf("walks = %d for a single hot page, want 0", r.Walks)
	}
	if r.LLCMisses != 0 {
		t.Errorf("LLC misses = %d for a single hot block, want 0", r.LLCMisses)
	}
	// A hot L1 line and hot L1 TLB: IPC should approach the width bound
	// given the 2-instruction gaps (3 instructions per record).
	if r.IPC < 1 {
		t.Errorf("hot-loop IPC = %v unexpectedly low", r.IPC)
	}
}

func TestColdPagesWalkOnce(t *testing.T) {
	s := MustNew(smallConfig())
	var list []trace.Access
	const pages = 64
	for i := 0; i < pages; i++ {
		list = append(list, access(0x400000, arch.VAddr(0x20000000+i*arch.PageSize)))
	}
	g := &seqGen{name: "t", list: list}
	s.StartMeasurement()
	if err := s.Run(g, pages); err != nil {
		t.Fatal(err)
	}
	r := s.Result()
	// Each new data page walks once; the code page walks once too.
	if r.Walks < pages || r.Walks > pages+2 {
		t.Errorf("walks = %d, want ≈%d", r.Walks, pages)
	}
	if r.PTAccesses == 0 {
		t.Error("no PTE fetches recorded")
	}
}

func TestInclusionBackInvalidation(t *testing.T) {
	cfg := smallConfig()
	// Shrink the LLC to force evictions quickly: 16 KB, 4-way, 64 sets…
	cfg.LLC = CacheConfig{Name: "LLC", SizeKB: 16, Ways: 4, Latency: 40}
	cfg.L2 = CacheConfig{Name: "L2", SizeKB: 8, Ways: 4, Latency: 11}
	cfg.L1D = CacheConfig{Name: "L1D", SizeKB: 4, Ways: 4, Latency: 5}
	s := MustNew(cfg)
	// Touch many distinct blocks mapping over the whole LLC.
	var list []trace.Access
	for i := 0; i < 4096; i++ {
		list = append(list, access(0x400000, arch.VAddr(0x30000000+i*arch.BlockSize)))
	}
	g := &seqGen{name: "t", list: list}
	if err := s.Run(g, 4096); err != nil {
		t.Fatal(err)
	}
	// Inclusion invariant: every valid L2/L1D block is present in LLC.
	violations := 0
	for _, inner := range []*cache.Cache{s.l1d, s.l2} {
		inner.ForEach(func(_, _ int, b *cache.Block) {
			if _, ok := s.llc.Probe(b.Key); !ok {
				violations++
			}
		})
	}
	if violations != 0 {
		t.Errorf("%d inclusion violations", violations)
	}
}

func TestDPPredBypassReducesWalksOnStrideOverHotMix(t *testing.T) {
	// A hot set that slightly overflows the LLT plus a page-crossing
	// streaming sweep: bypassing the sweep must cut walks.
	mk := func(withPred bool) Result {
		s := MustNew(smallConfig())
		if withPred {
			dp, err := core.NewDPPred(core.DefaultDPPredConfig(s.LLT().Entries()))
			if err != nil {
				t.Fatal(err)
			}
			s.SetTLBPredictor(dp)
		}
		spec := trace.MixSpec{
			Name:   "mix",
			GapMin: 2, GapMax: 2,
			Streams: []trace.StreamSpec{
				{Label: "sweep", PC: 0x400000, Pattern: trace.Strided,
					Base: 0x40000000, Size: 64 << 20, Stride: 4160, Weight: 1},
				{Label: "hot", PC: 0x410000, Pattern: trace.Random,
					Base: 0x80000000, Size: 5 << 20, Weight: 2},
			},
		}
		g, err := trace.NewMix(spec, 7)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(g, 300_000); err != nil {
			t.Fatal(err)
		}
		s.StartMeasurement()
		if err := s.Run(g, 300_000); err != nil {
			t.Fatal(err)
		}
		return s.Result()
	}
	base := mk(false)
	dp := mk(true)
	if dp.Walks >= base.Walks {
		t.Errorf("dpPred walks %d ≥ baseline %d; bypass not helping", dp.Walks, base.Walks)
	}
	if dp.IPC <= base.IPC {
		t.Errorf("dpPred IPC %.4f ≤ baseline %.4f", dp.IPC, base.IPC)
	}
	if dp.LLTBypasses == 0 {
		t.Error("no bypasses recorded")
	}
}

func TestCBPredBypassesBlocksOnDOAPages(t *testing.T) {
	s := MustNew(smallConfig())
	dp, err := core.NewDPPred(core.DefaultDPPredConfig(s.LLT().Entries()))
	if err != nil {
		t.Fatal(err)
	}
	cb, err := core.NewCBPred(core.DefaultCBPredConfig(s.LLC().Capacity()))
	if err != nil {
		t.Fatal(err)
	}
	s.SetTLBPredictor(dp)
	s.SetLLCPredictor(cb)
	spec := trace.MixSpec{
		Name:   "mix",
		GapMin: 2, GapMax: 2,
		Streams: []trace.StreamSpec{
			{Label: "sweep", PC: 0x400000, Pattern: trace.Strided,
				Base: 0x40000000, Size: 64 << 20, Stride: 4160, Weight: 1},
			{Label: "hot", PC: 0x410000, Pattern: trace.Random,
				Base: 0x80000000, Size: 5 << 20, Weight: 2},
		},
	}
	g, err := trace.NewMix(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(g, 600_000); err != nil {
		t.Fatal(err)
	}
	if cb.Stats().Notifications == 0 {
		t.Fatal("cbPred never heard about DOA pages")
	}
	if s.Result(); cb.Stats().Predictions == 0 {
		t.Error("cbPred never bypassed a block")
	}
}

func TestAccuracyTrackingProducesGrades(t *testing.T) {
	s := MustNew(smallConfig())
	dp, err := core.NewDPPred(core.DefaultDPPredConfig(s.LLT().Entries()))
	if err != nil {
		t.Fatal(err)
	}
	s.SetTLBPredictor(dp)
	if err := s.EnableAccuracyTracking(); err != nil {
		t.Fatal(err)
	}
	w, err := trace.ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	g := w.New(1)
	s.StartMeasurement()
	if err := s.Run(g, 400_000); err != nil {
		t.Fatal(err)
	}
	r := s.Result()
	acc := r.LLTAccuracy
	if acc.TrueDOA == 0 {
		t.Fatal("mirror saw no true DOA pages on lbm")
	}
	if acc.Correct == 0 {
		t.Error("dpPred graded zero correct predictions on lbm")
	}
	if acc.Accuracy() < 0.5 {
		t.Errorf("dpPred accuracy %.2f on lbm; expected high", acc.Accuracy())
	}
}

func TestCharacterizationFindsDeadPages(t *testing.T) {
	s := MustNew(smallConfig())
	s.EnableCharacterization(10_000)
	w, err := trace.ByName("pr")
	if err != nil {
		t.Fatal(err)
	}
	g := w.New(1)
	s.StartMeasurement()
	if err := s.Run(g, 300_000); err != nil {
		t.Fatal(err)
	}
	s.Finish()
	r := s.Result()
	if r.LLTDead.Evictions == 0 || r.LLCDead.Evictions == 0 {
		t.Fatal("samplers saw no evictions")
	}
	if f := r.LLTDead.DeadFrac(); f < 0.5 {
		t.Errorf("LLT dead fraction %.2f on pr; paper reports most entries dead", f)
	}
	if f := r.LLTDead.DOAFrac(); f < 0.4 {
		t.Errorf("LLT DOA fraction %.2f on pr; DOA should dominate", f)
	}
	if r.Correlation.DOABlocks == 0 {
		t.Error("correlation tracker saw no DOA blocks")
	}
}

func TestShadowFillsServeMisses(t *testing.T) {
	s := MustNew(smallConfig())
	dp, err := core.NewDPPred(core.DefaultDPPredConfig(s.LLT().Entries()))
	if err != nil {
		t.Fatal(err)
	}
	s.SetTLBPredictor(dp)
	w, err := trace.ByName("cactusADM")
	if err != nil {
		t.Fatal(err)
	}
	g := w.New(1)
	if err := s.Run(g, 500_000); err != nil {
		t.Fatal(err)
	}
	// Not guaranteed large, but with heavy bypassing some mispredictions
	// occur and the shadow table must have served them.
	if dp.Stats().Predictions > 1000 && dp.Stats().ShadowHits == 0 {
		t.Log("note: many bypasses with zero shadow hits (perfectly accurate)")
	}
	_ = s.Result()
}

func TestNullPredictorsViaSetters(t *testing.T) {
	s := MustNew(smallConfig())
	s.SetTLBPredictor(nil)
	s.SetLLCPredictor(nil)
	g := &seqGen{name: "t", list: []trace.Access{access(0x400000, 0x10000000)}}
	if err := s.Run(g, 10); err != nil {
		t.Fatal(err)
	}
}

var _ = pred.NullTLB{} // keep the import for the setter test's intent
