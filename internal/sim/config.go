package sim

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/pagetable"
	"repro/internal/policy"
	"repro/internal/tlb"
	"repro/internal/walker"
)

// CacheConfig sizes one data-cache level.
type CacheConfig struct {
	// Name labels the level ("L1D", "L2", "LLC").
	Name string
	// SizeKB is the capacity in kibibytes.
	SizeKB int
	// Ways is the associativity.
	Ways int
	// Latency is the hit latency from the core in cycles.
	Latency arch.Lat
	// Policy is the replacement policy; nil means LRU.
	Policy policy.Policy
}

// blocks returns the level's total block count.
func (c CacheConfig) blocks() int { return c.SizeKB * 1024 / arch.BlockSize }

// sets returns the level's set count.
func (c CacheConfig) sets() int { return c.blocks() / c.Ways }

// validate checks the level's geometry.
func (c CacheConfig) validate() error {
	if c.SizeKB <= 0 || c.Ways <= 0 {
		return fmt.Errorf("sim: cache %q needs positive size and ways", c.Name)
	}
	if c.blocks()%c.Ways != 0 {
		return fmt.Errorf("sim: cache %q: %d blocks not divisible by %d ways",
			c.Name, c.blocks(), c.Ways)
	}
	return nil
}

// Config describes the whole simulated machine.
type Config struct {
	// L1ITLB, L1DTLB and LLT configure the TLB hierarchy.
	L1ITLB, L1DTLB, LLT tlb.Config
	// PWC configures the page-walk caches.
	PWC walker.Config
	// L1D, L2 and LLC configure the data-cache hierarchy. The LLC is
	// inclusive: its evictions back-invalidate L1D and L2.
	L1D, L2, LLC CacheConfig
	// MemLatency is the main-memory access latency beyond the LLC.
	MemLatency arch.Lat
	// Core configures the timing model.
	Core cpu.Config
	// PhysMemMB sizes simulated physical memory.
	PhysMemMB uint64
	// Alloc selects the frame-allocation order.
	Alloc pagetable.AllocPolicy
	// Seed perturbs the frame allocator's scramble.
	Seed uint64
}

// DefaultConfig reproduces the paper's Table I machine.
func DefaultConfig() Config {
	return Config{
		L1ITLB:     tlb.Config{Name: "L1I-TLB", Entries: 128, Ways: 4, Latency: 1},
		L1DTLB:     tlb.Config{Name: "L1D-TLB", Entries: 64, Ways: 4, Latency: 1},
		LLT:        tlb.Config{Name: "LLT", Entries: 1024, Ways: 8, Latency: 8},
		PWC:        walker.DefaultConfig(),
		L1D:        CacheConfig{Name: "L1D", SizeKB: 32, Ways: 8, Latency: 5},
		L2:         CacheConfig{Name: "L2", SizeKB: 256, Ways: 8, Latency: 11},
		LLC:        CacheConfig{Name: "LLC", SizeKB: 2048, Ways: 16, Latency: 40},
		MemLatency: 191,
		Core:       cpu.DefaultConfig(),
		PhysMemMB:  4096,
		Alloc:      pagetable.AllocScrambled,
		Seed:       1,
	}
}

// validate checks the whole configuration.
func (c Config) validate() error {
	for _, cc := range []CacheConfig{c.L1D, c.L2, c.LLC} {
		if err := cc.validate(); err != nil {
			return err
		}
	}
	if c.PhysMemMB == 0 {
		return fmt.Errorf("sim: PhysMemMB must be positive")
	}
	return nil
}
