package sim

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/pred"
	"repro/internal/trace"
)

// newCkptSystem builds the dpPred+cbPred machine used by the checkpoint
// tests — the configuration with the most serialized state.
func newCkptSystem(t *testing.T) *System {
	t.Helper()
	s := MustNew(smallConfig())
	dp, err := newTestDPPred(s)
	if err != nil {
		t.Fatal(err)
	}
	s.SetTLBPredictor(dp)
	cb, err := core.NewCBPred(core.DefaultCBPredConfig(s.LLC().Capacity()))
	if err != nil {
		t.Fatal(err)
	}
	s.SetLLCPredictor(cb)
	return s
}

// TestCheckpointRoundTrip is the restore contract: a fresh machine restored
// from a checkpoint and spliced onto the same stream position must measure
// bit-identically to the machine that wrote it — and re-serializing the
// restored state must reproduce the checkpoint byte for byte.
func TestCheckpointRoundTrip(t *testing.T) {
	const warm, meas = 100_000, 200_000
	w, err := trace.ByName("cc")
	if err != nil {
		t.Fatal(err)
	}

	orig := newCkptSystem(t)
	g := w.New(orig.cfg.Seed)
	if err := orig.Run(g, warm); err != nil {
		t.Fatal(err)
	}
	var ck bytes.Buffer
	if err := orig.WriteCheckpoint(&ck, w.Name); err != nil {
		t.Fatal(err)
	}

	rest := newCkptSystem(t)
	meta, err := rest.ReadCheckpoint(bytes.NewReader(ck.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Workload != w.Name || meta.Accesses != warm {
		t.Fatalf("meta = %+v, want workload %q with %d accesses", meta, w.Name, warm)
	}

	// The restored state must re-serialize byte-identically.
	var ck2 bytes.Buffer
	if err := rest.WriteCheckpoint(&ck2, w.Name); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ck.Bytes(), ck2.Bytes()) {
		t.Error("re-serialized checkpoint differs from the original")
	}

	g2 := w.New(rest.cfg.Seed)
	for i := uint64(0); i < meta.Accesses; i++ {
		g2.Next()
	}
	run := func(s *System, g trace.Generator) Result {
		s.StartMeasurement()
		if err := s.Run(g, meas); err != nil {
			t.Fatal(err)
		}
		s.Finish()
		return s.Result()
	}
	got, want := run(rest, g2), run(orig, g)
	if got != want {
		t.Errorf("restored run diverged from original:\n  restored=%+v\n  original=%+v", got, want)
	}
}

// TestCheckpointMismatchRejected: restoring under different flags must fail
// loudly, never silently diverge.
func TestCheckpointMismatchRejected(t *testing.T) {
	w, err := trace.ByName("cc")
	if err != nil {
		t.Fatal(err)
	}
	orig := newCkptSystem(t)
	g := w.New(orig.cfg.Seed)
	if err := orig.Run(g, 50_000); err != nil {
		t.Fatal(err)
	}
	var ck bytes.Buffer
	if err := orig.WriteCheckpoint(&ck, w.Name); err != nil {
		t.Fatal(err)
	}

	t.Run("seed", func(t *testing.T) {
		cfg := smallConfig()
		cfg.Seed = 999
		s := MustNew(cfg)
		dp, err := newTestDPPred(s)
		if err != nil {
			t.Fatal(err)
		}
		s.SetTLBPredictor(dp)
		cb, err := core.NewCBPred(core.DefaultCBPredConfig(s.LLC().Capacity()))
		if err != nil {
			t.Fatal(err)
		}
		s.SetLLCPredictor(cb)
		if _, err := s.ReadCheckpoint(bytes.NewReader(ck.Bytes())); err == nil {
			t.Error("seed mismatch accepted")
		}
	})
	t.Run("predictors", func(t *testing.T) {
		s := MustNew(smallConfig())
		if _, err := s.ReadCheckpoint(bytes.NewReader(ck.Bytes())); err == nil {
			t.Error("predictor mismatch accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		s := newCkptSystem(t)
		if _, err := s.ReadCheckpoint(bytes.NewReader(ck.Bytes()[:ck.Len()/2])); err == nil {
			t.Error("truncated checkpoint accepted")
		}
	})
	t.Run("garbage", func(t *testing.T) {
		s := newCkptSystem(t)
		if _, err := s.ReadCheckpoint(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
			t.Error("garbage input accepted")
		}
	})
}

// TestCheckpointRefusals mirrors the fork guards: instrumentation and
// non-codec predictors cannot be checkpointed.
func TestCheckpointRefusals(t *testing.T) {
	var ck bytes.Buffer
	t.Run("instrumented", func(t *testing.T) {
		s := newCkptSystem(t)
		if err := s.EnableAccuracyTracking(); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteCheckpoint(&ck, "x"); err == nil {
			t.Error("checkpoint with accuracy tracking enabled was not refused")
		}
	})
	t.Run("recorder", func(t *testing.T) {
		s := MustNew(smallConfig())
		s.SetTLBPredictor(pred.NewRecorderTLB(pred.NewDOARecord()))
		if err := s.WriteCheckpoint(&ck, "x"); err == nil {
			t.Error("checkpoint with the oracle recorder installed was not refused")
		}
	})
}
