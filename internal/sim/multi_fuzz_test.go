package sim

import (
	"reflect"
	"testing"
)

// FuzzMultiCoreDeterminism is the machine-level determinism contract under
// fuzzer-chosen topologies: any (cores, tenants, quantum, unmap cadence,
// shootdown policy, workload seed) combination must produce deeply equal
// results when run twice from scratch. Scheduling, shootdown broadcast
// order, shared-structure contention and ASID tagging all sit under this
// single invariant.
func FuzzMultiCoreDeterminism(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint16(0), uint16(0), uint64(1), false)
	f.Add(uint8(2), uint8(3), uint16(700), uint16(900), uint64(7), false)
	f.Add(uint8(4), uint8(6), uint16(250), uint16(400), uint64(42), true)
	f.Fuzz(func(t *testing.T, cores, tenants uint8, quantum, unmapEvery uint16, seed uint64, fullFlush bool) {
		mc := MultiConfig{
			Machine:    smallConfig(),
			Cores:      int(cores%4) + 1,
			Tenants:    int(tenants%6) + 1,
			Quantum:    uint64(quantum),
			UnmapEvery: uint64(unmapEvery),
			Shootdown:  ShootdownFlushASID,
		}
		if fullFlush {
			mc.Shootdown = ShootdownFullFlush
		}
		const steps = 12_000
		bufs := multiBuffers(t, mc.Tenants, seed, steps)
		run := func() MultiResult {
			m, err := NewMulti(mc)
			if err != nil {
				t.Fatal(err)
			}
			installMultiPreds(t, m)
			if err := m.EnableAccuracyTracking(); err != nil {
				t.Fatal(err)
			}
			m.StartMeasurement()
			if err := m.Run(readers(bufs, nil), steps); err != nil {
				t.Fatal(err)
			}
			m.Finish()
			return m.Result()
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("runs of %dc×%dt q=%d u=%d %s diverged:\n  a=%+v\n  b=%+v",
				mc.Cores, mc.Tenants, mc.Quantum, mc.UnmapEvery, mc.Shootdown, a, b)
		}
		// A third run through fork must match too: fork at time zero is
		// construction-equivalent.
		m, err := NewMulti(mc)
		if err != nil {
			t.Fatal(err)
		}
		installMultiPreds(t, m)
		fk, err := m.Fork()
		if err != nil {
			t.Fatal(err)
		}
		if err := fk.EnableAccuracyTracking(); err != nil {
			t.Fatal(err)
		}
		fk.StartMeasurement()
		if err := fk.Run(readers(bufs, nil), steps); err != nil {
			t.Fatal(err)
		}
		fk.Finish()
		if c := fk.Result(); !reflect.DeepEqual(a, c) {
			t.Errorf("forked run of %dc×%dt diverged from fresh runs:\n  fresh=%+v\n  fork=%+v",
				mc.Cores, mc.Tenants, a, c)
		}
	})
}
