package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestConcurrentSystemsShareNothing is the isolation contract the parallel
// experiment runner builds on: independently constructed System instances
// carry no shared mutable state, so N concurrent seeded runs must produce
// Results bit-equal to a sequential run of the same configuration. The
// race detector (tier-1 runs with -race) turns any hidden sharing into a
// hard failure.
func TestConcurrentSystemsShareNothing(t *testing.T) {
	runOne := func() (Result, error) {
		cfg := smallConfig()
		cfg.Seed = 3
		s, err := New(cfg)
		if err != nil {
			return Result{}, err
		}
		dp, err := newTestDPPred(s)
		if err != nil {
			return Result{}, err
		}
		s.SetTLBPredictor(dp)
		cb, err := core.NewCBPred(core.DefaultCBPredConfig(s.LLC().Capacity()))
		if err != nil {
			return Result{}, err
		}
		s.SetLLCPredictor(cb)
		w, err := trace.ByName("sssp")
		if err != nil {
			return Result{}, err
		}
		g := w.New(3)
		if err := s.Run(g, 40_000); err != nil {
			return Result{}, err
		}
		s.StartMeasurement()
		if err := s.Run(g, 80_000); err != nil {
			return Result{}, err
		}
		s.Finish()
		return s.Result(), nil
	}

	want, err := runOne()
	if err != nil {
		t.Fatal(err)
	}

	const n = 4
	type outcome struct {
		res Result
		err error
	}
	ch := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func() {
			res, err := runOne()
			ch <- outcome{res, err}
		}()
	}
	for i := 0; i < n; i++ {
		got := <-ch
		if got.err != nil {
			t.Fatal(got.err)
		}
		if got.res != want {
			t.Errorf("concurrent run diverged from sequential:\n  got  %+v\n  want %+v", got.res, want)
		}
	}
}
