package sim

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/pred"
	"repro/internal/trace"
)

// strideGen emits a perfect page-stride pattern with enough compute
// between misses that the page walker has idle slots — the best case for
// (low-priority) distance prefetching.
type strideGen struct {
	vpn arch.VPN
}

func (g *strideGen) Name() string { return "stride" }
func (g *strideGen) Next() trace.Access {
	g.vpn += 2
	return trace.Access{PC: 0x400000, Addr: g.vpn.Addr(), Gap: 120}
}

func TestDistancePrefetcherCutsStrideWalks(t *testing.T) {
	mk := func(withPref bool) Result {
		s := MustNew(smallConfig())
		if withPref {
			p, err := pred.NewDistancePrefetcher(pred.DefaultDistancePrefetcherConfig())
			if err != nil {
				t.Fatal(err)
			}
			s.SetTLBPrefetcher(p)
		}
		// Touch the pages once first so prefetch targets are mapped
		// (prefetchers never fault in new pages).
		g := &strideGen{vpn: 0x100000}
		if err := s.Run(g, 30_000); err != nil {
			t.Fatal(err)
		}
		g.vpn = 0x100000 // restart the sweep over now-mapped pages
		s.StartMeasurement()
		if err := s.Run(g, 20_000); err != nil {
			t.Fatal(err)
		}
		return s.Result()
	}
	base := mk(false)
	pref := mk(true)
	if pref.Walks >= base.Walks/2 {
		t.Errorf("prefetching left %d walks of %d; stride should be nearly fully covered",
			pref.Walks, base.Walks)
	}
	if pref.IPC <= base.IPC {
		t.Errorf("prefetch IPC %.4f ≤ baseline %.4f", pref.IPC, base.IPC)
	}
}

func TestPrefetchStatsCount(t *testing.T) {
	s := MustNew(smallConfig())
	p, err := pred.NewDistancePrefetcher(pred.DefaultDistancePrefetcherConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.SetTLBPrefetcher(p)
	g := &strideGen{vpn: 0x200000}
	if err := s.Run(g, 30_000); err != nil {
		t.Fatal(err)
	}
	g.vpn = 0x200000
	if err := s.Run(g, 20_000); err != nil {
		t.Fatal(err)
	}
	issued, useful := s.PrefetchStats()
	if issued == 0 {
		t.Fatal("no prefetch fills issued on a perfect stride")
	}
	if useful == 0 {
		t.Error("no prefetch fill was ever hit")
	}
	if useful > issued {
		t.Errorf("useful %d > issued %d", useful, issued)
	}
}

func TestPrefetchDoesNotFaultNewPages(t *testing.T) {
	s := MustNew(smallConfig())
	p, err := pred.NewDistancePrefetcher(pred.DefaultDistancePrefetcherConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.SetTLBPrefetcher(p)
	g := &strideGen{vpn: 0x300000}
	if err := s.Run(g, 5_000); err != nil {
		t.Fatal(err)
	}
	// Pages mapped must equal pages demanded (plus code/PT): the
	// prefetcher must not allocate beyond the demand stream.
	demanded := uint64(5_000) // one new page per access on this stride
	mapped := s.PageTable().MappedPages()
	if mapped > demanded+16 {
		t.Errorf("%d pages mapped for %d demanded; prefetcher faulted pages in", mapped, demanded)
	}
}

func TestPrefetchedEntriesDoNotTrainDPPred(t *testing.T) {
	s := MustNew(smallConfig())
	dp, err := newTestDPPred(s)
	if err != nil {
		t.Fatal(err)
	}
	s.SetTLBPredictor(dp)
	p, err := pred.NewDistancePrefetcher(pred.DefaultDistancePrefetcherConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.SetTLBPrefetcher(p)
	g := &strideGen{vpn: 0x400000}
	if err := s.Run(g, 30_000); err != nil {
		t.Fatal(err)
	}
	g.vpn = 0x400000
	if err := s.Run(g, 30_000); err != nil {
		t.Fatal(err)
	}
	// The PC hash 0 row (used by prefetched fills if they trained)
	// must not have been trained by prefetched evictions: we can't
	// observe rows directly here, but the combination must at least
	// keep running correctly and produce bypasses from the demand PCs.
	st := dp.Stats()
	if st.Increments == 0 {
		t.Error("dpPred saw no demand training at all")
	}
}

// newTestDPPred builds a default dpPred for the system's LLT.
func newTestDPPred(s *System) (*core.DPPred, error) {
	return core.NewDPPred(core.DefaultDPPredConfig(s.LLT().Entries()))
}
