package sim

import (
	"testing"

	"repro/internal/pred"
)

// BenchmarkRegistryDispatch measures the warm step path with the paper's
// TLB predictor resolved and constructed through the registry instead of a
// direct constructor call. Registry dispatch happens once, at construction;
// this benchmark pins that registry-built predictors add no indirection to
// the hot loop — it must track BenchmarkStepObserverDisabled (~170 ns/op),
// and the CI benchstat gate fails the build if it regresses.
func BenchmarkRegistryDispatch(b *testing.B) {
	reg, err := pred.Lookup("dpPred")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	s := MustNew(cfg)
	p, err := reg.NewTLB(s.LLT().Inner())
	if err != nil {
		b.Fatal(err)
	}
	s.SetTLBPredictor(p)
	g := obsTestMix(b, 3)
	if err := s.Run(g, 100_000); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(g.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegistryLookupConstruct measures the cold path: name resolution
// plus predictor construction over the Table I LLT. This runs once per
// grid cell, so it only needs to stay far off the per-access scale.
func BenchmarkRegistryLookupConstruct(b *testing.B) {
	cfg := DefaultConfig()
	s := MustNew(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg, err := pred.Lookup("dpPred")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := reg.NewTLB(s.LLT().Inner()); err != nil {
			b.Fatal(err)
		}
	}
}
