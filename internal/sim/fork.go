package sim

import (
	"fmt"

	"repro/internal/pred"
)

// Fork deep-copies the machine — TLBs, caches, page table, walker, core and
// predictors — into an independent System that continues from the identical
// warm state. Forking a warmed baseline and stepping the fork produces
// bit-identical results to stepping a freshly built system through the same
// prefix: every structure implements a semantics-preserving Clone, and the
// fork shares no mutable state with the original (so both sides can be
// stepped concurrently).
//
// Fork refuses systems that cannot be duplicated faithfully: attached
// observers and enabled instrumentation hold references into the original
// (fork first, then instrument the fork), a substituted test core model has
// no Clone seam, and the oracle predictors are tied to their two-pass
// record/replay protocol.
func (s *System) Fork() (*System, error) {
	if s.lltAcc != nil || s.lltSampler != nil || s.corr != nil {
		return nil, fmt.Errorf("sim: cannot fork with instrumentation enabled; fork first, then instrument the fork")
	}
	if s.observer != nil {
		return nil, fmt.Errorf("sim: cannot fork with an observer attached")
	}
	if s.cpuCore == nil {
		return nil, fmt.Errorf("sim: cannot fork a system with a substituted core model")
	}
	ct, ok := s.tlbPred.(pred.ClonableTLB)
	if !ok {
		return nil, fmt.Errorf("sim: TLB predictor %q is not forkable", s.tlbPred.Name())
	}
	cl, ok := s.llcPred.(pred.ClonableLLC)
	if !ok {
		return nil, fmt.Errorf("sim: LLC predictor %q is not forkable", s.llcPred.Name())
	}
	var pref *pred.DistancePrefetcher
	if s.tlbPref != nil {
		dp, ok := s.tlbPref.(*pred.DistancePrefetcher)
		if !ok {
			return nil, fmt.Errorf("sim: TLB prefetcher %q is not forkable", s.tlbPref.Name())
		}
		pref = dp
	}

	n := &System{
		cfg:             s.cfg,
		sampleEvery:     s.sampleEvery,
		prefFills:       s.prefFills,
		prefUseful:      s.prefUseful,
		accesses:        s.accesses,
		walks:           s.walks,
		shadowFills:     s.shadowFills,
		walkerBusyUntil: s.walkerBusyUntil,
		walkQueueCycles: s.walkQueueCycles,
		stepNow:         s.stepNow,
		asidKey:         s.asidKey,
		base:            s.base,
	}
	var err error
	if n.itlb, err = s.itlb.Clone(); err != nil {
		return nil, err
	}
	if n.dtlb, err = s.dtlb.Clone(); err != nil {
		return nil, err
	}
	if n.llt, err = s.llt.Clone(); err != nil {
		return nil, err
	}
	if n.l1d, err = s.l1d.Clone(); err != nil {
		return nil, err
	}
	if n.l2, err = s.l2.Clone(); err != nil {
		return nil, err
	}
	if n.llc, err = s.llc.Clone(); err != nil {
		return nil, err
	}
	n.pt = s.pt.Clone()
	core := s.cpuCore.Clone()
	n.core = core
	n.cpuCore = core
	if n.walk, err = s.walk.Clone(n.pt, n.ptFetch); err != nil {
		return nil, err
	}
	if n.tlbPred, err = ct.CloneTLB(n.llt.Inner()); err != nil {
		return nil, err
	}
	if n.llcPred, err = cl.CloneLLC(n.llc); err != nil {
		return nil, err
	}
	if pref != nil {
		n.tlbPref = pref.Clone()
	}
	n.cachePredIfaces()
	return n, nil
}
