package sim

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/obs"
	"repro/internal/trace"
)

// materializeWorkload captures n accesses of a named workload into a
// columnar buffer (the input both execution paths replay from).
func materializeWorkload(tb testing.TB, name string, seed, n uint64) *trace.Buffer {
	tb.Helper()
	w, err := trace.ByName(name)
	if err != nil {
		tb.Fatal(err)
	}
	b, err := trace.Materialize(w.New(seed), n)
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

// checkpointBytes serializes the machine's full warm state, the strongest
// equality the simulator can express: every TLB entry, cache block,
// page-table node, predictor table and counter must match bit for bit.
func checkpointBytes(tb testing.TB, s *System) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf, "batch-diff"); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunBufferMatchesStep is the batched path's correctness contract:
// feeding the same trace through RunBuffer must leave the machine in a
// state bit-identical to the per-access Step loop — same Result, same
// checkpoint image — across predictor, sampler and interval-observer
// configurations (the sampler/interval cases exercise the segment
// splitting that hoists the modulus checks out of the inner loop).
func TestRunBufferMatchesStep(t *testing.T) {
	// Odd warm/measure counts so chunk boundaries never line up with
	// ctxCheckStride, and the run wraps the buffer several times.
	const bufLen, warm, meas = 10_007, 20_011, 30_031
	scenarios := []struct {
		name  string
		ckpt  bool // instrumented machines refuse to checkpoint
		setup func(t *testing.T, s *System)
	}{
		{"baseline", true, func(t *testing.T, s *System) {}},
		{"dp-predictor", true, func(t *testing.T, s *System) {
			dp, err := newTestDPPred(s)
			if err != nil {
				t.Fatal(err)
			}
			s.SetTLBPredictor(dp)
		}},
		{"characterization", false, func(t *testing.T, s *System) {
			// A prime sampleEvery keeps sampling points misaligned with
			// every chunk boundary.
			s.EnableCharacterization(4099)
		}},
		{"intervals", false, func(t *testing.T, s *System) {
			s.AttachObserver(&obs.Observer{Interval: obs.NewIntervalRecorder(5003)})
		}},
	}
	for _, wl := range []string{"sssp", "mcf"} {
		buf := materializeWorkload(t, wl, 7, bufLen)
		for _, sc := range scenarios {
			t.Run(wl+"/"+sc.name, func(t *testing.T) {
				stepSys := MustNew(smallConfig())
				sc.setup(t, stepSys)
				rd := buf.Reader()
				if err := stepSys.Run(rd, warm); err != nil {
					t.Fatal(err)
				}
				stepSys.StartMeasurement()
				if err := stepSys.Run(rd, meas); err != nil {
					t.Fatal(err)
				}

				batchSys := MustNew(smallConfig())
				sc.setup(t, batchSys)
				brd := buf.Reader()
				if err := batchSys.RunBuffer(brd, warm); err != nil {
					t.Fatal(err)
				}
				batchSys.StartMeasurement()
				if err := batchSys.RunBuffer(brd, meas); err != nil {
					t.Fatal(err)
				}

				if a, b := stepSys.Result(), batchSys.Result(); a != b {
					t.Errorf("results diverged:\n  step:  %+v\n  batch: %+v", a, b)
				}
				if sc.ckpt {
					if a, b := checkpointBytes(t, stepSys), checkpointBytes(t, batchSys); !bytes.Equal(a, b) {
						t.Errorf("checkpoints diverged (%d vs %d bytes)", len(a), len(b))
					}
				}
			})
		}
	}
}

// TestRunBufferStreamedV2MatchesStep closes the loop end to end: a trace
// round-tripped through the compressed v2 format and replayed chunk by
// chunk through the batched path must match the per-access replay of the
// in-memory original.
func TestRunBufferStreamedV2MatchesStep(t *testing.T) {
	const bufLen, n = 10_007, 25_013
	buf := materializeWorkload(t, "cc", 11, bufLen)
	var enc bytes.Buffer
	if _, err := buf.WriteToV2(&enc); err != nil {
		t.Fatal(err)
	}
	ct, err := trace.OpenChunked(bytes.NewReader(enc.Bytes()), int64(enc.Len()))
	if err != nil {
		t.Fatal(err)
	}

	stepSys := MustNew(smallConfig())
	stepSys.StartMeasurement()
	if err := stepSys.Run(buf.Reader(), n); err != nil {
		t.Fatal(err)
	}
	batchSys := MustNew(smallConfig())
	batchSys.StartMeasurement()
	if err := batchSys.RunBuffer(ct.NewReader(), n); err != nil {
		t.Fatal(err)
	}
	if a, b := stepSys.Result(), batchSys.Result(); a != b {
		t.Errorf("results diverged:\n  step:  %+v\n  batch: %+v", a, b)
	}
	if a, b := checkpointBytes(t, stepSys), checkpointBytes(t, batchSys); !bytes.Equal(a, b) {
		t.Errorf("checkpoints diverged (%d vs %d bytes)", len(a), len(b))
	}
}

// TestRunBufferEmptySource: an empty trace must fail through the batched
// path with exactly the error the per-access path reports (the empty
// chunk falls back to stepping the latched zero access).
func TestRunBufferEmptySource(t *testing.T) {
	empty := trace.NewBuffer("empty", 0)
	stepErr := MustNew(smallConfig()).Run(empty.Reader(), 100)
	batchErr := MustNew(smallConfig()).RunBuffer(empty.Reader(), 100)
	if stepErr == nil || batchErr == nil {
		t.Fatalf("empty trace accepted: step=%v batch=%v", stepErr, batchErr)
	}
	if stepErr.Error() != batchErr.Error() {
		t.Errorf("error mismatch:\n  step:  %v\n  batch: %v", stepErr, batchErr)
	}
}

// TestRunBufferContextCanceled: cancellation must land at a chunk
// boundary with the same error shape as the per-access path.
func TestRunBufferContextCanceled(t *testing.T) {
	buf := materializeWorkload(t, "sssp", 3, 4096)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := MustNew(smallConfig()).RunBufferContext(ctx, buf.Reader(), 1<<20)
	if err == nil {
		t.Fatal("canceled context did not stop the run")
	}
	if want := fmt.Sprintf("sim: canceled at access 0 of %d: %v", 1<<20, context.Canceled); err.Error() != want {
		t.Errorf("error = %q, want %q", err, want)
	}
}

// TestMultiChunkedMatchesPerAccess: MultiSystem's chunked step loop must
// be bit-identical to the per-access loop — same scheduling, same unmap
// injection, same shootdowns — when the tenant generators support chunk
// draining. The per-access run hides the ChunkReader view behind a plain
// Generator wrapper to force the old loop.
func TestMultiChunkedMatchesPerAccess(t *testing.T) {
	mc := MultiConfig{
		Machine:    smallConfig(),
		Cores:      2,
		Tenants:    3,
		Quantum:    101,
		Shootdown:  ShootdownFlushASID,
		UnmapEvery: 503,
	}
	bufs := []*trace.Buffer{
		materializeWorkload(t, "sssp", 1, 5003),
		materializeWorkload(t, "cc", 2, 5003),
		materializeWorkload(t, "mcf", 3, 5003),
	}
	const n = 30_011

	run := func(chunked bool) (*MultiSystem, MultiResult) {
		m, err := NewMulti(mc)
		if err != nil {
			t.Fatal(err)
		}
		gens := make([]trace.Generator, len(bufs))
		for i, b := range bufs {
			if chunked {
				gens[i] = b.Reader()
			} else {
				gens[i] = genOnly{b.Reader()}
			}
		}
		m.StartMeasurement()
		if err := m.Run(gens, n); err != nil {
			t.Fatal(err)
		}
		return m, m.Result()
	}
	pm, pr := run(false)
	cm, cr := run(true)
	if fmt.Sprintf("%+v", pr) != fmt.Sprintf("%+v", cr) {
		t.Errorf("results diverged:\n  per-access: %+v\n  chunked:    %+v", pr, cr)
	}
	var pb, cb bytes.Buffer
	if err := pm.WriteCheckpoint(&pb, "multi-diff"); err != nil {
		t.Fatal(err)
	}
	if err := cm.WriteCheckpoint(&cb, "multi-diff"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb.Bytes(), cb.Bytes()) {
		t.Errorf("checkpoints diverged (%d vs %d bytes)", pb.Len(), cb.Len())
	}
}

// genOnly narrows a ChunkReader to the plain Generator interface, forcing
// the per-access code paths in differential tests.
type genOnly struct{ g trace.Generator }

func (w genOnly) Next() trace.Access { return w.g.Next() }
func (w genOnly) Name() string       { return w.g.Name() }

// TestBatchSteadyStateZeroAlloc: the batched inner loop must not allocate
// once the machine is warm — the whole point of draining columnar chunks
// is that the steady state runs allocation-free.
func TestBatchSteadyStateZeroAlloc(t *testing.T) {
	buf := materializeWorkload(t, "sssp", 5, 8192)
	s := MustNew(smallConfig())
	rd := buf.Reader()
	// Warm every structure and map every page the trace touches.
	if err := s.RunBuffer(rd, 64_000); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(10, func() {
		if err := s.RunBuffer(rd, 8192); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("steady-state RunBuffer allocated %.1f times per run, want 0", avg)
	}
}

// FuzzBatchVsStep feeds fuzzer-shaped access sequences through both
// execution paths on two identical machines and requires identical final
// Results and bit-identical checkpoints. VAs are masked to a small window
// so arbitrary bytes cannot exhaust physical memory, and PCs to a window
// that still spans many pages.
func FuzzBatchVsStep(f *testing.F) {
	for _, wl := range []string{"sssp", "cc"} {
		b := materializeWorkload(f, wl, 1, 64)
		var raw []byte
		for i := uint64(0); i < b.Len(); i++ {
			a := b.At(i)
			var rec [18]byte
			binary.LittleEndian.PutUint64(rec[0:], a.PC)
			binary.LittleEndian.PutUint64(rec[8:], uint64(a.Addr))
			rec[16] = byte(a.Gap)
			if a.Write {
				rec[17] |= 1
			}
			if a.Dependent {
				rec[17] |= 2
			}
			raw = append(raw, rec[:]...)
		}
		f.Add(raw, uint64(300))
	}
	f.Add([]byte{}, uint64(10))
	f.Add(bytes.Repeat([]byte{0xAB}, 18*7), uint64(9001))

	f.Fuzz(func(t *testing.T, data []byte, n uint64) {
		nrec := len(data) / 18
		if nrec == 0 || nrec > 4096*3 {
			return
		}
		// Cap the run so one fuzz exec stays in the milliseconds: 16k+
		// accesses cross several chunk boundaries and wrap small inputs
		// many times, which is where the interesting divergence would be.
		n %= 16_384
		buf := trace.NewBuffer("fuzz", nrec)
		for i := 0; i < nrec; i++ {
			rec := data[i*18:]
			buf.Append(trace.Access{
				PC:        binary.LittleEndian.Uint64(rec) & 0x3F_FFFF,
				Addr:      arch.VAddr(binary.LittleEndian.Uint64(rec[8:]) & 0xFF_FFFF),
				Gap:       uint32(rec[16] & 0x3F),
				Write:     rec[17]&1 != 0,
				Dependent: rec[17]&2 != 0,
			})
		}

		stepSys := MustNew(smallConfig())
		stepErr := stepSys.Run(buf.Reader(), n)
		batchSys := MustNew(smallConfig())
		batchErr := batchSys.RunBuffer(buf.Reader(), n)

		if (stepErr == nil) != (batchErr == nil) {
			t.Fatalf("error presence diverged: step=%v batch=%v", stepErr, batchErr)
		}
		if stepErr != nil {
			return
		}
		if a, b := stepSys.Result(), batchSys.Result(); a != b {
			t.Fatalf("results diverged:\n  step:  %+v\n  batch: %+v", a, b)
		}
		if a, b := checkpointBytes(t, stepSys), checkpointBytes(t, batchSys); !bytes.Equal(a, b) {
			t.Fatal("checkpoints diverged")
		}
	})
}

// replayBenchBuffer builds the locality-heavy replay trace the warm
// benchmarks share: a handful of PC sites sweeping sequentially over a
// 16 KiB window — a hot kernel loop whose working set is L1-resident, so
// once warm every structure hits and the measurement isolates pure
// replay cost (generator dispatch, record reconstruction, repeated
// associative lookups) from miss handling, which is identical in both
// paths. The batched path's memoized run fast paths target exactly this
// regime; the per-access benchmark on the same buffer is its honest
// baseline.
func replayBenchBuffer(tb testing.TB) *trace.Buffer {
	tb.Helper()
	const n = 1 << 16
	b := trace.NewBuffer("replay-warm", n)
	for i := 0; i < n; i++ {
		pc := 0x400000 + uint64(i&7)*4
		va := 0x10000000 + uint64(i*8)&(1<<14-1)
		b.Append(trace.Access{PC: pc, Addr: arch.VAddr(va), Gap: 1, Write: i&15 == 0})
	}
	return b
}

// BenchmarkStepWarmReplay: per-access replay cost of a warm machine on
// the locality-heavy buffer — the baseline BenchmarkRunBufferWarm is
// gated against.
func BenchmarkStepWarmReplay(b *testing.B) {
	s := MustNew(DefaultConfig())
	buf := replayBenchBuffer(b)
	rd := buf.Reader()
	if err := s.Run(rd, buf.Len()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(rd.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunBufferWarm: batched replay of the same buffer on the same
// warm machine, drained in columnar chunks.
func BenchmarkRunBufferWarm(b *testing.B) {
	s := MustNew(DefaultConfig())
	buf := replayBenchBuffer(b)
	rd := buf.Reader()
	if err := s.RunBuffer(rd, buf.Len()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.RunBuffer(rd, uint64(b.N)); err != nil {
		b.Fatal(err)
	}
}
