// Package sim wires the substrates into the paper's full machine: split L1
// TLBs over a unified L2 TLB (the LLT), a radix page walker with page-walk
// caches whose PTE fetches traverse the data caches, a three-level
// inclusive cache hierarchy, and the timing core. Predictors plug into the
// LLT and LLC fill/evict paths exactly at the hook points Figures 6 and 8
// describe; instrumentation (accuracy mirrors, dead-entry samplers, the
// Table III correlation tracker) observes the same events.
package sim

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/pagetable"
	"repro/internal/policy"
	"repro/internal/pred"
	"repro/internal/stats"
	"repro/internal/tlb"
	"repro/internal/trace"
	"repro/internal/walker"
	"repro/internal/xhash"
)

// System is one simulated machine instance.
type System struct {
	cfg Config

	itlb, dtlb, llt *tlb.TLB
	pt              *pagetable.PageTable
	walk            *walker.Walker
	l1d, l2, llc    *cache.Cache
	core            coreModel
	// cpuCore is the concrete core when the coreModel seam holds the real
	// timing model (the production case); the hot path calls it directly
	// so Advance/Memory/Cycles dispatch statically. nil when a test
	// substitutes a different coreModel.
	cpuCore *cpu.Core

	tlbPred pred.TLBPredictor
	llcPred pred.LLCPredictor
	tlbPref pred.TLBPrefetcher

	// Cached optional-interface views of the installed predictors,
	// refreshed whenever a predictor is set. The hot path tests these
	// nil-able fields instead of repeating type assertions per access.
	tlbObs pred.AccessObserver
	llcObs pred.AccessObserver
	tlbFF  pred.FillFinisher
	llcFF  pred.FillFinisher
	llcDOA pred.DOAPageListener

	prefFills  uint64
	prefUseful uint64

	// Instrumentation (nil unless enabled).
	lltAcc      *stats.AccuracyTracker
	llcAcc      *stats.AccuracyTracker
	lltSampler  *stats.DeadSampler
	llcSampler  *stats.DeadSampler
	corr        *stats.DOACorrelation
	sampleEvery uint64

	// Observability (nil/zero unless attached; see AttachObserver). tr
	// and intervalEvery are cached from observer so the hot-path guards
	// are a single load each.
	observer      *obs.Observer
	tr            *obs.Tracer
	intervalEvery uint64
	intervalBase  snapshot

	// Predictor-quality telemetry and latency/lifetime histograms,
	// enabled by AttachObserver when the observer carries a metrics
	// registry (all nil otherwise, so the disabled hot path pays one nil
	// check per hook). All of it is passive: mirrors and histograms only
	// observe, so results are bit-identical with or without it.
	lltConf, llcConf *stats.ConfusionTracker
	histMemLat       *obs.Histogram // total memory latency per access
	histWalkDepth    *obs.Histogram // PTE fetches per page walk (1–4)
	histWalkLat      *obs.Histogram // effective walk latency, queueing included
	histLLTLife      *obs.Histogram // LLT entry residency, fill → eviction
	histLLCLife      *obs.Histogram // LLC block residency, fill → eviction

	// Counters owned by the system.
	accesses    uint64
	walks       uint64
	shadowFills uint64

	// walkerBusyUntil models the single hardware page walker: concurrent
	// LLT misses queue behind it, so walk latency cannot be hidden by
	// memory-level parallelism (the paper's premise, §I).
	walkerBusyUntil uint64
	// walkQueueCycles accumulates time walks spent waiting for the
	// walker (reported for diagnostics).
	walkQueueCycles uint64

	// stepNow is the core cycle at the start of the current Step. The
	// core's clock only moves in Advance (before the access) and Memory
	// (after it), so every structure touched within one access sees the
	// same timestamp; caching it avoids float→int conversions per probe.
	stepNow uint64

	// asidKey tags every virtual page number this system translates with
	// its current address-space identifier (the tenant's ASID shifted
	// above the VPN bits). 0 — the single-address-space case — leaves all
	// keys numerically unchanged, so a standalone System behaves exactly
	// as before. MultiSystem swaps it on context switches.
	asidKey uint64

	// backInv, when set, replaces the local inclusive-LLC
	// back-invalidation with a fan-out across every core sharing the LLC
	// (MultiSystem wires it). nil keeps the single-core behaviour.
	backInv func(key uint64)

	// Measurement baseline (set by StartMeasurement).
	base snapshot
}

// coreModel is the slice of the timing core the system needs; it lets
// tests substitute a fixed-latency core.
type coreModel interface {
	Advance(n uint64)
	Memory(latency uint64, dependent bool)
	Cycles() float64
	Instructions() uint64
	MemOps() uint64
	MemLatencyStats() (sum, ops uint64)
	AvgMemLatency() float64
}

// New builds a machine from the configuration with null predictors.
func New(cfg Config) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, tlbPred: pred.NullTLB{}, llcPred: pred.NullLLC{},
		sampleEvery: 50_000}

	var err error
	if s.itlb, err = tlb.New(cfg.L1ITLB); err != nil {
		return nil, err
	}
	if s.dtlb, err = tlb.New(cfg.L1DTLB); err != nil {
		return nil, err
	}
	if s.llt, err = tlb.New(cfg.LLT); err != nil {
		return nil, err
	}
	alloc, err := pagetable.NewAllocator(cfg.PhysMemMB<<20/arch.PageSize, cfg.Alloc, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if s.pt, err = pagetable.New(alloc); err != nil {
		return nil, err
	}
	if s.walk, err = walker.New(s.pt, cfg.PWC, s.ptFetch); err != nil {
		return nil, err
	}
	mk := func(cc CacheConfig) (*cache.Cache, error) {
		return cache.New(cache.Config{Name: cc.Name, Sets: cc.sets(), Ways: cc.Ways, Policy: cc.Policy})
	}
	if s.l1d, err = mk(cfg.L1D); err != nil {
		return nil, err
	}
	if s.l2, err = mk(cfg.L2); err != nil {
		return nil, err
	}
	if s.llc, err = mk(cfg.LLC); err != nil {
		return nil, err
	}
	core, err := newCore(cfg.Core)
	if err != nil {
		return nil, err
	}
	s.core = core
	s.cpuCore, _ = core.(*cpu.Core)
	s.cachePredIfaces()
	return s, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// SetTLBPredictor installs the LLT predictor (nil restores the baseline).
func (s *System) SetTLBPredictor(p pred.TLBPredictor) {
	if p == nil {
		p = pred.NullTLB{}
	}
	s.tlbPred = p
	s.cachePredIfaces()
	s.observePredictors()
}

// SetLLCPredictor installs the LLC predictor (nil restores the baseline).
func (s *System) SetLLCPredictor(p pred.LLCPredictor) {
	if p == nil {
		p = pred.NullLLC{}
	}
	s.llcPred = p
	s.cachePredIfaces()
	s.observePredictors()
}

// cachePredIfaces refreshes the optional-interface views of the installed
// predictors (see the field comments).
func (s *System) cachePredIfaces() {
	s.tlbObs, _ = s.tlbPred.(pred.AccessObserver)
	s.tlbFF, _ = s.tlbPred.(pred.FillFinisher)
	s.llcObs, _ = s.llcPred.(pred.AccessObserver)
	s.llcFF, _ = s.llcPred.(pred.FillFinisher)
	s.llcDOA, _ = s.llcPred.(pred.DOAPageListener)
}

// SetTLBPrefetcher installs a TLB prefetcher (extension; nil disables).
// Prefetched translations are installed in the LLT off the critical path,
// consuming page-walker occupancy but adding no latency to the triggering
// miss.
func (s *System) SetTLBPrefetcher(p pred.TLBPrefetcher) { s.tlbPref = p }

// PrefetchStats reports (fills installed, fills that later hit).
func (s *System) PrefetchStats() (issued, useful uint64) {
	return s.prefFills, s.prefUseful
}

// LLT exposes the last-level TLB (predictor constructors need its backing
// structure).
func (s *System) LLT() *tlb.TLB { return s.llt }

// LLC exposes the last-level cache.
func (s *System) LLC() *cache.Cache { return s.llc }

// Walker exposes the page walker (for stats).
func (s *System) Walker() *walker.Walker { return s.walk }

// PageTable exposes the page table (for stats).
func (s *System) PageTable() *pagetable.PageTable { return s.pt }

// Config returns the machine configuration.
func (s *System) Config() Config { return s.cfg }

// EnableAccuracyTracking creates the mirror structures that grade LLT and
// LLC fill-time DOA predictions (§VI-C).
func (s *System) EnableAccuracyTracking() error {
	la, err := stats.NewAccuracyTracker("LLT", s.llt.Inner().Sets(), s.llt.Inner().Ways(), s.cfg.LLT.Policy)
	if err != nil {
		return err
	}
	ca, err := stats.NewAccuracyTracker("LLC", s.llc.Sets(), s.llc.Ways(), s.cfg.LLC.Policy)
	if err != nil {
		return err
	}
	s.lltAcc, s.llcAcc = la, ca
	return nil
}

// EnableCharacterization creates the §IV dead-entry samplers and the
// Table III correlation tracker. sampleEvery is the number of data
// accesses between residency snapshots (0 keeps the default).
func (s *System) EnableCharacterization(sampleEvery uint64) {
	if sampleEvery != 0 {
		s.sampleEvery = sampleEvery
	}
	s.lltSampler = stats.NewDeadSampler()
	s.llcSampler = stats.NewDeadSampler()
	s.corr = stats.NewDOACorrelation()
}

// now returns the timestamp used for entry metadata: the core's cycle.
func (s *System) now() uint64 { return uint64(s.core.Cycles()) }

// Step feeds one trace record through the machine.
func (s *System) Step(a trace.Access) error {
	if cc := s.cpuCore; cc != nil {
		if a.Gap > 0 {
			cc.Advance(uint64(a.Gap))
		}
		s.stepNow = uint64(cc.Cycles())
	} else {
		if a.Gap > 0 {
			s.core.Advance(uint64(a.Gap))
		}
		s.stepNow = uint64(s.core.Cycles())
	}
	s.accesses++

	// Instruction-side translation: the fetch of the memory instruction
	// itself. L1 I-TLB hits are free; misses go through the shared LLT.
	iLat, _, err := s.translate(arch.VAddr(a.PC).Page(), a.PC, true)
	if err != nil {
		return err
	}

	// Data-side translation.
	dLat, pfn, err := s.translate(a.Addr.Page(), a.PC, false)
	if err != nil {
		return err
	}

	// Data access through the cache hierarchy.
	pa := arch.Translate(pfn, a.Addr)
	memLat := s.memAccess(pa, a.PC, a.Write)

	if s.histMemLat != nil {
		s.histMemLat.Observe(uint64(iLat) + uint64(dLat) + uint64(memLat))
	}

	if cc := s.cpuCore; cc != nil {
		cc.Memory(uint64(iLat)+uint64(dLat)+uint64(memLat), a.Dependent)
	} else {
		s.core.Memory(uint64(iLat)+uint64(dLat)+uint64(memLat), a.Dependent)
	}

	if s.lltSampler != nil && s.accesses%s.sampleEvery == 0 {
		s.lltSampler.Sample(s.llt.Inner())
		s.llcSampler.Sample(s.llc)
	}
	if s.intervalEvery != 0 && s.accesses%s.intervalEvery == 0 {
		s.sampleInterval()
	}
	return nil
}

// Run feeds n accesses from the generator. A generator that latches an
// error mid-stream (trace.ErrGenerator) fails the run rather than feeding
// the simulator its repeated final access.
func (s *System) Run(g trace.Generator, n uint64) error {
	return s.RunContext(context.Background(), g, n)
}

// ctxCheckStride is how many accesses RunContext simulates between context
// checks. It is a power of two so the check compiles to a mask, and coarse
// enough to be invisible next to the per-access simulation work.
const ctxCheckStride = 4096

// RunContext is Run with cancellation: the access loop checks ctx on a
// coarse stride and stops with ctx's error when it is canceled. A
// background (uncancelable) context takes a separate loop with no check at
// all, so the hot path pays nothing for the capability.
func (s *System) RunContext(ctx context.Context, g trace.Generator, n uint64) error {
	if done := ctx.Done(); done != nil {
		for i := uint64(0); i < n; i++ {
			if i&(ctxCheckStride-1) == 0 {
				select {
				case <-done:
					return fmt.Errorf("sim: canceled at access %d of %d: %w", i, n, ctx.Err())
				default:
				}
			}
			if err := s.Step(g.Next()); err != nil {
				return fmt.Errorf("sim: access %d: %w", i, err)
			}
		}
	} else {
		for i := uint64(0); i < n; i++ {
			if err := s.Step(g.Next()); err != nil {
				return fmt.Errorf("sim: access %d: %w", i, err)
			}
		}
	}
	if err := trace.GeneratorErr(g); err != nil {
		return fmt.Errorf("sim: after %d accesses: %w", n, err)
	}
	return nil
}

// translate resolves a page through the TLB hierarchy, returning the extra
// latency beyond a (free) L1 TLB hit.
func (s *System) translate(vpn arch.VPN, pc uint64, instr bool) (arch.Lat, arch.PFN, error) {
	// Qualify the page number with the current address space: TLB entries,
	// predictor state and page-walk-cache keys all become ASID-tagged. The
	// ASID occupies bits above the 36 VPN bits, which no radix index ever
	// consumes, so page-table walks see the qualified value transparently.
	vpn |= arch.VPN(s.asidKey)
	l1 := s.dtlb
	if instr {
		l1 = s.itlb
	}
	now := s.stepNow
	if pfn, ok := l1.Lookup(vpn, now); ok {
		return 0, pfn, nil
	}

	// Unified L2 TLB (LLT). AIP-style predictors observe every access.
	if s.tlbObs != nil {
		s.tlbObs.OnAccess(uint64(vpn))
	}
	if b, ok := s.llt.Inner().Lookup(uint64(vpn), now); ok {
		if b.Prefetched {
			s.prefUseful++
			b.Prefetched = false
		}
		s.tlbPred.OnHit(b)
		if s.lltAcc != nil {
			s.lltAcc.Access(uint64(vpn), false, now)
		}
		if s.lltConf != nil {
			s.lltConf.Access(uint64(vpn), false, now)
		}
		pfn := arch.PFN(b.Data)
		s.fillL1TLB(l1, vpn, pfn)
		return s.llt.Latency(), pfn, nil
	}

	// LLT miss: consult the predictor's victim buffer (shadow table)
	// before walking (Fig. 6a).
	if pfn, handled := s.tlbPred.OnMiss(vpn, pc); handled {
		s.shadowFills++
		if s.tr != nil {
			s.tr.Emit(obs.Event{Kind: obs.EvShadowHit, Key: uint64(vpn), Aux: uint64(pfn), PC: pc})
		}
		s.lltFill(vpn, pfn, pc, pred.Decision{PCHash: uint16(xhash.PC(pc, 6))})
		if s.lltAcc != nil {
			s.lltAcc.Access(uint64(vpn), false, now)
		}
		if s.lltConf != nil {
			s.lltConf.Access(uint64(vpn), false, now)
		}
		s.fillL1TLB(l1, vpn, pfn)
		return s.llt.Latency(), pfn, nil
	}

	// Page walk. The hash of the PC rides in the MSHR (we simply pass
	// the PC to the fill decision). The single page walker serializes
	// concurrent walks: the effective latency includes queueing.
	s.walks++
	res, err := s.walk.Walk(vpn)
	if err != nil {
		return 0, 0, err
	}
	start := now
	walkerWasIdle := s.walkerBusyUntil <= start
	if !walkerWasIdle {
		s.walkQueueCycles += s.walkerBusyUntil - start
		start = s.walkerBusyUntil
	}
	s.walkerBusyUntil = start + uint64(res.Latency)
	effWalk := arch.Lat(s.walkerBusyUntil - now)
	if s.tr != nil {
		s.tr.Emit(obs.Event{Kind: obs.EvWalk, Key: uint64(vpn), Aux: uint64(effWalk), Flag: !walkerWasIdle})
	}
	if s.histWalkDepth != nil {
		s.histWalkDepth.Observe(uint64(res.PTAccesses))
		s.histWalkLat.Observe(uint64(effWalk))
	}
	d := s.tlbPred.OnFill(vpn, res.PFN, pc)
	if s.lltAcc != nil {
		s.lltAcc.Access(uint64(vpn), d.PredictDOA, now)
	}
	if s.lltConf != nil {
		s.lltConf.Access(uint64(vpn), d.PredictDOA, now)
	}
	if d.Bypass {
		s.llt.RecordBypass()
		if s.tr != nil {
			s.tr.Emit(obs.Event{Kind: obs.EvLLTBypass, Key: uint64(vpn), Aux: uint64(res.PFN), PC: pc})
		}
		// Fig. 6b: announce the DOA page's frame to the LLC side.
		if s.llcDOA != nil {
			s.llcDOA.NotifyDOAPage(res.PFN)
		}
	} else {
		s.lltFill(vpn, res.PFN, pc, d)
	}
	s.fillL1TLB(l1, vpn, res.PFN)

	// Extension: distance prefetching. Prefetch walks run strictly at
	// lower priority than demand walks: they are serviced in the
	// walker's idle slots and dropped outright while a backlog exists,
	// so prefetching never delays a demand walk (and consequently
	// cannot help a walker-saturated workload — the "does not perform
	// well across all applications" behaviour §VII cites).
	if s.tlbPref != nil {
		for _, cand := range s.tlbPref.OnMiss(vpn, pc) {
			if !walkerWasIdle {
				break
			}
			if _, resident := s.llt.Probe(cand); resident {
				continue
			}
			pfn, mapped := s.pt.TranslateIfMapped(cand)
			if !mapped {
				continue
			}
			nb, victim, evicted := s.llt.Fill(cand, pfn, 0, policy.InsertMRU, s.stepNow)
			nb.Prefetched = true
			if evicted && !victim.Prefetched {
				s.tlbPred.OnEvict(victim)
				if s.lltSampler != nil {
					s.lltSampler.OnEvict(victim, s.stepNow)
				}
			}
			s.prefFills++
		}
	}
	return s.llt.Latency() + effWalk, res.PFN, nil
}

// lltFill allocates an LLT entry and processes the resulting eviction.
func (s *System) lltFill(vpn arch.VPN, pfn arch.PFN, pc uint64, d pred.Decision) {
	now := s.stepNow
	if s.tr != nil {
		s.tr.Emit(obs.Event{Kind: obs.EvLLTFill, Key: uint64(vpn), Aux: uint64(pfn), PC: pc})
	}
	nb, victim, evicted := s.llt.Fill(vpn, pfn, d.PCHash, d.Hint, now)
	nb.Sig = d.Sig
	if s.tlbFF != nil {
		s.tlbFF.OnFillDone(nb)
	}
	if !evicted {
		return
	}
	if s.tr != nil {
		s.tr.Emit(obs.Event{Kind: obs.EvLLTEvict, Key: victim.Key, Aux: victim.Data, Flag: victim.Accessed})
	}
	if s.histLLTLife != nil {
		s.histLLTLife.Observe(now - victim.FillTime)
	}
	if !victim.Prefetched {
		s.tlbPred.OnEvict(victim)
	}
	if s.lltSampler != nil {
		s.lltSampler.OnEvict(victim, now)
	}
	if s.corr != nil {
		s.corr.OnPageEvict(arch.PFN(victim.Data), !victim.Accessed)
	}
}

// fillL1TLB installs a translation in an L1 TLB; L1 evictions are silent
// (the translation is already in the LLT or was bypassed deliberately).
// Callers reach it only after vpn missed in l1 this very access, so the
// translation is never already resident and no residency probe is needed.
func (s *System) fillL1TLB(l1 *tlb.TLB, vpn arch.VPN, pfn arch.PFN) {
	l1.Fill(vpn, pfn, 0, policy.InsertMRU, s.stepNow)
}

// ptFetch is the walker's window into the data caches: PTE fetches are
// physically addressed and traverse the hierarchy like any other access
// ("the page table contents are cached on the processor caches", §III).
func (s *System) ptFetch(pa arch.PAddr) arch.Lat {
	return s.memAccess(pa, ptWalkerPC, false)
}

// ptWalkerPC is the pseudo-PC attributed to the hardware walker's fetches.
const ptWalkerPC = 0x00FF_FF00

// memAccess sends a physical access through L1D → L2 → LLC → memory and
// returns its latency. Fills propagate to all levels; LLC evictions
// back-invalidate the inner levels (inclusive LLC).
func (s *System) memAccess(pa arch.PAddr, pc uint64, write bool) arch.Lat {
	now := s.stepNow
	key := uint64(pa.Block() >> arch.BlockShift)

	if b, ok := s.l1d.Lookup(key, now); ok {
		b.Dirty = b.Dirty || write
		return s.cfg.L1D.Latency
	}
	if _, ok := s.l2.Lookup(key, now); ok {
		s.fillInner(s.l1d, key, write, now)
		return s.cfg.L2.Latency
	}

	if s.llcObs != nil {
		s.llcObs.OnAccess(key)
	}
	if b, ok := s.llc.Lookup(key, now); ok {
		s.llcPred.OnHit(b)
		if s.llcAcc != nil {
			s.llcAcc.Access(key, false, now)
		}
		if s.llcConf != nil {
			s.llcConf.Access(key, false, now)
		}
		s.fillInner(s.l2, key, false, now)
		s.fillInner(s.l1d, key, write, now)
		return s.cfg.LLC.Latency
	}

	// LLC miss → main memory; decide allocation (Fig. 8b).
	d := s.llcPred.OnFill(key, pc)
	if s.llcAcc != nil {
		s.llcAcc.Access(key, d.PredictDOA, now)
	}
	if s.llcConf != nil {
		s.llcConf.Access(key, d.PredictDOA, now)
	}
	if d.Bypass {
		s.llc.RecordBypass()
		if s.tr != nil {
			s.tr.Emit(obs.Event{Kind: obs.EvLLCBypass, Key: key, PC: pc})
		}
	} else {
		if s.tr != nil {
			s.tr.Emit(obs.Event{Kind: obs.EvLLCFill, Key: key, PC: pc, Flag: d.SetDP})
		}
		nb, victim, evicted := s.llc.Fill(key, d.Hint, now)
		nb.DP = d.SetDP
		nb.Sig = d.Sig
		nb.PCHash = d.PCHash
		if s.llcFF != nil {
			s.llcFF.OnFillDone(nb)
		}
		if evicted {
			if s.tr != nil {
				s.tr.Emit(obs.Event{Kind: obs.EvLLCEvict, Key: victim.Key, Flag: victim.Accessed})
			}
			if s.histLLCLife != nil {
				s.histLLCLife.Observe(now - victim.FillTime)
			}
			s.llcPred.OnEvict(victim)
			if s.llcSampler != nil {
				s.llcSampler.OnEvict(victim, now)
			}
			if s.corr != nil {
				s.corr.OnBlockEvict(blockFrame(victim.Key), victim.Hits)
			}
			// Inclusive LLC: drop inner copies — from every core
			// sharing the LLC when MultiSystem installed the fan-out,
			// else locally.
			if s.backInv != nil {
				s.backInv(victim.Key)
			} else {
				s.l2.Invalidate(victim.Key)
				s.l1d.Invalidate(victim.Key)
			}
		}
	}
	s.fillInner(s.l2, key, false, now)
	s.fillInner(s.l1d, key, write, now)
	return s.cfg.LLC.Latency + s.cfg.MemLatency
}

// blockFrame recovers the frame of a physical block number.
func blockFrame(blockNum uint64) arch.PFN {
	return arch.PFN(blockNum >> (arch.PageShift - arch.BlockShift))
}

// fillInner installs a block in an inner cache level; inner evictions are
// silent (clean-eviction model). Every call site sits on a path where key
// just missed in c (and nothing re-inserts it in between), so the block is
// never already resident and no residency probe is needed.
func (s *System) fillInner(c *cache.Cache, key uint64, write bool, now uint64) {
	nb, _, _ := c.Fill(key, policy.InsertMRU, now)
	nb.Dirty = write
}

// Finish resolves end-of-run instrumentation: samplers flush residents,
// the confusion trackers grade entries still resident in their mirrors,
// and the correlation tracker classifies pages still in the LLT.
func (s *System) Finish() {
	if s.lltSampler != nil {
		s.lltSampler.Finish(s.llt.Inner())
		s.llcSampler.Finish(s.llc)
	}
	if s.lltConf != nil {
		s.lltConf.Flush()
	}
	if s.llcConf != nil {
		s.llcConf.Flush()
	}
	if s.corr != nil {
		s.llt.Inner().ForEach(func(_, _ int, b *cache.Block) {
			s.corr.OnPageResident(arch.PFN(b.Data), !b.Accessed)
		})
	}
}
