package sim

import (
	"fmt"

	"repro/internal/pred"
)

// Fork deep-copies the whole multi-core machine into an independent
// MultiSystem continuing from the identical warm state: the shared LLT,
// LLC and predictors are cloned once, the frame allocator once, every
// tenant's page table over the cloned allocator (preserving the sharing),
// and every core's private structures. Scheduling state (round-robin
// cursor, running tenants, quantum remainders) is carried over, so
// stepping the fork is bit-identical to stepping the original.
func (m *MultiSystem) Fork() (*MultiSystem, error) {
	if m.lltAcc != nil || m.lltConf != nil {
		return nil, fmt.Errorf("sim: cannot fork with instrumentation enabled; fork first, then instrument the fork")
	}
	for i, s := range m.cores {
		if s.observer != nil {
			return nil, fmt.Errorf("sim: cannot fork with metrics attached to core %d", i)
		}
		if s.histMemLat != nil {
			return nil, fmt.Errorf("sim: cannot fork with metrics attached; fork first, then attach to the fork")
		}
	}
	ct, ok := m.tlbPred.(pred.ClonableTLB)
	if !ok {
		return nil, fmt.Errorf("sim: TLB predictor %q is not forkable", m.tlbPred.Name())
	}
	cl, ok := m.llcPred.(pred.ClonableLLC)
	if !ok {
		return nil, fmt.Errorf("sim: LLC predictor %q is not forkable", m.llcPred.Name())
	}

	n := &MultiSystem{
		cfg:              m.cfg,
		rr:               m.rr,
		steps:            m.steps,
		switches:         m.switches,
		shootdowns:       m.shootdowns,
		shootdownFlushed: m.shootdownFlushed,
		unmaps:           m.unmaps,
		base:             m.base,
	}
	n.coreTenants = make([][]int, len(m.coreTenants))
	for c, lst := range m.coreTenants {
		n.coreTenants[c] = append([]int(nil), lst...)
	}
	n.curTenant = append([]int(nil), m.curTenant...)
	n.sliceLeft = append([]uint64(nil), m.sliceLeft...)
	n.active = append([]int(nil), m.active...)

	var err error
	if n.llt, err = m.llt.Clone(); err != nil {
		return nil, err
	}
	if n.llc, err = m.llc.Clone(); err != nil {
		return nil, err
	}
	if n.tlbPred, err = ct.CloneTLB(n.llt.Inner()); err != nil {
		return nil, err
	}
	if n.llcPred, err = cl.CloneLLC(n.llc); err != nil {
		return nil, err
	}

	// One allocator clone serves every tenant's cloned table, preserving
	// the shared physical memory.
	n.alloc = m.alloc.Clone()
	n.tenants = make([]*tenantState, len(m.tenants))
	for i, t := range m.tenants {
		nt := *t
		nt.pt = t.pt.CloneWith(n.alloc)
		n.tenants[i] = &nt
	}

	n.cores = make([]*System, len(m.cores))
	for c, s := range m.cores {
		if s.cpuCore == nil {
			return nil, fmt.Errorf("sim: cannot fork core %d with a substituted core model", c)
		}
		ns := &System{
			cfg:             s.cfg,
			sampleEvery:     s.sampleEvery,
			accesses:        s.accesses,
			walks:           s.walks,
			shadowFills:     s.shadowFills,
			walkerBusyUntil: s.walkerBusyUntil,
			walkQueueCycles: s.walkQueueCycles,
			stepNow:         s.stepNow,
			asidKey:         s.asidKey,
			base:            s.base,
		}
		if ns.itlb, err = s.itlb.Clone(); err != nil {
			return nil, err
		}
		if ns.dtlb, err = s.dtlb.Clone(); err != nil {
			return nil, err
		}
		if ns.l1d, err = s.l1d.Clone(); err != nil {
			return nil, err
		}
		if ns.l2, err = s.l2.Clone(); err != nil {
			return nil, err
		}
		ns.llt = n.llt
		ns.llc = n.llc
		ns.tlbPred = n.tlbPred
		ns.llcPred = n.llcPred
		// The core's bound address space is whichever tenant is running
		// on it; idle cores were bound to tenant 0 at construction.
		ns.pt = n.tenants[0].pt
		if lst := n.coreTenants[c]; len(lst) > 0 {
			ns.pt = n.tenants[lst[n.curTenant[c]]].pt
		}
		if ns.walk, err = s.walk.Clone(ns.pt, ns.ptFetch); err != nil {
			return nil, err
		}
		core := s.cpuCore.Clone()
		ns.core = core
		ns.cpuCore = core
		ns.cachePredIfaces()
		if len(n.cores) > 1 {
			ns.backInv = n.backInvalidate
		}
		n.cores[c] = ns
	}
	return n, nil
}
