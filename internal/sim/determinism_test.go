package sim

import (
	"testing"

	"repro/internal/pred"
	"repro/internal/trace"
)

// TestSimulationDeterminism is the reproducibility contract of the whole
// stack: identical configuration + identical seed must produce bit-equal
// results, because the oracle's two-pass protocol and every experiment in
// the repository depend on it.
func TestSimulationDeterminism(t *testing.T) {
	run := func() Result {
		s := MustNew(smallConfig())
		dp, err := newTestDPPred(s)
		if err != nil {
			t.Fatal(err)
		}
		s.SetTLBPredictor(dp)
		w, err := trace.ByName("sssp")
		if err != nil {
			t.Fatal(err)
		}
		g := w.New(42)
		if err := s.Run(g, 100_000); err != nil {
			t.Fatal(err)
		}
		s.StartMeasurement()
		if err := s.Run(g, 200_000); err != nil {
			t.Fatal(err)
		}
		return s.Result()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same-seed runs diverged:\n  a=%+v\n  b=%+v", a, b)
	}
}

// TestSeedChangesResults guards against accidentally ignoring the seed.
func TestSeedChangesResults(t *testing.T) {
	run := func(seed uint64) Result {
		cfg := smallConfig()
		cfg.Seed = seed
		s := MustNew(cfg)
		w, err := trace.ByName("cc")
		if err != nil {
			t.Fatal(err)
		}
		g := w.New(seed)
		s.StartMeasurement()
		if err := s.Run(g, 100_000); err != nil {
			t.Fatal(err)
		}
		return s.Result()
	}
	if run(1) == run(2) {
		t.Error("different seeds produced identical results")
	}
}

// TestOracleNeverWorseThanBaseline: the two-pass oracle bypasses only
// proven-DOA fills, so it must not increase walks.
func TestOracleDoesNotIncreaseWalks(t *testing.T) {
	w, err := trace.ByName("cactusADM")
	if err != nil {
		t.Fatal(err)
	}
	const warm, meas = 100_000, 300_000

	base := MustNew(smallConfig())
	g := w.New(1)
	if err := base.Run(g, warm); err != nil {
		t.Fatal(err)
	}
	base.StartMeasurement()
	if err := base.Run(g, meas); err != nil {
		t.Fatal(err)
	}
	baseRes := base.Result()

	// Recording pass.
	rec := newRecorder(t, w, warm+meas)

	// Replay pass with the oracle.
	orc := MustNew(smallConfig())
	orc.SetTLBPredictor(rec)
	g = w.New(1)
	if err := orc.Run(g, warm); err != nil {
		t.Fatal(err)
	}
	orc.StartMeasurement()
	if err := orc.Run(g, meas); err != nil {
		t.Fatal(err)
	}
	orcRes := orc.Result()

	// Allow a small tolerance: bypassing shifts which conflict misses
	// occur, but the oracle must roughly dominate.
	if float64(orcRes.Walks) > 1.02*float64(baseRes.Walks) {
		t.Errorf("oracle walks %d exceed baseline %d", orcRes.Walks, baseRes.Walks)
	}
}

// newRecorder runs the recording pass and returns the oracle replayer.
func newRecorder(t *testing.T, w trace.Workload, n uint64) pred.TLBPredictor {
	t.Helper()
	rec := pred.NewDOARecord()
	s := MustNew(smallConfig())
	s.SetTLBPredictor(pred.NewRecorderTLB(rec))
	g := w.New(1)
	if err := s.Run(g, n); err != nil {
		t.Fatal(err)
	}
	return pred.NewOracleTLB(rec)
}
