package sim

import (
	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/stats"
)

// AttachObserver connects an observability bundle to the system: the
// tracer receives the Figure 6/8 hook-point events (and is handed to
// predictors that emit their own), the metrics registry gains probes for
// every structure's counters, and the interval recorder is driven every
// Interval.Every accesses. Passing nil detaches everything. Each hook in
// the simulator is guarded by one pointer/integer check, so a detached
// system pays nothing on the access path.
//
// Attach order is free: predictors installed after AttachObserver are
// wired by SetTLBPredictor/SetLLCPredictor.
func (s *System) AttachObserver(o *obs.Observer) {
	s.observer = o
	s.tr = nil
	s.intervalEvery = 0
	s.lltConf, s.llcConf = nil, nil
	s.histMemLat, s.histWalkDepth, s.histWalkLat = nil, nil, nil
	s.histLLTLife, s.histLLCLife = nil, nil
	if o == nil {
		return
	}
	s.tr = o.Tracer
	if s.tr != nil {
		s.tr.SetClock(func() (uint64, uint64) { return s.now(), s.accesses })
	}
	if o.Interval != nil && o.Interval.Every > 0 {
		s.intervalEvery = o.Interval.Every
	}
	if reg := o.RunRegistry(); reg != nil {
		s.enableQuality(reg)
		s.registerMetrics(reg)
	}
	if s.intervalEvery > 0 {
		s.intervalBase = s.snap()
	}
	s.observePredictors()
}

// Observer returns the attached observability bundle (nil when detached).
func (s *System) Observer() *obs.Observer { return s.observer }

// observePredictors hands the tracer and registry to the installed
// predictors; called from AttachObserver and the predictor setters so
// either ordering works.
func (s *System) observePredictors() {
	if s.observer == nil {
		return
	}
	reg := s.observer.RunRegistry()
	for _, p := range []any{s.tlbPred, s.llcPred} {
		if s.tr != nil {
			if ta, ok := p.(obs.TraceAttacher); ok {
				ta.AttachTracer(s.tr)
			}
		}
		if reg != nil {
			if m, ok := p.(obs.MetricSource); ok {
				m.RegisterMetrics(reg)
			}
		}
	}
}

// enableQuality turns on the passive quality telemetry that only exists
// when a metrics registry is attached: the confusion trackers mirroring
// the LLT and LLC (grading every dead prediction as true-dead, premature
// or missed) and the latency/lifetime histograms. Mirror construction
// cannot fail here — the geometries were already validated when the real
// structures were built — but a defensive nil keeps the hook disabled if
// it ever does.
func (s *System) enableQuality(r *obs.Registry) {
	inner := s.llt.Inner()
	if t, err := stats.NewConfusionTracker("llt", inner.Sets(), inner.Ways(), s.cfg.LLT.Policy); err == nil {
		s.lltConf = t
	}
	if t, err := stats.NewConfusionTracker("llc", s.llc.Sets(), s.llc.Ways(), s.cfg.LLC.Policy); err == nil {
		s.llcConf = t
	}
	s.histMemLat = r.Histogram("hist.mem_latency")
	s.histWalkDepth = r.Histogram("hist.walk_depth")
	s.histWalkLat = r.Histogram("hist.walk_latency")
	s.histLLTLife = r.Histogram("hist.llt_lifetime")
	s.histLLCLife = r.Histogram("hist.llc_lifetime")
}

// registerMetrics publishes every structure's counters as probes. Probes
// are closures over the live structures, so a snapshot always reflects
// current state; per-run registry scopes (obs.Observer.BeginRun) keep
// successive runs apart.
func (s *System) registerMetrics(r *obs.Registry) {
	cacheStats := func(prefix string, st func() cache.Stats) {
		r.RegisterProbe(prefix+".lookups", func() float64 { return float64(st().Lookups) })
		r.RegisterProbe(prefix+".hits", func() float64 { return float64(st().Hits) })
		r.RegisterProbe(prefix+".misses", func() float64 { return float64(st().Misses) })
		r.RegisterProbe(prefix+".fills", func() float64 { return float64(st().Fills) })
		r.RegisterProbe(prefix+".bypasses", func() float64 { return float64(st().Bypasses) })
		r.RegisterProbe(prefix+".evictions", func() float64 { return float64(st().Evictions) })
	}
	cacheStats("itlb", s.itlb.Stats)
	cacheStats("dtlb", s.dtlb.Stats)
	cacheStats("llt", s.llt.Stats)
	cacheStats("l1d", s.l1d.Stats)
	cacheStats("l2", s.l2.Stats)
	cacheStats("llc", s.llc.Stats)

	r.RegisterProbe("walker.walks", func() float64 { return float64(s.walk.Stats().Walks) })
	r.RegisterProbe("walker.pt_accesses", func() float64 { return float64(s.walk.Stats().PTAccesses) })
	r.RegisterProbe("walker.walk_cycles", func() float64 { return float64(s.walk.Stats().WalkCycles) })
	r.RegisterProbe("walker.full_walks", func() float64 { return float64(s.walk.Stats().FullWalks) })
	r.RegisterProbe("walker.queue_cycles", func() float64 { return float64(s.walkQueueCycles) })

	r.RegisterProbe("core.instructions", func() float64 { return float64(s.core.Instructions()) })
	r.RegisterProbe("core.cycles", func() float64 { return s.core.Cycles() })
	r.RegisterProbe("core.mem_ops", func() float64 { return float64(s.core.MemOps()) })
	r.RegisterProbe("core.ipc", func() float64 {
		if c := s.core.Cycles(); c > 0 {
			return float64(s.core.Instructions()) / c
		}
		return 0
	})

	r.RegisterProbe("sim.accesses", func() float64 { return float64(s.accesses) })
	r.RegisterProbe("sim.walks", func() float64 { return float64(s.walks) })
	r.RegisterProbe("sim.shadow_fills", func() float64 { return float64(s.shadowFills) })

	// Ground-truth prediction quality from the mirror-based confusion
	// trackers (nil-guarded: the trackers only exist while a registry is
	// attached, but probes may outlive a detach).
	confusion := func(prefix string, t func() *stats.ConfusionTracker) {
		counts := func() stats.Confusion {
			if ct := t(); ct != nil {
				return ct.Counts()
			}
			return stats.Confusion{}
		}
		r.RegisterProbe(prefix+".true_dead", func() float64 { return float64(counts().TrueDead) })
		r.RegisterProbe(prefix+".premature", func() float64 { return float64(counts().Premature) })
		r.RegisterProbe(prefix+".missed", func() float64 { return float64(counts().Missed) })
		r.RegisterProbe(prefix+".premature_rate", func() float64 { return counts().PrematureRate() })
		r.RegisterProbe(prefix+".coverage", func() float64 { return counts().CoverageRate() })
	}
	confusion("conf.llt", func() *stats.ConfusionTracker { return s.lltConf })
	confusion("conf.llc", func() *stats.ConfusionTracker { return s.llcConf })

	// Self-reported quality from predictors implementing obs.QualitySource
	// (dpPred's shadow table detects its own premature predictions). The
	// type assertion runs inside the closure so predictor swaps after
	// AttachObserver are picked up.
	quality := func(prefix string, cur func() any) {
		read := func() (uint64, uint64) {
			if q, ok := cur().(obs.QualitySource); ok {
				return q.PredictionQuality()
			}
			return 0, 0
		}
		r.RegisterProbe(prefix+".predictions", func() float64 {
			p, _ := read()
			return float64(p)
		})
		r.RegisterProbe(prefix+".premature_detected", func() float64 {
			_, d := read()
			return float64(d)
		})
	}
	quality("pred.tlb", func() any { return s.tlbPred })
	quality("pred.llc", func() any { return s.llcPred })
}

// sampleInterval emits one time-series point covering the accesses since
// the previous sample (or since AttachObserver). Runs off the hot path —
// once per intervalEvery accesses.
func (s *System) sampleInterval() {
	cur := s.snap()
	b := s.intervalBase
	s.intervalBase = cur

	samp := obs.IntervalSample{
		Access:          s.accesses,
		Cycle:           cur.cycles,
		Instructions:    cur.instructions - b.instructions,
		Walks:           cur.walks - b.walks,
		ShadowHits:      cur.shadowFills - b.shadowFills,
		WalkQueueCycles: cur.walkQueue - b.walkQueue,
	}
	if dc := cur.cycles - b.cycles; dc > 0 {
		samp.IPC = float64(samp.Instructions) / dc
	}
	if samp.Instructions > 0 {
		ki := float64(samp.Instructions) / 1000
		samp.LLTMPKI = float64(samp.Walks) / ki
		samp.LLCMPKI = float64(cur.llcMisses-b.llcMisses) / ki
	}
	samp.LLTBypassRate = bypassRate(cur.lltBypasses-b.lltBypasses, cur.lltMisses-b.lltMisses)
	samp.LLCBypassRate = bypassRate(cur.llcBypasses-b.llcBypasses, cur.llcMisses-b.llcMisses)
	if now := s.now(); s.walkerBusyUntil > now {
		samp.WalkerBacklog = s.walkerBusyUntil - now
	}
	if h, ok := s.tlbPred.(obs.CounterHistogrammer); ok {
		samp.PHISTHist = h.CounterHistogram()
	}
	if h, ok := s.llcPred.(obs.CounterHistogrammer); ok {
		samp.BHISTHist = h.CounterHistogram()
	}
	if s.lltConf != nil {
		d := cur.lltConf.Delta(b.lltConf)
		samp.LLTTrueDead, samp.LLTPremature, samp.LLTMissed = d.TrueDead, d.Premature, d.Missed
		samp.LLTPrematureRate = d.PrematureRate()
	}
	if s.llcConf != nil {
		d := cur.llcConf.Delta(b.llcConf)
		samp.LLCTrueDead, samp.LLCPremature, samp.LLCMissed = d.TrueDead, d.Premature, d.Missed
		samp.LLCPrematureRate = d.PrematureRate()
	}
	idx := s.observer.Interval.Add(samp)
	if s.tr != nil {
		s.tr.Emit(obs.Event{Kind: obs.EvInterval, Key: uint64(idx)})
	}
}

// bypassRate returns bypasses / misses (each miss is a fill opportunity;
// bypassed misses are included in the miss count).
func bypassRate(bypasses, misses uint64) float64 {
	if misses == 0 {
		return 0
	}
	return float64(bypasses) / float64(misses)
}
