// Package expserve promotes exp.Runner from an in-process pool to a
// sharded, resumable experiment service (DESIGN.md §17): a coordinator
// that content-addresses cells (exp.CellKey), persists a durable memo to
// disk (DiskMemo) and hands cells to workers over HTTP with lease,
// heartbeat and requeue semantics; and a worker that pulls cells,
// reconstructs them through the setup catalog (exp.ResolveSetup) and the
// workload table (trace.ByName), executes them through the existing
// Runner single-cell path, and posts results back. Everything is stdlib
// net/http in the style of internal/obs/serve. Cells are deterministic,
// so a cell computed twice (a requeue racing a slow worker) yields the
// same bytes and the first result wins.
package expserve

import (
	"repro/internal/exp"
	"repro/internal/sim"
)

// CellSpec is the unit of distributed work: everything a worker needs to
// rebuild and run one cell. Key is the cell's content address; Workload
// and Setup are catalog names; Params are the runner parameters.
type CellSpec struct {
	Key      string     `json:"key"`
	Workload string     `json:"workload"`
	Setup    string     `json:"setup"`
	Params   exp.Params `json:"params"`
}

// Lease states returned by POST /cells.
const (
	LeaseCell = "cell" // a cell is attached; run it
	LeaseWait = "wait" // nothing runnable now; poll again after RetryMillis
	LeaseDone = "done" // the sweep is over; exit
)

// LeaseRequest is a worker asking for work.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseReply answers a lease request. TTLMillis is how long the lease
// stays alive without a heartbeat; workers beat at a fraction of it.
type LeaseReply struct {
	Status      string    `json:"status"`
	Cell        *CellSpec `json:"cell,omitempty"`
	TTLMillis   int64     `json:"ttl_ms,omitempty"`
	RetryMillis int64     `json:"retry_ms,omitempty"`
}

// HeartbeatRequest keeps a leased cell alive while it computes.
type HeartbeatRequest struct {
	Key    string `json:"key"`
	Worker string `json:"worker"`
}

// HeartbeatReply tells the worker whether the lease is still its own;
// a worker whose lease was requeued may keep running (its late result is
// still accepted — cells are deterministic) or abandon, its choice.
type HeartbeatReply struct {
	Active bool `json:"active"`
}

// ResultPost delivers a finished cell. Exactly one of Result or Error is
// meaningful: a non-empty Error marks the cell failed (execution errors
// are deterministic, so the coordinator does not retry them).
type ResultPost struct {
	Key    string      `json:"key"`
	Worker string      `json:"worker"`
	Result *sim.Result `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// StatusDoc is the GET /status document: the memo-hit and compute counters
// the resume acceptance check reads, plus live queue state.
type StatusDoc struct {
	// Cells is every cell this coordinator has been asked for, memo hits
	// included: Cells = MemoHits + Computed + Failed + Queued + Leased.
	Cells    int `json:"cells"`
	MemoHits int `json:"memo_hits"`
	Computed int `json:"computed"`
	Failed   int `json:"failed"`
	Queued   int `json:"queued"`
	Leased   int `json:"leased"`
	// Requeues counts lease expiries that re-enqueued a cell (worker loss
	// or heartbeat timeout).
	Requeues int `json:"requeues"`
	// Done reports whether the sweep has finished and workers are being
	// told to exit.
	Done bool `json:"done"`
}

// CellStatus is one row of the GET /cells listing.
type CellStatus struct {
	Key      string `json:"key"`
	Workload string `json:"workload"`
	Setup    string `json:"setup"`
	State    string `json:"state"` // "queued", "leased", "done", "failed"
	Attempts int    `json:"attempts"`
	Worker   string `json:"worker,omitempty"`
	Error    string `json:"error,omitempty"`
}
