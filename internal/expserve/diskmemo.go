package expserve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/exp"
	"repro/internal/sim"
)

// DiskMemo is a durable, content-addressed cell store implementing
// exp.CellMemo. Each cell key owns one directory under the memo root:
//
//	<root>/<key>/result.json     the sim.Result, canonical JSON
//	<root>/<key>/manifest.json   CellMeta + SHA-256 of every payload file
//	<root>/<key>/<artifact>      optional payloads (DPBF v2 trace, DPCK
//	                             checkpoint) listed in the manifest
//
// Writes are crash-safe: the entry is assembled in a hidden temp directory
// and renamed into place, with the manifest written last inside it, so a
// crash mid-Put leaves nothing at the final path. Reads are paranoid: a
// missing, unparsable, mismatched-key or hash-mismatched entry is a miss —
// Get removes it and returns ok=false so the cell is recomputed rather
// than trusted. Go's encoding/json round-trips float64 exactly (shortest
// representation), so a result served from disk is bit-identical to the
// one computed.
type DiskMemo struct {
	dir string
}

// manifestVersion guards the on-disk layout; entries written by a future
// incompatible layout read as misses, never as garbage.
const manifestVersion = 1

// manifest is the per-entry commit record.
type manifest struct {
	Version   int           `json:"version"`
	Key       string        `json:"key"`
	Meta      exp.CellMeta  `json:"meta"`
	ResultSHA string        `json:"result_sha256"`
	Artifacts []ArtifactRef `json:"artifacts,omitempty"`
}

// Artifact is an optional payload stored alongside a result.
type Artifact struct {
	Name string
	Data []byte
}

// ArtifactRef is the manifest's record of one artifact.
type ArtifactRef struct {
	Name   string `json:"name"`
	SHA256 string `json:"sha256"`
	Size   int64  `json:"size"`
}

// OpenDiskMemo opens (creating if needed) a memo rooted at dir.
func OpenDiskMemo(dir string) (*DiskMemo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("expserve: opening memo: %w", err)
	}
	return &DiskMemo{dir: dir}, nil
}

// Dir returns the memo root.
func (m *DiskMemo) Dir() string { return m.dir }

func (m *DiskMemo) entryDir(key string) string { return filepath.Join(m.dir, key) }

// validKey rejects keys that could escape the memo root or collide with
// temp directories; exp.CellKey always produces 64 hex characters.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	_, err := hex.DecodeString(key)
	return err == nil
}

// Get implements exp.CellMemo. Any defect in the entry — absent files,
// bad JSON, a manifest naming a different key, or a result whose hash
// disagrees with the manifest — deletes the entry and reports a miss.
func (m *DiskMemo) Get(key string) (sim.Result, bool, error) {
	if !validKey(key) {
		return sim.Result{}, false, fmt.Errorf("expserve: malformed cell key %q", key)
	}
	dir := m.entryDir(key)
	mb, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		// Absent is a plain miss; an I/O error is a miss too but leaves
		// the entry alone — only proven-defective content is evicted.
		return sim.Result{}, false, nil
	}
	var man manifest
	if err := json.Unmarshal(mb, &man); err != nil || man.Version != manifestVersion || man.Key != key {
		m.evict(dir)
		return sim.Result{}, false, nil
	}
	rb, err := os.ReadFile(filepath.Join(dir, "result.json"))
	if errors.Is(err, os.ErrNotExist) {
		m.evict(dir) // manifest without payload: a torn entry
		return sim.Result{}, false, nil
	}
	if err != nil {
		return sim.Result{}, false, nil
	}
	if sha256hex(rb) != man.ResultSHA {
		m.evict(dir)
		return sim.Result{}, false, nil
	}
	var res sim.Result
	if err := json.Unmarshal(rb, &res); err != nil {
		m.evict(dir)
		return sim.Result{}, false, nil
	}
	return res, true, nil
}

// Meta returns the stored metadata for a key, for listings and debugging.
func (m *DiskMemo) Meta(key string) (exp.CellMeta, bool) {
	if !validKey(key) {
		return exp.CellMeta{}, false
	}
	mb, err := os.ReadFile(filepath.Join(m.entryDir(key), "manifest.json"))
	if err != nil {
		return exp.CellMeta{}, false
	}
	var man manifest
	if err := json.Unmarshal(mb, &man); err != nil || man.Key != key {
		return exp.CellMeta{}, false
	}
	return man.Meta, true
}

// Artifact reads one named artifact of an entry, hash-verified against the
// manifest; ok=false for anything defective.
func (m *DiskMemo) Artifact(key, name string) ([]byte, bool) {
	if !validKey(key) || name != filepath.Base(name) {
		return nil, false
	}
	dir := m.entryDir(key)
	mb, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, false
	}
	var man manifest
	if err := json.Unmarshal(mb, &man); err != nil {
		return nil, false
	}
	for _, ref := range man.Artifacts {
		if ref.Name != name {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil || sha256hex(data) != ref.SHA256 {
			return nil, false
		}
		return data, true
	}
	return nil, false
}

// Put implements exp.CellMemo (no artifacts).
func (m *DiskMemo) Put(key string, meta exp.CellMeta, res sim.Result) error {
	return m.PutWithArtifacts(key, meta, res, nil)
}

// PutWithArtifacts writes a complete entry atomically: payloads and
// manifest land in a temp directory first, then one rename commits the
// entry. Losing a same-key race (or finding a previous complete entry) is
// success — cells are deterministic, so whichever writer won stored the
// same result.
func (m *DiskMemo) PutWithArtifacts(key string, meta exp.CellMeta, res sim.Result, arts []Artifact) error {
	if !validKey(key) {
		return fmt.Errorf("expserve: malformed cell key %q", key)
	}
	rb, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("expserve: encoding result for %s/%s: %w", meta.Workload, meta.Setup, err)
	}
	man := manifest{Version: manifestVersion, Key: key, Meta: meta, ResultSHA: sha256hex(rb)}

	tmp, err := os.MkdirTemp(m.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("expserve: memo put: %w", err)
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename

	writeFile := func(name string, data []byte) error {
		f, err := os.OpenFile(filepath.Join(tmp, name), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return err
		}
		_, werr := f.Write(data)
		if serr := f.Sync(); werr == nil {
			werr = serr
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		return werr
	}
	for _, a := range arts {
		if a.Name != filepath.Base(a.Name) || a.Name == "result.json" || a.Name == "manifest.json" {
			return fmt.Errorf("expserve: invalid artifact name %q", a.Name)
		}
		if err := writeFile(a.Name, a.Data); err != nil {
			return fmt.Errorf("expserve: memo put: %w", err)
		}
		man.Artifacts = append(man.Artifacts, ArtifactRef{Name: a.Name, SHA256: sha256hex(a.Data), Size: int64(len(a.Data))})
	}
	if err := writeFile("result.json", rb); err != nil {
		return fmt.Errorf("expserve: memo put: %w", err)
	}
	mb, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("expserve: memo put: %w", err)
	}
	// The manifest commits the entry's contents; write it last so a torn
	// temp directory never carries one.
	if err := writeFile("manifest.json", mb); err != nil {
		return fmt.Errorf("expserve: memo put: %w", err)
	}
	if err := os.Rename(tmp, m.entryDir(key)); err != nil {
		if _, ok, gerr := m.Get(key); gerr == nil && ok {
			return nil // lost the race to an equivalent entry
		}
		return fmt.Errorf("expserve: memo put: %w", err)
	}
	return nil
}

// Len counts complete-looking entries (directories named by a cell key).
func (m *DiskMemo) Len() int {
	ents, err := os.ReadDir(m.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if e.IsDir() && validKey(e.Name()) {
			n++
		}
	}
	return n
}

// evict removes a defective entry so the recomputed cell can Put cleanly.
func (m *DiskMemo) evict(dir string) { _ = os.RemoveAll(dir) }

func sha256hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
