package expserve

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/exp"
	"repro/internal/sim"
)

// memoKey builds a syntactically valid (64 hex chars) cell key from one
// byte, for tests that never involve a real simulation.
func memoKey(b byte) string { return strings.Repeat(fmt.Sprintf("%02x", b), 32) }

func memoResult() sim.Result {
	return sim.Result{
		Instructions: 12_345,
		Cycles:       67_890.25, // fractional: proves float64 survives the JSON round trip
		IPC:          0.1818244215930645,
		MemAccesses:  4_242,
		PWCHits:      [3]uint64{7, 11, 13},
	}
}

func memoMeta() exp.CellMeta {
	return exp.CellMeta{Workload: "cc", Setup: "baseline", Params: exp.Params{Warmup: 1, Measure: 2, Seed: 3, SampleEvery: 4}}
}

func TestDiskMemoRoundTrip(t *testing.T) {
	m, err := OpenDiskMemo(filepath.Join(t.TempDir(), "memo"))
	if err != nil {
		t.Fatal(err)
	}
	key := memoKey(0xaa)
	if _, ok, err := m.Get(key); err != nil || ok {
		t.Fatalf("empty memo: ok=%v err=%v", ok, err)
	}
	want := memoResult()
	if err := m.Put(key, memoMeta(), want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := m.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Fatalf("round-tripped result diverges:\n got %+v\nwant %+v", got, want)
	}
	meta, ok := m.Meta(key)
	if !ok || meta != memoMeta() {
		t.Fatalf("Meta: ok=%v meta=%+v", ok, meta)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	// A second Put of the same key (the deterministic-duplicate case) is
	// success, and no temp debris survives.
	if err := m.Put(key, memoMeta(), want); err != nil {
		t.Fatalf("duplicate Put: %v", err)
	}
	ents, err := os.ReadDir(m.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !validKey(e.Name()) {
			t.Fatalf("memo root holds non-entry debris %q", e.Name())
		}
	}
}

func TestDiskMemoArtifacts(t *testing.T) {
	m, err := OpenDiskMemo(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := memoKey(0x01)
	trace := []byte("pretend this is a DPBF v2 trace")
	err = m.PutWithArtifacts(key, memoMeta(), memoResult(), []Artifact{{Name: "trace.dpbf", Data: trace}})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.Artifact(key, "trace.dpbf")
	if !ok || string(got) != string(trace) {
		t.Fatalf("artifact round trip: ok=%v data=%q", ok, got)
	}
	if _, ok := m.Artifact(key, "absent.dpck"); ok {
		t.Fatal("Artifact served a payload the manifest never listed")
	}
	// A corrupted artifact must be refused (hash mismatch), while the
	// result itself stays servable.
	if err := os.WriteFile(filepath.Join(m.Dir(), key, "trace.dpbf"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Artifact(key, "trace.dpbf"); ok {
		t.Fatal("Artifact served hash-mismatched bytes")
	}
	if _, ok, err := m.Get(key); err != nil || !ok {
		t.Fatalf("result should survive artifact corruption: ok=%v err=%v", ok, err)
	}
	// Reserved and path-escaping artifact names are rejected outright.
	for _, name := range []string{"result.json", "manifest.json", "../escape"} {
		if err := m.PutWithArtifacts(memoKey(0x02), memoMeta(), memoResult(), []Artifact{{Name: name}}); err == nil {
			t.Fatalf("artifact name %q accepted", name)
		}
	}
}

// TestDiskMemoRejectsDamage is the corruption matrix: every defect class
// reads as a miss, evicts the entry, and a fresh Put lands cleanly.
func TestDiskMemoRejectsDamage(t *testing.T) {
	for _, tc := range []struct {
		name   string
		damage func(t *testing.T, dir string) // dir is the entry directory
	}{
		{"truncated-result", func(t *testing.T, dir string) {
			truncateFile(t, filepath.Join(dir, "result.json"))
		}},
		{"corrupt-result-bytes", func(t *testing.T, dir string) {
			flipByte(t, filepath.Join(dir, "result.json"))
		}},
		{"truncated-manifest", func(t *testing.T, dir string) {
			truncateFile(t, filepath.Join(dir, "manifest.json"))
		}},
		{"missing-result", func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, "result.json")); err != nil {
				t.Fatal(err)
			}
		}},
		{"foreign-key-manifest", func(t *testing.T, dir string) {
			// An entry copied under the wrong key: manifest names another.
			src := filepath.Join(filepath.Dir(dir), memoKey(0xcc), "manifest.json")
			b, err := os.ReadFile(src)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "manifest.json"), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, err := OpenDiskMemo(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key, other := memoKey(0xab), memoKey(0xcc)
			if err := m.Put(key, memoMeta(), memoResult()); err != nil {
				t.Fatal(err)
			}
			if err := m.Put(other, memoMeta(), memoResult()); err != nil {
				t.Fatal(err)
			}
			tc.damage(t, filepath.Join(m.Dir(), key))
			if _, ok, err := m.Get(key); err != nil || ok {
				t.Fatalf("damaged entry served: ok=%v err=%v", ok, err)
			}
			if _, err := os.Stat(filepath.Join(m.Dir(), key)); !os.IsNotExist(err) {
				t.Fatalf("damaged entry not evicted (stat err %v)", err)
			}
			// The neighbor entry is untouched, and the key is reusable.
			if _, ok, err := m.Get(other); err != nil || !ok {
				t.Fatalf("eviction damaged a healthy neighbor: ok=%v err=%v", ok, err)
			}
			if err := m.Put(key, memoMeta(), memoResult()); err != nil {
				t.Fatalf("re-Put after eviction: %v", err)
			}
			if _, ok, err := m.Get(key); err != nil || !ok {
				t.Fatalf("recomputed entry unreadable: ok=%v err=%v", ok, err)
			}
		})
	}
}

func TestDiskMemoRejectsMalformedKeys(t *testing.T) {
	m, err := OpenDiskMemo(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "short", strings.Repeat("z", 64), "../" + memoKey(1)[3:]} {
		if _, _, err := m.Get(key); err == nil {
			t.Errorf("Get(%q) accepted a malformed key", key)
		}
		if err := m.Put(key, memoMeta(), memoResult()); err == nil {
			t.Errorf("Put(%q) accepted a malformed key", key)
		}
	}
}

func truncateFile(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
}

func flipByte(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x20
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}
