package expserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Coordinator schedules cells across HTTP workers and backs them with a
// durable DiskMemo. It plugs into exp.Runner as a CellExecutor: Execute
// first consults the memo (a hit never leaves the process), then enqueues
// the cell and blocks until a worker delivers it. Leases expire when a
// worker stops heartbeating — kill -9, network partition, wedged machine —
// and the cell is requeued with bounded retries and backoff. Because every
// cell is deterministic, a late result from an expired lease is accepted
// as-is; the requeued duplicate becomes a no-op.
//
// Endpoints, in the style of internal/obs/serve:
//
//	POST /cells           lease one cell        (LeaseRequest → LeaseReply)
//	POST /cells/result    deliver a result      (ResultPost)
//	POST /cells/heartbeat extend a lease        (HeartbeatRequest → HeartbeatReply)
//	GET  /cells           list cells            ([]CellStatus)
//	GET  /status          counters              (StatusDoc)
//	GET  /healthz         liveness
type Coordinator struct {
	memo   *DiskMemo
	params exp.Params

	// LeaseTTL is how long a lease survives without a heartbeat before
	// the cell is requeued. Workers beat at TTL/3.
	LeaseTTL time.Duration
	// ScanEvery is the requeue scanner's cadence.
	ScanEvery time.Duration
	// MaxAttempts bounds deliveries of one cell before it fails for good.
	MaxAttempts int
	// RetryBackoff is the base delay before a requeued cell may be leased
	// again, doubled per attempt and capped at 16×.
	RetryBackoff time.Duration
	// PollInterval is the wait hint handed to idle workers.
	PollInterval time.Duration
	// Log receives scheduling events (requeues, failures); nil means
	// os.Stderr.
	Log io.Writer

	mu       sync.Mutex
	cells    map[string]*cell
	memoHits int
	requeues int
	closed   bool

	hs      *http.Server
	ln      net.Listener
	started bool

	scanStop chan struct{}
	scanDone chan struct{}
}

// Cell lifecycle states.
const (
	stateQueued = iota
	stateLeased
	stateDone
	stateFailed
)

var stateNames = [...]string{"queued", "leased", "done", "failed"}

type cell struct {
	spec      CellSpec
	state     int
	attempts  int
	notBefore time.Time // earliest next lease (retry backoff)
	deadline  time.Time // lease expiry, pushed by heartbeats
	worker    string
	res       sim.Result
	errmsg    string
	done      chan struct{} // closed when state reaches done or failed
}

// NewCoordinator builds a coordinator over an opened memo for one set of
// run parameters (every cell of a sweep shares them).
func NewCoordinator(memo *DiskMemo, params exp.Params) *Coordinator {
	c := &Coordinator{
		memo:         memo,
		params:       params,
		LeaseTTL:     5 * time.Second,
		ScanEvery:    500 * time.Millisecond,
		MaxAttempts:  4,
		RetryBackoff: 250 * time.Millisecond,
		PollInterval: 250 * time.Millisecond,
		cells:        make(map[string]*cell),
		scanStop:     make(chan struct{}),
		scanDone:     make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/cells", c.handleCells)
	mux.HandleFunc("/cells/result", c.handleResult)
	mux.HandleFunc("/cells/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/status", c.handleStatus)
	mux.HandleFunc("/healthz", c.handleHealthz)
	c.hs = &http.Server{Handler: mux}
	return c
}

// Handler returns the route mux, for httptest-style in-process serving.
func (c *Coordinator) Handler() http.Handler { return c.hs.Handler }

func (c *Coordinator) logf(format string, args ...any) {
	w := c.Log
	if w == nil {
		w = os.Stderr
	}
	fmt.Fprintf(w, "expserve: "+format+"\n", args...)
}

// Start binds addr (":0" picks a free port), serves in the background and
// starts the requeue scanner, returning the bound address.
func (c *Coordinator) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("expserve: %w", err)
	}
	c.mu.Lock()
	c.ln = ln
	c.started = true
	c.mu.Unlock()
	go func() { _ = c.hs.Serve(ln) }()
	go c.scan()
	return ln.Addr().String(), nil
}

// Finish marks the sweep complete: subsequent lease requests answer
// LeaseDone so workers drain and exit. Call once every Execute returned.
func (c *Coordinator) Finish() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
}

// Shutdown stops the scanner and the HTTP server.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	started := c.started
	c.started = false
	c.mu.Unlock()
	if !started {
		return nil
	}
	close(c.scanStop)
	<-c.scanDone
	return c.hs.Shutdown(ctx)
}

// Status snapshots the counters GET /status serves.
func (c *Coordinator) Status() StatusDoc {
	c.mu.Lock()
	defer c.mu.Unlock()
	doc := StatusDoc{MemoHits: c.memoHits, Requeues: c.requeues, Done: c.closed}
	for _, cl := range c.cells {
		switch cl.state {
		case stateQueued:
			doc.Queued++
		case stateLeased:
			doc.Leased++
		case stateDone:
			doc.Computed++
		case stateFailed:
			doc.Failed++
		}
	}
	doc.Cells = c.memoHits + doc.Queued + doc.Leased + doc.Computed + doc.Failed
	return doc
}

// Execute is the exp.CellExecutor. Cells whose setup or workload cannot be
// reconstructed by name on a worker are declined (handled=false) and run
// locally in the caller's process; everything else is served from the memo
// or scheduled. exp.Runner single-flights per cell, so one sweep enqueues
// each key at most once; re-submissions after a coordinator restart hit
// the memo instead.
func (c *Coordinator) Execute(ctx context.Context, key string, w trace.Workload, setup exp.Setup) (sim.Result, bool, error) {
	if _, ok := exp.ResolveSetup(setup.Name); !ok {
		return sim.Result{}, false, nil
	}
	if _, err := trace.ByName(w.Name); err != nil {
		return sim.Result{}, false, nil
	}
	if res, ok, err := c.memo.Get(key); err == nil && ok {
		c.mu.Lock()
		c.memoHits++
		c.mu.Unlock()
		return res, true, nil
	}

	c.mu.Lock()
	cl, exists := c.cells[key]
	if !exists {
		cl = &cell{
			spec: CellSpec{Key: key, Workload: w.Name, Setup: setup.Name, Params: c.params},
			done: make(chan struct{}),
		}
		c.cells[key] = cl
	}
	c.mu.Unlock()

	select {
	case <-cl.done:
	case <-ctx.Done():
		return sim.Result{}, true, ctx.Err()
	}
	c.mu.Lock()
	res, errmsg := cl.res, cl.errmsg
	c.mu.Unlock()
	if errmsg != "" {
		return sim.Result{}, true, errors.New(errmsg)
	}
	return res, true, nil
}

// scan requeues cells whose lease expired without a heartbeat.
func (c *Coordinator) scan() {
	defer close(c.scanDone)
	t := time.NewTicker(c.ScanEvery)
	defer t.Stop()
	for {
		select {
		case <-c.scanStop:
			return
		case now := <-t.C:
			c.expireLeases(now)
		}
	}
}

func (c *Coordinator) expireLeases(now time.Time) {
	type event struct {
		spec     CellSpec
		worker   string
		attempts int
		failed   bool
	}
	var events []event
	c.mu.Lock()
	for _, cl := range c.cells {
		if cl.state != stateLeased || now.Before(cl.deadline) {
			continue
		}
		ev := event{spec: cl.spec, worker: cl.worker, attempts: cl.attempts}
		if cl.attempts >= c.MaxAttempts {
			cl.state = stateFailed
			cl.errmsg = fmt.Sprintf("expserve: cell lost with worker %s after %d attempts", cl.worker, cl.attempts)
			ev.failed = true
			close(cl.done)
		} else {
			cl.state = stateQueued
			cl.worker = ""
			// Exponential backoff, capped: a worker pool in trouble gets
			// breathing room without stalling the sweep for long.
			backoff := c.RetryBackoff << uint(min(cl.attempts, 4))
			cl.notBefore = now.Add(backoff)
			c.requeues++
		}
		events = append(events, ev)
	}
	c.mu.Unlock()
	for _, ev := range events {
		if ev.failed {
			c.logf("cell %s/%s failed: worker %s lost, attempt limit %d reached",
				ev.spec.Workload, ev.spec.Setup, ev.worker, ev.attempts)
		} else {
			c.logf("requeued %s/%s (worker %s lost, attempt %d/%d)",
				ev.spec.Workload, ev.spec.Setup, ev.worker, ev.attempts, c.MaxAttempts)
		}
	}
}

// handleCells serves POST (lease) and GET (listing).
func (c *Coordinator) handleCells(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		c.handleList(w)
	case http.MethodPost:
		c.handleLease(w, r)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	now := time.Now()
	c.mu.Lock()
	var pick *cell
	open := false // any cell that could still produce work
	for _, cl := range c.cells {
		switch cl.state {
		case stateQueued:
			open = true
			if now.Before(cl.notBefore) {
				continue
			}
			// Deterministic-ish pick is unnecessary (cells are
			// order-independent); take any runnable cell, preferring the
			// least-attempted so retries don't starve fresh work.
			if pick == nil || cl.attempts < pick.attempts {
				pick = cl
			}
		case stateLeased:
			open = true
		}
	}
	if pick != nil {
		pick.state = stateLeased
		pick.attempts++
		pick.worker = req.Worker
		pick.deadline = now.Add(c.LeaseTTL)
	}
	closed := c.closed
	c.mu.Unlock()

	reply := LeaseReply{Status: LeaseWait, RetryMillis: c.PollInterval.Milliseconds()}
	switch {
	case pick != nil:
		spec := pick.spec
		reply = LeaseReply{Status: LeaseCell, Cell: &spec, TTLMillis: c.LeaseTTL.Milliseconds()}
	case closed && !open:
		reply = LeaseReply{Status: LeaseDone}
	}
	writeJSON(w, reply)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var post ResultPost
	if err := json.NewDecoder(r.Body).Decode(&post); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	cl, ok := c.cells[post.Key]
	if !ok || cl.state == stateDone || cl.state == stateFailed {
		// Unknown key (a restarted coordinator that already memo-hit it)
		// or a duplicate delivery from a requeued race: acknowledge and
		// drop — the first result won.
		c.mu.Unlock()
		writeJSON(w, struct{}{})
		return
	}
	spec := cl.spec
	if post.Error != "" {
		// Execution errors are deterministic properties of the cell, not
		// of the worker; retrying elsewhere would fail the same way.
		cl.state = stateFailed
		cl.errmsg = post.Error
		cl.worker = post.Worker
		close(cl.done)
		c.mu.Unlock()
		c.logf("cell %s/%s failed on %s: %s", spec.Workload, spec.Setup, post.Worker, post.Error)
		writeJSON(w, struct{}{})
		return
	}
	if post.Result == nil {
		c.mu.Unlock()
		http.Error(w, "result post carries neither result nor error", http.StatusBadRequest)
		return
	}
	cl.state = stateDone
	cl.res = *post.Result
	cl.worker = post.Worker
	c.mu.Unlock()

	// Persist before waking the waiter: if the Put fails the sweep still
	// completes from memory, it just won't resume for free.
	meta := exp.CellMeta{Workload: spec.Workload, Setup: spec.Setup, Params: spec.Params}
	if err := c.memo.Put(post.Key, meta, *post.Result); err != nil {
		c.logf("memo put %s/%s: %v", spec.Workload, spec.Setup, err)
	}
	close(cl.done)
	writeJSON(w, struct{}{})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var hb HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&hb); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	cl, ok := c.cells[hb.Key]
	active := ok && cl.state == stateLeased && cl.worker == hb.Worker
	if active {
		cl.deadline = time.Now().Add(c.LeaseTTL)
	}
	c.mu.Unlock()
	writeJSON(w, HeartbeatReply{Active: active})
}

func (c *Coordinator) handleList(w http.ResponseWriter) {
	c.mu.Lock()
	list := make([]CellStatus, 0, len(c.cells))
	for _, cl := range c.cells {
		list = append(list, CellStatus{
			Key:      cl.spec.Key,
			Workload: cl.spec.Workload,
			Setup:    cl.spec.Setup,
			State:    stateNames[cl.state],
			Attempts: cl.attempts,
			Worker:   cl.worker,
			Error:    cl.errmsg,
		})
	}
	c.mu.Unlock()
	sort.Slice(list, func(i, j int) bool {
		if list[i].Workload != list[j].Workload {
			return list[i].Workload < list[j].Workload
		}
		return list[i].Setup < list[j].Setup
	})
	writeJSON(w, list)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, c.Status())
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
