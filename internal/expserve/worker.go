package expserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/trace"
)

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL ("http://host:port").
	Coordinator string
	// Jobs bounds concurrent cells (and the runner's pool); values below
	// 1 mean 1.
	Jobs int
	// ID names the worker in leases and logs; empty derives host-pid.
	ID string
	// TraceDir, when set, streams workload traces from compressed DPBF v2
	// files under this directory instead of materializing them in memory
	// (exp.Runner.SetTraceDir).
	TraceDir string
	// Log receives per-cell progress; nil means os.Stderr.
	Log io.Writer
	// Verbose logs each cell's start and finish.
	Verbose bool
}

// worker is the run state behind RunWorker.
type worker struct {
	cfg    WorkerConfig
	client *http.Client

	mu      sync.Mutex
	runners map[exp.Params]*exp.Runner // one runner per parameter set, sharing trace memos across cells
}

// RunWorker pulls cells from a coordinator until the sweep is done, the
// context is canceled, or the coordinator stays unreachable past its
// grace. Each cell is reconstructed by name — trace.ByName for the
// workload, exp.ResolveSetup for the setup — and executed through the
// standard Runner single-cell path, so a distributed cell computes exactly
// the bytes the in-process pool would. While a cell runs, a heartbeat
// keeps its lease alive at a third of the coordinator's TTL.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Jobs < 1 {
		cfg.Jobs = 1
	}
	if cfg.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		cfg.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w := &worker{
		cfg:     cfg,
		client:  &http.Client{Timeout: 30 * time.Second},
		runners: make(map[exp.Params]*exp.Runner),
	}
	// Drop keep-alive connections on exit: a lingering never-used spare
	// (the transport sometimes races a second dial) would otherwise hold
	// the coordinator's graceful Shutdown hostage for its new-connection
	// grace period.
	defer w.client.CloseIdleConnections()
	var wg sync.WaitGroup
	errs := make([]error, cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			errs[slot] = w.loop(ctx)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func (w *worker) logf(format string, args ...any) {
	out := w.cfg.Log
	if out == nil {
		out = os.Stderr
	}
	fmt.Fprintf(out, "worker %s: "+format+"\n", append([]any{w.cfg.ID}, args...)...)
}

// runner returns the shared runner for one parameter set. Runners memoize
// workload traces, so cells sharing a workload generate (or open) its
// trace once per worker process, not once per cell.
func (w *worker) runner(p exp.Params) *exp.Runner {
	w.mu.Lock()
	defer w.mu.Unlock()
	r, ok := w.runners[p]
	if !ok {
		r = exp.NewRunner(p)
		r.SetJobs(w.cfg.Jobs)
		if w.cfg.TraceDir != "" {
			r.SetTraceDir(w.cfg.TraceDir)
		}
		w.runners[p] = r
	}
	return r
}

// loop is one lease-execute-report slot.
func (w *worker) loop(ctx context.Context) error {
	// Tolerate a coordinator that starts after the worker, or restarts
	// between polls, for up to this many consecutive connection failures.
	const maxConnFailures = 60
	connFailures := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil // canceled: a clean worker exit
		}
		reply, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			connFailures++
			if connFailures >= maxConnFailures {
				return fmt.Errorf("expserve: coordinator %s unreachable: %w", w.cfg.Coordinator, err)
			}
			if !sleepCtx(ctx, 500*time.Millisecond) {
				return nil
			}
			continue
		}
		connFailures = 0
		switch reply.Status {
		case LeaseDone:
			return nil
		case LeaseCell:
			w.execute(ctx, reply)
		default: // LeaseWait and anything unknown: poll again
			delay := time.Duration(reply.RetryMillis) * time.Millisecond
			if delay <= 0 {
				delay = 250 * time.Millisecond
			}
			if !sleepCtx(ctx, delay) {
				return nil
			}
		}
	}
}

// execute runs one leased cell and reports its outcome. Cell execution
// errors are reported to the coordinator (which fails the cell — they are
// deterministic); only transport errors are the worker's own problem.
func (w *worker) execute(ctx context.Context, reply *LeaseReply) {
	spec := *reply.Cell
	if w.cfg.Verbose {
		w.logf("running %s/%s", spec.Workload, spec.Setup)
	}
	start := time.Now()

	// Heartbeat for the duration of the cell at a third of the TTL.
	hbCtx, stopHB := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	if ttl := time.Duration(reply.TTLMillis) * time.Millisecond; ttl > 0 {
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			t := time.NewTicker(ttl / 3)
			defer t.Stop()
			for {
				select {
				case <-hbCtx.Done():
					return
				case <-t.C:
					// A failed or inactive beat is not actionable: the
					// result will be accepted regardless (deterministic
					// cells), so keep computing.
					_ = w.post(hbCtx, "/cells/heartbeat", HeartbeatRequest{Key: spec.Key, Worker: w.cfg.ID}, nil)
				}
			}
		}()
	}

	res, err := w.runCell(ctx, spec)
	stopHB()
	hbWG.Wait()
	if ctx.Err() != nil {
		// Canceled mid-cell: report nothing; the lease expires and the
		// coordinator requeues the cell elsewhere.
		return
	}

	post := ResultPost{Key: spec.Key, Worker: w.cfg.ID}
	if err != nil {
		post.Error = err.Error()
	} else {
		post.Result = &res
	}
	if perr := w.postWithRetry(ctx, "/cells/result", post); perr != nil {
		// The lease will expire and the cell will be recomputed; losing
		// one delivery is not fatal to the worker.
		w.logf("delivering %s/%s: %v", spec.Workload, spec.Setup, perr)
		return
	}
	if w.cfg.Verbose {
		outcome := "finished"
		if err != nil {
			outcome = "failed"
		}
		w.logf("%s %s/%s in %v", outcome, spec.Workload, spec.Setup, time.Since(start).Round(time.Millisecond))
	}
}

// runCell rebuilds and executes one cell.
func (w *worker) runCell(ctx context.Context, spec CellSpec) (sim.Result, error) {
	wl, err := trace.ByName(spec.Workload)
	if err != nil {
		return sim.Result{}, err
	}
	setup, ok := exp.ResolveSetup(spec.Setup)
	if !ok {
		return sim.Result{}, fmt.Errorf("expserve: setup %q is not in this worker's catalog", spec.Setup)
	}
	return w.runner(spec.Params).RunContext(ctx, wl, setup)
}

// lease asks the coordinator for work.
func (w *worker) lease(ctx context.Context) (*LeaseReply, error) {
	var reply LeaseReply
	if err := w.post(ctx, "/cells", LeaseRequest{Worker: w.cfg.ID}, &reply); err != nil {
		return nil, err
	}
	if reply.Status == LeaseCell && reply.Cell == nil {
		return nil, errors.New("expserve: lease reply carries no cell")
	}
	return &reply, nil
}

// postWithRetry retries transient delivery failures briefly.
func (w *worker) postWithRetry(ctx context.Context, path string, body any) error {
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		if err = w.post(ctx, path, body, nil); err == nil || ctx.Err() != nil {
			return err
		}
		if !sleepCtx(ctx, time.Duration(attempt+1)*200*time.Millisecond) {
			return err
		}
	}
	return err
}

// post sends one JSON request and decodes the reply into out (when non-nil).
func (w *worker) post(ctx context.Context, path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("expserve: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleepCtx sleeps d or until ctx is done; false means canceled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
