package expserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Integration fault matrix for the sharded experiment service: a live
// coordinator over a real listener, real workers pulling over HTTP, and
// the exp.Runner plugged in as it is in paperexp -coordinator mode.

var serveTestParams = exp.Params{Warmup: 2_000, Measure: 6_000, Seed: 1, SampleEvery: 2_000}

func serveWorkload(t *testing.T, name string) trace.Workload {
	t.Helper()
	w, err := trace.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// localGrid computes the single-process reference results.
func localGrid(t *testing.T, workloads []trace.Workload, setups []exp.Setup) map[string]sim.Result {
	t.Helper()
	r := exp.NewRunner(serveTestParams)
	out := make(map[string]sim.Result)
	for _, w := range workloads {
		for _, su := range setups {
			res, err := r.Run(w, su)
			if err != nil {
				t.Fatal(err)
			}
			out[w.Name+"/"+su.Name] = res
		}
	}
	return out
}

// fastTimings shrinks the scheduling clocks so fault paths play out in
// milliseconds.
func fastTimings(c *Coordinator) {
	c.LeaseTTL = 250 * time.Millisecond
	c.ScanEvery = 25 * time.Millisecond
	c.RetryBackoff = 10 * time.Millisecond
	c.PollInterval = 20 * time.Millisecond
}

// runSweep drives one full distributed sweep: coordinator on a loopback
// port, nWorkers real workers, a runner executing the grid through
// Coordinator.Execute. Returns every cell's result and the final status.
func runSweep(t *testing.T, memoDir string, workloads []trace.Workload, setups []exp.Setup, nWorkers int) (map[string]sim.Result, StatusDoc) {
	t.Helper()
	memo, err := OpenDiskMemo(memoDir)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(memo, serveTestParams)
	coord.Log = io.Discard
	fastTimings(coord)
	addr, err := coord.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, coord)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < nWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := RunWorker(ctx, WorkerConfig{
				Coordinator: "http://" + addr,
				Jobs:        1,
				ID:          fmt.Sprintf("w%d", i),
				Log:         io.Discard,
			})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}

	r := exp.NewRunner(serveTestParams)
	r.Executor = coord.Execute
	if err := r.RunGrid(workloads, setups); err != nil {
		t.Fatal(err)
	}
	coord.Finish()
	wg.Wait()

	out := make(map[string]sim.Result)
	for _, w := range workloads {
		for _, su := range setups {
			res, err := r.Run(w, su) // served from the runner's in-memory memo
			if err != nil {
				t.Fatal(err)
			}
			out[w.Name+"/"+su.Name] = res
		}
	}
	status := coord.Status()
	if got := status.MemoHits + status.Computed + status.Failed + status.Queued + status.Leased; got != status.Cells {
		t.Fatalf("StatusDoc invariant broken: cells=%d but parts sum to %d", status.Cells, got)
	}
	return out, status
}

func shutdown(t *testing.T, c *Coordinator) {
	t.Helper()
	// The raw http.Post helpers leave keep-alive connections in the
	// default client; close them so the server's graceful Shutdown is not
	// left waiting on them.
	http.DefaultClient.CloseIdleConnections()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// TestDistributedMatchesLocal: a two-worker sweep is byte-identical to the
// single-process pool, every cell computed exactly once, nothing failed.
func TestDistributedMatchesLocal(t *testing.T) {
	workloads := []trace.Workload{serveWorkload(t, "cc"), serveWorkload(t, "mcf")}
	setups := []exp.Setup{exp.Baseline(), exp.DPPredSetup()}
	want := localGrid(t, workloads, setups)

	got, status := runSweep(t, t.TempDir(), workloads, setups, 2)
	for cell, w := range want {
		if got[cell] != w {
			t.Errorf("cell %s: distributed result diverges from local", cell)
		}
	}
	if status.Computed != len(want) || status.MemoHits != 0 || status.Failed != 0 {
		t.Fatalf("first sweep status: %+v", status)
	}
}

// TestCoordinatorRestartComputesOnlyDelta: after a completed sweep, a new
// coordinator over the same memo dir serves every old cell from disk and
// schedules only cells it has never seen.
func TestCoordinatorRestartComputesOnlyDelta(t *testing.T) {
	dir := t.TempDir()
	workloads := []trace.Workload{serveWorkload(t, "cc"), serveWorkload(t, "mcf")}
	setups := []exp.Setup{exp.Baseline(), exp.DPPredSetup()}

	first, status := runSweep(t, dir, workloads, setups, 1)
	if status.Computed != 4 {
		t.Fatalf("seed sweep computed %d cells, want 4", status.Computed)
	}

	// Same grid, fresh coordinator: all memo, no compute.
	second, status := runSweep(t, dir, workloads, setups, 1)
	if status.MemoHits != 4 || status.Computed != 0 {
		t.Fatalf("identical re-run: %+v, want 4 memo hits and 0 computed", status)
	}
	for cell, w := range first {
		if second[cell] != w {
			t.Errorf("cell %s changed across a coordinator restart", cell)
		}
	}

	// Grown grid: only the new column computes.
	grown := append(setups, exp.OracleSetup())
	third, status := runSweep(t, dir, workloads, grown, 1)
	if status.MemoHits != 4 || status.Computed != 2 {
		t.Fatalf("grown re-run: %+v, want 4 memo hits and 2 computed", status)
	}
	for cell, w := range first {
		if third[cell] != w {
			t.Errorf("cell %s changed when the grid grew", cell)
		}
	}
}

// TestCorruptMemoEntryRecomputed: damaging one entry on disk costs exactly
// one recompute — the entry is rejected, evicted and rebuilt; the rest of
// the sweep stays memo-served and the grid stays byte-identical.
func TestCorruptMemoEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	workloads := []trace.Workload{serveWorkload(t, "cc")}
	setups := []exp.Setup{exp.Baseline(), exp.DPPredSetup()}
	first, _ := runSweep(t, dir, workloads, setups, 1)

	fp, err := exp.WorkloadFingerprint(workloads[0], serveTestParams.Seed, serveTestParams.Warmup+serveTestParams.Measure)
	if err != nil {
		t.Fatal(err)
	}
	key := exp.CellKey(fp, exp.Baseline(), serveTestParams)
	flipByte(t, filepath.Join(dir, key, "result.json"))

	second, status := runSweep(t, dir, workloads, setups, 1)
	if status.MemoHits != 1 || status.Computed != 1 {
		t.Fatalf("post-corruption sweep: %+v, want 1 memo hit and 1 recompute", status)
	}
	for cell, w := range first {
		if second[cell] != w {
			t.Errorf("cell %s diverges after corruption recovery", cell)
		}
	}
}

// leaseAs performs one raw lease request, as a fake worker would.
func leaseAs(t *testing.T, addr, worker string) LeaseReply {
	t.Helper()
	b, _ := json.Marshal(LeaseRequest{Worker: worker})
	resp, err := http.Post("http://"+addr+"/cells", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reply LeaseReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	return reply
}

// ghostLease polls until the fake worker holds a cell lease.
func ghostLease(t *testing.T, addr string) LeaseReply {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reply := leaseAs(t, addr, "ghost"); reply.Status == LeaseCell {
			return reply
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("ghost never obtained a lease")
	return LeaseReply{}
}

// TestLostWorkerRequeues is the kill -9 fault: a worker leases a cell,
// goes silent (no heartbeat, no result), and the coordinator requeues the
// cell to a live worker; the sweep completes with the correct bytes.
func TestLostWorkerRequeues(t *testing.T) {
	w := serveWorkload(t, "cc")
	want := localGrid(t, []trace.Workload{w}, []exp.Setup{exp.Baseline()})["cc/baseline"]

	memo, err := OpenDiskMemo(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(memo, serveTestParams)
	var logBuf syncBuffer
	coord.Log = &logBuf
	fastTimings(coord)
	addr, err := coord.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, coord)

	r := exp.NewRunner(serveTestParams)
	r.Executor = coord.Execute
	type runOut struct {
		res sim.Result
		err error
	}
	resCh := make(chan runOut, 1)
	go func() {
		res, err := r.Run(w, exp.Baseline())
		resCh <- runOut{res, err}
	}()

	// The doomed worker takes the lease and dies silently.
	ghost := ghostLease(t, addr)
	if ghost.Cell == nil || ghost.Cell.Workload != "cc" {
		t.Fatalf("ghost leased unexpected cell %+v", ghost.Cell)
	}

	// A live worker joins; it can only get the cell via lease expiry.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := RunWorker(ctx, WorkerConfig{Coordinator: "http://" + addr, Jobs: 1, ID: "live", Log: io.Discard}); err != nil {
			t.Errorf("live worker: %v", err)
		}
	}()

	out := <-resCh
	if out.err != nil {
		t.Fatalf("sweep failed after worker loss: %v", out.err)
	}
	if out.res != want {
		t.Fatal("requeued cell diverges from the local reference")
	}
	coord.Finish()
	wg.Wait()
	if st := coord.Status(); st.Requeues < 1 || st.Computed != 1 {
		t.Fatalf("status after worker loss: %+v, want ≥1 requeue and 1 computed", st)
	}
	if !strings.Contains(logBuf.String(), "requeued cc/baseline (worker ghost lost") {
		t.Fatalf("requeue not logged; log was:\n%s", logBuf.String())
	}
}

// TestWorkerErrorIsTerminal: an execution error reported by a worker fails
// the cell immediately — deterministic cells are never retried on another
// machine — and the waiting sweep sees the message.
func TestWorkerErrorIsTerminal(t *testing.T) {
	memo, err := OpenDiskMemo(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(memo, serveTestParams)
	coord.Log = io.Discard
	fastTimings(coord)
	addr, err := coord.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, coord)

	w := serveWorkload(t, "cc")
	r := exp.NewRunner(serveTestParams)
	r.Executor = coord.Execute
	errCh := make(chan error, 1)
	go func() {
		_, err := r.Run(w, exp.Baseline())
		errCh <- err
	}()

	ghost := ghostLease(t, addr)
	b, _ := json.Marshal(ResultPost{Key: ghost.Cell.Key, Worker: "ghost", Error: "synthetic cell failure"})
	resp, err := http.Post("http://"+addr+"/cells/result", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	runErr := <-errCh
	if runErr == nil || !strings.Contains(runErr.Error(), "synthetic cell failure") {
		t.Fatalf("sweep error = %v, want the worker's message", runErr)
	}
	if st := coord.Status(); st.Failed != 1 || st.Requeues != 0 {
		t.Fatalf("status after terminal error: %+v, want 1 failed and 0 requeues", st)
	}
	if m, err := os.ReadDir(memo.Dir()); err != nil || len(m) != 0 {
		t.Fatalf("failed cell leaked into the memo: %v %v", m, err)
	}
}

// syncBuffer is a goroutine-safe log sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
