package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/pred"
	"repro/internal/sim"
	"repro/internal/trace"
)

// lltSizeConfig builds a Table I machine with a resized LLT.
func lltSizeConfig(entries int) func() sim.Config {
	return func() sim.Config {
		cfg := sim.DefaultConfig()
		cfg.LLT.Entries = entries
		cfg.LLT.Ways = 8
		return cfg
	}
}

// Figure11a studies dpPred across LLT sizes (512/1024/1536 entries); each
// column is normalized to the baseline of the same size.
func Figure11a(r *Runner) (Series, error) {
	sizes := []int{512, 1024, 1536}
	var grid []Setup
	for _, n := range sizes {
		cfgFn := lltSizeConfig(n)
		grid = append(grid,
			Setup{Name: fmt.Sprintf("base-llt%d", n), Config: cfgFn},
			Setup{Name: fmt.Sprintf("dpPred-llt%d", n), Config: cfgFn, TLB: newDPPred})
	}
	if err := r.RunGrid(trace.Workloads(), grid); err != nil {
		return Series{}, err
	}
	s := Series{
		ID:    "Figure 11a",
		Title: "Performance of dpPred for different TLB sizes",
		Unit:  "IPC normalized to same-size baseline",
	}
	for _, n := range sizes {
		s.Cols = append(s.Cols, fmt.Sprintf("%d entries", n))
	}
	for _, w := range trace.Workloads() {
		row := SeriesRow{Name: w.Name}
		for _, n := range sizes {
			cfgFn := lltSizeConfig(n)
			base, err := r.Run(w, Setup{Name: fmt.Sprintf("base-llt%d", n), Config: cfgFn})
			if err != nil {
				return Series{}, err
			}
			dp, err := r.Run(w, Setup{Name: fmt.Sprintf("dpPred-llt%d", n), Config: cfgFn, TLB: newDPPred})
			if err != nil {
				return Series{}, err
			}
			row.Values = append(row.Values, dp.IPC/base.IPC)
		}
		s.Rows = append(s.Rows, row)
	}
	s.summarize("geomean", geomean)
	return s, nil
}

// dpPredVariant builds a dpPred setup with a custom pHIST geometry or
// shadow size.
func dpPredVariant(name string, mutate func(*core.DPPredConfig)) Setup {
	return Setup{
		Name: name,
		TLB: func(s *sim.System) (pred.TLBPredictor, error) {
			cfg := core.DefaultDPPredConfig(s.LLT().Entries())
			mutate(&cfg)
			return core.NewDPPred(cfg)
		},
	}
}

// Figure11b studies the pHIST indexing function: 6-bit PC × 5-bit VPN
// (2048 entries), the default 6 × 4 (1024 entries), and a PC-only 10-bit
// index (1024 entries).
func Figure11b(r *Runner) (Series, error) {
	setups := []Setup{
		dpPredVariant("dpPred-6pc5vpn", func(c *core.DPPredConfig) { c.VPNBits = 5 }),
		DPPredSetup(),
		dpPredVariant("dpPred-10pc", func(c *core.DPPredConfig) { c.PCBits, c.VPNBits = 10, 0 }),
	}
	s, err := r.ipcSeries("Figure 11b",
		"Performance of dpPred for different history table configurations",
		Baseline(), setups)
	if err != nil {
		return Series{}, err
	}
	s.Cols = []string{"6b PC, 5b VPN", "6b PC, 4b VPN", "10b PC"}
	return s, nil
}

// Figure11c studies the shadow-table size (2 vs 4 entries).
func Figure11c(r *Runner) (Series, error) {
	setups := []Setup{
		DPPredSetup(),
		dpPredVariant("dpPred-sh4", func(c *core.DPPredConfig) { c.ShadowEntries = 4 }),
	}
	s, err := r.ipcSeries("Figure 11c",
		"Performance of dpPred for different shadow table sizes",
		Baseline(), setups)
	if err != nil {
		return Series{}, err
	}
	s.Cols = []string{"2-entry shadow", "4-entry shadow"}
	return s, nil
}

// cbPredVariant builds a dpPred+cbPred setup with a custom PFQ size.
func cbPredVariant(name string, pfq int) Setup {
	return Setup{
		Name: name,
		TLB:  newDPPred,
		LLC: func(s *sim.System) (pred.LLCPredictor, error) {
			cfg := core.DefaultCBPredConfig(s.LLC().Capacity())
			cfg.PFQEntries = pfq
			return core.NewCBPred(cfg)
		},
	}
}

// Figure11d studies the PFQ size (8 vs 64 entries).
func Figure11d(r *Runner) (Series, error) {
	setups := []Setup{
		DPPredCBPredSetup(),
		cbPredVariant("dpPred+cbPred-pfq64", 64),
	}
	s, err := r.ipcSeries("Figure 11d",
		"Performance of cbPred for different PFQ sizes",
		Baseline(), setups)
	if err != nil {
		return Series{}, err
	}
	s.Cols = []string{"8-entry PFQ", "64-entry PFQ"}
	return s, nil
}

// llcSizeConfig builds a Table I machine with a resized LLC.
func llcSizeConfig(sizeKB int) func() sim.Config {
	return func() sim.Config {
		cfg := sim.DefaultConfig()
		cfg.LLC.SizeKB = sizeKB
		return cfg
	}
}

// Figure11e studies dpPred+cbPred across LLC sizes (2 MB vs 3 MB); each
// column is normalized to the baseline with the same LLC.
func Figure11e(r *Runner) (Series, error) {
	sizes := []int{2048, 3072}
	var grid []Setup
	for _, kb := range sizes {
		cfgFn := llcSizeConfig(kb)
		grid = append(grid,
			Setup{Name: fmt.Sprintf("base-llc%d", kb), Config: cfgFn},
			Setup{
				Name: fmt.Sprintf("dpPred+cbPred-llc%d", kb), Config: cfgFn,
				TLB: newDPPred, LLC: newCBPred,
			})
	}
	if err := r.RunGrid(trace.Workloads(), grid); err != nil {
		return Series{}, err
	}
	s := Series{
		ID:    "Figure 11e",
		Title: "Performance with dpPred and cbPred for different LLC sizes",
		Unit:  "IPC normalized to same-size baseline",
		Cols:  []string{"2 MB/core", "3 MB/core"},
	}
	for _, w := range trace.Workloads() {
		row := SeriesRow{Name: w.Name}
		for _, kb := range sizes {
			cfgFn := llcSizeConfig(kb)
			base, err := r.Run(w, Setup{Name: fmt.Sprintf("base-llc%d", kb), Config: cfgFn})
			if err != nil {
				return Series{}, err
			}
			both, err := r.Run(w, Setup{
				Name: fmt.Sprintf("dpPred+cbPred-llc%d", kb), Config: cfgFn,
				TLB: newDPPred, LLC: newCBPred,
			})
			if err != nil {
				return Series{}, err
			}
			row.Values = append(row.Values, both.IPC/base.IPC)
		}
		s.Rows = append(s.Rows, row)
	}
	s.summarize("geomean", geomean)
	return s, nil
}

// srripConfig builds a machine with SRRIP in the LLT and optionally the LLC.
func srripConfig(llc bool) func() sim.Config {
	return func() sim.Config {
		cfg := sim.DefaultConfig()
		cfg.LLT.Policy = policy.SRRIP{}
		if llc {
			cfg.LLC.Policy = policy.SRRIP{}
		}
		return cfg
	}
}

// Figure11f studies the predictors on top of SRRIP replacement. All four
// bars are normalized to the LRU baseline, as in the paper:
//
//	SRRIP LLT          — SRRIP in the LLT only
//	SRRIP dpPred       — dpPred on top of an SRRIP LLT
//	SRRIP LLT+LLC      — SRRIP in both structures
//	SRRIP cbPred       — dpPred+cbPred on top of SRRIP LLT+LLC
func Figure11f(r *Runner) (Series, error) {
	setups := []Setup{
		{Name: "srrip-llt", Config: srripConfig(false)},
		{Name: "srrip-dpPred", Config: srripConfig(false), TLB: newDPPred},
		{Name: "srrip-llt-llc", Config: srripConfig(true)},
		{Name: "srrip-cbPred", Config: srripConfig(true), TLB: newDPPred, LLC: newCBPred},
	}
	s, err := r.ipcSeries("Figure 11f",
		"Performance of cbPred and dpPred when using SRRIP",
		Baseline(), setups)
	if err != nil {
		return Series{}, err
	}
	s.Cols = []string{"SRRIP LLT", "SRRIP dpPred", "SRRIP LLT+LLC", "SRRIP cbPred"}
	return s, nil
}
