// Package exp reproduces the paper's evaluation: every figure and table of
// §IV and §VI is a function returning a structured result that cmd/paperexp
// prints in the paper's layout and bench_test.go regenerates under `go
// test -bench`. See DESIGN.md §5 for the experiment index.
package exp

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pred"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Params sets the simulation lengths shared by all experiments.
type Params struct {
	// Warmup is the number of accesses run before measurement.
	Warmup uint64
	// Measure is the number of measured accesses.
	Measure uint64
	// Seed feeds the workload generators and frame allocator.
	Seed uint64
	// SampleEvery is the residency-sampling cadence for the
	// characterization experiments.
	SampleEvery uint64
}

// DefaultParams balances fidelity and runtime: the full paper evaluation
// runs in minutes on a laptop-class machine.
func DefaultParams() Params {
	return Params{Warmup: 300_000, Measure: 1_000_000, Seed: 1, SampleEvery: 20_000}
}

// QuickParams is a faster configuration for tests and demos: long enough
// for the predictors' saturating counters to train, short enough that the
// full grid runs in a few minutes.
func QuickParams() Params {
	return Params{Warmup: 150_000, Measure: 400_000, Seed: 1, SampleEvery: 10_000}
}

// Setup names a machine + predictor combination.
type Setup struct {
	// Name identifies the setup in reports ("dpPred", "SHiP-TLB", ...).
	Name string
	// Config builds the machine configuration (nil means Table I).
	Config func() sim.Config
	// TLB and LLC construct the predictors once the system exists
	// (predictors like AIP need the built structures); nil means none.
	TLB func(s *sim.System) (pred.TLBPredictor, error)
	LLC func(s *sim.System) (pred.LLCPredictor, error)
	// Prefetch constructs an optional TLB prefetcher (extension
	// experiments).
	Prefetch func(s *sim.System) (pred.TLBPrefetcher, error)
	// Oracle runs the two-pass record/replay protocol of §VI-A.
	Oracle bool
	// Instrument enables the requested instrumentation before
	// measurement.
	Instrument Instrumentation
}

// Instrumentation selects measurement machinery.
type Instrumentation struct {
	// Accuracy enables the §VI-C mirror-structure grading.
	Accuracy bool
	// Characterize enables the §IV samplers and Table III correlation.
	Characterize bool
}

// Runner executes setups against workloads, memoizing results so that
// experiments sharing a configuration (e.g. the baseline) simulate once.
//
// The runner is safe for concurrent use: uncached simulations are sharded
// across a bounded worker pool (SetJobs; default runtime.GOMAXPROCS), the
// memo is single-flight per (workload, setup) key so a shared baseline
// still simulates exactly once no matter how many experiments race for it,
// and every run observes through its own obs.Observer.ForkRun scope so
// traces, interval series and metrics from parallel runs never interleave.
// Every simulation is seeded, so results are byte-identical whatever the
// job count (see TestParallelMatchesSequential).
type Runner struct {
	params Params
	jobs   int
	sem    chan struct{} // worker-pool slots, capacity jobs

	mu   sync.Mutex
	memo map[string]*memoEntry

	// ProgressStart, when set, is called as each uncached simulation
	// begins; memoized replays report nothing. With jobs > 1 the progress
	// callbacks run concurrently from pool workers.
	ProgressStart func(workload, setup string)
	// ProgressDone, when set, is called as each uncached simulation
	// finishes, with its wall-clock duration.
	ProgressDone func(workload, setup string, elapsed time.Duration)
	// Observer, when set, observes every simulated system: each run gets
	// an isolated ForkRun scope labeled "workload/setup", joined back into
	// this bundle when the run finishes.
	Observer *obs.Observer
}

// memoEntry is one single-flight memo slot: the first caller for a key
// becomes the leader and simulates; everyone else waits on done.
type memoEntry struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// NewRunner creates a runner with the given parameters and a worker pool
// sized to runtime.GOMAXPROCS.
func NewRunner(p Params) *Runner {
	r := &Runner{params: p, memo: make(map[string]*memoEntry)}
	r.SetJobs(runtime.GOMAXPROCS(0))
	return r
}

// SetJobs bounds the number of simulations in flight (1 = sequential).
// Values below 1 are clamped to 1. Call before submitting work; resizing
// does not affect simulations already holding a pool slot.
func (r *Runner) SetJobs(n int) {
	if n < 1 {
		n = 1
	}
	r.jobs = n
	r.sem = make(chan struct{}, n)
}

// Jobs returns the worker-pool bound.
func (r *Runner) Jobs() int { return r.jobs }

// Params returns the runner's parameters.
func (r *Runner) Params() Params { return r.params }

// Run simulates one workload under one setup (memoized, single-flight).
// Concurrent callers asking for the same key block until the leader's
// simulation finishes and then share its result; errors are memoized too.
func (r *Runner) Run(w trace.Workload, setup Setup) (sim.Result, error) {
	key := w.Name + "/" + setup.Name
	r.mu.Lock()
	if e, ok := r.memo[key]; ok {
		r.mu.Unlock()
		<-e.done
		return e.res, e.err
	}
	e := &memoEntry{done: make(chan struct{})}
	r.memo[key] = e
	r.mu.Unlock()

	r.sem <- struct{}{} // acquire a pool slot
	if r.ProgressStart != nil {
		r.ProgressStart(w.Name, setup.Name)
	}
	start := time.Now()
	res, err := r.runUncached(w, setup)
	if err != nil {
		err = fmt.Errorf("exp: %s under %s: %w", w.Name, setup.Name, err)
	} else if r.ProgressDone != nil {
		r.ProgressDone(w.Name, setup.Name, time.Since(start))
	}
	<-r.sem // release the slot before waking waiters

	e.res, e.err = res, err
	close(e.done)
	return res, err
}

// RunGrid simulates the full workload × setup cross product, sharding the
// uncached runs across the worker pool, and returns the first error. All
// results land in the memo, so callers aggregate afterwards by replaying
// Run in whatever fixed order the report needs — aggregation order is
// completely decoupled from completion order.
func (r *Runner) RunGrid(workloads []trace.Workload, setups []Setup) error {
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for _, w := range workloads {
		for _, su := range setups {
			wg.Add(1)
			go func(w trace.Workload, su Setup) {
				defer wg.Done()
				if _, err := r.Run(w, su); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}(w, su)
		}
	}
	wg.Wait()
	return firstErr
}

func (r *Runner) runUncached(w trace.Workload, setup Setup) (sim.Result, error) {
	cfgFn := setup.Config
	if cfgFn == nil {
		cfgFn = sim.DefaultConfig
	}

	var record *pred.DOARecord
	if setup.Oracle {
		// Recording pass: baseline machine, ground-truth capture.
		rec, err := r.recordPass(w, cfgFn)
		if err != nil {
			return sim.Result{}, err
		}
		record = rec
	}

	cfg := cfgFn()
	cfg.Seed = r.params.Seed
	s, err := sim.New(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	if setup.Oracle {
		s.SetTLBPredictor(pred.NewOracleTLB(record))
	} else if setup.TLB != nil {
		p, err := setup.TLB(s)
		if err != nil {
			return sim.Result{}, err
		}
		s.SetTLBPredictor(p)
	}
	if setup.LLC != nil {
		p, err := setup.LLC(s)
		if err != nil {
			return sim.Result{}, err
		}
		s.SetLLCPredictor(p)
	}
	if setup.Prefetch != nil {
		p, err := setup.Prefetch(s)
		if err != nil {
			return sim.Result{}, err
		}
		s.SetTLBPrefetcher(p)
	}
	if r.Observer != nil {
		// Attach before warmup: learning curves need the predictors'
		// cold-start behaviour, so interval samples and trace events
		// cover the whole run (Result stays measurement-scoped). Each run
		// observes through its own forked scope so parallel runs cannot
		// interleave; join publishes into the shared bundle even when the
		// run errors, flushing whatever was traced.
		child, join := r.Observer.ForkRun(w.Name, setup.Name)
		defer join()
		s.AttachObserver(child)
	}

	g := w.New(r.params.Seed)
	if err := s.Run(g, r.params.Warmup); err != nil {
		return sim.Result{}, err
	}
	if setup.Instrument.Accuracy {
		if err := s.EnableAccuracyTracking(); err != nil {
			return sim.Result{}, err
		}
	}
	if setup.Instrument.Characterize {
		s.EnableCharacterization(r.params.SampleEvery)
	}
	s.StartMeasurement()
	if err := s.Run(g, r.params.Measure); err != nil {
		return sim.Result{}, err
	}
	s.Finish()
	return s.Result(), nil
}

// recordPass runs the baseline machine over the same trace to capture
// ground-truth DOA outcomes for the oracle.
func (r *Runner) recordPass(w trace.Workload, cfgFn func() sim.Config) (*pred.DOARecord, error) {
	cfg := cfgFn()
	cfg.Seed = r.params.Seed
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	rec := pred.NewDOARecord()
	s.SetTLBPredictor(pred.NewRecorderTLB(rec))
	g := w.New(r.params.Seed)
	if err := s.Run(g, r.params.Warmup+r.params.Measure); err != nil {
		return nil, err
	}
	return rec, nil
}

// --- Standard setups -----------------------------------------------------

// Baseline is the unmodified Table I machine.
func Baseline() Setup { return Setup{Name: "baseline"} }

// DPPredSetup runs dpPred on the LLT.
func DPPredSetup() Setup {
	return Setup{Name: "dpPred", TLB: newDPPred}
}

// DPPredCBPredSetup runs the paper's full proposal: dpPred + cbPred.
func DPPredCBPredSetup() Setup {
	return Setup{Name: "dpPred+cbPred", TLB: newDPPred, LLC: newCBPred}
}

// AIPTLBSetup applies AIP to the LLT (§VI-A).
func AIPTLBSetup() Setup {
	return Setup{Name: "AIP-TLB", TLB: newAIPTLB}
}

// SHiPTLBSetup applies SHiP to the LLT (§VI-A).
func SHiPTLBSetup() Setup {
	return Setup{Name: "SHiP-TLB", TLB: newSHiPTLB}
}

// AIPLLCSetup applies AIP to the LLC (§VI-B).
func AIPLLCSetup() Setup {
	return Setup{Name: "AIP-LLC", LLC: newAIPLLC}
}

// SHiPLLCSetup applies SHiP to the LLC (§VI-B).
func SHiPLLCSetup() Setup {
	return Setup{Name: "SHiP-LLC", LLC: newSHiPLLC}
}

// AIPBothSetup applies AIP to both the LLT and the LLC.
func AIPBothSetup() Setup {
	return Setup{Name: "AIP-TLB+LLC", TLB: newAIPTLB, LLC: newAIPLLC}
}

// SHiPBothSetup applies SHiP to both the LLT and the LLC.
func SHiPBothSetup() Setup {
	return Setup{Name: "SHiP-TLB+LLC", TLB: newSHiPTLB, LLC: newSHiPLLC}
}

// IsoStorageSetup grows the LLT by roughly dpPred's storage overhead
// (≈11%, §VI-A): one extra way, 1024 → 1152 entries.
func IsoStorageSetup() Setup {
	return Setup{
		Name: "iso-storage",
		Config: func() sim.Config {
			cfg := sim.DefaultConfig()
			cfg.LLT.Entries = 1152
			cfg.LLT.Ways = 9
			return cfg
		},
	}
}

// OracleSetup is the two-pass approximate oracle of §VI-A.
func OracleSetup() Setup {
	return Setup{Name: "oracle", Oracle: true}
}

// --- Predictor constructors ----------------------------------------------

func newDPPred(s *sim.System) (pred.TLBPredictor, error) {
	return core.NewDPPred(core.DefaultDPPredConfig(s.LLT().Entries()))
}

func newCBPred(s *sim.System) (pred.LLCPredictor, error) {
	return core.NewCBPred(core.DefaultCBPredConfig(s.LLC().Capacity()))
}

func newAIPTLB(s *sim.System) (pred.TLBPredictor, error) {
	return pred.NewAIPTLB(pred.DefaultAIPTLBConfig(s.LLT().Entries()), s.LLT().Inner())
}

func newSHiPTLB(s *sim.System) (pred.TLBPredictor, error) {
	return pred.NewSHiPTLB(pred.DefaultSHiPTLBConfig(s.LLT().Entries()))
}

func newAIPLLC(s *sim.System) (pred.LLCPredictor, error) {
	return pred.NewAIPLLC(pred.DefaultAIPLLCConfig(s.LLC().Capacity()), s.LLC())
}

func newSHiPLLC(s *sim.System) (pred.LLCPredictor, error) {
	return pred.NewSHiPLLC(pred.DefaultSHiPLLCConfig(s.LLC().Capacity()))
}
