// Package exp reproduces the paper's evaluation: every figure and table of
// §IV and §VI is a function returning a structured result that cmd/paperexp
// prints in the paper's layout and bench_test.go regenerates under `go
// test -bench`. See DESIGN.md §5 for the experiment index.
package exp

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/serve"
	"repro/internal/pred"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Params sets the simulation lengths shared by all experiments.
type Params struct {
	// Warmup is the number of accesses run before measurement.
	Warmup uint64
	// Measure is the number of measured accesses.
	Measure uint64
	// Seed feeds the workload generators and frame allocator.
	Seed uint64
	// SampleEvery is the residency-sampling cadence for the
	// characterization experiments.
	SampleEvery uint64
}

// DefaultParams balances fidelity and runtime: the full paper evaluation
// runs in minutes on a laptop-class machine.
func DefaultParams() Params {
	return Params{Warmup: 300_000, Measure: 1_000_000, Seed: 1, SampleEvery: 20_000}
}

// QuickParams is a faster configuration for tests and demos: long enough
// for the predictors' saturating counters to train, short enough that the
// full grid runs in a few minutes.
func QuickParams() Params {
	return Params{Warmup: 150_000, Measure: 400_000, Seed: 1, SampleEvery: 10_000}
}

// Setup names a machine + predictor combination.
type Setup struct {
	// Name identifies the setup in reports ("dpPred", "SHiP-TLB", ...).
	Name string
	// Config builds the machine configuration (nil means Table I).
	Config func() sim.Config
	// TLB and LLC construct the predictors once the system exists
	// (predictors like AIP need the built structures); nil means none.
	TLB func(s *sim.System) (pred.TLBPredictor, error)
	LLC func(s *sim.System) (pred.LLCPredictor, error)
	// Prefetch constructs an optional TLB prefetcher (extension
	// experiments).
	Prefetch func(s *sim.System) (pred.TLBPrefetcher, error)
	// Oracle runs the two-pass record/replay protocol of §VI-A.
	Oracle bool
	// Instrument enables the requested instrumentation before
	// measurement.
	Instrument Instrumentation
	// WarmupKey, when non-empty, asserts that every setup carrying the
	// same key builds an identical machine and predictors and differs only
	// in Instrument. The runner then warms that machine once per workload
	// and hands each such setup its own warm-state fork (sim.System.Fork),
	// instead of re-simulating the shared warmup prefix. Instrumentation
	// is enabled only after warmup, so the shared warm state is
	// bit-identical for every consumer.
	WarmupKey string
}

// Instrumentation selects measurement machinery.
type Instrumentation struct {
	// Accuracy enables the §VI-C mirror-structure grading.
	Accuracy bool
	// Characterize enables the §IV samplers and Table III correlation.
	Characterize bool
}

// Runner executes setups against workloads, memoizing results so that
// experiments sharing a configuration (e.g. the baseline) simulate once.
//
// The runner is safe for concurrent use: uncached simulations are sharded
// across a bounded worker pool (SetJobs; default runtime.GOMAXPROCS), the
// memo is single-flight per (workload, setup) key so a shared baseline
// still simulates exactly once no matter how many experiments race for it,
// and every run observes through its own obs.Observer.ForkRun scope so
// traces, interval series and metrics from parallel runs never interleave.
// Every simulation is seeded, so results are byte-identical whatever the
// job count (see TestParallelMatchesSequential).
type Runner struct {
	params Params
	jobs   int
	sem    chan struct{} // worker-pool slots, capacity jobs

	// traceDir, when set (SetTraceDir), switches the trace plane from
	// in-memory materialized buffers to compressed DPBF v2 files in this
	// directory: each workload's stream is recorded once (single-flight,
	// temp+rename) and every worker replays it through its own streaming
	// chunk cursor, so memory stays bounded by chunks-in-flight instead of
	// the full warmup+measure trace.
	traceDir string

	// ctx is the base context Run and RunGrid execute under (SetContext);
	// nil means context.Background(). The explicit-context entry points
	// RunContext/RunGridContext take precedence over it.
	ctx context.Context

	// FailFast makes RunGrid cancel the remaining cells as soon as one
	// cell fails with a real (non-cancellation) error. The default keeps
	// going and aggregates every cell's error, which is what the paper
	// grids want: one broken setup should not hide the other columns.
	FailFast bool

	mu   sync.Mutex
	memo map[string]*memoEntry

	// bufMu guards bufMemo: one materialized trace buffer per workload,
	// generated once (single-flight) and shared read-only by every setup
	// and worker.
	bufMu   sync.Mutex
	bufMemo map[string]*bufEntry

	// warmMu guards warmMemo: one warmed master system per (workload,
	// WarmupKey), forked per consuming setup and released after
	// warmForkBudget forks.
	warmMu   sync.Mutex
	warmMemo map[string]*warmEntry

	// fpMu guards fpMemo: one content fingerprint per workload name,
	// computed lazily the first time a cell is keyed (CellKey hashes the
	// stream prefix, so caching it keeps keying O(1) per cell).
	fpMu   sync.Mutex
	fpMemo map[string]string

	// Memo, when set, layers a persistent result store under the
	// in-process memo: leaders consult it before simulating and publish
	// successful results into it, so a re-run with the same memo computes
	// only the delta. Lookups key by CellKey — content-addressed, so a
	// memo written under different parameters or seeds never matches.
	// Corrupt or unreadable entries read as misses and are recomputed.
	// The memo is best-effort: a failing Put never fails the cell.
	Memo CellMemo
	// Executor, when set, offloads cells to an external scheduler
	// (expserve's coordinator) instead of simulating locally. Cells the
	// executor declines — setups outside the standard catalog — fall back
	// to the local path, so grids with ad-hoc setups still complete.
	Executor CellExecutor

	// ProgressStart, when set, is called as each uncached simulation
	// begins; memoized replays report nothing. With jobs > 1 the progress
	// callbacks run concurrently from pool workers.
	ProgressStart func(workload, setup string)
	// ProgressDone, when set, is called as each uncached simulation
	// finishes — on success and on failure alike — with its wall-clock
	// duration and its error (nil on success). Progress displays use the
	// error to mark failed cells instead of leaving them dangling.
	ProgressDone func(workload, setup string, elapsed time.Duration, err error)
	// Observer, when set, observes every simulated system: each run gets
	// an isolated ForkRun scope labeled "workload/setup", joined back into
	// this bundle when the run finishes.
	Observer *obs.Observer
	// Status, when set, receives cell lifecycle for live monitoring:
	// RunGrid queues the whole cross product up front, each memo leader
	// reports start/done (failures included), and memoized replays count
	// as memo hits. Board updates happen once per cell, never on the
	// access path.
	Status *serve.Board
}

// memoEntry is one single-flight memo slot: the first caller for a key
// becomes the leader and simulates; everyone else waits on done.
type memoEntry struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// bufEntry is one single-flight slot of the trace memo: exactly one of buf
// (in-memory materialized buffer) or ct (disk-backed DPBF v2 trace, the
// SetTraceDir mode) is set on success.
type bufEntry struct {
	done chan struct{}
	buf  *trace.Buffer
	ct   *trace.ChunkedTrace
	err  error
}

// warmEntry is one single-flight slot of the warm-state memo: the leader
// builds and warms the master system; consumers fork it.
type warmEntry struct {
	done chan struct{}
	err  error

	mu    sync.Mutex
	sys   *sim.System   // warmed master; nil once the fork budget is spent
	buf   *trace.Buffer // shared trace, with pos = the post-warmup cursor
	pos   uint64
	forks int
}

// warmForkBudget is how many forks a warm master serves before the runner
// releases it: the grids pair each shareable setup with exactly one
// instrumented twin (e.g. dpPred and dpPred+acc), so holding the master
// beyond two forks would only retain memory.
const warmForkBudget = 2

// NewRunner creates a runner with the given parameters and a worker pool
// sized to runtime.GOMAXPROCS.
func NewRunner(p Params) *Runner {
	r := &Runner{
		params:   p,
		memo:     make(map[string]*memoEntry),
		bufMemo:  make(map[string]*bufEntry),
		warmMemo: make(map[string]*warmEntry),
	}
	r.SetJobs(runtime.GOMAXPROCS(0))
	return r
}

// SetJobs bounds the number of simulations in flight (1 = sequential).
// Values below 1 are clamped to 1. Call before submitting work; resizing
// does not affect simulations already holding a pool slot.
func (r *Runner) SetJobs(n int) {
	if n < 1 {
		n = 1
	}
	r.jobs = n
	r.sem = make(chan struct{}, n)
}

// Jobs returns the worker-pool bound.
func (r *Runner) Jobs() int { return r.jobs }

// SetContext sets the base context Run and RunGrid execute under, so the
// experiment functions (which call Run through the unchanged two-argument
// signature) inherit cancellation without any signature change. nil
// restores context.Background().
func (r *Runner) SetContext(ctx context.Context) { r.ctx = ctx }

// SetTraceDir switches the runner to streamed traces: workloads are
// recorded once as compressed DPBF v2 files under dir (reusing a file from
// a previous run when its name matches the workload, seed and length) and
// replayed from disk through per-worker chunk cursors. Results are
// byte-identical to the default in-memory mode at any job count — both
// paths feed the batched columnar loop (sim.System.RunBufferContext) —
// but the warm-state fork optimization is disabled, since forking resumes
// mid-buffer. The directory must exist; trace files opened from it stay
// open for the runner's lifetime. Call before submitting work.
func (r *Runner) SetTraceDir(dir string) { r.traceDir = dir }

// baseCtx returns the runner's base context.
func (r *Runner) baseCtx() context.Context {
	if r.ctx != nil {
		return r.ctx
	}
	return context.Background()
}

// isCtxErr reports whether err is (or wraps) a context cancellation or
// deadline error. Such errors describe the caller's abort, not the cell,
// so the runner neither memoizes them nor aggregates them as failures.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Params returns the runner's parameters.
func (r *Runner) Params() Params { return r.params }

// Run simulates one workload under one setup (memoized, single-flight).
// Concurrent callers asking for the same key block until the leader's
// simulation finishes and then share its result; errors are memoized too,
// except cancellation errors, whose memo entries are evicted so a later
// Run on the same runner re-simulates instead of replaying the abort.
func (r *Runner) Run(w trace.Workload, setup Setup) (sim.Result, error) {
	return r.RunContext(r.baseCtx(), w, setup)
}

// RunContext is Run under an explicit context. Cancellation unblocks both
// leaders (between simulation strides) and waiters (immediately); a waiter
// canceled while the leader keeps running does not disturb the memo.
func (r *Runner) RunContext(ctx context.Context, w trace.Workload, setup Setup) (sim.Result, error) {
	key := w.Name + "/" + setup.Name
	r.mu.Lock()
	if e, ok := r.memo[key]; ok {
		r.mu.Unlock()
		if r.Status != nil {
			r.Status.MemoHit(w.Name, setup.Name)
		}
		select {
		case <-e.done:
			return e.res, e.err
		case <-ctx.Done():
			return sim.Result{}, fmt.Errorf("exp: %s under %s: %w", w.Name, setup.Name, ctx.Err())
		}
	}
	e := &memoEntry{done: make(chan struct{})}
	r.memo[key] = e
	r.mu.Unlock()

	res, err := r.lead(ctx, w, setup)
	e.res, e.err = res, err
	if isCtxErr(err) {
		// Evict before waking waiters so no future caller latches onto a
		// cancellation result; waiters already parked on e.done still see
		// the error, which is correct — their grid was canceled too.
		r.mu.Lock()
		delete(r.memo, key)
		r.mu.Unlock()
	}
	close(e.done)
	return res, err
}

// lead executes one uncached cell as the memo leader. With a persistent
// memo or an external executor configured it first tries those — a memo
// hit returns without touching the worker pool, a handled executor cell
// runs remotely (progress is still reported so -v and the status board see
// it) — and otherwise it takes the local path: acquire a pool slot
// (abandoning the wait if ctx is canceled first), report progress, run the
// cell with panic containment, report completion, and publish the result
// into the persistent memo.
func (r *Runner) lead(ctx context.Context, w trace.Workload, setup Setup) (sim.Result, error) {
	var key string
	if r.Memo != nil || r.Executor != nil {
		// A keying failure (the workload's generator errors while being
		// fingerprinted) is not fatal here: the local path below replays
		// the same generator and reports the error as the cell's outcome.
		key, _ = r.cellKey(w, setup)
	}
	if key != "" && r.Memo != nil {
		if res, ok, err := r.Memo.Get(key); err == nil && ok {
			if r.Status != nil {
				r.Status.MemoHit(w.Name, setup.Name)
			}
			return res, nil
		}
	}
	if key != "" && r.Executor != nil {
		if res, handled, err := r.execRemote(ctx, key, w, setup); handled {
			return res, err
		}
	}

	select {
	case r.sem <- struct{}{}: // acquire a pool slot
	case <-ctx.Done():
		return sim.Result{}, fmt.Errorf("exp: %s under %s: %w", w.Name, setup.Name, ctx.Err())
	}
	if r.ProgressStart != nil {
		r.ProgressStart(w.Name, setup.Name)
	}
	if r.Status != nil {
		r.Status.CellStart(w.Name, setup.Name)
	}
	start := time.Now()
	res, err := r.runCell(ctx, w, setup)
	if err != nil {
		err = fmt.Errorf("exp: %s under %s: %w", w.Name, setup.Name, err)
	}
	if r.ProgressDone != nil {
		r.ProgressDone(w.Name, setup.Name, time.Since(start), err)
	}
	if r.Status != nil {
		r.Status.CellDone(w.Name, setup.Name, time.Since(start), err)
	}
	<-r.sem // release the slot before waking waiters
	if err == nil && key != "" && r.Memo != nil {
		// Best-effort: the result is correct whether or not it persists,
		// and a full disk must not fail a finished simulation.
		_ = r.Memo.Put(key, CellMeta{Workload: w.Name, Setup: setup.Name, Params: r.params}, res)
	}
	return res, err
}

// execRemote runs one cell through the external executor, bracketed by the
// same progress and status reporting as a local run so live displays see
// remote cells. handled=false (an unresolvable setup) reports nothing and
// sends the caller to the local path.
func (r *Runner) execRemote(ctx context.Context, key string, w trace.Workload, setup Setup) (sim.Result, bool, error) {
	if r.ProgressStart != nil {
		r.ProgressStart(w.Name, setup.Name)
	}
	if r.Status != nil {
		r.Status.CellStart(w.Name, setup.Name)
	}
	start := time.Now()
	res, handled, err := r.Executor(ctx, key, w, setup)
	if !handled {
		// Undo nothing: the local path re-reports start, which the board
		// treats as a restart of the same cell.
		return sim.Result{}, false, nil
	}
	if err != nil {
		err = fmt.Errorf("exp: %s under %s: %w", w.Name, setup.Name, err)
	}
	if r.ProgressDone != nil {
		r.ProgressDone(w.Name, setup.Name, time.Since(start), err)
	}
	if r.Status != nil {
		r.Status.CellDone(w.Name, setup.Name, time.Since(start), err)
	}
	return res, true, err
}

// runCell wraps runUncached with panic containment: a panicking Setup
// constructor or predictor fails its own cell with a stack-carrying error
// instead of tearing down the whole grid's worker pool.
func (r *Runner) runCell(ctx context.Context, w trace.Workload, setup Setup) (res sim.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v\n%s", p, debug.Stack())
		}
	}()
	return r.runUncached(ctx, w, setup)
}

// RunGrid simulates the full workload × setup cross product, sharding the
// uncached runs across the worker pool. Unlike a first-error-wins scheme,
// every failing cell's error is collected and returned joined (sorted for
// determinism), so one broken setup cannot hide another; with FailFast set
// the first real failure cancels the cells still queued. All results land
// in the memo, so callers aggregate afterwards by replaying Run in
// whatever fixed order the report needs — aggregation order is completely
// decoupled from completion order.
func (r *Runner) RunGrid(workloads []trace.Workload, setups []Setup) error {
	return r.RunGridContext(r.baseCtx(), workloads, setups)
}

// RunGridContext is RunGrid under an explicit context. Canceling ctx stops
// the grid promptly: running cells stop at their next stride check, queued
// cells never start, and the returned error wraps ctx's error with the
// number of unfinished cells.
func (r *Runner) RunGridContext(ctx context.Context, workloads []trace.Workload, setups []Setup) error {
	gctx := ctx
	var cancel context.CancelFunc
	if r.FailFast {
		gctx, cancel = context.WithCancel(ctx)
		defer cancel()
	}
	if r.Status != nil {
		// Announce the full cross product before launching anything, so
		// /status shows pending cells instead of a grid that grows as
		// leaders start.
		for _, w := range workloads {
			for _, su := range setups {
				r.Status.CellQueued(w.Name, su.Name)
			}
		}
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	canceled := 0
	for _, w := range workloads {
		for _, su := range setups {
			wg.Add(1)
			go func(w trace.Workload, su Setup) {
				defer wg.Done()
				_, err := r.RunContext(gctx, w, su)
				if err == nil {
					return
				}
				mu.Lock()
				if isCtxErr(err) {
					canceled++
				} else {
					errs = append(errs, err)
					if cancel != nil {
						cancel()
					}
				}
				mu.Unlock()
			}(w, su)
		}
	}
	wg.Wait()
	if len(errs) > 0 {
		// Completion order is nondeterministic; sort so the aggregate
		// error reads identically run to run.
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		if canceled > 0 {
			errs = append(errs, fmt.Errorf("exp: fail-fast canceled %d queued cells", canceled))
		}
		return errors.Join(errs...)
	}
	if canceled > 0 {
		cause := ctx.Err()
		if cause == nil {
			cause = context.Canceled
		}
		return fmt.Errorf("exp: grid canceled (%d cells unfinished): %w", canceled, cause)
	}
	return nil
}

// generator returns a fresh start-positioned cursor over the workload's
// trace. The trace itself is built once per workload (single-flight,
// covering warmup+measure) and shared read-only afterwards; callers each
// get an independent cursor. In the default mode that is a BufferReader
// over an in-memory materialized buffer; with SetTraceDir it is a
// StreamReader over a compressed DPBF v2 file on disk. Either way the
// cursor implements trace.ChunkReader, so every run takes the batched
// columnar simulation path.
func (r *Runner) generator(ctx context.Context, w trace.Workload) (trace.Generator, error) {
	r.bufMu.Lock()
	e, ok := r.bufMemo[w.Name]
	if !ok {
		e = &bufEntry{done: make(chan struct{})}
		r.bufMemo[w.Name] = e
		r.bufMu.Unlock()
		func() {
			defer func() {
				if p := recover(); p != nil {
					e.err = fmt.Errorf("exp: materializing %s: %v\n%s", w.Name, p, debug.Stack())
				}
				if isCtxErr(e.err) {
					// A canceled materialization must not poison the
					// buffer memo; evict so the next grid rebuilds it.
					r.bufMu.Lock()
					delete(r.bufMemo, w.Name)
					r.bufMu.Unlock()
				}
				close(e.done)
			}()
			if r.traceDir != "" {
				e.ct, e.err = r.streamWorkload(ctx, w)
				return
			}
			e.buf, e.err = trace.MaterializeContext(ctx, w.New(r.params.Seed), r.params.Warmup+r.params.Measure)
		}()
	} else {
		r.bufMu.Unlock()
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if e.err != nil {
		return nil, e.err
	}
	if e.ct != nil {
		return e.ct.NewReader(), nil
	}
	return e.buf.Reader(), nil
}

// streamWorkload records the workload's warmup+measure stream as a
// compressed DPBF v2 file under traceDir (or reuses an existing file whose
// name encodes the same workload, seed and length) and opens it for
// chunk-streamed random access. The write goes to a temp file renamed into
// place, so a crashed or canceled recording never leaves a truncated file
// that a later run would trust; the opened file handle stays live for the
// runner's lifetime, shared by every StreamReader.
func (r *Runner) streamWorkload(ctx context.Context, w trace.Workload) (*trace.ChunkedTrace, error) {
	n := r.params.Warmup + r.params.Measure
	path := filepath.Join(r.traceDir, fmt.Sprintf("%s-seed%d-n%d.dpbf", w.Name, r.params.Seed, n))
	f, err := os.Open(path)
	if err != nil {
		tmp, terr := os.CreateTemp(r.traceDir, w.Name+".*.tmp")
		if terr != nil {
			return nil, fmt.Errorf("exp: recording %s: %w", w.Name, terr)
		}
		werr := trace.RecordV2Context(ctx, tmp, w.New(r.params.Seed), n)
		if cerr := tmp.Close(); werr == nil {
			werr = cerr
		}
		if werr == nil {
			werr = os.Rename(tmp.Name(), path)
		}
		if werr != nil {
			os.Remove(tmp.Name())
			return nil, fmt.Errorf("exp: recording %s: %w", w.Name, werr)
		}
		if f, err = os.Open(path); err != nil {
			return nil, fmt.Errorf("exp: recording %s: %w", w.Name, err)
		}
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("exp: opening cached trace %s: %w", path, err)
	}
	ct, err := trace.OpenChunked(f, info.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("exp: opening cached trace %s: %w", path, err)
	}
	if ct.Len() != n || ct.Name() != w.Name {
		f.Close()
		return nil, fmt.Errorf("exp: cached trace %s holds %d accesses of %q, want %d of %q; delete it to re-record",
			path, ct.Len(), ct.Name(), n, w.Name)
	}
	return ct, nil
}

// runSystem feeds n accesses from g into s, taking the batched columnar
// path (sim.System.RunBufferContext) whenever the generator can serve
// chunks — materialized buffers and streamed DPBF v2 traces alike — and
// the per-access path otherwise. The two paths are bit-identical by
// contract (sim's TestRunBufferMatchesStep), so which one a cell takes is
// purely a throughput matter.
func runSystem(ctx context.Context, s *sim.System, g trace.Generator, n uint64) error {
	if cr, ok := g.(trace.ChunkReader); ok {
		return s.RunBufferContext(ctx, cr, n)
	}
	return s.RunContext(ctx, g, n)
}

// BuildSystem constructs the machine and its predictors/prefetcher for a
// non-oracle setup, without running anything. cmd/deadsim's checkpoint path
// uses it to rebuild the exact machine a checkpoint was taken from.
func (r *Runner) BuildSystem(setup Setup) (*sim.System, error) {
	if setup.Oracle {
		return nil, fmt.Errorf("exp: the oracle's two-pass protocol has no standalone system")
	}
	cfgFn := setup.Config
	if cfgFn == nil {
		cfgFn = sim.DefaultConfig
	}
	cfg := cfgFn()
	cfg.Seed = r.params.Seed
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	if setup.TLB != nil {
		p, err := setup.TLB(s)
		if err != nil {
			return nil, err
		}
		s.SetTLBPredictor(p)
	}
	if setup.LLC != nil {
		p, err := setup.LLC(s)
		if err != nil {
			return nil, err
		}
		s.SetLLCPredictor(p)
	}
	if setup.Prefetch != nil {
		p, err := setup.Prefetch(s)
		if err != nil {
			return nil, err
		}
		s.SetTLBPrefetcher(p)
	}
	return s, nil
}

// measure runs the post-warmup half of a cell: enable the setup's
// instrumentation, mark the measurement region, feed the measured accesses
// and collect the result.
func (r *Runner) measure(ctx context.Context, s *sim.System, g trace.Generator, setup Setup) (sim.Result, error) {
	if setup.Instrument.Accuracy {
		if err := s.EnableAccuracyTracking(); err != nil {
			return sim.Result{}, err
		}
	}
	if setup.Instrument.Characterize {
		s.EnableCharacterization(r.params.SampleEvery)
	}
	s.StartMeasurement()
	if err := runSystem(ctx, s, g, r.params.Measure); err != nil {
		return sim.Result{}, err
	}
	s.Finish()
	return s.Result(), nil
}

// warmShareable reports whether a setup can take the warm-state fork path:
// it must declare a WarmupKey, nothing may need to observe the warmup
// prefix itself (observers attach before warmup; the oracle's record pass
// and prefetchers manage their own state), and the trace must live in
// memory — the warm memo resumes consumers from a shared Buffer position,
// which a disk-streamed trace has no equivalent of.
func (r *Runner) warmShareable(setup Setup) bool {
	return setup.WarmupKey != "" && r.Observer == nil && r.traceDir == "" &&
		!setup.Oracle && setup.Prefetch == nil
}

// runShared executes a cell via the warm-state memo: the first setup for
// (workload, WarmupKey) builds and warms the master, every consumer measures
// on its own fork. ok=false means the path was unavailable (fork refused or
// budget spent) and the caller should fall back to the cold path; errors
// from building or warming the shared machine are real and propagate.
func (r *Runner) runShared(ctx context.Context, w trace.Workload, setup Setup) (res sim.Result, ok bool, err error) {
	key := w.Name + "\x00" + setup.WarmupKey
	r.warmMu.Lock()
	e, cached := r.warmMemo[key]
	if !cached {
		e = &warmEntry{done: make(chan struct{})}
		r.warmMemo[key] = e
		r.warmMu.Unlock()
		func() {
			defer func() {
				if isCtxErr(e.err) {
					// Same eviction rule as the other memos: a canceled
					// warmup must not poison future grids.
					r.warmMu.Lock()
					delete(r.warmMemo, key)
					r.warmMu.Unlock()
				}
				close(e.done)
			}()
			sys, err := r.BuildSystem(setup)
			if err != nil {
				e.err = err
				return
			}
			rd, err := r.generator(ctx, w)
			if err != nil {
				e.err = err
				return
			}
			if err := runSystem(ctx, sys, rd, r.params.Warmup); err != nil {
				e.err = err
				return
			}
			// warmShareable guarantees the in-memory trace mode, so the
			// cursor is a BufferReader whose position the forks resume from.
			br := rd.(*trace.BufferReader)
			e.sys, e.buf, e.pos = sys, br.Buffer(), br.Pos()
		}()
	} else {
		r.warmMu.Unlock()
		select {
		case <-e.done:
		case <-ctx.Done():
			return sim.Result{}, true, ctx.Err()
		}
	}
	if e.err != nil {
		return sim.Result{}, true, e.err
	}

	e.mu.Lock()
	master := e.sys
	if master == nil {
		// Fork budget already spent; an unexpected extra consumer warms
		// its own machine on the cold path.
		e.mu.Unlock()
		return sim.Result{}, false, nil
	}
	fork, ferr := master.Fork()
	if ferr == nil {
		e.forks++
		if e.forks >= warmForkBudget {
			e.sys = nil // release the master for GC; the entry marks exhaustion
		}
	}
	buf, pos := e.buf, e.pos
	e.mu.Unlock()
	if ferr != nil {
		return sim.Result{}, false, nil // unforkable machine: cold path
	}

	res, err = r.measure(ctx, fork, buf.ReaderAt(pos), setup)
	return res, true, err
}

func (r *Runner) runUncached(ctx context.Context, w trace.Workload, setup Setup) (sim.Result, error) {
	if r.warmShareable(setup) {
		if res, ok, err := r.runShared(ctx, w, setup); ok {
			return res, err
		}
	}

	cfgFn := setup.Config
	if cfgFn == nil {
		cfgFn = sim.DefaultConfig
	}

	var record *pred.DOARecord
	if setup.Oracle {
		// Recording pass: baseline machine, ground-truth capture.
		rec, err := r.recordPass(ctx, w, cfgFn)
		if err != nil {
			return sim.Result{}, err
		}
		record = rec
	}

	cfg := cfgFn()
	cfg.Seed = r.params.Seed
	s, err := sim.New(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	if setup.Oracle {
		s.SetTLBPredictor(pred.NewOracleTLB(record))
	} else if setup.TLB != nil {
		p, err := setup.TLB(s)
		if err != nil {
			return sim.Result{}, err
		}
		s.SetTLBPredictor(p)
	}
	if setup.LLC != nil {
		p, err := setup.LLC(s)
		if err != nil {
			return sim.Result{}, err
		}
		s.SetLLCPredictor(p)
	}
	if setup.Prefetch != nil {
		p, err := setup.Prefetch(s)
		if err != nil {
			return sim.Result{}, err
		}
		s.SetTLBPrefetcher(p)
	}
	if r.Observer != nil {
		// Attach before warmup: learning curves need the predictors'
		// cold-start behaviour, so interval samples and trace events
		// cover the whole run (Result stays measurement-scoped). Each run
		// observes through its own forked scope so parallel runs cannot
		// interleave; join publishes into the shared bundle even when the
		// run errors, flushing whatever was traced.
		child, join := r.Observer.ForkRun(w.Name, setup.Name)
		defer join()
		s.AttachObserver(child)
	}

	g, err := r.generator(ctx, w)
	if err != nil {
		return sim.Result{}, err
	}
	if err := runSystem(ctx, s, g, r.params.Warmup); err != nil {
		return sim.Result{}, err
	}
	return r.measure(ctx, s, g, setup)
}

// recordPass runs the baseline machine over the same trace to capture
// ground-truth DOA outcomes for the oracle.
func (r *Runner) recordPass(ctx context.Context, w trace.Workload, cfgFn func() sim.Config) (*pred.DOARecord, error) {
	cfg := cfgFn()
	cfg.Seed = r.params.Seed
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	rec := pred.NewDOARecord()
	s.SetTLBPredictor(pred.NewRecorderTLB(rec))
	g, err := r.generator(ctx, w)
	if err != nil {
		return nil, err
	}
	if err := runSystem(ctx, s, g, r.params.Warmup+r.params.Measure); err != nil {
		return nil, err
	}
	return rec, nil
}

// --- Standard setups -----------------------------------------------------

// Baseline is the unmodified Table I machine. It shares warm state with the
// characterization cell (same machine, extra sampling after warmup).
func Baseline() Setup { return Setup{Name: "baseline", WarmupKey: "baseline"} }

// DPPredSetup runs dpPred on the LLT. Shares warm state with its accuracy
// variant.
func DPPredSetup() Setup { return mustSetup("dpPred") }

// DPPredCBPredSetup runs the paper's full proposal: dpPred + cbPred
// (resolving cbPred through the registry auto-pairs its dpPred driver).
// Shares warm state with its accuracy variant.
func DPPredCBPredSetup() Setup { return mustSetup("cbPred") }

// AIPTLBSetup applies AIP to the LLT (§VI-A).
func AIPTLBSetup() Setup { return mustSetup("AIP-TLB") }

// SHiPTLBSetup applies SHiP to the LLT (§VI-A). Shares warm state with its
// accuracy variant.
func SHiPTLBSetup() Setup { return mustSetup("SHiP-TLB") }

// AIPLLCSetup applies AIP to the LLC (§VI-B).
func AIPLLCSetup() Setup { return mustSetup("AIP-LLC") }

// SHiPLLCSetup applies SHiP to the LLC (§VI-B). Shares warm state with its
// accuracy variant.
func SHiPLLCSetup() Setup { return mustSetup("SHiP-LLC") }

// bothSetup fuses a TLB-side and an LLC-side registry setup into one
// combined machine.
func bothSetup(name, tlbName, llcName string) Setup {
	t, l := mustSetup(tlbName), mustSetup(llcName)
	return Setup{Name: name, TLB: t.TLB, LLC: l.LLC}
}

// AIPBothSetup applies AIP to both the LLT and the LLC.
func AIPBothSetup() Setup { return bothSetup("AIP-TLB+LLC", "AIP-TLB", "AIP-LLC") }

// SHiPBothSetup applies SHiP to both the LLT and the LLC.
func SHiPBothSetup() Setup { return bothSetup("SHiP-TLB+LLC", "SHiP-TLB", "SHiP-LLC") }

// IsoStorageSetup grows the LLT by roughly dpPred's storage overhead
// (≈11%, §VI-A): one extra way, 1024 → 1152 entries.
func IsoStorageSetup() Setup {
	return Setup{
		Name: "iso-storage",
		Config: func() sim.Config {
			cfg := sim.DefaultConfig()
			cfg.LLT.Entries = 1152
			cfg.LLT.Ways = 9
			return cfg
		},
	}
}

// OracleSetup is the two-pass approximate oracle of §VI-A.
func OracleSetup() Setup {
	return Setup{Name: "oracle", Oracle: true}
}

// --- Predictor constructors ----------------------------------------------

// newDPPred and newCBPred resolve the paper's predictors through the
// registry; sensitivity and extension experiments reuse them on modified
// machine configurations (experiments that mutate the predictor configs
// themselves construct through internal/core directly).
func newDPPred(s *sim.System) (pred.TLBPredictor, error) {
	reg, err := pred.Lookup("dpPred")
	if err != nil {
		return nil, err
	}
	return reg.NewTLB(s.LLT().Inner())
}

func newCBPred(s *sim.System) (pred.LLCPredictor, error) {
	reg, err := pred.Lookup("cbPred")
	if err != nil {
		return nil, err
	}
	return reg.NewLLC(s.LLC())
}
