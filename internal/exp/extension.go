package exp

import (
	"repro/internal/policy"
	"repro/internal/pred"
	"repro/internal/sim"
)

// newDIPPolicy returns a fresh DIP instance; DIP carries shared per-
// structure dueling state, so each configured cache needs its own value.
func newDIPPolicy() policy.Policy { return policy.NewDIP() }

// newDistancePrefetcher constructs the classic distance-based TLB
// prefetcher the extension experiments compare against.
func newDistancePrefetcher(s *sim.System) (pred.TLBPrefetcher, error) {
	return pred.NewDistancePrefetcher(pred.DefaultDistancePrefetcherConfig())
}

// distancePrefetchSetup is the prefetcher alone on the Table I machine.
func distancePrefetchSetup() Setup {
	return Setup{Name: "distance-prefetch", Prefetch: newDistancePrefetcher}
}

// dpPredPrefetchSetup combines dpPred bypassing with distance prefetching.
func dpPredPrefetchSetup() Setup {
	return Setup{Name: "dpPred+prefetch", TLB: newDPPred, Prefetch: newDistancePrefetcher}
}

// dipConfig is the Table I machine with a DIP-managed LLT.
func dipConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.LLT.Policy = newDIPPolicy()
	return cfg
}

// dipLLTSetup and dipDPPredSetup are the Extension B configurations.
func dipLLTSetup() Setup    { return Setup{Name: "DIP-LLT", Config: dipConfig} }
func dipDPPredSetup() Setup { return Setup{Name: "DIP+dpPred", Config: dipConfig, TLB: newDPPred} }

// ExtensionPrefetch compares the bypass approach (dpPred) with classic
// distance-based TLB prefetching (Kandiraju & Sivasubramaniam, discussed
// in §VII) and with their combination. The paper argues bypassing is
// complementary to prefetching; this extension experiment quantifies that
// on the same workloads: prefetching attacks *predictable* miss sequences
// (strides, repeating deltas) while bypassing protects resident reuse, so
// the combination should dominate either alone on stride-heavy workloads
// and fall back to dpPred's behaviour on irregular ones.
func ExtensionPrefetch(r *Runner) (Series, error) {
	s, err := r.ipcSeries("Extension A",
		"dpPred vs distance-based TLB prefetching (related work, §VII)",
		Baseline(),
		[]Setup{DPPredSetup(), distancePrefetchSetup(), dpPredPrefetchSetup()})
	if err != nil {
		return Series{}, err
	}
	s.Cols = []string{"dpPred", "distance-prefetch", "dpPred+prefetch"}
	return s, nil
}

// ExtensionDIP compares dpPred against the thrash-resistant Dynamic
// Insertion Policy (Qureshi et al., cited in §VII) applied to the LLT, and
// dpPred layered on top of a DIP-managed LLT. DIP resists streaming
// pollution without knowing which entries are dead; dpPred adds the
// dead-entry knowledge.
func ExtensionDIP(r *Runner) (Series, error) {
	s, err := r.ipcSeries("Extension B",
		"dpPred vs a DIP-managed LLT",
		Baseline(),
		[]Setup{DPPredSetup(), dipLLTSetup(), dipDPPredSetup()})
	if err != nil {
		return Series{}, err
	}
	s.Cols = []string{"dpPred", "DIP-LLT", "DIP+dpPred"}
	return s, nil
}
