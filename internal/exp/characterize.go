package exp

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// characterizationSetup is the baseline machine with samplers enabled; one
// run per workload feeds Figures 1–4 and Table III.
func characterizationSetup() Setup {
	s := Baseline()
	s.Name = "characterize"
	s.Instrument.Characterize = true
	return s
}

// characterize runs (memoized) the characterization pass for a workload.
func (r *Runner) characterize(w trace.Workload) (sim.Result, error) {
	return r.Run(w, characterizationSetup())
}

// warmCharacterize shards the per-workload characterization passes across
// the worker pool; the first figure pays, the rest replay from the memo.
func (r *Runner) warmCharacterize() error {
	return r.RunGrid(trace.Workloads(), []Setup{characterizationSetup()})
}

// Figure1 reports the fraction of LLT entries dead or DOA at any time
// (sampled residency view).
func Figure1(r *Runner) (Series, error) {
	if err := r.warmCharacterize(); err != nil {
		return Series{}, err
	}
	s := Series{
		ID:    "Figure 1",
		Title: "Fraction of LLT entries dead or DOA at any time",
		Unit:  "% of sampled LLT entries",
		Cols:  []string{"Dead", "DOA"},
	}
	for _, w := range trace.Workloads() {
		res, err := r.characterize(w)
		if err != nil {
			return Series{}, err
		}
		d := res.LLTDead
		s.Rows = append(s.Rows, SeriesRow{Name: w.Name, Values: []float64{
			100 * d.SampledDeadFrac(),
			100 * d.SampledDOAFrac(),
		}})
	}
	s.summarize("mean", mean)
	return s, nil
}

// Figure2 classifies LLT evictions into mostly-dead and DOA.
func Figure2(r *Runner) (Series, error) {
	if err := r.warmCharacterize(); err != nil {
		return Series{}, err
	}
	s := Series{
		ID:    "Figure 2",
		Title: "Classification of dead pages in LLT (at eviction)",
		Unit:  "% of LLT evictions",
		Cols:  []string{"MostlyDead", "DOA", "TotalDead"},
	}
	for _, w := range trace.Workloads() {
		res, err := r.characterize(w)
		if err != nil {
			return Series{}, err
		}
		d := res.LLTDead
		s.Rows = append(s.Rows, SeriesRow{Name: w.Name, Values: []float64{
			100 * d.MostlyDeadFrac(),
			100 * d.DOAFrac(),
			100 * d.DeadFrac(),
		}})
	}
	s.summarize("mean", mean)
	return s, nil
}

// Figure3 reports the fraction of LLC entries dead or DOA at any time.
func Figure3(r *Runner) (Series, error) {
	if err := r.warmCharacterize(); err != nil {
		return Series{}, err
	}
	s := Series{
		ID:    "Figure 3",
		Title: "Fraction of LLC entries dead or DOA at any time",
		Unit:  "% of sampled LLC blocks",
		Cols:  []string{"Dead", "DOA"},
	}
	for _, w := range trace.Workloads() {
		res, err := r.characterize(w)
		if err != nil {
			return Series{}, err
		}
		d := res.LLCDead
		s.Rows = append(s.Rows, SeriesRow{Name: w.Name, Values: []float64{
			100 * d.SampledDeadFrac(),
			100 * d.SampledDOAFrac(),
		}})
	}
	s.summarize("mean", mean)
	return s, nil
}

// Figure4 classifies LLC evictions into mostly-dead and DOA.
func Figure4(r *Runner) (Series, error) {
	if err := r.warmCharacterize(); err != nil {
		return Series{}, err
	}
	s := Series{
		ID:    "Figure 4",
		Title: "Classification of dead blocks in LLC (at eviction)",
		Unit:  "% of LLC evictions",
		Cols:  []string{"MostlyDead", "DOA", "TotalDead"},
	}
	for _, w := range trace.Workloads() {
		res, err := r.characterize(w)
		if err != nil {
			return Series{}, err
		}
		d := res.LLCDead
		s.Rows = append(s.Rows, SeriesRow{Name: w.Name, Values: []float64{
			100 * d.MostlyDeadFrac(),
			100 * d.DOAFrac(),
			100 * d.DeadFrac(),
		}})
	}
	s.summarize("mean", mean)
	return s, nil
}

// Table3 reports the percentage of LLC DOA blocks that map onto a DOA page
// in the LLT.
func Table3(r *Runner) (Series, error) {
	if err := r.warmCharacterize(); err != nil {
		return Series{}, err
	}
	s := Series{
		ID:    "Table III",
		Title: "Percentage of LLC DOA blocks that map on to a DOA page in LLT",
		Unit:  "% of LLC DOA blocks",
		Cols:  []string{"OnDOAPage"},
	}
	for _, w := range trace.Workloads() {
		res, err := r.characterize(w)
		if err != nil {
			return Series{}, err
		}
		s.Rows = append(s.Rows, SeriesRow{Name: w.Name,
			Values: []float64{res.Correlation.Percent()}})
	}
	s.summarize("mean", mean)
	return s, nil
}
