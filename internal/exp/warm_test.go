package exp

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// TestWarmSharedMatchesCold is the warm-state fork acceptance property: a
// grid run through the shared-warmup fast path must be bit-identical to the
// same grid with sharing disabled (every cell warming its own machine).
func TestWarmSharedMatchesCold(t *testing.T) {
	var ws []trace.Workload
	for _, name := range []string{"cc", "canneal"} {
		w, err := trace.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	// Every WarmupKey pair from the paper grid: plain + accuracy-graded
	// predictors, and baseline + characterization.
	shared := []Setup{
		Baseline(), characterizationSetup(),
		DPPredSetup(), withAccuracy(DPPredSetup()),
		DPPredCBPredSetup(), withAccuracy(DPPredCBPredSetup()),
		SHiPTLBSetup(), withAccuracy(SHiPTLBSetup()),
		SHiPLLCSetup(), withAccuracy(SHiPLLCSetup()),
	}
	cold := make([]Setup, len(shared))
	for i, su := range shared {
		su.WarmupKey = ""
		cold[i] = su
	}

	collect := func(setups []Setup) map[string]sim.Result {
		r := NewRunner(Params{Warmup: 15_000, Measure: 45_000, Seed: 7, SampleEvery: 5_000})
		r.SetJobs(4)
		if err := r.RunGrid(ws, setups); err != nil {
			t.Fatal(err)
		}
		out := make(map[string]sim.Result)
		for _, w := range ws {
			for _, su := range setups {
				res, err := r.Run(w, su)
				if err != nil {
					t.Fatal(err)
				}
				out[w.Name+"/"+su.Name] = res
			}
		}
		return out
	}

	want := collect(cold)
	got := collect(shared)
	for key, w := range want {
		if g := got[key]; g != w {
			t.Errorf("%s: warm-shared result diverged from cold:\n  shared=%+v\n  cold=%+v", key, g, w)
		}
	}
}

// TestWarmBudgetExhaustion: a third consumer of the same warmup key must
// fall back to the cold path (the master is released after the fork budget)
// and still produce the identical result.
func TestWarmBudgetExhaustion(t *testing.T) {
	w, err := trace.ByName("cc")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(Params{Warmup: 10_000, Measure: 30_000, Seed: 3, SampleEvery: 5_000})
	r.SetJobs(1)

	base := DPPredSetup()
	acc := withAccuracy(DPPredSetup())
	third := DPPredSetup()
	third.Name = "dpPred-third" // distinct memo key, same warmup key

	res := make(map[string]sim.Result)
	for _, su := range []Setup{base, acc, third} {
		got, err := r.Run(w, su)
		if err != nil {
			t.Fatal(err)
		}
		res[su.Name] = got
	}
	if res["dpPred-third"] != res["dpPred"] {
		t.Errorf("post-budget cold fallback diverged:\n  third=%+v\n  first=%+v",
			res["dpPred-third"], res["dpPred"])
	}
}
