package exp

import "repro/internal/trace"

// ipcSeries builds a normalized-IPC grid: each setup's IPC divided by the
// baseline setup's IPC on the same workload. The whole grid is simulated
// through the worker pool first; the aggregation loops below then replay
// from the memo in the paper's fixed row/column order.
func (r *Runner) ipcSeries(id, title string, baseline Setup, setups []Setup) (Series, error) {
	if err := r.RunGrid(trace.Workloads(), append([]Setup{baseline}, setups...)); err != nil {
		return Series{}, err
	}
	s := Series{
		ID:    id,
		Title: title,
		Unit:  "IPC normalized to " + baseline.Name,
		Cols:  make([]string, len(setups)),
	}
	for i, su := range setups {
		s.Cols[i] = su.Name
	}
	for _, w := range trace.Workloads() {
		base, err := r.Run(w, baseline)
		if err != nil {
			return Series{}, err
		}
		row := SeriesRow{Name: w.Name, Values: make([]float64, len(setups))}
		for i, su := range setups {
			res, err := r.Run(w, su)
			if err != nil {
				return Series{}, err
			}
			row.Values[i] = res.IPC / base.IPC
		}
		s.Rows = append(s.Rows, row)
	}
	s.summarize("geomean", geomean)
	return s, nil
}

// Figure9 compares TLB dead-page predictors: AIP-TLB, SHiP-TLB, dpPred and
// an iso-storage LLT, all normalized to the Table I baseline.
func Figure9(r *Runner) (Series, error) {
	return r.ipcSeries("Figure 9",
		"Normalized IPC for TLB dead page predictors",
		Baseline(),
		[]Setup{AIPTLBSetup(), SHiPTLBSetup(), DPPredSetup(), IsoStorageSetup()})
}

// Table4 reports LLT MPKI reductions for the Figure 9 predictors plus the
// approximate oracle.
func Table4(r *Runner) (Series, error) {
	s := Series{
		ID:    "Table IV",
		Title: "LLT MPKI reductions by dead page predictors",
		Unit:  "% LLT MPKI reduction vs baseline",
		Cols:  []string{"AIP-TLB", "SHiP-TLB", "dpPred", "Iso-TLB", "Oracle"},
	}
	setups := []Setup{AIPTLBSetup(), SHiPTLBSetup(), DPPredSetup(), IsoStorageSetup(), OracleSetup()}
	if err := r.RunGrid(trace.Workloads(), append([]Setup{Baseline()}, setups...)); err != nil {
		return Series{}, err
	}
	for _, w := range trace.Workloads() {
		base, err := r.Run(w, Baseline())
		if err != nil {
			return Series{}, err
		}
		row := SeriesRow{Name: w.Name, Values: make([]float64, len(setups))}
		for i, su := range setups {
			res, err := r.Run(w, su)
			if err != nil {
				return Series{}, err
			}
			row.Values[i] = pctReduction(base.LLTMPKI, res.LLTMPKI)
		}
		s.Rows = append(s.Rows, row)
	}
	s.summarize("mean", mean)
	return s, nil
}

// Figure10 compares LLC dead-block predictors and combined TLB+LLC
// configurations against the paper's dpPred+cbPred proposal.
func Figure10(r *Runner) (Series, error) {
	return r.ipcSeries("Figure 10",
		"Normalized IPC for LLC dead block predictors or LLC and TLB combined predictors",
		Baseline(),
		[]Setup{AIPLLCSetup(), SHiPLLCSetup(), AIPBothSetup(), SHiPBothSetup(), DPPredCBPredSetup()})
}

// Table5 reports LLC MPKI reductions for AIP-LLC, SHiP-LLC and cbPred
// (coupled with dpPred).
func Table5(r *Runner) (Series, error) {
	s := Series{
		ID:    "Table V",
		Title: "LLC MPKI reductions by dead block predictors",
		Unit:  "% LLC MPKI reduction vs baseline",
		Cols:  []string{"AIP-LLC", "SHiP-LLC", "cbPred"},
	}
	setups := []Setup{AIPLLCSetup(), SHiPLLCSetup(), DPPredCBPredSetup()}
	if err := r.RunGrid(trace.Workloads(), append([]Setup{Baseline()}, setups...)); err != nil {
		return Series{}, err
	}
	for _, w := range trace.Workloads() {
		base, err := r.Run(w, Baseline())
		if err != nil {
			return Series{}, err
		}
		row := SeriesRow{Name: w.Name, Values: make([]float64, len(setups))}
		for i, su := range setups {
			res, err := r.Run(w, su)
			if err != nil {
				return Series{}, err
			}
			row.Values[i] = pctReduction(base.LLCMPKI, res.LLCMPKI)
		}
		s.Rows = append(s.Rows, row)
	}
	s.summarize("mean", mean)
	return s, nil
}
