package exp

// Registry-driven setups: the experiment layer derives its setup lists
// from the predictor registry (internal/pred) instead of hardcoding one
// constructor per competitor, so a newly registered predictor appears in
// the extended Table IV, the CLIs and the differential harness without
// touching this package. The historical *Setup() constructors in runner.go
// are thin wrappers over SetupFor and keep their exact names and
// warm-state keys, which is what the golden snapshots pin.

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/pred"
	"repro/internal/sim"
	"repro/internal/trace"
)

// warmupKeys pins which setups share a warm-state fork (Setup.WarmupKey).
// The keys are part of the golden results' identity — a setup that gains
// or loses warm-state sharing changes nothing numerically, but the keys
// below predate the registry and are kept exactly as they were; registry
// newcomers warm independently until profiling says sharing pays.
var warmupKeys = map[string]string{
	"baseline":      "baseline",
	"dpPred":        "dpPred",
	"SHiP-TLB":      "SHiP-TLB",
	"SHiP-LLC":      "SHiP-LLC",
	"dpPred+cbPred": "dpPred+cbPred",
}

// SetupFor resolves a registered predictor name (case-insensitively) into
// a runnable Setup on the Table I machine. LLC predictors that need
// DOA-page coupling (cbPred) are automatically paired with dpPred on the
// TLB side, mirroring the paper's §V-B deployment; the setup is then named
// "dpPred+<name>". Unknown names error with the full registered set.
func SetupFor(name string) (Setup, error) {
	reg, err := pred.Lookup(name)
	if err != nil {
		return Setup{}, err
	}
	return setupFromReg(reg)
}

// SetupsFor resolves a list of names; any unknown name fails the whole
// list.
func SetupsFor(names []string) ([]Setup, error) {
	setups := make([]Setup, len(names))
	for i, n := range names {
		s, err := SetupFor(n)
		if err != nil {
			return nil, err
		}
		setups[i] = s
	}
	return setups, nil
}

// setupFromReg builds the Setup for one registration.
func setupFromReg(reg pred.Registration) (Setup, error) {
	s := Setup{Name: reg.Name}
	switch reg.Kind {
	case pred.KindTLB:
		s.TLB = func(sys *sim.System) (pred.TLBPredictor, error) {
			return reg.NewTLB(sys.LLT().Inner())
		}
	case pred.KindLLC:
		s.LLC = func(sys *sim.System) (pred.LLCPredictor, error) {
			return reg.NewLLC(sys.LLC())
		}
		if reg.Caps.NeedsDOACoupling {
			dp, err := pred.Lookup("dpPred")
			if err != nil {
				return Setup{}, fmt.Errorf("%s needs DOA-page coupling but its driver is unavailable: %w", reg.Name, err)
			}
			s.Name = "dpPred+" + reg.Name
			s.TLB = func(sys *sim.System) (pred.TLBPredictor, error) {
				return dp.NewTLB(sys.LLT().Inner())
			}
		}
	default:
		return Setup{}, fmt.Errorf("pred: %s: invalid kind %v", reg.Name, reg.Kind)
	}
	s.WarmupKey = warmupKeys[s.Name]
	return s, nil
}

// mustSetup backs the historical fixed-name constructors: these names are
// registered at init, so failure is a programming error.
func mustSetup(name string) Setup {
	s, err := SetupFor(name)
	if err != nil {
		panic(err)
	}
	return s
}

// storageProbeSize is the structure size a registration's budget is
// normalized against: the Table I LLT entry count for TLB predictors, the
// Table I LLC block count for LLC predictors.
func storageProbeSize(reg pred.Registration) int {
	cfg := sim.DefaultConfig()
	if reg.Kind == pred.KindLLC {
		return cfg.LLC.SizeKB * 1024 / arch.BlockSize
	}
	return cfg.LLT.Entries
}

// Table4Extended is the arena sweep: the Table IV metric (% LLT MPKI
// reduction vs baseline) across every requested registered predictor on
// identical materialized traces, storage-normalized by two footer rows —
// each column's budget in KB and its mean reduction per KB. A nil or empty
// names list sweeps every registered TLB predictor, sorted by name.
func Table4Extended(r *Runner, names []string) (Series, error) {
	if len(names) == 0 {
		names = pred.TLBNames()
	}
	regs := make([]pred.Registration, len(names))
	setups := make([]Setup, len(names))
	for i, n := range names {
		reg, err := pred.Lookup(n)
		if err != nil {
			return Series{}, err
		}
		su, err := setupFromReg(reg)
		if err != nil {
			return Series{}, err
		}
		regs[i], setups[i] = reg, su
	}
	s := Series{
		ID:    "Table IV+",
		Title: "LLT MPKI reductions across the predictor arena",
		Unit:  "% LLT MPKI reduction vs baseline",
		Cols:  make([]string, len(setups)),
	}
	for i, su := range setups {
		s.Cols[i] = su.Name
	}
	if err := r.RunGrid(trace.Workloads(), append([]Setup{Baseline()}, setups...)); err != nil {
		return Series{}, err
	}
	for _, w := range trace.Workloads() {
		base, err := r.Run(w, Baseline())
		if err != nil {
			return Series{}, err
		}
		row := SeriesRow{Name: w.Name, Values: make([]float64, len(setups))}
		for i, su := range setups {
			res, err := r.Run(w, su)
			if err != nil {
				return Series{}, err
			}
			row.Values[i] = pctReduction(base.LLTMPKI, res.LLTMPKI)
		}
		s.Rows = append(s.Rows, row)
	}
	s.summarize("mean", mean)

	// Storage normalization: competitors spend very different budgets, so
	// the raw means are not comparable head-to-head. The footers hold each
	// column's budget (KB) and its mean reduction per KB of state.
	storage := make([]float64, len(regs))
	perKB := make([]float64, len(regs))
	for i, reg := range regs {
		kb := float64(reg.StorageBits(storageProbeSize(reg))) / 8192
		storage[i] = kb
		perKB[i] = s.Summary[i] / kb
	}
	s.Footers = []SeriesRow{
		{Name: "storage (KB)", Values: storage},
		{Name: "mean %/KB", Values: perKB},
	}
	return s, nil
}
