package exp

import (
	"fmt"
	"math"
	"strings"
)

// Series is one experiment's result grid: one row per workload, one column
// per configuration, plus a per-column summary row.
type Series struct {
	// ID is the paper artifact ("Figure 9", "Table IV", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Unit labels the cell values.
	Unit string
	// Cols are the column headers.
	Cols []string
	// Rows hold one value per column for each workload.
	Rows []SeriesRow
	// Summary is the per-column aggregate; SummaryLabel names it.
	Summary      []float64
	SummaryLabel string
	// Footers are extra per-column annotation rows rendered after the
	// summary (the extended Table IV's storage normalization); nil for
	// the paper's own artifacts, whose layout is golden-pinned.
	Footers []SeriesRow
}

// SeriesRow is one workload's values.
type SeriesRow struct {
	Name   string
	Values []float64
}

// Format renders the series as an aligned text table.
func (s Series) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", s.ID, s.Title)
	if s.Unit != "" {
		fmt.Fprintf(&b, "(%s)\n", s.Unit)
	}

	nameW := len("workload")
	for _, r := range s.Rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	for _, r := range s.Footers {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	colW := make([]int, len(s.Cols))
	for i, c := range s.Cols {
		colW[i] = len(c)
		if colW[i] < 8 {
			colW[i] = 8
		}
	}

	fmt.Fprintf(&b, "%-*s", nameW, "workload")
	for i, c := range s.Cols {
		fmt.Fprintf(&b, "  %*s", colW[i], c)
	}
	b.WriteByte('\n')
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-*s", nameW, r.Name)
		for i, v := range r.Values {
			fmt.Fprintf(&b, "  %*s", colW[i], formatCell(v))
		}
		b.WriteByte('\n')
	}
	if s.Summary != nil {
		fmt.Fprintf(&b, "%-*s", nameW, s.SummaryLabel)
		for i, v := range s.Summary {
			fmt.Fprintf(&b, "  %*s", colW[i], formatCell(v))
		}
		b.WriteByte('\n')
	}
	for _, r := range s.Footers {
		fmt.Fprintf(&b, "%-*s", nameW, r.Name)
		for i, v := range r.Values {
			fmt.Fprintf(&b, "  %*s", colW[i], formatCell(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatCell(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	switch {
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// geomean returns the geometric mean of positive values.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return math.NaN()
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// mean returns the arithmetic mean.
func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// column extracts one column from the rows.
func column(rows []SeriesRow, i int) []float64 {
	out := make([]float64, len(rows))
	for j, r := range rows {
		out[j] = r.Values[i]
	}
	return out
}

// summarize fills the summary row with fn over each column.
func (s *Series) summarize(label string, fn func([]float64) float64) {
	s.SummaryLabel = label
	s.Summary = make([]float64, len(s.Cols))
	for i := range s.Cols {
		s.Summary[i] = fn(column(s.Rows, i))
	}
}

// pctReduction converts (base, new) counters into a percentage reduction.
func pctReduction(base, new float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - new) / base
}
