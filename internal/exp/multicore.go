package exp

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Multi-core sweep scheduling parameters (see DESIGN.md §15): a 10k-access
// quantum keeps context switches frequent enough to matter at the quick
// trace lengths, and one unmap per 50k tenant accesses injects a steady
// shootdown stream without letting flush traffic dominate the miss rates.
const (
	multiCoreQuantum    = 10_000
	multiCoreUnmapEvery = 50_000
)

// multiCoreCell is one topology point of the sweep.
type multiCoreCell struct {
	cores, tenants int
}

func (c multiCoreCell) name() string { return fmt.Sprintf("%dc×%dt", c.cores, c.tenants) }

// MultiCoreSweep measures how dead-page prediction quality degrades under
// multi-core, multi-tenant interference: the full dpPred+cbPred proposal on
// a shared LLT/LLC while 1–4 cores run 1–4 tenants of the same workload
// (distinct seeds), with ASID-targeted TLB shootdowns on unmap. The
// paper's predictors train on reuse history that shootdown invalidations
// never touch, so the premature-kill column is where cross-tenant pressure
// shows up first.
func MultiCoreSweep(r *Runner) (Series, error) {
	return multiCoreSweep(r, []int{1, 2, 4}, []int{1, 2, 4})
}

// multiCoreSweep runs the cores×tenants grid. Cells run in parallel under
// the runner's worker pool; results are assembled in grid order, so the
// rendered table is identical whatever the job count.
func multiCoreSweep(r *Runner, coreCounts, tenantCounts []int) (Series, error) {
	w, err := trace.ByName("cactusADM")
	if err != nil {
		return Series{}, err
	}

	var cells []multiCoreCell
	for _, c := range coreCounts {
		for _, t := range tenantCounts {
			cells = append(cells, multiCoreCell{cores: c, tenants: t})
		}
	}
	if r.Status != nil {
		for _, c := range cells {
			r.Status.CellQueued(w.Name, c.name())
		}
	}

	ctx := r.baseCtx()
	results := make([]sim.MultiResult, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c multiCoreCell) {
			defer wg.Done()
			select {
			case r.sem <- struct{}{}: // acquire a pool slot
			case <-ctx.Done():
				errs[i] = fmt.Errorf("exp: %s under %s: %w", w.Name, c.name(), ctx.Err())
				return
			}
			defer func() { <-r.sem }()
			if r.ProgressStart != nil {
				r.ProgressStart(w.Name, c.name())
			}
			if r.Status != nil {
				r.Status.CellStart(w.Name, c.name())
			}
			start := time.Now()
			results[i], errs[i] = runMultiCell(ctx, r.params, w, c)
			if r.ProgressDone != nil {
				r.ProgressDone(w.Name, c.name(), time.Since(start), errs[i])
			}
			if r.Status != nil {
				r.Status.CellDone(w.Name, c.name(), time.Since(start), errs[i])
			}
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Series{}, err
		}
	}

	s := Series{
		ID:    "Multi-core",
		Title: "dead-page prediction quality under multi-tenant interference (cactusADM mixes, dpPred+cbPred, asid shootdowns)",
		Cols:  []string{"dpPred acc %", "premature %", "LLT MPKI", "IPC"},
	}
	for i, c := range cells {
		res := results[i]
		s.Rows = append(s.Rows, SeriesRow{Name: c.name(), Values: []float64{
			100 * res.LLTAccuracy.Accuracy(),
			100 * res.LLTConfusion.PrematureRate(),
			res.LLTMPKI,
			res.IPC,
		}})
	}
	s.Summary = make([]float64, len(s.Cols))
	for i := range s.Cols {
		s.Summary[i] = mean(column(s.Rows, i))
	}
	s.SummaryLabel = "mean"
	return s, nil
}

// runMultiCell simulates one topology point: per-tenant generators seeded
// seed+tenantID over a fresh multi-core machine, warmup, then a measured
// region with accuracy and confusion grading on the shared structures.
// The sweep bypasses the runner's memo (keys and warm-state sharing are
// single-machine shaped); every cell simulates from cold, which keeps the
// 1c×1t row comparable with the single-machine dpPred column.
func runMultiCell(ctx context.Context, p Params, w trace.Workload, c multiCoreCell) (sim.MultiResult, error) {
	cfg := sim.DefaultConfig()
	cfg.Seed = p.Seed
	m, err := sim.NewMulti(sim.MultiConfig{
		Machine:    cfg,
		Cores:      c.cores,
		Tenants:    c.tenants,
		Quantum:    multiCoreQuantum,
		Shootdown:  sim.ShootdownFlushASID,
		UnmapEvery: multiCoreUnmapEvery,
	})
	if err != nil {
		return sim.MultiResult{}, err
	}
	dp, err := core.NewDPPred(core.DefaultDPPredConfig(m.LLT().Entries()))
	if err != nil {
		return sim.MultiResult{}, err
	}
	cb, err := core.NewCBPred(core.DefaultCBPredConfig(m.LLC().Capacity()))
	if err != nil {
		return sim.MultiResult{}, err
	}
	m.SetTLBPredictor(dp)
	m.SetLLCPredictor(cb)

	gens := make([]trace.Generator, c.tenants)
	for t := range gens {
		gens[t] = w.New(p.Seed + uint64(t))
	}
	if err := m.RunContext(ctx, gens, p.Warmup); err != nil {
		return sim.MultiResult{}, err
	}
	if err := m.EnableAccuracyTracking(); err != nil {
		return sim.MultiResult{}, err
	}
	if err := m.EnableConfusionTracking(); err != nil {
		return sim.MultiResult{}, err
	}
	m.StartMeasurement()
	if err := m.RunContext(ctx, gens, p.Measure); err != nil {
		return sim.MultiResult{}, err
	}
	m.Finish()
	return m.Result(), nil
}
