package exp

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

var cellTestParams = Params{Warmup: 4_000, Measure: 12_000, Seed: 1, SampleEvery: 4_000}

// TestCellKeyIdentity: equal cells key equal, and every dimension of a
// cell — workload stream, setup name, instrumentation, each parameter —
// perturbs the key.
func TestCellKeyIdentity(t *testing.T) {
	w := testWorkload(t, "cc")
	p := cellTestParams
	fp, err := WorkloadFingerprint(w, p.Seed, p.Warmup+p.Measure)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := WorkloadFingerprint(w, p.Seed, p.Warmup+p.Measure)
	if err != nil {
		t.Fatal(err)
	}
	if fp != fp2 {
		t.Fatalf("fingerprint not deterministic: %s vs %s", fp, fp2)
	}
	otherFP, err := WorkloadFingerprint(testWorkload(t, "mcf"), p.Seed, p.Warmup+p.Measure)
	if err != nil {
		t.Fatal(err)
	}
	if otherFP == fp {
		t.Fatal("distinct workloads share a fingerprint")
	}
	seedFP, err := WorkloadFingerprint(w, p.Seed+1, p.Warmup+p.Measure)
	if err != nil {
		t.Fatal(err)
	}
	if seedFP == fp {
		t.Fatal("distinct seeds share a fingerprint")
	}

	base := CellKey(fp, Baseline(), p)
	if got := CellKey(fp, Baseline(), p); got != base {
		t.Fatal("CellKey not deterministic")
	}
	if len(base) != 64 {
		t.Fatalf("CellKey length = %d, want 64 hex chars", len(base))
	}
	distinct := map[string]string{"base": base}
	record := func(label, key string) {
		for prev, k := range distinct {
			if k == key {
				t.Fatalf("cell key collision between %s and %s", prev, label)
			}
		}
		distinct[label] = key
	}
	record("setup", CellKey(fp, DPPredSetup(), p))
	record("accuracy", CellKey(fp, withAccuracy(Baseline()), p))
	record("oracle", CellKey(fp, OracleSetup(), p))
	record("fingerprint", CellKey(otherFP, Baseline(), p))
	pp := p
	pp.Warmup++
	record("warmup", CellKey(fp, Baseline(), pp))
	pp = p
	pp.Measure++
	record("measure", CellKey(fp, Baseline(), pp))
	pp = p
	pp.Seed++
	record("seed", CellKey(fp, Baseline(), pp))
	pp = p
	pp.SampleEvery++
	record("sample-every", CellKey(fp, Baseline(), pp))
}

// TestCatalogResolvesEveryStandardSetup: every name the experiment suite
// can put in a grid resolves, the resolved setup carries the same identity
// flags, and the "+acc" convention matches withAccuracy.
func TestCatalogResolvesEveryStandardSetup(t *testing.T) {
	names := CatalogNames()
	if len(names) < 30 {
		t.Fatalf("catalog suspiciously small: %d setups", len(names))
	}
	for _, name := range names {
		su, ok := ResolveSetup(name)
		if !ok {
			t.Fatalf("CatalogNames lists %q but ResolveSetup declines it", name)
		}
		if su.Name != name {
			t.Fatalf("ResolveSetup(%q) returned setup named %q", name, su.Name)
		}
		acc, ok := ResolveSetup(name + "+acc")
		if !ok {
			t.Fatalf("accuracy variant %q+acc does not resolve", name)
		}
		if acc.Name != name+"+acc" || !acc.Instrument.Accuracy {
			t.Fatalf("accuracy variant of %q malformed: name=%q accuracy=%v", name, acc.Name, acc.Instrument.Accuracy)
		}
	}
	// The specific names the figures and tables use must all be present.
	for _, name := range []string{
		"baseline", "characterize", "dpPred", "dpPred+cbPred", "AIP-TLB", "SHiP-TLB",
		"AIP-LLC", "SHiP-LLC", "AIP-TLB+LLC", "SHiP-TLB+LLC", "iso-storage", "oracle",
		"dpPred-SH", "dpPred+cbPred-PF", "base-llt512", "dpPred-llt1536",
		"dpPred-6pc5vpn", "dpPred-10pc", "dpPred-sh4", "dpPred+cbPred-pfq64",
		"base-llc2048", "dpPred+cbPred-llc3072", "srrip-llt", "srrip-cbPred",
		"distance-prefetch", "dpPred+prefetch", "DIP-LLT", "DIP+dpPred",
		"dpPred-th2", "dpPred-ctr4",
	} {
		if _, ok := ResolveSetup(name); !ok {
			t.Errorf("standard setup %q missing from the catalog", name)
		}
	}
	if _, ok := ResolveSetup("no-such-setup"); ok {
		t.Fatal("ResolveSetup accepted an unknown name")
	}
}

// TestResolvedSetupMatchesOriginal: a catalog-resolved setup simulates the
// same bytes as the experiment suite's own construction — the property the
// whole distributed plane rests on.
func TestResolvedSetupMatchesOriginal(t *testing.T) {
	w := testWorkload(t, "cc")
	for _, su := range []Setup{DPPredSetup(), dpPredNoShadowSetup(), thresholdSetup(2)} {
		local := NewRunner(cellTestParams)
		want, err := local.Run(w, su)
		if err != nil {
			t.Fatal(err)
		}
		resolved, ok := ResolveSetup(su.Name)
		if !ok {
			t.Fatalf("setup %q not resolvable", su.Name)
		}
		remote := NewRunner(cellTestParams)
		got, err := remote.Run(w, resolved)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("catalog-resolved %q diverges from the original construction", su.Name)
		}
	}
}

// memMemo is an in-memory CellMemo for runner-integration tests. Like any
// CellMemo it must tolerate concurrent grid cells.
type memMemo struct {
	mu      sync.Mutex
	entries map[string]sim.Result
	puts    int
}

func (m *memMemo) Get(key string) (sim.Result, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	res, ok := m.entries[key]
	return res, ok, nil
}

func (m *memMemo) Put(key string, _ CellMeta, res sim.Result) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.entries == nil {
		m.entries = map[string]sim.Result{}
	}
	m.entries[key] = res
	m.puts++
	return nil
}

func (m *memMemo) putCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.puts
}

// TestRunnerPersistentMemo: a runner with a Memo publishes every computed
// cell and a fresh runner over the same memo replays them all without
// simulating — the crash-resume delta contract in miniature.
func TestRunnerPersistentMemo(t *testing.T) {
	workloads := []trace.Workload{testWorkload(t, "cc"), testWorkload(t, "mcf")}
	setups := []Setup{Baseline(), DPPredSetup()}

	memo := &memMemo{}
	r1 := NewRunner(cellTestParams)
	r1.Memo = memo
	if err := r1.RunGrid(workloads, setups); err != nil {
		t.Fatal(err)
	}
	if memo.putCount() != len(workloads)*len(setups) {
		t.Fatalf("memo received %d puts, want %d", memo.putCount(), len(workloads)*len(setups))
	}

	ref := NewRunner(cellTestParams)
	if err := ref.RunGrid(workloads, setups); err != nil {
		t.Fatal(err)
	}

	var computed atomic.Int64
	r2 := NewRunner(cellTestParams)
	r2.Memo = memo
	r2.ProgressStart = func(_, _ string) { computed.Add(1) }
	if err := r2.RunGrid(workloads, setups); err != nil {
		t.Fatal(err)
	}
	if n := computed.Load(); n != 0 {
		t.Fatalf("second run simulated %d cells despite a full memo", n)
	}
	for _, w := range workloads {
		for _, su := range setups {
			want, err := ref.Run(w, su)
			if err != nil {
				t.Fatal(err)
			}
			got, err := r2.Run(w, su)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("memo-served %s/%s diverges from a fresh simulation", w.Name, su.Name)
			}
		}
	}
}

// TestExecutorFallback: cells the executor declines run locally, handled
// cells never touch the local simulation path, and executor errors surface
// with the standard cell prefix.
func TestExecutorFallback(t *testing.T) {
	w := testWorkload(t, "cc")
	ref := NewRunner(cellTestParams)
	want, err := ref.Run(w, Baseline())
	if err != nil {
		t.Fatal(err)
	}

	var handledKeys, declined atomic.Int64
	r := NewRunner(cellTestParams)
	r.Executor = func(ctx context.Context, key string, w trace.Workload, setup Setup) (sim.Result, bool, error) {
		if setup.Name != "baseline" {
			declined.Add(1)
			return sim.Result{}, false, nil
		}
		handledKeys.Add(1)
		return want, true, nil
	}
	got, err := r.Run(w, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if got != want || handledKeys.Load() != 1 {
		t.Fatal("executor-handled cell did not serve the executor's result")
	}

	adhoc := Setup{Name: "adhoc-local"}
	if _, err := r.Run(w, adhoc); err != nil {
		t.Fatalf("declined cell failed to fall back to local execution: %v", err)
	}
	if declined.Load() != 1 {
		t.Fatalf("executor consulted %d times for the ad-hoc cell", declined.Load())
	}

	r2 := NewRunner(cellTestParams)
	r2.Executor = func(context.Context, string, trace.Workload, Setup) (sim.Result, bool, error) {
		return sim.Result{}, true, context.DeadlineExceeded
	}
	_, err = r2.Run(w, Baseline())
	if err == nil || !strings.Contains(err.Error(), "cc under baseline") {
		t.Fatalf("executor error lost the cell prefix: %v", err)
	}
}
