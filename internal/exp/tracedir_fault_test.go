package exp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/faultio"
	"repro/internal/trace"
)

// Regression tests for the PR 9 streamed-trace memo (-trace-dir): a
// cancellation or failure mid-record must leave no temp files, no
// truncated .dpbf a later run would accept, and no stale memo entry — the
// interrupted workload's trace is recomputed from scratch.

// hookGen passes an inner generator through, firing hook once when the
// shared counter reaches at.
type hookGen struct {
	inner trace.Generator
	calls *atomic.Int64
	at    int64
	once  *sync.Once
	hook  func()
}

func (g *hookGen) Name() string { return g.inner.Name() }

func (g *hookGen) Next() trace.Access {
	if g.calls.Add(1) == g.at {
		g.once.Do(g.hook)
	}
	return g.inner.Next()
}

// failGen passes an inner generator through and latches an error after
// failAt accesses, like a trace source whose backing I/O died.
type failGen struct {
	inner  trace.Generator
	calls  int64
	failAt int64
	err    error
}

func (g *failGen) Name() string { return g.inner.Name() }

func (g *failGen) Next() trace.Access {
	g.calls++
	return g.inner.Next()
}

func (g *failGen) Err() error {
	if g.calls >= g.failAt {
		return g.err
	}
	return nil
}

// listDir returns the names of every entry under dir, for asserting that
// nothing (temp file or final trace) was left behind.
func listDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// TestTraceDirCancelMidRecordRecomputes is the SIGINT-mid-record audit:
// cancel the context while a workload's trace file is being recorded, then
// prove the aborted recording left no file behind (temp or final), the
// trace memo was evicted, and a later run re-records and produces the same
// bytes as the in-memory mode — never a stale or partial trace.
func TestTraceDirCancelMidRecordRecomputes(t *testing.T) {
	dir := t.TempDir()
	inner := testWorkload(t, "cc")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	var once sync.Once
	// The wrapper is byte-transparent: it forwards cc's generator and only
	// fires the cancellation (once, globally) mid-way through the first
	// recording, emulating a SIGINT arriving while RecordV2Context runs.
	w := trace.Workload{Name: "cc", New: func(seed uint64) trace.Generator {
		return &hookGen{inner: inner.New(seed), calls: &calls, at: 3_000, once: &once, hook: cancel}
	}}

	r := NewRunner(cancelTestParams)
	r.SetJobs(1)
	r.SetTraceDir(dir)
	if _, err := r.RunContext(ctx, w, Baseline()); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled mid-record run returned %v, want context.Canceled", err)
	}
	if left := listDir(t, dir); len(left) != 0 {
		t.Fatalf("aborted recording left files behind: %v", left)
	}

	// The same runner must recompute, not replay the aborted attempt: the
	// buffer memo was evicted, so this re-records the full trace.
	res, err := r.RunContext(context.Background(), w, Baseline())
	if err != nil {
		t.Fatalf("re-run after canceled recording: %v", err)
	}
	if _, err := os.Stat(streamPath(dir, "cc", cancelTestParams)); err != nil {
		t.Fatalf("re-run did not record the trace file: %v", err)
	}

	// And the recomputed result matches the in-memory mode bit for bit.
	ref := NewRunner(cancelTestParams)
	want, err := ref.Run(inner, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if res != want {
		t.Fatal("post-cancellation recompute diverges from the in-memory mode")
	}
}

// streamPath mirrors streamWorkload's cache-file naming.
func streamPath(dir, name string, p Params) string {
	return filepath.Join(dir, fmt.Sprintf("%s-seed%d-n%d.dpbf", name, p.Seed, p.Warmup+p.Measure))
}

// TestTraceDirGeneratorErrorCleansUp: a generator failing mid-record (the
// non-cancellation error path) must remove the temp file, leave no final
// file, and surface the error; faultio.ErrInjected stands in for a dead
// trace source.
func TestTraceDirGeneratorErrorCleansUp(t *testing.T) {
	dir := t.TempDir()
	inner := testWorkload(t, "cc")
	w := trace.Workload{Name: "cc", New: func(seed uint64) trace.Generator {
		return &failGen{inner: inner.New(seed), failAt: 2_000, err: faultio.ErrInjected}
	}}

	r := NewRunner(cancelTestParams)
	r.SetJobs(1)
	r.SetTraceDir(dir)
	if _, err := r.Run(w, Baseline()); !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("failed recording returned %v, want ErrInjected", err)
	}
	if left := listDir(t, dir); len(left) != 0 {
		t.Fatalf("failed recording left files behind: %v", left)
	}
	// Real errors stay memoized — the second run replays the failure
	// without touching the directory again.
	if _, err := r.Run(w, DPPredSetup()); !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("memoized recording failure lost: %v", err)
	}
	if left := listDir(t, dir); len(left) != 0 {
		t.Fatalf("memoized failure re-touched the trace dir: %v", left)
	}
}

// TestTraceDirRejectsTruncatedCache: a truncated .dpbf at the cache path —
// the artifact a kill -9 between write and rename could have produced
// before temp+rename, or a torn copy — must be rejected by the reuse
// path's validation, never silently replayed.
func TestTraceDirRejectsTruncatedCache(t *testing.T) {
	p := cancelTestParams
	w := testWorkload(t, "cc")
	n := p.Warmup + p.Measure
	var buf bytes.Buffer
	if err := trace.RecordV2(&buf, w.New(p.Seed), n); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"truncated-60pct", full[:len(full)*3/5]},
		{"truncated-trailer", full[:len(full)-8]},
		{"corrupt-index", corruptTail(full)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(streamPath(dir, "cc", p), tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			r := NewRunner(p)
			r.SetJobs(1)
			r.SetTraceDir(dir)
			if _, err := r.Run(w, Baseline()); err == nil {
				t.Fatal("runner accepted a damaged cached trace")
			}
		})
	}
}

// corruptTail flips a byte in the chunk index / footer region.
func corruptTail(full []byte) []byte {
	data := bytes.Clone(full)
	data[len(data)-24] ^= 0x41
	return data
}

// TestRecordV2FullDiskPropagates: RecordV2Context against a writer that
// runs out of space must surface ErrNoSpace (streamWorkload's cleanup path
// depends on the error coming back, not on a short write being absorbed).
func TestRecordV2FullDiskPropagates(t *testing.T) {
	w := testWorkload(t, "cc")
	for _, capacity := range []int64{0, 100, 4096} {
		var sink bytes.Buffer
		fw := faultio.NewFailingWriter(&sink, capacity, faultio.ErrNoSpace)
		err := trace.RecordV2Context(context.Background(), fw, w.New(1), 20_000)
		if !errors.Is(err, faultio.ErrNoSpace) {
			t.Fatalf("capacity %d: RecordV2Context returned %v, want ErrNoSpace", capacity, err)
		}
	}
}
