package exp

import (
	"encoding/json"
	"os"
	"sort"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// multiTestParams keeps the jobs-invariance test fast; the golden snapshot
// below runs the real QuickParams grid.
func multiTestParams() Params {
	return Params{Warmup: 40_000, Measure: 80_000, Seed: 1, SampleEvery: 10_000}
}

// TestMultiCoreSweepJobsInvariant renders a reduced sweep sequentially and
// with an oversized worker pool: the formatted table must be byte-identical,
// the same contract the single-machine grids pin in their own tests.
func TestMultiCoreSweepJobsInvariant(t *testing.T) {
	render := func(jobs int) string {
		r := NewRunner(multiTestParams())
		r.SetJobs(jobs)
		s, err := multiCoreSweep(r, []int{1, 2}, []int{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		return s.Format()
	}
	seq, par := render(1), render(8)
	if seq != par {
		t.Errorf("sweep output depends on job count:\n-- jobs=1 --\n%s\n-- jobs=8 --\n%s", seq, par)
	}
}

// TestMultiCoreSweepShape pins the grid layout: 3×3 topologies as rows, the
// four quality columns, and a populated 1c×1t row (accuracy grading must
// have seen predictions even on the degenerate single-machine topology).
func TestMultiCoreSweepShape(t *testing.T) {
	r := NewRunner(multiTestParams())
	s, err := multiCoreSweep(r, []int{1, 2}, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 6 || len(s.Cols) != 4 {
		t.Fatalf("grid is %dx%d, want 6x4", len(s.Rows), len(s.Cols))
	}
	if s.Rows[0].Name != "1c×1t" || s.Rows[5].Name != "2c×4t" {
		t.Errorf("row order %q..%q, want 1c×1t..2c×4t", s.Rows[0].Name, s.Rows[5].Name)
	}
	if acc := s.Rows[0].Values[0]; acc <= 0 || acc > 100 {
		t.Errorf("1c×1t dpPred accuracy = %.1f%%, want in (0, 100]", acc)
	}
	if ipc := s.Rows[0].Values[3]; ipc <= 0 {
		t.Errorf("1c×1t IPC = %.4f, want > 0", ipc)
	}
}

// multiResultFields flattens a MultiResult for field-level golden diffs,
// the multi-machine analogue of resultFields.
func multiResultFields(t *testing.T, r sim.MultiResult) map[string]string {
	t.Helper()
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var tree map[string]any
	if err := json.Unmarshal(raw, &tree); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string)
	flattenJSON("", tree, out)
	return out
}

// TestGoldenMultiCoreSweep diffs the full QuickParams cores×tenants grid
// against testdata/golden/multicore.json. Any drift in the multi-machine
// composition — scheduling order, ASID tagging, shootdown broadcast,
// shared-structure contention — fails with a per-field diff; regenerate
// with -update after an intentional modelling change.
func TestGoldenMultiCoreSweep(t *testing.T) {
	w, err := trace.ByName("cactusADM")
	if err != nil {
		t.Fatal(err)
	}
	dims := []int{1, 2, 4}
	got := make(map[string]sim.MultiResult)
	for _, c := range dims {
		for _, tn := range dims {
			cell := multiCoreCell{cores: c, tenants: tn}
			res, err := runMultiCell(quickRunner.baseCtx(), quickRunner.params, w, cell)
			if err != nil {
				t.Fatal(err)
			}
			got[cell.name()] = res
		}
	}

	path := goldenPath("multicore")
	if *update {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden snapshot %s (run `go test ./internal/exp -run TestGoldenMultiCore -update` to create it): %v", path, err)
	}
	var want map[string]sim.MultiResult
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if len(want) != len(got) {
		t.Errorf("%s: snapshot has %d cells, sweep has %d", path, len(want), len(got))
	}
	for name, g := range got {
		gm, wm := multiResultFields(t, g), multiResultFields(t, want[name])
		for _, n := range sortedKeys(gm) {
			if gm[n] != wm[n] {
				t.Errorf("%s: %s = %s (golden %s)", name, n, gm[n], wm[n])
			}
		}
	}
}

// sortedKeys returns the map's keys in sorted order for stable diff output.
func sortedKeys(m map[string]string) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
