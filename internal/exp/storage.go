package exp

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/pred"
)

// StorageRow is one line of the §VI-D storage comparison.
type StorageRow struct {
	// Name identifies the predictor (or component).
	Name string
	// Bits is the state overhead in bits.
	Bits uint64
}

// KB returns the overhead in kibibytes.
func (r StorageRow) KB() float64 { return float64(r.Bits) / 8 / 1024 }

// StorageReport is the §VI-D comparison.
type StorageReport struct {
	Rows []StorageRow
}

// StorageOverheads computes the §VI-D storage comparison for the paper's
// default structure sizes: a 1024-entry LLT and a 2 MB LLC (32768 blocks).
func StorageOverheads() (StorageReport, error) {
	const lltEntries = 1024
	const llcBlocks = 32768

	dp, err := core.NewDPPred(core.DefaultDPPredConfig(lltEntries))
	if err != nil {
		return StorageReport{}, err
	}
	cb, err := core.NewCBPred(core.DefaultCBPredConfig(llcBlocks))
	if err != nil {
		return StorageReport{}, err
	}
	shipTLB, err := pred.NewSHiPTLB(pred.DefaultSHiPTLBConfig(lltEntries))
	if err != nil {
		return StorageReport{}, err
	}
	shipLLC, err := pred.NewSHiPLLC(pred.DefaultSHiPLLCConfig(llcBlocks))
	if err != nil {
		return StorageReport{}, err
	}

	// AIP's storage is configuration-derived; it does not need built
	// structures to account for bits, but the constructor wants one, so
	// compute the same formula directly.
	aipTLBCfg := pred.DefaultAIPTLBConfig(lltEntries)
	aipLLCCfg := pred.DefaultAIPLLCConfig(llcBlocks)
	aipBits := func(c pred.AIPConfig) uint64 {
		table := (uint64(1) << (c.PCBits + c.AddrBits)) * uint64(c.ThresholdBits+1)
		return table + uint64(c.PerEntryBits)*uint64(c.Entries)
	}

	return StorageReport{Rows: []StorageRow{
		{Name: "dpPred (LLT)", Bits: dp.StorageBits()},
		{Name: "cbPred (LLC)", Bits: cb.StorageBits()},
		{Name: "dpPred+cbPred total", Bits: dp.StorageBits() + cb.StorageBits()},
		{Name: "AIP (LLT+LLC)", Bits: aipBits(aipTLBCfg) + aipBits(aipLLCCfg)},
		{Name: "SHiP (LLT+LLC)", Bits: shipTLB.StorageBits() + shipLLC.StorageBits()},
	}}, nil
}

// Format renders the report.
func (r StorageReport) Format() string {
	var b strings.Builder
	b.WriteString("Section VI-D: Storage overhead comparison (1024-entry LLT, 2 MB LLC)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s  %10.2f KB\n", row.Name, row.KB())
	}
	return b.String()
}
