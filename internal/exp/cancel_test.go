package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/pred"
	"repro/internal/sim"
	"repro/internal/trace"
)

var cancelTestParams = Params{Warmup: 5_000, Measure: 15_000, Seed: 1, SampleEvery: 5_000}

func testWorkload(t *testing.T, name string) trace.Workload {
	t.Helper()
	w, err := trace.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// brokenSetup fails during predictor construction with a distinctive error.
func brokenSetup(name string, err error) Setup {
	return Setup{Name: name, TLB: func(*sim.System) (pred.TLBPredictor, error) {
		return nil, err
	}}
}

// TestGridAggregatesAllErrors: a grid with several broken setups must
// report every cell's error, not just the first one to finish, and the
// healthy cells must still simulate and memoize.
func TestGridAggregatesAllErrors(t *testing.T) {
	r := NewRunner(cancelTestParams)
	r.SetJobs(4)
	w := testWorkload(t, "cc")

	errA := errors.New("distinctive failure alpha")
	errB := errors.New("distinctive failure beta")
	err := r.RunGrid([]trace.Workload{w}, []Setup{
		brokenSetup("bad-alpha", errA),
		Baseline(),
		brokenSetup("bad-beta", errB),
	})
	if err == nil {
		t.Fatal("grid with two broken setups returned nil")
	}
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("aggregated error lost a cell failure:\n%v", err)
	}
	// Healthy cells are unaffected and already memoized.
	if _, err := r.Run(w, Baseline()); err != nil {
		t.Fatalf("baseline cell poisoned by sibling failures: %v", err)
	}
	// Real (non-cancellation) errors stay memoized.
	if _, err := r.Run(w, brokenSetup("bad-alpha", errA)); !errors.Is(err, errA) {
		t.Fatalf("broken cell not memoized: %v", err)
	}
}

// TestPanickingSetupFailsOnlyItsCell: a Setup constructor that panics must
// fail its own cell with a stack-carrying error while sibling cells run to
// completion — one bad predictor must not crash the worker pool.
func TestPanickingSetupFailsOnlyItsCell(t *testing.T) {
	r := NewRunner(cancelTestParams)
	r.SetJobs(2)
	w := testWorkload(t, "cc")

	panicky := Setup{Name: "panicky", TLB: func(*sim.System) (pred.TLBPredictor, error) {
		panic("kaboom in predictor construction")
	}}
	err := r.RunGrid([]trace.Workload{w}, []Setup{panicky, Baseline()})
	if err == nil {
		t.Fatal("grid with a panicking setup returned nil")
	}
	if !strings.Contains(err.Error(), "panic: kaboom in predictor construction") {
		t.Fatalf("panic not converted to a cell error:\n%v", err)
	}
	if !strings.Contains(err.Error(), "cancel_test.go") {
		t.Errorf("panic error carries no stack trace:\n%v", err)
	}
	if _, err := r.Run(w, Baseline()); err != nil {
		t.Fatalf("baseline cell killed by sibling panic: %v", err)
	}
}

// TestFailFastCancelsQueuedCells: with FailFast set, the first real
// failure must cancel the cells that have not finished yet, and the
// canceled cells must be evicted from the memo so a later Run re-simulates
// them successfully.
func TestFailFastCancelsQueuedCells(t *testing.T) {
	r := NewRunner(cancelTestParams)
	r.FailFast = true
	w := testWorkload(t, "cc")

	failErr := errors.New("distinctive fail-fast failure")
	gate := make(chan struct{})
	bad := Setup{Name: "failfast-bad", TLB: func(*sim.System) (pred.TLBPredictor, error) {
		close(gate) // single-flight: runs exactly once
		return nil, failErr
	}}
	// The gated setups hold their pool slot until the bad cell has failed,
	// then linger long enough for the fail-fast cancellation to land, so
	// the test observes cancellation deterministically.
	gated := func(i int) Setup {
		return Setup{Name: fmt.Sprintf("failfast-gated%d", i), TLB: func(s *sim.System) (pred.TLBPredictor, error) {
			<-gate
			time.Sleep(100 * time.Millisecond)
			return newDPPred(s)
		}}
	}
	setups := []Setup{bad, gated(0), gated(1), gated(2)}
	r.SetJobs(len(setups)) // every cell gets a slot; none deadlocks on the gate

	err := r.RunGrid([]trace.Workload{w}, setups)
	if !errors.Is(err, failErr) {
		t.Fatalf("grid error does not wrap the triggering failure:\n%v", err)
	}
	if !strings.Contains(err.Error(), "fail-fast canceled 3 queued cells") {
		t.Fatalf("fail-fast did not cancel the in-flight cells:\n%v", err)
	}
	// Canceled cells were evicted: re-running one must succeed now.
	if _, err := r.Run(w, gated(0)); err != nil {
		t.Fatalf("canceled cell stayed poisoned in the memo: %v", err)
	}
}

// TestMidGridCancellation: canceling the grid's context mid-run must stop
// the grid with a cancellation error, leak no goroutines, and leave the
// memo consistent — the same runner must complete the identical grid
// cleanly afterwards.
func TestMidGridCancellation(t *testing.T) {
	g0 := runtime.NumGoroutine()

	r := NewRunner(cancelTestParams)
	r.SetJobs(2)
	ws := []trace.Workload{testWorkload(t, "cc"), testWorkload(t, "sssp")}
	setups := []Setup{Baseline(), DPPredSetup()}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel as the first simulation begins: the leader aborts at its
	// first stride check, the rest abort waiting for slots or memo peers.
	r.ProgressStart = func(string, string) { cancel() }

	err := r.RunGridContext(ctx, ws, setups)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled grid returned %v, want a context.Canceled wrap", err)
	}
	if !strings.Contains(err.Error(), "grid canceled") {
		t.Errorf("error does not describe the grid cancellation: %v", err)
	}

	// No goroutine may outlive the grid (pool workers, memo waiters).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > g0+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > g0+2 {
		t.Errorf("goroutines leaked across cancellation: %d before, %d after", g0, n)
	}

	// Cancellation must not poison any memo (result, buffer, warm state):
	// the same runner completes the identical grid afterwards.
	r.ProgressStart = nil
	if err := r.RunGrid(ws, setups); err != nil {
		t.Fatalf("grid after cancellation failed: %v", err)
	}
	for _, w := range ws {
		for _, su := range setups {
			if _, err := r.Run(w, su); err != nil {
				t.Fatalf("%s/%s unavailable after recovery: %v", w.Name, su.Name, err)
			}
		}
	}
}

// TestProgressDoneReportsFailures: ProgressDone must fire on the error
// path too, carrying the cell's error, so progress accounting never runs
// short on failing grids.
func TestProgressDoneReportsFailures(t *testing.T) {
	r := NewRunner(cancelTestParams)
	w := testWorkload(t, "cc")

	var doneErr error
	dones := 0
	r.ProgressDone = func(_, _ string, _ time.Duration, err error) {
		dones++
		doneErr = err
	}
	boom := errors.New("constructor exploded")
	if _, err := r.Run(w, brokenSetup("bad", boom)); !errors.Is(err, boom) {
		t.Fatalf("Run err = %v, want wrapped constructor error", err)
	}
	if dones != 1 {
		t.Fatalf("ProgressDone fired %d times, want 1", dones)
	}
	if !errors.Is(doneErr, boom) {
		t.Fatalf("ProgressDone err = %v, want the cell's failure", doneErr)
	}
}

// TestRunnerContextPropagation: SetContext must make the plain Run/RunGrid
// entry points honor cancellation without any signature change.
func TestRunnerContextPropagation(t *testing.T) {
	r := NewRunner(cancelTestParams)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r.SetContext(ctx)
	w := testWorkload(t, "cc")

	if _, err := r.Run(w, Baseline()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run under a canceled base context returned %v", err)
	}
	// Restoring the background context clears the cancellation.
	r.SetContext(nil)
	if _, err := r.Run(w, Baseline()); err != nil {
		t.Fatalf("Run after clearing the context failed: %v", err)
	}
}
