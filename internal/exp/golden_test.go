package exp

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// update regenerates the golden snapshots instead of diffing against them:
//
//	go test ./internal/exp -run TestGolden -update
var update = flag.Bool("update", false, "rewrite testdata/golden snapshots")

// goldenSetups are the Table IV configurations snapshotted under
// testdata/golden: one JSON file per setup, mapping workload name to the
// full QuickParams sim.Result. They cover the baseline machine, all three
// TLB-side predictors, the iso-storage control and the two-pass oracle, so
// any refactor that drifts a single metric anywhere in the stack (TLB,
// walker, caches, predictors, timing core) fails with a field-level diff.
func goldenSetups() []Setup {
	return []Setup{
		Baseline(),
		AIPTLBSetup(),
		SHiPTLBSetup(),
		DPPredSetup(),
		IsoStorageSetup(),
		OracleSetup(),
	}
}

// goldenPath maps a setup name to its snapshot file ("dpPred" →
// testdata/golden/dpPred.json; "+" is filename-safe everywhere Go runs).
func goldenPath(setup string) string {
	return filepath.Join("testdata", "golden", setup+".json")
}

// TestGoldenTableIVResults diffs every (workload, Table IV setup) QuickParams
// result against the committed snapshots. It shares quickRunner with the rest
// of the package, so the grid simulates only once per test invocation; run
// with -update after an intentional modelling change and commit the diff.
func TestGoldenTableIVResults(t *testing.T) {
	workloads := trace.Workloads()
	setups := goldenSetups()
	if err := quickRunner.RunGrid(workloads, setups); err != nil {
		t.Fatal(err)
	}

	for _, su := range setups {
		got := make(map[string]sim.Result, len(workloads))
		for _, w := range workloads {
			res, err := quickRunner.Run(w, su)
			if err != nil {
				t.Fatal(err)
			}
			got[w.Name] = res
		}

		path := goldenPath(su.Name)
		if *update {
			if err := writeGolden(path, got); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s", path)
			continue
		}

		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden snapshot %s (run `go test ./internal/exp -run TestGolden -update` to create it): %v", path, err)
		}
		var want map[string]sim.Result
		if err := json.Unmarshal(raw, &want); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, w := range workloads {
			diffResults(t, su.Name, w.Name, got[w.Name], want[w.Name])
		}
		if len(want) != len(workloads) {
			t.Errorf("%s: snapshot has %d workloads, grid has %d", path, len(want), len(workloads))
		}
	}
}

// diffResults reports every drifted metric by name, so a regression reads
// as "dpPred/cc: LLTMPKI = 4.8123 (golden 4.8019)" rather than an opaque
// struct dump.
func diffResults(t *testing.T, setup, workload string, got, want sim.Result) {
	t.Helper()
	if got == want {
		return
	}
	gm, wm := resultFields(t, got), resultFields(t, want)
	names := make([]string, 0, len(gm))
	for n := range gm {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if gm[n] != wm[n] {
			t.Errorf("%s/%s: %s = %s (golden %s)", setup, workload, n, gm[n], wm[n])
		}
	}
}

// resultFields flattens a Result into "field" → rendered-value via its JSON
// form (nested instrumentation structs become dotted paths).
func resultFields(t *testing.T, r sim.Result) map[string]string {
	t.Helper()
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var tree map[string]any
	if err := json.Unmarshal(raw, &tree); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string)
	flattenJSON("", tree, out)
	return out
}

func flattenJSON(prefix string, v any, out map[string]string) {
	switch vv := v.(type) {
	case map[string]any:
		for k, sub := range vv {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			flattenJSON(key, sub, out)
		}
	case []any:
		for i, sub := range vv {
			flattenJSON(fmt.Sprintf("%s[%d]", prefix, i), sub, out)
		}
	default:
		out[prefix] = fmt.Sprintf("%v", vv)
	}
}

// writeGolden marshals the snapshot with sorted workload keys (Go maps
// marshal sorted) and a trailing newline, so regenerated files diff cleanly.
func writeGolden(path string, results map[string]sim.Result) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
