package exp

import (
	"repro/internal/core"
	"repro/internal/pred"
	"repro/internal/sim"
	"repro/internal/trace"
)

// withAccuracy returns a copy of the setup with mirror grading enabled.
func withAccuracy(s Setup) Setup {
	s.Name += "+acc"
	s.Instrument.Accuracy = true
	return s
}

// dpPredNoShadowSetup is dpPred−SH (Table VI): the shadow table disabled.
func dpPredNoShadowSetup() Setup {
	return Setup{
		Name: "dpPred-SH",
		TLB: func(s *sim.System) (pred.TLBPredictor, error) {
			cfg := core.DefaultDPPredConfig(s.LLT().Entries())
			cfg.ShadowEntries = 0
			return core.NewDPPred(cfg)
		},
	}
}

// cbPredNoPFQSetup is cbPred−PF (Table VII): the PFN filter queue disabled,
// so every block trains and consults bHIST.
func cbPredNoPFQSetup() Setup {
	return Setup{
		Name: "dpPred+cbPred-PF",
		TLB:  newDPPred,
		LLC: func(s *sim.System) (pred.LLCPredictor, error) {
			cfg := core.DefaultCBPredConfig(s.LLC().Capacity())
			cfg.UsePFQ = false
			return core.NewCBPred(cfg)
		},
	}
}

// accuracySeries builds an accuracy/coverage grid from a list of setups,
// reading either the LLT-side or LLC-side grading.
func (r *Runner) accuracySeries(id, title string, setups []Setup, names []string, llcSide bool) (Series, error) {
	graded := make([]Setup, len(setups))
	for i, su := range setups {
		graded[i] = withAccuracy(su)
	}
	if err := r.RunGrid(trace.Workloads(), graded); err != nil {
		return Series{}, err
	}
	s := Series{
		ID:    id,
		Title: title,
		Unit:  "%",
	}
	for _, n := range names {
		s.Cols = append(s.Cols, n+" Acc", n+" Cov")
	}
	for _, w := range trace.Workloads() {
		row := SeriesRow{Name: w.Name}
		for _, su := range setups {
			res, err := r.Run(w, withAccuracy(su))
			if err != nil {
				return Series{}, err
			}
			acc := res.LLTAccuracy
			if llcSide {
				acc = res.LLCAccuracy
			}
			row.Values = append(row.Values, 100*acc.Accuracy(), 100*acc.Coverage())
		}
		s.Rows = append(s.Rows, row)
	}
	s.summarize("mean", mean)
	return s, nil
}

// Table6 grades the dead-page predictors: dpPred, dpPred−SH and SHiP-TLB.
func Table6(r *Runner) (Series, error) {
	return r.accuracySeries("Table VI",
		"Accuracy, coverage for dead page predictors",
		[]Setup{DPPredSetup(), dpPredNoShadowSetup(), SHiPTLBSetup()},
		[]string{"dpPred", "dpPred-SH", "SHiP-TLB"},
		false)
}

// Table7 grades the dead-block predictors: cbPred, cbPred−PF and SHiP-LLC.
func Table7(r *Runner) (Series, error) {
	return r.accuracySeries("Table VII",
		"Accuracy, coverage for dead block predictors",
		[]Setup{DPPredCBPredSetup(), cbPredNoPFQSetup(), SHiPLLCSetup()},
		[]string{"cbPred", "cbPred-PF", "SHiP-LLC"},
		true)
}
