package exp

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/pred"
	"repro/internal/sim"
	"repro/internal/trace"
)

// arenaGoldenSetups are the registry newcomers snapshotted alongside the
// paper's own Table IV configurations: the sampler-based competitor, the
// reuse-variability competitor and a set-dueling tournament. Together with
// goldenSetups they pin the full sweep paperexp -predictors runs.
func arenaGoldenSetups() []Setup {
	return []Setup{
		mustSetup("SDBP-TLB"),
		mustSetup("Leeway-TLB"),
		mustSetup("duel(dpPred,SDBP)"),
	}
}

// TestGoldenArenaResults diffs the arena competitors' QuickParams results
// against committed snapshots, exactly like TestGoldenTableIVResults does
// for the paper's configurations; regenerate with -update.
func TestGoldenArenaResults(t *testing.T) {
	workloads := trace.Workloads()
	setups := arenaGoldenSetups()
	if err := quickRunner.RunGrid(workloads, setups); err != nil {
		t.Fatal(err)
	}

	for _, su := range setups {
		got := make(map[string]sim.Result, len(workloads))
		for _, w := range workloads {
			res, err := quickRunner.Run(w, su)
			if err != nil {
				t.Fatal(err)
			}
			got[w.Name] = res
		}

		path := goldenPath(su.Name)
		if *update {
			if err := writeGolden(path, got); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s", path)
			continue
		}

		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden snapshot %s (run `go test ./internal/exp -run TestGolden -update` to create it): %v", path, err)
		}
		var want map[string]sim.Result
		if err := json.Unmarshal(raw, &want); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, w := range workloads {
			diffResults(t, su.Name, w.Name, got[w.Name], want[w.Name])
		}
		if len(want) != len(workloads) {
			t.Errorf("%s: snapshot has %d workloads, grid has %d", path, len(want), len(workloads))
		}
	}
}

// TestParallelArenaSweep extends the jobs=1 ≡ jobs=8 guarantee to a
// registry sweep: every registered TLB-side predictor (the -predictors all
// grid) must produce bit-identical results whatever the worker count.
func TestParallelArenaSweep(t *testing.T) {
	setups, err := SetupsFor(pred.TLBNames())
	if err != nil {
		t.Fatal(err)
	}
	setups = append([]Setup{Baseline()}, setups...)
	var ws []trace.Workload
	for _, name := range []string{"cc", "canneal"} {
		w, err := trace.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}

	collect := func(jobs int) map[string]sim.Result {
		r := NewRunner(parallelTestParams)
		r.SetJobs(jobs)
		if err := r.RunGrid(ws, setups); err != nil {
			t.Fatal(err)
		}
		out := make(map[string]sim.Result)
		for _, w := range ws {
			for _, su := range setups {
				res, err := r.Run(w, su)
				if err != nil {
					t.Fatal(err)
				}
				out[w.Name+"/"+su.Name] = res
			}
		}
		return out
	}

	seq := collect(1)
	par := collect(8)
	if len(seq) != len(par) {
		t.Fatalf("result maps differ in size: sequential %d, parallel %d", len(seq), len(par))
	}
	for key, want := range seq {
		if got := par[key]; got != want {
			t.Errorf("%s: parallel result diverged from sequential:\n  jobs=8: %+v\n  jobs=1: %+v", key, got, want)
		}
	}
}

// TestTable4ExtendedShape runs the arena sweep on a short grid and checks
// the series layout: one column per registered TLB predictor (the default
// sweep), the mean summary row, and the two storage-normalization footers
// with strictly positive budgets.
func TestTable4ExtendedShape(t *testing.T) {
	r := NewRunner(parallelTestParams)
	s, err := Table4Extended(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := pred.TLBNames()
	if len(s.Cols) != len(names) {
		t.Fatalf("sweep has %d columns, registry has %d TLB predictors", len(s.Cols), len(names))
	}
	for i, n := range names {
		if s.Cols[i] != n {
			t.Errorf("column %d = %q, want registry order %q", i, s.Cols[i], n)
		}
	}
	if len(s.Rows) != len(trace.Workloads()) {
		t.Errorf("sweep has %d rows, want one per workload (%d)", len(s.Rows), len(trace.Workloads()))
	}
	if s.SummaryLabel != "mean" || len(s.Summary) != len(s.Cols) {
		t.Errorf("summary row %q with %d cells, want \"mean\" with %d", s.SummaryLabel, len(s.Summary), len(s.Cols))
	}
	if len(s.Footers) != 2 {
		t.Fatalf("sweep has %d footers, want storage (KB) and mean %%/KB", len(s.Footers))
	}
	for i, kb := range s.Footers[0].Values {
		if kb <= 0 {
			t.Errorf("%s: storage footer is %.3f KB, want > 0", s.Cols[i], kb)
		}
	}
	out := s.Format()
	for _, frag := range []string{"Table IV+", "storage (KB)", "mean %/KB"} {
		if !strings.Contains(out, frag) {
			t.Errorf("formatted sweep missing %q:\n%s", frag, out)
		}
	}
}

// TestTable4ExtendedUnknownName surfaces the registry's unknown-name error
// (with the registered set) through the sweep entry point, which is what
// paperexp -predictors prints on a typo.
func TestTable4ExtendedUnknownName(t *testing.T) {
	r := NewRunner(parallelTestParams)
	_, err := Table4Extended(r, []string{"SDBP-TLB", "bogus"})
	if err == nil {
		t.Fatal("sweep accepted an unregistered predictor name")
	}
	for _, frag := range []string{`unknown predictor "bogus"`, "registered:"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err, frag)
		}
	}
}
