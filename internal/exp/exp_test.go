package exp

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// quickRunner shares one memoized runner across the package's tests so the
// baseline simulations run once.
var quickRunner = NewRunner(QuickParams())

func TestRunMemoizes(t *testing.T) {
	r := NewRunner(QuickParams())
	starts, dones := 0, 0
	r.ProgressStart = func(string, string) { starts++ }
	r.ProgressDone = func(_, _ string, elapsed time.Duration, err error) {
		dones++
		if elapsed <= 0 {
			t.Errorf("ProgressDone elapsed = %v, want > 0", elapsed)
		}
		if err != nil {
			t.Errorf("ProgressDone err = %v, want nil", err)
		}
	}
	w, err := trace.ByName("cc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(w, Baseline()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(w, Baseline()); err != nil {
		t.Fatal(err)
	}
	if starts != 1 || dones != 1 {
		t.Errorf("baseline simulated start=%d done=%d times, want 1/1 (memoized)", starts, dones)
	}
}

func TestFigure1Shape(t *testing.T) {
	s, err := Figure1(quickRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 14 || len(s.Cols) != 2 {
		t.Fatalf("grid is %dx%d, want 14x2", len(s.Rows), len(s.Cols))
	}
	// Paper: on average ~82% of LLT entries dead at any time, DOA
	// dominating. Accept a loose band for the quick configuration.
	if dead := s.Summary[0]; dead < 50 {
		t.Errorf("mean sampled dead fraction %.1f%%; paper ≈82%%", dead)
	}
	if doa, dead := s.Summary[1], s.Summary[0]; doa < dead/2 {
		t.Errorf("DOA %.1f%% not dominant within dead %.1f%%", doa, dead)
	}
}

func TestFigure2DOADominates(t *testing.T) {
	s, err := Figure2(quickRunner)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: >85% of dead evictions are DOA on average.
	if doa, total := s.Summary[1], s.Summary[2]; doa < total*0.6 {
		t.Errorf("mean DOA %.1f%% of evictions vs total dead %.1f%%; DOA should dominate", doa, total)
	}
}

func TestTable3CorrelationPresent(t *testing.T) {
	s, err := Table3(quickRunner)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 72.7% of DOA blocks on DOA pages, on average; demand ≥ 50%.
	if s.Summary[0] < 50 {
		t.Errorf("mean DOA-block-on-DOA-page %.1f%%; paper ≈72.7%%", s.Summary[0])
	}
}

func TestFigure9DPPredWins(t *testing.T) {
	s, err := Figure9(quickRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cols) != 4 {
		t.Fatalf("Figure 9 has %d columns, want 4", len(s.Cols))
	}
	// Columns: AIP-TLB, SHiP-TLB, dpPred, iso-storage.
	aip, _, dp, iso := s.Summary[0], s.Summary[1], s.Summary[2], s.Summary[3]
	if dp <= 1.01 {
		t.Errorf("dpPred geomean normalized IPC %.4f; paper reports ≈1.05", dp)
	}
	if dp < aip {
		t.Errorf("AIP-TLB geomean %.4f beats dpPred %.4f; paper has AIP ≈ baseline", aip, dp)
	}
	if dp < iso {
		t.Errorf("iso-storage geomean %.4f beats dpPred %.4f", iso, dp)
	}
	// AIP-TLB must be close to the baseline (the paper's point: cache
	// dead-block predictors target non-DOA entries and do nothing for
	// the LLT).
	if aip < 0.98 || aip > 1.03 {
		t.Errorf("AIP-TLB geomean %.4f; expected ≈1.00", aip)
	}
	// dpPred must never significantly regress any workload.
	for _, row := range s.Rows {
		if row.Values[2] < 0.97 {
			t.Errorf("%s: dpPred normalized IPC %.4f < 0.97", row.Name, row.Values[2])
		}
	}
}

func TestTable4OracleBeatsDPPred(t *testing.T) {
	s, err := Table4(quickRunner)
	if err != nil {
		t.Fatal(err)
	}
	dp, oracle := s.Summary[2], s.Summary[4]
	if oracle < dp {
		t.Errorf("oracle mean MPKI reduction %.2f%% < dpPred %.2f%%", oracle, dp)
	}
	if dp <= 0 {
		t.Errorf("dpPred mean LLT MPKI reduction %.2f%% not positive", dp)
	}
}

func TestFigure10FullProposalWins(t *testing.T) {
	s, err := Figure10(quickRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cols) != 5 {
		t.Fatalf("Figure 10 has %d columns, want 5", len(s.Cols))
	}
	// Columns: AIP-LLC, SHiP-LLC, AIP-TLB+LLC, SHiP-TLB+LLC, dpPred+cbPred.
	both := s.Summary[4]
	if both <= 1.02 {
		t.Errorf("dpPred+cbPred geomean %.4f; paper reports ≈1.083", both)
	}
	for _, i := range []int{0, 2} { // the AIP columns
		if s.Summary[i] > both {
			t.Errorf("%s geomean %.4f beats dpPred+cbPred %.4f", s.Cols[i], s.Summary[i], both)
		}
	}
	// The paper's key consistency claim: the proposal never loses
	// significantly on any workload, while at least one baseline does.
	baselineRegressed := false
	for _, row := range s.Rows {
		if row.Values[4] < 0.97 {
			t.Errorf("%s: dpPred+cbPred normalized IPC %.4f < 0.97 (must not regress)",
				row.Name, row.Values[4])
		}
		for i := 0; i < 4; i++ {
			if row.Values[i] < 0.97 {
				baselineRegressed = true
			}
		}
	}
	if !baselineRegressed {
		t.Error("no baseline predictor regressed anywhere; the paper's consistency contrast is missing")
	}
}

func TestTable6ShadowImprovesAccuracy(t *testing.T) {
	s, err := Table6(quickRunner)
	if err != nil {
		t.Fatal(err)
	}
	// Columns: dpPred Acc, dpPred Cov, dpPred-SH Acc, dpPred-SH Cov,
	// SHiP Acc, SHiP Cov.
	dpAcc, shAcc := s.Summary[0], s.Summary[2]
	if dpAcc+2 < shAcc {
		t.Errorf("shadow table hurt accuracy: dpPred %.1f%% vs -SH %.1f%%", dpAcc, shAcc)
	}
	if dpAcc < 60 {
		t.Errorf("dpPred mean accuracy %.1f%%; paper ≈83.6%%", dpAcc)
	}
}

func TestTable7PFQBoostsAccuracy(t *testing.T) {
	s, err := Table7(quickRunner)
	if err != nil {
		t.Fatal(err)
	}
	cbAcc, noPFQAcc := s.Summary[0], s.Summary[2]
	if cbAcc < 90 {
		t.Errorf("cbPred mean accuracy %.1f%%; paper ≥98%%", cbAcc)
	}
	if cbAcc < noPFQAcc {
		t.Errorf("PFQ filter did not improve accuracy: %.1f%% vs %.1f%%", cbAcc, noPFQAcc)
	}
}

func TestStorageOverheads(t *testing.T) {
	rep, err := StorageOverheads()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, row := range rep.Rows {
		byName[row.Name] = row.KB()
	}
	total := byName["dpPred+cbPred total"]
	if total < 10.5 || total > 11.2 {
		t.Errorf("total storage %.2f KB; paper says ≈10.81 KB", total)
	}
	if aip := byName["AIP (LLT+LLC)"]; aip < 6*total {
		t.Errorf("AIP %.1f KB not ≥6× the proposal %.1f KB", aip, total)
	}
	if ship := byName["SHiP (LLT+LLC)"]; ship < 4*total {
		t.Errorf("SHiP %.1f KB not several× the proposal %.1f KB", ship, total)
	}
	if !strings.Contains(rep.Format(), "dpPred") {
		t.Error("Format output missing rows")
	}
}

func TestSeriesFormat(t *testing.T) {
	s := Series{
		ID: "Figure X", Title: "demo", Unit: "u",
		Cols: []string{"a", "b"},
		Rows: []SeriesRow{{Name: "w1", Values: []float64{1.234, 56.78}}},
	}
	s.summarize("mean", mean)
	out := s.Format()
	for _, want := range []string{"Figure X", "workload", "w1", "1.234", "56.78", "mean"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestGeomeanAndMean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g != 4 {
		t.Errorf("geomean(2,8) = %v, want 4", g)
	}
	if m := mean([]float64{1, 3}); m != 2 {
		t.Errorf("mean(1,3) = %v, want 2", m)
	}
	if pct := pctReduction(10, 9); pct != 10 {
		t.Errorf("pctReduction(10,9) = %v, want 10", pct)
	}
	if pct := pctReduction(0, 5); pct != 0 {
		t.Errorf("pctReduction(0,5) = %v, want 0", pct)
	}
}

func TestFormatHandlesNaN(t *testing.T) {
	s := Series{
		ID: "X", Title: "nan demo", Cols: []string{"a"},
		Rows: []SeriesRow{{Name: "w", Values: []float64{math.NaN()}}},
	}
	out := s.Format()
	if !strings.Contains(out, "-") {
		t.Errorf("NaN cell not rendered as dash:\n%s", out)
	}
}

func TestGeomeanRejectsNonPositive(t *testing.T) {
	if !math.IsNaN(geomean([]float64{1, 0})) {
		t.Error("geomean with zero should be NaN")
	}
	if !math.IsNaN(geomean(nil)) {
		t.Error("geomean of nothing should be NaN")
	}
	if !math.IsNaN(mean(nil)) {
		t.Error("mean of nothing should be NaN")
	}
}

func TestFormatCellWidths(t *testing.T) {
	cases := map[float64]string{
		123.456: "123.5",
		12.345:  "12.35",
		1.2345:  "1.234",
	}
	for v, want := range cases {
		if got := formatCell(v); got != want {
			t.Errorf("formatCell(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestRunnerParamsExposed(t *testing.T) {
	p := Params{Warmup: 1, Measure: 2, Seed: 3, SampleEvery: 4}
	if got := NewRunner(p).Params(); got != p {
		t.Errorf("Params() = %+v, want %+v", got, p)
	}
}
