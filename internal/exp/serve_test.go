package exp

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/serve"
	"repro/internal/pred"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestHistogramsDeterministicAcrossJobs: histogram buckets are atomic and
// commutative and probes read deterministic simulations, so the full
// metrics state after a grid must be byte-identical whatever the
// worker-pool width — same contract TestParallelMatchesSequential pins for
// results.
func TestHistogramsDeterministicAcrossJobs(t *testing.T) {
	ws := []trace.Workload{testWorkload(t, "cc"), testWorkload(t, "sssp")}
	setups := []Setup{Baseline(), DPPredSetup(), DPPredCBPredSetup()}
	grid := func(jobs int) (map[string]obs.HistogramSnapshot, obs.Snapshot) {
		t.Helper()
		r := NewRunner(cancelTestParams)
		r.SetJobs(jobs)
		o := &obs.Observer{Metrics: obs.NewRegistry()}
		r.Observer = o
		if err := r.RunGrid(ws, setups); err != nil {
			t.Fatal(err)
		}
		return o.Metrics.Histograms(), o.Metrics.Snapshot()
	}

	h1, s1 := grid(1)
	h8, s8 := grid(8)
	if !reflect.DeepEqual(h1, h8) {
		t.Fatal("histograms differ between jobs=1 and jobs=8")
	}
	if !reflect.DeepEqual(s1, s8) {
		for name, v := range s1 {
			if s8[name] != v {
				t.Errorf("metric %s: jobs=1 %v, jobs=8 %v", name, v, s8[name])
			}
		}
		t.Fatal("metric snapshots differ between jobs=1 and jobs=8")
	}

	// The telemetry is live, not just registered: per-access latency lands
	// in every run's histogram, and the confusion tracker grades dpPred's
	// predictions.
	if hs := h1["cc/dpPred/hist.mem_latency"]; hs.Count == 0 {
		t.Fatalf("mem-latency histogram empty: %v", reflect.ValueOf(h1).MapKeys())
	}
	if hs := h1["cc/baseline/hist.llt_lifetime"]; hs.Count == 0 {
		t.Fatal("llt-lifetime histogram empty")
	}
	if _, ok := s1["cc/dpPred/conf.llt.premature_rate"]; !ok {
		t.Fatal("confusion premature-rate probe missing from snapshot")
	}
	if s1["cc/dpPred/conf.llt.true_dead"]+s1["cc/dpPred/conf.llt.premature"] !=
		s1["cc/dpPred/pred.tlb.predictions"] {
		t.Fatalf("mirror grading disagrees with dpPred's own prediction count: %v vs %v+%v",
			s1["cc/dpPred/pred.tlb.predictions"],
			s1["cc/dpPred/conf.llt.true_dead"], s1["cc/dpPred/conf.llt.premature"])
	}
}

// TestServeDuringGridCancellation drives the full monitoring plane over
// httptest: /metrics, /status and /events answer mid-grid, cancellation
// mid-run surfaces as failed cells without leaking goroutines, and the
// recovered grid serves histogram series and memo hits.
func TestServeDuringGridCancellation(t *testing.T) {
	g0 := runtime.NumGoroutine()

	r := NewRunner(cancelTestParams)
	r.SetJobs(2)
	board := serve.NewBoard()
	r.Status = board
	o := &obs.Observer{Metrics: obs.NewRegistry()}
	r.Observer = o
	srv := serve.NewServer(o.Metrics, board)
	ts := httptest.NewServer(srv.Handler())

	w := testWorkload(t, "cc")
	started := make(chan struct{})
	release := make(chan struct{})
	slow := Setup{Name: "slow-cell", TLB: func(s *sim.System) (pred.TLBPredictor, error) {
		close(started) // single-flight: constructed exactly once
		<-release
		return newDPPred(s)
	}}

	// Subscribe to the event stream before anything runs, so the cell
	// transitions cannot race past us.
	events, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sseLines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(events.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "data: ") {
				sseLines <- strings.TrimPrefix(line, "data: ")
			}
		}
		close(sseLines)
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	gridErr := make(chan error, 1)
	go func() {
		gridErr <- r.RunGridContext(ctx, []trace.Workload{w}, []Setup{slow, Baseline()})
	}()

	<-started // the slow cell holds its pool slot: the grid is mid-flight

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s mid-grid: status %d err %v", path, resp.StatusCode, err)
		}
		return string(body)
	}
	var st serve.Status
	if err := json.Unmarshal([]byte(get("/status")), &st); err != nil {
		t.Fatalf("mid-grid /status not JSON: %v", err)
	}
	if len(st.Cells) != 2 {
		t.Fatalf("mid-grid status shows %d cells, want 2: %+v", len(st.Cells), st)
	}
	if st.Running == 0 {
		t.Fatalf("mid-grid status shows no running cell: %+v", st)
	}
	get("/metrics") // must answer while simulations run
	get("/healthz")

	// The stream must already have delivered the queued cells and the slow
	// cell's start.
	sawStart := false
	deadline := time.After(5 * time.Second)
	for !sawStart {
		select {
		case line := <-sseLines:
			var ev serve.Event
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("bad SSE payload %q: %v", line, err)
			}
			if ev.Type == "start" && ev.Setup == "slow-cell" {
				sawStart = true
			}
		case <-deadline:
			t.Fatal("SSE stream never delivered the slow cell's start event")
		}
	}

	// Cancel mid-run, then release the gate so the slow cell can observe
	// the cancellation.
	cancel()
	close(release)
	if err := <-gridErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled grid returned %v", err)
	}
	st = board.Status()
	if st.Running != 0 || st.Failed == 0 {
		t.Fatalf("post-cancel status: %+v", st)
	}

	// Recovery: the same runner completes the grid (canceled memos were
	// evicted), a replayed cell counts as a memo hit, and /metrics now
	// carries live histogram series.
	if err := r.RunGrid([]trace.Workload{w}, []Setup{Baseline()}); err != nil {
		t.Fatalf("grid after cancellation failed: %v", err)
	}
	if _, err := r.Run(w, Baseline()); err != nil {
		t.Fatal(err)
	}
	if st = board.Status(); st.MemoHits == 0 {
		t.Fatalf("memoized replay not counted: %+v", st)
	}
	if metrics := get("/metrics"); !strings.Contains(metrics, "hist_mem_latency_bucket") {
		t.Fatalf("post-grid /metrics missing histogram buckets:\n%.2000s", metrics)
	}

	// Tear down the SSE stream and server, then require every goroutine
	// (pool workers, memo waiters, SSE plumbing) to drain.
	events.Body.Close()
	for range sseLines {
	}
	ts.Close()
	leakDeadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > g0+2 && time.Now().Before(leakDeadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > g0+2 {
		t.Errorf("goroutines leaked: %d before, %d after", g0, n)
	}
}
