package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pred"
	"repro/internal/sim"
)

// thresholdSetup is dpPred with a custom prediction threshold (Ablation A).
func thresholdSetup(th uint8) Setup {
	return Setup{
		Name: fmt.Sprintf("dpPred-th%d", th),
		TLB: func(s *sim.System) (pred.TLBPredictor, error) {
			cfg := core.DefaultDPPredConfig(s.LLT().Entries())
			cfg.Threshold = th
			return core.NewDPPred(cfg)
		},
	}
}

// counterBitsSetup is dpPred with a custom pHIST counter width, threshold
// scaled to the top quarter of the counter's range (Ablation B).
func counterBitsSetup(bits uint) Setup {
	return Setup{
		Name: fmt.Sprintf("dpPred-ctr%d", bits),
		TLB: func(s *sim.System) (pred.TLBPredictor, error) {
			cfg := core.DefaultDPPredConfig(s.LLT().Entries())
			cfg.CounterBits = bits
			max := uint8(1<<bits - 1)
			cfg.Threshold = max - max/4 - 1
			return core.NewDPPred(cfg)
		},
	}
}

// AblationThreshold sweeps dpPred's prediction threshold. The paper fixes
// it at 6 (of a 3-bit counter's 0–7 range) and notes for canneal/Triangle
// that "the statically set threshold … turns out to be too conservative";
// this ablation quantifies the trade: lower thresholds raise coverage and
// lower accuracy, risking the wrongful bypasses the shadow table then has
// to absorb.
func AblationThreshold(r *Runner) (Series, error) {
	thresholds := []uint8{2, 4, 6}
	setups := make([]Setup, len(thresholds))
	cols := make([]string, len(thresholds))
	for i, th := range thresholds {
		setups[i] = thresholdSetup(th)
		cols[i] = fmt.Sprintf("threshold %d", th)
	}
	s, err := r.ipcSeries("Ablation A",
		"dpPred prediction threshold (paper default: 6)",
		Baseline(), setups)
	if err != nil {
		return Series{}, err
	}
	s.Cols = cols
	return s, nil
}

// AblationCounterBits sweeps the width of pHIST's saturating counters with
// the threshold scaled proportionally (predict when the counter is in the
// top quarter of its range), isolating the cost of the 3-bit choice §V-D
// budgets for.
func AblationCounterBits(r *Runner) (Series, error) {
	widths := []uint{2, 3, 4}
	setups := make([]Setup, len(widths))
	cols := make([]string, len(widths))
	for i, bits := range widths {
		setups[i] = counterBitsSetup(bits)
		cols[i] = fmt.Sprintf("%d-bit", bits)
	}
	s, err := r.ipcSeries("Ablation B",
		"pHIST counter width (paper default: 3-bit, threshold 6)",
		Baseline(), setups)
	if err != nil {
		return Series{}, err
	}
	s.Cols = cols
	return s, nil
}
