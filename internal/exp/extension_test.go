package exp

import "testing"

// tinyRunner keeps the extension smoke tests fast; the quickRunner's
// memoized baselines are reused where setups overlap.
func TestExtensionPrefetchShape(t *testing.T) {
	s, err := ExtensionPrefetch(quickRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cols) != 3 || len(s.Rows) != 14 {
		t.Fatalf("grid %dx%d, want 14x3", len(s.Rows), len(s.Cols))
	}
	dp, pf, both := s.Summary[0], s.Summary[1], s.Summary[2]
	if dp <= 1.0 {
		t.Errorf("dpPred geomean %.4f ≤ 1", dp)
	}
	// Low-priority prefetching must never be broadly harmful: it only
	// uses idle walker slots.
	if pf < 0.99 {
		t.Errorf("distance prefetching geomean %.4f; idle-slot prefetching should not hurt", pf)
	}
	// Bypassing beats prefetching overall on this suite (§VII:
	// "prefetching does not perform well across all applications").
	if dp < pf {
		t.Errorf("prefetching geomean %.4f beats dpPred %.4f", pf, dp)
	}
	// The combination should not collapse below either component.
	if both < dp-0.03 || both < pf-0.03 {
		t.Errorf("combination %.4f collapses below components dp=%.4f pf=%.4f", both, dp, pf)
	}
}

func TestExtensionDIPShape(t *testing.T) {
	s, err := ExtensionDIP(quickRunner)
	if err != nil {
		t.Fatal(err)
	}
	dp, dip, combo := s.Summary[0], s.Summary[1], s.Summary[2]
	if dip <= 0.97 {
		t.Errorf("DIP-LLT geomean %.4f; thrash-resistant insertion should not hurt broadly", dip)
	}
	if combo < dip-0.03 && combo < dp-0.03 {
		t.Errorf("DIP+dpPred %.4f worse than both components (dp %.4f, dip %.4f)", combo, dp, dip)
	}
}

func TestAblationThresholdShape(t *testing.T) {
	s, err := AblationThreshold(quickRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cols) != 3 {
		t.Fatalf("%d columns, want 3", len(s.Cols))
	}
	// Every threshold must still be net-positive; the default (6) must
	// not be badly beaten by more aggressive settings on the geomean.
	for i, v := range s.Summary {
		if v < 0.99 {
			t.Errorf("%s geomean %.4f < 0.99", s.Cols[i], v)
		}
	}
}

func TestAblationCounterBitsShape(t *testing.T) {
	s, err := AblationCounterBits(quickRunner)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range s.Summary {
		if v < 0.99 {
			t.Errorf("%s geomean %.4f < 0.99", s.Cols[i], v)
		}
	}
}
