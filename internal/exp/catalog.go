package exp

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/pred"
)

// The setup catalog maps every standard setup name — everything the
// experiment suite (figures, tables, sensitivity, ablations, extensions,
// the registry arena) can put in a grid — back to its exact construction.
// It is what lets a cell cross a process boundary: Setup carries closures
// (Config, TLB, LLC, Prefetch) that cannot be serialized, but its Name
// already contracts to identify the full behavior (the in-process memo is
// name-keyed), so a worker that resolves the name through the same catalog
// rebuilds a bit-identical machine. Setups outside the catalog — tests'
// ad-hoc constructions — simply stay local: the coordinator's executor
// declines them and the runner falls back to in-process simulation.

var (
	catalogOnce sync.Once
	catalogMap  map[string]Setup
)

// buildCatalog assembles the name → Setup map from the same constructors
// the experiment functions use, so catalog and experiments cannot drift.
func buildCatalog() {
	catalogMap = make(map[string]Setup)
	add := func(setups ...Setup) {
		for _, s := range setups {
			if _, ok := catalogMap[s.Name]; ok {
				panic(fmt.Sprintf("exp: duplicate catalog setup %q", s.Name))
			}
			catalogMap[s.Name] = s
		}
	}

	// Baseline and characterization.
	add(Baseline(), characterizationSetup())

	// Every registered predictor (the arena), resolved exactly as
	// Table4Extended and the historical constructors do. This covers
	// dpPred, dpPred+cbPred, AIP/SHiP on both sides, and all competitors.
	for _, name := range pred.Names() {
		su, err := SetupFor(name)
		if err != nil {
			panic(err) // registered names must resolve
		}
		add(su)
	}

	// Combined and special configurations of the main results.
	add(AIPBothSetup(), SHiPBothSetup(), IsoStorageSetup(), OracleSetup())

	// Accuracy-table variants with non-default predictor configs.
	add(dpPredNoShadowSetup(), cbPredNoPFQSetup())

	// Sensitivity sweeps (Figure 11).
	for _, n := range []int{512, 1024, 1536} {
		cfgFn := lltSizeConfig(n)
		add(Setup{Name: fmt.Sprintf("base-llt%d", n), Config: cfgFn},
			Setup{Name: fmt.Sprintf("dpPred-llt%d", n), Config: cfgFn, TLB: newDPPred})
	}
	add(dpPredVariant("dpPred-6pc5vpn", func(c *core.DPPredConfig) { c.VPNBits = 5 }),
		dpPredVariant("dpPred-10pc", func(c *core.DPPredConfig) { c.PCBits, c.VPNBits = 10, 0 }),
		dpPredVariant("dpPred-sh4", func(c *core.DPPredConfig) { c.ShadowEntries = 4 }),
		cbPredVariant("dpPred+cbPred-pfq64", 64))
	for _, kb := range []int{2048, 3072} {
		cfgFn := llcSizeConfig(kb)
		add(Setup{Name: fmt.Sprintf("base-llc%d", kb), Config: cfgFn},
			Setup{Name: fmt.Sprintf("dpPred+cbPred-llc%d", kb), Config: cfgFn, TLB: newDPPred, LLC: newCBPred})
	}
	add(Setup{Name: "srrip-llt", Config: srripConfig(false)},
		Setup{Name: "srrip-dpPred", Config: srripConfig(false), TLB: newDPPred},
		Setup{Name: "srrip-llt-llc", Config: srripConfig(true)},
		Setup{Name: "srrip-cbPred", Config: srripConfig(true), TLB: newDPPred, LLC: newCBPred})

	// Extensions and ablations.
	add(distancePrefetchSetup(), dpPredPrefetchSetup(), dipLLTSetup(), dipDPPredSetup())
	for _, th := range []uint8{2, 4, 6} {
		add(thresholdSetup(th))
	}
	for _, bits := range []uint{2, 3, 4} {
		add(counterBitsSetup(bits))
	}
}

// ResolveSetup rebuilds a standard setup from its name. A trailing "+acc"
// resolves the base name and enables mirror-structure accuracy grading,
// exactly as withAccuracy does for the Table VI/VII grids. ok=false means
// the name is not in the catalog (an ad-hoc test setup) and the cell must
// run wherever the Setup value lives.
func ResolveSetup(name string) (Setup, bool) {
	catalogOnce.Do(buildCatalog)
	if base, found := strings.CutSuffix(name, "+acc"); found {
		su, ok := catalogMap[base]
		if !ok {
			return Setup{}, false
		}
		return withAccuracy(su), true
	}
	su, ok := catalogMap[name]
	return su, ok
}

// CatalogNames lists every resolvable setup name (without the generated
// "+acc" variants), sorted; tests sweep it to prove catalog completeness.
func CatalogNames() []string {
	catalogOnce.Do(buildCatalog)
	names := make([]string, 0, len(catalogMap))
	for n := range catalogMap {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
