package exp

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// parallelTestParams is deliberately short: the determinism guarantee is
// length-independent, and the grid below covers every runner code path
// (baseline, predictors, the two-pass oracle, accuracy instrumentation and
// the characterization samplers).
var parallelTestParams = Params{Warmup: 15_000, Measure: 45_000, Seed: 7, SampleEvery: 5_000}

func parallelTestGrid(t *testing.T) ([]trace.Workload, []Setup) {
	t.Helper()
	var ws []trace.Workload
	for _, name := range []string{"cc", "sssp", "canneal", "cactusADM"} {
		w, err := trace.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	setups := []Setup{
		Baseline(),
		DPPredSetup(),
		DPPredCBPredSetup(),
		OracleSetup(),
		withAccuracy(DPPredSetup()),
		characterizationSetup(),
	}
	return ws, setups
}

// TestParallelMatchesSequential is the tentpole acceptance test, kept as a
// permanent regression guard: the same seeded grid run with jobs=1 and
// jobs=8 must produce identical result maps, bit for bit.
func TestParallelMatchesSequential(t *testing.T) {
	ws, setups := parallelTestGrid(t)
	collect := func(jobs int) map[string]sim.Result {
		r := NewRunner(parallelTestParams)
		r.SetJobs(jobs)
		if err := r.RunGrid(ws, setups); err != nil {
			t.Fatal(err)
		}
		out := make(map[string]sim.Result)
		for _, w := range ws {
			for _, su := range setups {
				res, err := r.Run(w, su)
				if err != nil {
					t.Fatal(err)
				}
				out[w.Name+"/"+su.Name] = res
			}
		}
		return out
	}

	seq := collect(1)
	par := collect(8)
	if len(seq) != len(par) {
		t.Fatalf("result maps differ in size: sequential %d, parallel %d", len(seq), len(par))
	}
	for key, want := range seq {
		if got := par[key]; got != want {
			t.Errorf("%s: parallel result diverged from sequential:\n  jobs=8: %+v\n  jobs=1: %+v", key, got, want)
		}
	}
}

// TestSingleFlightMemo hammers one memo key from many goroutines: the
// simulation must run exactly once and every caller must observe the same
// result.
func TestSingleFlightMemo(t *testing.T) {
	r := NewRunner(Params{Warmup: 5_000, Measure: 15_000, Seed: 1, SampleEvery: 5_000})
	r.SetJobs(8)
	var starts atomic.Int64
	r.ProgressStart = func(string, string) { starts.Add(1) }
	w, err := trace.ByName("cc")
	if err != nil {
		t.Fatal(err)
	}

	const callers = 16
	results := make([]sim.Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.Run(w, Baseline())
		}(i)
	}
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i] != results[0] {
			t.Errorf("caller %d saw a different result", i)
		}
	}
	if got := starts.Load(); got != 1 {
		t.Errorf("simulation started %d times, want 1 (single-flight)", got)
	}
}

// TestParallelObserverIsolation runs a grid with jobs=8 against one shared
// observer bundle and checks the isolation guarantees: every run's
// interval samples are contiguous (never interleaved with another run's),
// per-run indexes restart from zero, trace sequence numbers are globally
// monotone, and per-run metric scopes all materialize.
func TestParallelObserverIsolation(t *testing.T) {
	r := NewRunner(Params{Warmup: 10_000, Measure: 30_000, Seed: 1, SampleEvery: 5_000})
	r.SetJobs(8)
	o := &obs.Observer{
		Tracer:   obs.NewTracer(0, obs.NullSink{}),
		Metrics:  obs.NewRegistry(),
		Interval: obs.NewIntervalRecorder(5_000),
	}
	r.Observer = o

	ws, _ := parallelTestGrid(t)
	setups := []Setup{Baseline(), DPPredSetup()}
	if err := r.RunGrid(ws, setups); err != nil {
		t.Fatal(err)
	}

	if o.Tracer.Count() == 0 {
		t.Error("no events traced")
	}
	prevSeq := uint64(0)
	for i, ev := range o.Tracer.Events() {
		if i > 0 && ev.Seq <= prevSeq {
			t.Fatalf("trace seq not monotone at ring index %d: %d after %d", i, ev.Seq, prevSeq)
		}
		prevSeq = ev.Seq
	}

	finished := map[string]bool{}
	cur := ""
	lastIdx := -1
	for _, s := range o.Interval.Samples() {
		if s.Run != cur {
			if finished[s.Run] {
				t.Fatalf("interval samples for run %q interleaved with another run", s.Run)
			}
			if cur != "" {
				finished[cur] = true
			}
			cur = s.Run
			lastIdx = -1
		}
		if s.Index != lastIdx+1 {
			t.Fatalf("run %q: sample index %d after %d, want contiguous from 0", s.Run, s.Index, lastIdx)
		}
		lastIdx = s.Index
	}

	snap := o.Metrics.Snapshot()
	for _, w := range ws {
		for _, su := range setups {
			want := w.Name + "/" + su.Name + "/sim.accesses"
			if _, ok := snap[want]; !ok {
				t.Errorf("metrics snapshot missing per-run scope %q", want)
			}
		}
	}
}
