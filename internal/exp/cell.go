package exp

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// cellSchema versions the cell-identity hash. Bump it whenever the meaning
// of a result changes for an unchanged (workload, setup, params) triple —
// e.g. a simulator fix that alters numbers — so persistent memos from
// before the change read as misses instead of serving stale results.
const cellSchema = "dpcell-v1"

// fingerprintCap bounds how many accesses WorkloadFingerprint hashes. The
// generators are deterministic functions of (workload, seed), so a prefix
// pins the whole stream; 64Ki accesses is long enough that two distinct
// generators colliding would have to agree on every PC, address, flag and
// gap for a full warmup's worth of history, and short enough that keying a
// cell costs well under a millisecond.
const fingerprintCap = 65536

// WorkloadFingerprint hashes the identity of a workload's access stream:
// its name, seed, total length, and the first min(n, 64Ki) accesses drawn
// from a fresh generator. Two workloads with equal fingerprints replay the
// same trace; a generator that fails while being fingerprinted surfaces
// its error instead of hashing the latched repeats.
func WorkloadFingerprint(w trace.Workload, seed, n uint64) (string, error) {
	h := sha256.New()
	var hdr [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(hdr[:], v)
		h.Write(hdr[:])
	}
	h.Write([]byte(cellSchema))
	h.Write([]byte(w.Name))
	writeU64(seed)
	writeU64(n)

	g := w.New(seed)
	sample := n
	if sample > fingerprintCap {
		sample = fingerprintCap
	}
	var rec [22]byte
	for i := uint64(0); i < sample; i++ {
		a := g.Next()
		binary.LittleEndian.PutUint64(rec[0:8], a.PC)
		binary.LittleEndian.PutUint64(rec[8:16], uint64(a.Addr))
		binary.LittleEndian.PutUint32(rec[16:20], a.Gap)
		rec[20], rec[21] = 0, 0
		if a.Write {
			rec[20] = 1
		}
		if a.Dependent {
			rec[21] = 1
		}
		h.Write(rec[:])
	}
	if err := trace.GeneratorErr(g); err != nil {
		return "", fmt.Errorf("exp: fingerprinting %s: %w", w.Name, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// CellKey content-addresses one experiment cell: the workload's stream
// fingerprint × the setup's identity × the run parameters. Setup identity
// is its name plus the flags that change what a run computes; the name is
// load-bearing — the in-process memo already requires that equal-named
// setups behave identically, and the persistent memo extends that contract
// across processes (ResolveSetup pins the standard names to exact
// constructions).
func CellKey(workloadFP string, setup Setup, p Params) string {
	h := sha256.New()
	var b [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	writeStr := func(s string) {
		writeU64(uint64(len(s)))
		h.Write([]byte(s))
	}
	writeStr(cellSchema)
	writeStr(workloadFP)
	writeStr(setup.Name)
	flags := uint64(0)
	if setup.Oracle {
		flags |= 1
	}
	if setup.Instrument.Accuracy {
		flags |= 2
	}
	if setup.Instrument.Characterize {
		flags |= 4
	}
	writeU64(flags)
	writeU64(p.Warmup)
	writeU64(p.Measure)
	writeU64(p.Seed)
	writeU64(p.SampleEvery)
	return hex.EncodeToString(h.Sum(nil))
}

// CellMeta travels alongside a memoized result so a memo directory is
// self-describing: which cell a key stands for, in human terms.
type CellMeta struct {
	Workload string `json:"workload"`
	Setup    string `json:"setup"`
	Params   Params `json:"params"`
}

// CellMemo is a persistent result store keyed by CellKey. Get returns
// ok=false for both absent and unreadable entries — a corrupt or truncated
// entry must read as a miss (and may be deleted) so the cell is recomputed
// rather than trusted. Put must be atomic: a crash mid-Put leaves either
// the complete entry or nothing Get would accept. Implementations must be
// safe for concurrent use — the runner consults the memo from every grid
// cell in its worker pool.
type CellMemo interface {
	Get(key string) (sim.Result, bool, error)
	Put(key string, meta CellMeta, res sim.Result) error
}

// CellExecutor lets an external scheduler (expserve's coordinator) execute
// cells the runner would otherwise simulate locally. handled=false means
// the executor does not cover this cell — an unresolvable custom setup —
// and the runner falls back to the local path; with handled=true the
// result and error stand as the cell's outcome.
type CellExecutor func(ctx context.Context, key string, w trace.Workload, setup Setup) (res sim.Result, handled bool, err error)

// cellKey keys a cell for the persistent memo / executor, caching the
// workload fingerprint per workload name (every setup shares it).
func (r *Runner) cellKey(w trace.Workload, setup Setup) (string, error) {
	r.fpMu.Lock()
	fp, ok := r.fpMemo[w.Name]
	r.fpMu.Unlock()
	if !ok {
		f, err := WorkloadFingerprint(w, r.params.Seed, r.params.Warmup+r.params.Measure)
		if err != nil {
			return "", err
		}
		fp = f
		r.fpMu.Lock()
		if r.fpMemo == nil {
			r.fpMemo = make(map[string]string)
		}
		r.fpMemo[w.Name] = fp
		r.fpMu.Unlock()
	}
	return CellKey(fp, setup, r.params), nil
}
