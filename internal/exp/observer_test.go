package exp

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// TestRunnerObserver checks the runner announces each run to the observer
// and that one bundle accumulates labeled series across setups.
func TestRunnerObserver(t *testing.T) {
	r := NewRunner(Params{Warmup: 20_000, Measure: 60_000, Seed: 1, SampleEvery: 5_000})
	o := &obs.Observer{
		Tracer:   obs.NewTracer(0, obs.NullSink{}),
		Metrics:  obs.NewRegistry(),
		Interval: obs.NewIntervalRecorder(10_000),
	}
	r.Observer = o

	w, err := trace.ByName("cc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(w, Baseline()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(w, DPPredSetup()); err != nil {
		t.Fatal(err)
	}

	if o.Tracer.Count() == 0 {
		t.Fatal("no events traced")
	}
	runs := map[string]bool{}
	for _, s := range o.Interval.Samples() {
		runs[s.Run] = true
	}
	if !runs["cc/baseline"] || !runs["cc/dpPred"] {
		t.Fatalf("interval samples missing run labels: %v", runs)
	}
	snap := o.Metrics.Snapshot()
	var sawBaseline, sawDPPred bool
	for name := range snap {
		if strings.HasPrefix(name, "cc/baseline/") {
			sawBaseline = true
		}
		if strings.HasPrefix(name, "cc/dpPred/dppred.") {
			sawDPPred = true
		}
	}
	if !sawBaseline || !sawDPPred {
		t.Fatalf("metrics missing per-run scopes (baseline=%v dppred=%v)", sawBaseline, sawDPPred)
	}
}
