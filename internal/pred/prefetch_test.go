package pred

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func newDP(t *testing.T) *DistancePrefetcher {
	t.Helper()
	p, err := NewDistancePrefetcher(DefaultDistancePrefetcherConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPrefetchValidation(t *testing.T) {
	bad := []DistancePrefetcherConfig{
		{TableBits: 0, Ways: 2},
		{TableBits: 17, Ways: 2},
		{TableBits: 8, Ways: 0},
		{TableBits: 8, Ways: 9},
	}
	for _, cfg := range bad {
		if _, err := NewDistancePrefetcher(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestPrefetchLearnsConstantStride(t *testing.T) {
	p := newDP(t)
	// A constant stride of +3 pages: after the pattern repeats, every
	// miss should prefetch vpn+3.
	vpn := arch.VPN(1000)
	var got []arch.VPN
	for i := 0; i < 10; i++ {
		got = p.OnMiss(vpn, 0x400000)
		vpn += 3
	}
	if len(got) != 1 || got[0] != vpn-3+3 {
		t.Fatalf("after stride training OnMiss returned %v, want [%d]", got, vpn)
	}
}

func TestPrefetchAlternatingPattern(t *testing.T) {
	p := newDP(t)
	// Alternate +5 / +11: each distance should learn the other as its
	// successor, giving correct lookahead on both phases.
	vpn := arch.VPN(5000)
	deltas := []int64{5, 11}
	for i := 0; i < 40; i++ {
		p.OnMiss(vpn, 0x400000)
		vpn += arch.VPN(deltas[i%2])
	}
	// The loop ends after applying +11, so this miss arrives with
	// distance 11, whose learned successor is +5.
	out := p.OnMiss(vpn, 0x400000)
	found := false
	for _, v := range out {
		if v == vpn+5 {
			found = true
		}
	}
	if !found {
		t.Errorf("distance 11 did not predict +5: got %v (vpn=%d)", out, vpn)
	}
}

func TestPrefetchNoPredictionWhenUntrained(t *testing.T) {
	p := newDP(t)
	if out := p.OnMiss(100, 0x400000); out != nil {
		t.Errorf("first miss produced prefetches: %v", out)
	}
	if out := p.OnMiss(200, 0x400000); len(out) != 0 {
		t.Errorf("second miss (untrained distance) produced prefetches: %v", out)
	}
}

func TestPrefetchZeroDistanceIgnored(t *testing.T) {
	p := newDP(t)
	p.OnMiss(100, 0x400000)
	if out := p.OnMiss(100, 0x400000); len(out) != 0 {
		t.Errorf("repeated miss to same page produced prefetches: %v", out)
	}
}

func TestPrefetchNegativeTargetDropped(t *testing.T) {
	p := newDP(t)
	// Train distance −50 → −50, then miss near zero: target would be
	// negative and must be suppressed.
	vpn := arch.VPN(1000)
	for i := 0; i < 10; i++ {
		p.OnMiss(vpn, 0x400000)
		vpn -= 50
	}
	out := p.OnMiss(20, 0x400000) // distance -30; nothing learned for it
	for _, v := range out {
		if int64(v) <= 0 {
			t.Errorf("negative/zero prefetch target %d", v)
		}
	}
}

func TestPrefetchStorage(t *testing.T) {
	p := newDP(t)
	// 256 entries × (16-bit tag + 2×16-bit distances + valid) ≈ 1.5 KB.
	kb := float64(p.StorageBits()) / 8 / 1024
	if kb < 1 || kb > 2 {
		t.Errorf("storage = %.2f KB, want ≈1.5 KB", kb)
	}
}

// Property: prefetch fan-out never exceeds the configured ways.
func TestPrefetchFanoutProperty(t *testing.T) {
	f := func(vpns []uint16) bool {
		p, err := NewDistancePrefetcher(DefaultDistancePrefetcherConfig())
		if err != nil {
			return false
		}
		for _, v := range vpns {
			if len(p.OnMiss(arch.VPN(v)+1, 0x400000)) > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
