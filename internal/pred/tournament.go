// Tournament selection: the DIP set-dueling machinery (policy.Duel)
// applied to whole predictors instead of insertion policies, so dpPred and
// cbPred can be dueled against arena newcomers at runtime. Two contestant
// predictors train side by side on every hook; the guarded structure's
// sets are partitioned into sparse A/B leaders plus followers, a shared
// PSEL counter tallies leader-set misses against their own contestant, and
// each access *applies* only the decision of the side its set selects.
//
// Both contestants observe every OnFill and OnEvict (they train on ground
// truth regardless of who is selected), which keeps the loser warm enough
// to take over when the workload shifts. Metadata fields of the applied
// decision are merged — the selected side wins, the other side's PC hash /
// signature fills any field the winner left zero — so contestants that use
// disjoint Block metadata (dpPred's PCHash, SDBP's Sig) both keep
// training on hits and evictions. Policy-bearing fields (Bypass, Hint,
// PredictDOA, SetDP) come strictly from the selected side. Contestants
// that couple to the guarded structure itself (AccessObserver,
// FillFinisher — AIP, Leeway) are rejected: their per-entry counters would
// fight over the same Block fields.
package pred

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/policy"
)

// tournament is the shared selection state behind the TLB and LLC
// variants.
type tournament struct {
	name  string
	duel  *policy.Duel
	guard *cache.Cache
	selA  uint64 // decisions applied from contestant A
	selB  uint64

	predictions uint64
}

// useB reports whether the set's applied decision comes from contestant B.
func (t *tournament) useB(set int) bool {
	switch t.duel.RoleOf(set) {
	case policy.LeaderA:
		return false
	case policy.LeaderB:
		return true
	default:
		return t.duel.PreferB()
	}
}

// merge applies the metadata-merge rule: policy fields from the selected
// decision, metadata fields backfilled from the other side.
func merge(sel, other Decision) Decision {
	if sel.PCHash == 0 {
		sel.PCHash = other.PCHash
	}
	if sel.Sig == 0 {
		sel.Sig = other.Sig
	}
	return sel
}

// pick counts and returns the applied decision.
func (t *tournament) pick(set int, dA, dB Decision) Decision {
	var d Decision
	if t.useB(set) {
		t.selB++
		d = merge(dB, dA)
	} else {
		t.selA++
		d = merge(dA, dB)
	}
	if d.PredictDOA {
		t.predictions++
	}
	return d
}

// PredictionQuality implements obs.QualitySource, counting applied DOA
// predictions (each contestant additionally reports its own training-side
// counts through its metrics, if registered).
func (t *tournament) PredictionQuality() (uint64, uint64) { return t.predictions, 0 }

// registerMetrics publishes the selector's own probes and forwards to the
// contestants (within a run scope only one predictor guards a structure,
// so probe names cannot collide).
func (t *tournament) registerMetrics(r *obs.Registry, a, b any) {
	r.RegisterProbe("duel.psel", func() float64 { return float64(t.duel.Counter()) })
	r.RegisterProbe("duel.applied_a", func() float64 { return float64(t.selA) })
	r.RegisterProbe("duel.applied_b", func() float64 { return float64(t.selB) })
	for _, p := range []any{a, b} {
		if m, ok := p.(obs.MetricSource); ok {
			m.RegisterMetrics(r)
		}
	}
}

// checkContestant rejects structure-coupled predictors (see package
// comment).
func checkContestant(name string, p any) error {
	if _, ok := p.(AccessObserver); ok {
		return fmt.Errorf("tournament: contestant %s observes structure accesses and cannot be dueled", name)
	}
	if _, ok := p.(FillFinisher); ok {
		return fmt.Errorf("tournament: contestant %s finishes fills in-place and cannot be dueled", name)
	}
	return nil
}

// TournamentTLB duels two TLB predictors over the LLT's sets.
type TournamentTLB struct {
	*tournament
	a, b TLBPredictor
}

// NewTournamentTLB builds a TLB tournament. name labels the selector in
// reports (contestants keep their own names for their metrics); guard is
// the LLT backing structure whose set indices partition the duel.
func NewTournamentTLB(name string, a, b TLBPredictor, guard *cache.Cache) (*TournamentTLB, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("tournament: nil contestant")
	}
	if guard == nil {
		return nil, fmt.Errorf("tournament: nil guarded structure")
	}
	if err := checkContestant(a.Name(), a); err != nil {
		return nil, err
	}
	if err := checkContestant(b.Name(), b); err != nil {
		return nil, err
	}
	return &TournamentTLB{
		tournament: &tournament{name: name, duel: policy.NewDuel(0, 0), guard: guard},
		a:          a,
		b:          b,
	}, nil
}

// Name implements TLBPredictor.
func (t *TournamentTLB) Name() string { return t.name }

// OnHit implements TLBPredictor: both contestants observe the reuse.
func (t *TournamentTLB) OnHit(b *cache.Block) {
	t.a.OnHit(b)
	t.b.OnHit(b)
}

// OnMiss implements TLBPredictor: the miss votes against the set's leader,
// then only the selected contestant's victim buffer is consulted (handing
// the translation to the unselected side would let a losing shadow table
// mask the winner's misses).
func (t *TournamentTLB) OnMiss(vpn arch.VPN, pc uint64) (arch.PFN, bool) {
	set := t.guard.SetIndex(uint64(vpn))
	t.duel.Miss(t.duel.RoleOf(set))
	if t.useB(set) {
		return t.b.OnMiss(vpn, pc)
	}
	return t.a.OnMiss(vpn, pc)
}

// OnFill implements TLBPredictor: both contestants predict and train; the
// set's selected decision is applied.
func (t *TournamentTLB) OnFill(vpn arch.VPN, pfn arch.PFN, pc uint64) Decision {
	dA := t.a.OnFill(vpn, pfn, pc)
	dB := t.b.OnFill(vpn, pfn, pc)
	return t.pick(t.guard.SetIndex(uint64(vpn)), dA, dB)
}

// OnEvict implements TLBPredictor: ground truth trains both sides.
func (t *TournamentTLB) OnEvict(b cache.Block) {
	t.a.OnEvict(b)
	t.b.OnEvict(b)
}

// StorageBits sums the contestants plus the shared PSEL counter (the
// leader mapping is index-derived and free).
func (t *TournamentTLB) StorageBits() uint64 {
	return t.a.StorageBits() + t.b.StorageBits() + t.duel.StorageBits()
}

// RegisterMetrics implements obs.MetricSource.
func (t *TournamentTLB) RegisterMetrics(r *obs.Registry) {
	t.registerMetrics(r, t.a, t.b)
}

// AttachTracer implements obs.TraceAttacher, forwarding to contestants
// that trace.
func (t *TournamentTLB) AttachTracer(tr *obs.Tracer) {
	for _, p := range []any{t.a, t.b} {
		if ta, ok := p.(obs.TraceAttacher); ok {
			ta.AttachTracer(tr)
		}
	}
}

// CloneTLB implements ClonableTLB when both contestants do.
func (t *TournamentTLB) CloneTLB(llt *cache.Cache) (TLBPredictor, error) {
	ca, ok := t.a.(ClonableTLB)
	if !ok {
		return nil, fmt.Errorf("tournament: contestant %s is not clonable", t.a.Name())
	}
	cb, ok := t.b.(ClonableTLB)
	if !ok {
		return nil, fmt.Errorf("tournament: contestant %s is not clonable", t.b.Name())
	}
	a2, err := ca.CloneTLB(llt)
	if err != nil {
		return nil, err
	}
	b2, err := cb.CloneTLB(llt)
	if err != nil {
		return nil, err
	}
	st := *t.tournament
	st.duel = t.duel.Clone()
	st.guard = llt
	return &TournamentTLB{tournament: &st, a: a2, b: b2}, nil
}

// TournamentLLC duels two LLC predictors over the LLC's sets. Every
// OnFill is a miss in its set, which is where the duel trains.
type TournamentLLC struct {
	*tournament
	a, b LLCPredictor
}

// NewTournamentLLC builds an LLC tournament over the LLC backing
// structure.
func NewTournamentLLC(name string, a, b LLCPredictor, guard *cache.Cache) (*TournamentLLC, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("tournament: nil contestant")
	}
	if guard == nil {
		return nil, fmt.Errorf("tournament: nil guarded structure")
	}
	if err := checkContestant(a.Name(), a); err != nil {
		return nil, err
	}
	if err := checkContestant(b.Name(), b); err != nil {
		return nil, err
	}
	return &TournamentLLC{
		tournament: &tournament{name: name, duel: policy.NewDuel(0, 0), guard: guard},
		a:          a,
		b:          b,
	}, nil
}

// Name implements LLCPredictor.
func (t *TournamentLLC) Name() string { return t.name }

// OnHit implements LLCPredictor.
func (t *TournamentLLC) OnHit(b *cache.Block) {
	t.a.OnHit(b)
	t.b.OnHit(b)
}

// OnFill implements LLCPredictor: the fill is this set's miss, so it
// votes against the leader before the selected decision is applied.
func (t *TournamentLLC) OnFill(blockNum uint64, pc uint64) Decision {
	set := t.guard.SetIndex(blockNum)
	t.duel.Miss(t.duel.RoleOf(set))
	dA := t.a.OnFill(blockNum, pc)
	dB := t.b.OnFill(blockNum, pc)
	return t.pick(set, dA, dB)
}

// OnEvict implements LLCPredictor.
func (t *TournamentLLC) OnEvict(b cache.Block) {
	t.a.OnEvict(b)
	t.b.OnEvict(b)
}

// NotifyDOAPage implements DOAPageListener, forwarding the TLB side's
// DOA-page announcements to contestants that consume them (cbPred's PFQ).
func (t *TournamentLLC) NotifyDOAPage(pfn arch.PFN) {
	for _, p := range []any{t.a, t.b} {
		if l, ok := p.(DOAPageListener); ok {
			l.NotifyDOAPage(pfn)
		}
	}
}

// StorageBits sums the contestants plus the shared PSEL counter.
func (t *TournamentLLC) StorageBits() uint64 {
	return t.a.StorageBits() + t.b.StorageBits() + t.duel.StorageBits()
}

// RegisterMetrics implements obs.MetricSource.
func (t *TournamentLLC) RegisterMetrics(r *obs.Registry) {
	t.registerMetrics(r, t.a, t.b)
}

// AttachTracer implements obs.TraceAttacher.
func (t *TournamentLLC) AttachTracer(tr *obs.Tracer) {
	for _, p := range []any{t.a, t.b} {
		if ta, ok := p.(obs.TraceAttacher); ok {
			ta.AttachTracer(tr)
		}
	}
}

// CloneLLC implements ClonableLLC when both contestants do.
func (t *TournamentLLC) CloneLLC(llc *cache.Cache) (LLCPredictor, error) {
	ca, ok := t.a.(ClonableLLC)
	if !ok {
		return nil, fmt.Errorf("tournament: contestant %s is not clonable", t.a.Name())
	}
	cb, ok := t.b.(ClonableLLC)
	if !ok {
		return nil, fmt.Errorf("tournament: contestant %s is not clonable", t.b.Name())
	}
	a2, err := ca.CloneLLC(llc)
	if err != nil {
		return nil, err
	}
	b2, err := cb.CloneLLC(llc)
	if err != nil {
		return nil, err
	}
	st := *t.tournament
	st.duel = t.duel.Clone()
	st.guard = llc
	return &TournamentLLC{tournament: &st, a: a2, b: b2}, nil
}

var (
	_ TLBPredictor      = (*TournamentTLB)(nil)
	_ LLCPredictor      = (*TournamentLLC)(nil)
	_ ClonableTLB       = (*TournamentTLB)(nil)
	_ ClonableLLC       = (*TournamentLLC)(nil)
	_ DOAPageListener   = (*TournamentLLC)(nil)
	_ obs.QualitySource = (*TournamentTLB)(nil)
	_ obs.MetricSource  = (*TournamentTLB)(nil)
	_ obs.TraceAttacher = (*TournamentTLB)(nil)
)
