// Package pred defines the predictor interfaces the simulator drives and
// the baseline predictors the paper compares against: AIP (the
// counter-based access-interval predictor of Kharbutli & Solihin, ICCD
// 2005), SHiP (the signature-based hit predictor of Wu et al., MICRO 2011),
// and the lookahead oracle of §VI-A. The paper's own predictors, dpPred and
// cbPred, live in internal/core and implement the same interfaces.
//
// The simulator calls predictors at four points per structure:
//
//	OnHit   — a lookup hit (the entry's Accessed bit is already set)
//	OnMiss  — a lookup miss, before the downstream request (lets dpPred's
//	          shadow table serve as a victim buffer)
//	OnFill  — a fill is about to allocate; the Decision can bypass it,
//	          demote it, and attach metadata to the new entry
//	OnEvict — an entry was evicted (with its full metadata)
//
// Decisions also carry the predictor's DOA claim so the accuracy/coverage
// instrumentation in internal/stats can grade every fill-time prediction
// against ground truth, independent of how the predictor acts on it.
package pred

import (
	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/policy"
)

// Decision is a predictor's verdict on a fill.
type Decision struct {
	// Bypass suppresses the allocation entirely.
	Bypass bool
	// Hint positions the entry for replacement when it is allocated.
	Hint policy.InsertHint
	// PredictDOA records that the predictor claims the entry will be
	// dead on arrival, for accuracy/coverage grading. Bypassing
	// predictors set it together with Bypass; demoting predictors (SHiP)
	// set it with Hint=InsertDistant.
	PredictDOA bool
	// SetDP marks the new LLC block as belonging to a predicted DOA page
	// (cbPred's DP bit, §V-B).
	SetDP bool
	// PCHash and Sig are metadata to store in the new entry.
	PCHash uint16
	Sig    uint16
}

// TLBPredictor guides LLT management.
type TLBPredictor interface {
	// Name identifies the predictor in reports.
	Name() string
	// OnHit is called after a lookup hit on the entry.
	OnHit(b *cache.Block)
	// OnMiss is called on an LLT miss before the page walk is issued.
	// If the predictor holds the translation in a victim buffer it
	// returns it with handled=true; the simulator then re-inserts the
	// entry into the LLT without walking (Fig. 6a).
	OnMiss(vpn arch.VPN, pc uint64) (pfn arch.PFN, handled bool)
	// OnFill decides what to do with a completed walk's translation.
	OnFill(vpn arch.VPN, pfn arch.PFN, pc uint64) Decision
	// OnEvict is called with the evicted entry.
	OnEvict(b cache.Block)
	// StorageBits reports the predictor's total state overhead in bits,
	// including per-entry metadata it adds to the LLT.
	StorageBits() uint64
}

// LLCPredictor guides LLC management.
type LLCPredictor interface {
	// Name identifies the predictor in reports.
	Name() string
	// OnHit is called after a lookup hit on the block.
	OnHit(b *cache.Block)
	// OnFill decides what to do with an incoming block. blockNum is the
	// physical block number (PAddr >> BlockShift).
	OnFill(blockNum uint64, pc uint64) Decision
	// OnEvict is called with the evicted block.
	OnEvict(b cache.Block)
	// StorageBits reports total state overhead in bits.
	StorageBits() uint64
}

// DOAPageListener is implemented by LLC predictors that consume DOA-page
// notifications from the TLB side (cbPred's PFQ, §V-B). The simulator calls
// it whenever the TLB predictor bypasses a fill.
type DOAPageListener interface {
	NotifyDOAPage(pfn arch.PFN)
}

// AccessObserver is implemented by predictors that must observe every
// access to their structure's set (AIP's access-interval counters).
type AccessObserver interface {
	// OnAccess is called once per lookup with the key being accessed,
	// before the hit/miss outcome is processed.
	OnAccess(key uint64)
}

// NullTLB is the baseline: no prediction, plain LRU allocation.
type NullTLB struct{}

// Name implements TLBPredictor.
func (NullTLB) Name() string { return "baseline" }

// OnHit implements TLBPredictor.
func (NullTLB) OnHit(*cache.Block) {}

// OnMiss implements TLBPredictor.
func (NullTLB) OnMiss(arch.VPN, uint64) (arch.PFN, bool) { return 0, false }

// OnFill implements TLBPredictor.
func (NullTLB) OnFill(arch.VPN, arch.PFN, uint64) Decision { return Decision{} }

// OnEvict implements TLBPredictor.
func (NullTLB) OnEvict(cache.Block) {}

// StorageBits implements TLBPredictor.
func (NullTLB) StorageBits() uint64 { return 0 }

// NullLLC is the baseline LLC: no prediction.
type NullLLC struct{}

// Name implements LLCPredictor.
func (NullLLC) Name() string { return "baseline" }

// OnHit implements LLCPredictor.
func (NullLLC) OnHit(*cache.Block) {}

// OnFill implements LLCPredictor.
func (NullLLC) OnFill(uint64, uint64) Decision { return Decision{} }

// OnEvict implements LLCPredictor.
func (NullLLC) OnEvict(cache.Block) {}

// StorageBits implements LLCPredictor.
func (NullLLC) StorageBits() uint64 { return 0 }

var (
	_ TLBPredictor = NullTLB{}
	_ LLCPredictor = NullLLC{}
)
