package pred

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
)

func testLeeway(t *testing.T, guard *cache.Cache) *LeewayTLB {
	t.Helper()
	if guard == nil {
		guard = testGuard(t, 16, 4)
	}
	l, err := NewLeewayTLB(DefaultLeewayTLBConfig(guard.Capacity()), guard)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// evict feeds one observed generation for a signature: accessed entries
// report their deepest reuse interval, untouched entries observe zero.
func leewayEvict(l *LeewayTLB, sig uint16, accessed bool, maxInterval uint16) {
	l.OnEvict(cache.Block{PCHash: sig, Accessed: accessed, AIPMax: maxInterval})
}

// TestLeewayCounterBoundsUnderRandomStream is the satellite property test:
// live distances never exceed 2^LDBits-1 and variability counters stay in
// the signed 4-bit range, whatever the eviction stream.
func TestLeewayCounterBoundsUnderRandomStream(t *testing.T) {
	l := testLeeway(t, nil)
	rng := rand.New(rand.NewSource(3))
	// A small signature pool hammers each entry through many conflicting
	// generations, including observations past the LD saturation point.
	for i := 0; i < 50_000; i++ {
		sig := uint16(rng.Intn(32))
		leewayEvict(l, sig, rng.Intn(4) != 0, uint16(rng.Intn(1<<16)))
	}
	for sig, e := range l.table {
		if e.ld > l.ldMax {
			t.Fatalf("table[%d].ld = %d, outside [0,%d]", sig, e.ld, l.ldMax)
		}
		if e.vr < l.vrMin || e.vr > l.vrMax {
			t.Fatalf("table[%d].vr = %d, outside [%d,%d]", sig, e.vr, l.vrMin, l.vrMax)
		}
	}
	if l.vrMin != -8 || l.vrMax != 7 {
		t.Fatalf("4-bit variability range is [%d,%d], want [-8,7]", l.vrMin, l.vrMax)
	}
	if l.ldMax != 1023 {
		t.Fatalf("10-bit live distance saturates at %d, want 1023", l.ldMax)
	}
}

// TestLeewayStableZeroPredictsDOA: a signature whose generations are
// consistently untouched becomes a stable zero and its fills are demoted.
func TestLeewayStableZeroPredictsDOA(t *testing.T) {
	l := testLeeway(t, nil)
	const pc = 0x1040
	sig := l.signature(pc)
	if d := l.OnFill(0, 0, pc); d.PredictDOA {
		t.Fatal("untrained signature predicted DOA")
	}
	for i := 0; i < 4; i++ {
		leewayEvict(l, sig, false, 0)
	}
	d := l.OnFill(0, 0, pc)
	if !d.PredictDOA || d.Hint == 0 {
		t.Fatalf("stable-zero signature not demoted: %+v", d)
	}
	if d.PCHash != sig {
		t.Fatalf("decision carries signature %d, want %d", d.PCHash, sig)
	}
	// One live generation makes the signature variable again: no kill.
	leewayEvict(l, sig, true, 9)
	if d := l.OnFill(0, 0, pc); d.PredictDOA {
		t.Fatal("variable signature still predicted DOA")
	}
}

// TestLeewayGrowsImmediatelyShrinksWhenStable exercises the asymmetric
// update rule that distinguishes Leeway from point-estimate predictors.
func TestLeewayGrowsImmediatelyShrinksWhenStable(t *testing.T) {
	l := testLeeway(t, nil)
	const sig = 7
	leewayEvict(l, sig, true, 5) // install: ld=5, vr=0
	if e := l.table[sig]; !e.valid || e.ld != 5 || e.vr != 0 {
		t.Fatalf("install: %+v", e)
	}
	leewayEvict(l, sig, true, 10) // underprediction: grow unconditionally
	if e := l.table[sig]; e.ld != 10 || e.vr != 1 {
		t.Fatalf("after growth: %+v", e)
	}
	leewayEvict(l, sig, true, 3) // variable (vr=1 > 0): no shrink
	if e := l.table[sig]; e.ld != 10 || e.vr != 2 {
		t.Fatalf("variable shrink should be refused: %+v", e)
	}
	// Agreeing generations decay variability back to stable.
	leewayEvict(l, sig, true, 10)
	leewayEvict(l, sig, true, 10)
	leewayEvict(l, sig, true, 10)
	if e := l.table[sig]; e.vr != -1 {
		t.Fatalf("agreement should decay vr below zero: %+v", e)
	}
	leewayEvict(l, sig, true, 3) // stable now: shrink applies
	if e := l.table[sig]; e.ld != 3 {
		t.Fatalf("stable shrink refused: %+v", e)
	}
}

// TestLeewayFillDoneLoadsPrediction: a new entry inherits its signature's
// live distance and confidence through the FillFinisher hook.
func TestLeewayFillDoneLoadsPrediction(t *testing.T) {
	l := testLeeway(t, nil)
	const sig = 11
	leewayEvict(l, sig, true, 42)
	leewayEvict(l, sig, true, 42) // agreement → vr=-1, stable
	b := cache.Block{PCHash: sig}
	l.OnFillDone(&b)
	if b.AIPThreshold != 42 || !b.AIPConf {
		t.Fatalf("fill-done loaded threshold=%d conf=%v, want 42/true", b.AIPThreshold, b.AIPConf)
	}
	var untrained cache.Block
	untrained.PCHash = 12
	l.OnFillDone(&untrained)
	if untrained.AIPThreshold != 0 || untrained.AIPConf {
		t.Fatalf("untrained signature loaded %d/%v", untrained.AIPThreshold, untrained.AIPConf)
	}
}

// TestLeewayMarksResidentDead drives the AccessObserver path: a confident
// resident entry whose interval counter passes its live distance is marked
// dead in the guarded structure.
func TestLeewayMarksResidentDead(t *testing.T) {
	guard := testGuard(t, 4, 2)
	l := testLeeway(t, guard)
	// Install two entries in set 0; give one a confident live distance
	// of 2 set-accesses.
	stale, _, _ := guard.Fill(0, 0, 1)
	stale.AIPThreshold = 2
	stale.AIPConf = true
	guard.Fill(4, 0, 2)
	// Accesses to the *other* key age the stale entry past its distance.
	for i := 0; i < 4; i++ {
		l.OnAccess(4)
	}
	if l.kills == 0 {
		t.Fatal("expired confident entry was never marked dead")
	}
}

func TestLeewayCloneIndependence(t *testing.T) {
	l := testLeeway(t, nil)
	leewayEvict(l, 5, true, 100)
	cp, err := l.CloneTLB(testGuard(t, 16, 4))
	if err != nil {
		t.Fatal(err)
	}
	c := cp.(*LeewayTLB)
	leewayEvict(c, 5, true, 900)
	if l.table[5].ld != 100 {
		t.Fatalf("training the clone mutated the original (ld=%d)", l.table[5].ld)
	}
	if c.table[5].ld != 900 {
		t.Fatalf("clone did not train (ld=%d)", c.table[5].ld)
	}
}

func TestLeewayConfigValidation(t *testing.T) {
	guard := testGuard(t, 16, 4)
	bad := []LeewayConfig{
		{SigBits: 0, LDBits: 10, VarBits: 4},
		{SigBits: 17, LDBits: 10, VarBits: 4},
		{SigBits: 10, LDBits: 0, VarBits: 4},
		{SigBits: 10, LDBits: 17, VarBits: 4},
		{SigBits: 10, LDBits: 10, VarBits: 1},
		{SigBits: 10, LDBits: 10, VarBits: 9},
	}
	for i, cfg := range bad {
		if _, err := NewLeewayTLB(cfg, guard); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if _, err := NewLeewayTLB(DefaultLeewayTLBConfig(64), nil); err == nil {
		t.Fatal("nil guard accepted")
	}
}
