package pred

import (
	"strings"
	"testing"

	"repro/internal/cache"
)

// okReg builds a minimally valid registration for error-path tests.
func okReg(name string, kind Kind) Registration {
	r := Registration{
		Name:        name,
		Kind:        kind,
		StorageBits: func(int) uint64 { return 1 },
	}
	switch kind {
	case KindTLB:
		r.NewTLB = func(*cache.Cache) (TLBPredictor, error) { return NullTLB{}, nil }
	case KindLLC:
		r.NewLLC = func(*cache.Cache) (LLCPredictor, error) { return NullLLC{}, nil }
	}
	return r
}

func wantErr(t *testing.T, err error, frag string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want error containing %q, got nil", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not mention %q", err, frag)
	}
}

func TestRegistryRejectsEmptyName(t *testing.T) {
	rs := newRegistrySet()
	r := okReg("", KindTLB)
	wantErr(t, rs.Register(r), "empty name")
}

func TestRegistryRejectsKindConstructorMismatch(t *testing.T) {
	rs := newRegistrySet()

	r := okReg("x", KindTLB)
	r.NewTLB = nil
	wantErr(t, rs.Register(r), "without a NewTLB constructor")

	r = okReg("y", KindLLC)
	r.NewLLC = nil
	wantErr(t, rs.Register(r), "without a NewLLC constructor")

	r = okReg("z", KindTLB)
	r.Kind = 0
	wantErr(t, rs.Register(r), "invalid kind")
}

func TestRegistryRejectsMissingAccounting(t *testing.T) {
	rs := newRegistrySet()
	r := okReg("x", KindTLB)
	r.StorageBits = nil
	wantErr(t, rs.Register(r), "without storage-budget accounting")
}

func TestRegistryRejectsZeroBudget(t *testing.T) {
	rs := newRegistrySet()
	r := okReg("free-lunch", KindTLB)
	r.StorageBits = func(int) uint64 { return 0 }
	err := rs.Register(r)
	wantErr(t, err, "zero-budget registration")
	wantErr(t, err, "free-lunch")
}

func TestRegistryRejectsDuplicate(t *testing.T) {
	rs := newRegistrySet()
	if err := rs.Register(okReg("twin", KindTLB)); err != nil {
		t.Fatal(err)
	}
	wantErr(t, rs.Register(okReg("twin", KindLLC)), `duplicate predictor registration "twin"`)
}

func TestRegistryLookupUnknownListsRegistered(t *testing.T) {
	rs := newRegistrySet()
	for _, n := range []string{"beta", "alpha"} {
		if err := rs.Register(okReg(n, KindTLB)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := rs.Lookup("gamma")
	wantErr(t, err, `unknown predictor "gamma"`)
	wantErr(t, err, "registered: alpha, beta")
}

func TestRegistryLookupCaseInsensitive(t *testing.T) {
	rs := newRegistrySet()
	if err := rs.Register(okReg("SHiP-TLB", KindTLB)); err != nil {
		t.Fatal(err)
	}
	r, err := rs.Lookup("ship-tlb")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "SHiP-TLB" {
		t.Fatalf("case-insensitive lookup resolved %q", r.Name)
	}
}

func TestRegistryNamesSortedAndFiltered(t *testing.T) {
	rs := newRegistrySet()
	for _, r := range []Registration{okReg("c", KindTLB), okReg("a", KindLLC), okReg("b", KindTLB)} {
		if err := rs.Register(r); err != nil {
			t.Fatal(err)
		}
	}
	all := rs.Names(0)
	if got, want := strings.Join(all, ","), "a,b,c"; got != want {
		t.Fatalf("Names(0) = %v, want %v", all, want)
	}
	tlbs := rs.Names(KindTLB)
	if got, want := strings.Join(tlbs, ","), "b,c"; got != want {
		t.Fatalf("Names(KindTLB) = %v, want %v", tlbs, want)
	}
}

// TestDefaultRegistryConstructsAll builds every predictor this package
// registers over a small structure and checks its budget accounting is
// live (internal/core's registrations are exercised by the exp-layer
// tests, which import both packages).
func TestDefaultRegistryConstructsAll(t *testing.T) {
	for _, name := range Names() {
		reg, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		guard, err := cache.New(cache.Config{Name: "guard", Sets: 64, Ways: 4})
		if err != nil {
			t.Fatal(err)
		}
		var bits uint64
		switch reg.Kind {
		case KindTLB:
			p, err := reg.NewTLB(guard)
			if err != nil {
				t.Fatalf("%s: NewTLB: %v", name, err)
			}
			if p.Name() != name {
				t.Fatalf("%s: predictor names itself %q", name, p.Name())
			}
			bits = p.StorageBits()
		case KindLLC:
			p, err := reg.NewLLC(guard)
			if err != nil {
				t.Fatalf("%s: NewLLC: %v", name, err)
			}
			if p.Name() != name {
				t.Fatalf("%s: predictor names itself %q", name, p.Name())
			}
			bits = p.StorageBits()
		default:
			t.Fatalf("%s: bad kind %v", name, reg.Kind)
		}
		if bits == 0 {
			t.Fatalf("%s: built predictor reports zero storage", name)
		}
		if reg.StorageBits(guard.Capacity()) != bits {
			t.Fatalf("%s: registration accounts %d bits, predictor reports %d",
				name, reg.StorageBits(guard.Capacity()), bits)
		}
	}
}
