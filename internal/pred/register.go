package pred

import "repro/internal/cache"

// init registers the package's own competitors. dpPred, cbPred and the
// tournament duels register from internal/core (their defining package).
// The null baseline predictors are deliberately unregistered: the registry
// rejects zero-budget entries, and the baseline is the normalization
// target of every sweep, not a competitor.
func init() {
	MustRegister(Registration{
		Name: "AIP-TLB",
		Kind: KindTLB,
		Caps: Caps{Victimizes: true},
		NewTLB: func(llt *cache.Cache) (TLBPredictor, error) {
			return NewAIPTLB(DefaultAIPTLBConfig(llt.Capacity()), llt)
		},
		StorageBits: func(entries int) uint64 {
			return DefaultAIPTLBConfig(entries).StorageBits()
		},
	})
	MustRegister(Registration{
		Name: "AIP-LLC",
		Kind: KindLLC,
		Caps: Caps{Victimizes: true},
		NewLLC: func(llc *cache.Cache) (LLCPredictor, error) {
			return NewAIPLLC(DefaultAIPLLCConfig(llc.Capacity()), llc)
		},
		StorageBits: func(blocks int) uint64 {
			return DefaultAIPLLCConfig(blocks).StorageBits()
		},
	})
	MustRegister(Registration{
		Name: "SHiP-TLB",
		Kind: KindTLB,
		Caps: Caps{Demotes: true},
		NewTLB: func(llt *cache.Cache) (TLBPredictor, error) {
			return NewSHiPTLB(DefaultSHiPTLBConfig(llt.Capacity()))
		},
		StorageBits: func(entries int) uint64 {
			return DefaultSHiPTLBConfig(entries).StorageBits()
		},
	})
	MustRegister(Registration{
		Name: "SHiP-LLC",
		Kind: KindLLC,
		Caps: Caps{Demotes: true},
		NewLLC: func(llc *cache.Cache) (LLCPredictor, error) {
			return NewSHiPLLC(DefaultSHiPLLCConfig(llc.Capacity()))
		},
		StorageBits: func(blocks int) uint64 {
			return DefaultSHiPLLCConfig(blocks).StorageBits()
		},
	})
	MustRegister(Registration{
		Name: "SDBP-TLB",
		Kind: KindTLB,
		Caps: Caps{Demotes: true},
		NewTLB: func(llt *cache.Cache) (TLBPredictor, error) {
			return NewSDBPTLB(DefaultSDBPTLBConfig(llt.Capacity()), llt)
		},
		StorageBits: func(entries int) uint64 {
			return DefaultSDBPTLBConfig(entries).StorageBits()
		},
	})
	MustRegister(Registration{
		Name: "SDBP-LLC",
		Kind: KindLLC,
		Caps: Caps{Demotes: true},
		NewLLC: func(llc *cache.Cache) (LLCPredictor, error) {
			return NewSDBPLLC(DefaultSDBPLLCConfig(llc.Capacity()), llc)
		},
		StorageBits: func(blocks int) uint64 {
			return DefaultSDBPLLCConfig(blocks).StorageBits()
		},
	})
	MustRegister(Registration{
		Name: "Leeway-TLB",
		Kind: KindTLB,
		Caps: Caps{Demotes: true, Victimizes: true},
		NewTLB: func(llt *cache.Cache) (TLBPredictor, error) {
			return NewLeewayTLB(DefaultLeewayTLBConfig(llt.Capacity()), llt)
		},
		StorageBits: func(entries int) uint64 {
			return DefaultLeewayTLBConfig(entries).StorageBits()
		},
	})
}
