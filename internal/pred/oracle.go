// Oracle — the approximate oracle dead-page predictor of §VI-A (Table IV).
// The paper approximates an oracle "by tracking if a true DOA entry
// replaced a non-DOA entry ... effectively an oracle predictor with a
// lookahead of 1 for each evicted entry", because a full-future oracle is
// impractical to simulate.
//
// We implement the equivalent two-pass construction available to a
// deterministic trace-driven simulator: a first (recording) pass runs the
// baseline LLT and logs, for every fill in per-VPN order, whether the entry
// turned out to be dead on arrival; a second (replay) pass bypasses exactly
// the fills the recording proved DOA. Because a DOA entry by definition
// receives no hit between fill and eviction, bypassing it does not change
// the fill sequence of its own VPN, so per-VPN occurrence indices stay
// aligned between the two passes.
package pred

import (
	"repro/internal/arch"
	"repro/internal/cache"
)

// DOARecord holds per-VPN fill outcomes captured by a RecorderTLB, in fill
// order for each VPN.
type DOARecord struct {
	outcomes map[arch.VPN][]bool
}

// NewDOARecord creates an empty record.
func NewDOARecord() *DOARecord {
	return &DOARecord{outcomes: make(map[arch.VPN][]bool)}
}

// Fills returns the number of recorded fills for vpn.
func (r *DOARecord) Fills(vpn arch.VPN) int { return len(r.outcomes[vpn]) }

// RecorderTLB is a pass-through TLB predictor that captures ground-truth
// DOA outcomes into a DOARecord. It makes no predictions.
type RecorderTLB struct {
	rec *DOARecord
}

// NewRecorderTLB builds a recorder writing into rec.
func NewRecorderTLB(rec *DOARecord) *RecorderTLB {
	return &RecorderTLB{rec: rec}
}

// Name implements TLBPredictor.
func (*RecorderTLB) Name() string { return "oracle-recorder" }

// OnHit implements TLBPredictor.
func (*RecorderTLB) OnHit(*cache.Block) {}

// OnMiss implements TLBPredictor.
func (*RecorderTLB) OnMiss(arch.VPN, uint64) (arch.PFN, bool) { return 0, false }

// OnFill implements TLBPredictor. It appends a pending outcome (resolved at
// eviction; fills still resident at simulation end stay non-DOA, the
// conservative choice).
func (r *RecorderTLB) OnFill(vpn arch.VPN, _ arch.PFN, _ uint64) Decision {
	r.rec.outcomes[vpn] = append(r.rec.outcomes[vpn], false)
	return Decision{}
}

// OnEvict implements TLBPredictor: it resolves the VPN's most recent fill.
// A VPN is resident at most once, so fills and evictions strictly
// alternate per VPN and the last recorded fill is the one being evicted.
func (r *RecorderTLB) OnEvict(b cache.Block) {
	list := r.rec.outcomes[arch.VPN(b.Key)]
	if len(list) == 0 {
		return // eviction of an entry filled before recording began
	}
	list[len(list)-1] = !b.Accessed
}

// StorageBits implements TLBPredictor; a recorder is instrumentation, not
// hardware.
func (*RecorderTLB) StorageBits() uint64 { return 0 }

// OracleTLB replays a DOARecord: it bypasses exactly the fills the
// recording pass proved dead on arrival.
type OracleTLB struct {
	rec  *DOARecord
	next map[arch.VPN]int

	predictions uint64
}

// NewOracleTLB builds the replay predictor from a completed record.
func NewOracleTLB(rec *DOARecord) *OracleTLB {
	return &OracleTLB{rec: rec, next: make(map[arch.VPN]int, len(rec.outcomes))}
}

// Name implements TLBPredictor.
func (*OracleTLB) Name() string { return "oracle" }

// OnHit implements TLBPredictor.
func (*OracleTLB) OnHit(*cache.Block) {}

// OnMiss implements TLBPredictor.
func (*OracleTLB) OnMiss(arch.VPN, uint64) (arch.PFN, bool) { return 0, false }

// OnFill implements TLBPredictor.
func (o *OracleTLB) OnFill(vpn arch.VPN, _ arch.PFN, _ uint64) Decision {
	list := o.rec.outcomes[vpn]
	i := o.next[vpn]
	o.next[vpn] = i + 1
	if i < len(list) && list[i] {
		o.predictions++
		return Decision{Bypass: true, PredictDOA: true}
	}
	return Decision{}
}

// OnEvict implements TLBPredictor.
func (*OracleTLB) OnEvict(cache.Block) {}

// Predictions returns how many fills the oracle bypassed.
func (o *OracleTLB) Predictions() uint64 { return o.predictions }

// StorageBits implements TLBPredictor. An oracle has no hardware budget.
func (*OracleTLB) StorageBits() uint64 { return 0 }

var (
	_ TLBPredictor = (*RecorderTLB)(nil)
	_ TLBPredictor = (*OracleTLB)(nil)
)
