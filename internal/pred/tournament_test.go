package pred

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/policy"
)

// fakeTLB is a scripted contestant: it returns a fixed decision and counts
// every hook so tests can see who trained and who was applied.
type fakeTLB struct {
	name    string
	dec     Decision
	fills   int
	hits    int
	evicts  int
	misses  int
	pfn     arch.PFN
	handled bool
}

func (f *fakeTLB) Name() string        { return f.name }
func (f *fakeTLB) OnHit(*cache.Block)  { f.hits++ }
func (f *fakeTLB) OnEvict(cache.Block) { f.evicts++ }
func (f *fakeTLB) StorageBits() uint64 { return 100 }
func (f *fakeTLB) OnMiss(arch.VPN, uint64) (arch.PFN, bool) {
	f.misses++
	return f.pfn, f.handled
}
func (f *fakeTLB) OnFill(arch.VPN, arch.PFN, uint64) Decision {
	f.fills++
	return f.dec
}

// accessObservingTLB and fillFinishingTLB are structure-coupled
// contestants the tournament must reject.
type accessObservingTLB struct{ fakeTLB }

func (*accessObservingTLB) OnAccess(uint64) {}

type fillFinishingTLB struct{ fakeTLB }

func (*fillFinishingTLB) OnFillDone(*cache.Block) {}

// newFakeDuel builds a tournament over a 64-set guard with contestant A
// predicting DOA (with a PC hash) and contestant B passing (with a
// signature), so the applied side and the metadata merge are both visible
// in the returned decision.
func newFakeDuel(t *testing.T) (*TournamentTLB, *fakeTLB, *fakeTLB) {
	t.Helper()
	a := &fakeTLB{name: "A", dec: Decision{PredictDOA: true, Hint: policy.InsertDistant, PCHash: 7}}
	b := &fakeTLB{name: "B", dec: Decision{Sig: 9}}
	tt, err := NewTournamentTLB("duel(A,B)", a, b, testGuard(t, 64, 4))
	if err != nil {
		t.Fatal(err)
	}
	return tt, a, b
}

// Leader sets repeat every 32 sets: set 0 leads A, set 1 leads B, set 2 is
// a follower (policy.NewDuel defaults).
const (
	leaderASet = arch.VPN(0)
	leaderBSet = arch.VPN(1)
	followSet  = arch.VPN(2)
)

func TestTournamentLeaderSetsApplyTheirSide(t *testing.T) {
	tt, a, b := newFakeDuel(t)

	d := tt.OnFill(leaderASet, 0, 0)
	if !d.PredictDOA || d.PCHash != 7 {
		t.Fatalf("A-leader set did not apply A: %+v", d)
	}
	if d.Sig != 9 {
		t.Fatalf("A's decision missing B's backfilled signature: %+v", d)
	}

	d = tt.OnFill(leaderBSet, 0, 0)
	if d.PredictDOA {
		t.Fatalf("B-leader set applied A's prediction: %+v", d)
	}
	if d.Sig != 9 || d.PCHash != 7 {
		t.Fatalf("metadata merge lost a side: %+v", d)
	}

	if a.fills != 2 || b.fills != 2 {
		t.Fatalf("both contestants must train on every fill: A=%d B=%d", a.fills, b.fills)
	}
}

func TestTournamentFollowerObeysPSEL(t *testing.T) {
	tt, _, _ := newFakeDuel(t)

	if d := tt.OnFill(followSet, 0, 0); !d.PredictDOA {
		t.Fatalf("zero PSEL should prefer A: %+v", d)
	}
	// Misses in A-leader sets vote against A.
	for i := 0; i < 3; i++ {
		tt.OnMiss(leaderASet, 0)
	}
	if d := tt.OnFill(followSet, 0, 0); d.PredictDOA {
		t.Fatalf("followers should have swung to B: %+v", d)
	}
	// Heavier misses in B-leader sets swing the duel back.
	for i := 0; i < 6; i++ {
		tt.OnMiss(leaderBSet, 0)
	}
	if d := tt.OnFill(followSet, 0, 0); !d.PredictDOA {
		t.Fatalf("followers should have swung back to A: %+v", d)
	}
}

func TestTournamentMissConsultsSelectedVictimBufferOnly(t *testing.T) {
	tt, a, b := newFakeDuel(t)
	a.pfn, a.handled = 42, true

	pfn, ok := tt.OnMiss(leaderASet, 0)
	if !ok || pfn != 42 {
		t.Fatalf("A-leader miss not served by A's victim buffer: (%d,%v)", pfn, ok)
	}
	if a.misses != 1 || b.misses != 0 {
		t.Fatalf("losing side's victim buffer was consulted: A=%d B=%d", a.misses, b.misses)
	}
	if _, ok := tt.OnMiss(leaderBSet, 0); ok {
		t.Fatal("B has no victim buffer but the miss was handled")
	}
	if b.misses != 1 {
		t.Fatalf("B-leader miss bypassed B: %d", b.misses)
	}
}

func TestTournamentTrainsBothSidesOnGroundTruth(t *testing.T) {
	tt, a, b := newFakeDuel(t)
	tt.OnHit(&cache.Block{})
	tt.OnEvict(cache.Block{})
	if a.hits != 1 || b.hits != 1 || a.evicts != 1 || b.evicts != 1 {
		t.Fatalf("hooks not forwarded to both sides: A(h=%d,e=%d) B(h=%d,e=%d)",
			a.hits, a.evicts, b.hits, b.evicts)
	}
}

func TestTournamentRejectsCoupledContestants(t *testing.T) {
	guard := testGuard(t, 64, 4)
	plain := &fakeTLB{name: "plain"}

	_, err := NewTournamentTLB("d", &accessObservingTLB{fakeTLB{name: "aip-ish"}}, plain, guard)
	if err == nil || !strings.Contains(err.Error(), "cannot be dueled") {
		t.Fatalf("access-observing contestant accepted: %v", err)
	}
	_, err = NewTournamentTLB("d", plain, &fillFinishingTLB{fakeTLB{name: "leeway-ish"}}, guard)
	if err == nil || !strings.Contains(err.Error(), "cannot be dueled") {
		t.Fatalf("fill-finishing contestant accepted: %v", err)
	}
	if _, err := NewTournamentTLB("d", nil, plain, guard); err == nil {
		t.Fatal("nil contestant accepted")
	}
	if _, err := NewTournamentTLB("d", plain, &fakeTLB{name: "b"}, nil); err == nil {
		t.Fatal("nil guard accepted")
	}
}

func TestTournamentStorageBitsSumsSides(t *testing.T) {
	tt, _, _ := newFakeDuel(t)
	// Two 100-bit fakes plus the shared 11-bit PSEL.
	if got := tt.StorageBits(); got != 211 {
		t.Fatalf("StorageBits = %d, want 211", got)
	}
}

func TestTournamentCloneIndependence(t *testing.T) {
	guard := testGuard(t, 64, 4)
	a, err := NewSDBPTLB(smallSDBPConfig(), guard)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSDBPTLB(DefaultSDBPTLBConfig(guard.Capacity()), guard)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := NewTournamentTLB("duel(S,S)", a, b, guard)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := tt.CloneTLB(testGuard(t, 64, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tt.OnMiss(leaderASet, 0)
	}
	if got := cp.(*TournamentTLB).duel.Counter(); got != 0 {
		t.Fatalf("original's votes leaked into the clone's PSEL: %d", got)
	}

	// Scripted fakes are not clonable and must refuse cleanly.
	ft, _, _ := newFakeDuel(t)
	if _, err := ft.CloneTLB(guard); err == nil {
		t.Fatal("clone of unclonable contestants accepted")
	}
}

// fakeLLC mirrors fakeTLB on the LLC interface; the listener variant
// records forwarded DOA-page notifications.
type fakeLLC struct {
	name  string
	dec   Decision
	fills int
}

func (f *fakeLLC) Name() string        { return f.name }
func (f *fakeLLC) OnHit(*cache.Block)  {}
func (f *fakeLLC) OnEvict(cache.Block) {}
func (f *fakeLLC) StorageBits() uint64 { return 50 }
func (f *fakeLLC) OnFill(uint64, uint64) Decision {
	f.fills++
	return f.dec
}

type listenerLLC struct {
	fakeLLC
	doa int
}

func (l *listenerLLC) NotifyDOAPage(arch.PFN) { l.doa++ }

func TestTournamentLLCVotesAndForwardsDOA(t *testing.T) {
	a := &listenerLLC{fakeLLC: fakeLLC{name: "A", dec: Decision{SetDP: true}}}
	b := &fakeLLC{name: "B"}
	tt, err := NewTournamentLLC("duel(A,B)", a, b, testGuard(t, 64, 16))
	if err != nil {
		t.Fatal(err)
	}

	// Every LLC fill is its set's miss: A-leader fills vote against A.
	if d := tt.OnFill(0, 0); !d.SetDP {
		t.Fatalf("A-leader set did not apply A: %+v", d)
	}
	if tt.duel.Counter() != 1 {
		t.Fatalf("fill in an A-leader set did not vote: %d", tt.duel.Counter())
	}
	if a.fills != 1 || b.fills != 1 {
		t.Fatalf("both contestants must train on every fill: A=%d B=%d", a.fills, b.fills)
	}

	tt.NotifyDOAPage(5)
	if a.doa != 1 {
		t.Fatalf("DOA-page notification not forwarded to the listening side: %d", a.doa)
	}
}
