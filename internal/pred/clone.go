package pred

import (
	"repro/internal/arch"
	"repro/internal/cache"
)

// ClonableTLB is implemented by TLB predictors whose state can be deep-
// copied for warm-state forking. The forked system passes its own LLT
// backing structure so predictors that hold a pointer to the guarded
// structure (AIP) rebind to the clone rather than aliasing the original.
//
// The two-pass oracle and its recorder deliberately do not implement it:
// their record/replay protocol is tied to a single cold run.
type ClonableTLB interface {
	CloneTLB(llt *cache.Cache) (TLBPredictor, error)
}

// ClonableLLC is the LLC-side counterpart of ClonableTLB.
type ClonableLLC interface {
	CloneLLC(llc *cache.Cache) (LLCPredictor, error)
}

// CloneTLB implements ClonableTLB; the null predictor is stateless.
func (p NullTLB) CloneTLB(*cache.Cache) (TLBPredictor, error) { return p, nil }

// CloneLLC implements ClonableLLC; the null predictor is stateless.
func (p NullLLC) CloneLLC(*cache.Cache) (LLCPredictor, error) { return p, nil }

// clone deep-copies the SHCT.
func (s *ship) clone() *ship {
	c := *s
	c.shct = append([]uint8(nil), s.shct...)
	return &c
}

// CloneTLB implements ClonableTLB.
func (s *SHiPTLB) CloneTLB(*cache.Cache) (TLBPredictor, error) {
	return &SHiPTLB{ship: s.ship.clone()}, nil
}

// CloneLLC implements ClonableLLC.
func (s *SHiPLLC) CloneLLC(*cache.Cache) (LLCPredictor, error) {
	return &SHiPLLC{ship: s.ship.clone()}, nil
}

// clone deep-copies the prediction table and rebinds the guarded structure.
func (a *aip) clone(target *cache.Cache) *aip {
	c := *a
	c.target = target
	rows := len(a.table)
	cols := len(a.table[0])
	c.table = make([][]aipEntry, rows)
	backing := make([]aipEntry, rows*cols)
	for r := range c.table {
		copy(backing[r*cols:(r+1)*cols], a.table[r])
		c.table[r] = backing[r*cols : (r+1)*cols]
	}
	return &c
}

// CloneTLB implements ClonableTLB: the copy guards the forked LLT.
func (a *AIPTLB) CloneTLB(llt *cache.Cache) (TLBPredictor, error) {
	return &AIPTLB{aip: a.aip.clone(llt)}, nil
}

// CloneLLC implements ClonableLLC: the copy guards the forked LLC.
func (a *AIPLLC) CloneLLC(llc *cache.Cache) (LLCPredictor, error) {
	return &AIPLLC{aip: a.aip.clone(llc)}, nil
}

// Clone deep-copies the prefetcher (distance table with per-entry successor
// slices, miss contexts, counters) for warm-state forking.
func (p *DistancePrefetcher) Clone() *DistancePrefetcher {
	c := *p
	c.table = make([]distEntry, len(p.table))
	for i, e := range p.table {
		c.table[i] = e
		c.table[i].next = append([]int64(nil), e.next...)
	}
	c.ctx = append([]missContext(nil), p.ctx...)
	c.out = make([]arch.VPN, 0, cap(p.out))
	return &c
}

var (
	_ ClonableTLB = NullTLB{}
	_ ClonableLLC = NullLLC{}
	_ ClonableTLB = (*SHiPTLB)(nil)
	_ ClonableLLC = (*SHiPLLC)(nil)
	_ ClonableTLB = (*AIPTLB)(nil)
	_ ClonableLLC = (*AIPLLC)(nil)
)
