// SHiP — the Signature-based Hit Predictor of Wu et al. (MICRO 2011), the
// second baseline of §VI. SHiP associates each fill with a signature (here,
// a hash of the filling PC), stores the signature with the entry, and
// trains a table of saturating counters (the SHCT): a re-referenced entry
// increments its signature's counter; an entry evicted without re-reference
// decrements it. A fill whose signature counter is zero is predicted to
// have a *distant* re-reference interval.
//
// Following §VI-A: "Since the baseline replacement policy is LRU, we adapt
// SHiP to mark entries predicted to have distant re-reference as LRU" — a
// distant prediction inserts the entry at the LRU position (or RRPV=3
// under SRRIP) rather than bypassing. SHiP-TLB is configured to use storage
// similar to dpPred, indexing the SHCT with an 8-bit hash of the PC.
package pred

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/policy"
	"repro/internal/xhash"
)

// SHiPConfig sizes a SHiP predictor.
type SHiPConfig struct {
	// SigBits is the signature width; the SHCT has 2^SigBits counters.
	SigBits uint
	// CounterBits is the width of each SHCT counter (3 in the paper).
	CounterBits uint
	// Entries is the capacity of the guarded structure (per-entry
	// signature + outcome storage accounting).
	Entries int
}

// DefaultSHiPTLBConfig is SHiP-TLB as §VI-A configures it: an 8-bit PC
// hash, keeping storage comparable with dpPred.
func DefaultSHiPTLBConfig(lltEntries int) SHiPConfig {
	return SHiPConfig{SigBits: 8, CounterBits: 3, Entries: lltEntries}
}

// DefaultSHiPLLCConfig is SHiP-PC at LLC scale: a 14-bit signature, the
// configuration the paper charges ~66 KB for on a 2 MB LLC.
func DefaultSHiPLLCConfig(llcBlocks int) SHiPConfig {
	return SHiPConfig{SigBits: 14, CounterBits: 3, Entries: llcBlocks}
}

// ship is the shared engine behind the TLB and LLC variants.
type ship struct {
	name string
	cfg  SHiPConfig
	shct []uint8
	max  uint8
}

func newSHiP(name string, cfg SHiPConfig) (*ship, error) {
	if cfg.SigBits == 0 || cfg.SigBits > 20 {
		return nil, fmt.Errorf("ship: SigBits must be in [1,20], got %d", cfg.SigBits)
	}
	if cfg.CounterBits == 0 || cfg.CounterBits > 8 {
		return nil, fmt.Errorf("ship: CounterBits must be in [1,8], got %d", cfg.CounterBits)
	}
	s := &ship{
		name: name,
		cfg:  cfg,
		shct: make([]uint8, 1<<cfg.SigBits),
		max:  uint8(1<<cfg.CounterBits - 1),
	}
	// Counters start at zero, as in the original SHiP: untrained
	// signatures predict a distant re-reference interval. Under SHiP's
	// native SRRIP this is nearly free (the default insertion is already
	// "long"), but under the paper's LRU adaptation it makes untrained
	// SHiP aggressive — one source of its accuracy gap vs dpPred (§VI-C).
	return s, nil
}

func (s *ship) signature(pc uint64) uint16 {
	return uint16(xhash.PC(pc, s.cfg.SigBits))
}

// onHit trains upward on the entry's first re-reference.
func (s *ship) onHit(b *cache.Block) {
	if b.Hits != 1 {
		return // already trained this generation
	}
	if c := &s.shct[b.Sig]; *c < s.max {
		*c++
	}
}

// onFill predicts the re-reference interval for the signature.
func (s *ship) onFill(pc uint64) Decision {
	sig := s.signature(pc)
	d := Decision{Sig: sig}
	if s.shct[sig] == 0 {
		d.Hint = policy.InsertDistant
		d.PredictDOA = true
	}
	return d
}

// onEvict trains downward when the entry saw no re-reference.
func (s *ship) onEvict(b cache.Block) {
	if b.Accessed {
		return
	}
	if c := &s.shct[b.Sig]; *c > 0 {
		*c--
	}
}

// StorageBits counts the SHCT plus the per-entry signature and outcome
// bit. Exposed on the config so the registry can account budgets without
// building a predictor.
func (cfg SHiPConfig) StorageBits() uint64 {
	shctBits := (uint64(1) << cfg.SigBits) * uint64(cfg.CounterBits)
	perEntry := uint64(cfg.SigBits+1) * uint64(cfg.Entries)
	return shctBits + perEntry
}

// StorageBits implements the predictors' storage accounting.
func (s *ship) StorageBits() uint64 { return s.cfg.StorageBits() }

// SHiPTLB applies SHiP to the last-level TLB (SHiP-TLB in §VI-A).
type SHiPTLB struct {
	*ship
}

// NewSHiPTLB builds SHiP-TLB.
func NewSHiPTLB(cfg SHiPConfig) (*SHiPTLB, error) {
	s, err := newSHiP("SHiP-TLB", cfg)
	if err != nil {
		return nil, err
	}
	return &SHiPTLB{ship: s}, nil
}

// Name implements TLBPredictor.
func (s *SHiPTLB) Name() string { return s.name }

// OnHit implements TLBPredictor.
func (s *SHiPTLB) OnHit(b *cache.Block) { s.onHit(b) }

// OnMiss implements TLBPredictor.
func (s *SHiPTLB) OnMiss(arch.VPN, uint64) (arch.PFN, bool) { return 0, false }

// OnFill implements TLBPredictor.
func (s *SHiPTLB) OnFill(_ arch.VPN, _ arch.PFN, pc uint64) Decision {
	return s.onFill(pc)
}

// OnEvict implements TLBPredictor.
func (s *SHiPTLB) OnEvict(b cache.Block) { s.onEvict(b) }

// SHiPLLC applies SHiP to the last-level cache (SHiP-LLC in §VI-B).
type SHiPLLC struct {
	*ship
}

// NewSHiPLLC builds SHiP-LLC.
func NewSHiPLLC(cfg SHiPConfig) (*SHiPLLC, error) {
	s, err := newSHiP("SHiP-LLC", cfg)
	if err != nil {
		return nil, err
	}
	return &SHiPLLC{ship: s}, nil
}

// Name implements LLCPredictor.
func (s *SHiPLLC) Name() string { return s.name }

// OnHit implements LLCPredictor.
func (s *SHiPLLC) OnHit(b *cache.Block) { s.onHit(b) }

// OnFill implements LLCPredictor.
func (s *SHiPLLC) OnFill(_ uint64, pc uint64) Decision { return s.onFill(pc) }

// OnEvict implements LLCPredictor.
func (s *SHiPLLC) OnEvict(b cache.Block) { s.onEvict(b) }

var (
	_ TLBPredictor = (*SHiPTLB)(nil)
	_ LLCPredictor = (*SHiPLLC)(nil)
)
