// SDBP — a sampler-based dead block predictor in the style of Khan,
// Jiménez et al. ("Sampling Dead Block Prediction", MICRO 2010), the
// arena's first registry-only competitor. A small decoupled *set sampler*
// observes a sparse subset of the guarded structure's sets with its own
// (deeper) LRU replacement; entries that leave the sampler without reuse
// train "dead" and entries reused inside it train "live". Predictions come
// from a skewed bank of three hashed tables of 2-bit saturating counters:
// a fill whose three counters sum to at least the confidence threshold is
// predicted dead on arrival and demoted to the replacement position (the
// same LRU adaptation §VI-A applies to SHiP — there is no shadow table to
// recover a wrong bypass, so SDBP never bypasses).
//
// Like SHiP, SDBP is purely PC-trained, so it shares SHiP's blindness to
// same-PC mixed-reuse streams; unlike SHiP it decouples training from the
// guarded structure's own replacement depth, which is the sampler's point.
package pred

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/xhash"
)

// SDBPConfig sizes a sampler-based dead block predictor.
type SDBPConfig struct {
	// SamplerSets is the number of sampled sets (clamped to the guarded
	// structure's set count).
	SamplerSets int
	// SamplerAssoc is the sampler's associativity; deeper than the
	// guarded structure so reuse beyond the structure's LRU depth still
	// trains "live".
	SamplerAssoc int
	// TableBits sizes each skewed prediction table at 2^TableBits
	// counters.
	TableBits uint
	// CounterBits is the width of each prediction counter (2 in the
	// original design: counters saturate at 3).
	CounterBits uint
	// Threshold is the confidence bound: a fill is predicted dead when
	// the three skewed counters sum to at least this.
	Threshold int
	// SigBits is the partial-PC signature width stored in sampler
	// entries and guarded entries.
	SigBits uint
	// TagBits is the partial-tag width of sampler entries.
	TagBits uint
	// Entries is the guarded structure's capacity, for per-entry
	// signature storage accounting.
	Entries int
}

// sdbpNumTables is the skew degree: three independently hashed tables
// vote, which tolerates single-table aliasing.
const sdbpNumTables = 3

// DefaultSDBPTLBConfig follows the ChampSim-style SDBP sizing scaled to
// the 1024-entry LLT: 32 sampled sets of 12 ways, three 4096-entry 2-bit
// tables, threshold 8 of a maximum 9.
func DefaultSDBPTLBConfig(lltEntries int) SDBPConfig {
	return SDBPConfig{
		SamplerSets:  32,
		SamplerAssoc: 12,
		TableBits:    12,
		CounterBits:  2,
		Threshold:    8,
		SigBits:      15,
		TagBits:      15,
		Entries:      lltEntries,
	}
}

// DefaultSDBPLLCConfig is the LLC-scale deployment over 2048 sets.
func DefaultSDBPLLCConfig(llcBlocks int) SDBPConfig {
	cfg := DefaultSDBPTLBConfig(llcBlocks)
	cfg.SamplerSets = 64
	return cfg
}

// StorageBits charges the skewed tables, the sampler array (valid bit,
// partial tag, partial PC, 4-bit LRU stamp per entry) and the per-entry
// signature the predictor stores in the guarded structure.
func (cfg SDBPConfig) StorageBits() uint64 {
	tables := uint64(sdbpNumTables) * (uint64(1) << cfg.TableBits) * uint64(cfg.CounterBits)
	perSamplerEntry := uint64(cfg.TagBits) + uint64(cfg.SigBits) + 1 + 4
	sampler := uint64(cfg.SamplerSets) * uint64(cfg.SamplerAssoc) * perSamplerEntry
	perEntry := uint64(cfg.SigBits) * uint64(cfg.Entries)
	return tables + sampler + perEntry
}

// sdbpSkew are the per-table hash constants: each table offsets the
// signature and multiplies by a different odd mixing constant (the
// splitmix64/murmur finalizer multipliers) before folding, so the three
// index functions are pairwise independent — aliases in one table land
// apart in the others.
var sdbpSkew = [sdbpNumTables]struct{ mul, add uint64 }{
	{0x9e3779b97f4a7c15, 0},
	{0xbf58476d1ce4e5b9, 0xdead},
	{0x94d049bb133111eb, 0xbeef},
}

// samplerEntry is one sampler way: partial tag, last filling PC signature
// and an LRU stamp.
type samplerEntry struct {
	tag   uint16
	sig   uint16
	stamp uint32
	valid bool
}

// sdbp is the shared engine behind the TLB and LLC variants.
type sdbp struct {
	name    string
	cfg     SDBPConfig
	tables  [][]uint8 // [table][index], contiguous backing
	sampler []samplerEntry
	guard   *cache.Cache
	stride  int // guarded sets per sampled set
	mask    uint64
	ctrMax  uint8
	clock   uint32

	predictions      uint64
	samplerHits      uint64
	samplerEvictions uint64
}

func newSDBP(name string, cfg SDBPConfig, guard *cache.Cache) (*sdbp, error) {
	if guard == nil {
		return nil, fmt.Errorf("sdbp: nil guarded structure")
	}
	if cfg.TableBits == 0 || cfg.TableBits > 20 {
		return nil, fmt.Errorf("sdbp: TableBits must be in [1,20], got %d", cfg.TableBits)
	}
	if cfg.CounterBits == 0 || cfg.CounterBits > 8 {
		return nil, fmt.Errorf("sdbp: CounterBits must be in [1,8], got %d", cfg.CounterBits)
	}
	if cfg.SamplerSets <= 0 || cfg.SamplerAssoc <= 0 {
		return nil, fmt.Errorf("sdbp: sampler geometry must be positive, got %dx%d",
			cfg.SamplerSets, cfg.SamplerAssoc)
	}
	if cfg.SigBits == 0 || cfg.SigBits > 16 || cfg.TagBits == 0 || cfg.TagBits > 16 {
		return nil, fmt.Errorf("sdbp: SigBits and TagBits must be in [1,16], got %d/%d",
			cfg.SigBits, cfg.TagBits)
	}
	if cfg.Threshold <= 0 || cfg.Threshold > sdbpNumTables*int(1<<cfg.CounterBits-1) {
		return nil, fmt.Errorf("sdbp: Threshold must be in [1,%d], got %d",
			sdbpNumTables*int(1<<cfg.CounterBits-1), cfg.Threshold)
	}
	if cfg.SamplerSets > guard.Sets() {
		cfg.SamplerSets = guard.Sets()
	}
	cols := 1 << cfg.TableBits
	tables := make([][]uint8, sdbpNumTables)
	backing := make([]uint8, sdbpNumTables*cols)
	for t := range tables {
		tables[t] = backing[t*cols : (t+1)*cols]
	}
	return &sdbp{
		name:    name,
		cfg:     cfg,
		tables:  tables,
		sampler: make([]samplerEntry, cfg.SamplerSets*cfg.SamplerAssoc),
		guard:   guard,
		stride:  guard.Sets() / cfg.SamplerSets,
		mask:    uint64(cols - 1),
		ctrMax:  uint8(1<<cfg.CounterBits - 1),
	}, nil
}

// signature folds a PC into the partial-PC width.
func (s *sdbp) signature(pc uint64) uint16 {
	return uint16(xhash.PC(pc, s.cfg.SigBits))
}

// skewIndex hashes a signature into table t's index space. Each table uses
// a distinct add-multiply mix before a self-XOR fold, so aliases in one
// table land apart in the others (the confidence sum then absorbs
// single-table collisions).
func (s *sdbp) skewIndex(sig uint16, t int) int {
	v := (uint64(sig) + sdbpSkew[t].add) * sdbpSkew[t].mul
	v ^= v >> 32
	v ^= v >> s.cfg.TableBits
	return int(v & s.mask)
}

// confidence sums the three skewed counters for a signature.
func (s *sdbp) confidence(sig uint16) int {
	c := 0
	for t := 0; t < sdbpNumTables; t++ {
		c += int(s.tables[t][s.skewIndex(sig, t)])
	}
	return c
}

// train moves all three counters of a signature one step toward dead
// (dir > 0) or live (dir < 0).
func (s *sdbp) train(sig uint16, dir int) {
	for t := 0; t < sdbpNumTables; t++ {
		c := &s.tables[t][s.skewIndex(sig, t)]
		if dir > 0 && *c < s.ctrMax {
			*c++
		} else if dir < 0 && *c > 0 {
			*c--
		}
	}
}

// samplerSet maps a guarded-structure key to its sampler set, or ok=false
// when the key's set is not sampled. Sampled sets are every stride-th set
// of the guarded structure.
func (s *sdbp) samplerSet(key uint64) (int, bool) {
	gset := s.guard.SetIndex(key)
	if s.stride == 0 || gset%s.stride != 0 {
		return 0, false
	}
	sset := gset / s.stride
	if sset >= s.cfg.SamplerSets {
		return 0, false
	}
	return sset, true
}

// observe runs one access through the sampler: a sampler hit trains the
// stored signature live and rewrites it with the current one; a sampler
// miss victimizes the set's LRU entry, training its signature dead if the
// victim was valid.
func (s *sdbp) observe(key uint64, sig uint16) {
	sset, ok := s.samplerSet(key)
	if !ok {
		return
	}
	s.clock++
	tag := uint16(xhash.Fold(key, s.cfg.TagBits))
	ways := s.sampler[sset*s.cfg.SamplerAssoc : (sset+1)*s.cfg.SamplerAssoc]
	victim, victimStamp := 0, ^uint32(0)
	for w := range ways {
		e := &ways[w]
		if e.valid && e.tag == tag {
			s.samplerHits++
			s.train(e.sig, -1)
			e.sig = sig
			e.stamp = s.clock
			return
		}
		if !e.valid {
			// An invalid way is always the preferred victim (and
			// trains nothing).
			victim, victimStamp = w, 0
		} else if e.stamp < victimStamp {
			victim, victimStamp = w, e.stamp
		}
	}
	v := &ways[victim]
	if v.valid {
		// Left the sampler without reuse: the generation was dead.
		s.samplerEvictions++
		s.train(v.sig, +1)
	}
	*v = samplerEntry{tag: tag, sig: sig, stamp: s.clock, valid: true}
}

// onHit feeds the sampler with the reuse (the entry's fill-time signature
// rides in Block.Sig).
func (s *sdbp) onHit(b *cache.Block) {
	s.observe(b.Key, b.Sig)
}

// onFill predicts with the pre-update table state, then trains the
// sampler with the fill.
func (s *sdbp) onFill(key uint64, pc uint64) Decision {
	sig := s.signature(pc)
	d := Decision{Sig: sig}
	if s.confidence(sig) >= s.cfg.Threshold {
		d.Hint = policy.InsertDistant
		d.PredictDOA = true
		s.predictions++
	}
	s.observe(key, sig)
	return d
}

// StorageBits implements the predictors' storage accounting.
func (s *sdbp) StorageBits() uint64 { return s.cfg.StorageBits() }

// CounterHistogram implements obs.CounterHistogrammer over all three
// skewed tables.
func (s *sdbp) CounterHistogram() []uint64 {
	return stats.Histogram8(s.ctrMax, s.tables...)
}

// PredictionQuality implements obs.QualitySource. SDBP has no shadow
// structure, so it detects none of its own premature predictions.
func (s *sdbp) PredictionQuality() (uint64, uint64) { return s.predictions, 0 }

// RegisterMetrics implements obs.MetricSource.
func (s *sdbp) RegisterMetrics(r *obs.Registry) {
	r.RegisterProbe("sdbp.predictions", func() float64 { return float64(s.predictions) })
	r.RegisterProbe("sdbp.sampler_hits", func() float64 { return float64(s.samplerHits) })
	r.RegisterProbe("sdbp.sampler_evictions", func() float64 { return float64(s.samplerEvictions) })
}

// clone deep-copies the engine and rebinds the guarded structure.
func (s *sdbp) clone(guard *cache.Cache) *sdbp {
	c := *s
	c.guard = guard
	cols := len(s.tables[0])
	c.tables = make([][]uint8, sdbpNumTables)
	backing := make([]uint8, sdbpNumTables*cols)
	for t := range c.tables {
		copy(backing[t*cols:(t+1)*cols], s.tables[t])
		c.tables[t] = backing[t*cols : (t+1)*cols]
	}
	c.sampler = append([]samplerEntry(nil), s.sampler...)
	return &c
}

// SDBPTLB applies the sampler-based dead block predictor to the LLT.
type SDBPTLB struct {
	*sdbp
}

// NewSDBPTLB builds SDBP over the LLT backing structure.
func NewSDBPTLB(cfg SDBPConfig, llt *cache.Cache) (*SDBPTLB, error) {
	s, err := newSDBP("SDBP-TLB", cfg, llt)
	if err != nil {
		return nil, err
	}
	return &SDBPTLB{sdbp: s}, nil
}

// Name implements TLBPredictor.
func (s *SDBPTLB) Name() string { return s.name }

// OnHit implements TLBPredictor.
func (s *SDBPTLB) OnHit(b *cache.Block) { s.onHit(b) }

// OnMiss implements TLBPredictor: SDBP has no victim buffer.
func (s *SDBPTLB) OnMiss(arch.VPN, uint64) (arch.PFN, bool) { return 0, false }

// OnFill implements TLBPredictor.
func (s *SDBPTLB) OnFill(vpn arch.VPN, _ arch.PFN, pc uint64) Decision {
	return s.onFill(uint64(vpn), pc)
}

// OnEvict implements TLBPredictor: all training flows through the
// decoupled sampler, never the guarded structure's own evictions.
func (s *SDBPTLB) OnEvict(cache.Block) {}

// CloneTLB implements ClonableTLB.
func (s *SDBPTLB) CloneTLB(llt *cache.Cache) (TLBPredictor, error) {
	return &SDBPTLB{sdbp: s.sdbp.clone(llt)}, nil
}

// SDBPLLC applies the sampler-based dead block predictor to the LLC.
type SDBPLLC struct {
	*sdbp
}

// NewSDBPLLC builds SDBP over the LLC backing structure.
func NewSDBPLLC(cfg SDBPConfig, llc *cache.Cache) (*SDBPLLC, error) {
	s, err := newSDBP("SDBP-LLC", cfg, llc)
	if err != nil {
		return nil, err
	}
	return &SDBPLLC{sdbp: s}, nil
}

// Name implements LLCPredictor.
func (s *SDBPLLC) Name() string { return s.name }

// OnHit implements LLCPredictor.
func (s *SDBPLLC) OnHit(b *cache.Block) { s.onHit(b) }

// OnFill implements LLCPredictor.
func (s *SDBPLLC) OnFill(blockNum uint64, pc uint64) Decision {
	return s.onFill(blockNum, pc)
}

// OnEvict implements LLCPredictor: sampler-trained, see SDBPTLB.OnEvict.
func (s *SDBPLLC) OnEvict(cache.Block) {}

// CloneLLC implements ClonableLLC.
func (s *SDBPLLC) CloneLLC(llc *cache.Cache) (LLCPredictor, error) {
	return &SDBPLLC{sdbp: s.sdbp.clone(llc)}, nil
}

var (
	_ TLBPredictor            = (*SDBPTLB)(nil)
	_ LLCPredictor            = (*SDBPLLC)(nil)
	_ ClonableTLB             = (*SDBPTLB)(nil)
	_ ClonableLLC             = (*SDBPLLC)(nil)
	_ obs.CounterHistogrammer = (*SDBPTLB)(nil)
	_ obs.QualitySource       = (*SDBPTLB)(nil)
	_ obs.MetricSource        = (*SDBPTLB)(nil)
)
