package pred

import "repro/internal/ckpt"

// Warm-state checkpointing for the baseline predictors. The null predictors
// are stateless, so their codecs are no-ops with a section mark; SHiP stores
// its SHCT; AIP stores its two-dimensional threshold table. The two-pass
// oracle and recorder deliberately have no codec — their record/replay
// protocol is tied to a single cold run, so checkpointing them would lie.

// EncodeState serializes nothing (the null predictor is stateless).
func (NullTLB) EncodeState(w *ckpt.Writer) { w.Mark("null-tlb") }

// DecodeState restores nothing.
func (NullTLB) DecodeState(r *ckpt.Reader) error {
	r.Expect("null-tlb")
	return r.Err()
}

// EncodeState serializes nothing (the null predictor is stateless).
func (NullLLC) EncodeState(w *ckpt.Writer) { w.Mark("null-llc") }

// DecodeState restores nothing.
func (NullLLC) DecodeState(r *ckpt.Reader) error {
	r.Expect("null-llc")
	return r.Err()
}

func (s *ship) encodeState(w *ckpt.Writer) {
	w.Mark("ship:" + s.name)
	w.U64(uint64(len(s.shct)))
	w.Binary(s.shct)
}

func (s *ship) decodeState(r *ckpt.Reader) error {
	r.Expect("ship:" + s.name)
	if n := r.U64(); r.Err() == nil && n != uint64(len(s.shct)) {
		r.Failf("ship %s: checkpoint SHCT size %d does not match configured %d",
			s.name, n, len(s.shct))
	}
	r.Binary(s.shct)
	return r.Err()
}

// EncodeState serializes the SHCT for warm-state checkpointing.
func (s *SHiPTLB) EncodeState(w *ckpt.Writer) { s.ship.encodeState(w) }

// DecodeState restores state written by EncodeState.
func (s *SHiPTLB) DecodeState(r *ckpt.Reader) error { return s.ship.decodeState(r) }

// EncodeState serializes the SHCT for warm-state checkpointing.
func (s *SHiPLLC) EncodeState(w *ckpt.Writer) { s.ship.encodeState(w) }

// DecodeState restores state written by EncodeState.
func (s *SHiPLLC) DecodeState(r *ckpt.Reader) error { return s.ship.decodeState(r) }

func (a *aip) encodeState(w *ckpt.Writer) {
	w.Mark("aip:" + a.name)
	rows := len(a.table)
	cols := 0
	if rows > 0 {
		cols = len(a.table[0])
	}
	w.U64(uint64(rows))
	w.U64(uint64(cols))
	for _, row := range a.table {
		for _, e := range row {
			w.U16(e.threshold)
			w.Bool(e.conf)
			w.Bool(e.valid)
		}
	}
}

func (a *aip) decodeState(r *ckpt.Reader) error {
	r.Expect("aip:" + a.name)
	rows := len(a.table)
	cols := 0
	if rows > 0 {
		cols = len(a.table[0])
	}
	if gr, gc := r.U64(), r.U64(); r.Err() == nil &&
		(gr != uint64(rows) || gc != uint64(cols)) {
		r.Failf("aip %s: checkpoint table %d×%d does not match configured %d×%d",
			a.name, gr, gc, rows, cols)
	}
	if r.Err() != nil {
		return r.Err()
	}
	for _, row := range a.table {
		for i := range row {
			row[i] = aipEntry{
				threshold: r.U16(),
				conf:      r.Bool(),
				valid:     r.Bool(),
			}
		}
	}
	return r.Err()
}

// EncodeState serializes the threshold table for warm-state checkpointing.
// The per-entry interval counters live in the guarded structure's blocks and
// are checkpointed with it.
func (a *AIPTLB) EncodeState(w *ckpt.Writer) { a.aip.encodeState(w) }

// DecodeState restores state written by EncodeState.
func (a *AIPTLB) DecodeState(r *ckpt.Reader) error { return a.aip.decodeState(r) }

// EncodeState serializes the threshold table for warm-state checkpointing.
func (a *AIPLLC) EncodeState(w *ckpt.Writer) { a.aip.encodeState(w) }

// DecodeState restores state written by EncodeState.
func (a *AIPLLC) DecodeState(r *ckpt.Reader) error { return a.aip.decodeState(r) }
