// Predictor registry: the arena's directory of competitors. Every
// predictor self-registers (via init in its defining package) under a
// unique name with a constructor, storage-budget accounting and capability
// flags; internal/exp derives its setup lists from registry sweeps and the
// CLIs resolve -tlb/-llc/-predictors names through Lookup, so adding a
// competitor is one registration away from appearing in the extended
// Table IV, deadsim and the differential fuzz harness.
package pred

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cache"
)

// Kind says which structure a registered predictor guards.
type Kind uint8

const (
	// KindTLB predictors guard the last-level TLB.
	KindTLB Kind = iota + 1
	// KindLLC predictors guard the last-level cache.
	KindLLC
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindTLB:
		return "TLB"
	case KindLLC:
		return "LLC"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Caps are a registration's capability flags: which actuation mechanisms
// the predictor uses. The differential harness uses them to decide which
// cross-checks apply (a victimizing predictor legitimately diverges from a
// plain-LRU reference), and exp uses NeedsDOACoupling to pair cbPred-style
// predictors with their TLB-side driver.
type Caps struct {
	// Bypasses: may suppress allocations outright (needs shadow-table
	// style recovery to be safe; dpPred, cbPred).
	Bypasses bool
	// Demotes: inserts predicted-dead entries at the replacement
	// position (SHiP's LRU adaptation, SDBP, Leeway).
	Demotes bool
	// Victimizes: marks resident entries dead to steer victim selection
	// (AIP, Leeway), which makes the guarded structure's eviction order
	// diverge from plain LRU.
	Victimizes bool
	// VictimBuffer: serves misses from a small victim buffer (dpPred's
	// shadow table).
	VictimBuffer bool
	// NeedsDOACoupling: an LLC predictor driven by the TLB side's
	// DOA-page notifications (cbPred's PFQ, §V-B); it only functions
	// alongside dpPred.
	NeedsDOACoupling bool
}

// union merges two capability sets (tournament wrappers expose the union
// of their contestants' capabilities).
func (c Caps) union(o Caps) Caps {
	return Caps{
		Bypasses:         c.Bypasses || o.Bypasses,
		Demotes:          c.Demotes || o.Demotes,
		Victimizes:       c.Victimizes || o.Victimizes,
		VictimBuffer:     c.VictimBuffer || o.VictimBuffer,
		NeedsDOACoupling: c.NeedsDOACoupling || o.NeedsDOACoupling,
	}
}

// Registration describes one arena competitor.
type Registration struct {
	// Name identifies the predictor in reports, flags and goldens.
	Name string
	// Kind says which structure the constructor guards.
	Kind Kind
	// Caps are the predictor's capability flags.
	Caps Caps
	// NewTLB builds the predictor over the guarded LLT backing structure
	// (entry count, set geometry and access counters all come from it).
	// Required for KindTLB.
	NewTLB func(llt *cache.Cache) (TLBPredictor, error)
	// NewLLC is the KindLLC counterpart, over the LLC.
	NewLLC func(llc *cache.Cache) (LLCPredictor, error)
	// StorageBits reports the predictor's storage budget in bits when
	// guarding a structure of the given entry/block count, without
	// building a system — the extended Table IV normalizes columns by
	// it. Registrations with a zero budget are rejected: every real
	// competitor costs state, and a zero answer means the accounting
	// was forgotten.
	StorageBits func(entries int) uint64
}

// storageProbeEntries is the structure size Register validates budgets
// against (the Table I LLT entry count; any positive size would do).
const storageProbeEntries = 1024

// registrySet is an isolated name → Registration directory. The package
// default is what init-time registrations populate; tests exercise error
// paths against private instances.
type registrySet struct {
	mu   sync.Mutex
	regs map[string]Registration
}

// newRegistrySet returns an empty, isolated registry (for tests; the
// package-level Register/Lookup operate on the shared default).
func newRegistrySet() *registrySet { return &registrySet{} }

// Register validates and adds a registration.
func (rs *registrySet) Register(r Registration) error {
	if r.Name == "" {
		return fmt.Errorf("pred: registration with empty name")
	}
	switch r.Kind {
	case KindTLB:
		if r.NewTLB == nil {
			return fmt.Errorf("pred: %s: TLB-kind registration without a NewTLB constructor", r.Name)
		}
	case KindLLC:
		if r.NewLLC == nil {
			return fmt.Errorf("pred: %s: LLC-kind registration without a NewLLC constructor", r.Name)
		}
	default:
		return fmt.Errorf("pred: %s: invalid kind %d", r.Name, r.Kind)
	}
	if r.StorageBits == nil {
		return fmt.Errorf("pred: %s: registration without storage-budget accounting", r.Name)
	}
	if bits := r.StorageBits(storageProbeEntries); bits == 0 {
		return fmt.Errorf("pred: %s: zero-budget registration (StorageBits(%d) = 0); every competitor must account for its state", r.Name, storageProbeEntries)
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if _, dup := rs.regs[r.Name]; dup {
		return fmt.Errorf("pred: duplicate predictor registration %q", r.Name)
	}
	if rs.regs == nil {
		rs.regs = make(map[string]Registration)
	}
	rs.regs[r.Name] = r
	return nil
}

// Lookup resolves a name, case-insensitively. Unknown names list the
// registered set so CLI typos are self-correcting.
func (rs *registrySet) Lookup(name string) (Registration, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if r, ok := rs.regs[name]; ok {
		return r, nil
	}
	for n, r := range rs.regs {
		if strings.EqualFold(n, name) {
			return r, nil
		}
	}
	names := rs.namesLocked(0)
	return Registration{}, fmt.Errorf("pred: unknown predictor %q (registered: %s)", name, strings.Join(names, ", "))
}

// Names returns every registered name, sorted; with a nonzero kind it
// filters to that kind.
func (rs *registrySet) Names(kind Kind) []string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.namesLocked(kind)
}

func (rs *registrySet) namesLocked(kind Kind) []string {
	names := make([]string, 0, len(rs.regs))
	for n, r := range rs.regs {
		if kind != 0 && r.Kind != kind {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// defaultRegistry holds the init-time registrations from internal/pred
// (AIP, SHiP, SDBP, Leeway) and internal/core (dpPred, cbPred and the
// tournament duels).
var defaultRegistry = newRegistrySet()

// Register adds a predictor to the shared registry.
func Register(r Registration) error { return defaultRegistry.Register(r) }

// MustRegister is Register for init functions: a rejected registration is
// a programming error, not a runtime condition.
func MustRegister(r Registration) {
	if err := Register(r); err != nil {
		panic(err)
	}
}

// Lookup resolves a registered predictor by name (case-insensitive);
// unknown names error with the full registered set.
func Lookup(name string) (Registration, error) { return defaultRegistry.Lookup(name) }

// Names lists every registered predictor, sorted by name.
func Names() []string { return defaultRegistry.Names(0) }

// TLBNames lists the registered TLB-side predictors, sorted by name — the
// default extended-Table-IV sweep.
func TLBNames() []string { return defaultRegistry.Names(KindTLB) }

// LLCNames lists the registered LLC-side predictors, sorted by name.
func LLCNames() []string { return defaultRegistry.Names(KindLLC) }
