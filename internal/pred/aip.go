// AIP — the counter-based Access Interval Predictor of Kharbutli & Solihin
// ("Counter-Based Cache Replacement Algorithms", ICCD 2005), the first
// baseline of §VI. AIP learns, per (PC, address) pair, the largest number
// of accesses to a set that a block tolerates between two of its own
// accesses; once a resident block's interval counter exceeds its learned
// threshold with confidence, the block is declared dead and prioritized for
// victimization (the dead-mark bit in internal/cache, set via MarkDead).
//
// As the paper observes (§VI-A), AIP targets *non-DOA* dead entries: a
// block must first exhibit a stable access interval before AIP can predict
// its death, so dead-on-arrival entries — which dominate the LLT — are
// invisible to it. The experiments reproduce exactly this failure mode.
package pred

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/xhash"
)

// AIPConfig sizes an AIP predictor.
type AIPConfig struct {
	// PCBits and AddrBits index the two-dimensional prediction table
	// (the paper configures 256×256 for AIP-TLB, i.e. 8 and 8).
	PCBits   uint
	AddrBits uint
	// ThresholdBits is the width of each stored interval threshold.
	ThresholdBits uint
	// PerEntryBits is the metadata AIP adds to each entry of the
	// structure it guards (the paper charges AIP 21 bits per TLB entry);
	// used only for storage accounting.
	PerEntryBits uint
	// Entries is the entry count of the guarded structure, for storage
	// accounting.
	Entries int
}

// DefaultAIPTLBConfig is the paper's AIP-TLB configuration (§VI-A):
// a 256×256 two-dimensional history table and 21 bits per TLB entry.
func DefaultAIPTLBConfig(lltEntries int) AIPConfig {
	return AIPConfig{
		PCBits:        8,
		AddrBits:      8,
		ThresholdBits: 12,
		PerEntryBits:  21,
		Entries:       lltEntries,
	}
}

// DefaultAIPLLCConfig mirrors the LLC-scale AIP deployment the paper
// charges ~124 KB of state for.
func DefaultAIPLLCConfig(llcBlocks int) AIPConfig {
	return AIPConfig{
		PCBits:        8,
		AddrBits:      8,
		ThresholdBits: 12,
		PerEntryBits:  21,
		Entries:       llcBlocks,
	}
}

type aipEntry struct {
	threshold uint16
	conf      bool
	valid     bool
}

// aip is the shared engine behind the TLB and LLC variants.
type aip struct {
	name   string
	cfg    AIPConfig
	table  [][]aipEntry // [pcHash][addrHash]
	target *cache.Cache
}

func newAIP(name string, cfg AIPConfig, target *cache.Cache) (*aip, error) {
	if cfg.PCBits == 0 || cfg.PCBits > 16 || cfg.AddrBits == 0 || cfg.AddrBits > 16 {
		return nil, fmt.Errorf("aip: index widths must be in [1,16], got PC=%d addr=%d",
			cfg.PCBits, cfg.AddrBits)
	}
	if target == nil {
		return nil, fmt.Errorf("aip: nil target structure")
	}
	rows := 1 << cfg.PCBits
	cols := 1 << cfg.AddrBits
	t := make([][]aipEntry, rows)
	backing := make([]aipEntry, rows*cols)
	for r := range t {
		t[r] = backing[r*cols : (r+1)*cols]
	}
	return &aip{name: name, cfg: cfg, table: t, target: target}, nil
}

func (a *aip) index(pcHash uint16, key uint64) (int, int) {
	return int(pcHash) & (len(a.table) - 1),
		int(xhash.Fold(key, a.cfg.AddrBits))
}

// OnAccess advances the interval counters of every other block in the
// accessed set and re-evaluates deadness.
func (a *aip) OnAccess(key uint64) {
	a.target.BumpSetCounters(key)
	a.target.ForEachInSet(key, func(w int, b *cache.Block) {
		if b.AIPConf && b.AIPCount > b.AIPThreshold {
			a.target.MarkDead(key, w)
		}
	})
}

// onHit folds the observed interval into the generation maximum and resets
// the counter; the structure itself clears the dead-mark on every hit, so
// the revive needs no action here.
func (a *aip) onHit(b *cache.Block) {
	if b.AIPCount > b.AIPMax {
		b.AIPMax = b.AIPCount
	}
	b.AIPCount = 0
}

// onFill loads the learned threshold for the (PC, key) pair.
func (a *aip) onFill(key uint64, pc uint64) Decision {
	pcHash := uint16(xhash.PC(pc, a.cfg.PCBits))
	return Decision{PCHash: pcHash}
}

// loadThreshold initializes a freshly allocated entry from the table.
func (a *aip) loadThreshold(b *cache.Block) {
	r, c := a.index(b.PCHash, b.Key)
	e := a.table[r][c]
	if e.valid {
		b.AIPThreshold = e.threshold
		b.AIPConf = e.conf
	}
}

// onEvict trains the table with the generation's maximum interval.
func (a *aip) onEvict(b cache.Block) {
	max := b.AIPMax
	if b.AIPCount > max {
		// The final (unfinished) interval also bounds liveness.
		max = b.AIPCount
	}
	r, c := a.index(b.PCHash, b.Key)
	e := &a.table[r][c]
	e.conf = e.valid && closeEnough(e.threshold, max)
	e.threshold = max
	e.valid = true
}

// closeEnough reports whether two learned access intervals agree within the
// 25% tolerance the counter-based predictor uses to gain confidence
// (intervals are rarely bit-exact across generations).
func closeEnough(a, b uint16) bool {
	d := int(a) - int(b)
	if d < 0 {
		d = -d
	}
	limit := int(a)/4 + 1
	return d <= limit
}

// StorageBits reports the configuration's total state cost: the 2D table
// plus the per-entry metadata. Exposed on the config so the registry can
// account budgets without building a predictor.
func (cfg AIPConfig) StorageBits() uint64 {
	tableBits := (uint64(1) << cfg.PCBits) * (uint64(1) << cfg.AddrBits) *
		uint64(cfg.ThresholdBits+1) // +1 confidence bit
	entryBits := uint64(cfg.PerEntryBits) * uint64(cfg.Entries)
	return tableBits + entryBits
}

// StorageBits implements the predictors' storage accounting.
func (a *aip) StorageBits() uint64 { return a.cfg.StorageBits() }

// AIPTLB applies AIP to the last-level TLB (AIP-TLB in §VI-A).
type AIPTLB struct {
	*aip
}

// NewAIPTLB builds AIP-TLB over the LLT's backing structure.
func NewAIPTLB(cfg AIPConfig, llt *cache.Cache) (*AIPTLB, error) {
	a, err := newAIP("AIP-TLB", cfg, llt)
	if err != nil {
		return nil, err
	}
	return &AIPTLB{aip: a}, nil
}

// Name implements TLBPredictor.
func (a *AIPTLB) Name() string { return a.name }

// OnHit implements TLBPredictor.
func (a *AIPTLB) OnHit(b *cache.Block) { a.onHit(b) }

// OnMiss implements TLBPredictor. AIP has no victim buffer.
func (a *AIPTLB) OnMiss(arch.VPN, uint64) (arch.PFN, bool) { return 0, false }

// OnFill implements TLBPredictor. AIP never bypasses; it victimizes.
func (a *AIPTLB) OnFill(vpn arch.VPN, _ arch.PFN, pc uint64) Decision {
	return a.onFill(uint64(vpn), pc)
}

// OnFillDone loads the new entry's threshold; the simulator calls it with
// the allocated block.
func (a *AIPTLB) OnFillDone(b *cache.Block) { a.loadThreshold(b) }

// OnEvict implements TLBPredictor.
func (a *AIPTLB) OnEvict(b cache.Block) { a.onEvict(b) }

// AIPLLC applies AIP to the last-level cache (AIP-LLC in §VI-B).
type AIPLLC struct {
	*aip
}

// NewAIPLLC builds AIP-LLC over the LLC's backing structure.
func NewAIPLLC(cfg AIPConfig, llc *cache.Cache) (*AIPLLC, error) {
	a, err := newAIP("AIP-LLC", cfg, llc)
	if err != nil {
		return nil, err
	}
	return &AIPLLC{aip: a}, nil
}

// Name implements LLCPredictor.
func (a *AIPLLC) Name() string { return a.name }

// OnHit implements LLCPredictor.
func (a *AIPLLC) OnHit(b *cache.Block) { a.onHit(b) }

// OnFill implements LLCPredictor.
func (a *AIPLLC) OnFill(blockNum uint64, pc uint64) Decision {
	return a.onFill(blockNum, pc)
}

// OnFillDone loads the new block's threshold.
func (a *AIPLLC) OnFillDone(b *cache.Block) { a.loadThreshold(b) }

// OnEvict implements LLCPredictor.
func (a *AIPLLC) OnEvict(b cache.Block) { a.onEvict(b) }

// FillFinisher is implemented by predictors that must initialize the
// freshly allocated entry after the structure commits a fill (AIP's
// threshold load).
type FillFinisher interface {
	OnFillDone(b *cache.Block)
}

var (
	_ TLBPredictor   = (*AIPTLB)(nil)
	_ LLCPredictor   = (*AIPLLC)(nil)
	_ AccessObserver = (*AIPTLB)(nil)
	_ AccessObserver = (*AIPLLC)(nil)
	_ FillFinisher   = (*AIPTLB)(nil)
	_ FillFinisher   = (*AIPLLC)(nil)
)
