// Distance-based TLB prefetching (Kandiraju & Sivasubramaniam, ISCA 2002),
// which the paper discusses as the strongest of the classic TLB-prefetch
// schemes (§VII: "distance-based prefetching gives the best performance
// for most workloads. However, prefetching does not perform well across
// all applications"). It is implemented here as an *extension* so that the
// bypass approach (dpPred) can be compared — and combined — with a
// prefetch approach on equal footing; see exp.ExtensionPrefetch.
//
// The predictor tracks the distance (in pages) between consecutive LLT
// misses. A distance table maps the previous distance to the distances
// that followed it historically; on a miss with distance d, the entries
// recorded under d are used to prefetch vpn+d' for each predicted next
// distance d'.
package pred

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/xhash"
)

// DistancePrefetcherConfig sizes the prefetcher.
type DistancePrefetcherConfig struct {
	// TableBits sizes the distance table (2^TableBits entries).
	TableBits uint
	// Ways is how many successor distances each entry remembers (and
	// thus the maximum prefetches per miss).
	Ways int
	// ContextBits sizes the context table that tracks the last miss per
	// address region (16 MB granularity), separating the interleaved
	// miss streams of distinct data structures. Without separation the
	// global distance sequence is garbage on multi-stream applications —
	// the failure mode Kandiraju & Sivasubramaniam report for naive
	// distance prefetching.
	ContextBits uint
	// DistanceBits is the stored distance width, for storage accounting.
	DistanceBits uint
}

// DefaultDistancePrefetcherConfig mirrors the classic configuration: a
// 256-entry, 2-way distance table with 64 PC contexts.
func DefaultDistancePrefetcherConfig() DistancePrefetcherConfig {
	return DistancePrefetcherConfig{TableBits: 8, Ways: 2, ContextBits: 6, DistanceBits: 16}
}

// TLBPrefetcher produces prefetch candidates on LLT misses. The simulator
// installs returned translations (if mapped) into the LLT off the critical
// path, charging only page-walker occupancy.
type TLBPrefetcher interface {
	// Name identifies the prefetcher.
	Name() string
	// OnMiss observes a demand miss (with the PC that caused it) and
	// returns VPNs to prefetch.
	OnMiss(vpn arch.VPN, pc uint64) []arch.VPN
	// StorageBits reports state overhead in bits.
	StorageBits() uint64
}

// distEntry remembers the successor distances observed after a distance.
type distEntry struct {
	valid bool
	tag   int64
	next  []int64
	cur   int // round-robin replacement cursor
}

// missContext is the per-region state separating concurrent miss streams.
type missContext struct {
	lastVPN  arch.VPN
	lastDist int64
	started  bool
}

// DistancePrefetcher is the distance-table prefetcher.
type DistancePrefetcher struct {
	cfg   DistancePrefetcherConfig
	table []distEntry
	ctx   []missContext

	issued uint64
	out    []arch.VPN // reused buffer
}

// NewDistancePrefetcher builds the prefetcher.
func NewDistancePrefetcher(cfg DistancePrefetcherConfig) (*DistancePrefetcher, error) {
	if cfg.TableBits == 0 || cfg.TableBits > 16 {
		return nil, fmt.Errorf("prefetch: TableBits must be in [1,16], got %d", cfg.TableBits)
	}
	if cfg.Ways < 1 || cfg.Ways > 8 {
		return nil, fmt.Errorf("prefetch: Ways must be in [1,8], got %d", cfg.Ways)
	}
	if cfg.ContextBits == 0 || cfg.ContextBits > 12 {
		return nil, fmt.Errorf("prefetch: ContextBits must be in [1,12], got %d", cfg.ContextBits)
	}
	p := &DistancePrefetcher{
		cfg:   cfg,
		table: make([]distEntry, 1<<cfg.TableBits),
		ctx:   make([]missContext, 1<<cfg.ContextBits),
		out:   make([]arch.VPN, 0, cfg.Ways),
	}
	return p, nil
}

// Name implements TLBPrefetcher.
func (p *DistancePrefetcher) Name() string { return "distance-prefetch" }

func (p *DistancePrefetcher) index(d int64) *distEntry {
	h := xhash.Fold(uint64(d), p.cfg.TableBits)
	return &p.table[h]
}

// regionShift maps VPNs to 16 MB context regions (2^12 pages).
const regionShift = 12

// OnMiss implements TLBPrefetcher. The PC is accepted for interface
// symmetry with the predictors; contexts are keyed by address region,
// which separates data-structure streams more reliably than instruction
// sites in loop nests with many memory operations.
func (p *DistancePrefetcher) OnMiss(vpn arch.VPN, _ uint64) []arch.VPN {
	p.out = p.out[:0]
	c := &p.ctx[xhash.Fold(uint64(vpn)>>regionShift, p.cfg.ContextBits)]
	if !c.started {
		c.started = true
		c.lastVPN = vpn
		return nil
	}
	dist := int64(vpn) - int64(c.lastVPN)
	c.lastVPN = vpn
	if dist == 0 {
		return nil
	}

	// Train: the previous distance led to this one.
	if c.lastDist != 0 {
		e := p.index(c.lastDist)
		if !e.valid || e.tag != c.lastDist {
			*e = distEntry{valid: true, tag: c.lastDist, next: make([]int64, 0, p.cfg.Ways)}
		}
		e.learn(dist, p.cfg.Ways)
	}
	c.lastDist = dist

	// Predict: what followed this distance before?
	e := p.index(dist)
	if e.valid && e.tag == dist {
		for _, d := range e.next {
			target := int64(vpn) + d
			if target > 0 {
				p.out = append(p.out, arch.VPN(target))
			}
		}
		p.issued += uint64(len(p.out))
	}
	return p.out
}

// learn records a successor distance, keeping at most ways distinct values
// with round-robin replacement.
func (e *distEntry) learn(d int64, ways int) {
	for _, have := range e.next {
		if have == d {
			return
		}
	}
	if len(e.next) < ways {
		e.next = append(e.next, d)
		return
	}
	e.next[e.cur] = d
	e.cur = (e.cur + 1) % ways
}

// Issued returns the total number of prefetches produced.
func (p *DistancePrefetcher) Issued() uint64 { return p.issued }

// StorageBits implements TLBPrefetcher: the distance table (tag + ways ×
// distance + valid per entry) plus the per-PC contexts (VPN + distance).
func (p *DistancePrefetcher) StorageBits() uint64 {
	perEntry := uint64(p.cfg.DistanceBits) * (1 + uint64(p.cfg.Ways))
	table := uint64(len(p.table)) * (perEntry + 1)
	ctx := uint64(len(p.ctx)) * (arch.VPNBits + uint64(p.cfg.DistanceBits) + 1)
	return table + ctx
}

var _ TLBPrefetcher = (*DistancePrefetcher)(nil)
