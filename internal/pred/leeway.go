// Leeway — a reuse-variability-aware dead page predictor in the style of
// Faldu & Grot ("Leeway: Addressing Variability in Dead-Block Prediction
// for Last-Level Caches", PACT 2017), the arena's second registry-only
// competitor. Leeway learns, per PC signature, a *live distance*: how far
// into an entry's residency its last reuse lands, here measured in
// accesses to the entry's set (the same interval currency AIP uses, so
// the guarded structure's existing per-entry counters carry it). The
// novelty over AIP is the update policy: instead of trusting the last
// generation, Leeway tracks each signature's reuse *variability* and
// adapts — stable signatures shrink their live distance aggressively,
// variable signatures only grow it, which avoids the premature kills that
// plague point-estimate predictors on irregular workloads.
//
// Actuation: a resident entry whose set-access interval exceeds its
// predicted live distance (with low variability) is marked dead for
// preferred victimization; a signature with a *stable zero* live distance
// is dead on arrival and inserted at the replacement position. Like SDBP
// there is no shadow structure, so Leeway never bypasses.
package pred

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/xhash"
)

// LeewayConfig sizes a Leeway predictor.
type LeewayConfig struct {
	// SigBits indexes the live-distance table with a PC hash; the table
	// has 2^SigBits entries.
	SigBits uint
	// LDBits is the stored live-distance width; observations saturate
	// at 2^LDBits - 1.
	LDBits uint
	// VarBits is the width of the per-signature variability counter,
	// a saturating counter in [-2^(VarBits-1), 2^(VarBits-1)-1] that
	// decays toward negative (stable) on agreeing generations.
	VarBits uint
	// PerEntryBits is the metadata charged per guarded entry (signature,
	// interval counters, confidence bit), for storage accounting.
	PerEntryBits uint
	// Entries is the guarded structure's capacity, for storage
	// accounting.
	Entries int
}

// DefaultLeewayTLBConfig scales Leeway to the LLT: a 1024-entry live
// distance table (10-bit PC hash), 10-bit distances, 4-bit variability.
func DefaultLeewayTLBConfig(lltEntries int) LeewayConfig {
	return LeewayConfig{
		SigBits:      10,
		LDBits:       10,
		VarBits:      4,
		PerEntryBits: 21,
		Entries:      lltEntries,
	}
}

// StorageBits charges the live-distance table (distance + variability +
// valid bit per entry) and the per-entry metadata.
func (cfg LeewayConfig) StorageBits() uint64 {
	table := (uint64(1) << cfg.SigBits) * uint64(cfg.LDBits+cfg.VarBits+1)
	perEntry := uint64(cfg.PerEntryBits) * uint64(cfg.Entries)
	return table + perEntry
}

// leewayEntry is one signature's learned state.
type leewayEntry struct {
	ld    uint16 // predicted live distance, in set accesses
	vr    int8   // variability counter; <= 0 means stable
	valid bool
}

// LeewayTLB applies the reuse-variability dead page predictor to the LLT.
type LeewayTLB struct {
	cfg    LeewayConfig
	table  []leewayEntry
	target *cache.Cache
	ldMax  uint16
	vrMin  int8
	vrMax  int8

	predictions uint64
	kills       uint64 // resident entries marked dead
}

// NewLeewayTLB builds Leeway over the LLT backing structure.
func NewLeewayTLB(cfg LeewayConfig, llt *cache.Cache) (*LeewayTLB, error) {
	if llt == nil {
		return nil, fmt.Errorf("leeway: nil target structure")
	}
	if cfg.SigBits == 0 || cfg.SigBits > 16 {
		return nil, fmt.Errorf("leeway: SigBits must be in [1,16], got %d", cfg.SigBits)
	}
	if cfg.LDBits == 0 || cfg.LDBits > 16 {
		return nil, fmt.Errorf("leeway: LDBits must be in [1,16], got %d", cfg.LDBits)
	}
	if cfg.VarBits < 2 || cfg.VarBits > 8 {
		return nil, fmt.Errorf("leeway: VarBits must be in [2,8], got %d", cfg.VarBits)
	}
	return &LeewayTLB{
		cfg:    cfg,
		table:  make([]leewayEntry, 1<<cfg.SigBits),
		target: llt,
		ldMax:  uint16(1<<cfg.LDBits - 1),
		vrMin:  int8(-(1 << (cfg.VarBits - 1))),
		vrMax:  int8(1<<(cfg.VarBits-1) - 1),
	}, nil
}

// Name implements TLBPredictor.
func (l *LeewayTLB) Name() string { return "Leeway-TLB" }

// signature folds the filling PC into the table index width.
func (l *LeewayTLB) signature(pc uint64) uint16 {
	return uint16(xhash.PC(pc, l.cfg.SigBits))
}

// OnAccess implements AccessObserver: every set access advances the
// resident entries' interval counters, and any entry past its predicted
// live distance with a stable signature is marked dead for preferred
// victimization.
func (l *LeewayTLB) OnAccess(key uint64) {
	l.target.BumpSetCounters(key)
	l.target.ForEachInSet(key, func(w int, b *cache.Block) {
		if b.AIPConf && b.AIPCount > b.AIPThreshold {
			l.target.MarkDead(key, w)
			l.kills++
		}
	})
}

// OnHit implements TLBPredictor: fold the observed interval into the
// generation's live distance and restart the interval.
func (l *LeewayTLB) OnHit(b *cache.Block) {
	if b.AIPCount > b.AIPMax {
		b.AIPMax = b.AIPCount
	}
	b.AIPCount = 0
}

// OnMiss implements TLBPredictor: Leeway has no victim buffer.
func (l *LeewayTLB) OnMiss(arch.VPN, uint64) (arch.PFN, bool) { return 0, false }

// OnFill implements TLBPredictor: a signature with a stable zero live
// distance is predicted dead on arrival and demoted.
func (l *LeewayTLB) OnFill(_ arch.VPN, _ arch.PFN, pc uint64) Decision {
	sig := l.signature(pc)
	d := Decision{PCHash: sig}
	e := l.table[sig]
	if e.valid && e.ld == 0 && e.vr <= 0 {
		d.Hint = policy.InsertDistant
		d.PredictDOA = true
		l.predictions++
	}
	return d
}

// OnFillDone implements FillFinisher: the new entry inherits its
// signature's predicted live distance; confidence is low variability.
func (l *LeewayTLB) OnFillDone(b *cache.Block) {
	e := l.table[b.PCHash]
	if e.valid {
		b.AIPThreshold = e.ld
		b.AIPConf = e.vr <= 0
	}
}

// OnEvict implements TLBPredictor: train the signature with the
// generation's observed live distance under the variability-aware policy —
// grow immediately, shrink only while the signature is stable.
func (l *LeewayTLB) OnEvict(b cache.Block) {
	observed := uint16(0)
	if b.Accessed {
		observed = b.AIPMax
		if observed > l.ldMax {
			observed = l.ldMax
		}
	}
	e := &l.table[b.PCHash]
	if !e.valid {
		*e = leewayEntry{ld: observed, vr: 0, valid: true}
		return
	}
	if observed == e.ld {
		// Agreement: decay toward stable.
		if e.vr > l.vrMin {
			e.vr--
		}
		return
	}
	// Disagreement: more variable.
	if e.vr < l.vrMax {
		e.vr++
	}
	if observed > e.ld {
		// Underpredicting a live distance kills live entries; grow
		// unconditionally.
		e.ld = observed
	} else if e.vr <= 0 {
		// Shrink only while the signature's history is stable.
		e.ld = observed
	}
}

// StorageBits implements TLBPredictor.
func (l *LeewayTLB) StorageBits() uint64 { return l.cfg.StorageBits() }

// PredictionQuality implements obs.QualitySource: Leeway detects none of
// its own premature predictions (no shadow structure).
func (l *LeewayTLB) PredictionQuality() (uint64, uint64) { return l.predictions, 0 }

// RegisterMetrics implements obs.MetricSource.
func (l *LeewayTLB) RegisterMetrics(r *obs.Registry) {
	r.RegisterProbe("leeway.predictions", func() float64 { return float64(l.predictions) })
	r.RegisterProbe("leeway.kills", func() float64 { return float64(l.kills) })
}

// CloneTLB implements ClonableTLB: copy the table, rebind the guarded
// structure.
func (l *LeewayTLB) CloneTLB(llt *cache.Cache) (TLBPredictor, error) {
	c := *l
	c.target = llt
	c.table = append([]leewayEntry(nil), l.table...)
	return &c, nil
}

var (
	_ TLBPredictor      = (*LeewayTLB)(nil)
	_ AccessObserver    = (*LeewayTLB)(nil)
	_ FillFinisher      = (*LeewayTLB)(nil)
	_ ClonableTLB       = (*LeewayTLB)(nil)
	_ obs.QualitySource = (*LeewayTLB)(nil)
	_ obs.MetricSource  = (*LeewayTLB)(nil)
)
