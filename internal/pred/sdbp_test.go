package pred

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
)

// Property tests in the internal/core/property_test.go style: randomized
// streams with fixed seeds, checking the structural invariants the storage
// budget depends on — 2-bit counters never leave [0,3], the skewed tables
// index disjointly, and the sampler never exceeds its geometry.

func testGuard(t *testing.T, sets, ways int) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{Name: "guard", Sets: sets, Ways: ways})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// smallSDBPConfig forces collisions and sampler churn within short streams:
// every fourth set sampled, 2-way sampler, 64-counter tables.
func smallSDBPConfig() SDBPConfig {
	return SDBPConfig{
		SamplerSets:  4,
		SamplerAssoc: 2,
		TableBits:    6,
		CounterBits:  2,
		Threshold:    5,
		SigBits:      8,
		TagBits:      8,
		Entries:      64,
	}
}

func checkSDBPCounterBounds(t *testing.T, s *sdbp) {
	t.Helper()
	for ti, table := range s.tables {
		for i, v := range table {
			if v > s.ctrMax {
				t.Fatalf("table[%d][%d] = %d, outside [0,%d]", ti, i, v, s.ctrMax)
			}
		}
	}
	h := s.CounterHistogram()
	if len(h) != int(s.ctrMax)+1 {
		t.Fatalf("CounterHistogram has %d buckets, want %d", len(h), int(s.ctrMax)+1)
	}
	var sum uint64
	for _, n := range h {
		sum += n
	}
	if want := uint64(sdbpNumTables * len(s.tables[0])); sum != want {
		t.Fatalf("CounterHistogram tallies %d counters, tables hold %d", sum, want)
	}
}

func TestSDBPCountersSaturateUnderRandomStream(t *testing.T) {
	guard := testGuard(t, 16, 4)
	p, err := NewSDBPTLB(smallSDBPConfig(), guard)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50_000; i++ {
		key := uint64(rng.Intn(128))
		pc := uint64(rng.Intn(16)) * 4
		switch rng.Intn(3) {
		case 0, 1:
			p.OnFill(arch.VPN(key), 0, pc)
		case 2:
			p.OnHit(&cache.Block{Key: key, Sig: uint16(rng.Intn(256))})
		}
	}
	checkSDBPCounterBounds(t, p.sdbp)
	if p.samplerHits == 0 || p.samplerEvictions == 0 {
		t.Fatalf("stream never exercised the sampler (hits=%d evictions=%d)",
			p.samplerHits, p.samplerEvictions)
	}
}

// TestSDBPSkewIndexDisjointness checks the point of the skew: signatures
// that alias in one table land apart in the others, so a single-table
// collision cannot flip the three-way vote.
func TestSDBPSkewIndexDisjointness(t *testing.T) {
	guard := testGuard(t, 64, 16)
	cfg := DefaultSDBPTLBConfig(1024)
	p, err := NewSDBPTLB(cfg, guard)
	if err != nil {
		t.Fatal(err)
	}
	cols := 1 << cfg.TableBits
	// All indices in range, and the maps are deterministic.
	for sig := 0; sig < 1<<13; sig++ {
		for ti := 0; ti < sdbpNumTables; ti++ {
			idx := p.skewIndex(uint16(sig), ti)
			if idx < 0 || idx >= cols {
				t.Fatalf("skewIndex(%d, %d) = %d, outside [0,%d)", sig, ti, idx, cols)
			}
			if again := p.skewIndex(uint16(sig), ti); again != idx {
				t.Fatalf("skewIndex(%d, %d) not deterministic: %d then %d", sig, ti, idx, again)
			}
		}
	}
	// Collect table-0 collision pairs (8192 signatures into 4096 buckets
	// guarantees plenty), then measure how often the same pair collides
	// in another table.
	buckets := make(map[int][]uint16)
	for sig := 0; sig < 1<<13; sig++ {
		idx := p.skewIndex(uint16(sig), 0)
		buckets[idx] = append(buckets[idx], uint16(sig))
	}
	pairs, repeats := 0, 0
	for _, sigs := range buckets {
		for i := 0; i < len(sigs); i++ {
			for j := i + 1; j < len(sigs); j++ {
				pairs++
				for ti := 1; ti < sdbpNumTables; ti++ {
					if p.skewIndex(sigs[i], ti) == p.skewIndex(sigs[j], ti) {
						repeats++
						break
					}
				}
			}
		}
	}
	if pairs == 0 {
		t.Fatal("no table-0 collision pairs found; widen the signature sweep")
	}
	// Under independent hashing a pair re-collides in one of the two other
	// 4096-entry tables with probability ≈ 2/4096 ≈ 0.05%. Allow 100× slack.
	if frac := float64(repeats) / float64(pairs); frac > 0.05 {
		t.Fatalf("%.2f%% of table-0 collision pairs also collide elsewhere (%d/%d); skews are not disjoint",
			frac*100, repeats, pairs)
	}
}

// TestSDBPSamplerTrainsThreshold drives a single signature dead through
// sampler evictions until the prediction fires, then revives it with
// sampler hits.
func TestSDBPSamplerTrainsThreshold(t *testing.T) {
	guard := testGuard(t, 16, 4)
	cfg := smallSDBPConfig()
	cfg.SamplerSets = 16 // stride 1: every guarded set sampled
	cfg.SamplerAssoc = 1 // each fill victimizes the previous one
	p, err := NewSDBPTLB(cfg, guard)
	if err != nil {
		t.Fatal(err)
	}
	const pc = 0x40
	// Alternate two keys in guarded set 0: with a 1-way sampler every
	// fill evicts the other key's un-reused entry and trains pc dead.
	for i := 0; i < 16; i++ {
		p.OnFill(arch.VPN(uint64(i%2)*16), 0, pc)
	}
	d := p.OnFill(arch.VPN(0), 0, pc)
	if !d.PredictDOA {
		t.Fatalf("trained-dead signature not predicted DOA (confidence %d, threshold %d)",
			p.confidence(p.signature(pc)), cfg.Threshold)
	}
	if d.Sig != p.signature(pc) {
		t.Fatalf("decision carries signature %d, want %d", d.Sig, p.signature(pc))
	}
	// Reuse inside the sampler trains live and clears the prediction.
	sig := p.signature(pc)
	for i := 0; i < 16; i++ {
		p.OnHit(&cache.Block{Key: 0, Sig: sig})
	}
	if d := p.OnFill(arch.VPN(0), 0, pc); d.PredictDOA {
		t.Fatal("signature still predicted DOA after sustained sampler reuse")
	}
	checkSDBPCounterBounds(t, p.sdbp)
}

// TestSDBPIgnoresUnsampledSets checks the sampler's decoupling: keys whose
// guarded set is off-stride never touch sampler or tables.
func TestSDBPIgnoresUnsampledSets(t *testing.T) {
	guard := testGuard(t, 16, 4)
	p, err := NewSDBPTLB(smallSDBPConfig(), guard) // 4 sampled sets, stride 4
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		// Sets 1,2,3 of 16 — all off the stride-4 sampling grid.
		p.OnFill(arch.VPN(1+uint64(i%3)), 0, uint64(i))
	}
	if p.samplerHits != 0 || p.samplerEvictions != 0 {
		t.Fatalf("unsampled sets reached the sampler (hits=%d evictions=%d)",
			p.samplerHits, p.samplerEvictions)
	}
	for ti, table := range p.tables {
		for i, v := range table {
			if v != 0 {
				t.Fatalf("table[%d][%d] = %d after unsampled-only stream", ti, i, v)
			}
		}
	}
}

func TestSDBPCloneIndependence(t *testing.T) {
	guard := testGuard(t, 16, 4)
	p, err := NewSDBPTLB(smallSDBPConfig(), guard)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p.OnFill(arch.VPN(uint64(i)), 0, uint64(i)*4)
	}
	before := p.CounterHistogram()
	guard2 := testGuard(t, 16, 4)
	cp, err := p.CloneTLB(guard2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		cp.OnFill(arch.VPN(uint64(i%2)*16), 0, 0x40)
	}
	after := p.CounterHistogram()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("training the clone mutated the original's tables")
		}
	}
}

func TestSDBPConfigValidation(t *testing.T) {
	guard := testGuard(t, 16, 4)
	bad := []func(*SDBPConfig){
		func(c *SDBPConfig) { c.TableBits = 0 },
		func(c *SDBPConfig) { c.TableBits = 21 },
		func(c *SDBPConfig) { c.CounterBits = 0 },
		func(c *SDBPConfig) { c.SamplerSets = 0 },
		func(c *SDBPConfig) { c.SamplerAssoc = -1 },
		func(c *SDBPConfig) { c.SigBits = 17 },
		func(c *SDBPConfig) { c.TagBits = 0 },
		func(c *SDBPConfig) { c.Threshold = 0 },
		func(c *SDBPConfig) { c.Threshold = 10 }, // > 3 tables × counter max 3
	}
	for i, mutate := range bad {
		cfg := smallSDBPConfig()
		cfg.CounterBits = 2
		mutate(&cfg)
		if _, err := NewSDBPTLB(cfg, guard); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if _, err := NewSDBPTLB(smallSDBPConfig(), nil); err == nil {
		t.Fatal("nil guard accepted")
	}
}
