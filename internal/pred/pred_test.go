package pred

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/policy"
)

func TestNullPredictorsAreInert(t *testing.T) {
	var nt NullTLB
	var nl NullLLC
	if _, handled := nt.OnMiss(1, 2); handled {
		t.Error("NullTLB handled a miss")
	}
	if d := nt.OnFill(1, 2, 3); d.Bypass || d.PredictDOA || d.Hint != policy.InsertMRU {
		t.Errorf("NullTLB decision %+v not neutral", d)
	}
	if d := nl.OnFill(1, 2); d.Bypass || d.SetDP {
		t.Errorf("NullLLC decision %+v not neutral", d)
	}
	if nt.StorageBits() != 0 || nl.StorageBits() != 0 {
		t.Error("null predictors report storage")
	}
}

func TestRecorderCapturesDOAOutcomes(t *testing.T) {
	rec := NewDOARecord()
	r := NewRecorderTLB(rec)
	r.OnFill(10, 1, 0)
	r.OnEvict(cache.Block{Key: 10, Accessed: false}) // DOA
	r.OnFill(10, 1, 0)
	r.OnEvict(cache.Block{Key: 10, Accessed: true}) // not DOA
	r.OnFill(10, 1, 0)                              // never evicted → pending non-DOA
	if rec.Fills(10) != 3 {
		t.Fatalf("Fills = %d, want 3", rec.Fills(10))
	}
	o := NewOracleTLB(rec)
	d1 := o.OnFill(10, 1, 0)
	d2 := o.OnFill(10, 1, 0)
	d3 := o.OnFill(10, 1, 0)
	d4 := o.OnFill(10, 1, 0) // beyond record → no prediction
	if !d1.Bypass || d2.Bypass || d3.Bypass || d4.Bypass {
		t.Errorf("oracle decisions = %v %v %v %v, want bypass only on first",
			d1.Bypass, d2.Bypass, d3.Bypass, d4.Bypass)
	}
	if o.Predictions() != 1 {
		t.Errorf("Predictions = %d, want 1", o.Predictions())
	}
}

func TestRecorderIgnoresForeignEvictions(t *testing.T) {
	rec := NewDOARecord()
	r := NewRecorderTLB(rec)
	// Eviction with no recorded fill (e.g. filled before warmup) must
	// not panic or corrupt the record.
	r.OnEvict(cache.Block{Key: 99, Accessed: false})
	if rec.Fills(99) != 0 {
		t.Error("foreign eviction created a record")
	}
}

func TestSHiPTrainingCycle(t *testing.T) {
	s, err := NewSHiPTLB(DefaultSHiPTLBConfig(1024))
	if err != nil {
		t.Fatal(err)
	}
	const pc = 0x400777
	// Counters start at zero (original SHiP): untrained signatures are
	// predicted distant.
	d := s.OnFill(1, 1, pc)
	if d.Hint != policy.InsertDistant || !d.PredictDOA {
		t.Fatalf("decision %+v, want distant for untrained signature", d)
	}
	// A re-referenced entry trains the signature up: no longer distant.
	s.OnHit(&cache.Block{Sig: d.Sig, Hits: 1})
	d = s.OnFill(2, 1, pc)
	if d.Hint == policy.InsertDistant {
		t.Fatal("still distant after uptraining")
	}
	// An un-referenced eviction trains it back down to distant.
	s.OnEvict(cache.Block{Key: 2, Sig: d.Sig, Accessed: false})
	d = s.OnFill(3, 1, pc)
	if d.Hint != policy.InsertDistant {
		t.Error("not distant after downtraining")
	}
}

func TestSHiPOnlyFirstHitTrains(t *testing.T) {
	s, err := NewSHiPLLC(DefaultSHiPLLCConfig(32768))
	if err != nil {
		t.Fatal(err)
	}
	const pc = 0x400777
	d := s.OnFill(1, pc)
	b := &cache.Block{Sig: d.Sig}
	// Simulate many hits on one block: only the first may increment.
	for h := uint64(1); h <= 10; h++ {
		b.Hits = h
		s.OnHit(b)
	}
	// Now evict 2 never-referenced blocks with the same signature: the
	// counter went 1→2 (one uptrain) and must go 2→1→0, making the
	// third fill distant.
	s.OnEvict(cache.Block{Sig: d.Sig, Accessed: false})
	s.OnEvict(cache.Block{Sig: d.Sig, Accessed: false})
	if d := s.OnFill(2, pc); d.Hint != policy.InsertDistant {
		t.Error("counter shows extra hits trained more than once")
	}
}

func TestSHiPAccessedEvictionDoesNotDowntrain(t *testing.T) {
	s, err := NewSHiPTLB(DefaultSHiPTLBConfig(1024))
	if err != nil {
		t.Fatal(err)
	}
	const pc = 0x1234
	d := s.OnFill(1, 1, pc)
	s.OnHit(&cache.Block{Sig: d.Sig, Hits: 1}) // counter 0 → 1
	s.OnEvict(cache.Block{Sig: d.Sig, Accessed: true})
	if d := s.OnFill(2, 1, pc); d.Hint == policy.InsertDistant {
		t.Error("accessed eviction downtrained the signature")
	}
}

func TestSHiPConfigValidation(t *testing.T) {
	if _, err := NewSHiPTLB(SHiPConfig{SigBits: 0, CounterBits: 3}); err == nil {
		t.Error("SigBits=0 accepted")
	}
	if _, err := NewSHiPTLB(SHiPConfig{SigBits: 8, CounterBits: 0}); err == nil {
		t.Error("CounterBits=0 accepted")
	}
	if _, err := NewSHiPLLC(SHiPConfig{SigBits: 21, CounterBits: 3}); err == nil {
		t.Error("SigBits=21 accepted")
	}
}

func TestSHiPStorage(t *testing.T) {
	s, _ := NewSHiPTLB(DefaultSHiPTLBConfig(1024))
	// 256 × 3-bit SHCT + 1024 × (8-bit sig + outcome bit).
	want := uint64(256*3 + 1024*9)
	if got := s.StorageBits(); got != want {
		t.Errorf("StorageBits = %d, want %d", got, want)
	}
	l, _ := NewSHiPLLC(DefaultSHiPLLCConfig(32768))
	// The paper cites ~66 KB for SHiP at LLC scale; ours is the same
	// order: 16K × 3-bit + 32K × 15-bit ≈ 66 KB.
	if kb := float64(l.StorageBits()) / 8 / 1024; kb < 55 || kb > 80 {
		t.Errorf("SHiP-LLC storage = %.1f KB, want ≈66 KB", kb)
	}
}

func mkTLBCache(t *testing.T) *cache.Cache {
	t.Helper()
	return cache.MustNew(cache.Config{Name: "llt", Sets: 4, Ways: 2})
}

func TestAIPLearnsIntervalAndMarksDead(t *testing.T) {
	target := mkTLBCache(t)
	a, err := NewAIPTLB(DefaultAIPTLBConfig(8), target)
	if err != nil {
		t.Fatal(err)
	}
	const pc, key = 0x400123, uint64(4)
	// Generation 1: block sees interval max 2, then evicts.
	d := a.OnFill(arch.VPN(key), 0, pc)
	nb, _, _ := target.Fill(key, policy.InsertMRU, 0)
	nb.PCHash = d.PCHash
	a.OnFillDone(nb)
	nb.AIPMax = 2
	ev := *nb
	target.Invalidate(key)
	a.OnEvict(ev)
	// Generation 2 with the same max: confidence sets.
	a.OnEvict(ev)
	// Generation 3: fill loads threshold 2 with confidence.
	d = a.OnFill(arch.VPN(key), 0, pc)
	nb, _, _ = target.Fill(key, policy.InsertMRU, 1)
	nb.PCHash = d.PCHash
	a.OnFillDone(nb)
	if nb.AIPThreshold != 2 || !nb.AIPConf {
		t.Fatalf("loaded threshold=%d conf=%v, want 2,true", nb.AIPThreshold, nb.AIPConf)
	}
	// Three accesses to other keys in the same set exceed the interval.
	other := key + uint64(target.Sets())
	target.Fill(other, policy.InsertMRU, 2)
	for i := 0; i < 3; i++ {
		a.OnAccess(other)
		target.Lookup(other, uint64(3+i))
	}
	if !target.DeadMarked(key) {
		t.Error("block not dead-marked after exceeding learned interval")
	}
	// A hit revives it (the structure clears the mark, AIP resets the
	// counter).
	target.Lookup(key, 10)
	a.OnHit(nb)
	if target.DeadMarked(key) || nb.AIPCount != 0 {
		t.Errorf("hit did not revive: deadMark=%v count=%d", target.DeadMarked(key), nb.AIPCount)
	}
}

func TestAIPNoConfidenceNoMark(t *testing.T) {
	target := mkTLBCache(t)
	a, err := NewAIPTLB(DefaultAIPTLBConfig(8), target)
	if err != nil {
		t.Fatal(err)
	}
	const key = uint64(4)
	nb, _, _ := target.Fill(key, policy.InsertMRU, 0)
	a.OnFillDone(nb) // nothing learned: conf=false, threshold=0
	other := key + uint64(target.Sets())
	target.Fill(other, policy.InsertMRU, 0)
	for i := 0; i < 100; i++ {
		a.OnAccess(other)
	}
	if target.DeadMarked(key) {
		t.Error("dead-marked without confidence")
	}
}

func TestAIPEvictionTrainsWithFinalInterval(t *testing.T) {
	target := mkTLBCache(t)
	a, err := NewAIPTLB(DefaultAIPTLBConfig(8), target)
	if err != nil {
		t.Fatal(err)
	}
	// An entry evicted with a running interval larger than its max
	// trains with the running interval.
	b := cache.Block{Key: 4, PCHash: 9, AIPMax: 1, AIPCount: 5}
	a.OnEvict(b)
	a.OnEvict(b) // same value twice → confident
	d := a.OnFill(arch.VPN(4), 0, 0)
	_ = d
	nb, _, _ := target.Fill(4, policy.InsertMRU, 0)
	nb.PCHash = 9
	a.OnFillDone(nb)
	if nb.AIPThreshold != 5 || !nb.AIPConf {
		t.Errorf("threshold=%d conf=%v, want 5,true", nb.AIPThreshold, nb.AIPConf)
	}
}

func TestAIPValidation(t *testing.T) {
	target := mkTLBCache(t)
	if _, err := NewAIPTLB(AIPConfig{PCBits: 0, AddrBits: 8}, target); err == nil {
		t.Error("PCBits=0 accepted")
	}
	if _, err := NewAIPTLB(DefaultAIPTLBConfig(8), nil); err == nil {
		t.Error("nil target accepted")
	}
}

func TestAIPStorageDominatedByPerEntryBits(t *testing.T) {
	llc := cache.MustNew(cache.Config{Name: "llc", Sets: 2048, Ways: 16})
	a, _ := NewAIPLLC(DefaultAIPLLCConfig(32768), llc)
	kb := float64(a.StorageBits()) / 8 / 1024
	// The paper charges AIP ~124 KB at LLC scale.
	if kb < 80 || kb > 200 {
		t.Errorf("AIP-LLC storage = %.1f KB, want order of 124 KB", kb)
	}
}
