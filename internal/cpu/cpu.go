// Package cpu implements the simplified out-of-order timing model the
// simulator uses to turn memory-hierarchy latencies into IPC, standing in
// for the paper's Sniper core model (§III; see DESIGN.md substitution 1).
//
// The model tracks three in-order resources of an OoO core and lets
// everything else overlap:
//
//   - dispatch: at most Width instructions enter the window per cycle, and
//     an instruction cannot dispatch until the instruction ROB-size before
//     it has retired (finite reorder buffer);
//   - execution: a non-memory instruction completes one cycle after
//     dispatch; a memory instruction completes after its hierarchy latency;
//   - retire: in program order, at most RetireWidth per cycle, never before
//     completion.
//
// Independent long-latency misses inside the ROB window therefore overlap
// (memory-level parallelism), while a chain of misses wider than the
// window serializes — the paper's premise that LLT and LLC misses "cannot
// be hidden through memory-level parallelism of even large out-of-order
// cores" emerges from the window running dry.
package cpu

import "fmt"

// Config sizes the core.
type Config struct {
	// Width is the dispatch width in instructions per cycle.
	Width int
	// RetireWidth is the in-order retire width.
	RetireWidth int
	// ROB is the reorder-buffer capacity.
	ROB int
}

// DefaultConfig models the 2.66 GHz OoO core of Table I: a 4-wide,
// 192-entry-window machine.
func DefaultConfig() Config {
	return Config{Width: 4, RetireWidth: 4, ROB: 192}
}

// Core is the timing model. Times are in fractional cycles.
type Core struct {
	cfg Config

	// Per-instruction increments, precomputed at construction so the
	// per-step path avoids two divisions (identical float values: the
	// divisions are performed once with the same operands).
	dispatchStep float64 // 1/Width
	retireStep   float64 // 1/RetireWidth
	bulkRate     float64 // 1/min(Width, RetireWidth)

	lastDispatch    float64
	lastRetire      float64
	lastMemComplete float64
	retireRing      []float64 // retire time of the i-th most recent instrs
	ringPos         int

	instructions uint64
	memOps       uint64
	memLatSum    uint64
}

// New builds a core.
func New(cfg Config) (*Core, error) {
	if cfg.Width < 1 || cfg.RetireWidth < 1 || cfg.ROB < 1 {
		return nil, fmt.Errorf("cpu: width/retire/ROB must be ≥ 1, got %+v", cfg)
	}
	return &Core{
		cfg:          cfg,
		dispatchStep: 1 / float64(cfg.Width),
		retireStep:   1 / float64(cfg.RetireWidth),
		bulkRate:     1 / float64(minInt(cfg.Width, cfg.RetireWidth)),
		retireRing:   make([]float64, cfg.ROB),
	}, nil
}

// MustNew is New that panics on bad configuration.
func MustNew(cfg Config) *Core {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Clone deep-copies the core's timing state for warm-state forking: both
// copies advance independently from the identical cycle position.
func (c *Core) Clone() *Core {
	n := *c
	n.retireRing = append([]float64(nil), c.retireRing...)
	return &n
}

// step advances the model by one instruction with the given execution
// latency (1 for non-memory work). minIssue delays execution start past
// dispatch (data dependence on an earlier memory result); the returned
// value is the instruction's completion time.
func (c *Core) step(execLat, minIssue float64) float64 {
	// ROB constraint: the slot being reused holds the retire time of
	// the instruction ROB-size earlier.
	robFree := c.retireRing[c.ringPos]
	dispatch := c.lastDispatch + c.dispatchStep
	if robFree > dispatch {
		dispatch = robFree
	}
	c.lastDispatch = dispatch

	issue := dispatch
	if minIssue > issue {
		issue = minIssue
	}
	complete := issue + execLat
	retire := c.lastRetire + c.retireStep
	if complete > retire {
		retire = complete
	}
	c.lastRetire = retire
	c.retireRing[c.ringPos] = retire
	c.ringPos++
	if c.ringPos == len(c.retireRing) {
		c.ringPos = 0
	}
	c.instructions++
	return complete
}

// Advance retires n non-memory instructions (each with unit latency).
func (c *Core) Advance(n uint64) {
	// Beyond a full window of plain ALU work the model is in steady
	// state: both dispatch and retire advance at the narrower width.
	// Process a window's worth exactly, then jump.
	limit := uint64(2 * c.cfg.ROB)
	if n > limit {
		bulk := n - limit
		shift := float64(bulk) * c.bulkRate
		c.lastDispatch += shift
		c.lastRetire += shift
		for i := range c.retireRing {
			c.retireRing[i] += shift
		}
		c.instructions += bulk
		n = limit
	}
	for i := uint64(0); i < n; i++ {
		c.step(1, 0)
	}
}

// Memory retires one memory instruction with the given hierarchy latency.
// When dependent is true the access cannot issue before the previous
// memory instruction's result is available (a pointer chase), defeating
// memory-level parallelism exactly as dependent misses do in hardware.
func (c *Core) Memory(latency uint64, dependent bool) {
	lat := float64(latency)
	if lat < 1 {
		lat = 1
	}
	var minIssue float64
	if dependent {
		minIssue = c.lastMemComplete
	}
	c.lastMemComplete = c.step(lat, minIssue)
	c.memOps++
	c.memLatSum += latency
}

// Cycles returns the current simulated time: the retire time of the last
// instruction.
func (c *Core) Cycles() float64 { return c.lastRetire }

// Instructions returns the number of retired instructions.
func (c *Core) Instructions() uint64 { return c.instructions }

// MemOps returns the number of retired memory instructions.
func (c *Core) MemOps() uint64 { return c.memOps }

// MemLatencyStats returns the cumulative hierarchy latency sum and memory
// op count. Callers that need a measurement-region mean snapshot both and
// subtract.
func (c *Core) MemLatencyStats() (sum, ops uint64) { return c.memLatSum, c.memOps }

// AvgMemLatency returns the mean hierarchy latency over memory ops.
func (c *Core) AvgMemLatency() float64 {
	if c.memOps == 0 {
		return 0
	}
	return float64(c.memLatSum) / float64(c.memOps)
}

// IPC returns retired instructions per cycle.
func (c *Core) IPC() float64 {
	if c.lastRetire == 0 {
		return 0
	}
	return float64(c.instructions) / c.lastRetire
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
