package cpu

import "repro/internal/ckpt"

// EncodeState serializes the core's timing state for warm-state
// checkpointing. The configuration is not stored — the restoring side builds
// the core from the same flags — but the ring length is stamped to catch a
// ROB mismatch.
func (c *Core) EncodeState(w *ckpt.Writer) {
	w.Mark("cpu")
	w.U64(uint64(len(c.retireRing)))
	w.F64(c.lastDispatch)
	w.F64(c.lastRetire)
	w.F64(c.lastMemComplete)
	w.Binary(c.retireRing)
	w.U64(uint64(c.ringPos))
	w.U64(c.instructions)
	w.U64(c.memOps)
	w.U64(c.memLatSum)
}

// DecodeState restores state written by EncodeState into a core built with
// the identical configuration.
func (c *Core) DecodeState(r *ckpt.Reader) error {
	r.Expect("cpu")
	if n := r.U64(); r.Err() == nil && n != uint64(len(c.retireRing)) {
		r.Failf("cpu: checkpoint ROB size %d does not match configured %d", n, len(c.retireRing))
	}
	c.lastDispatch = r.F64()
	c.lastRetire = r.F64()
	c.lastMemComplete = r.F64()
	r.Binary(c.retireRing)
	c.ringPos = int(r.U64())
	c.instructions = r.U64()
	c.memOps = r.U64()
	c.memLatSum = r.U64()
	if r.Err() == nil && (c.ringPos < 0 || c.ringPos >= len(c.retireRing)) {
		r.Failf("cpu: checkpoint ring position %d out of range", c.ringPos)
	}
	return r.Err()
}
