package cpu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Width: 0, RetireWidth: 4, ROB: 192},
		{Width: 4, RetireWidth: 0, ROB: 192},
		{Width: 4, RetireWidth: 4, ROB: 0},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MustNew(Config{})
}

func TestALUStreamIPCEqualsWidth(t *testing.T) {
	c := MustNew(DefaultConfig())
	c.Advance(100000)
	if ipc := c.IPC(); math.Abs(ipc-4) > 0.01 {
		t.Errorf("ALU-only IPC = %v, want ≈4", ipc)
	}
}

func TestAdvanceBulkMatchesStepwise(t *testing.T) {
	a := MustNew(DefaultConfig())
	b := MustNew(DefaultConfig())
	a.Advance(10000) // takes the bulk path
	for i := 0; i < 10000; i++ {
		b.Advance(1) // stepwise
	}
	if math.Abs(a.Cycles()-b.Cycles()) > 1.0 {
		t.Errorf("bulk %v vs stepwise %v cycles", a.Cycles(), b.Cycles())
	}
	if a.Instructions() != b.Instructions() {
		t.Errorf("instructions %d vs %d", a.Instructions(), b.Instructions())
	}
}

func TestIndependentMissesOverlap(t *testing.T) {
	c := MustNew(DefaultConfig())
	// 8 independent 200-cycle misses fit in one ROB window: total time
	// should be ≈200 + dispatch slack, nowhere near 1600.
	for i := 0; i < 8; i++ {
		c.Memory(200, false)
	}
	if cy := c.Cycles(); cy > 250 {
		t.Errorf("8 independent misses took %v cycles; MLP broken", cy)
	}
}

func TestDependentMissesSerialize(t *testing.T) {
	c := MustNew(DefaultConfig())
	for i := 0; i < 8; i++ {
		c.Memory(200, true)
	}
	if cy := c.Cycles(); cy < 1600 {
		t.Errorf("8 dependent misses took %v cycles; want ≥ 1600", cy)
	}
}

func TestROBLimitsOverlap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROB = 4
	c := MustNew(cfg)
	// With a 4-entry window, the 5th miss cannot dispatch until the 1st
	// retires: 100 independent misses of 200 cycles serialize in groups.
	for i := 0; i < 100; i++ {
		c.Memory(200, false)
	}
	// ≈ (100/4) × 200 = 5000 cycles.
	if cy := c.Cycles(); cy < 4000 {
		t.Errorf("tiny-ROB misses took %v cycles; ROB constraint broken", cy)
	}
	big := MustNew(DefaultConfig())
	for i := 0; i < 100; i++ {
		big.Memory(200, false)
	}
	if big.Cycles() >= c.Cycles() {
		t.Error("larger ROB did not help independent misses")
	}
}

func TestRetireWidthBound(t *testing.T) {
	cfg := Config{Width: 8, RetireWidth: 2, ROB: 64}
	c := MustNew(cfg)
	c.Advance(10000)
	if ipc := c.IPC(); ipc > 2.01 {
		t.Errorf("IPC %v exceeds retire width 2", ipc)
	}
}

func TestZeroLatencyMemoryClamped(t *testing.T) {
	c := MustNew(DefaultConfig())
	c.Memory(0, false)
	if c.Cycles() < 1 {
		t.Error("zero-latency memory op took < 1 cycle")
	}
}

func TestCountersAndAverages(t *testing.T) {
	c := MustNew(DefaultConfig())
	c.Advance(10)
	c.Memory(100, false)
	c.Memory(300, true)
	if c.Instructions() != 12 || c.MemOps() != 2 {
		t.Errorf("instructions=%d memOps=%d", c.Instructions(), c.MemOps())
	}
	if avg := c.AvgMemLatency(); avg != 200 {
		t.Errorf("AvgMemLatency = %v, want 200", avg)
	}
	empty := MustNew(DefaultConfig())
	if empty.AvgMemLatency() != 0 || empty.IPC() != 0 {
		t.Error("empty core should report zero averages")
	}
}

// Property: cycles are monotone and instructions exact under any op mix.
func TestMonotoneCyclesProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := MustNew(DefaultConfig())
		var wantInstr uint64
		prev := 0.0
		for _, op := range ops {
			switch op % 3 {
			case 0:
				n := uint64(op%50) + 1
				c.Advance(n)
				wantInstr += n
			case 1:
				c.Memory(uint64(op%500), false)
				wantInstr++
			case 2:
				c.Memory(uint64(op%500), true)
				wantInstr++
			}
			if c.Cycles() < prev {
				return false
			}
			prev = c.Cycles()
		}
		return c.Instructions() == wantInstr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: lower memory latency never hurts IPC for the same op sequence.
func TestLatencyMonotonicityProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		fast := MustNew(DefaultConfig())
		slow := MustNew(DefaultConfig())
		for _, op := range ops {
			gap := uint64(op % 7)
			fast.Advance(gap)
			slow.Advance(gap)
			dep := op%2 == 0
			fast.Memory(uint64(op), dep)
			slow.Memory(uint64(op)*3+10, dep)
		}
		return fast.Cycles() <= slow.Cycles()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdvanceExactBulkBoundary(t *testing.T) {
	cfg := DefaultConfig()
	limit := uint64(2 * cfg.ROB)
	a := MustNew(cfg)
	b := MustNew(cfg)
	a.Advance(limit)     // stepwise path exactly at the boundary
	b.Advance(limit + 1) // first bulk step
	if b.Instructions() != limit+1 {
		t.Errorf("bulk path retired %d, want %d", b.Instructions(), limit+1)
	}
	if b.Cycles() < a.Cycles() {
		t.Error("bulk path went backwards in time")
	}
}

func TestAdvanceZeroIsNoop(t *testing.T) {
	c := MustNew(DefaultConfig())
	c.Advance(0)
	if c.Instructions() != 0 || c.Cycles() != 0 {
		t.Errorf("Advance(0) changed state: %d instr, %v cycles",
			c.Instructions(), c.Cycles())
	}
}

func TestDependentChainAfterALUWork(t *testing.T) {
	// Dependence must reference the previous MEMORY op, not just the
	// previous instruction: ALU work between two dependent loads must
	// not break the chain.
	c := MustNew(DefaultConfig())
	c.Memory(300, false)
	c.Advance(10)
	c.Memory(300, true)
	if cy := c.Cycles(); cy < 600 {
		t.Errorf("chain broken by interleaved ALU work: %v cycles, want ≥600", cy)
	}
}
