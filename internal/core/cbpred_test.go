package core

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/cache"
)

func newCB(t *testing.T) *CBPred {
	t.Helper()
	p, err := NewCBPred(DefaultCBPredConfig(32768))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// blockOn returns the n-th block number on the given frame.
func blockOn(f arch.PFN, n uint64) uint64 {
	return uint64(f)<<(arch.PageShift-arch.BlockShift) | (n % arch.BlocksPerPage)
}

func TestNewCBPredValidation(t *testing.T) {
	bad := []CBPredConfig{
		{BHISTBits: 0, CounterBits: 3, Threshold: 6},
		{BHISTBits: 25, CounterBits: 3, Threshold: 6},
		{BHISTBits: 12, CounterBits: 0, Threshold: 6},
		{BHISTBits: 12, CounterBits: 3, Threshold: 7},
		{BHISTBits: 12, CounterBits: 3, Threshold: 6, PFQEntries: -1},
	}
	for i, cfg := range bad {
		if _, err := NewCBPred(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestPFQFilterGatesEverything(t *testing.T) {
	p := newCB(t)
	blk := blockOn(100, 3)
	// Frame 100 was never announced as DOA: no training, no DP bit.
	if d := p.OnFill(blk, 0); d.SetDP || d.Bypass {
		t.Fatalf("unfiltered fill acted: %+v", d)
	}
	p.OnEvict(cache.Block{Key: blk, DP: false, Accessed: false})
	if p.Counter(blk) != 0 {
		t.Error("non-DP eviction trained bHIST")
	}
	if p.Stats().PFQMatches != 0 {
		t.Error("PFQ matched a frame that was never inserted")
	}
}

func TestDPBitSetOnMatchedFill(t *testing.T) {
	p := newCB(t)
	p.NotifyDOAPage(100)
	d := p.OnFill(blockOn(100, 3), 0)
	if !d.SetDP {
		t.Error("fill on DOA page did not set DP bit")
	}
	if d.Bypass {
		t.Error("bypass before any training")
	}
	if p.Stats().PFQMatches != 1 || p.Stats().Notifications != 1 {
		t.Errorf("stats = %+v", p.Stats())
	}
}

func TestTrainingToBypass(t *testing.T) {
	p := newCB(t)
	p.NotifyDOAPage(100)
	blk := blockOn(100, 7)
	// Seven un-accessed DP evictions push the counter past threshold 6.
	for i := 0; i < 7; i++ {
		if d := p.OnFill(blk, 0); d.Bypass {
			t.Fatalf("premature bypass after %d trainings", i)
		}
		p.OnEvict(cache.Block{Key: blk, DP: true, Accessed: false})
	}
	d := p.OnFill(blk, 0)
	if !d.Bypass || !d.PredictDOA {
		t.Fatal("no bypass after counter exceeded threshold")
	}
	if p.Stats().Predictions != 1 {
		t.Errorf("Predictions = %d, want 1", p.Stats().Predictions)
	}
}

func TestAccessedDPEvictionClears(t *testing.T) {
	p := newCB(t)
	blk := blockOn(42, 0)
	for i := 0; i < 7; i++ {
		p.OnEvict(cache.Block{Key: blk, DP: true, Accessed: false})
	}
	if p.Counter(blk) != 7 {
		t.Fatalf("counter = %d, want 7", p.Counter(blk))
	}
	p.OnEvict(cache.Block{Key: blk, DP: true, Accessed: true})
	if p.Counter(blk) != 0 {
		t.Errorf("counter = %d after accessed eviction, want 0", p.Counter(blk))
	}
}

func TestCounterSaturatesAtMax(t *testing.T) {
	p := newCB(t)
	blk := blockOn(42, 0)
	for i := 0; i < 50; i++ {
		p.OnEvict(cache.Block{Key: blk, DP: true, Accessed: false})
	}
	if p.Counter(blk) != 7 {
		t.Errorf("counter = %d, want saturation at 7", p.Counter(blk))
	}
}

func TestPFQFIFOReplacement(t *testing.T) {
	cfg := DefaultCBPredConfig(32768)
	cfg.PFQEntries = 2
	p, err := NewCBPred(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.NotifyDOAPage(1)
	p.NotifyDOAPage(2)
	p.NotifyDOAPage(3) // displaces 1
	if d := p.OnFill(blockOn(1, 0), 0); d.SetDP {
		t.Error("displaced frame 1 still matches")
	}
	if d := p.OnFill(blockOn(2, 0), 0); !d.SetDP {
		t.Error("frame 2 should match")
	}
	if d := p.OnFill(blockOn(3, 0), 0); !d.SetDP {
		t.Error("frame 3 should match")
	}
}

func TestNoPFQVariantTrainsEverything(t *testing.T) {
	cfg := DefaultCBPredConfig(32768)
	cfg.UsePFQ = false // cbPred−PF
	p, err := NewCBPred(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blk := blockOn(777, 5) // never announced
	if d := p.OnFill(blk, 0); !d.SetDP {
		t.Error("cbPred−PF must consider every block")
	}
	for i := 0; i < 7; i++ {
		p.OnEvict(cache.Block{Key: blk, DP: true, Accessed: false})
	}
	if d := p.OnFill(blk, 0); !d.Bypass {
		t.Error("cbPred−PF should bypass after training")
	}
}

func TestCBPredStorageBitsDefault(t *testing.T) {
	p := newCB(t)
	// §V-D: 8 KB per-block bits + 1.5 KB bHIST + 39 B PFQ ≈ 9.54 KB.
	want := uint64(2*32768 + 3*4096 + 8*39)
	if got := p.StorageBits(); got != want {
		t.Errorf("StorageBits = %d, want %d", got, want)
	}
	if kb := float64(p.StorageBits()) / 8 / 1024; kb > 9.6 || kb < 9.5 {
		t.Errorf("storage = %.2f KB, paper says ≈9.54 KB", kb)
	}
}

func TestZeroSizePFQNeverMatches(t *testing.T) {
	cfg := DefaultCBPredConfig(32768)
	cfg.PFQEntries = 0
	p, err := NewCBPred(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.NotifyDOAPage(5)
	if d := p.OnFill(blockOn(5, 0), 0); d.SetDP || d.Bypass {
		t.Error("zero-size PFQ matched")
	}
}

// Property: cbPred never acts on a block whose frame was not announced
// (with the PFQ enabled and large enough to never displace).
func TestFilterSoundnessProperty(t *testing.T) {
	f := func(announced []uint8, probes []uint16) bool {
		cfg := DefaultCBPredConfig(32768)
		cfg.PFQEntries = 512 // no displacement in this test
		p, err := NewCBPred(cfg)
		if err != nil {
			return false
		}
		inQ := map[arch.PFN]bool{}
		for _, a := range announced {
			f := arch.PFN(a)
			p.NotifyDOAPage(f)
			inQ[f] = true
		}
		for _, pr := range probes {
			frame := arch.PFN(pr % 512)
			d := p.OnFill(blockOn(frame, uint64(pr)), 0)
			if !inQ[frame] && (d.SetDP || d.Bypass || d.PredictDOA) {
				return false
			}
			if inQ[frame] && !d.SetDP && !d.Bypass {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: bHIST counters stay within 3 bits whatever the event stream.
func TestBHISTWidthProperty(t *testing.T) {
	f := func(events []uint16) bool {
		p, err := NewCBPred(DefaultCBPredConfig(32768))
		if err != nil {
			return false
		}
		for _, e := range events {
			blk := uint64(e)
			p.OnEvict(cache.Block{Key: blk, DP: e%3 != 0, Accessed: e%5 == 0})
			if p.Counter(blk) > 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
