package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/pred"
	"repro/internal/stats"
	"repro/internal/xhash"
)

// DPPredConfig parameterizes the dead-page predictor. The zero value is not
// usable; start from DefaultDPPredConfig.
type DPPredConfig struct {
	// PCBits is the width of the PC hash indexing pHIST's first
	// dimension and stored in each LLT entry (6 by default, §V-A).
	PCBits uint
	// VPNBits is the width of the VPN hash indexing pHIST's second
	// dimension (4 by default). Setting VPNBits to 0 degenerates to a
	// one-dimensional PC-only table (the "10 bit PC" point of Fig. 11b
	// is PCBits=10, VPNBits=0).
	VPNBits uint
	// CounterBits is the width of pHIST's saturating counters (3).
	CounterBits uint
	// Threshold is the confidence above which a fill is predicted DOA
	// (counter > Threshold; 6 by default).
	Threshold uint8
	// ShadowEntries sizes the shadow table (2 by default; 0 gives the
	// dpPred−SH variant of Table VI).
	ShadowEntries int
	// LLTEntries is the guarded TLB's capacity, used for storage
	// accounting of the per-entry metadata (PC hash + Accessed bit).
	LLTEntries int
}

// DefaultDPPredConfig is the paper's default dpPred: 6-bit PC hash × 4-bit
// VPN hash (a 1024-entry pHIST), 3-bit counters, threshold 6, and a 2-entry
// shadow table.
func DefaultDPPredConfig(lltEntries int) DPPredConfig {
	return DPPredConfig{
		PCBits:        6,
		VPNBits:       4,
		CounterBits:   3,
		Threshold:     6,
		ShadowEntries: 2,
		LLTEntries:    lltEntries,
	}
}

// DPPredStats counts dpPred activity.
type DPPredStats struct {
	// Predictions is the number of fills predicted DOA (bypassed).
	Predictions uint64
	// ShadowHits is the number of LLT misses served by the shadow table
	// — each one is a detected misprediction.
	ShadowHits uint64
	// ColumnFlushes counts negative-feedback flushes of pHIST columns.
	ColumnFlushes uint64
	// Increments and Clears count eviction-time training events.
	Increments uint64
	Clears     uint64
}

// DPPred is the dead-page predictor (§V-A).
type DPPred struct {
	cfg    DPPredConfig
	phist  [][]uint8 // [pcHash][vpnHash]
	ctrMax uint8
	shadow *shadowTable

	// onDOAPage, when set, is invoked with the frame of every
	// predicted-DOA page; the simulator wires it to cbPred's PFQ
	// ("Send PFN to LLC controller for PFQ insertion", Fig. 6b).
	onDOAPage func(arch.PFN)

	// tr, when set, receives pHIST column-flush events (the one dpPred
	// hook point the simulator cannot observe from outside).
	tr *obs.Tracer

	// One-entry hash memos: an LLT miss consults the predictor several
	// times with the same PC/VPN (OnMiss, then OnFill, then often an
	// eviction for a neighbouring page), so the last hash is reused
	// instead of re-folding. Zero values are self-consistent: Fold(0)=0.
	lastPC      uint64
	lastPCHash  uint16
	lastVPN     uint64
	lastVPNHash int

	stats DPPredStats
}

// NewDPPred builds the predictor.
func NewDPPred(cfg DPPredConfig) (*DPPred, error) {
	if cfg.PCBits == 0 || cfg.PCBits > 16 {
		return nil, fmt.Errorf("dppred: PCBits must be in [1,16], got %d", cfg.PCBits)
	}
	if cfg.VPNBits > 16 {
		return nil, fmt.Errorf("dppred: VPNBits must be ≤ 16, got %d", cfg.VPNBits)
	}
	if cfg.CounterBits == 0 || cfg.CounterBits > 8 {
		return nil, fmt.Errorf("dppred: CounterBits must be in [1,8], got %d", cfg.CounterBits)
	}
	max := uint8(1<<cfg.CounterBits - 1)
	if cfg.Threshold >= max {
		return nil, fmt.Errorf("dppred: threshold %d unreachable with %d-bit counters",
			cfg.Threshold, cfg.CounterBits)
	}
	if cfg.ShadowEntries < 0 {
		return nil, fmt.Errorf("dppred: negative shadow table size")
	}
	rows := 1 << cfg.PCBits
	cols := 1 << cfg.VPNBits
	p := &DPPred{cfg: cfg, ctrMax: max, shadow: newShadowTable(cfg.ShadowEntries)}
	p.phist = make([][]uint8, rows)
	backing := make([]uint8, rows*cols)
	for r := range p.phist {
		p.phist[r] = backing[r*cols : (r+1)*cols]
	}
	return p, nil
}

// SetDOAPageListener wires the predicted-DOA-page notification (to cbPred's
// PFQ). Passing nil disconnects it.
func (p *DPPred) SetDOAPageListener(fn func(arch.PFN)) { p.onDOAPage = fn }

// Name implements pred.TLBPredictor.
func (p *DPPred) Name() string { return "dpPred" }

func (p *DPPred) pcHash(pc uint64) uint16 {
	if pc == p.lastPC {
		return p.lastPCHash
	}
	h := uint16(xhash.PC(pc, p.cfg.PCBits))
	p.lastPC, p.lastPCHash = pc, h
	return h
}

func (p *DPPred) vpnHash(vpn arch.VPN) int {
	if p.cfg.VPNBits == 0 {
		return 0
	}
	if uint64(vpn) == p.lastVPN {
		return p.lastVPNHash
	}
	h := int(xhash.VPN(uint64(vpn), p.cfg.VPNBits))
	p.lastVPN, p.lastVPNHash = uint64(vpn), h
	return h
}

// OnHit implements pred.TLBPredictor. The Accessed bit is maintained by the
// TLB itself; dpPred has no hit-path work (§V-C: hit latency unaffected).
func (p *DPPred) OnHit(*cache.Block) {}

// OnMiss implements pred.TLBPredictor: the Fig. 6a miss path. A shadow-table
// hit returns the parked translation (victim-buffer behaviour) and flushes
// the pHIST column for the VPN's hash as negative feedback.
func (p *DPPred) OnMiss(vpn arch.VPN, _ uint64) (arch.PFN, bool) {
	pfn, ok := p.shadow.Lookup(vpn)
	if !ok {
		return 0, false
	}
	p.stats.ShadowHits++
	p.flushColumn(p.vpnHash(vpn))
	return pfn, true
}

func (p *DPPred) flushColumn(col int) {
	p.stats.ColumnFlushes++
	if p.tr != nil {
		p.tr.Emit(obs.Event{Kind: obs.EvPHISTFlush, Key: uint64(col)})
	}
	for r := range p.phist {
		p.phist[r][col] = 0
	}
}

// OnFill implements pred.TLBPredictor: the Fig. 6b fill path. The PC hash
// comes from the LLT's MSHR (the simulator passes the PC that triggered the
// miss). A counter above the threshold predicts DOA: the translation
// bypasses the LLT, parks in the shadow table, and the frame is announced
// to the LLC side.
func (p *DPPred) OnFill(vpn arch.VPN, pfn arch.PFN, pc uint64) pred.Decision {
	h := p.pcHash(pc)
	if p.phist[h][p.vpnHash(vpn)] > p.cfg.Threshold {
		p.stats.Predictions++
		p.shadow.Insert(vpn, pfn)
		if p.onDOAPage != nil {
			p.onDOAPage(pfn)
		}
		return pred.Decision{Bypass: true, PredictDOA: true, PCHash: h}
	}
	return pred.Decision{PCHash: h}
}

// OnEvict implements pred.TLBPredictor: the Fig. 6c eviction path. A set
// Accessed bit proves the entry was not DOA and clears the counter;
// otherwise the counter increments (saturating).
func (p *DPPred) OnEvict(b cache.Block) {
	ctr := &p.phist[int(b.PCHash)&(len(p.phist)-1)][p.vpnHash(arch.VPN(b.Key))]
	if b.Accessed {
		p.stats.Clears++
		*ctr = 0
		return
	}
	p.stats.Increments++
	if *ctr < p.ctrMax {
		*ctr++
	}
}

// StorageBits implements pred.TLBPredictor, reproducing the §V-D breakdown:
// per-entry metadata (PC hash + Accessed bit), the pHIST counters, and the
// shadow table (~13 bytes per entry: VPN tag + PFN + valid).
func (p *DPPred) StorageBits() uint64 {
	perEntry := uint64(p.cfg.PCBits+1) * uint64(p.cfg.LLTEntries)
	phist := uint64(1) << (p.cfg.PCBits + p.cfg.VPNBits) * uint64(p.cfg.CounterBits)
	shadow := uint64(p.shadow.Size()) * shadowEntryBits
	return perEntry + phist + shadow
}

// shadowEntryBits is the storage of one shadow-table slot: a 36-bit VPN, a
// 39-bit PFN, remaining translation metadata and a valid bit — the "around
// 13 bytes" of §V-D.
const shadowEntryBits = 13 * 8

// Stats returns a snapshot of predictor activity.
func (p *DPPred) Stats() DPPredStats { return p.stats }

// Counter exposes a pHIST counter value (for tests and introspection).
func (p *DPPred) Counter(pcHash uint16, vpn arch.VPN) uint8 {
	return p.phist[int(pcHash)&(len(p.phist)-1)][p.vpnHash(vpn)]
}

// ShadowLen reports the number of valid shadow-table entries.
func (p *DPPred) ShadowLen() int { return p.shadow.Len() }

// AttachTracer implements obs.TraceAttacher: pHIST column flushes are
// emitted through t (nil detaches).
func (p *DPPred) AttachTracer(t *obs.Tracer) { p.tr = t }

// RegisterMetrics implements obs.MetricSource, publishing the predictor's
// activity counters as probes.
func (p *DPPred) RegisterMetrics(r *obs.Registry) {
	r.RegisterProbe("dppred.predictions", func() float64 { return float64(p.stats.Predictions) })
	r.RegisterProbe("dppred.shadow_hits", func() float64 { return float64(p.stats.ShadowHits) })
	r.RegisterProbe("dppred.column_flushes", func() float64 { return float64(p.stats.ColumnFlushes) })
	r.RegisterProbe("dppred.increments", func() float64 { return float64(p.stats.Increments) })
	r.RegisterProbe("dppred.clears", func() float64 { return float64(p.stats.Clears) })
	// Each shadow hit is a bypassed translation re-requested — a premature
	// prediction the predictor caught itself.
	r.RegisterProbe("dppred.premature_detected_rate", func() float64 {
		if p.stats.Predictions == 0 {
			return 0
		}
		return float64(p.stats.ShadowHits) / float64(p.stats.Predictions)
	})
}

// PredictionQuality implements obs.QualitySource: predictions issued and
// the subset the shadow table already proved premature.
func (p *DPPred) PredictionQuality() (predictions, detectedPremature uint64) {
	return p.stats.Predictions, p.stats.ShadowHits
}

// CounterHistogram implements obs.CounterHistogrammer: bucket v counts the
// pHIST counters currently holding v.
func (p *DPPred) CounterHistogram() []uint64 {
	return stats.Histogram8(p.ctrMax, p.phist...)
}

var (
	_ pred.TLBPredictor       = (*DPPred)(nil)
	_ obs.TraceAttacher       = (*DPPred)(nil)
	_ obs.MetricSource        = (*DPPred)(nil)
	_ obs.CounterHistogrammer = (*DPPred)(nil)
	_ obs.QualitySource       = (*DPPred)(nil)
)
