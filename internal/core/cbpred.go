package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/pred"
	"repro/internal/stats"
	"repro/internal/xhash"
)

// pfq is cbPred's PFN filter queue (§V-B): a small FIFO of physical frame
// numbers of recently predicted DOA pages, matched in parallel against
// every incoming LLC block.
type pfq struct {
	frames []arch.PFN
	valid  []bool
	next   int
}

func newPFQ(n int) *pfq {
	return &pfq{frames: make([]arch.PFN, n), valid: make([]bool, n)}
}

// Insert enqueues a frame, displacing the oldest (FIFO). Re-inserting a
// frame already present refreshes nothing — real hardware would simply
// hold both; matching is by value so duplicates are harmless.
func (q *pfq) Insert(f arch.PFN) {
	if len(q.frames) == 0 {
		return
	}
	q.frames[q.next] = f
	q.valid[q.next] = true
	q.next = (q.next + 1) % len(q.frames)
}

// Contains matches a frame against all entries (in parallel in hardware).
func (q *pfq) Contains(f arch.PFN) bool {
	for i, v := range q.valid {
		if v && q.frames[i] == f {
			return true
		}
	}
	return false
}

// Size returns the configured capacity.
func (q *pfq) Size() int { return len(q.frames) }

// CBPredConfig parameterizes the correlating dead block predictor.
type CBPredConfig struct {
	// BHISTBits is the width of the block-address hash; bHIST has
	// 2^BHISTBits counters (12 → 4096 entries for a 2 MB LLC, §V-B).
	BHISTBits uint
	// CounterBits is the width of bHIST's saturating counters (3).
	CounterBits uint
	// Threshold is the confidence above which a block is predicted DOA
	// (counter > Threshold; 6 by default).
	Threshold uint8
	// PFQEntries sizes the PFN filter queue (8 by default).
	PFQEntries int
	// UsePFQ enables the DOA-page pre-filter. Disabling it gives the
	// cbPred−PF variant of Table VII: every block trains and consults
	// bHIST, costing accuracy.
	UsePFQ bool
	// LLCBlocks is the guarded cache's block count, for storage
	// accounting of the two per-block bits (DP + Accessed).
	LLCBlocks int
}

// DefaultCBPredConfig is the paper's default cbPred for a 2 MB LLC: a
// 4096-entry bHIST of 3-bit counters, threshold 6, and an 8-entry PFQ.
func DefaultCBPredConfig(llcBlocks int) CBPredConfig {
	return CBPredConfig{
		BHISTBits:   12,
		CounterBits: 3,
		Threshold:   6,
		PFQEntries:  8,
		UsePFQ:      true,
		LLCBlocks:   llcBlocks,
	}
}

// CBPredStats counts cbPred activity.
type CBPredStats struct {
	// Notifications is the number of DOA-page PFNs received from dpPred.
	Notifications uint64
	// PFQMatches is the number of LLC fills whose frame matched the PFQ.
	PFQMatches uint64
	// Predictions is the number of blocks predicted DOA (bypassed).
	Predictions uint64
	// Increments and Clears count eviction-time training events.
	Increments uint64
	Clears     uint64
}

// CBPred is the correlating dead block predictor (§V-B). It only works
// coupled with dpPred: the simulator forwards every dpPred DOA-page
// prediction to NotifyDOAPage.
type CBPred struct {
	cfg    CBPredConfig
	bhist  []uint8
	ctrMax uint8
	q      *pfq

	// tr, when set, receives PFQ-push events (the dpPred → cbPred
	// coupling the simulator cannot observe from outside).
	tr *obs.Tracer

	// One-entry bHIST index memo (see DPPred's hash memos): a fill and
	// the eviction training that follows frequently name the same block.
	// Zero values are self-consistent: Fold(0)=0.
	lastBlock uint64
	lastHash  int

	stats CBPredStats
}

// NewCBPred builds the predictor.
func NewCBPred(cfg CBPredConfig) (*CBPred, error) {
	if cfg.BHISTBits == 0 || cfg.BHISTBits > 24 {
		return nil, fmt.Errorf("cbpred: BHISTBits must be in [1,24], got %d", cfg.BHISTBits)
	}
	if cfg.CounterBits == 0 || cfg.CounterBits > 8 {
		return nil, fmt.Errorf("cbpred: CounterBits must be in [1,8], got %d", cfg.CounterBits)
	}
	max := uint8(1<<cfg.CounterBits - 1)
	if cfg.Threshold >= max {
		return nil, fmt.Errorf("cbpred: threshold %d unreachable with %d-bit counters",
			cfg.Threshold, cfg.CounterBits)
	}
	if cfg.PFQEntries < 0 {
		return nil, fmt.Errorf("cbpred: negative PFQ size")
	}
	return &CBPred{
		cfg:    cfg,
		bhist:  make([]uint8, 1<<cfg.BHISTBits),
		ctrMax: max,
		q:      newPFQ(cfg.PFQEntries),
	}, nil
}

// Name implements pred.LLCPredictor.
func (p *CBPred) Name() string { return "cbPred" }

// NotifyDOAPage implements pred.DOAPageListener: the LLC controller
// receives the frame of a predicted DOA page and inserts it in the PFQ.
func (p *CBPred) NotifyDOAPage(f arch.PFN) {
	p.stats.Notifications++
	if p.tr != nil {
		p.tr.Emit(obs.Event{Kind: obs.EvPFQPush, Key: uint64(f)})
	}
	p.q.Insert(f)
}

func (p *CBPred) hash(blockNum uint64) int {
	if blockNum == p.lastBlock {
		return p.lastHash
	}
	h := int(xhash.BlockAddr(blockNum, p.cfg.BHISTBits))
	p.lastBlock, p.lastHash = blockNum, h
	return h
}

// frameOf recovers the physical frame from a block number.
func frameOf(blockNum uint64) arch.PFN {
	return arch.PFN(blockNum >> (arch.PageShift - arch.BlockShift))
}

// OnHit implements pred.LLCPredictor. The Accessed bit is maintained by the
// cache; per Fig. 8a no predictor state changes on a hit.
func (p *CBPred) OnHit(*cache.Block) {}

// OnFill implements pred.LLCPredictor: the Fig. 8b fill path. The incoming
// block's frame is matched against the PFQ; on a match, a confident bHIST
// counter bypasses the block, otherwise the block allocates with its DP bit
// set. Without a PFQ match the fill proceeds untouched.
func (p *CBPred) OnFill(blockNum uint64, _ uint64) pred.Decision {
	if p.cfg.UsePFQ && !p.q.Contains(frameOf(blockNum)) {
		return pred.Decision{}
	}
	p.stats.PFQMatches++
	if p.bhist[p.hash(blockNum)] > p.cfg.Threshold {
		p.stats.Predictions++
		return pred.Decision{Bypass: true, PredictDOA: true}
	}
	return pred.Decision{SetDP: true}
}

// OnEvict implements pred.LLCPredictor: the Fig. 8c eviction path. Only
// blocks with the DP bit train bHIST: an un-accessed DP block increments
// its counter; an accessed DP block proves the page's blocks live and
// clears it.
func (p *CBPred) OnEvict(b cache.Block) {
	if !b.DP {
		return
	}
	ctr := &p.bhist[p.hash(b.Key)]
	if b.Accessed {
		p.stats.Clears++
		*ctr = 0
		return
	}
	p.stats.Increments++
	if *ctr < p.ctrMax {
		*ctr++
	}
}

// StorageBits implements pred.LLCPredictor, reproducing the §V-D breakdown:
// two bits per LLC block (DP + Accessed), the bHIST counters, and the PFQ's
// 39-bit PFNs.
func (p *CBPred) StorageBits() uint64 {
	perBlock := 2 * uint64(p.cfg.LLCBlocks)
	bhist := uint64(len(p.bhist)) * uint64(p.cfg.CounterBits)
	pfqBits := uint64(p.q.Size()) * arch.PFNBits
	return perBlock + bhist + pfqBits
}

// Stats returns a snapshot of predictor activity.
func (p *CBPred) Stats() CBPredStats { return p.stats }

// Counter exposes a bHIST counter (for tests).
func (p *CBPred) Counter(blockNum uint64) uint8 { return p.bhist[p.hash(blockNum)] }

// AttachTracer implements obs.TraceAttacher: PFQ pushes are emitted
// through t (nil detaches).
func (p *CBPred) AttachTracer(t *obs.Tracer) { p.tr = t }

// RegisterMetrics implements obs.MetricSource, publishing the predictor's
// activity counters as probes.
func (p *CBPred) RegisterMetrics(r *obs.Registry) {
	r.RegisterProbe("cbpred.notifications", func() float64 { return float64(p.stats.Notifications) })
	r.RegisterProbe("cbpred.pfq_matches", func() float64 { return float64(p.stats.PFQMatches) })
	r.RegisterProbe("cbpred.predictions", func() float64 { return float64(p.stats.Predictions) })
	r.RegisterProbe("cbpred.increments", func() float64 { return float64(p.stats.Increments) })
	r.RegisterProbe("cbpred.clears", func() float64 { return float64(p.stats.Clears) })
}

// CounterHistogram implements obs.CounterHistogrammer: bucket v counts the
// bHIST counters currently holding v.
func (p *CBPred) CounterHistogram() []uint64 {
	return stats.Histogram8(p.ctrMax, p.bhist)
}

// PredictionQuality implements obs.QualitySource. cbPred has no victim
// buffer, so it cannot detect its own premature predictions (a bypassed
// block simply refetches from memory); the detected count is always 0 and
// the mirror-based confusion tracker supplies the ground truth.
func (p *CBPred) PredictionQuality() (predictions, detectedPremature uint64) {
	return p.stats.Predictions, 0
}

var (
	_ pred.LLCPredictor       = (*CBPred)(nil)
	_ pred.DOAPageListener    = (*CBPred)(nil)
	_ obs.TraceAttacher       = (*CBPred)(nil)
	_ obs.MetricSource        = (*CBPred)(nil)
	_ obs.CounterHistogrammer = (*CBPred)(nil)
	_ obs.QualitySource       = (*CBPred)(nil)
)
