package core

import (
	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/pred"
)

// clone deep-copies the shadow table.
func (s *shadowTable) clone() *shadowTable {
	return &shadowTable{
		entries: append([]shadowEntry(nil), s.entries...),
		next:    s.next,
	}
}

// clone deep-copies the PFN filter queue.
func (q *pfq) clone() *pfq {
	return &pfq{
		frames: append([]arch.PFN(nil), q.frames...),
		valid:  append([]bool(nil), q.valid...),
		next:   q.next,
	}
}

// CloneTLB implements pred.ClonableTLB: a deep copy of pHIST (single
// contiguous backing, like NewDPPred builds), the shadow table and the
// counters. The DOA-page listener and tracer are deliberately left
// disconnected — the forking simulator rewires the listener to its own
// cbPred clone, and forks always run without instrumentation.
func (p *DPPred) CloneTLB(*cache.Cache) (pred.TLBPredictor, error) {
	c := *p
	c.onDOAPage = nil
	c.tr = nil
	c.shadow = p.shadow.clone()
	rows := len(p.phist)
	cols := 0
	if rows > 0 {
		cols = len(p.phist[0])
	}
	c.phist = make([][]uint8, rows)
	backing := make([]uint8, rows*cols)
	for r := range c.phist {
		copy(backing[r*cols:(r+1)*cols], p.phist[r])
		c.phist[r] = backing[r*cols : (r+1)*cols]
	}
	return &c, nil
}

// CloneLLC implements pred.ClonableLLC: a deep copy of bHIST and the PFQ.
// The tracer is left disconnected (forks run uninstrumented).
func (p *CBPred) CloneLLC(*cache.Cache) (pred.LLCPredictor, error) {
	c := *p
	c.tr = nil
	c.bhist = append([]uint8(nil), p.bhist...)
	c.q = p.q.clone()
	return &c, nil
}

var (
	_ pred.ClonableTLB = (*DPPred)(nil)
	_ pred.ClonableLLC = (*CBPred)(nil)
)
