package core

import (
	"repro/internal/arch"
	"repro/internal/ckpt"
)

// EncodeState serializes dpPred's mutable state — the pHIST counters, the
// shadow table and the activity counters — for warm-state checkpointing.
// The one-entry hash memos are not stored: they are pure caches whose zero
// values are self-consistent.
func (p *DPPred) EncodeState(w *ckpt.Writer) {
	w.Mark("dppred")
	w.U64(uint64(len(p.phist)))
	cols := 0
	if len(p.phist) > 0 {
		cols = len(p.phist[0])
	}
	w.U64(uint64(cols))
	for _, row := range p.phist {
		w.Binary(row)
	}
	w.U64(uint64(len(p.shadow.entries)))
	for _, e := range p.shadow.entries {
		w.Bool(e.valid)
		w.U64(uint64(e.vpn))
		w.U64(uint64(e.pfn))
	}
	w.U64(uint64(p.shadow.next))
	w.Binary(&p.stats)
}

// DecodeState restores state written by EncodeState into a predictor built
// with the identical configuration.
func (p *DPPred) DecodeState(r *ckpt.Reader) error {
	r.Expect("dppred")
	cols := 0
	if len(p.phist) > 0 {
		cols = len(p.phist[0])
	}
	if rows, c := r.U64(), r.U64(); r.Err() == nil &&
		(rows != uint64(len(p.phist)) || c != uint64(cols)) {
		r.Failf("dppred: checkpoint pHIST %d×%d does not match configured %d×%d",
			rows, c, len(p.phist), cols)
	}
	for _, row := range p.phist {
		r.Binary(row)
	}
	if n := r.U64(); r.Err() == nil && n != uint64(len(p.shadow.entries)) {
		r.Failf("dppred: checkpoint shadow table size %d does not match configured %d",
			n, len(p.shadow.entries))
	}
	if r.Err() != nil {
		return r.Err()
	}
	for i := range p.shadow.entries {
		p.shadow.entries[i] = shadowEntry{
			valid: r.Bool(),
			vpn:   arch.VPN(r.U64()),
			pfn:   arch.PFN(r.U64()),
		}
	}
	p.shadow.next = int(r.U64())
	r.Binary(&p.stats)
	return r.Err()
}

// EncodeState serializes cbPred's mutable state — the bHIST counters, the
// PFN filter queue and the activity counters — for warm-state checkpointing.
func (p *CBPred) EncodeState(w *ckpt.Writer) {
	w.Mark("cbpred")
	w.U64(uint64(len(p.bhist)))
	w.Binary(p.bhist)
	w.U64(uint64(len(p.q.frames)))
	w.Binary(p.q.frames)
	w.Binary(p.q.valid)
	w.U64(uint64(p.q.next))
	w.Binary(&p.stats)
}

// DecodeState restores state written by EncodeState into a predictor built
// with the identical configuration.
func (p *CBPred) DecodeState(r *ckpt.Reader) error {
	r.Expect("cbpred")
	if n := r.U64(); r.Err() == nil && n != uint64(len(p.bhist)) {
		r.Failf("cbpred: checkpoint bHIST size %d does not match configured %d", n, len(p.bhist))
	}
	r.Binary(p.bhist)
	if n := r.U64(); r.Err() == nil && n != uint64(len(p.q.frames)) {
		r.Failf("cbpred: checkpoint PFQ size %d does not match configured %d", n, len(p.q.frames))
	}
	if r.Err() != nil {
		return r.Err()
	}
	r.Binary(p.q.frames)
	r.Binary(p.q.valid)
	p.q.next = int(r.U64())
	r.Binary(&p.stats)
	return r.Err()
}
