package core

import "repro/internal/arch"

// shadowEntry is one slot of dpPred's shadow table: the VPN of a recently
// bypassed (predicted-DOA) page together with its translation, so the table
// can serve as a victim buffer (§V-A).
type shadowEntry struct {
	valid bool
	vpn   arch.VPN
	pfn   arch.PFN
}

// shadowTable is the small FIFO victim buffer of §V-A (2 entries by
// default). A hit indicates a misprediction: the caller returns the
// translation, removes the entry and applies negative feedback to pHIST.
type shadowTable struct {
	entries []shadowEntry
	next    int // FIFO insertion cursor
}

// newShadowTable builds a table with n slots; n may be zero (dpPred−SH).
func newShadowTable(n int) *shadowTable {
	return &shadowTable{entries: make([]shadowEntry, n)}
}

// Insert records a bypassed translation, displacing the oldest slot.
func (s *shadowTable) Insert(vpn arch.VPN, pfn arch.PFN) {
	if len(s.entries) == 0 {
		return
	}
	s.entries[s.next] = shadowEntry{valid: true, vpn: vpn, pfn: pfn}
	s.next = (s.next + 1) % len(s.entries)
}

// Lookup finds and removes the entry for vpn, returning its translation.
func (s *shadowTable) Lookup(vpn arch.VPN) (arch.PFN, bool) {
	for i := range s.entries {
		e := &s.entries[i]
		if e.valid && e.vpn == vpn {
			pfn := e.pfn
			*e = shadowEntry{}
			return pfn, true
		}
	}
	return 0, false
}

// Len returns the number of valid entries (for tests and stats).
func (s *shadowTable) Len() int {
	n := 0
	for _, e := range s.entries {
		if e.valid {
			n++
		}
	}
	return n
}

// Size returns the configured slot count.
func (s *shadowTable) Size() int { return len(s.entries) }
