package core

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/xhash"
)

func newDP(t *testing.T) *DPPred {
	t.Helper()
	p, err := NewDPPred(DefaultDPPredConfig(1024))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// evict simulates the LLT evicting an entry for vpn that was filled by pc.
func evict(p *DPPred, vpn arch.VPN, pc uint64, accessed bool) {
	p.OnEvict(cache.Block{
		Key:      uint64(vpn),
		PCHash:   uint16(xhash.PC(pc, 6)),
		Accessed: accessed,
	})
}

func TestNewDPPredValidation(t *testing.T) {
	bad := []DPPredConfig{
		{PCBits: 0, VPNBits: 4, CounterBits: 3, Threshold: 6},
		{PCBits: 17, VPNBits: 4, CounterBits: 3, Threshold: 6},
		{PCBits: 6, VPNBits: 17, CounterBits: 3, Threshold: 6},
		{PCBits: 6, VPNBits: 4, CounterBits: 0, Threshold: 6},
		{PCBits: 6, VPNBits: 4, CounterBits: 3, Threshold: 7}, // unreachable
		{PCBits: 6, VPNBits: 4, CounterBits: 3, Threshold: 6, ShadowEntries: -1},
	}
	for i, cfg := range bad {
		if _, err := NewDPPred(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestTrainingToPrediction(t *testing.T) {
	p := newDP(t)
	const pc, vpn = 0x400123, arch.VPN(0x7000)
	// Below threshold: no prediction.
	for i := 0; i < 6; i++ {
		if d := p.OnFill(vpn, 1, pc); d.Bypass || d.PredictDOA {
			t.Fatalf("premature prediction after %d DOA evictions", i)
		}
		evict(p, vpn, pc, false)
	}
	// Counter is now 6; threshold is 6; counter must exceed it.
	if d := p.OnFill(vpn, 1, pc); d.Bypass {
		t.Fatal("prediction at counter == threshold; paper requires counter > threshold")
	}
	evict(p, vpn, pc, false) // counter 7
	d := p.OnFill(vpn, 1, pc)
	if !d.Bypass || !d.PredictDOA {
		t.Fatal("no prediction after counter exceeded threshold")
	}
	if p.Stats().Predictions != 1 {
		t.Errorf("Predictions = %d, want 1", p.Stats().Predictions)
	}
}

func TestCounterSaturates(t *testing.T) {
	p := newDP(t)
	const pc, vpn = 0x400123, arch.VPN(0x7000)
	for i := 0; i < 20; i++ {
		evict(p, vpn, pc, false)
	}
	if c := p.Counter(uint16(xhash.PC(pc, 6)), vpn); c != 7 {
		t.Errorf("counter = %d, want saturation at 7", c)
	}
}

func TestAccessedEvictionClearsCounter(t *testing.T) {
	p := newDP(t)
	const pc, vpn = 0x400123, arch.VPN(0x7000)
	for i := 0; i < 7; i++ {
		evict(p, vpn, pc, false)
	}
	evict(p, vpn, pc, true) // proved alive
	if c := p.Counter(uint16(xhash.PC(pc, 6)), vpn); c != 0 {
		t.Errorf("counter = %d after accessed eviction, want 0", c)
	}
	if p.Stats().Clears != 1 {
		t.Errorf("Clears = %d, want 1", p.Stats().Clears)
	}
}

func TestBypassedTranslationParkedInShadow(t *testing.T) {
	p := newDP(t)
	const pc, vpn = 0x400123, arch.VPN(0x7000)
	for i := 0; i < 7; i++ {
		evict(p, vpn, pc, false)
	}
	d := p.OnFill(vpn, 555, pc)
	if !d.Bypass {
		t.Fatal("expected bypass")
	}
	if p.ShadowLen() != 1 {
		t.Fatalf("shadow has %d entries, want 1", p.ShadowLen())
	}
	// The victim buffer serves the next miss to the same VPN.
	pfn, handled := p.OnMiss(vpn, pc)
	if !handled || pfn != 555 {
		t.Fatalf("OnMiss = %d,%v; want 555,true", pfn, handled)
	}
	// The entry is consumed.
	if _, handled := p.OnMiss(vpn, pc); handled {
		t.Error("shadow entry served twice")
	}
	if p.Stats().ShadowHits != 1 {
		t.Errorf("ShadowHits = %d, want 1", p.Stats().ShadowHits)
	}
}

func TestShadowHitFlushesColumn(t *testing.T) {
	p := newDP(t)
	const vpn = arch.VPN(0x7000)
	// Train two different PCs on the same VPN column.
	pcs := []uint64{0x400123, 0x500456}
	for _, pc := range pcs {
		for i := 0; i < 7; i++ {
			evict(p, vpn, pc, false)
		}
	}
	d := p.OnFill(vpn, 9, pcs[0])
	if !d.Bypass {
		t.Fatal("expected bypass")
	}
	if _, handled := p.OnMiss(vpn, pcs[0]); !handled {
		t.Fatal("expected shadow hit")
	}
	// Negative feedback: the whole column for h(VPN) is flushed.
	for _, pc := range pcs {
		if c := p.Counter(uint16(xhash.PC(pc, 6)), vpn); c != 0 {
			t.Errorf("counter for pc %#x = %d after flush, want 0", pc, c)
		}
	}
	if p.Stats().ColumnFlushes != 1 {
		t.Errorf("ColumnFlushes = %d, want 1", p.Stats().ColumnFlushes)
	}
}

func TestColumnFlushSparesOtherColumns(t *testing.T) {
	p := newDP(t)
	const pc = 0x400123
	// vpnA and vpnB must land in different pHIST columns.
	vpnA, vpnB := arch.VPN(0), arch.VPN(1)
	if xhash.VPN(uint64(vpnA), 4) == xhash.VPN(uint64(vpnB), 4) {
		t.Fatal("test VPNs collide; pick different ones")
	}
	for i := 0; i < 7; i++ {
		evict(p, vpnA, pc, false)
		evict(p, vpnB, pc, false)
	}
	p.OnFill(vpnA, 1, pc) // bypass → shadow
	p.OnMiss(vpnA, pc)    // shadow hit → flush column A
	if c := p.Counter(uint16(xhash.PC(pc, 6)), vpnB); c != 7 {
		t.Errorf("column B counter = %d after flushing column A, want 7", c)
	}
}

func TestShadowDisabledVariant(t *testing.T) {
	cfg := DefaultDPPredConfig(1024)
	cfg.ShadowEntries = 0 // dpPred−SH
	p, err := NewDPPred(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const pc, vpn = 0x400123, arch.VPN(0x7000)
	for i := 0; i < 7; i++ {
		evict(p, vpn, pc, false)
	}
	if d := p.OnFill(vpn, 1, pc); !d.Bypass {
		t.Fatal("dpPred−SH should still bypass")
	}
	if _, handled := p.OnMiss(vpn, pc); handled {
		t.Error("dpPred−SH has no victim buffer")
	}
}

func TestDOAPageListenerNotified(t *testing.T) {
	p := newDP(t)
	var got []arch.PFN
	p.SetDOAPageListener(func(f arch.PFN) { got = append(got, f) })
	const pc, vpn = 0x400123, arch.VPN(0x7000)
	for i := 0; i < 7; i++ {
		evict(p, vpn, pc, false)
	}
	p.OnFill(vpn, 321, pc)
	if len(got) != 1 || got[0] != 321 {
		t.Fatalf("listener saw %v, want [321]", got)
	}
}

func TestPConlyIndexing(t *testing.T) {
	cfg := DefaultDPPredConfig(1024)
	cfg.PCBits, cfg.VPNBits = 10, 0 // the Fig. 11b "10 bit PC" point
	p, err := NewDPPred(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const pc = 0x400123
	for i := 0; i < 7; i++ {
		p.OnEvict(cache.Block{Key: uint64(i), PCHash: uint16(xhash.PC(pc, 10)), Accessed: false})
	}
	// Any VPN from this PC is now predicted DOA.
	if d := p.OnFill(arch.VPN(12345), 1, pc); !d.Bypass {
		t.Error("PC-only predictor did not generalize across VPNs")
	}
}

func TestDPPredStorageBitsDefault(t *testing.T) {
	p := newDP(t)
	// §V-D: 896 B per-entry + 384 B pHIST + 26 B shadow = 1306 B.
	if got, want := p.StorageBits(), uint64(1306*8); got != want {
		t.Errorf("StorageBits = %d (%d bytes), want %d bytes", got, got/8, want/8)
	}
}

// Property: dpPred never predicts DOA for a (PC, VPN) pair whose pHIST
// counter has not exceeded the threshold via DOA evictions.
func TestNoSpontaneousPredictionProperty(t *testing.T) {
	f := func(pcs []uint16, vpns []uint16) bool {
		p, err := NewDPPred(DefaultDPPredConfig(1024))
		if err != nil {
			return false
		}
		n := len(pcs)
		if len(vpns) < n {
			n = len(vpns)
		}
		for i := 0; i < n; i++ {
			// Only accessed (non-DOA) evictions: counters stay 0.
			evict(p, arch.VPN(vpns[i]), uint64(pcs[i]), true)
			if d := p.OnFill(arch.VPN(vpns[i]), 1, uint64(pcs[i])); d.Bypass {
				return false
			}
		}
		return p.Stats().Predictions == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: counters stay within the configured width.
func TestCounterWidthProperty(t *testing.T) {
	f := func(events []uint16) bool {
		p, err := NewDPPred(DefaultDPPredConfig(1024))
		if err != nil {
			return false
		}
		for _, e := range events {
			evict(p, arch.VPN(e%64), uint64(e), e%5 == 0)
		}
		for pc := uint16(0); pc < 64; pc++ {
			for v := arch.VPN(0); v < 16; v++ {
				if p.Counter(pc, v) > 7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
