package core

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
)

// These property tests drive the predictors with randomized access streams
// (fixed seeds, so failures reproduce) and check the structural invariants
// the paper's storage budget depends on: saturating counters never leave
// [0, 2^bits-1], the shadow table never exceeds its configured occupancy,
// and the PFQ never holds more than its configured entries.

// checkPHISTBounds scans every pHIST counter.
func checkPHISTBounds(t *testing.T, p *DPPred, max uint8) {
	t.Helper()
	for r, row := range p.phist {
		for c, v := range row {
			if v > max {
				t.Fatalf("pHIST[%d][%d] = %d, outside [0,%d]", r, c, v, max)
			}
		}
	}
	h := p.CounterHistogram()
	if len(h) != int(max)+1 {
		t.Fatalf("CounterHistogram has %d buckets, want %d", len(h), int(max)+1)
	}
	var sum uint64
	for _, n := range h {
		sum += n
	}
	if want := uint64(len(p.phist) * len(p.phist[0])); sum != want {
		t.Fatalf("CounterHistogram tallies %d counters, table has %d", sum, want)
	}
}

func TestDPPredInvariantsUnderRandomStream(t *testing.T) {
	cfg := DefaultDPPredConfig(1024)
	p, err := NewDPPred(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const maxCtr = 7 // 3-bit counters

	rng := rand.New(rand.NewSource(1))
	// Small pools force hash collisions, shadow churn and counter
	// saturation within a short stream.
	vpn := func() arch.VPN { return arch.VPN(rng.Intn(64)) }
	pc := func() uint64 { return uint64(rng.Intn(16)) * 4 }

	for i := 0; i < 50_000; i++ {
		switch rng.Intn(4) {
		case 0:
			p.OnFill(vpn(), arch.PFN(rng.Intn(1024)), pc())
		case 1:
			p.OnMiss(vpn(), pc())
		case 2:
			p.OnEvict(cache.Block{
				Key:      uint64(vpn()),
				PCHash:   uint16(rng.Intn(1 << cfg.PCBits)),
				Accessed: rng.Intn(2) == 0,
			})
		case 3:
			p.OnHit(nil)
		}
		if got := p.ShadowLen(); got > cfg.ShadowEntries {
			t.Fatalf("step %d: shadow occupancy %d exceeds %d", i, got, cfg.ShadowEntries)
		}
		if i%500 == 0 {
			checkPHISTBounds(t, p, maxCtr)
		}
	}
	checkPHISTBounds(t, p, maxCtr)

	st := p.Stats()
	if st.Increments == 0 || st.Clears == 0 {
		t.Errorf("stream never trained both directions: %+v", st)
	}
}

// TestDPPredCounterSaturates pins the saturation edge: repeated dead
// evictions of one entry must park its counter exactly at the maximum, and
// one live eviction must clear it to zero.
func TestDPPredCounterSaturates(t *testing.T) {
	p, err := NewDPPred(DefaultDPPredConfig(1024))
	if err != nil {
		t.Fatal(err)
	}
	b := cache.Block{Key: 5, PCHash: 3}
	for i := 0; i < 100; i++ {
		p.OnEvict(b)
	}
	if got := p.Counter(3, 5); got != 7 {
		t.Errorf("counter after 100 dead evictions = %d, want saturated 7", got)
	}
	b.Accessed = true
	p.OnEvict(b)
	if got := p.Counter(3, 5); got != 0 {
		t.Errorf("counter after live eviction = %d, want 0", got)
	}
}

// TestShadowTableNeverExceedsCapacity also checks the FIFO displacement and
// hit-removes-entry semantics under random traffic.
func TestShadowTableNeverExceedsCapacity(t *testing.T) {
	s := newShadowTable(2)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10_000; i++ {
		if rng.Intn(3) == 0 {
			s.Lookup(arch.VPN(rng.Intn(8)))
		} else {
			s.Insert(arch.VPN(rng.Intn(8)), arch.PFN(i))
		}
		if got := s.Len(); got > 2 {
			t.Fatalf("step %d: shadow table holds %d entries, capacity 2", i, got)
		}
	}
	// A hit consumes the entry: the second lookup must miss.
	s.Insert(100, 200)
	if pfn, ok := s.Lookup(100); !ok || pfn != 200 {
		t.Fatalf("Lookup(100) = %d,%v after insert", pfn, ok)
	}
	if _, ok := s.Lookup(100); ok {
		t.Error("shadow entry survived its hit; victim buffer must consume")
	}
}

// checkBHISTBounds scans every bHIST counter.
func checkBHISTBounds(t *testing.T, p *CBPred, max uint8) {
	t.Helper()
	for i, v := range p.bhist {
		if v > max {
			t.Fatalf("bHIST[%d] = %d, outside [0,%d]", i, v, max)
		}
	}
}

// pfqLen counts valid PFQ slots (white-box; the queue is unexported).
func pfqLen(q *pfq) int {
	n := 0
	for _, v := range q.valid {
		if v {
			n++
		}
	}
	return n
}

func TestCBPredInvariantsUnderRandomStream(t *testing.T) {
	cfg := DefaultCBPredConfig(32768)
	p, err := NewCBPred(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	block := func() uint64 { return uint64(rng.Intn(4096)) }

	for i := 0; i < 50_000; i++ {
		switch rng.Intn(3) {
		case 0:
			p.NotifyDOAPage(arch.PFN(rng.Intn(128)))
		case 1:
			p.OnFill(block(), 0)
		case 2:
			p.OnEvict(cache.Block{
				Key:      block(),
				DP:       rng.Intn(2) == 0,
				Accessed: rng.Intn(2) == 0,
			})
		}
		if got := pfqLen(p.q); got > cfg.PFQEntries {
			t.Fatalf("step %d: PFQ holds %d frames, capacity %d", i, got, cfg.PFQEntries)
		}
		if i%500 == 0 {
			checkBHISTBounds(t, p, 7)
		}
	}
	checkBHISTBounds(t, p, 7)
}

// TestPFQFIFODisplacement pins the FIFO contract: after capacity+1 distinct
// inserts the oldest frame is gone and the newest 8 remain matchable.
func TestPFQFIFODisplacement(t *testing.T) {
	q := newPFQ(8)
	for f := arch.PFN(0); f < 9; f++ {
		q.Insert(f)
	}
	if q.Contains(0) {
		t.Error("oldest frame survived displacement in an 8-entry FIFO")
	}
	for f := arch.PFN(1); f < 9; f++ {
		if !q.Contains(f) {
			t.Errorf("frame %d missing; the newest 8 must remain", f)
		}
	}
	if got := pfqLen(q); got != 8 {
		t.Errorf("PFQ holds %d frames after 9 inserts, want 8", got)
	}
}

// TestCBPredOnlyDPBlocksTrain: evictions without the DP bit must leave
// bHIST untouched (the PFQ pre-filter is the accuracy mechanism of §V-B).
func TestCBPredOnlyDPBlocksTrain(t *testing.T) {
	p, err := NewCBPred(DefaultCBPredConfig(32768))
	if err != nil {
		t.Fatal(err)
	}
	const blk = 42
	for i := 0; i < 20; i++ {
		p.OnEvict(cache.Block{Key: blk, DP: false, Accessed: false})
	}
	if got := p.Counter(blk); got != 0 {
		t.Errorf("non-DP evictions trained bHIST to %d, want 0", got)
	}
	st := p.Stats()
	if st.Increments != 0 || st.Clears != 0 {
		t.Errorf("non-DP evictions recorded training events: %+v", st)
	}
}
