// Package core implements the paper's contribution: the dead-page
// predictor for the last-level TLB (dpPred, §V-A) and the correlating dead
// block predictor for the last-level cache (cbPred, §V-B).
//
// dpPred predicts dead-on-arrival (DOA) pages with a novel two-dimensional
// history table (pHIST) of 3-bit saturating counters, indexed by a 6-bit
// hash of the program counter on one axis and a 4-bit hash of the virtual
// page number on the other. Predicted-DOA translations bypass the LLT and
// park in a tiny shadow table that doubles as a victim buffer; a shadow hit
// signals a misprediction and flushes the pHIST column for that VPN hash
// (negative feedback).
//
// cbPred leverages the observation (§IV-B) that DOA blocks concentrate on
// DOA pages: an 8-entry FIFO PFN filter queue (PFQ) holds the frames of
// recently predicted DOA pages, and only blocks landing on those frames
// train or consult a 4096-entry bHIST table of 3-bit counters. The
// filtering gives cbPred ≥98% accuracy with roughly 6×–11× less storage
// than conventional LLC dead-block predictors.
//
// Both predictors implement the interfaces in internal/pred and plug into
// the simulator in internal/sim; internal/stats grades every prediction
// against mirror-structure ground truth.
package core
