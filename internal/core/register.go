package core

import (
	"repro/internal/cache"
	"repro/internal/pred"
)

// init registers the paper's own predictors and the tournament duels in
// the arena registry (see internal/pred/registry.go). The duels pit the
// paper's bypassing predictors against the sampler-based SDBP newcomer
// with DIP-style set dueling: leader sets always apply one contestant,
// follower sets obey the shared PSEL counter, and both contestants keep
// training regardless of who is applied.
func init() {
	pred.MustRegister(pred.Registration{
		Name: "dpPred",
		Kind: pred.KindTLB,
		Caps: pred.Caps{Bypasses: true, VictimBuffer: true},
		NewTLB: func(llt *cache.Cache) (pred.TLBPredictor, error) {
			return NewDPPred(DefaultDPPredConfig(llt.Capacity()))
		},
		StorageBits: dpPredStorageBits,
	})
	pred.MustRegister(pred.Registration{
		Name: "cbPred",
		Kind: pred.KindLLC,
		Caps: pred.Caps{Bypasses: true, NeedsDOACoupling: true},
		NewLLC: func(llc *cache.Cache) (pred.LLCPredictor, error) {
			return NewCBPred(DefaultCBPredConfig(llc.Capacity()))
		},
		StorageBits: cbPredStorageBits,
	})
	pred.MustRegister(pred.Registration{
		Name: "duel(dpPred,SDBP)",
		Kind: pred.KindTLB,
		Caps: pred.Caps{Bypasses: true, VictimBuffer: true, Demotes: true},
		NewTLB: func(llt *cache.Cache) (pred.TLBPredictor, error) {
			a, err := NewDPPred(DefaultDPPredConfig(llt.Capacity()))
			if err != nil {
				return nil, err
			}
			b, err := pred.NewSDBPTLB(pred.DefaultSDBPTLBConfig(llt.Capacity()), llt)
			if err != nil {
				return nil, err
			}
			return pred.NewTournamentTLB("duel(dpPred,SDBP)", a, b, llt)
		},
		StorageBits: func(entries int) uint64 {
			return dpPredStorageBits(entries) +
				pred.DefaultSDBPTLBConfig(entries).StorageBits() + duelPSELBits
		},
	})
	pred.MustRegister(pred.Registration{
		Name: "duel(cbPred,SDBP)",
		Kind: pred.KindLLC,
		Caps: pred.Caps{Bypasses: true, Demotes: true, NeedsDOACoupling: true},
		NewLLC: func(llc *cache.Cache) (pred.LLCPredictor, error) {
			a, err := NewCBPred(DefaultCBPredConfig(llc.Capacity()))
			if err != nil {
				return nil, err
			}
			b, err := pred.NewSDBPLLC(pred.DefaultSDBPLLCConfig(llc.Capacity()), llc)
			if err != nil {
				return nil, err
			}
			return pred.NewTournamentLLC("duel(cbPred,SDBP)", a, b, llc)
		},
		StorageBits: func(blocks int) uint64 {
			return cbPredStorageBits(blocks) +
				pred.DefaultSDBPLLCConfig(blocks).StorageBits() + duelPSELBits
		},
	})
}

// duelPSELBits is the tournament selector's own state: the shared 10-bit
// PSEL counter plus sign (policy.NewDuel's default).
const duelPSELBits = 11

// dpPredStorageBits accounts dpPred's budget for an LLT of the given entry
// count without building a system (construction is cheap and exact: the
// predictor's own StorageBits reproduces the §V-D breakdown).
func dpPredStorageBits(entries int) uint64 {
	p, err := NewDPPred(DefaultDPPredConfig(entries))
	if err != nil {
		return 0
	}
	return p.StorageBits()
}

// cbPredStorageBits is the LLC-side counterpart.
func cbPredStorageBits(blocks int) uint64 {
	p, err := NewCBPred(DefaultCBPredConfig(blocks))
	if err != nil {
		return 0
	}
	return p.StorageBits()
}
