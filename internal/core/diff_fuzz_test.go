package core

import (
	"bytes"
	"hash/fnv"
	"testing"

	"repro/internal/cache"
	"repro/internal/policy"
	"repro/internal/pred"
	"repro/internal/trace"
)

// Differential fuzzing for the predictor arena: every registered TLB
// predictor is driven over a decoded DPBF trace buffer through the
// simulator's hook protocol (OnAccess → Lookup → OnHit / OnMiss → OnFill →
// fill/bypass → OnEvict) against an independent naive LRU reference model
// that mirrors only the *applied* decisions. Predictors that do not steer
// victim selection (no Victimizes capability) must agree with the
// reference on every hit and every eviction; all predictors must respect
// their registered capabilities and replay deterministically.

// refModel is the independent reference: a set-associative LRU structure
// holding bare keys, with none of the cache package's machinery.
type refModel struct {
	sets [][]uint64 // per set, keys ordered LRU (front) → MRU (back)
	ways int
}

func newRefModel(sets, ways int) *refModel {
	return &refModel{sets: make([][]uint64, sets), ways: ways}
}

func (m *refModel) setOf(key uint64) int { return int(key % uint64(len(m.sets))) }

// lookup reports residency and promotes a hit to MRU.
func (m *refModel) lookup(key uint64) bool {
	s := m.sets[m.setOf(key)]
	for i, k := range s {
		if k == key {
			m.sets[m.setOf(key)] = append(append(s[:i:i], s[i+1:]...), key)
			return true
		}
	}
	return false
}

// fill inserts a key, evicting the LRU key of a full set. A distant
// insert makes the new key the set's immediate next victim, mirroring
// policy.InsertDistant.
func (m *refModel) fill(key uint64, distant bool) (victim uint64, evicted bool) {
	si := m.setOf(key)
	s := m.sets[si]
	if len(s) == m.ways {
		victim, evicted = s[0], true
		s = append(s[:0:0], s[1:]...)
	}
	if distant {
		s = append([]uint64{key}, s...)
	} else {
		s = append(s, key)
	}
	m.sets[si] = s
	return victim, evicted
}

// diffGeometry keeps the harness structures small enough that short fuzz
// inputs still exercise evictions.
const (
	diffSets = 16
	diffWays = 4
	diffCap  = 1024 // accesses driven per predictor per input
)

// driveTLB replays the buffer through one predictor instance and returns a
// digest of its observable behavior. With checkRef it asserts lockstep
// hit/victim agreement with the naive reference.
func driveTLB(t *testing.T, reg pred.Registration, buf *trace.Buffer, checkRef bool) uint64 {
	t.Helper()
	guard, err := cache.New(cache.Config{Name: "fuzz-llt", Sets: diffSets, Ways: diffWays})
	if err != nil {
		t.Fatal(err)
	}
	p, err := reg.NewTLB(guard)
	if err != nil {
		t.Fatalf("%s: construct: %v", reg.Name, err)
	}
	obsv, _ := p.(pred.AccessObserver)
	ff, _ := p.(pred.FillFinisher)
	ref := newRefModel(diffSets, diffWays)
	dig := fnv.New64a()
	note := func(vs ...uint64) {
		var b [8]byte
		for _, v := range vs {
			for i := range b {
				b[i] = byte(v >> (8 * i))
			}
			dig.Write(b[:])
		}
	}

	n := buf.Len()
	if n > diffCap {
		n = diffCap
	}
	for i := uint64(0); i < n; i++ {
		a := buf.At(i)
		vpn := a.Addr.Page()
		key := uint64(vpn)
		now := i + 1
		if obsv != nil {
			obsv.OnAccess(key)
		}
		if b, ok := guard.Lookup(key, now); ok {
			p.OnHit(b)
			note(1, key)
			if refHit := ref.lookup(key); checkRef && !refHit {
				t.Fatalf("%s: access %d: guard hit key %#x but reference missed — resident sets diverged",
					reg.Name, i, key)
			}
			continue
		}
		if checkRef && ref.lookup(key) {
			t.Fatalf("%s: access %d: guard missed key %#x but reference hit — resident sets diverged",
				reg.Name, i, key)
		}
		var d pred.Decision
		if _, handled := p.OnMiss(vpn, a.PC); handled {
			if !reg.Caps.VictimBuffer {
				t.Fatalf("%s: served a miss from a victim buffer without the VictimBuffer capability", reg.Name)
			}
			note(2, key)
			// The simulator refills a shadow hit without consulting
			// OnFill (Fig. 6a); d stays the zero decision.
		} else {
			d = p.OnFill(vpn, 0, a.PC)
			if d.Bypass {
				if !reg.Caps.Bypasses {
					t.Fatalf("%s: bypassed a fill without the Bypasses capability", reg.Name)
				}
				if !d.PredictDOA {
					t.Fatalf("%s: bypass without a DOA claim cannot be graded", reg.Name)
				}
				note(3, key)
				continue
			}
			if d.Hint == policy.InsertDistant && !reg.Caps.Demotes {
				t.Fatalf("%s: demoted a fill without the Demotes capability", reg.Name)
			}
		}
		nb, victim, evicted := guard.Fill(key, d.Hint, now)
		nb.PCHash = d.PCHash
		nb.Sig = d.Sig
		if ff != nil {
			ff.OnFillDone(nb)
		}
		refVictim, refEvicted := ref.fill(key, d.Hint == policy.InsertDistant)
		if checkRef {
			if evicted != refEvicted {
				t.Fatalf("%s: access %d: guard evicted=%v, reference evicted=%v",
					reg.Name, i, evicted, refEvicted)
			}
			if evicted && victim.Key != refVictim {
				t.Fatalf("%s: access %d: guard victimized %#x, reference %#x",
					reg.Name, i, victim.Key, refVictim)
			}
		}
		if evicted {
			note(4, victim.Key)
			p.OnEvict(victim)
		}
		note(5, key)
	}
	return dig.Sum64()
}

// FuzzPredictorVsReference cross-checks every registered TLB predictor
// against the naive reference model on fuzzed DPBF trace buffers.
func FuzzPredictorVsReference(f *testing.F) {
	for wi, w := range trace.Workloads() {
		if wi >= 2 {
			break
		}
		buf, err := trace.Materialize(w.New(1), 512)
		if err != nil {
			f.Fatal(err)
		}
		var sink bytes.Buffer
		if _, err := buf.WriteTo(&sink); err != nil {
			f.Fatal(err)
		}
		f.Add(sink.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		buf, err := trace.ReadBuffer(bytes.NewReader(data))
		if err != nil {
			t.Skip() // not a decodable buffer; the codec has its own fuzzer
		}
		for _, name := range pred.TLBNames() {
			reg, err := pred.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			// Victimizing predictors legitimately steer the guard's
			// eviction order away from plain LRU; they still must obey
			// their capabilities and replay deterministically.
			checkRef := !reg.Caps.Victimizes
			d1 := driveTLB(t, reg, buf, checkRef)
			d2 := driveTLB(t, reg, buf, checkRef)
			if d1 != d2 {
				t.Fatalf("%s: nondeterministic replay: digests %#x vs %#x", name, d1, d2)
			}
		}
	})
}

// TestPredictorVsReferenceSeeds runs the differential harness over the
// seed workloads under plain `go test`, so the cross-check guards every CI
// run, not just the fuzz-smoke job.
func TestPredictorVsReferenceSeeds(t *testing.T) {
	for wi, w := range trace.Workloads() {
		if wi >= 3 {
			break
		}
		buf, err := trace.Materialize(w.New(7), diffCap)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range pred.TLBNames() {
			reg, err := pred.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			checkRef := !reg.Caps.Victimizes
			d1 := driveTLB(t, reg, buf, checkRef)
			d2 := driveTLB(t, reg, buf, checkRef)
			if d1 != d2 {
				t.Fatalf("%s on %s: nondeterministic replay", name, w.Name)
			}
		}
	}
}
