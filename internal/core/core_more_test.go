package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/xhash"
)

func TestShadowTableFIFO(t *testing.T) {
	s := newShadowTable(2)
	s.Insert(1, 10)
	s.Insert(2, 20)
	s.Insert(3, 30) // displaces 1
	if _, ok := s.Lookup(1); ok {
		t.Error("displaced entry still present")
	}
	if pfn, ok := s.Lookup(2); !ok || pfn != 20 {
		t.Errorf("Lookup(2) = %d,%v", pfn, ok)
	}
	if pfn, ok := s.Lookup(3); !ok || pfn != 30 {
		t.Errorf("Lookup(3) = %d,%v", pfn, ok)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after consuming all entries, want 0", s.Len())
	}
}

func TestShadowTableZeroSized(t *testing.T) {
	s := newShadowTable(0)
	s.Insert(1, 10) // must not panic
	if _, ok := s.Lookup(1); ok {
		t.Error("zero-sized shadow table held an entry")
	}
	if s.Size() != 0 {
		t.Errorf("Size = %d, want 0", s.Size())
	}
}

func TestDPPredPCOnlyColumnFlushIsGlobal(t *testing.T) {
	// With VPNBits=0 the table is one column; a shadow hit flushes the
	// whole predictor — the correct degeneration of the 2-D design.
	cfg := DefaultDPPredConfig(1024)
	cfg.PCBits, cfg.VPNBits = 10, 0
	p, err := NewDPPred(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pcs := []uint64{0x400100, 0x400200}
	for _, pc := range pcs {
		for i := 0; i < 7; i++ {
			p.OnEvict(cacheBlock(arch.VPN(1), pc, 10, false))
		}
	}
	d := p.OnFill(arch.VPN(5), 50, pcs[0])
	if !d.Bypass {
		t.Fatal("expected bypass")
	}
	if _, ok := p.OnMiss(arch.VPN(5), pcs[0]); !ok {
		t.Fatal("expected shadow hit")
	}
	for _, pc := range pcs {
		if c := p.Counter(uint16(xhash.PC(pc, 10)), arch.VPN(5)); c != 0 {
			t.Errorf("counter for pc %#x = %d after global flush, want 0", pc, c)
		}
	}
}

func TestPFQSizeAccessor(t *testing.T) {
	p, err := NewCBPred(DefaultCBPredConfig(32768))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.q.Size(); got != 8 {
		t.Errorf("PFQ size = %d, want 8", got)
	}
}

func TestFrameOfBlock(t *testing.T) {
	// Block number 64·f + k lives on frame f.
	if got := frameOf(64*7 + 5); got != 7 {
		t.Errorf("frameOf = %d, want 7", got)
	}
	if got := frameOf(0); got != 0 {
		t.Errorf("frameOf(0) = %d, want 0", got)
	}
}

func TestCBPredDuplicateNotificationsHarmless(t *testing.T) {
	p, err := NewCBPred(DefaultCBPredConfig(32768))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p.NotifyDOAPage(42)
	}
	if d := p.OnFill(blockOn(42, 0), 0); !d.SetDP {
		t.Error("frame lost despite repeated notification")
	}
	if p.Stats().Notifications != 20 {
		t.Errorf("Notifications = %d, want 20", p.Stats().Notifications)
	}
}

// cacheBlock builds an eviction-shaped block for dpPred training.
func cacheBlock(vpn arch.VPN, pc uint64, pcBits uint, accessed bool) cache.Block {
	return cache.Block{
		Key:      uint64(vpn),
		PCHash:   uint16(xhash.PC(pc, pcBits)),
		Accessed: accessed,
	}
}
