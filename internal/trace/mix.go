package trace

import (
	"fmt"
	"math"

	"repro/internal/arch"
)

// Pattern selects how a stream walks its region.
type Pattern int

const (
	// Sequential walks the region element by element, wrapping.
	Sequential Pattern = iota
	// Strided walks with a fixed stride (often crossing pages), wrapping.
	Strided
	// Random touches uniformly random elements of the region (or of the
	// current window when WindowSize is set).
	Random
	// PointerChase touches random elements with each access dependent on
	// the previous one (a linked traversal).
	PointerChase
	// HotCold touches a small hot subset with probability HotFrac and
	// the whole region otherwise.
	HotCold
	// Skewed draws elements with a power-law bias toward the front of
	// the region (SkewAlpha controls concentration): a few ultra-hot
	// pages, a warm band, and a long cold tail — the reuse profile of
	// real graph data. All heat classes share the stream's PC, which is
	// what makes dead-page prediction non-trivial.
	Skewed
)

// StreamSpec describes one access stream of a workload: a set of
// instruction sites walking one memory region with one pattern.
type StreamSpec struct {
	// Label names the stream in diagnostics ("neighbors", "rowptr"...).
	Label string
	// PC is the address of the stream's (first) instruction site.
	PC uint64
	// PCCount spreads the stream over this many distinct sites 16 bytes
	// apart (default 1).
	PCCount int
	// Pattern is the walk pattern.
	Pattern Pattern
	// Base and Size delimit the stream's region in bytes.
	Base arch.VAddr
	Size uint64
	// ElemSize is the access granularity in bytes (default 8).
	ElemSize uint64
	// Stride is the step for Strided walks (default ElemSize).
	Stride uint64
	// HotFrac and HotSize configure HotCold: HotFrac of accesses go to
	// the first HotSize bytes of the region.
	HotFrac float64
	HotSize uint64
	// SkewAlpha configures Skewed: the accessed element index is
	// N·U^SkewAlpha for uniform U, so larger values concentrate accesses
	// on the front of the region (must be ≥ 1).
	SkewAlpha float64
	// WindowSize confines Random/HotCold/PointerChase accesses to a
	// sliding window that advances by WindowSize every PhaseLen
	// accesses of the whole mix (frontier-style phase behaviour).
	WindowSize uint64
	// Weight is the stream's share of the mix.
	Weight int
	// Write marks the stream's accesses as stores.
	Write bool
}

// MixSpec is a full workload specification.
type MixSpec struct {
	// Name is the workload name.
	Name string
	// GapMin and GapMax bound the uniform number of non-memory
	// instructions between accesses.
	GapMin, GapMax uint32
	// PhaseLen is the number of accesses per phase for streams with a
	// WindowSize (0 disables phasing).
	PhaseLen uint64
	// Streams is the weighted stream set; at least one required.
	Streams []StreamSpec
}

// Validate checks the specification and fills defaults in place.
func (m *MixSpec) Validate() error {
	if len(m.Streams) == 0 {
		return fmt.Errorf("trace %q: no streams", m.Name)
	}
	if m.GapMax < m.GapMin {
		return fmt.Errorf("trace %q: GapMax < GapMin", m.Name)
	}
	for i := range m.Streams {
		s := &m.Streams[i]
		if s.ElemSize == 0 {
			s.ElemSize = 8
		}
		if s.Stride == 0 {
			s.Stride = s.ElemSize
		}
		if s.PCCount <= 0 {
			s.PCCount = 1
		}
		if s.Weight <= 0 {
			return fmt.Errorf("trace %q stream %q: weight must be positive", m.Name, s.Label)
		}
		if s.Size < s.ElemSize {
			return fmt.Errorf("trace %q stream %q: region smaller than one element", m.Name, s.Label)
		}
		if s.Pattern == HotCold && (s.HotSize == 0 || s.HotSize > s.Size) {
			return fmt.Errorf("trace %q stream %q: HotCold needs 0 < HotSize ≤ Size", m.Name, s.Label)
		}
		if s.Pattern == Skewed && s.SkewAlpha < 1 {
			return fmt.Errorf("trace %q stream %q: Skewed needs SkewAlpha ≥ 1", m.Name, s.Label)
		}
		if s.WindowSize > s.Size {
			return fmt.Errorf("trace %q stream %q: window larger than region", m.Name, s.Label)
		}
	}
	return nil
}

// mixGen is the engine executing a MixSpec.
type mixGen struct {
	spec   MixSpec
	r      *rng
	totalW int
	pos    []uint64   // per-stream running byte offset (pre-wrapped)
	win    []uint64   // per-stream window base offset
	sites  [][]uint64 // per-stream instruction-site PCs
	elems  []uint64   // per-stream element count (Size/ElemSize), immutable
	span   []uint64   // per-stream wrap length (elems*ElemSize), immutable
	count  uint64
}

// NewMix builds a generator from a specification (validated, with defaults
// applied to a private copy).
func NewMix(spec MixSpec, seed uint64) (Generator, error) {
	spec.Streams = append([]StreamSpec(nil), spec.Streams...)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &mixGen{
		spec:  spec,
		r:     newRNG(seed ^ hashName(spec.Name)),
		pos:   make([]uint64, len(spec.Streams)),
		win:   make([]uint64, len(spec.Streams)),
		sites: make([][]uint64, len(spec.Streams)),
		elems: make([]uint64, len(spec.Streams)),
		span:  make([]uint64, len(spec.Streams)),
	}
	for i, s := range spec.Streams {
		g.totalW += s.Weight
		g.sites[i] = makeSites(s.PC, s.PCCount)
		g.elems[i] = s.Size / s.ElemSize
		g.span[i] = g.elems[i] * s.ElemSize
	}
	return g, nil
}

// makeSites scatters a stream's instruction sites pseudo-randomly within
// 16 KB of its base PC. Compiled code places the loads of a loop nest at
// irregular offsets; regular power-of-two spacing would interact with the
// predictors' folding hashes in ways real binaries do not.
func makeSites(base uint64, n int) []uint64 {
	sites := make([]uint64, n)
	seen := make(map[uint64]bool, n)
	h := base
	for i := range sites {
		for {
			h += 0x9e3779b97f4a7c15
			z := h
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			pc := base + (z^(z>>31))%0x4000&^0xF
			if !seen[pc] {
				seen[pc] = true
				sites[i] = pc
				break
			}
		}
	}
	return sites
}

// hashName folds the workload name into the seed so that equal seeds give
// unrelated streams across workloads.
func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Name implements Generator.
func (g *mixGen) Name() string { return g.spec.Name }

// Fork implements ForkableGenerator: the copy carries its own RNG state and
// per-stream cursors so both generators continue the identical stream
// independently. The spec, instruction sites and per-stream geometry are
// immutable after NewMix and stay shared.
func (g *mixGen) Fork() Generator {
	c := *g
	c.r = g.r.clone()
	c.pos = append([]uint64(nil), g.pos...)
	c.win = append([]uint64(nil), g.win...)
	return &c
}

// Next implements Generator.
func (g *mixGen) Next() Access {
	g.count++
	if g.spec.PhaseLen != 0 && g.count%g.spec.PhaseLen == 0 {
		g.advanceWindows()
	}

	si := g.pickStream()
	s := &g.spec.Streams[si]

	var off uint64
	dependent := false
	elems := g.elems[si]
	switch s.Pattern {
	case Sequential:
		// pos holds the current byte offset, already reduced mod span;
		// the span is a whole number of elements, so the wrap is exact.
		off = g.pos[si]
		g.pos[si] += s.ElemSize
		if g.pos[si] >= g.span[si] {
			g.pos[si] = 0
		}
	case Strided:
		off = g.pos[si]
		g.pos[si] += s.Stride
		for g.pos[si] >= g.span[si] {
			g.pos[si] -= g.span[si]
		}
	case Random:
		off = g.windowed(si, s, g.r.Uint64n(elems)*s.ElemSize)
	case PointerChase:
		idx := g.r.Uint64n(elems)
		if s.SkewAlpha >= 1 {
			// Linked structures with skewed node popularity (mcf's
			// network arcs) chase through hot and cold nodes alike.
			idx = uint64(float64(elems) * math.Pow(g.r.Float64(), s.SkewAlpha))
			if idx >= elems {
				idx = elems - 1
			}
		}
		off = g.windowed(si, s, idx*s.ElemSize)
		dependent = true
	case HotCold:
		if g.r.Float64() < s.HotFrac {
			hotElems := s.HotSize / s.ElemSize
			off = g.r.Uint64n(hotElems) * s.ElemSize
		} else {
			off = g.windowed(si, s, g.r.Uint64n(elems)*s.ElemSize)
		}
	case Skewed:
		idx := uint64(float64(elems) * math.Pow(g.r.Float64(), s.SkewAlpha))
		if idx >= elems {
			idx = elems - 1
		}
		off = g.windowed(si, s, idx*s.ElemSize)
	}

	pc := g.sites[si][0]
	if s.PCCount > 1 {
		pc = g.sites[si][g.r.Intn(s.PCCount)]
	}

	gap := g.spec.GapMin
	if g.spec.GapMax > g.spec.GapMin {
		gap += uint32(g.r.Uint64n(uint64(g.spec.GapMax-g.spec.GapMin) + 1))
	}

	return Access{
		PC:        pc,
		Addr:      s.Base + arch.VAddr(off),
		Write:     s.Write,
		Dependent: dependent,
		Gap:       gap,
	}
}

// windowed confines a random offset to the stream's current window.
func (g *mixGen) windowed(si int, s *StreamSpec, off uint64) uint64 {
	if s.WindowSize == 0 {
		return off
	}
	return (g.win[si] + off%s.WindowSize) % g.span[si]
}

// advanceWindows slides every windowed stream to its next phase.
func (g *mixGen) advanceWindows() {
	for i := range g.spec.Streams {
		s := &g.spec.Streams[i]
		if s.WindowSize != 0 {
			g.win[i] = (g.win[i] + s.WindowSize) % g.span[i]
		}
	}
}

// pickStream selects a stream proportionally to its weight.
func (g *mixGen) pickStream() int {
	w := g.r.Intn(g.totalW)
	for i := range g.spec.Streams {
		w -= g.spec.Streams[i].Weight
		if w < 0 {
			return i
		}
	}
	return len(g.spec.Streams) - 1
}
