package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// The checked-in DPBF v1 fixture pins the read side of the retired v1
// format: tracedump can no longer write v1, so without a frozen artifact a
// regression in the v1 decoder would go unnoticed until someone's archived
// trace failed to load. The fixture is 40k accesses of the cc workload at
// seed 1, written by Buffer.WriteTo before v1 writing was removed.
const v1Fixture = "testdata/cc-40k-v1.dpbf"

func readV1Fixture(t *testing.T) *Buffer {
	t.Helper()
	f, err := os.Open(v1Fixture)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b, err := ReadTrace(f)
	if err != nil {
		t.Fatalf("reading v1 fixture: %v", err)
	}
	return b
}

func TestV1FixtureReads(t *testing.T) {
	b := readV1Fixture(t)
	if b.Name() != "cc" {
		t.Fatalf("fixture names workload %q, want cc", b.Name())
	}
	if b.Len() != 40_000 {
		t.Fatalf("fixture holds %d accesses, want 40000", b.Len())
	}
	// The fixture was recorded from the deterministic cc generator, so it
	// must match a fresh materialization access for access — v1 decoding
	// and generator determinism pinned together.
	w, err := ByName("cc")
	if err != nil {
		t.Fatal(err)
	}
	want, err := Materialize(w.New(1), 40_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < b.Len(); i++ {
		if b.At(i) != want.At(i) {
			t.Fatalf("access %d: fixture %+v, generator %+v", i, b.At(i), want.At(i))
		}
	}
}

// TestV1FixtureConverts is the upgrade path the tracedump -v1 error points
// at: a v1 file re-encoded to v2 replays bit-identically and lands much
// smaller (the compressed columnar layout is the reason v1 writing died).
func TestV1FixtureConverts(t *testing.T) {
	b := readV1Fixture(t)
	var v2 bytes.Buffer
	if _, err := b.WriteToV2(&v2); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.FromSlash(v1Fixture))
	if err != nil {
		t.Fatal(err)
	}
	if int64(v2.Len())*4 > info.Size() {
		t.Fatalf("v2 re-encode is %d bytes vs %d v1 — the ≥4x compression claim broke", v2.Len(), info.Size())
	}
	rt, err := ReadTrace(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatalf("re-reading converted v2: %v", err)
	}
	if rt.Name() != b.Name() || rt.Len() != b.Len() {
		t.Fatalf("converted trace is %q/%d, want %q/%d", rt.Name(), rt.Len(), b.Name(), b.Len())
	}
	for i := uint64(0); i < b.Len(); i++ {
		if rt.At(i) != b.At(i) {
			t.Fatalf("access %d diverged across v1→v2 conversion", i)
		}
	}
}
