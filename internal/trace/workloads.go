package trace

import (
	"fmt"

	"repro/internal/arch"
)

// Region bases: each workload lays its regions out from lowBase upward
// with generous guard gaps, so streams never alias.
const (
	regionBase  = arch.VAddr(0x1000_0000)
	regionAlign = 4 << 20 // 4 MB guard/alignment between regions
)

// layout assigns non-overlapping region bases.
type layout struct {
	next arch.VAddr
}

func newLayout() *layout { return &layout{next: regionBase} }

func (l *layout) region(size uint64) arch.VAddr {
	base := l.next
	span := (arch.VAddr(size) + regionAlign - 1) / regionAlign * regionAlign
	l.next += span + regionAlign
	return base
}

// pcBase gives each workload a distinct code page so instruction-side
// translations do not alias across experiments.
func pcBase(i int) uint64 { return 0x0040_0000 + uint64(i)<<20 }

const (
	kb = uint64(1) << 10
	mb = uint64(1) << 20
)

// Workloads returns the Table II suite in the paper's order.
//
// The decisive modelling choice (§IV intuition): reuse within a data
// structure is power-law skewed and shares instruction sites, so a PC sees
// a mix of ultra-hot, warm and dead-on-arrival pages. Streaming sweeps and
// index scans are pure-DOA from stable PCs; gathers carry Zipf-like skew.
// That is what lets dpPred's two-dimensional (PC × VPN) table, conservative
// threshold and shadow-table feedback beat a per-PC signature predictor,
// exactly as §VI argues.
func Workloads() []Workload {
	return []Workload{
		cactusADM(), cc(), cgB(), sssp(), lbm(), triangle(), kcore(),
		canneal(), pr(), graph500(), bfs(), bc(), mis(), mcf(),
	}
}

// ByName finds a workload by its Table II name.
func ByName(name string) (Workload, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("trace: unknown workload %q", name)
}

// mustMix wraps NewMix for the static specifications below, which are
// validated by tests.
func mustMix(spec MixSpec, seed uint64) Generator {
	g, err := NewMix(spec, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// cactusADM — SPEC 2006 general-relativity stencil. The solver sweeps a
// large grid with page-crossing strides (every access a fresh page: pure
// DOA from stable PCs) while a skewed coefficient-table working set wants
// to stay resident. Bypassing the sweep protects the tables — the paper's
// biggest winner.
func cactusADM() Workload {
	const idx = 0
	l := newLayout()
	grid := l.region(56 * mb)
	coeff := l.region(8 * mb)
	bound := l.region(512 * kb)
	spec := MixSpec{
		Name:   "cactusADM",
		GapMin: 2, GapMax: 6,
		Streams: []StreamSpec{
			{Label: "grid-sweep", PC: pcBase(idx), PCCount: 24, Pattern: Strided,
				Base: grid, Size: 56 * mb, Stride: 4352, Weight: 5},
			{Label: "coeff", PC: pcBase(idx) + 0x1000, PCCount: 24, Pattern: Skewed,
				Base: coeff, Size: 8 * mb, SkewAlpha: 3.0, Weight: 4},
			{Label: "boundary", PC: pcBase(idx) + 0x2000, PCCount: 24, Pattern: Random,
				Base: bound, Size: 512 * kb, Weight: 1, Write: true},
		},
	}
	return Workload{
		Name: "cactusADM", Suite: "SPEC 2006",
		Description: "stencil sweep with page-crossing strides plus skewed coefficient tables",
		FootprintMB: 65,
		New:         func(seed uint64) Generator { return mustMix(spec, seed) },
	}
}

// cc — GAPBS connected components: label-propagation over a CSR graph.
// Sequential offset/edge scans plus a skewed component-label gather.
func cc() Workload {
	const idx = 1
	l := newLayout()
	offs := l.region(8 * mb)
	edges := l.region(32 * mb)
	labels := l.region(12 * mb)
	spec := MixSpec{
		Name:   "cc",
		GapMin: 3, GapMax: 9,
		Streams: []StreamSpec{
			{Label: "offsets", PC: pcBase(idx), PCCount: 24, Pattern: Sequential,
				Base: offs, Size: 8 * mb, Weight: 2},
			{Label: "edges", PC: pcBase(idx) + 0x1000, PCCount: 24, Pattern: Sequential,
				Base: edges, Size: 32 * mb, Weight: 4},
			{Label: "labels", PC: pcBase(idx) + 0x2000, PCCount: 24, Pattern: Skewed,
				Base: labels, Size: 12 * mb, SkewAlpha: 2.5, Weight: 4, Write: true},
		},
	}
	return Workload{
		Name: "cc", Suite: "GAPBS",
		Description: "label propagation: CSR scans plus skewed label gathers",
		FootprintMB: 52,
		New:         func(seed uint64) Generator { return mustMix(spec, seed) },
	}
}

// cgB — NAS Conjugate Gradient (class B): sparse matrix–vector products.
// Index streams scan sequentially; the x-vector gather is random with mild
// skew (matrix rows revisit popular columns), and a small p/q vector set is
// hot.
func cgB() Workload {
	const idx = 2
	l := newLayout()
	rows := l.region(4 * mb)
	cols := l.region(24 * mb)
	x := l.region(20 * mb)
	hot := l.region(2 * mb)
	spec := MixSpec{
		Name:   "cg.B",
		GapMin: 2, GapMax: 7,
		Streams: []StreamSpec{
			{Label: "rowptr", PC: pcBase(idx), PCCount: 24, Pattern: Sequential,
				Base: rows, Size: 4 * mb, Weight: 1},
			{Label: "colidx", PC: pcBase(idx) + 0x1000, PCCount: 24, Pattern: Sequential,
				Base: cols, Size: 24 * mb, Weight: 4},
			{Label: "x-gather", PC: pcBase(idx) + 0x2000, PCCount: 24, Pattern: Skewed,
				Base: x, Size: 20 * mb, SkewAlpha: 1.6, Weight: 4},
			{Label: "p-vector", PC: pcBase(idx) + 0x3000, PCCount: 24, Pattern: Random,
				Base: hot, Size: 2 * mb, Weight: 2, Write: true},
		},
	}
	return Workload{
		Name: "cg.B", Suite: "NPB",
		Description: "sparse mat-vec: sequential index streams and a mildly skewed x-vector gather",
		FootprintMB: 50,
		New:         func(seed uint64) Generator { return mustMix(spec, seed) },
	}
}

// sssp — GAPBS single-source shortest path (delta-stepping): large cold
// edge gathers, a phased distance-array frontier, and a skewed bucket
// structure.
func sssp() Workload {
	const idx = 3
	l := newLayout()
	edges := l.region(48 * mb)
	dist := l.region(16 * mb)
	bucket := l.region(3 * mb)
	spec := MixSpec{
		Name:     "sssp",
		GapMin:   2,
		GapMax:   8,
		PhaseLen: 60_000,
		Streams: []StreamSpec{
			{Label: "edge-gather", PC: pcBase(idx), PCCount: 24, Pattern: Random,
				Base: edges, Size: 48 * mb, Weight: 5},
			{Label: "dist-frontier", PC: pcBase(idx) + 0x1000, PCCount: 24, Pattern: Random,
				Base: dist, Size: 16 * mb, WindowSize: 2 * mb, Weight: 3, Write: true},
			{Label: "bucket", PC: pcBase(idx) + 0x2000, PCCount: 24, Pattern: Skewed,
				Base: bucket, Size: 3 * mb, SkewAlpha: 2.0, Weight: 2},
		},
	}
	return Workload{
		Name: "sssp", Suite: "GAPBS",
		Description: "delta-stepping: cold edge gathers plus a phased distance-array frontier",
		FootprintMB: 67,
		New:         func(seed uint64) Generator { return mustMix(spec, seed) },
	}
}

// lbm — SPEC 2017 lattice-Boltzmann: two full-grid sweeps per step with
// large strides between cell fields plus a skewed parameter-table set;
// almost every sweep fill is DOA and perfectly predictable.
func lbm() Workload {
	const idx = 4
	l := newLayout()
	src := l.region(40 * mb)
	dst := l.region(40 * mb)
	params := l.region(6 * mb)
	spec := MixSpec{
		Name:   "lbm",
		GapMin: 3, GapMax: 8,
		Streams: []StreamSpec{
			{Label: "src-sweep", PC: pcBase(idx), PCCount: 24, Pattern: Strided,
				Base: src, Size: 40 * mb, Stride: 4608, Weight: 4},
			{Label: "dst-sweep", PC: pcBase(idx) + 0x1000, PCCount: 24, Pattern: Strided,
				Base: dst, Size: 40 * mb, Stride: 4608, Weight: 4, Write: true},
			{Label: "params", PC: pcBase(idx) + 0x2000, PCCount: 24, Pattern: Skewed,
				Base: params, Size: 6 * mb, SkewAlpha: 3.0, Weight: 3},
		},
	}
	return Workload{
		Name: "lbm", Suite: "SPEC 2017",
		Description: "lattice-Boltzmann grid sweeps with page-crossing strides",
		FootprintMB: 86,
		New:         func(seed uint64) Generator { return mustMix(spec, seed) },
	}
}

// triangle — Ligra triangle counting: intersections of adjacency lists
// with heavy hub skew on shared instruction sites, which muddies per-PC
// training (low coverage, as in Table VI).
func triangle() Workload {
	const idx = 5
	l := newLayout()
	adj := l.region(40 * mb)
	counts := l.region(2 * mb)
	spec := MixSpec{
		Name:   "Triangle",
		GapMin: 2, GapMax: 6,
		Streams: []StreamSpec{
			{Label: "adj-intersect", PC: pcBase(idx), PCCount: 24, Pattern: Skewed,
				Base: adj, Size: 40 * mb, SkewAlpha: 3.5, Weight: 7},
			{Label: "counts", PC: pcBase(idx) + 0x1000, PCCount: 24, Pattern: Random,
				Base: counts, Size: 2 * mb, Weight: 2, Write: true},
			{Label: "offsets", PC: pcBase(idx) + 0x2000, PCCount: 24, Pattern: Sequential,
				Base: adj, Size: 40 * mb, Weight: 1},
		},
	}
	return Workload{
		Name: "Triangle", Suite: "Ligra",
		Description: "adjacency-list intersection with heavy hub skew on shared PCs",
		FootprintMB: 42,
		New:         func(seed uint64) Generator { return mustMix(spec, seed) },
	}
}

// kcore — Ligra k-core decomposition: repeated peeling rounds over
// shrinking active sets; degree updates dominate.
func kcore() Workload {
	const idx = 6
	l := newLayout()
	adj := l.region(36 * mb)
	deg := l.region(8 * mb)
	active := l.region(2 * mb)
	spec := MixSpec{
		Name:     "KCore",
		GapMin:   3,
		GapMax:   8,
		PhaseLen: 100_000,
		Streams: []StreamSpec{
			{Label: "adj-scan", PC: pcBase(idx), PCCount: 24, Pattern: Random,
				Base: adj, Size: 36 * mb, Weight: 4},
			{Label: "degree", PC: pcBase(idx) + 0x1000, PCCount: 24, Pattern: Skewed,
				Base: deg, Size: 8 * mb, SkewAlpha: 2.2, Weight: 3, Write: true},
			{Label: "active", PC: pcBase(idx) + 0x2000, PCCount: 24, Pattern: Random,
				Base: active, Size: 2 * mb, Weight: 3},
		},
	}
	return Workload{
		Name: "KCore", Suite: "Ligra",
		Description: "iterative peeling: cold adjacency gathers and skewed degree updates",
		FootprintMB: 46,
		New:         func(seed uint64) Generator { return mustMix(spec, seed) },
	}
}

// canneal — PARSEC simulated annealing for chip routing: random element
// swaps over a large netlist with weak skew and little repetition in which
// pages die — a hard case (13% coverage in Table VI).
func canneal() Workload {
	const idx = 7
	l := newLayout()
	nets := l.region(44 * mb)
	temp := l.region(1 * mb)
	spec := MixSpec{
		Name:   "canneal",
		GapMin: 4, GapMax: 12,
		Streams: []StreamSpec{
			{Label: "swap-a", PC: pcBase(idx), PCCount: 24, Pattern: Skewed,
				Base: nets, Size: 44 * mb, SkewAlpha: 2.0, Weight: 4, Write: true},
			{Label: "swap-b", PC: pcBase(idx) + 0x1000, PCCount: 24, Pattern: Skewed,
				Base: nets, Size: 44 * mb, SkewAlpha: 2.0, Weight: 4},
			{Label: "temperature", PC: pcBase(idx) + 0x2000, PCCount: 24, Pattern: Random,
				Base: temp, Size: 1 * mb, Weight: 2},
		},
	}
	return Workload{
		Name: "canneal", Suite: "PARSEC",
		Description: "random netlist element swaps with weak, PC-shared locality",
		FootprintMB: 45,
		New:         func(seed uint64) Generator { return mustMix(spec, seed) },
	}
}

// pr — GAPBS PageRank: pull-style rank gathers over the whole graph with
// only the lightest skew. Nearly everything is DOA, so there is little
// useful content for bypassing to protect (the paper's AIP/SHiP even lose
// performance here).
func pr() Workload {
	const idx = 8
	l := newLayout()
	ranks := l.region(48 * mb)
	edges := l.region(24 * mb)
	spec := MixSpec{
		Name:   "pr",
		GapMin: 2, GapMax: 6,
		Streams: []StreamSpec{
			{Label: "rank-gather", PC: pcBase(idx), PCCount: 24, Pattern: Skewed,
				Base: ranks, Size: 48 * mb, SkewAlpha: 1.3, Weight: 6},
			{Label: "edge-scan", PC: pcBase(idx) + 0x1000, PCCount: 24, Pattern: Sequential,
				Base: edges, Size: 24 * mb, Weight: 3},
			{Label: "rank-store", PC: pcBase(idx) + 0x2000, PCCount: 24, Pattern: Sequential,
				Base: ranks, Size: 48 * mb, Weight: 1, Write: true},
		},
	}
	return Workload{
		Name: "pr", Suite: "GAPBS",
		Description: "pull PageRank: near-uniform rank gathers with no protectable hot set",
		FootprintMB: 72,
		New:         func(seed uint64) Generator { return mustMix(spec, seed) },
	}
}

// graph500 — BFS and SSSP over a synthetic Kronecker graph: bursty,
// skewed gathers with a phased visited array.
func graph500() Workload {
	const idx = 9
	l := newLayout()
	edges := l.region(40 * mb)
	visit := l.region(12 * mb)
	front := l.region(2 * mb)
	spec := MixSpec{
		Name:     "graph500",
		GapMin:   2,
		GapMax:   7,
		PhaseLen: 80_000,
		Streams: []StreamSpec{
			{Label: "edge-gather", PC: pcBase(idx), PCCount: 24, Pattern: Skewed,
				Base: edges, Size: 40 * mb, SkewAlpha: 2.8, Weight: 5},
			{Label: "visited", PC: pcBase(idx) + 0x1000, PCCount: 24, Pattern: Random,
				Base: visit, Size: 12 * mb, WindowSize: 3 * mb, Weight: 3, Write: true},
			{Label: "frontier", PC: pcBase(idx) + 0x2000, PCCount: 24, Pattern: Random,
				Base: front, Size: 2 * mb, Weight: 2},
		},
	}
	return Workload{
		Name: "graph500", Suite: "Graph500",
		Description: "Kronecker-graph BFS/SSSP: skewed gathers with a phased visited array",
		FootprintMB: 54,
		New:         func(seed uint64) Generator { return mustMix(spec, seed) },
	}
}

// bfs — Ligra breadth-first search: sharp frontier phases with strong
// within-phase reuse; whether a page dies depends on the frontier, not the
// PC, so neither PC-indexed predictor finds anything stable to learn (0%
// MPKI reduction in Table IV).
func bfs() Workload {
	const idx = 10
	l := newLayout()
	adj := l.region(40 * mb)
	front := l.region(16 * mb)
	spec := MixSpec{
		Name:     "bfs",
		GapMin:   2,
		GapMax:   6,
		PhaseLen: 25_000,
		Streams: []StreamSpec{
			{Label: "adj-gather", PC: pcBase(idx), PCCount: 24, Pattern: Random,
				Base: adj, Size: 40 * mb, WindowSize: 3 * mb, Weight: 5},
			{Label: "frontier", PC: pcBase(idx) + 0x1000, PCCount: 24, Pattern: Random,
				Base: front, Size: 16 * mb, WindowSize: 1536 * kb, Weight: 4, Write: true},
			{Label: "parent", PC: pcBase(idx) + 0x2000, PCCount: 24, Pattern: Random,
				Base: front, Size: 16 * mb, WindowSize: 1536 * kb, Weight: 1, Write: true},
		},
	}
	return Workload{
		Name: "bfs", Suite: "Ligra",
		Description: "frontier-phased BFS where page death is frontier-, not PC-, determined",
		FootprintMB: 56,
		New:         func(seed uint64) Generator { return mustMix(spec, seed) },
	}
}

// bc — GAPBS betweenness centrality: forward BFS plus backward dependency
// accumulation; pure cold adjacency gathers with a skewed accumulation
// structure.
func bc() Workload {
	const idx = 11
	l := newLayout()
	adj := l.region(44 * mb)
	dep := l.region(16 * mb)
	sigma := l.region(3 * mb)
	spec := MixSpec{
		Name:     "bc",
		GapMin:   2,
		GapMax:   7,
		PhaseLen: 70_000,
		Streams: []StreamSpec{
			{Label: "adj-gather", PC: pcBase(idx), PCCount: 24, Pattern: Random,
				Base: adj, Size: 44 * mb, Weight: 4},
			{Label: "depend", PC: pcBase(idx) + 0x1000, PCCount: 24, Pattern: Random,
				Base: dep, Size: 16 * mb, WindowSize: 3 * mb, Weight: 3, Write: true},
			{Label: "sigma", PC: pcBase(idx) + 0x2000, PCCount: 24, Pattern: Skewed,
				Base: sigma, Size: 3 * mb, SkewAlpha: 2.5, Weight: 3},
		},
	}
	return Workload{
		Name: "bc", Suite: "GAPBS",
		Description: "betweenness centrality: random adjacency gathers plus skewed accumulation",
		FootprintMB: 63,
		New:         func(seed uint64) Generator { return mustMix(spec, seed) },
	}
}

// mis — Ligra maximal independent set: rounds over a shrinking candidate
// set with strong within-round reuse; most dead entries are *not* DOA (the
// entry is used a few times in a round, then dies), defeating a
// DOA-focused predictor (Table IV: 0%).
func mis() Workload {
	const idx = 12
	l := newLayout()
	cand := l.region(36 * mb)
	state := l.region(8 * mb)
	spec := MixSpec{
		Name:     "mis",
		GapMin:   3,
		GapMax:   9,
		PhaseLen: 20_000,
		Streams: []StreamSpec{
			{Label: "candidates", PC: pcBase(idx), PCCount: 24, Pattern: Random,
				Base: cand, Size: 36 * mb, WindowSize: 2 * mb, Weight: 5},
			{Label: "state", PC: pcBase(idx) + 0x1000, PCCount: 24, Pattern: Random,
				Base: state, Size: 8 * mb, WindowSize: 1 * mb, Weight: 4, Write: true},
		},
	}
	return Workload{
		Name: "mis", Suite: "Ligra",
		Description: "round-based MIS whose dead pages are mostly not dead-on-arrival",
		FootprintMB: 44,
		New:         func(seed uint64) Generator { return mustMix(spec, seed) },
	}
}

// mcf — SPEC 2006 minimum-cost network flow: pointer chasing over arcs
// with skewed node popularity and data-dependent, effectively random page
// death (the paper's hardest case: 67% accuracy, 10% coverage).
func mcf() Workload {
	const idx = 13
	l := newLayout()
	arcs := l.region(40 * mb)
	nodes := l.region(8 * mb)
	spec := MixSpec{
		Name:   "mcf",
		GapMin: 3, GapMax: 10,
		Streams: []StreamSpec{
			{Label: "arc-chase", PC: pcBase(idx), PCCount: 24, Pattern: PointerChase,
				Base: arcs, Size: 40 * mb, SkewAlpha: 2.2, Weight: 5},
			{Label: "node-update", PC: pcBase(idx) + 0x1000, PCCount: 24, Pattern: Skewed,
				Base: nodes, Size: 8 * mb, SkewAlpha: 2.0, Weight: 4, Write: true},
		},
	}
	return Workload{
		Name: "mcf", Suite: "SPEC 2006",
		Description: "network-simplex pointer chasing with data-dependent page death",
		FootprintMB: 48,
		New:         func(seed uint64) Generator { return mustMix(spec, seed) },
	}
}
