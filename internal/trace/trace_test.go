package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := newRNG(1), newRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestUint64nRange(t *testing.T) {
	r := newRNG(7)
	for _, n := range []uint64{1, 2, 3, 100, 1 << 40} {
		for i := 0; i < 100; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d", n, v)
			}
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := newRNG(9)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v", f)
		}
	}
}

func TestMixValidation(t *testing.T) {
	bad := []MixSpec{
		{Name: "empty"},
		{Name: "gap", GapMin: 5, GapMax: 1,
			Streams: []StreamSpec{{Size: 64, Weight: 1}}},
		{Name: "weight", Streams: []StreamSpec{{Size: 64, Weight: 0}}},
		{Name: "tiny", Streams: []StreamSpec{{Size: 4, ElemSize: 8, Weight: 1}}},
		{Name: "hot", Streams: []StreamSpec{{Size: 64, Weight: 1, Pattern: HotCold}}},
		{Name: "win", Streams: []StreamSpec{{Size: 64, Weight: 1, WindowSize: 128}}},
	}
	for _, spec := range bad {
		if _, err := NewMix(spec, 1); err == nil {
			t.Errorf("spec %q accepted", spec.Name)
		}
	}
}

func TestMixDeterministic(t *testing.T) {
	w, err := ByName("cc")
	if err != nil {
		t.Fatal(err)
	}
	a, b := w.New(5), w.New(5)
	for i := 0; i < 5000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("trace diverged at access %d", i)
		}
	}
	c := w.New(6)
	diff := false
	aa := w.New(5)
	for i := 0; i < 100; i++ {
		if aa.Next() != c.Next() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical traces")
	}
}

func TestAllWorkloadsWellFormed(t *testing.T) {
	ws := Workloads()
	if len(ws) != 14 {
		t.Fatalf("suite has %d workloads, want 14 (Table II)", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		if w.Suite == "" || w.Description == "" || w.FootprintMB <= 0 {
			t.Errorf("workload %q missing metadata: %+v", w.Name, w)
		}
		g := w.New(1)
		if g.Name() != w.Name {
			t.Errorf("generator name %q != workload name %q", g.Name(), w.Name)
		}
	}
}

func TestAccessesStayInDeclaredRegions(t *testing.T) {
	for _, w := range Workloads() {
		g := w.New(3)
		var lo, hi arch.VAddr = 1 << 62, 0
		for i := 0; i < 20000; i++ {
			a := g.Next()
			if a.Addr < lo {
				lo = a.Addr
			}
			if a.Addr > hi {
				hi = a.Addr
			}
			if a.PC == 0 {
				t.Fatalf("%s: zero PC", w.Name)
			}
		}
		if lo < regionBase {
			t.Errorf("%s: access below region base: %#x", w.Name, lo)
		}
		span := int((hi - lo) >> 20)
		if span > 4*w.FootprintMB {
			t.Errorf("%s: address span %d MB far exceeds footprint %d MB",
				w.Name, span, w.FootprintMB)
		}
	}
}

func TestFootprintReasonablyCovered(t *testing.T) {
	// Every workload should touch a large number of distinct pages —
	// they are chosen to pressure a 1024-entry LLT.
	for _, w := range Workloads() {
		g := w.New(11)
		pages := map[arch.VPN]bool{}
		for i := 0; i < 200000; i++ {
			pages[g.Next().Addr.Page()] = true
		}
		if len(pages) < 2048 {
			t.Errorf("%s touches only %d distinct pages in 200k accesses",
				w.Name, len(pages))
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("doom3"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestPointerChaseMarksDependent(t *testing.T) {
	w, err := ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	g := w.New(1)
	dep := 0
	for i := 0; i < 10000; i++ {
		if g.Next().Dependent {
			dep++
		}
	}
	if dep == 0 {
		t.Error("mcf produced no dependent accesses")
	}
}

func TestGapsWithinBounds(t *testing.T) {
	for _, w := range Workloads() {
		g := w.New(2)
		for i := 0; i < 1000; i++ {
			a := g.Next()
			if a.Gap > 64 {
				t.Fatalf("%s: gap %d implausibly large", w.Name, a.Gap)
			}
		}
	}
}

func TestPhasedStreamsMoveWindows(t *testing.T) {
	w, err := ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	g := w.New(4)
	// Collect the frontier stream's pages early and late: the windows
	// must shift (different page sets).
	early := map[arch.VPN]bool{}
	for i := 0; i < 10000; i++ {
		early[g.Next().Addr.Page()] = true
	}
	for i := 0; i < 300000; i++ {
		g.Next()
	}
	late := map[arch.VPN]bool{}
	for i := 0; i < 10000; i++ {
		late[g.Next().Addr.Page()] = true
	}
	common := 0
	for p := range late {
		if early[p] {
			common++
		}
	}
	if common > len(late)*3/4 {
		t.Errorf("windows did not move: %d/%d pages shared", common, len(late))
	}
}

// Property: the mix engine respects stream weights within sampling noise.
func TestWeightsRespectedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		spec := MixSpec{
			Name: "wtest",
			Streams: []StreamSpec{
				{Label: "a", PC: 0x1000, Pattern: Sequential, Base: 0x10000, Size: 1 * mb, Weight: 3},
				{Label: "b", PC: 0x2000, Pattern: Sequential, Base: 0x200000, Size: 1 * mb, Weight: 1},
			},
		}
		g, err := NewMix(spec, seed)
		if err != nil {
			return false
		}
		const n = 20000
		aCount := 0
		for i := 0; i < n; i++ {
			if g.Next().Addr < 0x200000 {
				aCount++
			}
		}
		frac := float64(aCount) / n
		return frac > 0.70 && frac < 0.80 // expected 0.75
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
