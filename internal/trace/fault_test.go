package trace

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/faultio"
)

// recordedTrace writes a small DPTR trace with a one-byte name, so record
// i's flags byte sits at a computable offset: 11-byte header + i*24 + 20.
func recordedTrace(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, "x")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tw.Write(Access{PC: uint64(i + 1), Addr: 0x1000, Gap: 1, Write: i%2 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

const (
	testHdrLen   = 4 + 6 + 1 // magic + version/flags/namelen + name "x"
	testFlagsOff = 20
	testPadOff   = 21
)

// TestReplayerLatchesTruncatedRecord: a trace cut mid-record (crashed
// writer, partial copy) must latch a truncation error instead of silently
// repeating the last good access.
func TestReplayerLatchesTruncatedRecord(t *testing.T) {
	raw := recordedTrace(t, 4)
	cut := int64(testHdrLen + 2*recordSize + 7) // record 2 ends mid-record
	rp, err := NewReplayer(faultio.Truncate(bytes.NewReader(raw), cut), false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		rp.Next()
	}
	err = rp.Err()
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("Err() = %v, want a record-2 truncation error", err)
	}
	if !strings.Contains(err.Error(), "record 2") {
		t.Errorf("Err() = %v, want the failing record index (2)", err)
	}
}

// TestReplayerLatchesMidStreamReadError: an I/O error mid-stream (dying
// mount, closed pipe) must latch, stick, and stop advancing the stream.
func TestReplayerLatchesMidStreamReadError(t *testing.T) {
	raw := recordedTrace(t, 4)
	fail := int64(testHdrLen + recordSize) // record 0 readable, record 1 dies
	rp, err := NewReplayer(faultio.NewFailingReader(bytes.NewReader(raw), fail, nil), false)
	if err != nil {
		t.Fatal(err)
	}
	first := rp.Next()
	if err := rp.Err(); err != nil {
		t.Fatal(err)
	}
	got := rp.Next()
	if !errors.Is(rp.Err(), faultio.ErrInjected) {
		t.Fatalf("Err() = %v, want wrapped faultio.ErrInjected", rp.Err())
	}
	if got != first {
		t.Errorf("post-error Next() = %+v, want last good access %+v", got, first)
	}
}

// TestReplayerRejectsReservedFlagBits: flipped bits in a record's flags
// byte (bits 2..7 are reserved) must latch a validation error.
func TestReplayerRejectsReservedFlagBits(t *testing.T) {
	raw := recordedTrace(t, 3)
	off := int64(testHdrLen + recordSize + testFlagsOff)
	rp, err := NewReplayer(faultio.NewCorruptReader(bytes.NewReader(raw), off), false)
	if err != nil {
		t.Fatal(err)
	}
	rp.Next() // record 0 fine
	rp.Next() // record 1 corrupt
	err = rp.Err()
	if err == nil || !strings.Contains(err.Error(), "reserved record flag bits") {
		t.Fatalf("Err() = %v, want reserved-flag-bits rejection", err)
	}
}

// TestReplayerRejectsNonzeroPad: a corrupted pad byte means the record is
// not one this version wrote; both readers must reject it.
func TestReplayerRejectsNonzeroPad(t *testing.T) {
	raw := recordedTrace(t, 3)
	off := int64(testHdrLen + recordSize + testPadOff)
	rp, err := NewReplayer(faultio.NewCorruptReader(bytes.NewReader(raw), off), false)
	if err != nil {
		t.Fatal(err)
	}
	rp.Next()
	rp.Next()
	err = rp.Err()
	if err == nil || !strings.Contains(err.Error(), "nonzero pad bytes") {
		t.Fatalf("Err() = %v, want nonzero-pad rejection", err)
	}
}

// TestReadTraceRejectsCorruptRecords: the whole-file reader must apply the
// same record validation as the streaming replayer.
func TestReadTraceRejectsCorruptRecords(t *testing.T) {
	raw := recordedTrace(t, 3)
	cases := map[string]struct {
		r    io.Reader
		want string
	}{
		"truncated mid-record": {
			faultio.Truncate(bytes.NewReader(raw), int64(testHdrLen+recordSize+5)),
			"truncated",
		},
		"reserved flag bits": {
			faultio.NewCorruptReader(bytes.NewReader(raw), int64(testHdrLen+testFlagsOff)),
			"reserved record flag bits",
		},
		"nonzero pad": {
			faultio.NewCorruptReader(bytes.NewReader(raw), int64(testHdrLen+2*recordSize+testPadOff)),
			"nonzero pad bytes",
		},
		"read error": {
			faultio.NewFailingReader(bytes.NewReader(raw), int64(testHdrLen+recordSize), nil),
			"record 1",
		},
	}
	for name, tc := range cases {
		_, err := ReadTrace(tc.r)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", name, err, tc.want)
		}
	}
}

// TestReadBufferSurfacesInjectedFaults: DPBF decoding over a dying or
// truncated source must fail cleanly, naming the array being read.
func TestReadBufferSurfacesInjectedFaults(t *testing.T) {
	var good bytes.Buffer
	if _, err := mustMaterialize(t, mustByName(t, "cc").New(1), 64).WriteTo(&good); err != nil {
		t.Fatal(err)
	}
	raw := good.Bytes()

	if _, err := ReadBuffer(faultio.Truncate(bytes.NewReader(raw), int64(len(raw)-7))); err == nil {
		t.Error("truncated DPBF accepted")
	}
	_, err := ReadBuffer(faultio.NewFailingReader(bytes.NewReader(raw), int64(len(raw)/2), nil))
	if !errors.Is(err, faultio.ErrInjected) {
		t.Errorf("mid-read failure: err = %v, want wrapped faultio.ErrInjected", err)
	}
}

// TestMaterializeSurfacesGeneratorError: materializing from a source that
// dies mid-stream must fail instead of returning a buffer padded with the
// repeated final access.
func TestMaterializeSurfacesGeneratorError(t *testing.T) {
	raw := recordedTrace(t, 8)
	rp, err := NewReplayer(faultio.Truncate(bytes.NewReader(raw), int64(testHdrLen+3*recordSize+1)), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Materialize(rp, 8); err == nil {
		t.Fatal("Materialize over a truncated replay succeeded")
	}
}

// TestMaterializeEmptyBufferReader: draining a reader over an empty buffer
// must fail (errEmptyTrace) rather than yield zero-valued accesses.
func TestMaterializeEmptyBufferReader(t *testing.T) {
	rd := NewBuffer("empty", 0).Reader()
	if _, err := Materialize(rd, 4); err == nil {
		t.Fatal("Materialize over an empty buffer succeeded")
	}
	if !errors.Is(rd.Err(), errEmptyTrace) {
		t.Errorf("Err() = %v, want errEmptyTrace", rd.Err())
	}
}

// TestRecordToFullDisk: recording onto a full disk must return the write
// error instead of reporting a successful capture.
func TestRecordToFullDisk(t *testing.T) {
	w := faultio.NewFailingWriter(nil, int64(testHdrLen+2*recordSize), nil)
	err := Record(w, mustByName(t, "cc").New(1), 100)
	if !errors.Is(err, faultio.ErrNoSpace) {
		t.Fatalf("err = %v, want wrapped faultio.ErrNoSpace", err)
	}
}

// TestBufferWriteToFullDisk: DPBF dumps must surface the sink error too.
func TestBufferWriteToFullDisk(t *testing.T) {
	b := mustMaterialize(t, mustByName(t, "cc").New(1), 256)
	w := faultio.NewFailingWriter(nil, 100, nil)
	if _, err := b.WriteTo(w); !errors.Is(err, faultio.ErrNoSpace) {
		t.Fatalf("err = %v, want wrapped faultio.ErrNoSpace", err)
	}
}

// TestRecordAndMaterializeHonorCancellation: both drain loops must stop
// with the context's error when canceled before (or during) the drain.
func TestRecordAndMaterializeHonorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := mustByName(t, "cc").New(1)
	if err := RecordContext(ctx, io.Discard, g, 1_000_000); !errors.Is(err, context.Canceled) {
		t.Errorf("RecordContext err = %v, want context.Canceled", err)
	}
	if _, err := MaterializeContext(ctx, g, 1_000_000); !errors.Is(err, context.Canceled) {
		t.Errorf("MaterializeContext err = %v, want context.Canceled", err)
	}
}
