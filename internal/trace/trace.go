// Package trace generates the memory-access traces that drive the
// simulator. Real SPEC/GAPBS/Ligra/PARSEC/NPB binaries cannot run in this
// offline environment, so each of the paper's 14 workloads (Table II) is
// modelled as a deterministic synthetic generator that reproduces the
// documented access structure of its namesake: CSR graph gathers, stencil
// sweeps, sparse matrix–vector products, pointer chasing, random element
// swaps (DESIGN.md, substitution 2).
//
// A workload is a weighted mix of streams, each with its own instruction
// site (PC), memory region and access pattern. The decisive property for
// this paper is which streams produce dead-on-arrival pages and blocks:
// random gathers over large regions touch a page (and a block) once per
// last-level-TLB generation — DOA — while sequential index scans touch
// every line of a page before leaving it. Because streams have distinct
// PCs, DOA behaviour correlates with the PC exactly as dpPred expects.
package trace

import "repro/internal/arch"

// Access is one record of the trace.
type Access struct {
	// PC is the address of the memory instruction.
	PC uint64
	// Addr is the virtual byte address accessed.
	Addr arch.VAddr
	// Write marks stores.
	Write bool
	// Dependent marks accesses whose address depends on the previous
	// memory access's result (pointer chasing); the timing model
	// serializes them.
	Dependent bool
	// Gap is the number of non-memory instructions retired before this
	// access.
	Gap uint32
}

// Generator produces an unbounded deterministic access stream. Two
// generators constructed with the same specification and seed produce
// identical streams — the oracle's two-pass replay depends on it.
type Generator interface {
	// Name identifies the workload.
	Name() string
	// Next returns the next access.
	Next() Access
}

// ErrGenerator is a Generator that can fail mid-stream. Next cannot return
// an error without breaking the Generator contract, so sources backed by
// I/O (Replayer) or by finite storage (BufferReader) latch the first
// failure instead and keep returning the last good access. Consumers that
// drain a generator — Materialize, Record, sim.System.Run — check Err
// afterwards via GeneratorErr, so trace corruption surfaces as an error
// instead of silently repeated records.
type ErrGenerator interface {
	Generator
	// Err returns the first error the generator latched, or nil.
	Err() error
}

// GeneratorErr returns g's latched error when g is an ErrGenerator, and
// nil otherwise. Drain loops call it once after consuming the stream.
func GeneratorErr(g Generator) error {
	if eg, ok := g.(ErrGenerator); ok {
		return eg.Err()
	}
	return nil
}

// Workload is a named entry of the Table II suite.
type Workload struct {
	// Name is the paper's workload name ("cactusADM", "cc", ...).
	Name string
	// Suite is the benchmark suite the original came from.
	Suite string
	// Description summarizes the modelled access behaviour.
	Description string
	// FootprintMB is the synthetic working-set size.
	FootprintMB int
	// New constructs the generator for a seed.
	New func(seed uint64) Generator
}
