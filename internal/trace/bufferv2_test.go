package trace

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/faultio"
)

// testBufferN materializes n accesses of a representative workload.
func testBufferN(t testing.TB, n uint64) *Buffer {
	t.Helper()
	w, err := ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Materialize(w.New(1), n)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBufferV2RoundTrip(t *testing.T) {
	for _, n := range []uint64{0, 1, 3, v2ChunkLen - 1, v2ChunkLen, v2ChunkLen + 1, 3*v2ChunkLen + 17} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			b := testBufferN(t, n)
			var buf bytes.Buffer
			wrote, err := b.WriteToV2(&buf)
			if err != nil {
				t.Fatalf("WriteToV2: %v", err)
			}
			if wrote != int64(buf.Len()) {
				t.Errorf("WriteToV2 reported %d bytes, wrote %d", wrote, buf.Len())
			}
			got, err := ReadBuffer(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadBuffer: %v", err)
			}
			requireBuffersEqual(t, b, got)

			ct, err := OpenChunked(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
			if err != nil {
				t.Fatalf("OpenChunked: %v", err)
			}
			if ct.Len() != n || ct.Name() != b.Name() {
				t.Fatalf("OpenChunked: Len=%d Name=%q, want %d %q", ct.Len(), ct.Name(), n, b.Name())
			}
			if n == 0 {
				if ct.Chunks() != 0 {
					t.Fatalf("empty trace has %d chunks", ct.Chunks())
				}
				sr := ct.NewReader()
				if _, err := sr.NextChunk(64); !errors.Is(err, errEmptyTrace) {
					t.Fatalf("empty NextChunk err = %v", err)
				}
				return
			}
			sr := ct.NewReader()
			for i := uint64(0); i < n; i++ {
				if a, want := sr.Next(), b.At(i); a != want {
					t.Fatalf("access %d: got %+v want %+v", i, a, want)
				}
			}
			// Past the end the stream wraps, like BufferReader.
			if a, want := sr.Next(), b.At(0); a != want {
				t.Fatalf("wrap: got %+v want %+v", a, want)
			}
			if err := sr.Err(); err != nil {
				t.Fatalf("stream err: %v", err)
			}
		})
	}
}

func requireBuffersEqual(t *testing.T, want, got *Buffer) {
	t.Helper()
	if got.Name() != want.Name() || got.Len() != want.Len() {
		t.Fatalf("got name=%q len=%d, want name=%q len=%d", got.Name(), got.Len(), want.Name(), want.Len())
	}
	for i := uint64(0); i < want.Len(); i++ {
		if got.At(i) != want.At(i) {
			t.Fatalf("access %d: got %+v want %+v", i, got.At(i), want.At(i))
		}
	}
}

func TestRecordV2MatchesWriteToV2(t *testing.T) {
	w, err := ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	const n = 2*v2ChunkLen + 100
	b, err := Materialize(w.New(7), n)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if _, err := b.WriteToV2(&direct); err != nil {
		t.Fatal(err)
	}
	var recorded bytes.Buffer
	if err := RecordV2(&recorded, w.New(7), n); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), recorded.Bytes()) {
		t.Fatalf("RecordV2 output differs from WriteToV2 of the materialized stream (%d vs %d bytes)",
			recorded.Len(), direct.Len())
	}
}

func TestRecordV2Canceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w, err := ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = RecordV2Context(ctx, &buf, w.New(1), 10*v2ChunkLen)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestBufferV2StreamReaderInterleave checks Next and NextChunk share one
// cursor across chunk boundaries.
func TestBufferV2StreamReaderInterleave(t *testing.T) {
	b := testBufferN(t, v2ChunkLen+300)
	var buf bytes.Buffer
	if _, err := b.WriteToV2(&buf); err != nil {
		t.Fatal(err)
	}
	ct, err := OpenChunked(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	sr := ct.NewReader()
	pos := uint64(0)
	for pos < b.Len() {
		if pos%3 == 0 {
			if a, want := sr.Next(), b.At(pos); a != want {
				t.Fatalf("access %d: got %+v want %+v", pos, a, want)
			}
			pos++
			continue
		}
		c, err := sr.NextChunk(257)
		if err != nil {
			t.Fatalf("NextChunk at %d: %v", pos, err)
		}
		if c.Len() == 0 {
			t.Fatalf("empty chunk at %d", pos)
		}
		for i := 0; i < c.Len(); i++ {
			want := b.At(pos)
			if c.PC[i] != want.PC || c.VA[i] != uint64(want.Addr) || c.Gap[i] != want.Gap {
				t.Fatalf("chunk access %d mismatch", pos)
			}
			pos++
		}
	}
}

// TestBufferV2Corruption flips every byte of a small v2 file in turn and
// requires the readers to error or produce the original data — never panic,
// never silently return different accesses while also passing index checks.
func TestBufferV2Corruption(t *testing.T) {
	b := testBufferN(t, 600)
	var buf bytes.Buffer
	if _, err := b.WriteToV2(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for off := 0; off < len(orig); off++ {
		corrupt, err := io.ReadAll(faultio.NewCorruptReader(bytes.NewReader(orig), int64(off)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadBuffer(bytes.NewReader(corrupt))
		if err == nil {
			// A flip that still decodes must have hit a spot the format
			// cannot protect (e.g. inside the name) — the columns must
			// still round-trip or the flip changed data covered by no
			// integrity check, which for this format only happens inside
			// the name field or chunk payload bytes that flate accepts.
			// Require at minimum: no panic, consistent lengths.
			if got.Len() != b.Len() && off >= 10 {
				t.Errorf("offset %d: silent length change %d -> %d", off, b.Len(), got.Len())
			}
		}
	}
}

// TestBufferV2Truncation truncates a v2 file at several lengths; every
// prefix must be rejected by both readers.
func TestBufferV2Truncation(t *testing.T) {
	b := testBufferN(t, 600)
	var buf bytes.Buffer
	if _, err := b.WriteToV2(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for _, n := range []int{0, 3, 4, 9, 10, 20, len(orig) / 2, len(orig) - 17, len(orig) - 1} {
		if n < 0 || n >= len(orig) {
			continue
		}
		trunc := orig[:n]
		if _, err := ReadBuffer(bytes.NewReader(trunc)); err == nil {
			t.Errorf("ReadBuffer accepted %d-byte prefix of %d-byte file", n, len(orig))
		}
		if _, err := OpenChunked(bytes.NewReader(trunc), int64(n)); err == nil {
			t.Errorf("OpenChunked accepted %d-byte prefix of %d-byte file", n, len(orig))
		}
	}
}

// TestBufferV2IndexMismatch corrupts the footer's index/trailer fields and
// requires the specific ErrChunkIndexMismatch error.
func TestBufferV2IndexMismatch(t *testing.T) {
	b := testBufferN(t, v2ChunkLen+100) // two chunks
	var buf bytes.Buffer
	if _, err := b.WriteToV2(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	indexOff := len(orig) - v2TrailerLen - 2*v2IndexEntry

	mutate := func(off int, delta byte) []byte {
		m := bytes.Clone(orig)
		m[off] += delta
		return m
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"chunk count", mutate(len(orig)-8, 1)},
		{"index offset", mutate(len(orig)-16, 1)},
		{"entry offset", mutate(indexOff, 1)},
		{"entry encLen", mutate(indexOff+8, 1)},
		{"entry rawN", mutate(indexOff+12, 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := OpenChunked(bytes.NewReader(tc.data), int64(len(tc.data))); !errors.Is(err, ErrChunkIndexMismatch) {
				t.Errorf("OpenChunked err = %v, want ErrChunkIndexMismatch", err)
			}
			if _, err := ReadBuffer(bytes.NewReader(tc.data)); err == nil {
				t.Errorf("ReadBuffer accepted corrupted index")
			}
		})
	}
}

// TestBufferV2CompressionRatio enforces the PR target: v2 files at least
// 4x smaller than v1 across the standard workload set.
func TestBufferV2CompressionRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 200_000
	var worst float64
	var worstName string
	var report strings.Builder
	for _, w := range Workloads() {
		b, err := Materialize(w.New(1), n)
		if err != nil {
			t.Fatal(err)
		}
		var v1, v2 bytes.Buffer
		if _, err := b.WriteTo(&v1); err != nil {
			t.Fatal(err)
		}
		if _, err := b.WriteToV2(&v2); err != nil {
			t.Fatal(err)
		}
		ratio := float64(v1.Len()) / float64(v2.Len())
		fmt.Fprintf(&report, "  %-12s v1=%8d v2=%8d ratio=%.2fx\n", w.Name, v1.Len(), v2.Len(), ratio)
		if worstName == "" || ratio < worst {
			worst, worstName = ratio, w.Name
		}
	}
	t.Logf("compression ratios over %d accesses:\n%s", n, report.String())
	if worst < 4 {
		t.Errorf("workload %s compresses only %.2fx, want >= 4x on every standard workload", worstName, worst)
	}
}

// writeV2Plain serializes a buffer in v2 with per-chunk compression turned
// off (header flate flag clear), exercising the plain-payload decode path.
func writeV2Plain(t testing.TB, b *Buffer) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := newBufioIfNeeded(&buf)
	vw, err := newV2Writer(bw, b.name, b.Len(), false)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(b.pc); pos += v2ChunkLen {
		end := min(pos+v2ChunkLen, len(b.pc))
		if err := vw.writeChunk(b.pc[pos:end], b.va[pos:end], b.gap[pos:end], b.flags[pos:end]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := vw.finish(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestBufferV2PlainRoundTrip(t *testing.T) {
	b := testBufferN(t, 2*v2ChunkLen+33)
	data := writeV2Plain(t, b)
	got, err := ReadBuffer(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	requireBuffersEqual(t, b, got)
}

// TestStreamDecodeZeroAlloc locks in the reused-buffer guarantee of the
// streaming v2 chunk decoder: steady-state chunk decode out of the
// decoder's own buffers allocates nothing. The compressed path adds a
// small, bounded per-chunk allocation inside compress/flate itself
// (huffmanDecoder.init rebuilds its dynamic-block link tables on every
// block; they cannot be reused from outside the package), which the second
// half pins to a tight amortized budget so a regression in our buffer
// reuse still fails loudly.
func TestStreamDecodeZeroAlloc(t *testing.T) {
	b := testBufferN(t, 4*v2ChunkLen)

	steadyState := func(t *testing.T, data []byte) float64 {
		t.Helper()
		ct, err := OpenChunked(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		sr := ct.NewReader()
		// Warm up: decode every chunk once so all buffers reach steady size.
		for i := 0; i < 2*ct.Chunks(); i++ {
			if _, err := sr.NextChunk(v2ChunkLen); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(20, func() {
			if _, err := sr.NextChunk(v2ChunkLen); err != nil {
				t.Fatal(err)
			}
		})
	}

	t.Run("plain", func(t *testing.T) {
		if allocs := steadyState(t, writeV2Plain(t, b)); allocs != 0 {
			t.Errorf("steady-state plain chunk decode allocates %.1f objects/op, want 0", allocs)
		}
	})
	t.Run("flate", func(t *testing.T) {
		var buf bytes.Buffer
		if _, err := b.WriteToV2(&buf); err != nil {
			t.Fatal(err)
		}
		if allocs := steadyState(t, buf.Bytes()); allocs > 128 {
			t.Errorf("steady-state flate chunk decode allocates %.1f objects per %d-access chunk, want <= 128 (flate-internal only)",
				allocs, v2ChunkLen)
		}
	})
}

func BenchmarkBufferCodecV2Encode(b *testing.B) {
	buf := testBufferN(b, 100_000)
	b.SetBytes(int64(buf.Len()) * 21)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := buf.WriteToV2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBufferCodecV2Decode(b *testing.B) {
	buf := testBufferN(b, 100_000)
	var enc bytes.Buffer
	if _, err := buf.WriteToV2(&enc); err != nil {
		b.Fatal(err)
	}
	ct, err := OpenChunked(bytes.NewReader(enc.Bytes()), int64(enc.Len()))
	if err != nil {
		b.Fatal(err)
	}
	sr := ct.NewReader()
	b.SetBytes(int64(buf.Len()) * 21)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for got := uint64(0); got < buf.Len(); {
			c, err := sr.NextChunk(v2ChunkLen)
			if err != nil {
				b.Fatal(err)
			}
			got += uint64(c.Len())
		}
	}
}

// BenchmarkBufferReplayV2 measures raw access delivery through the
// streaming reader (decode + per-access reconstruction), the denominator of
// the >=10M accesses/sec/core target.
func BenchmarkBufferReplayV2(b *testing.B) {
	buf := testBufferN(b, 100_000)
	var enc bytes.Buffer
	if _, err := buf.WriteToV2(&enc); err != nil {
		b.Fatal(err)
	}
	ct, err := OpenChunked(bytes.NewReader(enc.Bytes()), int64(enc.Len()))
	if err != nil {
		b.Fatal(err)
	}
	sr := ct.NewReader()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr.Next()
	}
}
