package trace

import (
	"bytes"
	"compress/flate"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"

	"repro/internal/arch"
)

// DPBF version 2: chunked, compressed columns.
//
// Version 1 stores the struct-of-arrays columns raw (21 bytes per access).
// Version 2 reorganizes the body into self-describing chunks of at most
// chunkLen accesses, each encoded columnar and compressed independently,
// with a chunk index in the footer so an io.ReaderAt can seek to, and
// decode, any chunk without touching the rest of the file. That is what
// lets multi-GB traces replay chunk-at-a-time through StreamReader (one
// chunk of reused buffers resident per consumer, workers decoding disjoint
// cursors in parallel) instead of materializing the whole buffer.
//
// Layout (all little-endian):
//
//	header:  magic "DPBF" | version u16 = 2 | flags u16 (bit0: chunk
//	         payloads are DEFLATE-compressed; bits 1..15 reserved, 0) |
//	         name len u16 | name | count u64 | chunkLen u32
//	chunk:   rawN u32 | encLen u32 | plainLen u32 | payload [encLen]u8
//	         (chunks are contiguous, the first starting right after the
//	         header; payload inflates to plainLen bytes of "plain" encoding)
//	footer:  index: chunkCount × { offset u64 | encLen u32 | rawN u32 } |
//	         trailer: indexOff u64 | chunkCount u32 | magic "DPB2"
//
// Plain chunk encoding, in stream order:
//
//	pcDict:  dictN u32 | dictN × pc u64     (distinct PCs, first-use order)
//	shift:   dictN × u8                     (per-entry VA delta shift, < 64)
//	pcIdx:   rawN × uvarint                 (index into pcDict)
//	va:      rawN × zigzag-varint of (delta >> shift[entry]), the delta
//	         taken against the previous VA decoded for the same pcDict
//	         entry in this chunk (first use: delta vs 0)
//	gap:     rawN × uvarint
//	flags:   ceil(rawN/4) bytes, 2 bits per access, LSB-first
//	         (bit0 FlagWrite, bit1 FlagDependent; unused trailing bits 0)
//
// The PC dictionary exploits the small per-workload instruction footprint
// (a few dozen sites per stream); the per-dict-entry VA delta context gives
// sequential and strided streams 1–2 byte deltas even when streams
// interleave, because a PC site almost always belongs to one stream. The
// per-entry shift strips the access-granularity alignment all of a site's
// deltas share (an 8-byte element stream never produces a delta with the
// low 3 bits set), which random-access streams cannot otherwise compress
// away. The per-chunk DEFLATE pass then squeezes the remaining byte-level
// redundancy (gap and index streams draw from tiny alphabets). Chunks
// share no state, so any chunk decodes independently given only the
// header.
const (
	bufferVersion2 = 2
	// v2ChunkLen is the writers' chunk granule. It matches ctxCheckStride,
	// so batched replay naturally checks cancellation once per chunk.
	v2ChunkLen = ctxCheckStride
	// v2MaxChunkLen bounds the chunkLen a reader accepts, capping what a
	// corrupt header can make the decoder allocate.
	v2MaxChunkLen = 1 << 20

	v2HeaderFlagFlate = 1 << 0

	v2TrailerMagic = "DPB2"
	v2ChunkHdrLen  = 12 // rawN u32 | encLen u32 | plainLen u32
	v2IndexEntry   = 16 // offset u64 | encLen u32 | rawN u32
	v2TrailerLen   = 16 // indexOff u64 | chunkCount u32 | magic
)

// ErrChunkIndexMismatch reports a DPBF v2 file whose chunk index is
// inconsistent with its footer trailer, header or chunk headers: wrong
// chunk count or record total, non-contiguous or out-of-bounds chunk
// extents, or a chunk header that disagrees with its index entry.
var ErrChunkIndexMismatch = errors.New("trace: dpbf v2 chunk index disagrees with footer")

// v2MaxPlainLen bounds the declared plain (inflated) size of a chunk: the
// worst-case plain encoding of rawN accesses, with every varint maximal.
func v2MaxPlainLen(chunkLen uint32) uint32 {
	// dictN + dict(8/rec) + shift(1/rec) + pcIdx(10/rec) + va(10/rec) +
	// gap(10/rec) + flags.
	return 4 + chunkLen*(8+1+10+10+10) + chunkLen/4 + 1
}

// --- Encoder -------------------------------------------------------------

// v2Encoder turns one chunk of columns into a compressed payload. All
// scratch is reused across chunks.
type v2Encoder struct {
	dict     map[uint64]uint32
	dictPCs  []uint64
	idx      []uint32
	lastVA   []uint64
	deltas   []int64
	orAcc    []uint64
	shifts   []uint8
	plain    []byte
	comp     bytes.Buffer
	zw       *flate.Writer
	compress bool
}

func newV2Encoder(compress bool) *v2Encoder {
	e := &v2Encoder{dict: make(map[uint64]uint32), compress: compress}
	if compress {
		// The default level, not BestSpeed: encoding happens once per
		// trace while decoding happens every replay, and the extra few
		// percent of ratio is what the >=4x gate is won with.
		e.zw, _ = flate.NewWriter(&e.comp, flate.DefaultCompression)
	}
	return e
}

// encode builds the compressed payload for one chunk, returning the payload
// (valid until the next encode call) and the plain (uncompressed) length.
func (e *v2Encoder) encode(pc, va []uint64, gap []uint32, flags []uint8) (payload []byte, plainLen uint32, err error) {
	n := len(pc)
	clear(e.dict)
	e.dictPCs = e.dictPCs[:0]
	e.idx = e.idx[:0]
	for _, p := range pc {
		id, ok := e.dict[p]
		if !ok {
			id = uint32(len(e.dictPCs))
			e.dict[p] = id
			e.dictPCs = append(e.dictPCs, p)
		}
		e.idx = append(e.idx, id)
	}

	// Pass 1: per-record deltas against the previous VA of the same dict
	// entry, and the OR of each entry's delta bit patterns — its trailing
	// zeros are the alignment every delta of that entry shares.
	dictN := len(e.dictPCs)
	if cap(e.lastVA) < dictN {
		e.lastVA = make([]uint64, dictN)
		e.orAcc = make([]uint64, dictN)
		e.shifts = make([]uint8, dictN)
	}
	last, orAcc, shifts := e.lastVA[:dictN], e.orAcc[:dictN], e.shifts[:dictN]
	for i := range last {
		last[i], orAcc[i] = 0, 0
	}
	if cap(e.deltas) < n {
		e.deltas = make([]int64, n)
	}
	deltas := e.deltas[:n]
	for i, v := range va {
		id := e.idx[i]
		d := int64(v - last[id]) // wrapping delta
		last[id] = v
		deltas[i] = d
		orAcc[id] |= uint64(d)
	}
	for i, or := range orAcc {
		if or == 0 {
			shifts[i] = 0
		} else {
			shifts[i] = uint8(bits.TrailingZeros64(or))
		}
	}

	out := e.plain[:0]
	out = binary.LittleEndian.AppendUint32(out, uint32(dictN))
	for _, p := range e.dictPCs {
		out = binary.LittleEndian.AppendUint64(out, p)
	}
	out = append(out, shifts...)
	for _, id := range e.idx {
		out = binary.AppendUvarint(out, uint64(id))
	}
	for i := range deltas {
		d := deltas[i] >> shifts[e.idx[i]] // exact: aligned by construction
		out = binary.AppendUvarint(out, uint64(d)<<1^uint64(d>>63))
	}
	for _, g := range gap {
		out = binary.AppendUvarint(out, uint64(g))
	}
	var fb uint8
	for i, f := range flags {
		if f&bufFlagReserved != 0 {
			return nil, 0, fmt.Errorf("trace: access %d: reserved flag bits %#x set", i, f&bufFlagReserved)
		}
		fb |= f << uint((i&3)*2)
		if i&3 == 3 {
			out = append(out, fb)
			fb = 0
		}
	}
	if n&3 != 0 {
		out = append(out, fb)
	}
	e.plain = out
	if !e.compress {
		return out, uint32(len(out)), nil
	}

	e.comp.Reset()
	e.zw.Reset(&e.comp)
	if _, err := e.zw.Write(out); err != nil {
		return nil, 0, fmt.Errorf("trace: compressing chunk: %w", err)
	}
	if err := e.zw.Close(); err != nil {
		return nil, 0, fmt.Errorf("trace: compressing chunk: %w", err)
	}
	return e.comp.Bytes(), uint32(len(out)), nil
}

// v2Writer streams a DPBF v2 file: header, chunks as they are delivered,
// then the index footer on finish.
type v2Writer struct {
	cw    *countingWriter
	enc   *v2Encoder
	index []byte // accumulated index entries
	n     uint32 // chunks written
	total uint64 // accesses written
	count uint64 // accesses promised in the header
}

func newV2Writer(w io.Writer, name string, count uint64, compress bool) (*v2Writer, error) {
	if len(name) > 1<<16-1 {
		return nil, fmt.Errorf("trace: buffer name too long (%d bytes)", len(name))
	}
	var headerFlags uint16
	if compress {
		headerFlags |= v2HeaderFlagFlate
	}
	cw := &countingWriter{w: w}
	cw.str(bufferMagic)
	cw.u16(bufferVersion2)
	cw.u16(headerFlags)
	cw.u16(uint16(len(name)))
	cw.str(name)
	cw.u64(count)
	cw.u32(v2ChunkLen)
	return &v2Writer{cw: cw, enc: newV2Encoder(compress), count: count}, nil
}

// writeChunk encodes and appends one chunk (at most v2ChunkLen accesses).
func (vw *v2Writer) writeChunk(pc, va []uint64, gap []uint32, flags []uint8) error {
	if len(pc) == 0 {
		return nil
	}
	offset := uint64(vw.cw.n)
	payload, plainLen, err := vw.enc.encode(pc, va, gap, flags)
	if err != nil {
		return err
	}
	vw.cw.u32(uint32(len(pc)))
	vw.cw.u32(uint32(len(payload)))
	vw.cw.u32(plainLen)
	vw.cw.bytes(payload)
	vw.index = binary.LittleEndian.AppendUint64(vw.index, offset)
	vw.index = binary.LittleEndian.AppendUint32(vw.index, uint32(len(payload)))
	vw.index = binary.LittleEndian.AppendUint32(vw.index, uint32(len(pc)))
	vw.n++
	vw.total += uint64(len(pc))
	return vw.cw.err
}

// finish writes the chunk index and trailer.
func (vw *v2Writer) finish() (int64, error) {
	if vw.cw.err == nil && vw.total != vw.count {
		return vw.cw.n, fmt.Errorf("trace: dpbf v2: wrote %d accesses, header promised %d", vw.total, vw.count)
	}
	indexOff := uint64(vw.cw.n)
	vw.cw.bytes(vw.index)
	vw.cw.u64(indexOff)
	vw.cw.u32(vw.n)
	vw.cw.str(v2TrailerMagic)
	return vw.cw.n, vw.cw.err
}

// WriteToV2 serializes the buffer in the chunked, compressed v2 layout.
func (b *Buffer) WriteToV2(w io.Writer) (int64, error) {
	bw := newBufioIfNeeded(w)
	vw, err := newV2Writer(bw, b.name, b.Len(), true)
	if err != nil {
		return 0, err
	}
	for pos := 0; pos < len(b.pc); pos += v2ChunkLen {
		end := pos + v2ChunkLen
		if end > len(b.pc) {
			end = len(b.pc)
		}
		if err := vw.writeChunk(b.pc[pos:end], b.va[pos:end], b.gap[pos:end], b.flags[pos:end]); err != nil {
			return vw.cw.n, err
		}
	}
	n, err := vw.finish()
	if err == nil {
		err = bw.Flush()
	}
	return n, err
}

// newBufioIfNeeded wraps w in a bufio.Writer unless it already is one.
func newBufioIfNeeded(w io.Writer) *flushWriter {
	return &flushWriter{w: w}
}

// flushWriter is a small buffered writer shim so WriteToV2/RecordV2 issue
// large writes without double-buffering an already-buffered destination.
type flushWriter struct {
	w   io.Writer
	buf []byte
}

func (f *flushWriter) Write(p []byte) (int, error) {
	if len(f.buf)+len(p) <= 1<<16 {
		f.buf = append(f.buf, p...)
		return len(p), nil
	}
	if err := f.Flush(); err != nil {
		return 0, err
	}
	if len(p) <= 1<<16 {
		f.buf = append(f.buf, p...)
		return len(p), nil
	}
	return f.w.Write(p)
}

func (f *flushWriter) Flush() error {
	if len(f.buf) == 0 {
		return nil
	}
	_, err := f.w.Write(f.buf)
	f.buf = f.buf[:0]
	return err
}

// RecordV2 captures n accesses from a generator into w in DPBF v2, staging
// one chunk at a time, so recording never materializes the whole trace.
func RecordV2(w io.Writer, g Generator, n uint64) error {
	return RecordV2Context(context.Background(), w, g, n)
}

// RecordV2Context is RecordV2 with cancellation, checked at chunk
// boundaries (the same ctxCheckStride granule as every drain loop).
func RecordV2Context(ctx context.Context, w io.Writer, g Generator, n uint64) error {
	bw := newBufioIfNeeded(w)
	vw, err := newV2Writer(bw, g.Name(), n, true)
	if err != nil {
		return err
	}
	var (
		pc    [v2ChunkLen]uint64
		va    [v2ChunkLen]uint64
		gap   [v2ChunkLen]uint32
		flags [v2ChunkLen]uint8
	)
	done := ctx.Done()
	for written := uint64(0); written < n; {
		if done != nil {
			select {
			case <-done:
				return fmt.Errorf("trace: recording %s canceled at record %d of %d: %w",
					g.Name(), written, n, ctx.Err())
			default:
			}
		}
		m := n - written
		if m > v2ChunkLen {
			m = v2ChunkLen
		}
		for i := uint64(0); i < m; i++ {
			a := g.Next()
			if err := GeneratorErr(g); err != nil {
				return fmt.Errorf("trace: recording %s: %w", g.Name(), err)
			}
			pc[i] = a.PC
			va[i] = uint64(a.Addr)
			gap[i] = a.Gap
			var f uint8
			if a.Write {
				f |= bufFlagWrite
			}
			if a.Dependent {
				f |= bufFlagDependent
			}
			flags[i] = f
		}
		if err := vw.writeChunk(pc[:m], va[:m], gap[:m], flags[:m]); err != nil {
			return err
		}
		written += m
	}
	if _, err := vw.finish(); err != nil {
		return err
	}
	return bw.Flush()
}

// --- Decoder -------------------------------------------------------------

// v2Header is the parsed fixed part of a v2 file.
type v2Header struct {
	name      string
	count     uint64
	chunkLen  uint32
	flate     bool
	headerLen int64
}

// readV2HeaderTail parses the header fields after magic|version|flags|
// nameLen (which the caller already consumed), validating the flags.
func readV2HeaderTail(r io.Reader, headerFlags uint16, nameLen int) (v2Header, error) {
	var h v2Header
	if headerFlags&^uint16(v2HeaderFlagFlate) != 0 {
		return h, fmt.Errorf("trace: reserved buffer header flags %#x set", headerFlags&^uint16(v2HeaderFlagFlate))
	}
	h.flate = headerFlags&v2HeaderFlagFlate != 0
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return h, fmt.Errorf("trace: reading buffer name: %w", err)
	}
	var tail [12]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return h, fmt.Errorf("trace: reading dpbf v2 header: %w", err)
	}
	h.name = string(name)
	h.count = binary.LittleEndian.Uint64(tail[0:])
	h.chunkLen = binary.LittleEndian.Uint32(tail[8:])
	h.headerLen = int64(10 + nameLen + 12)
	if h.chunkLen == 0 || h.chunkLen > v2MaxChunkLen {
		return h, fmt.Errorf("trace: dpbf v2 chunk length %d outside [1, %d]", h.chunkLen, v2MaxChunkLen)
	}
	return h, nil
}

// v2ChunkDecoder decodes chunk payloads into reused columnar buffers; a
// steady-state decode allocates nothing.
type v2ChunkDecoder struct {
	h      v2Header
	raw    []byte
	plain  []byte
	br     *bytes.Reader
	fr     io.ReadCloser
	dict   []uint64
	lastVA []uint64
	shifts []uint8
	idx    []uint32
	pc     []uint64
	va     []uint64
	gap    []uint32
	flags  []uint8
}

func newV2ChunkDecoder(h v2Header) *v2ChunkDecoder {
	d := &v2ChunkDecoder{h: h, br: bytes.NewReader(nil)}
	d.fr = flate.NewReader(d.br)
	return d
}

// grow ensures the columnar buffers hold n records.
func (d *v2ChunkDecoder) grow(n int) {
	if cap(d.pc) < n {
		d.pc = make([]uint64, n)
		d.va = make([]uint64, n)
		d.gap = make([]uint32, n)
		d.flags = make([]uint8, n)
		d.idx = make([]uint32, n)
	}
	d.pc, d.va = d.pc[:n], d.va[:n]
	d.gap, d.flags = d.gap[:n], d.flags[:n]
	d.idx = d.idx[:n]
}

// validateChunkHdr checks a chunk header against the file header's bounds.
func (d *v2ChunkDecoder) validateChunkHdr(chunk int, rawN, encLen, plainLen uint32) error {
	if rawN == 0 || rawN > d.h.chunkLen {
		return fmt.Errorf("trace: dpbf v2 chunk %d: record count %d outside [1, %d]", chunk, rawN, d.h.chunkLen)
	}
	maxPlain := v2MaxPlainLen(d.h.chunkLen)
	if plainLen < 4 || plainLen > maxPlain {
		return fmt.Errorf("trace: dpbf v2 chunk %d: plain length %d outside [4, %d]", chunk, plainLen, maxPlain)
	}
	if encLen == 0 || encLen > maxPlain+maxPlain/2+256 {
		return fmt.Errorf("trace: dpbf v2 chunk %d: payload length %d implausible", chunk, encLen)
	}
	return nil
}

// decode inflates and decodes the payload in d.raw into the columnar
// buffers d.pc/va/gap/flags (resized to rawN).
func (d *v2ChunkDecoder) decode(chunk int, rawN, plainLen uint32) error {
	n := int(rawN)
	d.grow(n)

	plain := d.raw
	if d.h.flate {
		if cap(d.plain) < int(plainLen) {
			d.plain = make([]byte, plainLen)
		}
		d.plain = d.plain[:plainLen]
		d.br.Reset(d.raw)
		if err := d.fr.(flate.Resetter).Reset(d.br, nil); err != nil {
			return fmt.Errorf("trace: dpbf v2 chunk %d: %w", chunk, err)
		}
		if _, err := io.ReadFull(d.fr, d.plain); err != nil {
			return fmt.Errorf("trace: dpbf v2 chunk %d: inflating payload: %w", chunk, err)
		}
		var one [1]byte
		if _, err := d.fr.Read(one[:]); err != io.EOF {
			return fmt.Errorf("trace: dpbf v2 chunk %d: payload inflates past its declared %d bytes", chunk, plainLen)
		}
		plain = d.plain
	} else if uint32(len(plain)) != plainLen {
		return fmt.Errorf("trace: dpbf v2 chunk %d: uncompressed payload length %d ≠ declared %d", chunk, len(plain), plainLen)
	}

	fail := func(format string, args ...any) error {
		return fmt.Errorf("trace: dpbf v2 chunk %d: "+format, append([]any{chunk}, args...)...)
	}
	if len(plain) < 4 {
		return fail("payload shorter than its dictionary header")
	}
	dictN := binary.LittleEndian.Uint32(plain)
	if dictN == 0 || dictN > rawN {
		return fail("pc dictionary size %d outside [1, %d]", dictN, rawN)
	}
	pos := 4
	if len(plain)-pos < int(dictN)*9 {
		return fail("truncated pc dictionary")
	}
	if cap(d.dict) < int(dictN) {
		d.dict = make([]uint64, dictN)
		d.lastVA = make([]uint64, dictN)
		d.shifts = make([]uint8, dictN)
	}
	d.dict = d.dict[:dictN]
	d.lastVA = d.lastVA[:dictN]
	d.shifts = d.shifts[:dictN]
	for i := range d.dict {
		d.dict[i] = binary.LittleEndian.Uint64(plain[pos:])
		d.lastVA[i] = 0
		pos += 8
	}
	for i := range d.shifts {
		s := plain[pos]
		if s > 63 {
			return fail("pc dictionary entry %d: va shift %d out of range", i, s)
		}
		d.shifts[i] = s
		pos++
	}
	for i := 0; i < n; i++ {
		id, sz := binary.Uvarint(plain[pos:])
		if sz <= 0 || id >= uint64(dictN) {
			return fail("access %d: bad pc index", i)
		}
		pos += sz
		d.idx[i] = uint32(id)
		d.pc[i] = d.dict[id]
	}
	for i := 0; i < n; i++ {
		uz, sz := binary.Uvarint(plain[pos:])
		if sz <= 0 {
			return fail("access %d: bad va delta", i)
		}
		pos += sz
		id := d.idx[i]
		delta := (int64(uz>>1) ^ -int64(uz&1)) << d.shifts[id]
		v := d.lastVA[id] + uint64(delta)
		d.lastVA[id] = v
		d.va[i] = v
	}
	for i := 0; i < n; i++ {
		g, sz := binary.Uvarint(plain[pos:])
		if sz <= 0 || g > uint64(^uint32(0)) {
			return fail("access %d: bad gap", i)
		}
		pos += sz
		d.gap[i] = uint32(g)
	}
	fbytes := (n + 3) / 4
	if len(plain)-pos < fbytes {
		return fail("truncated flags column")
	}
	for i := 0; i < n; i++ {
		d.flags[i] = plain[pos+i/4] >> uint((i&3)*2) & 3
	}
	if last := plain[pos+fbytes-1]; n&3 != 0 && last>>uint((n&3)*2) != 0 {
		return fail("nonzero padding bits in flags column")
	}
	pos += fbytes
	if pos != len(plain) {
		return fail("%d trailing payload bytes", len(plain)-pos)
	}
	return nil
}

// --- Sequential (io.Reader) decode --------------------------------------

// readBufferV2 materializes a v2 stream into a Buffer. ReadBuffer dispatches
// here after consuming the 10-byte magic|version|flags|nameLen prefix. The
// whole file is consumed: after the last chunk the index and trailer are
// read and cross-checked against the chunks actually seen, so a sequential
// read enforces the same index consistency an io.ReaderAt open does.
func readBufferV2(r io.Reader, headerFlags uint16, nameLen int) (*Buffer, error) {
	h, err := readV2HeaderTail(r, headerFlags, nameLen)
	if err != nil {
		return nil, err
	}
	dec := newV2ChunkDecoder(h)
	b := &Buffer{name: h.name}
	var seenIndex []byte
	offset := uint64(h.headerLen)
	var hdr [v2ChunkHdrLen]byte
	chunks := uint32(0)
	for got := uint64(0); got < h.count; chunks++ {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, fmt.Errorf("trace: dpbf v2 chunk %d header: %w", chunks, err)
		}
		rawN := binary.LittleEndian.Uint32(hdr[0:])
		encLen := binary.LittleEndian.Uint32(hdr[4:])
		plainLen := binary.LittleEndian.Uint32(hdr[8:])
		if err := dec.validateChunkHdr(int(chunks), rawN, encLen, plainLen); err != nil {
			return nil, err
		}
		if uint64(rawN) > h.count-got {
			return nil, fmt.Errorf("trace: dpbf v2 chunk %d: %d records overflow the header count %d", chunks, rawN, h.count)
		}
		if cap(dec.raw) < int(encLen) {
			dec.raw = make([]byte, encLen)
		}
		dec.raw = dec.raw[:encLen]
		if _, err := io.ReadFull(r, dec.raw); err != nil {
			return nil, fmt.Errorf("trace: dpbf v2 chunk %d payload: %w", chunks, err)
		}
		if err := dec.decode(int(chunks), rawN, plainLen); err != nil {
			return nil, err
		}
		b.pc = append(b.pc, dec.pc...)
		b.va = append(b.va, dec.va...)
		b.gap = append(b.gap, dec.gap...)
		b.flags = append(b.flags, dec.flags...)
		seenIndex = binary.LittleEndian.AppendUint64(seenIndex, offset)
		seenIndex = binary.LittleEndian.AppendUint32(seenIndex, encLen)
		seenIndex = binary.LittleEndian.AppendUint32(seenIndex, rawN)
		offset += v2ChunkHdrLen + uint64(encLen)
		got += uint64(rawN)
	}

	footer := make([]byte, len(seenIndex)+v2TrailerLen)
	if _, err := io.ReadFull(r, footer); err != nil {
		return nil, fmt.Errorf("trace: dpbf v2 footer: %w", err)
	}
	trailer := footer[len(seenIndex):]
	if string(trailer[12:16]) != v2TrailerMagic {
		return nil, fmt.Errorf("trace: dpbf v2 bad trailer magic %q", trailer[12:16])
	}
	if !bytes.Equal(footer[:len(seenIndex)], seenIndex) {
		return nil, fmt.Errorf("%w: index entries disagree with the chunks present", ErrChunkIndexMismatch)
	}
	if got := binary.LittleEndian.Uint64(trailer[0:]); got != offset {
		return nil, fmt.Errorf("%w: trailer index offset %d, chunks end at %d", ErrChunkIndexMismatch, got, offset)
	}
	if got := binary.LittleEndian.Uint32(trailer[8:]); got != chunks {
		return nil, fmt.Errorf("%w: trailer chunk count %d, file has %d", ErrChunkIndexMismatch, got, chunks)
	}
	var one [1]byte
	if _, err := r.Read(one[:]); err != io.EOF {
		return nil, fmt.Errorf("trace: dpbf v2: data after trailer")
	}
	return b, nil
}

// --- Random-access (io.ReaderAt) decode ----------------------------------

// v2IndexEntryT is one parsed chunk-index entry.
type v2IndexEntryT struct {
	offset uint64
	encLen uint32
	rawN   uint32
	// firstAccess is the cumulative record index of the chunk's first
	// access (derived, for position math).
	firstAccess uint64
}

// ChunkedTrace is a DPBF v2 file opened for random access: the header and
// chunk index are resident, chunk payloads are fetched and decoded on
// demand. It is immutable and safe for concurrent use; each StreamReader
// obtained from NewReader decodes independently, which is how parallel
// workers stream disjoint regions of one file concurrently.
type ChunkedTrace struct {
	r     io.ReaderAt
	h     v2Header
	index []v2IndexEntryT
}

// OpenChunked parses the header, trailer and chunk index of a DPBF v2 file
// of the given size, validating that the index tiles the file exactly and
// agrees with the header's record count. It reads only the header and
// footer — O(chunks), not O(records).
func OpenChunked(r io.ReaderAt, size int64) (*ChunkedTrace, error) {
	var pre [10]byte
	if _, err := r.ReadAt(pre[:], 0); err != nil {
		return nil, fmt.Errorf("trace: reading buffer header: %w", err)
	}
	if string(pre[:4]) != bufferMagic {
		return nil, fmt.Errorf("trace: bad buffer magic %q", pre[:4])
	}
	if v := binary.LittleEndian.Uint16(pre[4:]); v != bufferVersion2 {
		return nil, fmt.Errorf("trace: dpbf version %d is not chunk-indexed (v2); materialize it with ReadBuffer", v)
	}
	headerFlags := binary.LittleEndian.Uint16(pre[6:])
	nameLen := int(binary.LittleEndian.Uint16(pre[8:]))
	h, err := readV2HeaderTail(io.NewSectionReader(r, 10, int64(nameLen)+12), headerFlags, nameLen)
	if err != nil {
		return nil, err
	}

	if size < h.headerLen+v2TrailerLen {
		return nil, fmt.Errorf("trace: dpbf v2 file of %d bytes too short for header and trailer", size)
	}
	var trailer [v2TrailerLen]byte
	if _, err := r.ReadAt(trailer[:], size-v2TrailerLen); err != nil {
		return nil, fmt.Errorf("trace: dpbf v2 trailer: %w", err)
	}
	if string(trailer[12:16]) != v2TrailerMagic {
		return nil, fmt.Errorf("trace: dpbf v2 bad trailer magic %q", trailer[12:16])
	}
	indexOff := binary.LittleEndian.Uint64(trailer[0:])
	chunkCount := binary.LittleEndian.Uint32(trailer[8:])
	wantIndexEnd := uint64(size - v2TrailerLen)
	if indexOff < uint64(h.headerLen) || indexOff > wantIndexEnd ||
		wantIndexEnd-indexOff != uint64(chunkCount)*v2IndexEntry {
		return nil, fmt.Errorf("%w: trailer claims %d chunks with index at %d in a %d-byte file",
			ErrChunkIndexMismatch, chunkCount, indexOff, size)
	}

	raw := make([]byte, chunkCount*v2IndexEntry)
	if _, err := r.ReadAt(raw, int64(indexOff)); err != nil {
		return nil, fmt.Errorf("trace: dpbf v2 chunk index: %w", err)
	}
	t := &ChunkedTrace{r: r, h: h, index: make([]v2IndexEntryT, chunkCount)}
	next := uint64(h.headerLen)
	total := uint64(0)
	for i := range t.index {
		e := &t.index[i]
		e.offset = binary.LittleEndian.Uint64(raw[i*v2IndexEntry:])
		e.encLen = binary.LittleEndian.Uint32(raw[i*v2IndexEntry+8:])
		e.rawN = binary.LittleEndian.Uint32(raw[i*v2IndexEntry+12:])
		e.firstAccess = total
		if e.offset != next {
			return nil, fmt.Errorf("%w: chunk %d at offset %d, expected %d (chunks must tile the body)",
				ErrChunkIndexMismatch, i, e.offset, next)
		}
		if e.rawN == 0 || e.rawN > h.chunkLen {
			return nil, fmt.Errorf("%w: chunk %d record count %d outside [1, %d]",
				ErrChunkIndexMismatch, i, e.rawN, h.chunkLen)
		}
		next += v2ChunkHdrLen + uint64(e.encLen)
		total += uint64(e.rawN)
	}
	if next != indexOff {
		return nil, fmt.Errorf("%w: chunks end at %d, index starts at %d", ErrChunkIndexMismatch, next, indexOff)
	}
	if total != h.count {
		return nil, fmt.Errorf("%w: index holds %d records, header promises %d", ErrChunkIndexMismatch, total, h.count)
	}
	return t, nil
}

// Name returns the workload name carried in the header.
func (t *ChunkedTrace) Name() string { return t.h.name }

// Len returns the total number of accesses.
func (t *ChunkedTrace) Len() uint64 { return t.h.count }

// Chunks returns the chunk count.
func (t *ChunkedTrace) Chunks() int { return len(t.index) }

// ChunkInfo reports chunk i's payload size and record count (for tools).
func (t *ChunkedTrace) ChunkInfo(i int) (encLen, rawN uint32) {
	return t.index[i].encLen, t.index[i].rawN
}

// NewReader returns a streaming cursor positioned at the first access. Each
// reader owns its decode buffers: concurrent readers decode chunks in
// parallel without shared state.
func (t *ChunkedTrace) NewReader() *StreamReader {
	return &StreamReader{t: t, dec: newV2ChunkDecoder(t.h), cur: -1}
}

// StreamReader replays a ChunkedTrace one decoded chunk at a time, holding
// exactly one chunk of reused buffers. It implements ChunkReader (and so
// Generator), wrapping at the end of the trace like BufferReader; read and
// decode errors latch (ErrGenerator) and Next then repeats the last good
// access, mirroring Replayer.
type StreamReader struct {
	t    *ChunkedTrace
	dec  *v2ChunkDecoder
	hdr  [v2ChunkHdrLen]byte
	cur  int // chunk currently decoded (-1 before the first load)
	off  int // cursor within the decoded chunk
	n    int // decoded chunk length
	last Access
	err  error
}

// Err implements ErrGenerator.
func (r *StreamReader) Err() error { return r.err }

// Name implements Generator.
func (r *StreamReader) Name() string { return r.t.h.name }

// Pos returns the index of the next access to be returned.
func (r *StreamReader) Pos() uint64 {
	if r.cur < 0 {
		return 0
	}
	return r.t.index[r.cur].firstAccess + uint64(r.off)
}

// load decodes the next chunk (wrapping past the last) into the reader's
// buffers. On failure the error latches and the cursor stays put.
func (r *StreamReader) load() bool {
	if len(r.t.index) == 0 {
		r.err = errEmptyTrace
		return false
	}
	nxt := r.cur + 1
	if nxt >= len(r.t.index) {
		nxt = 0
	}
	e := r.t.index[nxt]
	if _, err := r.t.r.ReadAt(r.hdr[:], int64(e.offset)); err != nil {
		r.err = fmt.Errorf("trace: dpbf v2 chunk %d header: %w", nxt, err)
		return false
	}
	rawN := binary.LittleEndian.Uint32(r.hdr[0:])
	encLen := binary.LittleEndian.Uint32(r.hdr[4:])
	plainLen := binary.LittleEndian.Uint32(r.hdr[8:])
	if rawN != e.rawN || encLen != e.encLen {
		r.err = fmt.Errorf("%w: chunk %d header says %d records in %d bytes, index says %d in %d",
			ErrChunkIndexMismatch, nxt, rawN, encLen, e.rawN, e.encLen)
		return false
	}
	if err := r.dec.validateChunkHdr(nxt, rawN, encLen, plainLen); err != nil {
		r.err = err
		return false
	}
	if cap(r.dec.raw) < int(encLen) {
		r.dec.raw = make([]byte, encLen)
	}
	r.dec.raw = r.dec.raw[:encLen]
	if _, err := r.t.r.ReadAt(r.dec.raw, int64(e.offset)+v2ChunkHdrLen); err != nil {
		r.err = fmt.Errorf("trace: dpbf v2 chunk %d payload: %w", nxt, err)
		return false
	}
	if err := r.dec.decode(nxt, rawN, plainLen); err != nil {
		r.err = err
		return false
	}
	r.cur, r.off, r.n = nxt, 0, int(rawN)
	return true
}

// Next implements Generator.
func (r *StreamReader) Next() Access {
	if r.err != nil {
		return r.last
	}
	if r.off >= r.n {
		if !r.load() {
			return r.last
		}
	}
	d, i := r.dec, r.off
	f := d.flags[i]
	r.last = Access{
		PC:        d.pc[i],
		Addr:      arch.VAddr(d.va[i]),
		Gap:       d.gap[i],
		Write:     f&bufFlagWrite != 0,
		Dependent: f&bufFlagDependent != 0,
	}
	r.off++
	return r.last
}

// NextChunk implements ChunkReader. The returned slices alias the reader's
// decode buffers and are valid until the next NextChunk/Next call.
func (r *StreamReader) NextChunk(max int) (Chunk, error) {
	if r.err != nil {
		return Chunk{}, r.err
	}
	if max <= 0 {
		return Chunk{}, nil
	}
	if r.off >= r.n {
		if !r.load() {
			return Chunk{}, r.err
		}
	}
	end := r.off + max
	if end > r.n {
		end = r.n
	}
	d := r.dec
	c := Chunk{
		PC:    d.pc[r.off:end],
		VA:    d.va[r.off:end],
		Gap:   d.gap[r.off:end],
		Flags: d.flags[r.off:end],
	}
	r.off = end
	return c, nil
}
