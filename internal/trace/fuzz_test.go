package trace

import (
	"bytes"
	"testing"

	"repro/internal/arch"
)

// recordSeed captures n accesses of a synthetic workload exactly the way
// cmd/tracedump does, giving the fuzzer structurally valid corpora to
// mutate from.
func recordSeed(f *testing.F, name string, n uint64) []byte {
	f.Helper()
	w, err := ByName(name)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Record(&buf, w.New(1), n); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReplayer feeds arbitrary bytes through the trace parser in both
// replay modes. The parser must never panic or loop: it either rejects the
// input from NewReplayer or replays it, latching the first read error in
// Err while the Generator contract keeps returning the last good access.
func FuzzReplayer(f *testing.F) {
	for _, name := range []string{"cc", "sssp"} {
		seed := recordSeed(f, name, 16)
		f.Add(seed, false)
		f.Add(seed, true)
		f.Add(seed[:len(seed)-5], true) // truncated mid-record
	}
	f.Add([]byte(nil), false)
	f.Add([]byte("DPTR"), false)                                                       // magic only
	f.Add([]byte("DPTR\x01\x00\x00\x00\x00\x00"), true)                                // empty name, no records
	f.Add([]byte("DPTR\x02\x00\x00\x00\x00\x00"), false)                               // unsupported version
	f.Add([]byte("DPTR\x01\x00\x01\x00\x00\x00"), false)                               // reserved header flags set
	f.Add([]byte("DPTR\x01\x00\x00\x00\xff\xffshort"), false)                          // name length beyond data
	f.Add(append([]byte("DPTR\x01\x00\x00\x00\x02\x00cc"), make([]byte, 24)...), true) // one zero record

	f.Fuzz(func(t *testing.T, data []byte, loop bool) {
		rp, err := NewReplayer(bytes.NewReader(data), loop)
		if err != nil {
			return
		}
		var last Access
		for i := 0; i < 64; i++ {
			a := rp.Next()
			if rp.Err() != nil {
				// Errors must latch: every subsequent Next repeats the
				// last good access without clearing Err.
				if got := rp.Next(); got != a {
					t.Errorf("Next after latched error changed: %+v then %+v", a, got)
				}
				if rp.Err() == nil {
					t.Error("Err cleared by Next after latching")
				}
				return
			}
			last = a
		}
		_ = last
	})
}

// FuzzBufferCodec feeds arbitrary bytes through the DPBF buffer parser. The
// decoder must never panic and never allocate proportionally to an
// unvalidated count; any buffer it does accept must survive a re-encode →
// re-decode round trip unchanged.
func FuzzBufferCodec(f *testing.F) {
	for _, name := range []string{"cc", "sssp"} {
		w, err := ByName(name)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := mustMaterialize(f, w.New(1), 16).WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()-5]) // truncated mid-array
	}
	f.Add([]byte(nil))
	f.Add([]byte("DPBF"))                           // magic only
	f.Add([]byte("DPBF\x01\x00\x00\x00\x00\x00"))   // empty name, no count
	f.Add([]byte("DPBF\x02\x00\x00\x00\x00\x00"))   // v2 dispatch, truncated header
	f.Add([]byte("DPBF\x03\x00\x00\x00\x00\x00"))   // unsupported version
	f.Add([]byte("DPBF\x01\x00\x01\x00\x00\x00"))   // reserved header flags
	f.Add([]byte("DPBF\x01\x00\x00\x00\xff\xffxx")) // name length beyond data
	f.Add(append([]byte("DPBF\x01\x00\x00\x00\x00\x00"),
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff)) // absurd count

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ReadBuffer(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := b.WriteTo(&out); err != nil {
			t.Fatalf("re-encoding an accepted buffer failed: %v", err)
		}
		b2, err := ReadBuffer(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding a re-encoded buffer failed: %v", err)
		}
		if b2.Name() != b.Name() || b2.Len() != b.Len() {
			t.Fatalf("round trip changed identity: (%q, %d) -> (%q, %d)",
				b.Name(), b.Len(), b2.Name(), b2.Len())
		}
		for i := uint64(0); i < b.Len(); i++ {
			if b.At(i) != b2.At(i) {
				t.Fatalf("round trip changed access %d: %+v -> %+v", i, b.At(i), b2.At(i))
			}
		}
	})
}

// FuzzBufferCodecV2 feeds arbitrary bytes through both DPBF v2 readers (the
// sequential materializer and the random-access opener). Neither may panic
// or over-allocate; any input both accept must decode identically through
// both, and an accepted buffer must survive a v2 re-encode → re-decode
// round trip unchanged.
func FuzzBufferCodecV2(f *testing.F) {
	for _, name := range []string{"cc", "sssp"} {
		w, err := ByName(name)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := mustMaterialize(f, w.New(1), 16).WriteToV2(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()-5]) // truncated inside the trailer
		f.Add(buf.Bytes()[:buf.Len()/2]) // truncated mid-chunk
		f.Add(buf.Bytes()[:10])          // header prefix only
		corrupt := bytes.Clone(buf.Bytes())
		corrupt[len(corrupt)/2] ^= 0x40 // flipped payload byte
		f.Add(corrupt)
	}
	var empty bytes.Buffer
	if _, err := NewBuffer("e", 0).WriteToV2(&empty); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte("DPBF\x02\x00\x00\x00\x00\x00")) // truncated v2 header
	f.Add([]byte("DPBF\x02\x00\x02\x00\x00\x00")) // reserved header flag set

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ReadBuffer(bytes.NewReader(data))
		ct, ctErr := OpenChunked(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			// OpenChunked validates strictly less than a full sequential
			// decode (it never inflates payloads), so it may accept what
			// ReadBuffer rejects — but its stream must then latch an error
			// rather than fabricate accesses, which the StreamReader
			// latch-and-repeat contract below covers implicitly.
			if ctErr == nil && ct.Len() > 0 {
				sr := ct.NewReader()
				for i := 0; i < 8; i++ {
					a := sr.Next()
					if sr.Err() != nil {
						if got := sr.Next(); got != a {
							t.Errorf("Next after latched error changed: %+v then %+v", a, got)
						}
						break
					}
				}
			}
			return
		}
		if b.Len() > 0 && ctErr != nil {
			t.Fatalf("ReadBuffer accepted a v2 file OpenChunked rejects: %v", ctErr)
		}
		if ctErr == nil {
			sr := ct.NewReader()
			for i := uint64(0); i < b.Len(); i++ {
				if a, want := sr.Next(), b.At(i); a != want {
					t.Fatalf("stream access %d: got %+v want %+v (stream err %v)", i, a, want, sr.Err())
				}
			}
		}
		var out bytes.Buffer
		if _, err := b.WriteToV2(&out); err != nil {
			t.Fatalf("re-encoding an accepted buffer failed: %v", err)
		}
		b2, err := ReadBuffer(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding a re-encoded buffer failed: %v", err)
		}
		if b2.Name() != b.Name() || b2.Len() != b.Len() {
			t.Fatalf("round trip changed identity: (%q, %d) -> (%q, %d)",
				b.Name(), b.Len(), b2.Name(), b2.Len())
		}
		for i := uint64(0); i < b.Len(); i++ {
			if b.At(i) != b2.At(i) {
				t.Fatalf("round trip changed access %d: %+v -> %+v", i, b.At(i), b2.At(i))
			}
		}
	})
}

// FuzzRoundTrip checks Writer → Replayer is lossless for any access record.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0x400123), uint64(0x7fff_0000_1000), uint32(3), true, false)
	f.Add(uint64(0), uint64(0), uint32(0), false, false)
	f.Add(^uint64(0), ^uint64(0), ^uint32(0), true, true)

	f.Fuzz(func(t *testing.T, pc, addr uint64, gap uint32, write, dep bool) {
		in := Access{PC: pc, Addr: arch.VAddr(addr), Gap: gap, Write: write, Dependent: dep}
		var buf bytes.Buffer
		tw, err := NewWriter(&buf, "fuzz")
		if err != nil {
			t.Fatal(err)
		}
		if err := tw.Write(in); err != nil {
			t.Fatal(err)
		}
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		rp, err := NewReplayer(bytes.NewReader(buf.Bytes()), false)
		if err != nil {
			t.Fatal(err)
		}
		if got := rp.Next(); rp.Err() != nil || got != in {
			t.Fatalf("round trip: wrote %+v, read %+v (err %v)", in, got, rp.Err())
		}
		if rp.Name() != "fuzz" {
			t.Fatalf("name %q, want %q", rp.Name(), "fuzz")
		}
	})
}
