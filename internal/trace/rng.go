package trace

import "math/bits"

// rng is a small, fast, deterministic generator (xoshiro256**-style state
// seeded by splitmix64). The standard library's math/rand would work, but
// its stream is not guaranteed stable across Go releases; experiment
// reproducibility demands bit-stable streams.
type rng struct {
	s [4]uint64
}

// newRNG seeds a generator; any seed (including 0) is valid.
func newRNG(seed uint64) *rng {
	r := &rng{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// clone duplicates the generator state: both copies continue the same
// stream independently (warm-state forking).
func (r *rng) clone() *rng {
	c := *r
	return &c
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next raw value.
func (r *rng) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint64n returns a value in [0, n); n must be > 0.
func (r *rng) Uint64n(n uint64) uint64 {
	// Multiply-shift range reduction; bias is negligible for our n.
	hi, _ := bits.Mul64(r.Uint64(), n)
	return hi
}

// Intn returns a value in [0, n); n must be > 0.
func (r *rng) Intn(n int) int { return int(r.Uint64n(uint64(n))) }

// Float64 returns a value in [0, 1).
func (r *rng) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
