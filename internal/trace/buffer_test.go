package trace

import (
	"bytes"
	"testing"

	"repro/internal/arch"
)

// TestMaterializeMatchesLive: replaying a materialized buffer must be
// bit-identical to consuming the live generator — the tentpole invariant
// that lets the runner substitute buffers for regeneration.
func TestMaterializeMatchesLive(t *testing.T) {
	const n = 20_000
	w, err := ByName("cc")
	if err != nil {
		t.Fatal(err)
	}
	b := mustMaterialize(t, w.New(7), n)
	if b.Len() != n {
		t.Fatalf("Len = %d, want %d", b.Len(), n)
	}
	if b.Name() != w.New(7).Name() {
		t.Errorf("Name = %q, want %q", b.Name(), w.New(7).Name())
	}
	live := w.New(7)
	rd := b.Reader()
	for i := 0; i < n; i++ {
		if got, want := rd.Next(), live.Next(); got != want {
			t.Fatalf("access %d: buffer %+v, live %+v", i, got, want)
		}
	}
}

// TestBufferPackedFlagsRoundTrip: the Write/Dependent bits share one packed
// byte; every combination must survive Append → At unchanged.
func TestBufferPackedFlagsRoundTrip(t *testing.T) {
	cases := []Access{
		{PC: 0x400000, Addr: 0x1000, Gap: 1},
		{PC: 0x400008, Addr: 0x2000, Gap: 2, Write: true},
		{PC: 0x400010, Addr: 0x3000, Gap: 3, Dependent: true},
		{PC: 0x400018, Addr: 0x4000, Gap: 4, Write: true, Dependent: true},
		{PC: ^uint64(0), Addr: arch.VAddr(^uint64(0)), Gap: ^uint32(0), Write: true, Dependent: true},
		{},
	}
	b := NewBuffer("packed", len(cases))
	for _, a := range cases {
		b.Append(a)
	}
	for i, want := range cases {
		if got := b.At(uint64(i)); got != want {
			t.Errorf("access %d: got %+v, want %+v", i, got, want)
		}
	}
}

// TestBufferCodecRoundTrip: WriteTo → ReadBuffer must be lossless.
func TestBufferCodecRoundTrip(t *testing.T) {
	w, err := ByName("sssp")
	if err != nil {
		t.Fatal(err)
	}
	in := mustMaterialize(t, w.New(3), 5_000)
	var buf bytes.Buffer
	n, err := in.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	out, err := ReadBuffer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if out.Name() != in.Name() || out.Len() != in.Len() {
		t.Fatalf("decoded (%q, %d), want (%q, %d)", out.Name(), out.Len(), in.Name(), in.Len())
	}
	for i := uint64(0); i < in.Len(); i++ {
		if out.At(i) != in.At(i) {
			t.Fatalf("access %d: decoded %+v, want %+v", i, out.At(i), in.At(i))
		}
	}
}

// TestBufferCodecRejects: corrupt inputs must error, never panic or
// over-allocate.
func TestBufferCodecRejects(t *testing.T) {
	var good bytes.Buffer
	if _, err := mustMaterialize(t, mustByName(t, "cc").New(1), 16).WriteTo(&good); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":           nil,
		"bad magic":       []byte("NOPE\x01\x00\x00\x00\x00\x00"),
		"bad version":     []byte("DPBF\x07\x00\x00\x00\x00\x00"),
		"reserved header": []byte("DPBF\x01\x00\x01\x00\x00\x00"),
		"truncated":       good.Bytes()[:good.Len()-3],
		"huge count": append([]byte("DPBF\x01\x00\x00\x00\x00\x00"),
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f),
	}
	for name, data := range cases {
		if _, err := ReadBuffer(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Reserved record-flag bits must be rejected too.
	raw := append([]byte(nil), good.Bytes()...)
	raw[len(raw)-1] |= 0x80
	if _, err := ReadBuffer(bytes.NewReader(raw)); err == nil {
		t.Error("reserved record flag bits accepted")
	}
}

// TestBufferReaderWrapsAndForks: ReaderAt cursors wrap like the looping
// Replayer, and forked readers advance independently.
func TestBufferReaderWrapsAndForks(t *testing.T) {
	b := NewBuffer("wrap", 3)
	for i := 0; i < 3; i++ {
		b.Append(Access{PC: uint64(i)})
	}
	rd := b.ReaderAt(b.Len()) // at the end: next access wraps to 0
	if got := rd.Next(); got.PC != 0 {
		t.Errorf("wrap: got PC %d, want 0", got.PC)
	}

	f := rd.Fork()
	if got := rd.Next().PC; got != 1 {
		t.Errorf("original after fork: PC %d, want 1", got)
	}
	if got := f.Next().PC; got != 1 {
		t.Errorf("fork: PC %d, want 1 (independent cursor)", got)
	}

	empty := NewBuffer("empty", 0).Reader()
	if got := empty.Next(); got != (Access{}) {
		t.Errorf("empty buffer: got %+v, want zero access", got)
	}
}

// TestMixGenFork: the synthetic generators' Fork must yield an independent
// stream that continues identically to the original.
func TestMixGenFork(t *testing.T) {
	g := mustByName(t, "canneal").New(11)
	fg, ok := g.(ForkableGenerator)
	if !ok {
		t.Fatal("synthetic workload generator does not implement ForkableGenerator")
	}
	for i := 0; i < 1_000; i++ {
		g.Next()
	}
	f := fg.Fork()
	for i := 0; i < 1_000; i++ {
		a, b := g.Next(), f.Next()
		if a != b {
			t.Fatalf("access %d after fork: original %+v, fork %+v", i, a, b)
		}
	}
}

// TestReadTraceSniffsBothFormats: ReadTrace must yield the same buffer from
// a DPTR record stream and a DPBF dump of the same accesses.
func TestReadTraceSniffsBothFormats(t *testing.T) {
	w := mustByName(t, "cc")
	const n = 2_000
	want := mustMaterialize(t, w.New(5), n)

	var dptr, dpbf bytes.Buffer
	if err := Record(&dptr, w.New(5), n); err != nil {
		t.Fatal(err)
	}
	if _, err := want.WriteTo(&dpbf); err != nil {
		t.Fatal(err)
	}

	for name, data := range map[string][]byte{"DPTR": dptr.Bytes(), "DPBF": dpbf.Bytes()} {
		got, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Name() != want.Name() || got.Len() != want.Len() {
			t.Fatalf("%s: (%q, %d), want (%q, %d)", name, got.Name(), got.Len(), want.Name(), want.Len())
		}
		for i := uint64(0); i < n; i++ {
			if got.At(i) != want.At(i) {
				t.Fatalf("%s: access %d: %+v, want %+v", name, i, got.At(i), want.At(i))
			}
		}
	}

	if _, err := ReadTrace(bytes.NewReader([]byte("????junk"))); err == nil {
		t.Error("unrecognized magic accepted")
	}
}

func mustByName(t testing.TB, name string) Workload {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func mustMaterialize(t testing.TB, g Generator, n uint64) *Buffer {
	t.Helper()
	b, err := Materialize(g, n)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// BenchmarkMaterialize prices building a buffer from the live generator —
// the once-per-workload cost the runner pays up front.
func BenchmarkMaterialize(b *testing.B) {
	w := mustByName(b, "cc")
	const n = 100_000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Materialize(w.New(1), n); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/access")
}

// BenchmarkBufferReplay prices reading one access back out of a shared
// buffer — the per-access cost every consumer pays instead of regenerating.
func BenchmarkBufferReplay(b *testing.B) {
	rd := mustMaterialize(b, mustByName(b, "cc").New(1), 100_000).Reader()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Next()
	}
}

// BenchmarkLiveGenerate is the comparison point for BenchmarkBufferReplay:
// what an access costs when produced by the synthetic generator directly.
func BenchmarkLiveGenerate(b *testing.B) {
	g := mustByName(b, "cc").New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
