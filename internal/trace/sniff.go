package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/arch"
)

// ReadTrace materializes any of the repository's trace file formats into a
// Buffer, dispatching on the leading magic: DPTR record streams (the
// interchange format written by trace.Record / cmd/tracedump) and DPBF
// buffer dumps (the runner's materialized cache format). Tools that analyze
// traces can accept either without caring which one they were handed.
func ReadTrace(r io.Reader) (*Buffer, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("trace: sniffing magic: %w", err)
	}
	switch string(magic) {
	case bufferMagic:
		return ReadBuffer(br)
	case traceMagic:
		return readTraceRecords(br)
	default:
		return nil, fmt.Errorf("trace: unrecognized magic %q (want %q or %q)",
			magic, traceMagic, bufferMagic)
	}
}

// readTraceRecords drains a DPTR stream into a Buffer. The record count is
// not stored in the header, so the stream ends at clean EOF; a partial
// trailing record is corruption and errors out.
func readTraceRecords(br *bufio.Reader) (*Buffer, error) {
	name, _, err := readTraceHeader(br)
	if err != nil {
		return nil, err
	}
	b := &Buffer{name: name}
	var rec [recordSize]byte
	for i := 0; ; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if err == io.EOF {
				return b, nil
			}
			if err == io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("trace: record %d truncated (partial trailing record): %w", i, err)
			}
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		flags := rec[20]
		if flags&recFlagReserved != 0 {
			return nil, fmt.Errorf("trace: record %d: reserved record flag bits %#x set", i, flags&recFlagReserved)
		}
		if rec[21] != 0 || rec[22] != 0 || rec[23] != 0 {
			return nil, fmt.Errorf("trace: record %d: nonzero pad bytes % x", i, rec[21:24])
		}
		b.Append(Access{
			PC:        binary.LittleEndian.Uint64(rec[0:]),
			Addr:      arch.VAddr(binary.LittleEndian.Uint64(rec[8:])),
			Gap:       binary.LittleEndian.Uint32(rec[16:]),
			Write:     flags&recFlagWrite != 0,
			Dependent: flags&recFlagDependent != 0,
		})
	}
}
