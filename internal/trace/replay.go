package trace

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/arch"
)

// Trace file format: a fixed header followed by fixed-size little-endian
// records. The format exists so users can bring traces from real systems
// (e.g. converted from Pin or DynamoRIO logs) and replay them through the
// simulator, or export the synthetic workloads for external analysis.
//
//	header:  magic "DPTR" | version u16 | flags u16 | name len u16 | name
//	record:  pc u64 | vaddr u64 | gap u32 | flags u8 (bit0 write,
//	         bit1 dependent) | pad [3]u8
const (
	traceMagic   = "DPTR"
	traceVersion = 1
	recordSize   = 8 + 8 + 4 + 1 + 3
)

const (
	recFlagWrite     = 1 << 0
	recFlagDependent = 1 << 1
	// recFlagReserved masks record flag bits 2..7, which must be zero on
	// disk — like the header's reserved flags, a set bit means a future
	// format or corruption, and both readers reject it.
	recFlagReserved = ^uint8(recFlagWrite | recFlagDependent)
)

// Writer streams accesses into a trace file.
type Writer struct {
	w   *bufio.Writer
	buf [recordSize]byte
	n   uint64
}

// NewWriter writes a trace header for the named workload and returns a
// Writer for its records.
func NewWriter(w io.Writer, name string) (*Writer, error) {
	if len(name) > 1<<16-1 {
		return nil, fmt.Errorf("trace: name too long (%d bytes)", len(name))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return nil, err
	}
	var hdr [6]byte
	binary.LittleEndian.PutUint16(hdr[0:], traceVersion)
	binary.LittleEndian.PutUint16(hdr[2:], 0) // flags
	binary.LittleEndian.PutUint16(hdr[4:], uint16(len(name)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(name); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one access record.
func (t *Writer) Write(a Access) error {
	b := t.buf[:]
	binary.LittleEndian.PutUint64(b[0:], a.PC)
	binary.LittleEndian.PutUint64(b[8:], uint64(a.Addr))
	binary.LittleEndian.PutUint32(b[16:], a.Gap)
	var flags byte
	if a.Write {
		flags |= recFlagWrite
	}
	if a.Dependent {
		flags |= recFlagDependent
	}
	b[20] = flags
	b[21], b[22], b[23] = 0, 0, 0
	if _, err := t.w.Write(b); err != nil {
		return err
	}
	t.n++
	return nil
}

// Records returns the number of records written.
func (t *Writer) Records() uint64 { return t.n }

// Flush flushes buffered records to the underlying writer.
func (t *Writer) Flush() error { return t.w.Flush() }

// Record captures n accesses from a generator into w. A source generator
// that latches an error (ErrGenerator) fails the capture instead of
// recording its repeated final access.
func Record(w io.Writer, g Generator, n uint64) error {
	return RecordContext(context.Background(), w, g, n)
}

// RecordContext is Record with cancellation: the capture loop checks ctx
// on a coarse stride and stops with ctx's error when it is canceled.
func RecordContext(ctx context.Context, w io.Writer, g Generator, n uint64) error {
	tw, err := NewWriter(w, g.Name())
	if err != nil {
		return err
	}
	done := ctx.Done()
	for i := uint64(0); i < n; i++ {
		if done != nil && i&(ctxCheckStride-1) == 0 {
			select {
			case <-done:
				return fmt.Errorf("trace: recording %s canceled at record %d of %d: %w",
					g.Name(), i, n, ctx.Err())
			default:
			}
		}
		if err := tw.Write(g.Next()); err != nil {
			return err
		}
		if err := GeneratorErr(g); err != nil {
			return fmt.Errorf("trace: recording %s: %w", g.Name(), err)
		}
	}
	return tw.Flush()
}

// ctxCheckStride is how many loop iterations drain loops (Record,
// Materialize, sim.System.RunContext) run between context checks: frequent
// enough that cancellation lands within microseconds, coarse enough that
// the check is invisible next to the per-iteration work. It doubles as the
// batch granule of the chunked APIs (Buffer.NextChunk, the DPBF v2 chunk
// size), so cancellation keeps landing at chunk boundaries.
const ctxCheckStride = 4096

// Every drain loop tests the stride with the mask form
// i&(ctxCheckStride-1) == 0, which is only equivalent to i%ctxCheckStride
// when the stride is a power of two; this constant fails to compile
// otherwise (a negative value cannot convert to uint).
const _ uint = -(ctxCheckStride & (ctxCheckStride - 1))

// Replayer is a Generator that reads a recorded trace. When the trace is
// exhausted it either loops (loop=true) or keeps returning the final
// access, mirroring the scripted generators used in tests. It implements
// ErrGenerator: the first read or validation error latches and is
// reported by Err, because Next cannot return errors without breaking the
// Generator contract.
type Replayer struct {
	r    *bufio.Reader
	name string
	buf  [recordSize]byte
	last Access
	any  bool
	// rec counts records delivered so far (across loop rewinds), giving
	// latched errors a stream position.
	rec uint64
	// Loop restarts from the first record at EOF; requires the
	// underlying reader to be an io.ReadSeeker.
	loop   bool
	seeker io.ReadSeeker
	body   int64
	// err is the first read or validation error (other than clean EOF
	// handling); see Err.
	err error
}

// Err implements ErrGenerator: it returns the first read or validation
// error the replay latched, or nil. Once Err is non-nil every Next
// returns the last good access unchanged.
func (t *Replayer) Err() error { return t.err }

// NewReplayer opens a recorded trace. If loop is true the source must be
// an io.ReadSeeker and the trace restarts at EOF; otherwise the final
// access repeats.
func NewReplayer(r io.Reader, loop bool) (*Replayer, error) {
	br := bufio.NewReader(r)
	name, hdrLen, err := readTraceHeader(br)
	if err != nil {
		return nil, err
	}
	rp := &Replayer{r: br, name: name, loop: loop}
	if loop {
		rs, ok := r.(io.ReadSeeker)
		if !ok {
			return nil, errors.New("trace: looping replay needs an io.ReadSeeker")
		}
		rp.seeker = rs
		rp.body = hdrLen
	}
	return rp, nil
}

// readTraceHeader consumes and validates a DPTR header, returning the
// workload name and the header's byte length (the seek target for looping
// replay).
func readTraceHeader(br *bufio.Reader) (name string, hdrLen int64, err error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return "", 0, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return "", 0, fmt.Errorf("trace: bad magic %q", magic)
	}
	var hdr [6]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return "", 0, fmt.Errorf("trace: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:]); v != traceVersion {
		return "", 0, fmt.Errorf("trace: unsupported version %d", v)
	}
	if fl := binary.LittleEndian.Uint16(hdr[2:]); fl != 0 {
		return "", 0, fmt.Errorf("trace: reserved header flags %#x set", fl)
	}
	nameLen := int(binary.LittleEndian.Uint16(hdr[4:]))
	nb := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nb); err != nil {
		return "", 0, fmt.Errorf("trace: reading name: %w", err)
	}
	return string(nb), int64(4 + len(hdr) + nameLen), nil
}

// Name implements Generator.
func (t *Replayer) Name() string { return t.name }

// errEmptyTrace reports a structurally valid trace with zero records.
var errEmptyTrace = errors.New("trace: no records")

// Next implements Generator. The retry loop handles at most one rewind:
// looping replay seeks back to the first record on clean EOF, and a trace
// that still cannot produce a record latches errEmptyTrace rather than
// spinning.
func (t *Replayer) Next() Access {
	if t.err != nil {
		return t.last
	}
	for rewinds := 0; ; rewinds++ {
		_, err := io.ReadFull(t.r, t.buf[:])
		if err == nil {
			break
		}
		if err == io.ErrUnexpectedEOF {
			t.err = fmt.Errorf("trace: record %d truncated (partial trailing record): %w", t.rec, err)
			return t.last
		}
		if err != io.EOF {
			t.err = fmt.Errorf("trace: record %d: %w", t.rec, err)
			return t.last
		}
		if !t.any || !t.loop {
			if !t.any {
				t.err = errEmptyTrace
			}
			return t.last // repeat final access (or zero value, err latched)
		}
		if rewinds > 0 {
			t.err = errEmptyTrace
			return t.last
		}
		if _, serr := t.seeker.Seek(t.body, io.SeekStart); serr != nil {
			t.err = serr
			return t.last
		}
		t.r.Reset(t.seeker)
	}
	b := t.buf[:]
	flags := b[20]
	if flags&recFlagReserved != 0 {
		t.err = fmt.Errorf("trace: record %d: reserved record flag bits %#x set", t.rec, flags&recFlagReserved)
		return t.last
	}
	if b[21] != 0 || b[22] != 0 || b[23] != 0 {
		t.err = fmt.Errorf("trace: record %d: nonzero pad bytes % x", t.rec, b[21:24])
		return t.last
	}
	t.any = true
	t.rec++
	t.last = Access{
		PC:        binary.LittleEndian.Uint64(b[0:]),
		Addr:      arch.VAddr(binary.LittleEndian.Uint64(b[8:])),
		Gap:       binary.LittleEndian.Uint32(b[16:]),
		Write:     flags&recFlagWrite != 0,
		Dependent: flags&recFlagDependent != 0,
	}
	return t.last
}
