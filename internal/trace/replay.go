package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/arch"
)

// Trace file format: a fixed header followed by fixed-size little-endian
// records. The format exists so users can bring traces from real systems
// (e.g. converted from Pin or DynamoRIO logs) and replay them through the
// simulator, or export the synthetic workloads for external analysis.
//
//	header:  magic "DPTR" | version u16 | flags u16 | name len u16 | name
//	record:  pc u64 | vaddr u64 | gap u32 | flags u8 (bit0 write,
//	         bit1 dependent) | pad [3]u8
const (
	traceMagic   = "DPTR"
	traceVersion = 1
	recordSize   = 8 + 8 + 4 + 1 + 3
)

const (
	recFlagWrite     = 1 << 0
	recFlagDependent = 1 << 1
)

// Writer streams accesses into a trace file.
type Writer struct {
	w   *bufio.Writer
	buf [recordSize]byte
	n   uint64
}

// NewWriter writes a trace header for the named workload and returns a
// Writer for its records.
func NewWriter(w io.Writer, name string) (*Writer, error) {
	if len(name) > 1<<16-1 {
		return nil, fmt.Errorf("trace: name too long (%d bytes)", len(name))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return nil, err
	}
	var hdr [6]byte
	binary.LittleEndian.PutUint16(hdr[0:], traceVersion)
	binary.LittleEndian.PutUint16(hdr[2:], 0) // flags
	binary.LittleEndian.PutUint16(hdr[4:], uint16(len(name)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(name); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one access record.
func (t *Writer) Write(a Access) error {
	b := t.buf[:]
	binary.LittleEndian.PutUint64(b[0:], a.PC)
	binary.LittleEndian.PutUint64(b[8:], uint64(a.Addr))
	binary.LittleEndian.PutUint32(b[16:], a.Gap)
	var flags byte
	if a.Write {
		flags |= recFlagWrite
	}
	if a.Dependent {
		flags |= recFlagDependent
	}
	b[20] = flags
	b[21], b[22], b[23] = 0, 0, 0
	if _, err := t.w.Write(b); err != nil {
		return err
	}
	t.n++
	return nil
}

// Records returns the number of records written.
func (t *Writer) Records() uint64 { return t.n }

// Flush flushes buffered records to the underlying writer.
func (t *Writer) Flush() error { return t.w.Flush() }

// Record captures n accesses from a generator into w.
func Record(w io.Writer, g Generator, n uint64) error {
	tw, err := NewWriter(w, g.Name())
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		if err := tw.Write(g.Next()); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// Replayer is a Generator that reads a recorded trace. When the trace is
// exhausted it either loops (Loop=true) or keeps returning the final
// access, mirroring the scripted generators used in tests.
type Replayer struct {
	r    *bufio.Reader
	name string
	buf  [recordSize]byte
	last Access
	any  bool
	// Loop restarts from the first record at EOF; requires the
	// underlying reader to be an io.ReadSeeker.
	loop   bool
	seeker io.ReadSeeker
	body   int64
	// Err records the first read error (other than clean EOF handling);
	// Next cannot return errors without breaking the Generator contract.
	Err error
}

// NewReplayer opens a recorded trace. If loop is true the source must be
// an io.ReadSeeker and the trace restarts at EOF; otherwise the final
// access repeats.
func NewReplayer(r io.Reader, loop bool) (*Replayer, error) {
	br := bufio.NewReader(r)
	name, hdrLen, err := readTraceHeader(br)
	if err != nil {
		return nil, err
	}
	rp := &Replayer{r: br, name: name, loop: loop}
	if loop {
		rs, ok := r.(io.ReadSeeker)
		if !ok {
			return nil, errors.New("trace: looping replay needs an io.ReadSeeker")
		}
		rp.seeker = rs
		rp.body = hdrLen
	}
	return rp, nil
}

// readTraceHeader consumes and validates a DPTR header, returning the
// workload name and the header's byte length (the seek target for looping
// replay).
func readTraceHeader(br *bufio.Reader) (name string, hdrLen int64, err error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return "", 0, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return "", 0, fmt.Errorf("trace: bad magic %q", magic)
	}
	var hdr [6]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return "", 0, fmt.Errorf("trace: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:]); v != traceVersion {
		return "", 0, fmt.Errorf("trace: unsupported version %d", v)
	}
	if fl := binary.LittleEndian.Uint16(hdr[2:]); fl != 0 {
		return "", 0, fmt.Errorf("trace: reserved header flags %#x set", fl)
	}
	nameLen := int(binary.LittleEndian.Uint16(hdr[4:]))
	nb := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nb); err != nil {
		return "", 0, fmt.Errorf("trace: reading name: %w", err)
	}
	return string(nb), int64(4 + len(hdr) + nameLen), nil
}

// Name implements Generator.
func (t *Replayer) Name() string { return t.name }

// errEmptyTrace reports a structurally valid trace with zero records.
var errEmptyTrace = errors.New("trace: no records")

// Next implements Generator. The retry loop handles at most one rewind:
// looping replay seeks back to the first record on clean EOF, and a trace
// that still cannot produce a record latches errEmptyTrace rather than
// spinning.
func (t *Replayer) Next() Access {
	if t.Err != nil {
		return t.last
	}
	for rewinds := 0; ; rewinds++ {
		_, err := io.ReadFull(t.r, t.buf[:])
		if err == nil {
			break
		}
		if err != io.EOF {
			t.Err = err
			return t.last
		}
		if !t.any || !t.loop {
			if !t.any {
				t.Err = errEmptyTrace
			}
			return t.last // repeat final access (or zero value, Err latched)
		}
		if rewinds > 0 {
			t.Err = errEmptyTrace
			return t.last
		}
		if _, serr := t.seeker.Seek(t.body, io.SeekStart); serr != nil {
			t.Err = serr
			return t.last
		}
		t.r.Reset(t.seeker)
	}
	t.any = true
	b := t.buf[:]
	flags := b[20]
	t.last = Access{
		PC:        binary.LittleEndian.Uint64(b[0:]),
		Addr:      arch.VAddr(binary.LittleEndian.Uint64(b[8:])),
		Gap:       binary.LittleEndian.Uint32(b[16:]),
		Write:     flags&recFlagWrite != 0,
		Dependent: flags&recFlagDependent != 0,
	}
	return t.last
}
