package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestRecordReplayRoundTrip(t *testing.T) {
	w, err := ByName("cc")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	const n = 5000
	if err := Record(&buf, w.New(9), n); err != nil {
		t.Fatal(err)
	}

	rp, err := NewReplayer(bytes.NewReader(buf.Bytes()), false)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Name() != "cc" {
		t.Errorf("replayed name %q, want cc", rp.Name())
	}
	ref := w.New(9)
	for i := 0; i < n; i++ {
		got, want := rp.Next(), ref.Next()
		if got != want {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
	}
	if rp.Err() != nil {
		t.Fatal(rp.Err())
	}
}

func TestReplayRepeatsFinalAccessAtEOF(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, "mini")
	if err != nil {
		t.Fatal(err)
	}
	accesses := []Access{
		{PC: 1, Addr: 0x1000, Gap: 2},
		{PC: 2, Addr: 0x2000, Gap: 3, Write: true, Dependent: true},
	}
	for _, a := range accesses {
		if err := tw.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if tw.Records() != 2 {
		t.Fatalf("Records = %d, want 2", tw.Records())
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	rp, err := NewReplayer(bytes.NewReader(buf.Bytes()), false)
	if err != nil {
		t.Fatal(err)
	}
	rp.Next()
	last := rp.Next()
	for i := 0; i < 5; i++ {
		if got := rp.Next(); got != last {
			t.Fatalf("EOF repeat %d: got %+v, want %+v", i, got, last)
		}
	}
	if rp.Err() != nil {
		t.Fatal(rp.Err())
	}
}

func TestReplayLoops(t *testing.T) {
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf, "loop")
	for i := 0; i < 3; i++ {
		if err := tw.Write(Access{PC: uint64(i + 1), Addr: 0x1000}); err != nil {
			t.Fatal(err)
		}
	}
	tw.Flush()
	rp, err := NewReplayer(bytes.NewReader(buf.Bytes()), true)
	if err != nil {
		t.Fatal(err)
	}
	var pcs []uint64
	for i := 0; i < 7; i++ {
		pcs = append(pcs, rp.Next().PC)
	}
	want := []uint64{1, 2, 3, 1, 2, 3, 1}
	for i := range want {
		if pcs[i] != want[i] {
			t.Fatalf("looped sequence %v, want %v", pcs, want)
		}
	}
	if rp.Err() != nil {
		t.Fatal(rp.Err())
	}
}

func TestReplayerRejectsGarbage(t *testing.T) {
	if _, err := NewReplayer(strings.NewReader("not a trace file"), false); err == nil {
		t.Error("garbage header accepted")
	}
	if _, err := NewReplayer(strings.NewReader(""), false); err == nil {
		t.Error("empty input accepted")
	}
	// Looping replay over a non-seeker must be rejected up front.
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf, "x")
	tw.Flush()
	if _, err := NewReplayer(onlyReader{bytes.NewReader(buf.Bytes())}, true); err == nil {
		t.Error("looping replay accepted a non-seeker")
	}
}

// onlyReader hides the Seeker interface.
type onlyReader struct{ r *bytes.Reader }

func (o onlyReader) Read(p []byte) (int, error) { return o.r.Read(p) }

func TestReplayerRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf, "v")
	tw.Flush()
	raw := buf.Bytes()
	raw[4] = 99 // bump version field
	if _, err := NewReplayer(bytes.NewReader(raw), false); err == nil {
		t.Error("future version accepted")
	}
}

// Property: any access round-trips bit-exactly through the record format.
func TestRecordRoundTripProperty(t *testing.T) {
	f := func(pc, addr uint64, gap uint32, w, d bool) bool {
		a := Access{PC: pc, Addr: arch.VAddr(addr), Gap: gap, Write: w, Dependent: d}
		var buf bytes.Buffer
		tw, err := NewWriter(&buf, "p")
		if err != nil {
			return false
		}
		if err := tw.Write(a); err != nil {
			return false
		}
		tw.Flush()
		rp, err := NewReplayer(bytes.NewReader(buf.Bytes()), false)
		if err != nil {
			return false
		}
		return rp.Next() == a && rp.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
