package trace

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/arch"
)

// Buffer is a materialized access trace in struct-of-arrays form: one flat
// slice per Access field, so a million-access workload costs four slice
// headers and ~21 bytes per access instead of a million Access values
// behind an interface. The experiment runner materializes each workload's
// stream once and replays it read-only from every (workload, setup) cell
// and every worker, eliminating the per-cell regeneration cost (the RNG
// and math.Pow work of the synthetic generators).
//
// A Buffer is immutable once built; concurrent readers need no locking.
type Buffer struct {
	name  string
	pc    []uint64
	va    []uint64
	gap   []uint32
	flags []uint8
}

// Per-record flag bits of the packed flags byte. Bits 2..7 are reserved
// and must be zero on disk. FlagWrite and FlagDependent are exported so the
// batched simulation path (sim.System.RunBatch) can decode a flags column
// without reconstructing Access values.
const (
	FlagWrite     uint8 = 1 << 0
	FlagDependent uint8 = 1 << 1

	bufFlagWrite     = FlagWrite
	bufFlagDependent = FlagDependent
	bufFlagReserved  = ^uint8(bufFlagWrite | bufFlagDependent)
)

// NewBuffer returns an empty buffer with capacity for n accesses.
func NewBuffer(name string, n int) *Buffer {
	return &Buffer{
		name:  name,
		pc:    make([]uint64, 0, n),
		va:    make([]uint64, 0, n),
		gap:   make([]uint32, 0, n),
		flags: make([]uint8, 0, n),
	}
}

// Materialize drains n accesses from the generator into a new buffer.
// The buffer replays bit-identically to the live stream: Materialize
// consumes the generator exactly as a simulation would. A source that
// latches an error mid-stream (ErrGenerator) fails the materialization
// rather than yielding a buffer padded with its repeated final access.
func Materialize(g Generator, n uint64) (*Buffer, error) {
	return MaterializeContext(context.Background(), g, n)
}

// MaterializeContext is Materialize with cancellation: the drain loop
// checks ctx on a coarse stride and stops with ctx's error when canceled.
func MaterializeContext(ctx context.Context, g Generator, n uint64) (*Buffer, error) {
	b := NewBuffer(g.Name(), int(n))
	done := ctx.Done()
	for i := uint64(0); i < n; i++ {
		if done != nil && i&(ctxCheckStride-1) == 0 {
			select {
			case <-done:
				return nil, fmt.Errorf("trace: materializing %s canceled at access %d of %d: %w",
					g.Name(), i, n, ctx.Err())
			default:
			}
		}
		b.Append(g.Next())
	}
	if err := GeneratorErr(g); err != nil {
		return nil, fmt.Errorf("trace: materializing %s: %w", g.Name(), err)
	}
	return b, nil
}

// Name returns the workload name carried with the buffer.
func (b *Buffer) Name() string { return b.name }

// Len returns the number of materialized accesses.
func (b *Buffer) Len() uint64 { return uint64(len(b.pc)) }

// Append adds one access.
func (b *Buffer) Append(a Access) {
	var f uint8
	if a.Write {
		f |= bufFlagWrite
	}
	if a.Dependent {
		f |= bufFlagDependent
	}
	b.pc = append(b.pc, a.PC)
	b.va = append(b.va, uint64(a.Addr))
	b.gap = append(b.gap, a.Gap)
	b.flags = append(b.flags, f)
}

// At reconstructs the i-th access. i must be < Len().
func (b *Buffer) At(i uint64) Access {
	f := b.flags[i]
	return Access{
		PC:        b.pc[i],
		Addr:      arch.VAddr(b.va[i]),
		Gap:       b.gap[i],
		Write:     f&bufFlagWrite != 0,
		Dependent: f&bufFlagDependent != 0,
	}
}

// Reader returns a Generator view positioned at the start of the buffer.
func (b *Buffer) Reader() *BufferReader { return &BufferReader{buf: b} }

// ReaderAt returns a Generator view positioned at access pos (clamped to
// the buffer length; the next Next() wraps to the start when pos == Len).
func (b *Buffer) ReaderAt(pos uint64) *BufferReader {
	if pos > b.Len() {
		pos = b.Len()
	}
	return &BufferReader{buf: b, pos: pos}
}

// BufferReader is a positioned Generator over a shared read-only Buffer.
// Forking a reader costs one small allocation, which is what lets a warmed
// simulation and its clones resume the same stream independently.
//
// BufferReader implements ErrGenerator: the buffer itself is immutable and
// cannot fail, but reading from an empty buffer latches errEmptyTrace so a
// drain loop over a degenerate buffer fails loudly instead of producing a
// stream of zero-valued accesses.
type BufferReader struct {
	buf *Buffer
	pos uint64
	err error
}

// Err implements ErrGenerator.
func (r *BufferReader) Err() error { return r.err }

// Name implements Generator.
func (r *BufferReader) Name() string { return r.buf.name }

// Pos returns the index of the next access to be returned.
func (r *BufferReader) Pos() uint64 { return r.pos }

// Buffer returns the underlying shared buffer.
func (r *BufferReader) Buffer() *Buffer { return r.buf }

// Next implements Generator. Past the end the reader wraps to the start,
// mirroring the looping Replayer; an empty buffer returns zero accesses.
func (r *BufferReader) Next() Access {
	if r.pos >= r.buf.Len() {
		if r.buf.Len() == 0 {
			r.err = errEmptyTrace
			return Access{}
		}
		r.pos = 0
	}
	a := r.buf.At(r.pos)
	r.pos++
	return a
}

// Fork implements ForkableGenerator: the new reader shares the buffer and
// continues from the same position, independently.
func (r *BufferReader) Fork() Generator {
	c := *r
	return &c
}

// Chunk is a columnar view of consecutive trace accesses: one parallel
// slice per Access field, in the Buffer's struct-of-arrays layout. The
// batched simulation loop consumes chunks directly, with no per-access
// Access reconstruction and no Generator interface call per record.
type Chunk struct {
	PC    []uint64
	VA    []uint64
	Gap   []uint32
	Flags []uint8 // FlagWrite | FlagDependent per record
}

// Len returns the number of accesses in the chunk.
func (c Chunk) Len() int { return len(c.PC) }

// ChunkReader is a Generator whose stream can also be drained in columnar
// chunks. BufferReader yields views straight into its shared Buffer;
// StreamReader (DPBF v2) decodes chunks on demand into reused buffers.
// Next and NextChunk advance the same cursor and may be interleaved.
type ChunkReader interface {
	Generator
	// NextChunk returns up to max consecutive accesses, advancing the
	// cursor, and wraps at the end of the stream like Next. It returns a
	// shorter (but non-empty) chunk at a wrap or chunk boundary; an empty
	// chunk means the source can produce no records, with the reason
	// latched on the generator (ErrGenerator) and also returned. The
	// returned slices are valid only until the next NextChunk/Next call.
	NextChunk(max int) (Chunk, error)
}

// NextChunk implements ChunkReader: the returned slices alias the shared
// immutable Buffer and stay valid indefinitely.
func (r *BufferReader) NextChunk(max int) (Chunk, error) {
	if max <= 0 {
		return Chunk{}, nil
	}
	n := r.buf.Len()
	if r.pos >= n {
		if n == 0 {
			r.err = errEmptyTrace
			return Chunk{}, r.err
		}
		r.pos = 0
	}
	end := r.pos + uint64(max)
	if end > n {
		end = n
	}
	c := Chunk{
		PC:    r.buf.pc[r.pos:end],
		VA:    r.buf.va[r.pos:end],
		Gap:   r.buf.gap[r.pos:end],
		Flags: r.buf.flags[r.pos:end],
	}
	r.pos = end
	return c, nil
}

// ForkableGenerator is a Generator whose position/state can be duplicated
// so two consumers continue the same stream independently. BufferReader
// forks by copying its cursor; the synthetic mix generators fork by
// deep-copying their RNG and per-stream offsets. The warm-state fork path
// in the experiment runner requires it.
type ForkableGenerator interface {
	Generator
	Fork() Generator
}

// --- Binary codec --------------------------------------------------------
//
// Buffer file format (all little-endian):
//
//	header:  magic "DPBF" | version u16 | flags u16 (reserved, 0) |
//	         name len u16 | name | count u64
//	body:    pc [count]u64 | vaddr [count]u64 | gap [count]u32 |
//	         flags [count]u8 (bits 2..7 reserved, 0)
//
// The struct-of-arrays body mirrors the in-memory layout, so a dump is a
// straight slice copy per field. The format is versioned separately from
// the record-stream DPTR format in replay.go: DPTR is for interchange with
// external tools, DPBF is the runner's materialized cache format.
//
// Version 2 of the format (bufferv2.go) keeps the magic and the
// magic|version|flags|name prefix but replaces the raw columns with
// delta/varint-encoded, per-chunk-compressed columns plus a chunk index in
// the footer. ReadBuffer dispatches on the version field, so both versions
// are accepted everywhere a DPBF file is.
const (
	bufferMagic   = "DPBF"
	bufferVersion = 1
	// bufferChunk bounds how many records a decoder materializes per read,
	// so a corrupt header claiming 2^60 records fails at EOF instead of
	// attempting a huge allocation.
	bufferChunk = 1 << 16
)

// WriteTo serializes the buffer in the legacy v1 layout (raw columns). It
// implements io.WriterTo. New trace files should prefer WriteToV2, which is
// both smaller and chunk-streamable; v1 writing remains available for one
// release behind the tools' explicit format flags.
func (b *Buffer) WriteTo(w io.Writer) (int64, error) {
	if len(b.name) > 1<<16-1 {
		return 0, fmt.Errorf("trace: buffer name too long (%d bytes)", len(b.name))
	}
	cw := &countingWriter{w: bufio.NewWriterSize(w, 1<<16)}
	cw.str(bufferMagic)
	cw.u16(bufferVersion)
	cw.u16(0) // reserved flags
	cw.u16(uint16(len(b.name)))
	cw.str(b.name)
	cw.u64(b.Len())
	for _, v := range b.pc {
		cw.u64(v)
	}
	for _, v := range b.va {
		cw.u64(v)
	}
	for _, v := range b.gap {
		cw.u32(v)
	}
	cw.bytes(b.flags)
	if cw.err == nil {
		cw.err = cw.w.(*bufio.Writer).Flush()
	}
	return cw.n, cw.err
}

// countingWriter latches the first write error and counts bytes.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) bytes(p []byte) {
	if c.err != nil {
		return
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
}

func (c *countingWriter) str(s string) { c.bytes([]byte(s)) }

func (c *countingWriter) u16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	c.bytes(b[:])
}

func (c *countingWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	c.bytes(b[:])
}

func (c *countingWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.bytes(b[:])
}

// ReadBuffer deserializes a buffer written by WriteTo (v1) or WriteToV2,
// dispatching on the header's version field. Truncated, corrupt or
// future-versioned inputs return an error; they never panic and never
// allocate proportionally to an unvalidated count.
func ReadBuffer(r io.Reader) (*Buffer, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [4 + 2 + 2 + 2]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading buffer header: %w", err)
	}
	if string(hdr[:4]) != bufferMagic {
		return nil, fmt.Errorf("trace: bad buffer magic %q", hdr[:4])
	}
	version := binary.LittleEndian.Uint16(hdr[4:])
	headerFlags := binary.LittleEndian.Uint16(hdr[6:])
	nameLen := int(binary.LittleEndian.Uint16(hdr[8:]))
	switch version {
	case bufferVersion:
	case bufferVersion2:
		return readBufferV2(br, headerFlags, nameLen)
	default:
		return nil, fmt.Errorf("trace: unsupported buffer version %d", version)
	}
	if headerFlags != 0 {
		return nil, fmt.Errorf("trace: reserved buffer header flags %#x set", headerFlags)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading buffer name: %w", err)
	}
	var cnt [8]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, fmt.Errorf("trace: reading buffer count: %w", err)
	}
	count := binary.LittleEndian.Uint64(cnt[:])

	b := &Buffer{name: string(name)}
	var err error
	if b.pc, err = readU64s(br, count, "pc"); err != nil {
		return nil, err
	}
	if b.va, err = readU64s(br, count, "vaddr"); err != nil {
		return nil, err
	}
	if b.gap, err = readU32s(br, count); err != nil {
		return nil, err
	}
	if b.flags, err = readFlags(br, count); err != nil {
		return nil, err
	}
	return b, nil
}

// readU64s reads count little-endian u64s in bounded chunks.
func readU64s(r io.Reader, count uint64, field string) ([]uint64, error) {
	var out []uint64
	var raw [bufferChunk * 8]byte
	for got := uint64(0); got < count; {
		n := count - got
		if n > bufferChunk {
			n = bufferChunk
		}
		chunk := raw[:n*8]
		if _, err := io.ReadFull(r, chunk); err != nil {
			return nil, fmt.Errorf("trace: reading buffer %s array: %w", field, err)
		}
		for i := uint64(0); i < n; i++ {
			out = append(out, binary.LittleEndian.Uint64(chunk[i*8:]))
		}
		got += n
	}
	return out, nil
}

// readU32s reads count little-endian u32s in bounded chunks.
func readU32s(r io.Reader, count uint64) ([]uint32, error) {
	var out []uint32
	var raw [bufferChunk * 4]byte
	for got := uint64(0); got < count; {
		n := count - got
		if n > bufferChunk {
			n = bufferChunk
		}
		chunk := raw[:n*4]
		if _, err := io.ReadFull(r, chunk); err != nil {
			return nil, fmt.Errorf("trace: reading buffer gap array: %w", err)
		}
		for i := uint64(0); i < n; i++ {
			out = append(out, binary.LittleEndian.Uint32(chunk[i*4:]))
		}
		got += n
	}
	return out, nil
}

// readFlags reads count flag bytes in bounded chunks, rejecting reserved
// bits.
func readFlags(r io.Reader, count uint64) ([]uint8, error) {
	var out []uint8
	var raw [bufferChunk]byte
	for got := uint64(0); got < count; {
		n := count - got
		if n > bufferChunk {
			n = bufferChunk
		}
		chunk := raw[:n]
		if _, err := io.ReadFull(r, chunk); err != nil {
			return nil, fmt.Errorf("trace: reading buffer flags array: %w", err)
		}
		for i, f := range chunk {
			if f&bufFlagReserved != 0 {
				return nil, fmt.Errorf("trace: record %d: reserved flag bits %#x set",
					got+uint64(i), f&bufFlagReserved)
			}
		}
		out = append(out, chunk...)
		got += n
	}
	return out, nil
}
