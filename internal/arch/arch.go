// Package arch defines the architectural constants and primitive types
// shared by every component of the simulated machine: virtual and physical
// addresses, page and cache-block geometry, and cycle accounting.
//
// The model follows the paper's baseline (Table I): x86-64-style 48-bit
// virtual addresses, 51-bit physical addresses, 4 KB pages and 64 B cache
// blocks, translated by a four-level radix page table.
package arch

// Architectural geometry. These are compile-time constants of the simulated
// ISA; structure sizes (TLB entries, cache capacity, ...) are runtime
// configuration instead.
const (
	// PageShift is log2 of the page size (4 KB pages).
	PageShift = 12
	// PageSize is the size of a virtual-memory page in bytes.
	PageSize = 1 << PageShift
	// PageOffsetMask extracts the within-page offset of an address.
	PageOffsetMask = PageSize - 1

	// BlockShift is log2 of the cache-block size (64 B blocks).
	BlockShift = 6
	// BlockSize is the size of a cache block in bytes.
	BlockSize = 1 << BlockShift
	// BlockOffsetMask extracts the within-block offset of an address.
	BlockOffsetMask = BlockSize - 1

	// BlocksPerPage is the number of cache blocks covering one page (64).
	BlocksPerPage = PageSize / BlockSize

	// VABits is the number of implemented virtual-address bits.
	VABits = 48
	// PABits is the number of implemented physical-address bits.
	PABits = 51

	// VPNBits is the number of bits in a virtual page number.
	VPNBits = VABits - PageShift
	// PFNBits is the number of bits in a physical frame number.
	PFNBits = PABits - PageShift

	// RadixLevels is the depth of the page table (PML4 → PDPT → PD → PT).
	RadixLevels = 4
	// RadixIndexBits is the number of VPN bits consumed per radix level.
	RadixIndexBits = 9
	// RadixFanout is the number of entries per page-table node (512).
	RadixFanout = 1 << RadixIndexBits
	// PTESize is the size of one page-table entry in bytes.
	PTESize = 8
)

// VAddr is a virtual byte address.
type VAddr uint64

// PAddr is a physical byte address.
type PAddr uint64

// VPN is a virtual page number (a VAddr with the page offset stripped).
type VPN uint64

// PFN is a physical frame number (a PAddr with the page offset stripped).
type PFN uint64

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// Lat is a latency (duration) in core clock cycles.
type Lat uint64

// Page returns the virtual page number containing the address.
func (a VAddr) Page() VPN { return VPN(a >> PageShift) }

// Offset returns the byte offset of the address within its page.
func (a VAddr) Offset() uint64 { return uint64(a) & PageOffsetMask }

// Block returns the address of the cache block containing the address,
// i.e. the address with the block offset cleared.
func (a VAddr) Block() VAddr { return a &^ BlockOffsetMask }

// Addr returns the first byte address of the page.
func (p VPN) Addr() VAddr { return VAddr(p) << PageShift }

// RadixIndex returns the page-table index used at the given radix level.
// Level 0 is the root (PML4); level RadixLevels-1 is the leaf (PT).
func (p VPN) RadixIndex(level int) uint64 {
	shift := uint((RadixLevels - 1 - level) * RadixIndexBits)
	return (uint64(p) >> shift) & (RadixFanout - 1)
}

// Page returns the physical frame number containing the address.
func (a PAddr) Page() PFN { return PFN(a >> PageShift) }

// Block returns the address of the cache block containing the address.
func (a PAddr) Block() PAddr { return a &^ BlockOffsetMask }

// BlockIndex returns the index of the block within its page (0..63).
func (a PAddr) BlockIndex() uint64 {
	return (uint64(a) & PageOffsetMask) >> BlockShift
}

// Addr returns the first byte address of the frame.
func (f PFN) Addr() PAddr { return PAddr(f) << PageShift }

// Translate combines a physical frame with the page offset of a virtual
// address, producing the physical address of the access.
func Translate(f PFN, va VAddr) PAddr {
	return f.Addr() | PAddr(va.Offset())
}
