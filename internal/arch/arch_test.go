package arch

import (
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if PageSize != 4096 {
		t.Errorf("PageSize = %d, want 4096", PageSize)
	}
	if BlockSize != 64 {
		t.Errorf("BlockSize = %d, want 64", BlockSize)
	}
	if BlocksPerPage != 64 {
		t.Errorf("BlocksPerPage = %d, want 64", BlocksPerPage)
	}
	if VPNBits != 36 {
		t.Errorf("VPNBits = %d, want 36", VPNBits)
	}
	if PFNBits != 39 {
		t.Errorf("PFNBits = %d, want 39", PFNBits)
	}
	if RadixLevels*RadixIndexBits != VPNBits {
		t.Errorf("radix levels %d x %d bits do not cover VPN of %d bits",
			RadixLevels, RadixIndexBits, VPNBits)
	}
}

func TestVAddrDecomposition(t *testing.T) {
	a := VAddr(0x0000_7f12_3456_789a)
	if got, want := a.Page(), VPN(0x7f1234567); got != want {
		t.Errorf("Page() = %#x, want %#x", got, want)
	}
	if got, want := a.Offset(), uint64(0x89a); got != want {
		t.Errorf("Offset() = %#x, want %#x", got, want)
	}
	if got, want := a.Block(), VAddr(0x0000_7f12_3456_7880); got != want {
		t.Errorf("Block() = %#x, want %#x", got, want)
	}
}

func TestRadixIndexCoversVPN(t *testing.T) {
	p := VPN(0xFBCDE6789)
	var rebuilt uint64
	for lvl := 0; lvl < RadixLevels; lvl++ {
		rebuilt = rebuilt<<RadixIndexBits | p.RadixIndex(lvl)
	}
	if rebuilt != uint64(p) {
		t.Errorf("radix indices rebuild %#x, want %#x", rebuilt, uint64(p))
	}
}

func TestTranslatePreservesOffset(t *testing.T) {
	va := VAddr(0x12345_6f3)
	f := PFN(0xABCDE)
	pa := Translate(f, va)
	if pa.Page() != f {
		t.Errorf("Translate frame = %#x, want %#x", pa.Page(), f)
	}
	if uint64(pa)&PageOffsetMask != va.Offset() {
		t.Errorf("Translate offset = %#x, want %#x",
			uint64(pa)&PageOffsetMask, va.Offset())
	}
}

func TestBlockIndexRange(t *testing.T) {
	for off := uint64(0); off < PageSize; off += BlockSize {
		pa := PAddr(0x5000_0000 + off)
		if idx := pa.BlockIndex(); idx != off/BlockSize {
			t.Fatalf("BlockIndex(%#x) = %d, want %d", pa, idx, off/BlockSize)
		}
	}
}

// Property: page/offset decomposition is lossless for any in-range VA.
func TestVAddrRoundTripProperty(t *testing.T) {
	f := func(raw uint64) bool {
		a := VAddr(raw & ((1 << VABits) - 1))
		return a.Page().Addr()|VAddr(a.Offset()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Translate keeps the frame and the offset independent.
func TestTranslateProperty(t *testing.T) {
	f := func(rawVA, rawPFN uint64) bool {
		va := VAddr(rawVA & ((1 << VABits) - 1))
		pfn := PFN(rawPFN & ((1 << PFNBits) - 1))
		pa := Translate(pfn, va)
		return pa.Page() == pfn && uint64(pa)&PageOffsetMask == va.Offset()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a block address is always block-aligned and contains the
// original address.
func TestBlockAlignmentProperty(t *testing.T) {
	f := func(raw uint64) bool {
		a := VAddr(raw & ((1 << VABits) - 1))
		b := a.Block()
		return uint64(b)%BlockSize == 0 && b <= a && a-b < BlockSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
