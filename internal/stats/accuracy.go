// Package stats implements the measurement machinery behind the paper's
// evaluation: mirror-structure accuracy/coverage grading (§VI-C), the
// dead/DOA characterization samplers of §IV (Figures 1–4), and the
// DOA-block/DOA-page correlation measurement of Table III.
package stats

import (
	"repro/internal/cache"
	"repro/internal/policy"
)

// AccuracyTracker grades fill-time DOA predictions against ground truth.
//
// A bypassed entry never lives in the real structure, so its true outcome
// is unobservable there. The tracker therefore maintains a tag-only
// *mirror* of the structure with identical geometry and replacement policy
// that always allocates. Every access touches the mirror; a mirror fill is
// tagged with the predictor's claim for the corresponding real fill. When
// the mirror evicts an entry:
//
//   - zero hits             → it was a true DOA (coverage denominator)
//   - zero hits + predicted → the prediction was correct
//   - hits    + predicted   → the prediction was wrong
//
// Accuracy = correct / predictions graded; Coverage = correct / true DOAs,
// matching the definitions in §VI-C.
type AccuracyTracker struct {
	mirror *cache.Cache

	correct uint64
	wrong   uint64
	trueDOA uint64
}

// NewAccuracyTracker builds a tracker mirroring a structure with the given
// geometry and policy (nil means LRU).
func NewAccuracyTracker(name string, sets, ways int, pol policy.Policy) (*AccuracyTracker, error) {
	m, err := cache.New(cache.Config{Name: name + "-mirror", Sets: sets, Ways: ways, Policy: pol})
	if err != nil {
		return nil, err
	}
	return &AccuracyTracker{mirror: m}, nil
}

// Access records one access to the structure. predictedDOA is the
// predictor's fill-time claim when this access caused a real fill (false
// when the real structure hit, when no prediction was made, or when the
// access is a non-predicting refill such as a shadow-table promotion).
func (a *AccuracyTracker) Access(key uint64, predictedDOA bool, now uint64) {
	if _, ok := a.mirror.Lookup(key, now); ok {
		return
	}
	nb, victim, evicted := a.mirror.Fill(key, policy.InsertMRU, now)
	// The DP bit is reused in the mirror to mean "predicted DOA".
	nb.DP = predictedDOA
	if evicted {
		a.grade(victim)
	}
}

func (a *AccuracyTracker) grade(b cache.Block) {
	doa := b.Hits == 0
	if doa {
		a.trueDOA++
	}
	if !b.DP {
		return
	}
	if doa {
		a.correct++
	} else {
		a.wrong++
	}
}

// Result summarizes graded predictions.
type AccuracyResult struct {
	// Correct and Wrong are graded predictions; TrueDOA is the coverage
	// denominator (all DOA evictions seen by the mirror).
	Correct, Wrong, TrueDOA uint64
}

// Accuracy returns the fraction of graded predictions that were correct,
// or 1 when no prediction was graded (an idle predictor is never wrong).
func (r AccuracyResult) Accuracy() float64 {
	graded := r.Correct + r.Wrong
	if graded == 0 {
		return 1
	}
	return float64(r.Correct) / float64(graded)
}

// Coverage returns the fraction of true DOA entries the predictor caught.
func (r AccuracyResult) Coverage() float64 {
	if r.TrueDOA == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.TrueDOA)
}

// Result returns the current tally.
func (a *AccuracyTracker) Result() AccuracyResult {
	return AccuracyResult{Correct: a.correct, Wrong: a.wrong, TrueDOA: a.trueDOA}
}
