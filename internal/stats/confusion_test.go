package stats

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/policy"
)

// TestConfusionScenarios walks the three outcome classes through a tiny
// fully-associative mirror.
func TestConfusionScenarios(t *testing.T) {
	ct, err := NewConfusionTracker("llt", 1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	tick := func() uint64 { now++; return now }

	// Key 1: predicted dead, never touched again — true dead.
	ct.Access(1, true, tick())
	// Key 2: predicted dead but re-touched — premature.
	ct.Access(2, true, tick())
	ct.Access(2, false, tick()) // mirror hit, no new fill
	// Key 3: unpredicted and never re-touched — missed. Filling it evicts
	// key 1 (LRU victim: key 2 was just touched).
	ct.Access(3, false, tick())

	ct.Flush()
	got := ct.Counts()
	want := Confusion{TrueDead: 1, Premature: 1, Missed: 1}
	if got != want {
		t.Fatalf("counts = %+v, want %+v", got, want)
	}
	if got.Predicted() != 2 || got.ActualDead() != 2 || got.Total() != 3 {
		t.Fatalf("derived views wrong: %+v", got)
	}
	if got.PrematureRate() != 0.5 || got.CoverageRate() != 0.5 {
		t.Fatalf("rates wrong: premature=%v coverage=%v", got.PrematureRate(), got.CoverageRate())
	}
}

// TestConfusionInvariants drives a deterministic pseudo-random access
// stream against the tracker and an independent reference model (a second
// cache walked the same way, classified by the test), checking both that
// the classes match and that the class identities hold: every prediction
// grades as true-dead or premature, every real death as true-dead or
// missed.
func TestConfusionInvariants(t *testing.T) {
	const sets, ways = 4, 2
	ct, err := NewConfusionTracker("llc", sets, ways, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := cache.New(cache.Config{Name: "ref", Sets: sets, Ways: ways})
	if err != nil {
		t.Fatal(err)
	}

	var want Confusion
	var predictedFills, deaths uint64
	grade := func(b cache.Block) {
		dead := b.Hits == 0
		if dead {
			deaths++
		}
		switch {
		case b.DP && dead:
			want.TrueDead++
		case b.DP:
			want.Premature++
		case dead:
			want.Missed++
		}
	}

	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 33
	}
	for i := 0; i < 50_000; i++ {
		r := next()
		key := r % 64 // working set 2× the mirror, so evictions are constant
		predicted := r&0x300 == 0
		now := uint64(i)

		ct.Access(key, predicted, now)

		if _, ok := ref.Lookup(key, now); !ok {
			nb, victim, evicted := ref.Fill(key, policy.InsertMRU, now)
			nb.DP = predicted
			if predicted {
				predictedFills++
			}
			if evicted {
				grade(victim)
			}
		}
	}
	ct.Flush()
	var resident []cache.Block
	ref.ForEach(func(_, _ int, b *cache.Block) { resident = append(resident, *b) })
	for _, b := range resident {
		grade(b)
	}

	got := ct.Counts()
	if got != want {
		t.Fatalf("tracker = %+v, reference = %+v", got, want)
	}
	if got.Predicted() != predictedFills {
		t.Fatalf("TrueDead+Premature = %d, want the %d predicted fills", got.Predicted(), predictedFills)
	}
	if got.ActualDead() != deaths {
		t.Fatalf("TrueDead+Missed = %d, want the %d real deaths", got.ActualDead(), deaths)
	}
	if got.Total() != got.Predicted()+got.Missed {
		t.Fatalf("Total() = %d, want Predicted+Missed = %d", got.Total(), got.Predicted()+got.Missed)
	}
	if got.TrueDead == 0 || got.Premature == 0 || got.Missed == 0 {
		t.Fatalf("degenerate stream, some class never exercised: %+v", got)
	}
}

// TestConfusionDelta: interval emission subtracts per class.
func TestConfusionDelta(t *testing.T) {
	prev := Confusion{TrueDead: 5, Premature: 2, Missed: 10}
	cur := Confusion{TrueDead: 8, Premature: 2, Missed: 14}
	d := cur.Delta(prev)
	if d != (Confusion{TrueDead: 3, Premature: 0, Missed: 4}) {
		t.Fatalf("Delta = %+v", d)
	}
	if zero := (Confusion{}); zero.PrematureRate() != 0 || zero.CoverageRate() != 0 {
		t.Fatal("zero-value rates must be 0")
	}
}
