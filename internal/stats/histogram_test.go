package stats

import (
	"reflect"
	"testing"
)

func TestHistogram8(t *testing.T) {
	got := Histogram8(3, []uint8{0, 1, 1, 3}, []uint8{3, 3, 2})
	want := []uint64{1, 2, 1, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Histogram8 = %v, want %v", got, want)
	}
	if len(Histogram8(7)) != 8 {
		t.Fatal("empty rows must still size max+1 buckets")
	}
}
