package stats

// Histogram8 tallies byte-valued saturating counters by value: the result
// has max+1 buckets and result[v] is how many counters across all rows
// hold v. The interval sampler uses it to snapshot dpPred's pHIST and
// cbPred's bHIST distributions for learning-curve plots.
func Histogram8(max uint8, rows ...[]uint8) []uint64 {
	h := make([]uint64, int(max)+1)
	for _, row := range rows {
		for _, v := range row {
			if int(v) < len(h) {
				h[v]++
			}
		}
	}
	return h
}
