package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/policy"
)

func TestAccuracyTrackerGrading(t *testing.T) {
	a, err := NewAccuracyTracker("llt", 1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	tick := func() uint64 { now++; return now }

	// Fill key 1 predicted DOA, never touch it again; evict it with two
	// other fills → correct prediction + one true DOA.
	a.Access(1, true, tick())
	a.Access(2, false, tick())
	a.Access(3, false, tick()) // evicts 1 (LRU): DOA + predicted → correct
	r := a.Result()
	if r.Correct != 1 || r.Wrong != 0 || r.TrueDOA != 1 {
		t.Fatalf("after first eviction: %+v", r)
	}

	// Fill key 4 predicted DOA but then hit it → wrong when evicted.
	a.Access(4, true, tick())  // evicts 2 (unpredicted, DOA → trueDOA)
	a.Access(4, false, tick()) // hit: 4 now has a hit
	a.Access(5, false, tick()) // evicts 3 (unpredicted DOA)
	a.Access(6, false, tick()) // evicts 4: predicted but hit → wrong
	r = a.Result()
	if r.Correct != 1 || r.Wrong != 1 {
		t.Fatalf("final grading: %+v", r)
	}
	if r.TrueDOA != 3 {
		t.Fatalf("TrueDOA = %d, want 3 (keys 1,2,3)", r.TrueDOA)
	}
	if acc := r.Accuracy(); acc != 0.5 {
		t.Errorf("Accuracy = %v, want 0.5", acc)
	}
	if cov := r.Coverage(); math.Abs(cov-1.0/3) > 1e-12 {
		t.Errorf("Coverage = %v, want 1/3", cov)
	}
}

func TestAccuracyEmptyIsPerfect(t *testing.T) {
	r := AccuracyResult{}
	if r.Accuracy() != 1 {
		t.Error("no predictions should read as accuracy 1")
	}
	if r.Coverage() != 0 {
		t.Error("no DOAs should read as coverage 0")
	}
}

// Property: correct+wrong never exceeds the number of predicted fills, and
// trueDOA ≥ correct.
func TestAccuracyBoundsProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		a, err := NewAccuracyTracker("p", 2, 2, nil)
		if err != nil {
			return false
		}
		predicted := uint64(0)
		for i, op := range ops {
			key := uint64(op % 16)
			p := op%3 == 0
			// Count only accesses that will fill (mirror miss).
			if _, hit := probe(a, key); !hit && p {
				predicted++
			}
			a.Access(key, p, uint64(i))
		}
		r := a.Result()
		return r.Correct+r.Wrong <= predicted && r.Correct <= r.TrueDOA
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func probe(a *AccuracyTracker, key uint64) (*cache.Block, bool) {
	return a.mirror.Probe(key)
}

func TestDeadSamplerEvictionClassification(t *testing.T) {
	d := NewDeadSampler()
	// DOA: no hits.
	d.OnEvict(cache.Block{Key: 1, FillTime: 0, Hits: 0}, 100)
	// Mostly dead: hit at t=10, evicted at t=100 → dead 90 > live 10.
	d.OnEvict(cache.Block{Key: 2, FillTime: 0, LastHitTime: 10, Hits: 3}, 100)
	// Mostly live: hit at t=90, evicted at t=100 → dead 10 < live 90.
	d.OnEvict(cache.Block{Key: 3, FillTime: 0, LastHitTime: 90, Hits: 5}, 100)
	r := d.Result()
	if r.DOA != 1 || r.MostlyDead != 1 || r.MostlyLive != 1 || r.Evictions != 3 {
		t.Fatalf("classification: %+v", r)
	}
	if got := r.DeadFrac(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("DeadFrac = %v, want 2/3", got)
	}
	if got := r.DOAFrac(); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("DOAFrac = %v, want 1/3", got)
	}
}

func TestDeadSamplerResidencySampling(t *testing.T) {
	c := cache.MustNew(cache.Config{Name: "s", Sets: 1, Ways: 2})
	d := NewDeadSampler()

	c.Fill(1, policy.InsertMRU, 0)
	c.Fill(2, policy.InsertMRU, 0)
	c.Lookup(1, 5) // 1 has a hit before the sample
	d.Sample(c)    // snapshot both
	c.Lookup(1, 6) // 1 hits again after the sample → live at sample
	// 2 never hits → dead at sample, and DOA.
	_, v1, _ := c.Fill(3, policy.InsertMRU, 10) // evicts 2 (LRU)
	d.OnEvict(v1, 10)
	_, v2, _ := c.Fill(4, policy.InsertMRU, 11) // evicts 1
	d.OnEvict(v2, 11)

	r := d.Result()
	if r.Samples != 2 {
		t.Fatalf("Samples = %d, want 2", r.Samples)
	}
	if r.DeadAtSample != 1 || r.DOAAtSample != 1 {
		t.Fatalf("dead/doa at sample = %d/%d, want 1/1", r.DeadAtSample, r.DOAAtSample)
	}
}

func TestDeadSamplerFinishResolvesResidents(t *testing.T) {
	c := cache.MustNew(cache.Config{Name: "s", Sets: 1, Ways: 2})
	d := NewDeadSampler()
	c.Fill(1, policy.InsertMRU, 0)
	d.Sample(c)
	// 1 never evicts; Finish must resolve the pending sample as dead.
	d.Finish(c)
	r := d.Result()
	if r.DeadAtSample != 1 || r.DOAAtSample != 1 {
		t.Errorf("Finish resolution: %+v", r)
	}
	if r.Evictions != 0 {
		t.Error("Finish must not add eviction classifications")
	}
}

func TestDeadSamplerGenerationsDoNotAlias(t *testing.T) {
	d := NewDeadSampler()
	c := cache.MustNew(cache.Config{Name: "s", Sets: 1, Ways: 1})
	c.Fill(7, policy.InsertMRU, 1)
	d.Sample(c)
	_, v, _ := c.Fill(8, policy.InsertMRU, 2) // evict 7 gen 1
	d.OnEvict(v, 2)
	// Refill 7 at a later time: a new generation, fresh snapshot.
	_, v, _ = c.Fill(7, policy.InsertMRU, 3)
	d.OnEvict(v, 3)
	d.Sample(c)
	c.Lookup(7, 4)
	_, v, _ = c.Fill(9, policy.InsertMRU, 5)
	d.OnEvict(v, 5)
	r := d.Result()
	// Gen-1 sample: dead (DOA). Gen-2 sample: live (hit after sample).
	if r.DeadAtSample != 1 || r.DOAAtSample != 1 || r.Samples != 2 {
		t.Errorf("generation aliasing: %+v", r)
	}
}

func TestDOACorrelation(t *testing.T) {
	c := NewDOACorrelation()
	c.OnPageEvict(10, true)  // frame 10: DOA page
	c.OnPageEvict(20, false) // frame 20: live page
	c.OnBlockEvict(10, 0)    // DOA block on DOA page
	c.OnBlockEvict(10, 0)    // another
	c.OnBlockEvict(20, 0)    // DOA block on live page
	c.OnBlockEvict(20, 5)    // live block: not counted
	c.OnBlockEvict(30, 0)    // DOA block on unknown page
	r := c.Result()
	if r.DOABlocks != 4 || r.OnDOAPage != 2 || r.OnUnknownPage != 1 {
		t.Fatalf("result: %+v", r)
	}
	if got := r.Percent(); got != 50 {
		t.Errorf("Percent = %v, want 50", got)
	}
	if r.TotalEvictions != 5 {
		t.Errorf("TotalEvictions = %d, want 5", r.TotalEvictions)
	}
}

func TestDOACorrelationResidentClassification(t *testing.T) {
	c := NewDOACorrelation()
	c.OnPageResident(40, true)
	c.OnBlockEvict(40, 0)
	if r := c.Result(); r.OnDOAPage != 1 {
		t.Errorf("resident DOA page not honored: %+v", r)
	}
	// A later eviction record overrides nothing retroactively but
	// OnPageResident must not override an existing eviction record.
	c.OnPageEvict(50, false)
	c.OnPageResident(50, true)
	c.OnBlockEvict(50, 0)
	if r := c.Result(); r.OnDOAPage != 1 {
		t.Errorf("OnPageResident overrode an eviction record: %+v", r)
	}
}

func TestLastStatusWins(t *testing.T) {
	c := NewDOACorrelation()
	c.OnPageEvict(60, true)
	c.OnPageEvict(60, false) // page came back and was reused
	c.OnBlockEvict(60, 0)
	if r := c.Result(); r.OnDOAPage != 0 {
		t.Errorf("stale DOA status used: %+v", r)
	}
}

func TestFracZeroDenominator(t *testing.T) {
	if frac(5, 0) != 0 {
		t.Error("frac with zero denominator must be 0")
	}
	var r CorrelationResult
	if r.Percent() != 0 {
		t.Error("Percent with no DOA blocks must be 0")
	}
}
