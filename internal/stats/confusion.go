package stats

import (
	"repro/internal/cache"
	"repro/internal/policy"
)

// Confusion tallies fill-time dead predictions against ground truth. It is
// the live-telemetry refinement of AccuracyResult: instead of two buckets
// (correct/wrong) it classifies every graded outcome into the three the
// paper's risk analysis needs:
//
//   - TrueDead:  predicted dead, and the entry really saw no further use.
//   - Premature: predicted dead, but the entry was re-touched afterwards —
//     the paper's key failure mode (a premature prediction costs a full
//     TLB miss plus a page walk, §V-A).
//   - Missed:    the entry died unpredicted (a coverage miss).
//
// Invariants: TrueDead+Premature == Predicted (every prediction is graded
// exactly once), TrueDead+Missed == ActualDead (every real death is
// classified exactly once), and Total() == TrueDead+Premature+Missed ==
// Predicted+Missed (every classified dead-prediction outcome).
type Confusion struct {
	TrueDead  uint64 `json:"true_dead"`
	Premature uint64 `json:"premature"`
	Missed    uint64 `json:"missed"`
}

// Predicted returns the number of graded dead predictions.
func (c Confusion) Predicted() uint64 { return c.TrueDead + c.Premature }

// ActualDead returns the number of entries that really died unused.
func (c Confusion) ActualDead() uint64 { return c.TrueDead + c.Missed }

// Total returns the number of classified outcomes: every dead prediction
// plus every unpredicted death.
func (c Confusion) Total() uint64 { return c.TrueDead + c.Premature + c.Missed }

// PrematureRate returns Premature/Predicted — the fraction of dead
// predictions that evicted a translation or block still in use. 0 when
// nothing was predicted (an idle predictor is never premature).
func (c Confusion) PrematureRate() float64 {
	if p := c.Predicted(); p > 0 {
		return float64(c.Premature) / float64(p)
	}
	return 0
}

// CoverageRate returns TrueDead/ActualDead — the fraction of real deaths
// the predictor caught.
func (c Confusion) CoverageRate() float64 {
	if d := c.ActualDead(); d > 0 {
		return float64(c.TrueDead) / float64(d)
	}
	return 0
}

// Delta returns c minus prev, per class (interval-series emission).
func (c Confusion) Delta(prev Confusion) Confusion {
	return Confusion{
		TrueDead:  c.TrueDead - prev.TrueDead,
		Premature: c.Premature - prev.Premature,
		Missed:    c.Missed - prev.Missed,
	}
}

// ConfusionTracker grades dead predictions with the same tag-only mirror
// technique as AccuracyTracker (a bypassed entry never lives in the real
// structure, so its outcome is only observable in an always-allocating
// mirror) but classifies each mirror eviction into the Confusion classes.
//
// The tracker is passive: it observes the same (key, predictedDOA, now)
// stream the structure sees and never feeds anything back, so enabling it
// cannot perturb simulation results.
type ConfusionTracker struct {
	mirror *cache.Cache
	counts Confusion
}

// NewConfusionTracker builds a tracker mirroring a structure with the
// given geometry and policy (nil means LRU).
func NewConfusionTracker(name string, sets, ways int, pol policy.Policy) (*ConfusionTracker, error) {
	m, err := cache.New(cache.Config{Name: name + "-confusion", Sets: sets, Ways: ways, Policy: pol})
	if err != nil {
		return nil, err
	}
	return &ConfusionTracker{mirror: m}, nil
}

// Access records one access to the tracked structure. predictedDOA is the
// predictor's fill-time claim when this access caused a real fill (false
// on real-structure hits, unpredicted fills, and non-predicting refills
// such as shadow-table promotions).
func (c *ConfusionTracker) Access(key uint64, predictedDOA bool, now uint64) {
	if _, ok := c.mirror.Lookup(key, now); ok {
		return
	}
	nb, victim, evicted := c.mirror.Fill(key, policy.InsertMRU, now)
	// The DP bit is reused in the mirror to mean "predicted dead".
	nb.DP = predictedDOA
	if evicted {
		c.grade(victim)
	}
}

func (c *ConfusionTracker) grade(b cache.Block) {
	dead := b.Hits == 0
	switch {
	case b.DP && dead:
		c.counts.TrueDead++
	case b.DP:
		c.counts.Premature++
	case dead:
		c.counts.Missed++
	}
}

// Counts returns the classification so far. Entries still resident in the
// mirror are ungraded; call Flush first for an end-of-run total.
func (c *ConfusionTracker) Counts() Confusion { return c.counts }

// Flush grades every entry still resident in the mirror as if evicted and
// invalidates it, so end-of-run totals include the tail. Live monitoring
// never flushes; only end-of-run reporting does.
func (c *ConfusionTracker) Flush() {
	var resident []cache.Block
	c.mirror.ForEach(func(_, _ int, b *cache.Block) {
		resident = append(resident, *b)
	})
	for _, b := range resident {
		c.grade(b)
		c.mirror.Invalidate(b.Key)
	}
}
