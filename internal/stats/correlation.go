package stats

import "repro/internal/arch"

// DOACorrelation measures Table III: the fraction of LLC DOA blocks whose
// frame belongs to a DOA page in the LLT.
//
// The LLT side reports the DOA status of every evicted page; the tracker
// remembers the most recent status per frame. When the LLC evicts a DOA
// block (zero hits), the block is attributed to a DOA or non-DOA page by
// that frame's last known status. Frames whose page never left the LLT are
// classified by their current residency status, supplied by the caller at
// Finish time if desired; until then they count as non-DOA (the
// conservative direction for the paper's claim).
type DOACorrelation struct {
	pageDOA map[arch.PFN]bool

	doaBlocks      uint64
	doaOnDOAPage   uint64
	doaOnUnknown   uint64
	totalEvictions uint64
}

// NewDOACorrelation creates an empty tracker.
func NewDOACorrelation() *DOACorrelation {
	return &DOACorrelation{pageDOA: make(map[arch.PFN]bool)}
}

// OnPageEvict records the DOA status of a page leaving the LLT.
func (c *DOACorrelation) OnPageEvict(frame arch.PFN, wasDOA bool) {
	c.pageDOA[frame] = wasDOA
}

// OnPageResident lets the caller classify frames still resident in the LLT
// at simulation end (Finish-time sweep).
func (c *DOACorrelation) OnPageResident(frame arch.PFN, isDOASoFar bool) {
	if _, known := c.pageDOA[frame]; !known {
		c.pageDOA[frame] = isDOASoFar
	}
}

// OnBlockEvict records an LLC eviction; only DOA blocks (zero hits) enter
// the Table III statistic.
func (c *DOACorrelation) OnBlockEvict(frame arch.PFN, blockHits uint64) {
	c.totalEvictions++
	if blockHits != 0 {
		return
	}
	c.doaBlocks++
	doa, known := c.pageDOA[frame]
	switch {
	case !known:
		c.doaOnUnknown++
	case doa:
		c.doaOnDOAPage++
	}
}

// CorrelationResult is the Table III statistic.
type CorrelationResult struct {
	// DOABlocks is the number of DOA block evictions observed.
	DOABlocks uint64
	// OnDOAPage is how many of them fell on a known DOA page.
	OnDOAPage uint64
	// OnUnknownPage is how many fell on frames with no LLT record.
	OnUnknownPage uint64
	// TotalEvictions is all LLC evictions (for DOA-rate context).
	TotalEvictions uint64
}

// Percent returns the Table III number: the percentage of LLC DOA blocks
// that map onto a DOA page.
func (r CorrelationResult) Percent() float64 {
	if r.DOABlocks == 0 {
		return 0
	}
	return 100 * float64(r.OnDOAPage) / float64(r.DOABlocks)
}

// Result returns the current tallies.
func (c *DOACorrelation) Result() CorrelationResult {
	return CorrelationResult{
		DOABlocks:      c.doaBlocks,
		OnDOAPage:      c.doaOnDOAPage,
		OnUnknownPage:  c.doaOnUnknown,
		TotalEvictions: c.totalEvictions,
	}
}
