package stats

import "repro/internal/cache"

// DeadSampler reproduces the §IV characterization of dead entries.
//
// Two measurements are taken, matching the paper's two views:
//
//  1. Eviction classification (Figures 2 and 4): each evicted entry is
//     classified as DOA (zero hits), mostly dead (≥1 hit but more dead
//     time than live time) or mostly live, using the fill / last-hit /
//     eviction timestamps carried in the entry.
//
//  2. Sampled residency (Figures 1 and 3): at periodic sample points every
//     resident entry is snapshotted; "dead at sample time" — the entry
//     receives no hit between the sample and its eviction — is resolved
//     retrospectively when the entry is evicted, since deadness needs
//     future knowledge.
//
// The structure's owner must call OnEvict for every eviction and Sample at
// its chosen cadence; entries still resident at the end can be flushed
// with Finish (they resolve with their final hit counts).
type DeadSampler struct {
	// eviction-time classification
	evictions  uint64
	doa        uint64
	mostlyDead uint64
	mostlyLive uint64

	// sampled residency: pending snapshots keyed by entry generation
	pending map[genKey][]uint64 // hits observed at each sample point
	samples uint64
	deadAt  uint64
	doaAt   uint64
}

// genKey identifies one residency generation of one entry: the key plus
// the fill time (unique per generation because time advances).
type genKey struct {
	key      uint64
	fillTime uint64
}

// NewDeadSampler creates an empty sampler.
func NewDeadSampler() *DeadSampler {
	return &DeadSampler{pending: make(map[genKey][]uint64)}
}

// Sample snapshots every resident entry of the structure.
func (d *DeadSampler) Sample(c *cache.Cache) {
	c.ForEach(func(_, _ int, b *cache.Block) {
		k := genKey{key: b.Key, fillTime: b.FillTime}
		d.pending[k] = append(d.pending[k], b.Hits)
		d.samples++
	})
}

// OnEvict classifies the evicted entry and resolves its pending samples.
// now is the eviction time in the same units as the entry's timestamps.
func (d *DeadSampler) OnEvict(b cache.Block, now uint64) {
	d.evictions++
	switch {
	case b.Hits == 0:
		d.doa++
	case now-b.LastHitTime > b.LastHitTime-b.FillTime:
		d.mostlyDead++
	default:
		d.mostlyLive++
	}
	d.resolve(b)
}

// Finish resolves samples for entries still resident at simulation end.
// Entries whose generations never evict are graded with their final state:
// an entry with no hits after its last sample counts as dead at that
// sample. It does not add eviction classifications.
func (d *DeadSampler) Finish(c *cache.Cache) {
	c.ForEach(func(_, _ int, b *cache.Block) {
		d.resolve(*b)
	})
}

func (d *DeadSampler) resolve(b cache.Block) {
	k := genKey{key: b.Key, fillTime: b.FillTime}
	recs, ok := d.pending[k]
	if !ok {
		return
	}
	delete(d.pending, k)
	for _, hitsAtSample := range recs {
		if b.Hits == hitsAtSample {
			d.deadAt++
			if b.Hits == 0 {
				d.doaAt++
			}
		}
	}
}

// DeadResult is the sampler's aggregate view.
type DeadResult struct {
	// Eviction-time classification (Figures 2/4).
	Evictions  uint64
	DOA        uint64
	MostlyDead uint64
	MostlyLive uint64

	// Sampled residency (Figures 1/3).
	Samples      uint64
	DeadAtSample uint64
	DOAAtSample  uint64
}

// DOAFrac is the fraction of evictions that were dead on arrival.
func (r DeadResult) DOAFrac() float64 { return frac(r.DOA, r.Evictions) }

// MostlyDeadFrac is the fraction of evictions with more dead than live time
// but at least one hit.
func (r DeadResult) MostlyDeadFrac() float64 { return frac(r.MostlyDead, r.Evictions) }

// DeadFrac is the fraction of evictions that were dead (DOA or mostly
// dead) — the total stacked-bar height of Figures 2/4.
func (r DeadResult) DeadFrac() float64 { return frac(r.DOA+r.MostlyDead, r.Evictions) }

// SampledDeadFrac is the fraction of sampled resident entries that were
// dead at sample time (Figures 1/3 total height).
func (r DeadResult) SampledDeadFrac() float64 { return frac(r.DeadAtSample, r.Samples) }

// SampledDOAFrac is the fraction of sampled resident entries belonging to
// DOA generations (the lower stack of Figures 1/3).
func (r DeadResult) SampledDOAFrac() float64 { return frac(r.DOAAtSample, r.Samples) }

func frac(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// Result returns the current tallies.
func (d *DeadSampler) Result() DeadResult {
	return DeadResult{
		Evictions:    d.evictions,
		DOA:          d.doa,
		MostlyDead:   d.mostlyDead,
		MostlyLive:   d.mostlyLive,
		Samples:      d.samples,
		DeadAtSample: d.deadAt,
		DOAAtSample:  d.doaAt,
	}
}
