package stats

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/policy"
)

func TestAccuracyTrackerWithSRRIPMirror(t *testing.T) {
	a, err := NewAccuracyTracker("llt", 2, 2, policy.SRRIP{})
	if err != nil {
		t.Fatal(err)
	}
	// Exercise the SRRIP-backed mirror: fill past capacity and make sure
	// grading still happens.
	for i := uint64(0); i < 64; i++ {
		a.Access(i, i%2 == 0, i)
	}
	r := a.Result()
	if r.TrueDOA == 0 {
		t.Error("no true DOAs graded under an SRRIP mirror")
	}
	if r.Correct+r.Wrong == 0 {
		t.Error("no predictions graded under an SRRIP mirror")
	}
}

func TestAccuracyTrackerRepeatedKeyIsHit(t *testing.T) {
	a, err := NewAccuracyTracker("llt", 1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Access(1, true, 0)
	// Re-access: hits the mirror, so the entry is no longer DOA.
	a.Access(1, false, 1)
	a.Access(2, false, 2)
	a.Access(3, false, 3) // evicts 1: predicted but hit → wrong
	r := a.Result()
	if r.Wrong != 1 || r.Correct != 0 {
		t.Errorf("grading = %+v, want one wrong prediction", r)
	}
}

func TestAccuracyTrackerBadGeometry(t *testing.T) {
	if _, err := NewAccuracyTracker("x", 0, 2, nil); err == nil {
		t.Error("zero sets accepted")
	}
}

func TestDeadSamplerSampleOfEmptyCache(t *testing.T) {
	d := NewDeadSampler()
	// Sampling and finishing empty structures must be harmless.
	empty := cacheMust(1, 1)
	d.Sample(empty)
	d.Finish(empty)
	if r := d.Result(); r.Samples != 0 {
		t.Errorf("samples = %d, want 0", r.Samples)
	}
}

// cacheMust builds a small structure for sampler edge cases.
func cacheMust(sets, ways int) *cache.Cache {
	return cache.MustNew(cache.Config{Name: "t", Sets: sets, Ways: ways})
}
