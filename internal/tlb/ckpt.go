package tlb

import "repro/internal/ckpt"

// EncodeState serializes the TLB's mutable state (delegating to the backing
// set-associative structure) for warm-state checkpointing.
func (t *TLB) EncodeState(w *ckpt.Writer) { t.c.EncodeState(w) }

// DecodeState restores state written by EncodeState into a TLB built with
// the identical configuration.
func (t *TLB) DecodeState(r *ckpt.Reader) error { return t.c.DecodeState(r) }
