package tlb

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/policy"
)

func llt(t *testing.T) *TLB {
	t.Helper()
	tb, err := New(Config{Name: "LLT", Entries: 1024, Ways: 8, Latency: 8})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Entries: 0, Ways: 4},
		{Entries: 10, Ways: 4}, // not a multiple
		{Entries: 4, Ways: 0},
		{Entries: 2, Ways: 4}, // fewer entries than ways
	}
	for _, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew(Config{})
}

func TestLookupReturnsPFN(t *testing.T) {
	tb := llt(t)
	if _, ok := tb.Lookup(5, 0); ok {
		t.Fatal("hit in empty TLB")
	}
	tb.Fill(5, 777, 0x2a, policy.InsertMRU, 1)
	pfn, ok := tb.Lookup(5, 2)
	if !ok || pfn != 777 {
		t.Fatalf("Lookup = %d,%v; want 777,true", pfn, ok)
	}
}

func TestAccessedBitSemantics(t *testing.T) {
	tb := llt(t)
	tb.Fill(9, 100, 3, policy.InsertMRU, 0)
	b, _ := tb.Probe(9)
	if b.Accessed {
		t.Error("Accessed set at fill; must only be set on a hit (Fig. 6b)")
	}
	if b.PCHash != 3 {
		t.Errorf("PCHash = %d, want 3", b.PCHash)
	}
	tb.Lookup(9, 1)
	if b, _ = tb.Probe(9); !b.Accessed {
		t.Error("Accessed not set after hit (Fig. 6a)")
	}
}

func TestEvictionReturnsVictimMetadata(t *testing.T) {
	tb := MustNew(Config{Name: "tiny", Entries: 2, Ways: 2, Latency: 1})
	tb.Fill(0, 10, 1, policy.InsertMRU, 0)
	tb.Fill(1, 11, 2, policy.InsertMRU, 0)
	tb.Lookup(0, 1) // 1 becomes LRU
	_, victim, evicted := tb.Fill(2, 12, 3, policy.InsertMRU, 2)
	if !evicted || victim.Key != 1 || victim.PCHash != 2 {
		t.Fatalf("victim = %+v (evicted=%v), want key 1, pcHash 2", victim, evicted)
	}
	if victim.Accessed {
		t.Error("victim was never hit; Accessed must be clear (a DOA page)")
	}
}

func TestVictimPreviewMatchesFill(t *testing.T) {
	tb := MustNew(Config{Name: "tiny", Entries: 4, Ways: 4, Latency: 1})
	for v := arch.VPN(0); v < 4; v++ {
		tb.Fill(v, arch.PFN(v), 0, policy.InsertMRU, uint64(v))
	}
	preview, would := tb.Victim(99)
	if !would {
		t.Fatal("full set should evict")
	}
	_, victim, _ := tb.Fill(99, 99, 0, policy.InsertMRU, 10)
	if victim.Key != preview.Key {
		t.Errorf("preview %d != actual victim %d", preview.Key, victim.Key)
	}
}

func TestInvalidate(t *testing.T) {
	tb := llt(t)
	tb.Fill(33, 44, 0, policy.InsertMRU, 0)
	old, ok := tb.Invalidate(33)
	if !ok || old.Data != 44 {
		t.Fatalf("Invalidate = %+v,%v", old, ok)
	}
	if _, ok := tb.Lookup(33, 1); ok {
		t.Error("hit after invalidate")
	}
}

func TestLatencyAndEntries(t *testing.T) {
	tb := llt(t)
	if tb.Latency() != 8 {
		t.Errorf("Latency = %d, want 8", tb.Latency())
	}
	if tb.Entries() != 1024 {
		t.Errorf("Entries = %d, want 1024", tb.Entries())
	}
}

// Property: a filled translation is retrievable with the same PFN until
// evicted, and misses never fabricate translations.
func TestFillLookupConsistencyProperty(t *testing.T) {
	f := func(vpns []uint16) bool {
		tb := MustNew(Config{Name: "p", Entries: 64, Ways: 4, Latency: 1})
		truth := map[arch.VPN]arch.PFN{}
		for i, raw := range vpns {
			vpn := arch.VPN(raw % 256)
			if pfn, ok := tb.Lookup(vpn, uint64(i)); ok {
				if truth[vpn] != pfn {
					return false
				}
				continue
			}
			pfn := arch.PFN(raw) + 1000
			truth[vpn] = pfn
			tb.Fill(vpn, pfn, 0, policy.InsertMRU, uint64(i))
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: TLB stats balance (hits+misses == lookups).
func TestStatsBalanceProperty(t *testing.T) {
	f := func(vpns []uint8) bool {
		tb := MustNew(Config{Name: "p", Entries: 8, Ways: 2, Latency: 1})
		for i, raw := range vpns {
			vpn := arch.VPN(raw % 32)
			if _, ok := tb.Lookup(vpn, uint64(i)); !ok {
				tb.Fill(vpn, arch.PFN(vpn), 0, policy.InsertMRU, uint64(i))
			}
		}
		st := tb.Stats()
		return st.Hits+st.Misses == st.Lookups
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// BenchmarkLLTLookup measures a warm hit in an LLT-geometry TLB (1024
// entries, 8-way): the tag scan, Accessed-bit update and LRU touch.
func BenchmarkLLTLookup(b *testing.B) {
	tb, err := New(Config{Name: "LLT", Entries: 1024, Ways: 8, Latency: 8})
	if err != nil {
		b.Fatal(err)
	}
	const n = 1024
	for i := 0; i < n; i++ {
		tb.Fill(arch.VPN(i), arch.PFN(i+7), 0, policy.InsertMRU, uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tb.Lookup(arch.VPN(i&(n-1)), uint64(i)); !ok {
			b.Fatal("warm lookup missed")
		}
	}
}
