// Package tlb implements the translation-lookaside buffers of the simulated
// machine: the split L1 I/D TLBs and the unified L2 TLB — the paper's
// last-level TLB (LLT). A TLB is a thin, typed wrapper over the generic
// set-associative structure in internal/cache, mapping virtual page numbers
// to physical frame numbers and carrying the per-entry metadata dpPred
// needs (the Accessed bit and a small hash of the filling PC, §V-A).
package tlb

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/policy"
)

// Config sizes a TLB.
type Config struct {
	// Name labels the TLB in reports ("L1D-TLB", "LLT", ...).
	Name string
	// Entries is the total entry count; must be a positive multiple of
	// Ways.
	Entries int
	// Ways is the associativity.
	Ways int
	// Latency is the lookup latency in cycles.
	Latency arch.Lat
	// Policy is the replacement policy; nil means LRU.
	Policy policy.Policy
}

// TLB caches virtual-to-physical page translations.
type TLB struct {
	c   *cache.Cache
	lat arch.Lat
}

// New builds a TLB from the configuration.
func New(cfg Config) (*TLB, error) {
	if cfg.Ways < 1 || cfg.Entries < cfg.Ways || cfg.Entries%cfg.Ways != 0 {
		return nil, fmt.Errorf("tlb %q: entries %d must be a positive multiple of ways %d",
			cfg.Name, cfg.Entries, cfg.Ways)
	}
	c, err := cache.New(cache.Config{
		Name:   cfg.Name,
		Sets:   cfg.Entries / cfg.Ways,
		Ways:   cfg.Ways,
		Policy: cfg.Policy,
	})
	if err != nil {
		return nil, err
	}
	return &TLB{c: c, lat: cfg.Latency}, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *TLB {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Latency returns the lookup latency.
func (t *TLB) Latency() arch.Lat { return t.lat }

// Entries returns the total capacity.
func (t *TLB) Entries() int { return t.c.Capacity() }

// Lookup translates vpn, returning the frame on a hit. The hit sets the
// entry's Accessed bit, exactly as Fig. 6a requires.
func (t *TLB) Lookup(vpn arch.VPN, now uint64) (arch.PFN, bool) {
	b, ok := t.c.Lookup(uint64(vpn), now)
	if !ok {
		return 0, false
	}
	return arch.PFN(b.Data), true
}

// Probe checks residency without updating replacement state or metadata.
func (t *TLB) Probe(vpn arch.VPN) (*cache.Block, bool) {
	return t.c.Probe(uint64(vpn))
}

// Victim previews which entry a fill for vpn would evict.
func (t *TLB) Victim(vpn arch.VPN) (cache.Block, bool) {
	return t.c.Victim(uint64(vpn))
}

// Fill installs a translation. pcHash is the hash of the PC that triggered
// the miss (recorded in the entry for dpPred's eviction-time update). The
// returned victim is the evicted entry, if any, and nb is the newly
// installed entry for further metadata updates (SHiP signatures etc.).
func (t *TLB) Fill(vpn arch.VPN, pfn arch.PFN, pcHash uint16, hint policy.InsertHint, now uint64) (nb *cache.Block, victim cache.Block, evicted bool) {
	nb, victim, evicted = t.c.Fill(uint64(vpn), hint, now)
	nb.Data = uint64(pfn)
	nb.PCHash = pcHash
	return nb, victim, evicted
}

// Invalidate drops a translation if present (used by tests and by shadow-
// table promotion paths).
func (t *TLB) Invalidate(vpn arch.VPN) (cache.Block, bool) {
	return t.c.Invalidate(uint64(vpn))
}

// FlushASID invalidates every entry whose key carries the given ASID tag
// (the key bits above arch.VPNBits; see sim's multi-tenant key layout) and
// returns how many entries were dropped. Entries of other address spaces
// are untouched — this is the precise shootdown an ASID-tagged TLB offers.
// Flushes are hardware invalidations, not replacement decisions: no
// predictor or sampler observes them.
func (t *TLB) FlushASID(asid uint64) int {
	return t.flushMatch(func(key uint64) bool { return key>>arch.VPNBits == asid })
}

// FlushAll invalidates every entry (the ASID-oblivious full-flush
// shootdown) and returns how many entries were dropped.
func (t *TLB) FlushAll() int {
	return t.flushMatch(func(uint64) bool { return true })
}

// flushMatch invalidates every entry whose key satisfies match, in
// deterministic set-major order. Keys are collected before any
// invalidation so the walk never mutates the structure it iterates.
func (t *TLB) flushMatch(match func(key uint64) bool) int {
	keys := make([]uint64, 0, 64)
	t.c.ForEach(func(_, _ int, b *cache.Block) {
		if match(b.Key) {
			keys = append(keys, b.Key)
		}
	})
	for _, k := range keys {
		t.c.Invalidate(k)
	}
	return len(keys)
}

// RecordBypass counts a fill suppressed by a predictor.
func (t *TLB) RecordBypass() { t.c.RecordBypass() }

// Inner exposes the backing structure for predictors, samplers and stats.
func (t *TLB) Inner() *cache.Cache { return t.c }

// Clone deep-copies the TLB (contents, replacement state, statistics) for
// warm-state forking; the copy shares no mutable state with the original.
func (t *TLB) Clone() (*TLB, error) {
	c, err := t.c.Clone()
	if err != nil {
		return nil, err
	}
	return &TLB{c: c, lat: t.lat}, nil
}

// Stats returns the activity counters.
func (t *TLB) Stats() cache.Stats { return t.c.Stats() }

// ResetStats zeroes activity counters without dropping contents.
func (t *TLB) ResetStats() { t.c.ResetStats() }
