package policy

// DIP implements the Dynamic Insertion Policy of Qureshi et al. (ISCA
// 2007), which the paper cites among prior LLC-management work (§VII). DIP
// duels LRU insertion against bimodal insertion (BIP: mostly LRU-position
// inserts with occasional MRU promotion), picking whichever loses fewer
// misses on dedicated leader sets. It serves here as an additional
// replacement baseline for ablation studies: like dpPred it resists
// thrashing streams, but it is blind to *which* entries are dead, so it
// cannot protect a reuse set from a same-set streaming PC the way a
// dead-entry predictor can.
//
// Dueling is implemented with a shared PSEL counter owned by the Policy
// value; the first leaderPeriod sets lead for LRU, the next for BIP, and
// follower sets obey PSEL's sign.
type DIP struct {
	psel *pselState
}

// NewDIP creates a DIP policy. The returned value must be used for a
// single structure (the PSEL counter is shared across its sets).
func NewDIP() *DIP {
	return &DIP{psel: &pselState{}}
}

const (
	// pselMax bounds the 10-bit policy-selection counter.
	pselMax = 1023
	// leaderPeriod spaces the leader sets: within every period the
	// first set leads LRU and the second leads BIP.
	leaderPeriod = 32
	// bipEpsilonInv is 1/ε for BIP: one in this many BIP inserts goes
	// to MRU, the rest to LRU position.
	bipEpsilonInv = 32
)

type pselState struct {
	counter int
	nextSet int
	bipTick uint64
}

// Name implements Policy.
func (*DIP) Name() string { return "DIP" }

// NewSet implements Policy. Sets are created in index order by the cache
// constructor; every leaderPeriod-th set leads LRU, the following one BIP.
func (d *DIP) NewSet(ways int) Set {
	idx := d.psel.nextSet
	d.psel.nextSet++
	role := followerSet
	switch idx % leaderPeriod {
	case 0:
		role = lruLeader
	case 1:
		role = bipLeader
	}
	return &dipSet{
		lru:  LRU{}.NewSet(ways).(*lruSet),
		role: role,
		psel: d.psel,
	}
}

type dipRole int

const (
	followerSet dipRole = iota
	lruLeader
	bipLeader
)

type dipSet struct {
	lru  *lruSet
	role dipRole
	psel *pselState
}

func (s *dipSet) Touch(way int) { s.lru.Touch(way) }

func (s *dipSet) Insert(way int, hint InsertHint) {
	// Every insert is a miss in this set; the leader sets train the
	// shared PSEL counter (a miss in the LRU leader votes for BIP and
	// vice versa).
	switch s.role {
	case lruLeader:
		if s.psel.counter < pselMax {
			s.psel.counter++
		}
	case bipLeader:
		if s.psel.counter > -pselMax {
			s.psel.counter--
		}
	}
	if hint == InsertDistant {
		s.lru.Insert(way, InsertDistant)
		return
	}
	if s.useBIP() {
		// BIP: insert at LRU position except one in ε inserts.
		s.psel.bipTick++
		if s.psel.bipTick%bipEpsilonInv != 0 {
			s.lru.Insert(way, InsertDistant)
			return
		}
	}
	s.lru.Insert(way, InsertMRU)
}

// useBIP decides the insertion flavour for this set.
func (s *dipSet) useBIP() bool {
	switch s.role {
	case lruLeader:
		return false
	case bipLeader:
		return true
	default:
		return s.psel.counter > 0 // positive PSEL = LRU is missing more
	}
}

// Victim implements Set.
func (s *dipSet) Victim() int { return s.lru.Victim() }

func (s *dipSet) Invalidate(way int) { s.lru.Invalidate(way) }
