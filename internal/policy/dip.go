package policy

// DIP implements the Dynamic Insertion Policy of Qureshi et al. (ISCA
// 2007), which the paper cites among prior LLC-management work (§VII). DIP
// duels LRU insertion against bimodal insertion (BIP: mostly LRU-position
// inserts with occasional MRU promotion), picking whichever loses fewer
// misses on dedicated leader sets. It serves here as an additional
// replacement baseline for ablation studies: like dpPred it resists
// thrashing streams, but it is blind to *which* entries are dead, so it
// cannot protect a reuse set from a same-set streaming PC the way a
// dead-entry predictor can.
//
// The leader/follower partition and the shared PSEL counter live in the
// reusable Duel selector (duel.go); DIP maps policy A to LRU insertion and
// policy B to BIP.
type DIP struct {
	st *dipState
}

// NewDIP creates a DIP policy. The returned value must be used for a
// single structure (the PSEL counter is shared across its sets).
func NewDIP() *DIP {
	return &DIP{st: &dipState{duel: *NewDuel(pselMax, leaderPeriod)}}
}

const (
	// pselMax bounds the 10-bit policy-selection counter.
	pselMax = 1023
	// leaderPeriod spaces the leader sets: within every period the
	// first set leads LRU and the second leads BIP.
	leaderPeriod = 32
	// bipEpsilonInv is 1/ε for BIP: one in this many BIP inserts goes
	// to MRU, the rest to LRU position.
	bipEpsilonInv = 32
)

// dipState is the per-structure state every set shares: the dueling
// selector plus BIP's epsilon tick.
type dipState struct {
	duel    Duel
	nextSet int
	bipTick uint64
}

// Name implements Policy.
func (*DIP) Name() string { return "DIP" }

// NewSet implements Policy. Sets are created in index order by the cache
// constructor, so the duel's role mapping lands on every leaderPeriod-th
// set leading LRU and the following one leading BIP.
func (d *DIP) NewSet(ways int) Set {
	idx := d.st.nextSet
	d.st.nextSet++
	return &dipSet{
		lru:  LRU{}.NewSet(ways).(*lruSet),
		role: d.st.duel.RoleOf(idx),
		st:   d.st,
	}
}

type dipSet struct {
	lru  *lruSet
	role DuelRole
	st   *dipState
}

func (s *dipSet) Touch(way int) { s.lru.Touch(way) }

func (s *dipSet) Insert(way int, hint InsertHint) {
	// Every insert is a miss in this set; the leader sets train the
	// shared PSEL counter (a miss in the LRU leader votes for BIP and
	// vice versa).
	s.st.duel.Miss(s.role)
	if hint == InsertDistant {
		s.lru.Insert(way, InsertDistant)
		return
	}
	if s.useBIP() {
		// BIP: insert at LRU position except one in ε inserts.
		s.st.bipTick++
		if s.st.bipTick%bipEpsilonInv != 0 {
			s.lru.Insert(way, InsertDistant)
			return
		}
	}
	s.lru.Insert(way, InsertMRU)
}

// useBIP decides the insertion flavour for this set.
func (s *dipSet) useBIP() bool {
	switch s.role {
	case LeaderA:
		return false
	case LeaderB:
		return true
	default:
		return s.st.duel.PreferB() // positive PSEL = LRU is missing more
	}
}

// Victim implements Set.
func (s *dipSet) Victim() int { return s.lru.Victim() }

func (s *dipSet) Invalidate(way int) { s.lru.Invalidate(way) }
