package policy

// SetCloner is implemented by per-set replacement state that can be deep-
// copied for warm-state forking. The shared map deduplicates state that
// multiple sets of one structure deliberately share (DIP's PSEL counter):
// the first set to clone a shared value registers the copy under the
// original pointer, and later sets reuse it, preserving the sharing
// topology in the clone. Callers pass one map per cloned structure.
//
// All built-in policies implement it; a custom policy that does not is
// rejected by cache.Clone with an error rather than silently aliased.
type SetCloner interface {
	CloneSet(shared map[any]any) Set
}

// CloneSet implements SetCloner.
func (s *lruSet) CloneSet(map[any]any) Set {
	c := &lruSet{stamp: append([]uint64(nil), s.stamp...), clock: s.clock}
	return c
}

// CloneSet implements SetCloner.
func (s *srripSet) CloneSet(map[any]any) Set {
	return &srripSet{rrpv: append([]uint8(nil), s.rrpv...)}
}

// CloneSet implements SetCloner.
func (s *fifoSet) CloneSet(map[any]any) Set {
	return &fifoSet{order: append([]uint64(nil), s.order...), clock: s.clock}
}

// CloneSet implements SetCloner.
func (s *randomSet) CloneSet(map[any]any) Set {
	c := *s
	return &c
}

// CloneSet implements SetCloner. All sets of one DIP-managed structure
// share a single duel/PSEL state; the shared map keeps that topology:
// exactly one dipState copy is made per structure clone.
func (s *dipSet) CloneSet(shared map[any]any) Set {
	st, ok := shared[s.st].(*dipState)
	if !ok {
		c := *s.st
		st = &c
		shared[s.st] = st
	}
	return &dipSet{
		lru:  s.lru.CloneSet(shared).(*lruSet),
		role: s.role,
		st:   st,
	}
}

var (
	_ SetCloner = (*lruSet)(nil)
	_ SetCloner = (*srripSet)(nil)
	_ SetCloner = (*fifoSet)(nil)
	_ SetCloner = (*randomSet)(nil)
	_ SetCloner = (*dipSet)(nil)
)
