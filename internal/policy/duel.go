package policy

// Duel is the set-dueling selector of Qureshi et al. (ISCA 2007),
// extracted from DIP so other duels can reuse it: the predictor
// tournament in internal/pred duels two prediction policies over the same
// leader/follower set partition DIP uses for insertion policies.
//
// Two policies, A and B, each own a sparse slice of dedicated leader sets;
// every remaining set is a follower. Misses in a leader set vote against
// its own policy on a shared saturating counter (PSEL): a miss in an
// A-leader pushes the counter toward B and vice versa. Followers obey the
// counter's sign.
type Duel struct {
	counter int
	max     int
	period  int
}

// DuelRole classifies a set within a duel.
type DuelRole int8

const (
	// Follower sets obey the PSEL counter's sign.
	Follower DuelRole = iota
	// LeaderA sets always use policy A and vote against it on a miss.
	LeaderA
	// LeaderB sets always use policy B and vote against it on a miss.
	LeaderB
)

// NewDuel builds a selector whose PSEL counter saturates at ±max and whose
// leader sets repeat every period sets (set 0 of each period leads A, set
// 1 leads B). Non-positive arguments fall back to DIP's 10-bit counter and
// 32-set period.
func NewDuel(max, period int) *Duel {
	if max <= 0 {
		max = pselMax
	}
	if period < 2 {
		period = leaderPeriod
	}
	return &Duel{max: max, period: period}
}

// RoleOf maps a set index to its dueling role.
func (d *Duel) RoleOf(set int) DuelRole {
	switch set % d.period {
	case 0:
		return LeaderA
	case 1:
		return LeaderB
	default:
		return Follower
	}
}

// Miss records a miss in a set with the given role: leader misses vote
// against their own policy, follower misses are ignored.
func (d *Duel) Miss(r DuelRole) {
	switch r {
	case LeaderA:
		if d.counter < d.max {
			d.counter++
		}
	case LeaderB:
		if d.counter > -d.max {
			d.counter--
		}
	}
}

// PreferB reports the follower-set verdict: a positive counter means A's
// leaders are missing more, so followers use B.
func (d *Duel) PreferB() bool { return d.counter > 0 }

// Counter exposes the PSEL value for telemetry.
func (d *Duel) Counter() int { return d.counter }

// StorageBits charges the PSEL counter (the leader-set mapping is derived
// from set indices and costs no state).
func (d *Duel) StorageBits() uint64 {
	bits := uint64(1) // sign
	for m := d.max; m > 0; m >>= 1 {
		bits++
	}
	return bits
}

// Clone deep-copies the selector for warm-state forking.
func (d *Duel) Clone() *Duel {
	c := *d
	return &c
}
