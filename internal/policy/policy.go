// Package policy implements the replacement policies used by the simulated
// TLBs and caches: LRU (the paper's baseline), SRRIP (used in the Fig. 11f
// sensitivity study), FIFO (used by cbPred's PFN filter queue) and a
// deterministic pseudo-random policy for comparison experiments.
//
// A Policy is a factory producing independent per-set state. The cache owns
// validity: it always prefers an invalid way, so a Set only ranks valid
// ways. Insertion takes a hint so that predictors such as SHiP can demote
// blocks predicted to have a distant re-reference interval (inserted at the
// LRU position under LRU, or with RRPV=3 under SRRIP, exactly as §VI-A
// adapts SHiP to an LRU baseline).
package policy

import "fmt"

// InsertHint tells the policy where a newly filled block should start.
type InsertHint int

const (
	// InsertMRU is the default insertion for a demand fill.
	InsertMRU InsertHint = iota
	// InsertDistant inserts the block as the next replacement candidate
	// (LRU position / RRPV=3), used for predicted-dead insertions.
	InsertDistant
)

// Set tracks replacement state for the ways of a single set.
type Set interface {
	// Touch records a hit on the given way.
	Touch(way int)
	// Insert records a fill into the given way with the given hint.
	Insert(way int, hint InsertHint)
	// Victim returns the way the policy would replace next. It must
	// return a value in [0, ways).
	Victim() int
	// Invalidate forgets any state for the way (back-invalidation).
	Invalidate(way int)
}

// Policy creates per-set replacement state.
type Policy interface {
	// Name identifies the policy in reports ("LRU", "SRRIP", ...).
	Name() string
	// NewSet returns replacement state for a set with the given ways.
	NewSet(ways int) Set
}

// New returns the policy with the given name. Supported names are
// "LRU", "SRRIP", "FIFO" and "Random".
func New(name string) (Policy, error) {
	switch name {
	case "LRU", "lru":
		return LRU{}, nil
	case "SRRIP", "srrip":
		return SRRIP{}, nil
	case "FIFO", "fifo":
		return FIFO{}, nil
	case "Random", "random":
		return Random{Seed: 1}, nil
	case "DIP", "dip":
		// A fresh instance per call: DIP carries shared dueling state
		// and must not be reused across structures.
		return NewDIP(), nil
	}
	return nil, fmt.Errorf("policy: unknown replacement policy %q", name)
}

// LRU is the least-recently-used policy (the paper's baseline everywhere).
type LRU struct{}

// Name implements Policy.
func (LRU) Name() string { return "LRU" }

// NewSet implements Policy.
func (LRU) NewSet(ways int) Set {
	s := &lruSet{stamp: make([]uint64, ways)}
	// Start with distinct stamps so Victim is well defined before fills.
	for i := range s.stamp {
		s.stamp[i] = uint64(i)
	}
	s.clock = uint64(ways)
	return s
}

type lruSet struct {
	stamp []uint64 // most recent use time per way; smallest is LRU
	clock uint64
}

func (s *lruSet) Touch(way int) {
	s.clock++
	s.stamp[way] = s.clock
}

func (s *lruSet) Insert(way int, hint InsertHint) {
	if hint == InsertDistant {
		// Become the immediate next victim: older than everything.
		min := s.stamp[0]
		for _, st := range s.stamp[1:] {
			if st < min {
				min = st
			}
		}
		if min == 0 {
			// Shift everything up to make room below.
			for i := range s.stamp {
				s.stamp[i]++
			}
			s.clock++
			min = 1
		}
		s.stamp[way] = min - 1
		return
	}
	s.Touch(way)
}

func (s *lruSet) Victim() int {
	victim := 0
	for i, st := range s.stamp[1:] {
		if st < s.stamp[victim] {
			victim = i + 1
		}
	}
	return victim
}

func (s *lruSet) Invalidate(way int) {
	// An invalidated way becomes the best victim.
	s.stamp[way] = 0
}

// SRRIP implements static re-reference interval prediction with 2-bit
// RRPVs (Jaleel et al., ISCA 2010): fills insert with a long re-reference
// prediction (RRPV=2), hits promote to RRPV=0, and the victim is the first
// way with RRPV=3 (aging all ways until one exists).
type SRRIP struct{}

// Name implements Policy.
func (SRRIP) Name() string { return "SRRIP" }

// NewSet implements Policy.
func (SRRIP) NewSet(ways int) Set {
	s := &srripSet{rrpv: make([]uint8, ways)}
	for i := range s.rrpv {
		s.rrpv[i] = rrpvMax // empty ways are perfect victims
	}
	return s
}

const rrpvMax = 3

type srripSet struct {
	rrpv []uint8
}

func (s *srripSet) Touch(way int) { s.rrpv[way] = 0 }

func (s *srripSet) Insert(way int, hint InsertHint) {
	if hint == InsertDistant {
		s.rrpv[way] = rrpvMax
		return
	}
	s.rrpv[way] = rrpvMax - 1
}

func (s *srripSet) Victim() int {
	for {
		for i, v := range s.rrpv {
			if v == rrpvMax {
				return i
			}
		}
		for i := range s.rrpv {
			s.rrpv[i]++
		}
	}
}

func (s *srripSet) Invalidate(way int) { s.rrpv[way] = rrpvMax }

// FIFO replaces ways in insertion order, ignoring hits. cbPred's PFQ uses
// FIFO replacement (§V-B).
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "FIFO" }

// NewSet implements Policy.
func (FIFO) NewSet(ways int) Set {
	s := &fifoSet{order: make([]uint64, ways)}
	for i := range s.order {
		s.order[i] = uint64(i)
	}
	s.clock = uint64(ways)
	return s
}

type fifoSet struct {
	order []uint64
	clock uint64
}

func (s *fifoSet) Touch(int) {}

func (s *fifoSet) Insert(way int, _ InsertHint) {
	s.clock++
	s.order[way] = s.clock
}

func (s *fifoSet) Victim() int {
	victim := 0
	for i := 1; i < len(s.order); i++ {
		if s.order[i] < s.order[victim] {
			victim = i
		}
	}
	return victim
}

func (s *fifoSet) Invalidate(way int) { s.order[way] = 0 }

// Random picks victims with a per-set xorshift64 generator, seeded
// deterministically so that simulations are reproducible.
type Random struct {
	// Seed perturbs every per-set generator; zero is replaced by one.
	Seed uint64
}

// Name implements Policy.
func (Random) Name() string { return "Random" }

// NewSet implements Policy.
func (r Random) NewSet(ways int) Set {
	seed := r.Seed
	if seed == 0 {
		seed = 1
	}
	return &randomSet{ways: ways, state: seed}
}

type randomSet struct {
	ways  int
	state uint64
}

func (s *randomSet) Touch(int)              {}
func (s *randomSet) Insert(int, InsertHint) {}
func (s *randomSet) Invalidate(int)         {}

func (s *randomSet) Victim() int {
	s.state ^= s.state << 13
	s.state ^= s.state >> 7
	s.state ^= s.state << 17
	return int(s.state % uint64(s.ways))
}
