package policy

import (
	"testing"
	"testing/quick"
)

func TestNewByName(t *testing.T) {
	for _, name := range []string{"LRU", "SRRIP", "FIFO", "Random", "lru", "srrip"} {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.NewSet(4) == nil {
			t.Fatalf("New(%q).NewSet returned nil", name)
		}
	}
	if _, err := New("PLRU"); err == nil {
		t.Error("New(PLRU) should fail")
	}
}

func TestLRUVictimIsLeastRecent(t *testing.T) {
	s := LRU{}.NewSet(4)
	for w := 0; w < 4; w++ {
		s.Insert(w, InsertMRU)
	}
	s.Touch(0)
	s.Touch(2)
	// Way 1 was filled before way 3 and never touched again.
	if v := s.Victim(); v != 1 {
		t.Errorf("Victim = %d, want 1", v)
	}
	s.Touch(1)
	if v := s.Victim(); v != 3 {
		t.Errorf("Victim = %d, want 3", v)
	}
}

func TestLRUInsertDistantIsNextVictim(t *testing.T) {
	s := LRU{}.NewSet(8)
	for w := 0; w < 8; w++ {
		s.Insert(w, InsertMRU)
	}
	s.Insert(5, InsertDistant)
	if v := s.Victim(); v != 5 {
		t.Errorf("Victim after distant insert = %d, want 5", v)
	}
	// A touch rescues it.
	s.Touch(5)
	if v := s.Victim(); v == 5 {
		t.Error("touched way must not remain the victim")
	}
}

func TestLRUInsertDistantUnderflow(t *testing.T) {
	s := LRU{}.NewSet(2)
	s.Invalidate(0) // stamp 0
	s.Insert(1, InsertDistant)
	if v := s.Victim(); v != 1 {
		t.Errorf("Victim = %d, want 1 (distant insert below stamp 0)", v)
	}
}

func TestLRUInvalidateBecomesVictim(t *testing.T) {
	s := LRU{}.NewSet(4)
	for w := 0; w < 4; w++ {
		s.Insert(w, InsertMRU)
	}
	s.Invalidate(3)
	if v := s.Victim(); v != 3 {
		t.Errorf("Victim = %d, want invalidated way 3", v)
	}
}

func TestSRRIPPromotionAndAging(t *testing.T) {
	s := SRRIP{}.NewSet(2)
	s.Insert(0, InsertMRU) // RRPV 2
	s.Insert(1, InsertMRU) // RRPV 2
	s.Touch(0)             // RRPV 0
	// Aging should push way 1 to RRPV 3 first.
	if v := s.Victim(); v != 1 {
		t.Errorf("Victim = %d, want 1", v)
	}
}

func TestSRRIPDistantInsert(t *testing.T) {
	s := SRRIP{}.NewSet(4)
	for w := 0; w < 4; w++ {
		s.Insert(w, InsertMRU)
	}
	s.Insert(2, InsertDistant)
	if v := s.Victim(); v != 2 {
		t.Errorf("Victim = %d, want distant-inserted way 2", v)
	}
}

func TestFIFOIgnoresTouches(t *testing.T) {
	s := FIFO{}.NewSet(3)
	s.Insert(0, InsertMRU)
	s.Insert(1, InsertMRU)
	s.Insert(2, InsertMRU)
	s.Touch(0)
	s.Touch(0)
	if v := s.Victim(); v != 0 {
		t.Errorf("Victim = %d, want 0 (FIFO ignores hits)", v)
	}
	s.Insert(0, InsertMRU) // refill way 0
	if v := s.Victim(); v != 1 {
		t.Errorf("Victim = %d, want 1", v)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random{Seed: 42}.NewSet(8)
	b := Random{Seed: 42}.NewSet(8)
	for i := 0; i < 100; i++ {
		if a.Victim() != b.Victim() {
			t.Fatal("same-seed Random sets diverged")
		}
	}
}

func TestRandomZeroSeed(t *testing.T) {
	s := Random{}.NewSet(4)
	if v := s.Victim(); v < 0 || v >= 4 {
		t.Errorf("Victim = %d out of range", v)
	}
}

// Property: every policy returns victims in range whatever the operation
// sequence.
func TestVictimInRangeProperty(t *testing.T) {
	policies := []Policy{LRU{}, SRRIP{}, FIFO{}, Random{Seed: 7}}
	for _, p := range policies {
		p := p
		f := func(ops []uint8, waysRaw uint8) bool {
			ways := int(waysRaw%15) + 1
			s := p.NewSet(ways)
			for _, op := range ops {
				way := int(op) % ways
				switch op % 4 {
				case 0:
					s.Touch(way)
				case 1:
					s.Insert(way, InsertMRU)
				case 2:
					s.Insert(way, InsertDistant)
				case 3:
					s.Invalidate(way)
				}
				if v := s.Victim(); v < 0 || v >= ways {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

// Property: under LRU, touching a way means it is never the immediate
// victim unless it is the only way.
func TestLRUTouchProtectsProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		const ways = 4
		s := LRU{}.NewSet(ways)
		for _, op := range ops {
			s.Insert(int(op)%ways, InsertMRU)
		}
		for w := 0; w < ways; w++ {
			s.Touch(w)
			if s.Victim() == w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
