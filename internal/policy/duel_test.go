package policy

import "testing"

func TestDuelRoleMapping(t *testing.T) {
	d := NewDuel(pselMax, leaderPeriod)
	for set := 0; set < 3*leaderPeriod; set++ {
		want := Follower
		switch set % leaderPeriod {
		case 0:
			want = LeaderA
		case 1:
			want = LeaderB
		}
		if got := d.RoleOf(set); got != want {
			t.Fatalf("RoleOf(%d) = %v, want %v", set, got, want)
		}
	}
}

func TestDuelCounterSaturatesBothWays(t *testing.T) {
	d := NewDuel(7, 4)
	for i := 0; i < 100; i++ {
		d.Miss(LeaderA)
	}
	if d.Counter() != 7 {
		t.Errorf("counter = %d after A-leader misses, want +7", d.Counter())
	}
	if !d.PreferB() {
		t.Error("A-leader misses should make followers prefer B")
	}
	for i := 0; i < 200; i++ {
		d.Miss(LeaderB)
	}
	if d.Counter() != -7 {
		t.Errorf("counter = %d after B-leader misses, want -7", d.Counter())
	}
	if d.PreferB() {
		t.Error("B-leader misses should make followers prefer A")
	}
	// Follower misses never train.
	before := d.Counter()
	d.Miss(Follower)
	if d.Counter() != before {
		t.Error("follower miss moved the counter")
	}
}

func TestDuelDefaultsMatchDIP(t *testing.T) {
	d := NewDuel(0, 0)
	if d.max != pselMax {
		t.Errorf("default max = %d, want DIP's %d", d.max, pselMax)
	}
	if d.period != leaderPeriod {
		t.Errorf("default period = %d, want DIP's %d", d.period, leaderPeriod)
	}
}

func TestDuelClone(t *testing.T) {
	d := NewDuel(pselMax, leaderPeriod)
	d.Miss(LeaderA)
	c := d.Clone()
	c.Miss(LeaderA)
	if d.Counter() == c.Counter() {
		t.Error("clone shares counter with original")
	}
}

func TestDuelStorageBits(t *testing.T) {
	// A ±1023 counter is 10 magnitude bits + sign.
	if got := NewDuel(pselMax, leaderPeriod).StorageBits(); got != 11 {
		t.Errorf("StorageBits = %d, want 11", got)
	}
}
