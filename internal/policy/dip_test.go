package policy

import (
	"testing"
	"testing/quick"
)

func TestDIPLeaderAssignment(t *testing.T) {
	d := NewDIP()
	roles := make([]DuelRole, 2*leaderPeriod)
	for i := range roles {
		roles[i] = d.NewSet(4).(*dipSet).role
	}
	if roles[0] != LeaderA || roles[1] != LeaderB {
		t.Errorf("first sets are %v,%v; want LRU leader then BIP leader", roles[0], roles[1])
	}
	if roles[leaderPeriod] != LeaderA || roles[leaderPeriod+1] != LeaderB {
		t.Error("leader pattern does not repeat each period")
	}
	followers := 0
	for _, r := range roles {
		if r == Follower {
			followers++
		}
	}
	if want := 2*leaderPeriod - 4; followers != want {
		t.Errorf("%d follower sets, want %d", followers, want)
	}
}

func TestDIPFollowersTrackPSEL(t *testing.T) {
	d := NewDIP()
	var lru, bip, follower *dipSet
	for i := 0; i < leaderPeriod; i++ {
		s := d.NewSet(4).(*dipSet)
		switch s.role {
		case LeaderA:
			lru = s
		case LeaderB:
			bip = s
		default:
			if follower == nil {
				follower = s
			}
		}
	}
	// Misses in the LRU leader push PSEL positive → followers use BIP.
	for i := 0; i < 100; i++ {
		lru.Insert(i%4, InsertMRU)
	}
	if !follower.useBIP() {
		t.Error("followers should use BIP after LRU-leader misses")
	}
	// Misses in the BIP leader pull PSEL back.
	for i := 0; i < 200; i++ {
		bip.Insert(i%4, InsertMRU)
	}
	if follower.useBIP() {
		t.Error("followers should return to LRU after BIP-leader misses")
	}
}

func TestDIPBimodalInsertion(t *testing.T) {
	d := NewDIP()
	var bip *dipSet
	for i := 0; i < 2; i++ {
		s := d.NewSet(8).(*dipSet)
		if s.role == LeaderB {
			bip = s
		}
	}
	// In a BIP set, almost every insert lands at the LRU position: the
	// newly inserted way is the immediate next victim except one in ε.
	immediateVictim := 0
	const n = bipEpsilonInv * 8
	for i := 0; i < n; i++ {
		way := i % 8
		bip.Insert(way, InsertMRU)
		if bip.Victim() == way {
			immediateVictim++
		}
	}
	if immediateVictim < n*3/4 {
		t.Errorf("only %d/%d BIP inserts were LRU-position", immediateVictim, n)
	}
	if immediateVictim == n {
		t.Error("no BIP insert ever promoted to MRU (ε missing)")
	}
}

func TestDIPPSELSaturates(t *testing.T) {
	d := NewDIP()
	lru := d.NewSet(4).(*dipSet) // set 0: LRU leader
	for i := 0; i < 10*pselMax; i++ {
		lru.Insert(i%4, InsertMRU)
	}
	if d.st.duel.Counter() != pselMax {
		t.Errorf("PSEL = %d, want saturation at %d", d.st.duel.Counter(), pselMax)
	}
}

func TestDIPVictimInRangeProperty(t *testing.T) {
	f := func(ops []uint8, waysRaw uint8) bool {
		ways := int(waysRaw%15) + 1
		d := NewDIP()
		sets := []Set{d.NewSet(ways), d.NewSet(ways), d.NewSet(ways)}
		for i, op := range ops {
			s := sets[i%len(sets)]
			way := int(op) % ways
			switch op % 4 {
			case 0:
				s.Touch(way)
			case 1:
				s.Insert(way, InsertMRU)
			case 2:
				s.Insert(way, InsertDistant)
			case 3:
				s.Invalidate(way)
			}
			if v := s.Victim(); v < 0 || v >= ways {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDIPWorksInCache(t *testing.T) {
	// Integration through the policy registry path: a DIP-managed
	// structure must behave sanely under a thrashing stream.
	d := NewDIP()
	s := d.NewSet(4)
	for i := 0; i < 1000; i++ {
		w := s.Victim()
		s.Insert(w, InsertMRU)
	}
}
