package ckpt

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestRoundTrip writes one of every primitive and reads it back.
func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Mark("head")
	w.U8(0xab)
	w.U16(0xbeef)
	w.U32(0xdeadbeef)
	w.U64(^uint64(0))
	w.I64(-42)
	w.F64(3.25)
	w.Bool(true)
	w.Bool(false)
	w.String("hello")
	w.Binary([]uint32{1, 2, 3})
	w.Mark("tail")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.Expect("head")
	if got := r.U8(); got != 0xab {
		t.Errorf("U8 = %#x", got)
	}
	if got := r.U16(); got != 0xbeef {
		t.Errorf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != ^uint64(0) {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.F64(); got != 3.25 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.Bool(); got != true {
		t.Errorf("Bool = %v", got)
	}
	if got := r.Bool(); got != false {
		t.Errorf("Bool = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	var s [3]uint32
	r.Binary(&s)
	if s != [3]uint32{1, 2, 3} {
		t.Errorf("Binary = %v", s)
	}
	r.Expect("tail")
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestErrorLatching: the first error must stick and make every later call
// a no-op, so component codecs can run unchecked and report once.
func TestErrorLatching(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	_ = r.U64() // EOF latches
	first := r.Err()
	if first == nil {
		t.Fatal("no error latched on empty stream")
	}
	_ = r.U32()
	_ = r.String()
	r.Expect("x")
	if r.Err() != first {
		t.Errorf("latched error replaced: %v -> %v", first, r.Err())
	}

	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Failf("boom %d", 1)
	w.U64(7)
	w.Mark("m")
	if err := w.Flush(); err == nil || err.Error() != "boom 1" {
		t.Errorf("Flush = %v, want latched boom 1", err)
	}
	if buf.Len() != 0 {
		t.Errorf("writes after latched error reached the stream (%d bytes)", buf.Len())
	}
}

// TestGuards: malformed wire data must fail loudly, never allocate huge.
func TestGuards(t *testing.T) {
	t.Run("bad bool", func(t *testing.T) {
		r := NewReader(bytes.NewReader([]byte{7}))
		r.Bool()
		if r.Err() == nil {
			t.Error("bool byte 7 accepted")
		}
	})
	t.Run("string too long", func(t *testing.T) {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.U64(maxString + 1)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := NewReader(bytes.NewReader(buf.Bytes()))
		_ = r.String()
		if r.Err() == nil {
			t.Error("oversized string length accepted")
		}
	})
	t.Run("writer rejects long string", func(t *testing.T) {
		w := NewWriter(io.Discard)
		w.String(strings.Repeat("x", maxString+1))
		if w.Err() == nil {
			t.Error("oversized string written")
		}
	})
	t.Run("mark mismatch", func(t *testing.T) {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.Mark("alpha")
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := NewReader(bytes.NewReader(buf.Bytes()))
		r.Expect("beta")
		if r.Err() == nil {
			t.Error("section mark mismatch accepted")
		}
	})
}
