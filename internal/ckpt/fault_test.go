package ckpt

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/faultio"
)

// TestWriterLatchesFullDisk: the codec must latch a sink that fills up and
// report it from Flush, with every later write a no-op.
func TestWriterLatchesFullDisk(t *testing.T) {
	w := NewWriter(faultio.NewFailingWriter(nil, 16, nil))
	for i := 0; i < 100; i++ {
		w.U64(uint64(i)) // 800 bytes into a 16-byte sink
	}
	if err := w.Flush(); !errors.Is(err, faultio.ErrNoSpace) {
		t.Fatalf("Flush err = %v, want wrapped faultio.ErrNoSpace", err)
	}
}

// TestReaderLatchesInjectedFaults: truncation and mid-read errors must
// latch on the first failing primitive and stick.
func TestReaderLatchesInjectedFaults(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(1)
	w.U64(2)
	w.String("hello")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	t.Run("truncated", func(t *testing.T) {
		r := NewReader(faultio.Truncate(bytes.NewReader(raw), 12))
		r.U64()
		if err := r.Err(); err != nil {
			t.Fatalf("first full value errored: %v", err)
		}
		r.U64() // spans the cut
		if r.Err() == nil {
			t.Fatal("read past truncation succeeded")
		}
		first := r.Err()
		r.U64()
		if r.Err() != first {
			t.Errorf("latched error replaced: %v -> %v", first, r.Err())
		}
	})
	t.Run("mid-read error", func(t *testing.T) {
		r := NewReader(faultio.NewFailingReader(bytes.NewReader(raw), 8, nil))
		r.U64()
		r.U64()
		if !errors.Is(r.Err(), faultio.ErrInjected) {
			t.Fatalf("Err = %v, want wrapped faultio.ErrInjected", r.Err())
		}
	})
	t.Run("flaky source", func(t *testing.T) {
		// bufio fills its buffer in one large read; the second Read call
		// fails, which must latch (the codec does not retry transient
		// errors — checkpoint sources are files, not sockets).
		r := NewReader(faultio.NewFlakyReader(bytes.NewReader(raw), 2, nil))
		for i := 0; i < 64; i++ {
			r.U64()
		}
		if r.Err() == nil {
			t.Skip("source delivered everything before the injected failure")
		}
	})
}
