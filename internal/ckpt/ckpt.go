// Package ckpt provides the tiny error-latching binary codec the simulator's
// warm-state checkpoints are built from. Every value is little-endian and
// fixed-width; variable-length data is length-prefixed. Writer and Reader
// latch the first error and turn every subsequent call into a no-op, so
// component serializers compose without per-call error plumbing — callers
// check Err (or Flush) once at the end.
//
// Section marks (Mark/Expect) stamp labeled boundaries into the stream;
// a mismatch on decode pinpoints the first misaligned component instead of
// letting a framing bug smear garbage across everything that follows.
package ckpt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// maxString bounds length-prefixed strings on decode, so a corrupt length
// fails fast instead of attempting a huge allocation.
const maxString = 1 << 16

// Writer serializes primitives to an underlying stream.
type Writer struct {
	w   *bufio.Writer
	err error
	buf [8]byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(p)
}

// Failf latches a caller-detected error (e.g. unserializable state).
func (w *Writer) Failf(format string, args ...any) {
	if w.err == nil {
		w.err = fmt.Errorf(format, args...)
	}
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.write([]byte{v}) }

// U16 writes a little-endian uint16.
func (w *Writer) U16(v uint16) {
	binary.LittleEndian.PutUint16(w.buf[:2], v)
	w.write(w.buf[:2])
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.write(w.buf[:4])
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.write(w.buf[:8])
}

// I64 writes a two's-complement int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 writes an IEEE-754 float64 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool writes a bool as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// String writes a length-prefixed string (≤ maxString bytes).
func (w *Writer) String(s string) {
	if len(s) > maxString {
		w.Failf("ckpt: string of %d bytes exceeds the %d limit", len(s), maxString)
		return
	}
	w.U64(uint64(len(s)))
	w.write([]byte(s))
}

// Mark stamps a labeled section boundary; Reader.Expect verifies it.
func (w *Writer) Mark(label string) { w.String(label) }

// Binary writes v via encoding/binary (fixed-size values or slices of
// fixed-size values with exported fields only).
func (w *Writer) Binary(v any) {
	if w.err != nil {
		return
	}
	w.err = binary.Write(w.w, binary.LittleEndian, v)
}

// Err returns the latched error, if any.
func (w *Writer) Err() error { return w.err }

// Flush drains the buffer and returns the latched or flush error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader deserializes primitives from an underlying stream.
type Reader struct {
	r   *bufio.Reader
	err error
	buf [8]byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (r *Reader) read(n int) []byte {
	if r.err != nil {
		return r.buf[:n]
	}
	if _, err := io.ReadFull(r.r, r.buf[:n]); err != nil {
		r.err = err
		return r.buf[:n]
	}
	return r.buf[:n]
}

// Failf latches a caller-detected error (e.g. a verification mismatch).
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// U8 reads one byte.
func (r *Reader) U8() uint8 { return r.read(1)[0] }

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 { return binary.LittleEndian.Uint16(r.read(2)) }

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 { return binary.LittleEndian.Uint32(r.read(4)) }

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 { return binary.LittleEndian.Uint64(r.read(8)) }

// I64 reads a two's-complement int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads an IEEE-754 float64 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a one-byte bool, rejecting values other than 0/1.
func (r *Reader) Bool() bool {
	switch v := r.U8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Failf("ckpt: invalid bool byte %d", v)
		return false
	}
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.U64()
	if r.err != nil {
		return ""
	}
	if n > maxString {
		r.Failf("ckpt: string length %d exceeds the %d limit", n, maxString)
		return ""
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r.r, p); err != nil {
		r.err = err
		return ""
	}
	return string(p)
}

// Expect reads a section mark and verifies it matches label.
func (r *Reader) Expect(label string) {
	got := r.String()
	if r.err == nil && got != label {
		r.Failf("ckpt: expected section %q, found %q (stream misaligned or stale)", label, got)
	}
}

// Binary reads into v via encoding/binary (pointer to a fixed-size value,
// or a pre-sized slice of fixed-size values with exported fields only).
func (r *Reader) Binary(v any) {
	if r.err != nil {
		return
	}
	r.err = binary.Read(r.r, binary.LittleEndian, v)
}

// Err returns the latched error, if any.
func (r *Reader) Err() error { return r.err }
