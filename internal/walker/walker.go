// Package walker implements the hardware page-table walker and its
// page-walk caches (PWCs). Following the paper's methodology (§III): "Like
// real hardware, we use page walk caches (PWCs) to cache partial
// translations to reduce the number of accesses on a page walk to 1 to 3
// memory accesses (on a hit to PWC). Therefore, the page walk latency is
// variable – it depends upon hits/misses to PWCs and whether the page table
// accesses hit in the data caches."
//
// The three PWC levels cache partial translations at the three interior
// radix levels:
//
//	PWC1 (4 entries, 1 cycle)  – PDE entries;   a hit leaves 1 PTE fetch
//	PWC2 (8 entries, 1 cycle)  – PDPTE entries; a hit leaves 2 fetches
//	PWC3 (16 entries, 2 cycles)– PML4E entries; a hit leaves 3 fetches
//
// Every remaining PTE fetch is issued serially (a radix walk is pointer
// chasing) through the data-cache hierarchy via the Fetch callback.
package walker

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/pagetable"
)

// PWCLevels is the number of page-walk-cache levels.
const PWCLevels = 3

// Config sizes the walker.
type Config struct {
	// PWCEntries are the entry counts for PWC1..PWC3 (fully
	// associative). Zero entries disable that level.
	PWCEntries [PWCLevels]int
	// PWCLatency are the lookup latencies for PWC1..PWC3.
	PWCLatency [PWCLevels]arch.Lat
}

// DefaultConfig returns the paper's Table I PWC configuration.
func DefaultConfig() Config {
	return Config{
		PWCEntries: [PWCLevels]int{4, 8, 16},
		PWCLatency: [PWCLevels]arch.Lat{1, 1, 2},
	}
}

// Fetch retrieves one page-table entry through the memory hierarchy and
// returns the access latency.
type Fetch func(pa arch.PAddr) arch.Lat

// Stats counts walker activity.
type Stats struct {
	// Walks is the number of completed page walks.
	Walks uint64
	// PTAccesses is the total number of PTE fetches issued.
	PTAccesses uint64
	// PWCHits counts hits per PWC level (index 0 = PWC1/PDE).
	PWCHits [PWCLevels]uint64
	// FullWalks counts walks that missed in every PWC (4 fetches).
	FullWalks uint64
	// WalkCycles is the summed latency of all walks (PWC lookups plus
	// PTE fetches), before any queueing at the walker.
	WalkCycles uint64
}

// Walker performs page walks against a page table.
type Walker struct {
	pt    *pagetable.PageTable
	fetch Fetch
	pwc   [PWCLevels]*cache.Cache
	lat   [PWCLevels]arch.Lat

	steps []pagetable.Step // reused across walks
	stats Stats
	tick  uint64
}

// New builds a walker. fetch must not be nil.
func New(pt *pagetable.PageTable, cfg Config, fetch Fetch) (*Walker, error) {
	if pt == nil {
		return nil, fmt.Errorf("walker: nil page table")
	}
	if fetch == nil {
		return nil, fmt.Errorf("walker: nil fetch callback")
	}
	w := &Walker{pt: pt, fetch: fetch, lat: cfg.PWCLatency}
	for i, n := range cfg.PWCEntries {
		if n < 0 {
			return nil, fmt.Errorf("walker: PWC%d entries %d < 0", i+1, n)
		}
		if n == 0 {
			continue
		}
		c, err := cache.New(cache.Config{
			Name: fmt.Sprintf("PWC%d", i+1),
			Sets: 1,
			Ways: n,
		})
		if err != nil {
			return nil, err
		}
		w.pwc[i] = c
	}
	return w, nil
}

// pwcKey returns the lookup key for PWC level i (0 = PDE, covering 2 MB
// regions; 2 = PML4E, covering 512 GB regions).
func pwcKey(vpn arch.VPN, level int) uint64 {
	shift := uint((level + 1) * arch.RadixIndexBits)
	return uint64(vpn) >> shift
}

// Result describes one completed walk.
type Result struct {
	// PFN is the translated frame.
	PFN arch.PFN
	// Latency is the full walk latency: PWC lookups plus the serial PTE
	// fetch latencies.
	Latency arch.Lat
	// PTAccesses is how many PTE fetches the walk issued (1–4).
	PTAccesses int
}

// Walk translates vpn, allocating the mapping on first touch, and returns
// the walk result. It consults the PWCs from the deepest-coverage level
// (PDE) outward, fetches the remaining PTEs serially through the memory
// hierarchy, and refills all PWC levels it traversed.
func (w *Walker) Walk(vpn arch.VPN) (Result, error) {
	w.tick++
	w.stats.Walks++

	pfn, steps, err := w.pt.Translate(vpn, w.steps[:0])
	if err != nil {
		return Result{}, err
	}
	w.steps = steps

	// Find the deepest PWC hit. PWC level i caches the node reached
	// after consuming (RadixLevels-1-i) levels, i.e. a PWC1/PDE hit
	// means only the leaf PTE (step index 3) remains.
	firstStep := 0
	hitLevel := -1
	var pwcLat arch.Lat
	for i := 0; i < PWCLevels; i++ {
		if w.pwc[i] == nil {
			continue
		}
		pwcLat = w.lat[i]
		if _, ok := w.pwc[i].Lookup(pwcKey(vpn, i), w.tick); ok {
			w.stats.PWCHits[i]++
			firstStep = arch.RadixLevels - 1 - i
			hitLevel = i
			break
		}
		if i == PWCLevels-1 {
			firstStep = 0 // full walk
			w.stats.FullWalks++
		}
	}
	if w.pwc[0] == nil && w.pwc[1] == nil && w.pwc[2] == nil {
		firstStep = 0
		w.stats.FullWalks++
		pwcLat = 0
	}

	total := pwcLat
	n := 0
	for _, s := range steps[firstStep:] {
		total += w.fetch(s.PTEAddr)
		n++
	}
	w.stats.PTAccesses += uint64(n)
	w.stats.WalkCycles += uint64(total)

	// Refill the PWCs for every interior level this walk resolved, so
	// future walks in the same region skip deeper. The level that just
	// hit is known-resident; probing it again would be redundant.
	for i := 0; i < PWCLevels; i++ {
		if w.pwc[i] == nil || i == hitLevel {
			continue
		}
		key := pwcKey(vpn, i)
		if _, ok := w.pwc[i].Probe(key); !ok {
			w.pwc[i].Fill(key, 0, w.tick)
		}
	}

	return Result{PFN: pfn, Latency: total, PTAccesses: n}, nil
}

// Clone deep-copies the walker for warm-state forking, rebinding it to the
// forked system's page table and PTE-fetch path (both belong to the new
// machine instance; the walker itself owns only the PWCs, its counters and
// its clock). The steps scratch buffer is per-instance and starts empty.
func (w *Walker) Clone(pt *pagetable.PageTable, fetch Fetch) (*Walker, error) {
	if pt == nil {
		return nil, fmt.Errorf("walker: clone needs a page table")
	}
	if fetch == nil {
		return nil, fmt.Errorf("walker: clone needs a fetch callback")
	}
	n := &Walker{pt: pt, fetch: fetch, lat: w.lat, stats: w.stats, tick: w.tick}
	for i, c := range w.pwc {
		if c == nil {
			continue
		}
		cc, err := c.Clone()
		if err != nil {
			return nil, err
		}
		n.pwc[i] = cc
	}
	return n, nil
}

// Rebind points the walker at a different page table (a context switch to
// another address space). PWC contents survive deliberately: their keys are
// derived from the (ASID-qualified) VPNs the owning address space walks, so
// entries of distinct address spaces can never collide — exactly like an
// ASID-tagged hardware PWC.
func (w *Walker) Rebind(pt *pagetable.PageTable) {
	w.pt = pt
}

// Stats returns a snapshot of walker counters.
func (w *Walker) Stats() Stats { return w.stats }

// ResetStats zeroes the counters (warmup) without dropping PWC contents.
func (w *Walker) ResetStats() { w.stats = Stats{} }
