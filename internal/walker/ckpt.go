package walker

import "repro/internal/ckpt"

// EncodeState serializes the walker's mutable state — each present PWC, the
// activity counters and the metadata clock — for warm-state checkpointing.
// The page table and fetch path are owned by the enclosing system and
// serialized separately.
func (w *Walker) EncodeState(cw *ckpt.Writer) {
	cw.Mark("walker")
	for _, c := range w.pwc {
		cw.Bool(c != nil)
		if c != nil {
			c.EncodeState(cw)
		}
	}
	cw.Binary(&w.stats)
	cw.U64(w.tick)
}

// DecodeState restores state written by EncodeState into a walker built with
// the identical configuration.
func (w *Walker) DecodeState(cr *ckpt.Reader) error {
	cr.Expect("walker")
	for i, c := range w.pwc {
		present := cr.Bool()
		if cr.Err() != nil {
			return cr.Err()
		}
		if present != (c != nil) {
			cr.Failf("walker: checkpoint PWC%d presence does not match configuration", i+1)
			return cr.Err()
		}
		if c != nil {
			if err := c.DecodeState(cr); err != nil {
				return err
			}
		}
	}
	cr.Binary(&w.stats)
	w.tick = cr.U64()
	return cr.Err()
}
