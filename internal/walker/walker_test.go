package walker

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/pagetable"
)

func newWalker(t *testing.T, cfg Config, fetchLat arch.Lat) (*Walker, *[]arch.PAddr) {
	t.Helper()
	alloc, err := pagetable.NewAllocator(1<<20, pagetable.AllocSequential, 0)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := pagetable.New(alloc)
	if err != nil {
		t.Fatal(err)
	}
	var fetched []arch.PAddr
	w, err := New(pt, cfg, func(pa arch.PAddr) arch.Lat {
		fetched = append(fetched, pa)
		return fetchLat
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, &fetched
}

func TestNewValidation(t *testing.T) {
	alloc, _ := pagetable.NewAllocator(64, pagetable.AllocSequential, 0)
	pt, _ := pagetable.New(alloc)
	if _, err := New(nil, DefaultConfig(), func(arch.PAddr) arch.Lat { return 0 }); err == nil {
		t.Error("nil page table accepted")
	}
	if _, err := New(pt, DefaultConfig(), nil); err == nil {
		t.Error("nil fetch accepted")
	}
	bad := DefaultConfig()
	bad.PWCEntries[0] = -1
	if _, err := New(pt, bad, func(arch.PAddr) arch.Lat { return 0 }); err == nil {
		t.Error("negative PWC entries accepted")
	}
}

func TestFirstWalkIsFull(t *testing.T) {
	w, fetched := newWalker(t, DefaultConfig(), 10)
	res, err := w.Walk(arch.VPN(0x1234))
	if err != nil {
		t.Fatal(err)
	}
	if res.PTAccesses != arch.RadixLevels {
		t.Errorf("first walk fetched %d PTEs, want %d", res.PTAccesses, arch.RadixLevels)
	}
	// Latency = PWC3 miss path (2 cycles charged) + 4 fetches × 10.
	if want := arch.Lat(2 + 4*10); res.Latency != want {
		t.Errorf("latency = %d, want %d", res.Latency, want)
	}
	if len(*fetched) != 4 {
		t.Errorf("fetch callback saw %d accesses, want 4", len(*fetched))
	}
	if st := w.Stats(); st.FullWalks != 1 || st.Walks != 1 || st.PTAccesses != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSecondWalkHitsPDECache(t *testing.T) {
	w, _ := newWalker(t, DefaultConfig(), 10)
	if _, err := w.Walk(arch.VPN(0x1000)); err != nil {
		t.Fatal(err)
	}
	res, err := w.Walk(arch.VPN(0x1001)) // same 2 MB region
	if err != nil {
		t.Fatal(err)
	}
	if res.PTAccesses != 1 {
		t.Errorf("PDE-cached walk fetched %d PTEs, want 1", res.PTAccesses)
	}
	if want := arch.Lat(1 + 10); res.Latency != want {
		t.Errorf("latency = %d, want %d", res.Latency, want)
	}
	if st := w.Stats(); st.PWCHits[0] != 1 {
		t.Errorf("PWC1 hits = %d, want 1", st.PWCHits[0])
	}
}

func TestWalkHitsPDPTECacheAcross2MBRegions(t *testing.T) {
	w, _ := newWalker(t, DefaultConfig(), 10)
	if _, err := w.Walk(arch.VPN(0)); err != nil {
		t.Fatal(err)
	}
	// Flood PWC1 (4 entries) with other 2 MB regions inside the same
	// 1 GB region, then return to a new 2 MB region: PWC1 misses, PWC2
	// (PDPTE) hits → 2 fetches.
	for r := uint64(1); r <= 4; r++ {
		if _, err := w.Walk(arch.VPN(r << arch.RadixIndexBits)); err != nil {
			t.Fatal(err)
		}
	}
	before := w.Stats().PWCHits[1]
	res, err := w.Walk(arch.VPN(100 << arch.RadixIndexBits))
	if err != nil {
		t.Fatal(err)
	}
	if res.PTAccesses != 2 {
		t.Errorf("PDPTE-cached walk fetched %d PTEs, want 2", res.PTAccesses)
	}
	if after := w.Stats().PWCHits[1]; after != before+1 {
		t.Errorf("PWC2 hits went %d → %d, want +1", before, after)
	}
}

func TestDisabledPWCsAlwaysFullWalk(t *testing.T) {
	w, _ := newWalker(t, Config{}, 5)
	for i := 0; i < 3; i++ {
		res, err := w.Walk(arch.VPN(7))
		if err != nil {
			t.Fatal(err)
		}
		if res.PTAccesses != 4 {
			t.Fatalf("walk %d fetched %d PTEs, want 4", i, res.PTAccesses)
		}
		if res.Latency != 20 {
			t.Fatalf("walk %d latency %d, want 20", i, res.Latency)
		}
	}
	if st := w.Stats(); st.FullWalks != 3 {
		t.Errorf("FullWalks = %d, want 3", st.FullWalks)
	}
}

func TestWalkReturnsStableTranslation(t *testing.T) {
	w, _ := newWalker(t, DefaultConfig(), 1)
	a, err := w.Walk(arch.VPN(0x42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Walk(arch.VPN(0x42))
	if err != nil {
		t.Fatal(err)
	}
	if a.PFN != b.PFN {
		t.Errorf("translation changed: %d then %d", a.PFN, b.PFN)
	}
}

func TestPTEFetchAddressesAreDistinctPerLevel(t *testing.T) {
	w, fetched := newWalker(t, Config{}, 1)
	if _, err := w.Walk(arch.VPN(0x0123_4567_8)); err != nil {
		t.Fatal(err)
	}
	seen := map[arch.PAddr]bool{}
	for _, pa := range *fetched {
		if seen[pa] {
			t.Errorf("duplicate PTE fetch at %#x", pa)
		}
		seen[pa] = true
	}
}

func TestResetStats(t *testing.T) {
	w, _ := newWalker(t, DefaultConfig(), 1)
	if _, err := w.Walk(1); err != nil {
		t.Fatal(err)
	}
	w.ResetStats()
	if st := w.Stats(); st.Walks != 0 || st.PTAccesses != 0 {
		t.Errorf("stats not reset: %+v", st)
	}
	// PWC contents survive: the next walk should hit PWC1.
	res, err := w.Walk(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.PTAccesses != 1 {
		t.Errorf("post-reset walk fetched %d PTEs, want 1 (PWC retained)", res.PTAccesses)
	}
}

func TestWalkCyclesAccumulate(t *testing.T) {
	w, _ := newWalker(t, DefaultConfig(), 10)
	if _, err := w.Walk(arch.VPN(1)); err != nil {
		t.Fatal(err)
	}
	// Full walk: 2 (PWC3 miss path) + 4 × 10 = 42 cycles.
	if got := w.Stats().WalkCycles; got != 42 {
		t.Errorf("WalkCycles = %d, want 42", got)
	}
	if _, err := w.Walk(arch.VPN(2)); err != nil { // PWC1 hit: 1 + 10
		t.Fatal(err)
	}
	if got := w.Stats().WalkCycles; got != 42+11 {
		t.Errorf("WalkCycles = %d, want 53", got)
	}
}

func TestPWCHitDistributionSums(t *testing.T) {
	w, _ := newWalker(t, DefaultConfig(), 1)
	for v := arch.VPN(0); v < 2000; v++ {
		if _, err := w.Walk(v * 7); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	total := st.FullWalks
	for _, h := range st.PWCHits {
		total += h
	}
	if total != st.Walks {
		t.Errorf("PWC hits (%v) + full walks (%d) = %d, want %d walks",
			st.PWCHits, st.FullWalks, total, st.Walks)
	}
}

// BenchmarkWalk measures a warm page walk: all 512 pages share one PDE, so
// every walk hits PWC1 and issues a single leaf PTE fetch.
func BenchmarkWalk(b *testing.B) {
	alloc, err := pagetable.NewAllocator(1<<20, pagetable.AllocSequential, 0)
	if err != nil {
		b.Fatal(err)
	}
	pt, err := pagetable.New(alloc)
	if err != nil {
		b.Fatal(err)
	}
	w, err := New(pt, DefaultConfig(), func(arch.PAddr) arch.Lat { return 4 })
	if err != nil {
		b.Fatal(err)
	}
	const pages = 512
	for i := 0; i < pages; i++ {
		if _, err := w.Walk(arch.VPN(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Walk(arch.VPN(i % pages)); err != nil {
			b.Fatal(err)
		}
	}
}
