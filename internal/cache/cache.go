// Package cache implements the generic set-associative structure that backs
// every lookup array in the simulated machine: the data caches (L1D, L2,
// LLC), the TLBs, and the tag-only mirror structures used to measure
// predictor accuracy.
//
// A cache stores Blocks keyed by an opaque 64-bit key: the physical block
// number for data caches, the virtual page number for TLBs. Alongside
// validity it carries the metadata the paper's predictors need — the
// Accessed bit and DP bit of §V, the PC-hash/signature state of the SHiP
// and AIP baselines — plus fill/last-hit timestamps for the §IV dead-entry
// characterization.
//
// Storage layout (hot path). All per-entry state lives in flat, fixed-stride
// arrays indexed by set*ways+way: the Block payloads in one slice, and a
// separate compact tag array so a lookup scans 8 bytes per way instead of a
// full Block. Per-set packed bit words hold the valid and dead-mark bits, so
// "any invalid way?" and "any dead-marked way?" are single-word tests during
// a fill instead of a scan. The default LRU policy is inlined over the same
// flat layout (per-way stamps plus a per-set clock), so a fully-warm access
// performs no interface-method calls and no heap allocations.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/policy"
)

// Block is one entry of a set-associative structure, including all
// predictor-visible metadata. Fields are ordered widest-first so one entry
// packs into a single 64-byte line.
type Block struct {
	// Key identifies the entry: physical block number for caches,
	// virtual page number for TLBs.
	Key uint64
	// Data is payload carried with the entry (the PFN for TLB entries);
	// data caches leave it zero.
	Data uint64

	// FillTime, LastHitTime and Hits support the §IV dead/live
	// classification: times are supplied by the caller (simulated
	// cycles), Hits counts hits this generation.
	FillTime    uint64
	LastHitTime uint64
	Hits        uint64

	// PCHash is dpPred's per-TLB-entry hash of the PC that triggered the
	// fill (6 bits by default, §V-A).
	PCHash uint16
	// Sig is the SHiP signature stored with the entry.
	Sig uint16

	// AIPCount is the AIP event counter (accesses to the set since this
	// entry was last touched). The AIP predictor resets it on hits.
	AIPCount uint16
	// AIPMax is the largest access interval observed this generation.
	AIPMax uint16
	// AIPThreshold is the death threshold loaded from AIP's prediction
	// table at fill time.
	AIPThreshold uint16

	// Valid reports whether the entry holds a live translation/block.
	Valid bool
	// Dirty marks blocks modified since fill.
	Dirty bool
	// Accessed is the paper's per-entry Accessed bit: set on the first
	// hit after fill, examined at eviction to detect dead-on-arrival
	// entries (§V-A, §V-B).
	Accessed bool
	// DP is cbPred's dead-page bit: the block was filled while its frame
	// was in the PFN filter queue (§V-B).
	DP bool
	// Prefetched marks entries installed speculatively by a TLB
	// prefetcher; they do not train the dead-entry predictors.
	Prefetched bool
	// Outcome is SHiP's per-entry reuse bit.
	Outcome bool
	// AIPConf is the confidence bit loaded with AIPThreshold.
	AIPConf bool
}

// Config sizes a cache.
type Config struct {
	// Name labels the structure in error messages and reports.
	Name string
	// Sets is the number of sets; must be ≥ 1.
	Sets int
	// Ways is the associativity; must be in [1, 64] (the valid and
	// dead-mark bits of a set are packed into single words).
	Ways int
	// Policy chooses victims within a set; nil means LRU.
	Policy policy.Policy
}

// Cache is a set-associative lookup structure.
type Cache struct {
	name string
	sets int
	ways int

	// setMask is sets-1 when sets is a power of two (the common case);
	// pow2 selects between the masked and modulo index paths.
	setMask uint64
	pow2    bool
	// fullMask has the low `ways` bits set: a set whose live word equals
	// it has no invalid way.
	fullMask uint64

	// Flat per-entry arrays, indexed by set*ways+way.
	tags   []uint64 // entry keys, scanned on lookup
	blocks []Block  // full metadata payloads

	// Packed per-set bit words (bit w = way w).
	live []uint64 // valid bits
	dead []uint64 // dead-mark bits (see MarkDead)

	// Inlined LRU state (non-nil exactly when the policy is LRU):
	// per-way use stamps plus a per-set clock, flat like the entries.
	lruStamp []uint64
	lruClock []uint64
	// repl holds per-set policy state for non-LRU policies (nil when the
	// LRU fast path is active).
	repl []policy.Set

	// Statistics maintained by the structure itself.
	lookups   uint64
	hits      uint64
	fills     uint64
	bypasses  uint64
	evictions uint64
}

// New creates a cache from the configuration.
func New(cfg Config) (*Cache, error) {
	if cfg.Sets < 1 || cfg.Ways < 1 {
		return nil, fmt.Errorf("cache %q: need sets ≥ 1 and ways ≥ 1, got %d×%d",
			cfg.Name, cfg.Sets, cfg.Ways)
	}
	if cfg.Ways > 64 {
		return nil, fmt.Errorf("cache %q: ways %d exceeds the 64-way packing limit",
			cfg.Name, cfg.Ways)
	}
	pol := cfg.Policy
	if pol == nil {
		pol = policy.LRU{}
	}
	c := &Cache{
		name:     cfg.Name,
		sets:     cfg.Sets,
		ways:     cfg.Ways,
		setMask:  uint64(cfg.Sets - 1),
		pow2:     cfg.Sets&(cfg.Sets-1) == 0,
		fullMask: fullWays(cfg.Ways),
		tags:     make([]uint64, cfg.Sets*cfg.Ways),
		blocks:   make([]Block, cfg.Sets*cfg.Ways),
		live:     make([]uint64, cfg.Sets),
		dead:     make([]uint64, cfg.Sets),
	}
	if _, isLRU := pol.(policy.LRU); isLRU {
		// Inline the default policy over flat arrays; state mirrors
		// policy.LRU.NewSet exactly (distinct initial stamps, clock at
		// ways) so victim choices are bit-identical.
		c.lruStamp = make([]uint64, cfg.Sets*cfg.Ways)
		c.lruClock = make([]uint64, cfg.Sets)
		for s := 0; s < cfg.Sets; s++ {
			for w := 0; w < cfg.Ways; w++ {
				c.lruStamp[s*cfg.Ways+w] = uint64(w)
			}
			c.lruClock[s] = uint64(cfg.Ways)
		}
		return c, nil
	}
	c.repl = make([]policy.Set, cfg.Sets)
	for s := 0; s < cfg.Sets; s++ {
		c.repl[s] = pol.NewSet(cfg.Ways)
	}
	return c, nil
}

// fullWays returns a word with the low n bits set (n ≤ 64).
func fullWays(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(n) - 1
}

// MustNew is New that panics on configuration errors; for tests and
// compile-time-constant configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the configured name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Capacity returns the total number of entries.
func (c *Cache) Capacity() int { return c.sets * c.ways }

// SetIndex maps a key to its set.
func (c *Cache) SetIndex(key uint64) int {
	if c.pow2 {
		return int(key & c.setMask)
	}
	return int(key % uint64(c.sets))
}

// Lookup probes the cache for the key at simulated time now. On a hit it
// updates replacement state, sets the Accessed bit, bumps hit counters and
// returns the resident block. On a miss it returns (nil, false). A hit also
// clears the way's dead-mark (a re-referenced entry is live again — the
// revive AIP performs on every hit).
func (c *Cache) Lookup(key uint64, now uint64) (*Block, bool) {
	c.lookups++
	set := c.SetIndex(key)
	base := set * c.ways
	tags := c.tags[base : base+c.ways]
	if live := c.live[set]; live == c.fullMask {
		// Full set (the warm steady state): every tag is backed by a
		// valid entry, so the scan is pure 8-byte compares.
		for w := range tags {
			if tags[w] == key {
				return c.hit(set, base, w, now), true
			}
		}
		return nil, false
	} else {
		for w := range tags {
			if tags[w] == key && live>>uint(w)&1 != 0 {
				return c.hit(set, base, w, now), true
			}
		}
	}
	return nil, false
}

// hit applies the hit-path side effects for the entry at (set, way).
func (c *Cache) hit(set, base, w int, now uint64) *Block {
	c.hits++
	b := &c.blocks[base+w]
	b.Accessed = true
	b.Hits++
	b.LastHitTime = now
	if d := c.dead[set]; d != 0 {
		c.dead[set] = d &^ (1 << uint(w))
	}
	if c.lruStamp != nil {
		clk := c.lruClock[set] + 1
		c.lruClock[set] = clk
		c.lruStamp[base+w] = clk
	} else {
		c.repl[set].Touch(w)
	}
	return b
}

// Locate finds the resident slot for key with no side effects at all — no
// statistics, no replacement update, no Accessed bit. The batched
// simulation loop uses it to pin down a (set, way) after the slow path
// resolved an access; HitAt later replays hits against that slot directly.
func (c *Cache) Locate(key uint64) (set, way int, ok bool) {
	set = c.SetIndex(key)
	base := set * c.ways
	tags := c.tags[base : base+c.ways]
	live := c.live[set]
	for w := range tags {
		if tags[w] == key && live>>uint(w)&1 != 0 {
			return set, w, true
		}
	}
	return 0, 0, false
}

// HitAt replays a Lookup hit against a previously Located (set, way) slot.
// It is guarded: the slot must still hold key and be live, and only then
// do the full hit-path side effects run (lookup/hit counters, Accessed
// bit, dead-bit clear, replacement touch) — bit-identical to Lookup
// finding the same entry, because tags are unique within a set. A failed
// guard has no side effects whatsoever; the caller falls back to the full
// path. This is what makes a memoized (set, way) safe against any
// intervening eviction or invalidation: the guard detects it and the slow
// path re-resolves.
func (c *Cache) HitAt(set, way int, key, now uint64) (*Block, bool) {
	base := set * c.ways
	if c.tags[base+way] != key || c.live[set]>>uint(way)&1 == 0 {
		return nil, false
	}
	c.lookups++
	return c.hit(set, base, way, now), true
}

// CoalescibleHits reports whether a run of consecutive hits to one slot
// can be applied as a single coalesced update (HitRun). True only for the
// stamp-based LRU policy, whose hit effect has a closed form over k
// repeats; pluggable policies keep opaque per-hit state, so callers must
// replay their hits one by one through Lookup or HitAt.
func (c *Cache) CoalescibleHits() bool { return c.lruStamp != nil }

// HitRun applies k deferred hits to a slot in one update, bit-identical
// to k individual Lookup hits on that slot of which the last happened at
// time lastNow — provided the cache saw no other traffic (lookups, fills,
// invalidations, flushes) between those hits, which is the caller's
// contract, and the policy is coalescible (CoalescibleHits). The per-hit
// effects all have closed forms under that contract: counters add k, the
// Accessed bit and dead-bit clear are idempotent, LastHitTime keeps only
// the final time, and k consecutive LRU touches of one way advance the
// set clock by k and leave the way holding the final stamp.
func (c *Cache) HitRun(set, way int, k, lastNow uint64) *Block {
	base := set * c.ways
	c.lookups += k
	c.hits += k
	b := &c.blocks[base+way]
	b.Accessed = true
	b.Hits += k
	b.LastHitTime = lastNow
	if d := c.dead[set]; d != 0 {
		c.dead[set] = d &^ (1 << uint(way))
	}
	clk := c.lruClock[set] + k
	c.lruClock[set] = clk
	c.lruStamp[base+way] = clk
	return b
}

// Probe checks residency without touching replacement state, the Accessed
// bit or statistics. Mirror structures and tests use it.
func (c *Cache) Probe(key uint64) (*Block, bool) {
	set := c.SetIndex(key)
	base := set * c.ways
	tags := c.tags[base : base+c.ways]
	live := c.live[set]
	for w := range tags {
		if tags[w] == key && live>>uint(w)&1 != 0 {
			return &c.blocks[base+w], true
		}
	}
	return nil, false
}

// Victim reports the block that a Fill for key would evict, without
// changing any state. The boolean is false when an invalid way would absorb
// the fill (no eviction).
func (c *Cache) Victim(key uint64) (Block, bool) {
	set := c.SetIndex(key)
	if c.live[set] != c.fullMask {
		return Block{}, false
	}
	return c.blocks[set*c.ways+c.victimWay(set)], true
}

// victimWay picks the way a fill into a full set replaces: the policy's
// victim if it is dead-marked (or no way is), otherwise the first
// dead-marked way.
func (c *Cache) victimWay(set int) int {
	pv := c.policyVictim(set)
	if d := c.dead[set]; d != 0 && d>>uint(pv)&1 == 0 {
		return bits.TrailingZeros64(d)
	}
	return pv
}

// policyVictim returns the replacement policy's victim for the set.
func (c *Cache) policyVictim(set int) int {
	if c.lruStamp == nil {
		return c.repl[set].Victim()
	}
	base := set * c.ways
	stamps := c.lruStamp[base : base+c.ways]
	v, min := 0, stamps[0]
	for w := 1; w < len(stamps); w++ {
		if s := stamps[w]; s < min {
			v, min = w, s
		}
	}
	return v
}

// Fill allocates an entry for the key, evicting if necessary, and returns
// a copy of the evicted block (evicted=false when an invalid way was used).
// The new block's metadata starts clean except for fields the caller sets
// afterwards through the returned pointer.
func (c *Cache) Fill(key uint64, hint policy.InsertHint, now uint64) (nb *Block, victim Block, evicted bool) {
	c.fills++
	set := c.SetIndex(key)
	base := set * c.ways
	var way int
	if live := c.live[set]; live != c.fullMask {
		way = bits.TrailingZeros64(^live & c.fullMask)
	} else {
		way = c.victimWay(set)
		victim = c.blocks[base+way]
		evicted = true
		c.evictions++
	}
	c.blocks[base+way] = Block{
		Valid:    true,
		Key:      key,
		FillTime: now,
	}
	c.tags[base+way] = key
	c.live[set] |= 1 << uint(way)
	if d := c.dead[set]; d != 0 {
		c.dead[set] = d &^ (1 << uint(way))
	}
	if c.lruStamp != nil {
		c.lruInsert(set, way, hint)
	} else {
		c.repl[set].Insert(way, hint)
	}
	return &c.blocks[base+way], victim, evicted
}

// lruInsert is the inlined equivalent of policy.LRU's Insert: MRU insertion
// bumps the clock; distant insertion stamps the way older than everything
// resident (shifting stamps up when zero is already taken).
func (c *Cache) lruInsert(set, way int, hint policy.InsertHint) {
	base := set * c.ways
	if hint == policy.InsertDistant {
		stamps := c.lruStamp[base : base+c.ways]
		min := stamps[0]
		for _, st := range stamps[1:] {
			if st < min {
				min = st
			}
		}
		if min == 0 {
			for i := range stamps {
				stamps[i]++
			}
			c.lruClock[set]++
			min = 1
		}
		stamps[way] = min - 1
		return
	}
	clk := c.lruClock[set] + 1
	c.lruClock[set] = clk
	c.lruStamp[base+way] = clk
}

// MarkDead flags the resident entry at the given way of key's set as a
// preferred victim (AIP's dead-block marking). The mark clears when the
// entry is hit, refilled or invalidated.
func (c *Cache) MarkDead(key uint64, way int) {
	set := c.SetIndex(key)
	if way < 0 || way >= c.ways || c.live[set]>>uint(way)&1 == 0 {
		return
	}
	c.dead[set] |= 1 << uint(way)
}

// MarkDeadKey locates key's resident entry and dead-marks it, reporting
// whether the key was resident. Tests and coarse-grained callers use it;
// per-way callers on the access path use MarkDead.
func (c *Cache) MarkDeadKey(key uint64) bool {
	set := c.SetIndex(key)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == key && c.live[set]>>uint(w)&1 != 0 {
			c.dead[set] |= 1 << uint(w)
			return true
		}
	}
	return false
}

// DeadMarked reports whether key's resident entry carries a dead-mark.
func (c *Cache) DeadMarked(key uint64) bool {
	set := c.SetIndex(key)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == key && c.live[set]>>uint(w)&1 != 0 {
			return c.dead[set]>>uint(w)&1 != 0
		}
	}
	return false
}

// RecordBypass counts a fill that a predictor suppressed.
func (c *Cache) RecordBypass() { c.bypasses++ }

// Invalidate removes the key if resident, returning a copy of the removed
// block. Used for inclusive-LLC back-invalidation.
func (c *Cache) Invalidate(key uint64) (Block, bool) {
	set := c.SetIndex(key)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == key && c.live[set]>>uint(w)&1 != 0 {
			old := c.blocks[base+w]
			c.blocks[base+w] = Block{}
			c.tags[base+w] = 0
			c.live[set] &^= 1 << uint(w)
			c.dead[set] &^= 1 << uint(w)
			if c.lruStamp != nil {
				// An invalidated way becomes the best victim.
				c.lruStamp[base+w] = 0
			} else {
				c.repl[set].Invalidate(w)
			}
			return old, true
		}
	}
	return Block{}, false
}

// ForEachInSet visits every valid block in the set containing key.
// Predictors with per-set bookkeeping (AIP) use it on the access path.
func (c *Cache) ForEachInSet(key uint64, fn func(way int, b *Block)) {
	set := c.SetIndex(key)
	base := set * c.ways
	for m := c.live[set]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		fn(w, &c.blocks[base+w])
	}
}

// ForEach visits every valid block. Samplers use it to snapshot residency.
func (c *Cache) ForEach(fn func(set, way int, b *Block)) {
	for s := 0; s < c.sets; s++ {
		base := s * c.ways
		for m := c.live[s]; m != 0; m &= m - 1 {
			w := bits.TrailingZeros64(m)
			fn(s, w, &c.blocks[base+w])
		}
	}
}

// BumpSetCounters lets predictors (AIP) advance the per-set access-interval
// counters: every valid block in key's set except key itself gets
// AIPCount+1 (saturating).
func (c *Cache) BumpSetCounters(key uint64) {
	set := c.SetIndex(key)
	base := set * c.ways
	for m := c.live[set]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		b := &c.blocks[base+w]
		if b.Key != key && b.AIPCount < ^uint16(0) {
			b.AIPCount++
		}
	}
}

// Stats is a snapshot of the cache's internal counters.
type Stats struct {
	Lookups   uint64
	Hits      uint64
	Misses    uint64
	Fills     uint64
	Bypasses  uint64
	Evictions uint64
}

// Stats returns a snapshot of activity counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Lookups:   c.lookups,
		Hits:      c.hits,
		Misses:    c.lookups - c.hits,
		Fills:     c.fills,
		Bypasses:  c.bypasses,
		Evictions: c.evictions,
	}
}

// ResetStats zeroes the activity counters (warmup support) without
// touching cache contents.
func (c *Cache) ResetStats() {
	c.lookups, c.hits, c.fills, c.bypasses, c.evictions = 0, 0, 0, 0, 0
}
