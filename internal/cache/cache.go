// Package cache implements the generic set-associative structure that backs
// every lookup array in the simulated machine: the data caches (L1D, L2,
// LLC), the TLBs, and the tag-only mirror structures used to measure
// predictor accuracy.
//
// A cache stores Blocks keyed by an opaque 64-bit key: the physical block
// number for data caches, the virtual page number for TLBs. Alongside
// validity it carries the metadata the paper's predictors need — the
// Accessed bit and DP bit of §V, the PC-hash/signature state of the SHiP
// and AIP baselines — plus fill/last-hit timestamps for the §IV dead-entry
// characterization. Keeping the metadata in one flat struct keeps the
// simulator allocation-free on the access path.
package cache

import (
	"fmt"

	"repro/internal/policy"
)

// Block is one entry of a set-associative structure, including all
// predictor-visible metadata.
type Block struct {
	// Valid reports whether the entry holds a live translation/block.
	Valid bool
	// Key identifies the entry: physical block number for caches,
	// virtual page number for TLBs.
	Key uint64
	// Data is payload carried with the entry (the PFN for TLB entries);
	// data caches leave it zero.
	Data uint64
	// Dirty marks blocks modified since fill.
	Dirty bool

	// Accessed is the paper's per-entry Accessed bit: set on the first
	// hit after fill, examined at eviction to detect dead-on-arrival
	// entries (§V-A, §V-B).
	Accessed bool
	// DP is cbPred's dead-page bit: the block was filled while its frame
	// was in the PFN filter queue (§V-B).
	DP bool
	// DeadMark flags entries a predictor (AIP) considers dead; the
	// victim selector prefers them over the policy's choice.
	DeadMark bool
	// Prefetched marks entries installed speculatively by a TLB
	// prefetcher; they do not train the dead-entry predictors.
	Prefetched bool

	// PCHash is dpPred's per-TLB-entry hash of the PC that triggered the
	// fill (6 bits by default, §V-A).
	PCHash uint16
	// Sig is the SHiP signature stored with the entry.
	Sig uint16
	// Outcome is SHiP's per-entry reuse bit.
	Outcome bool

	// AIPCount is the AIP event counter (accesses to the set since this
	// entry was last touched). The AIP predictor resets it on hits.
	AIPCount uint16
	// AIPMax is the largest access interval observed this generation.
	AIPMax uint16
	// AIPThreshold is the death threshold loaded from AIP's prediction
	// table at fill time.
	AIPThreshold uint16
	// AIPConf is the confidence bit loaded with AIPThreshold.
	AIPConf bool

	// FillTime, LastHitTime and Hits support the §IV dead/live
	// classification: times are supplied by the caller (simulated
	// cycles), Hits counts hits this generation.
	FillTime    uint64
	LastHitTime uint64
	Hits        uint64
}

// Config sizes a cache.
type Config struct {
	// Name labels the structure in error messages and reports.
	Name string
	// Sets is the number of sets; must be ≥ 1.
	Sets int
	// Ways is the associativity; must be ≥ 1.
	Ways int
	// Policy chooses victims within a set; nil means LRU.
	Policy policy.Policy
}

// Cache is a set-associative lookup structure.
type Cache struct {
	name   string
	sets   int
	ways   int
	blocks [][]Block    // [set][way]
	repl   []policy.Set // [set]

	// Statistics maintained by the structure itself.
	lookups   uint64
	hits      uint64
	fills     uint64
	bypasses  uint64
	evictions uint64
}

// New creates a cache from the configuration.
func New(cfg Config) (*Cache, error) {
	if cfg.Sets < 1 || cfg.Ways < 1 {
		return nil, fmt.Errorf("cache %q: need sets ≥ 1 and ways ≥ 1, got %d×%d",
			cfg.Name, cfg.Sets, cfg.Ways)
	}
	pol := cfg.Policy
	if pol == nil {
		pol = policy.LRU{}
	}
	c := &Cache{
		name:   cfg.Name,
		sets:   cfg.Sets,
		ways:   cfg.Ways,
		blocks: make([][]Block, cfg.Sets),
		repl:   make([]policy.Set, cfg.Sets),
	}
	backing := make([]Block, cfg.Sets*cfg.Ways)
	for s := 0; s < cfg.Sets; s++ {
		c.blocks[s] = backing[s*cfg.Ways : (s+1)*cfg.Ways : (s+1)*cfg.Ways]
		c.repl[s] = pol.NewSet(cfg.Ways)
	}
	return c, nil
}

// MustNew is New that panics on configuration errors; for tests and
// compile-time-constant configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the configured name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Capacity returns the total number of entries.
func (c *Cache) Capacity() int { return c.sets * c.ways }

// SetIndex maps a key to its set.
func (c *Cache) SetIndex(key uint64) int { return int(key % uint64(c.sets)) }

// Lookup probes the cache for the key at simulated time now. On a hit it
// updates replacement state, sets the Accessed bit, bumps hit counters and
// returns the resident block. On a miss it returns (nil, false).
func (c *Cache) Lookup(key uint64, now uint64) (*Block, bool) {
	c.lookups++
	set := c.SetIndex(key)
	ways := c.blocks[set]
	for w := range ways {
		b := &ways[w]
		if b.Valid && b.Key == key {
			c.hits++
			b.Accessed = true
			b.Hits++
			b.LastHitTime = now
			c.repl[set].Touch(w)
			return b, true
		}
	}
	return nil, false
}

// Probe checks residency without touching replacement state, the Accessed
// bit or statistics. Mirror structures and tests use it.
func (c *Cache) Probe(key uint64) (*Block, bool) {
	set := c.SetIndex(key)
	ways := c.blocks[set]
	for w := range ways {
		b := &ways[w]
		if b.Valid && b.Key == key {
			return b, true
		}
	}
	return nil, false
}

// Victim reports the block that a Fill for key would evict, without
// changing any state. The boolean is false when an invalid way would absorb
// the fill (no eviction).
func (c *Cache) Victim(key uint64) (Block, bool) {
	set := c.SetIndex(key)
	ways := c.blocks[set]
	for w := range ways {
		if !ways[w].Valid {
			return Block{}, false
		}
	}
	if w, ok := c.deadMarked(set); ok {
		return ways[w], true
	}
	return ways[c.repl[set].Victim()], true
}

// Fill allocates an entry for the key, evicting if necessary, and returns
// a copy of the evicted block (evicted=false when an invalid way was used).
// The new block's metadata starts clean except for fields the caller sets
// afterwards through the returned pointer.
func (c *Cache) Fill(key uint64, hint policy.InsertHint, now uint64) (nb *Block, victim Block, evicted bool) {
	c.fills++
	set := c.SetIndex(key)
	ways := c.blocks[set]
	way := -1
	for w := range ways {
		if !ways[w].Valid {
			way = w
			break
		}
	}
	if way < 0 {
		if w, ok := c.deadMarked(set); ok {
			way = w
		} else {
			way = c.repl[set].Victim()
		}
		victim = ways[way]
		evicted = true
		c.evictions++
	}
	ways[way] = Block{
		Valid:    true,
		Key:      key,
		FillTime: now,
	}
	c.repl[set].Insert(way, hint)
	return &ways[way], victim, evicted
}

// deadMarked returns a way whose block carries DeadMark, preferring the
// replacement policy's own victim when that block is also dead-marked.
func (c *Cache) deadMarked(set int) (int, bool) {
	pv := c.repl[set].Victim()
	if c.blocks[set][pv].DeadMark {
		return pv, true
	}
	for w := range c.blocks[set] {
		if c.blocks[set][w].DeadMark {
			return w, true
		}
	}
	return 0, false
}

// RecordBypass counts a fill that a predictor suppressed.
func (c *Cache) RecordBypass() { c.bypasses++ }

// Invalidate removes the key if resident, returning a copy of the removed
// block. Used for inclusive-LLC back-invalidation.
func (c *Cache) Invalidate(key uint64) (Block, bool) {
	set := c.SetIndex(key)
	ways := c.blocks[set]
	for w := range ways {
		if ways[w].Valid && ways[w].Key == key {
			old := ways[w]
			ways[w] = Block{}
			c.repl[set].Invalidate(w)
			return old, true
		}
	}
	return Block{}, false
}

// ForEachInSet visits every valid block in the set containing key.
// Predictors with per-set bookkeeping (AIP) use it on the access path.
func (c *Cache) ForEachInSet(key uint64, fn func(way int, b *Block)) {
	set := c.SetIndex(key)
	for w := range c.blocks[set] {
		if c.blocks[set][w].Valid {
			fn(w, &c.blocks[set][w])
		}
	}
}

// ForEach visits every valid block. Samplers use it to snapshot residency.
func (c *Cache) ForEach(fn func(set, way int, b *Block)) {
	for s := range c.blocks {
		for w := range c.blocks[s] {
			if c.blocks[s][w].Valid {
				fn(s, w, &c.blocks[s][w])
			}
		}
	}
}

// BumpSetCounters lets predictors (AIP) advance the per-set access-interval
// counters: every valid block in key's set except key itself gets
// AIPCount+1 (saturating).
func (c *Cache) BumpSetCounters(key uint64) {
	set := c.SetIndex(key)
	for w := range c.blocks[set] {
		b := &c.blocks[set][w]
		if b.Valid && b.Key != key && b.AIPCount < ^uint16(0) {
			b.AIPCount++
		}
	}
}

// Stats is a snapshot of the cache's internal counters.
type Stats struct {
	Lookups   uint64
	Hits      uint64
	Misses    uint64
	Fills     uint64
	Bypasses  uint64
	Evictions uint64
}

// Stats returns a snapshot of activity counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Lookups:   c.lookups,
		Hits:      c.hits,
		Misses:    c.lookups - c.hits,
		Fills:     c.fills,
		Bypasses:  c.bypasses,
		Evictions: c.evictions,
	}
}

// ResetStats zeroes the activity counters (warmup support) without
// touching cache contents.
func (c *Cache) ResetStats() {
	c.lookups, c.hits, c.fills, c.bypasses, c.evictions = 0, 0, 0, 0, 0
}
