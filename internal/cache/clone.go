package cache

import (
	"fmt"

	"repro/internal/policy"
)

// Clone returns a deep copy of the cache: contents, packed valid/dead bit
// words, replacement state and statistics. The clone shares no mutable
// state with the original, so both can be stepped independently — the
// foundation of warm-state forking (one warmed structure, many consumers).
//
// Non-LRU replacement state must implement policy.SetCloner; otherwise the
// clone would alias live per-set state and Clone fails loudly.
func (c *Cache) Clone() (*Cache, error) {
	n := &Cache{
		name:      c.name,
		sets:      c.sets,
		ways:      c.ways,
		setMask:   c.setMask,
		pow2:      c.pow2,
		fullMask:  c.fullMask,
		tags:      append([]uint64(nil), c.tags...),
		blocks:    append([]Block(nil), c.blocks...),
		live:      append([]uint64(nil), c.live...),
		dead:      append([]uint64(nil), c.dead...),
		lookups:   c.lookups,
		hits:      c.hits,
		fills:     c.fills,
		bypasses:  c.bypasses,
		evictions: c.evictions,
	}
	if c.lruStamp != nil {
		n.lruStamp = append([]uint64(nil), c.lruStamp...)
		n.lruClock = append([]uint64(nil), c.lruClock...)
		return n, nil
	}
	n.repl = make([]policy.Set, len(c.repl))
	shared := make(map[any]any)
	for i, s := range c.repl {
		sc, ok := s.(policy.SetCloner)
		if !ok {
			return nil, fmt.Errorf("cache %q: replacement state %T is not cloneable", c.name, s)
		}
		n.repl[i] = sc.CloneSet(shared)
	}
	return n, nil
}
