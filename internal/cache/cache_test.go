package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/policy"
)

func mk(t *testing.T, sets, ways int) *Cache {
	t.Helper()
	c, err := New(Config{Name: "test", Sets: sets, Ways: ways})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New(Config{Sets: 0, Ways: 4}); err == nil {
		t.Error("Sets=0 accepted")
	}
	if _, err := New(Config{Sets: 4, Ways: 0}); err == nil {
		t.Error("Ways=0 accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad config did not panic")
		}
	}()
	MustNew(Config{})
}

func TestLookupMissThenHit(t *testing.T) {
	c := mk(t, 4, 2)
	if _, ok := c.Lookup(42, 1); ok {
		t.Fatal("hit in empty cache")
	}
	nb, _, ev := c.Fill(42, policy.InsertMRU, 2)
	if ev {
		t.Fatal("eviction from empty set")
	}
	if nb.Key != 42 || !nb.Valid || nb.FillTime != 2 {
		t.Fatalf("bad new block: %+v", *nb)
	}
	b, ok := c.Lookup(42, 5)
	if !ok {
		t.Fatal("miss after fill")
	}
	if !b.Accessed || b.Hits != 1 || b.LastHitTime != 5 {
		t.Fatalf("hit metadata wrong: %+v", *b)
	}
	st := c.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

func TestFillEvictsLRU(t *testing.T) {
	c := mk(t, 1, 2)
	c.Fill(10, policy.InsertMRU, 0)
	c.Fill(20, policy.InsertMRU, 0)
	c.Lookup(10, 1) // 20 becomes LRU
	_, victim, ev := c.Fill(30, policy.InsertMRU, 2)
	if !ev || victim.Key != 20 {
		t.Fatalf("victim = %+v (evicted=%v), want key 20", victim, ev)
	}
	if _, ok := c.Probe(10); !ok {
		t.Error("10 should survive")
	}
	if _, ok := c.Probe(20); ok {
		t.Error("20 should be gone")
	}
}

func TestVictimPreview(t *testing.T) {
	c := mk(t, 1, 2)
	if _, would := c.Victim(99); would {
		t.Error("empty set should not predict an eviction")
	}
	c.Fill(1, policy.InsertMRU, 0)
	c.Fill(2, policy.InsertMRU, 0)
	v, would := c.Victim(99)
	if !would || v.Key != 1 {
		t.Errorf("Victim = %+v (%v), want key 1", v, would)
	}
	// Preview must not mutate: repeated calls agree.
	v2, _ := c.Victim(99)
	if v2.Key != v.Key {
		t.Error("Victim preview mutated state")
	}
}

func TestDeadMarkPriority(t *testing.T) {
	c := mk(t, 1, 4)
	for k := uint64(1); k <= 4; k++ {
		c.Fill(k, policy.InsertMRU, 0)
	}
	if !c.MarkDeadKey(3) {
		t.Fatal("MarkDeadKey(3) reported non-resident")
	}
	if !c.DeadMarked(3) {
		t.Fatal("DeadMarked(3) false after MarkDeadKey")
	}
	c.Lookup(1, 1) // make 1 MRU; LRU victim would be 2
	_, victim, ev := c.Fill(5, policy.InsertMRU, 2)
	if !ev || victim.Key != 3 {
		t.Errorf("victim = %+v, want dead-marked key 3", victim)
	}
}

func TestDeadMarkClearedOnHit(t *testing.T) {
	c := mk(t, 1, 2)
	c.Fill(1, policy.InsertMRU, 0)
	c.MarkDeadKey(1)
	if _, ok := c.Lookup(1, 1); !ok {
		t.Fatal("miss on resident key")
	}
	if c.DeadMarked(1) {
		t.Error("hit did not revive the dead-marked entry")
	}
}

func TestMarkDeadIgnoresInvalidWay(t *testing.T) {
	c := mk(t, 1, 2)
	c.Fill(1, policy.InsertMRU, 0)
	c.MarkDead(1, 1)  // way 1 is invalid
	c.MarkDead(1, -1) // out of range
	c.MarkDead(1, 7)  // out of range
	if c.DeadMarked(1) {
		t.Error("invalid-way MarkDead leaked onto a resident entry")
	}
	if c.MarkDeadKey(99) {
		t.Error("MarkDeadKey on absent key reported resident")
	}
}

func TestDeadMarkPrefersPolicyVictim(t *testing.T) {
	c := mk(t, 1, 2)
	c.Fill(1, policy.InsertMRU, 0)
	c.Fill(2, policy.InsertMRU, 0)
	c.MarkDeadKey(1)
	c.MarkDeadKey(2)
	// Policy victim is 1 (LRU); with both dead-marked, pick the policy's.
	_, victim, _ := c.Fill(3, policy.InsertMRU, 1)
	if victim.Key != 1 {
		t.Errorf("victim = %d, want policy victim 1", victim.Key)
	}
}

func TestInvalidate(t *testing.T) {
	c := mk(t, 2, 2)
	c.Fill(4, policy.InsertMRU, 0)
	old, ok := c.Invalidate(4)
	if !ok || old.Key != 4 {
		t.Fatalf("Invalidate = %+v, %v", old, ok)
	}
	if _, ok := c.Probe(4); ok {
		t.Error("still resident after Invalidate")
	}
	if _, ok := c.Invalidate(4); ok {
		t.Error("double Invalidate reported success")
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c := mk(t, 1, 2)
	c.Fill(1, policy.InsertMRU, 0)
	c.Fill(2, policy.InsertMRU, 0)
	before := c.Stats()
	for i := 0; i < 10; i++ {
		c.Probe(1)
	}
	if c.Stats() != before {
		t.Error("Probe changed statistics")
	}
	// Probing 1 repeatedly must not promote it: 1 is still LRU victim.
	_, victim, _ := c.Fill(3, policy.InsertMRU, 1)
	if victim.Key != 1 {
		t.Errorf("victim = %d, want 1 (Probe must not touch LRU)", victim.Key)
	}
}

func TestBumpSetCounters(t *testing.T) {
	c := mk(t, 1, 3)
	c.Fill(1, policy.InsertMRU, 0)
	c.Fill(2, policy.InsertMRU, 0)
	c.BumpSetCounters(1)
	b1, _ := c.Probe(1)
	b2, _ := c.Probe(2)
	if b1.AIPCount != 0 || b2.AIPCount != 1 {
		t.Errorf("counters = %d,%d; want 0,1", b1.AIPCount, b2.AIPCount)
	}
	// Counters saturate rather than wrap.
	b2.AIPCount = ^uint16(0)
	c.BumpSetCounters(1)
	if b2.AIPCount != ^uint16(0) {
		t.Errorf("AIPCount wrapped to %d", b2.AIPCount)
	}
}

func TestForEachVisitsValidOnly(t *testing.T) {
	c := mk(t, 8, 2)
	keys := []uint64{3, 12, 21} // distinct sets mod 8
	for _, k := range keys {
		c.Fill(k, policy.InsertMRU, 0)
	}
	seen := map[uint64]bool{}
	c.ForEach(func(_, _ int, b *Block) { seen[b.Key] = true })
	if len(seen) != len(keys) {
		t.Fatalf("visited %d blocks, want %d", len(seen), len(keys))
	}
	for _, k := range keys {
		if !seen[k] {
			t.Errorf("key %d not visited", k)
		}
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := mk(t, 2, 2)
	c.Fill(7, policy.InsertMRU, 0)
	c.Lookup(7, 1)
	c.ResetStats()
	if st := c.Stats(); st.Lookups != 0 || st.Hits != 0 || st.Fills != 0 {
		t.Errorf("stats not reset: %+v", st)
	}
	if _, ok := c.Probe(7); !ok {
		t.Error("ResetStats dropped contents")
	}
}

// Property: after any fill sequence, residency never exceeds capacity and
// every resident key is findable.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		c := MustNew(Config{Name: "p", Sets: 4, Ways: 2})
		for _, k := range keys {
			if _, ok := c.Lookup(uint64(k), 0); !ok {
				c.Fill(uint64(k), policy.InsertMRU, 0)
			}
		}
		count := 0
		ok := true
		c.ForEach(func(_, _ int, b *Block) {
			count++
			if _, found := c.Probe(b.Key); !found {
				ok = false
			}
			if c.SetIndex(b.Key) >= c.Sets() {
				ok = false
			}
		})
		return ok && count <= c.Capacity()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a key is resident in exactly one way of exactly its set.
func TestSingleResidencyProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		c := MustNew(Config{Name: "p", Sets: 8, Ways: 4})
		for _, k := range keys {
			if _, ok := c.Lookup(uint64(k), 0); !ok {
				c.Fill(uint64(k), policy.InsertMRU, 0)
			}
		}
		counts := map[uint64]int{}
		c.ForEach(func(set, _ int, b *Block) {
			counts[b.Key]++
			if set != c.SetIndex(b.Key) {
				counts[b.Key] += 100 // flag wrong set
			}
		})
		for _, n := range counts {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: hits + misses == lookups, fills ≥ evictions.
func TestStatsBalanceProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		c := MustNew(Config{Name: "p", Sets: 2, Ways: 2})
		for _, k := range keys {
			if _, ok := c.Lookup(uint64(k), 0); !ok {
				c.Fill(uint64(k), policy.InsertMRU, 0)
			}
		}
		st := c.Stats()
		return st.Hits+st.Misses == st.Lookups && st.Fills >= st.Evictions
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSRRIPPolicyIntegration(t *testing.T) {
	c := MustNew(Config{Name: "srrip", Sets: 1, Ways: 2, Policy: policy.SRRIP{}})
	c.Fill(1, policy.InsertMRU, 0)
	c.Fill(2, policy.InsertMRU, 0)
	c.Lookup(1, 1)
	_, victim, ev := c.Fill(3, policy.InsertMRU, 2)
	if !ev || victim.Key != 2 {
		t.Errorf("victim = %+v, want key 2 under SRRIP", victim)
	}
}

// BenchmarkLLCFill measures a fill into a full LLC-geometry cache (2048
// sets, 16 ways): LRU victim scan, eviction and block install.
func BenchmarkLLCFill(b *testing.B) {
	c, err := New(Config{Name: "LLC", Sets: 2048, Ways: 16})
	if err != nil {
		b.Fatal(err)
	}
	warm := c.Sets() * c.Ways()
	for i := 0; i < warm; i++ {
		c.Fill(uint64(i), policy.InsertMRU, uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(uint64(warm+i), policy.InsertMRU, uint64(warm+i))
	}
}
