package cache

import "repro/internal/ckpt"

// EncodeState serializes the cache's full mutable state — entries, packed
// valid/dead bit words, inlined LRU state and statistics — for warm-state
// checkpointing. Geometry is stamped so DecodeState can reject a checkpoint
// taken under a different configuration. Non-LRU replacement state is not
// serializable (policy sets are opaque); encoding such a cache latches an
// error.
func (c *Cache) EncodeState(w *ckpt.Writer) {
	w.Mark("cache:" + c.name)
	if c.lruStamp == nil {
		w.Failf("cache %q: non-LRU replacement state cannot be checkpointed", c.name)
		return
	}
	w.U64(uint64(c.sets))
	w.U64(uint64(c.ways))
	w.Binary(c.tags)
	w.Binary(c.blocks)
	w.Binary(c.live)
	w.Binary(c.dead)
	w.Binary(c.lruStamp)
	w.Binary(c.lruClock)
	w.U64(c.lookups)
	w.U64(c.hits)
	w.U64(c.fills)
	w.U64(c.bypasses)
	w.U64(c.evictions)
}

// DecodeState restores state written by EncodeState into a cache built with
// the identical configuration.
func (c *Cache) DecodeState(r *ckpt.Reader) error {
	r.Expect("cache:" + c.name)
	if c.lruStamp == nil {
		r.Failf("cache %q: non-LRU replacement state cannot be checkpointed", c.name)
		return r.Err()
	}
	if sets, ways := r.U64(), r.U64(); r.Err() == nil &&
		(sets != uint64(c.sets) || ways != uint64(c.ways)) {
		r.Failf("cache %q: checkpoint geometry %d×%d does not match configured %d×%d",
			c.name, sets, ways, c.sets, c.ways)
	}
	r.Binary(c.tags)
	r.Binary(c.blocks)
	r.Binary(c.live)
	r.Binary(c.dead)
	r.Binary(c.lruStamp)
	r.Binary(c.lruClock)
	c.lookups = r.U64()
	c.hits = r.U64()
	c.fills = r.U64()
	c.bypasses = r.U64()
	c.evictions = r.U64()
	return r.Err()
}
