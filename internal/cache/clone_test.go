package cache

import (
	"testing"

	"repro/internal/policy"
)

// warmClone builds a small LRU cache, fills it with a mixed pattern (some
// ways dead-marked, some sets partially valid) and returns it with a clone.
func warmClone(t *testing.T) (*Cache, *Cache) {
	t.Helper()
	c, err := New(Config{Name: "t", Sets: 8, Ways: 4})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 40; k++ {
		if _, ok := c.Lookup(k, k); !ok {
			c.Fill(k, policy.InsertMRU, k)
		}
		if k%3 == 0 {
			c.MarkDeadKey(k)
		}
	}
	n, err := c.Clone()
	if err != nil {
		t.Fatal(err)
	}
	return c, n
}

// snapshotBits captures the packed valid/dead bit words and every block.
func snapshotBits(c *Cache) ([]uint64, []uint64, []Block, Stats) {
	return append([]uint64(nil), c.live...),
		append([]uint64(nil), c.dead...),
		append([]Block(nil), c.blocks...),
		c.Stats()
}

// TestClonePackedBitWordsRoundTrip: the per-set valid and dead-mark words
// must survive Clone exactly — every way's Valid/dead state, not just the
// block payloads.
func TestClonePackedBitWordsRoundTrip(t *testing.T) {
	c, n := warmClone(t)
	live0, dead0, blocks0, stats0 := snapshotBits(c)
	live1, dead1, blocks1, stats1 := snapshotBits(n)
	for s := range live0 {
		if live0[s] != live1[s] {
			t.Errorf("set %d: live word %#x != clone %#x", s, live0[s], live1[s])
		}
		if dead0[s] != dead1[s] {
			t.Errorf("set %d: dead word %#x != clone %#x", s, dead0[s], dead1[s])
		}
	}
	for i := range blocks0 {
		if blocks0[i] != blocks1[i] {
			t.Errorf("block %d: %+v != clone %+v", i, blocks0[i], blocks1[i])
		}
	}
	if stats0 != stats1 {
		t.Errorf("stats %+v != clone %+v", stats0, stats1)
	}
}

// TestCloneSharesNoMutableState: mutating the clone (fills, evictions,
// dead-marks, invalidations) must leave the parent bit-for-bit untouched,
// and vice versa.
func TestCloneSharesNoMutableState(t *testing.T) {
	c, n := warmClone(t)
	live0, dead0, blocks0, stats0 := snapshotBits(c)

	for k := uint64(100); k < 160; k++ {
		if _, ok := n.Lookup(k, k); !ok {
			n.Fill(k, policy.InsertMRU, k)
		}
		n.MarkDeadKey(k)
		if k%2 == 0 {
			n.Invalidate(k)
		}
	}

	live1, dead1, blocks1, stats1 := snapshotBits(c)
	for s := range live0 {
		if live0[s] != live1[s] || dead0[s] != dead1[s] {
			t.Fatalf("set %d: parent bit words changed by mutating the clone", s)
		}
	}
	for i := range blocks0 {
		if blocks0[i] != blocks1[i] {
			t.Fatalf("block %d: parent payload changed by mutating the clone", i)
		}
	}
	if stats0 != stats1 {
		t.Fatalf("parent stats changed by mutating the clone: %+v -> %+v", stats0, stats1)
	}

	// And the reverse direction: parent mutations invisible to the clone.
	liveN, deadN, blocksN, statsN := snapshotBits(n)
	for k := uint64(200); k < 230; k++ {
		c.Fill(k, policy.InsertMRU, k)
	}
	liveN2, deadN2, blocksN2, statsN2 := snapshotBits(n)
	for s := range liveN {
		if liveN[s] != liveN2[s] || deadN[s] != deadN2[s] {
			t.Fatalf("set %d: clone bit words changed by mutating the parent", s)
		}
	}
	for i := range blocksN {
		if blocksN[i] != blocksN2[i] {
			t.Fatalf("block %d: clone payload changed by mutating the parent", i)
		}
	}
	if statsN != statsN2 {
		t.Fatalf("clone stats changed by mutating the parent")
	}
}

// TestCloneDIPSharedPSEL: DIP's set-dueling PSEL counter is shared between
// that cache's sets by design; Clone must preserve the sharing topology
// inside the clone without aliasing the original's counter.
func TestCloneDIPSharedPSEL(t *testing.T) {
	c, err := New(Config{Name: "dip", Sets: 16, Ways: 4, Policy: policy.NewDIP()})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 200; k++ {
		if _, ok := c.Lookup(k, k); !ok {
			c.Fill(k, policy.InsertMRU, k)
		}
	}
	n, err := c.Clone()
	if err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	// Drive the clone hard; the original's stats and victim choices must
	// not move.
	for k := uint64(300); k < 600; k++ {
		if _, ok := n.Lookup(k, k); !ok {
			n.Fill(k, policy.InsertMRU, k)
		}
	}
	if c.Stats() != before {
		t.Error("original DIP cache perturbed by driving the clone")
	}
}
