package obs

import (
	"errors"
	"io"
	"testing"

	"repro/internal/faultio"
)

// metricsObserver builds an observer holding enough state that its JSON
// document exceeds a small sink capacity.
func metricsObserver() *Observer {
	o := &Observer{Metrics: NewRegistry(), Interval: NewIntervalRecorder(10)}
	o.Metrics.Counter("events").Add(3)
	o.Interval.SetRun("run")
	for i := 0; i < 8; i++ {
		o.Interval.Add(IntervalSample{Access: uint64(i * 10)})
	}
	return o
}

// TestWriteMetricsJSONFullDisk: a metrics sink that fills up mid-document
// (full disk at flush time) must surface the write error to the caller
// instead of reporting a successful flush over a truncated JSON file.
func TestWriteMetricsJSONFullDisk(t *testing.T) {
	err := metricsObserver().WriteMetricsJSON(faultio.NewFailingWriter(nil, 64, nil))
	if !errors.Is(err, faultio.ErrNoSpace) {
		t.Fatalf("err = %v, want wrapped faultio.ErrNoSpace", err)
	}
}

// TestWriteMetricsJSONHealthySink is the control: the same document on an
// uncapped sink must succeed.
func TestWriteMetricsJSONHealthySink(t *testing.T) {
	if err := metricsObserver().WriteMetricsJSON(faultio.NewFailingWriter(nil, 1<<20, nil)); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
}

// recordingSink is an openSink product that remembers whether it was
// closed.
type recordingSink struct {
	io.Writer
	closed bool
}

func (r *recordingSink) Close() error {
	if r.closed {
		return errors.New("double close")
	}
	r.closed = true
	return nil
}

// TestFromFlagsOpenFailureClosesEarlierSinks: when the metrics sink fails
// to open, the trace sink opened just before must be closed before
// FromFlags returns — a failed setup must not leak file handles.
func TestFromFlagsOpenFailureClosesEarlierSinks(t *testing.T) {
	traceSink := &recordingSink{Writer: io.Discard}
	openErr := errors.New("permission denied")
	_, _, err := fromFlags("events.jsonl", "metrics.json", 100, func(path string) (io.WriteCloser, error) {
		if path == "metrics.json" {
			return nil, openErr
		}
		return traceSink, nil
	})
	if !errors.Is(err, openErr) {
		t.Fatalf("err = %v, want wrapped %v", err, openErr)
	}
	if !traceSink.closed {
		t.Fatal("trace sink leaked: not closed after metrics open failure")
	}
}

// TestFromFlagsFinishFullDisk: a metrics sink that fills up when finish
// writes the document (faultio's full-disk writer) must surface
// ErrNoSpace from finish, and the trace sink must still be closed.
func TestFromFlagsFinishFullDisk(t *testing.T) {
	traceSink := &recordingSink{Writer: io.Discard}
	metricsSink := &recordingSink{Writer: faultio.NewFailingWriter(nil, 64, nil)}
	o, finish, err := fromFlags("events.jsonl", "metrics.json", 100, func(path string) (io.WriteCloser, error) {
		if path == "metrics.json" {
			return metricsSink, nil
		}
		return traceSink, nil
	})
	if err != nil {
		t.Fatalf("fromFlags: %v", err)
	}
	// Enough registry state that the JSON document overflows 64 bytes.
	o.Metrics.Counter("events").Add(3)
	o.Metrics.Histogram("hist.lat").Observe(7)
	if err := finish(); !errors.Is(err, faultio.ErrNoSpace) {
		t.Fatalf("finish err = %v, want wrapped faultio.ErrNoSpace", err)
	}
	if !traceSink.closed || !metricsSink.closed {
		t.Fatalf("sinks not closed after failed finish: trace=%v metrics=%v",
			traceSink.closed, metricsSink.closed)
	}
}

// TestFromFlagsHealthy is the control: both sinks open and finish cleanly,
// and closing happens exactly once (recordingSink errors on double close).
func TestFromFlagsHealthy(t *testing.T) {
	sinks := map[string]*recordingSink{}
	o, finish, err := fromFlags("events.jsonl", "metrics.json", 100, func(path string) (io.WriteCloser, error) {
		s := &recordingSink{Writer: io.Discard}
		sinks[path] = s
		return s, nil
	})
	if err != nil {
		t.Fatalf("fromFlags: %v", err)
	}
	if o == nil || o.Tracer == nil || o.Metrics == nil || o.Interval == nil {
		t.Fatalf("observer incomplete: %+v", o)
	}
	if err := finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	for path, s := range sinks {
		if !s.closed {
			t.Fatalf("%s not closed", path)
		}
	}
}
