package obs

import (
	"errors"
	"testing"

	"repro/internal/faultio"
)

// metricsObserver builds an observer holding enough state that its JSON
// document exceeds a small sink capacity.
func metricsObserver() *Observer {
	o := &Observer{Metrics: NewRegistry(), Interval: NewIntervalRecorder(10)}
	o.Metrics.Counter("events").Add(3)
	o.Interval.SetRun("run")
	for i := 0; i < 8; i++ {
		o.Interval.Add(IntervalSample{Access: uint64(i * 10)})
	}
	return o
}

// TestWriteMetricsJSONFullDisk: a metrics sink that fills up mid-document
// (full disk at flush time) must surface the write error to the caller
// instead of reporting a successful flush over a truncated JSON file.
func TestWriteMetricsJSONFullDisk(t *testing.T) {
	err := metricsObserver().WriteMetricsJSON(faultio.NewFailingWriter(nil, 64, nil))
	if !errors.Is(err, faultio.ErrNoSpace) {
		t.Fatalf("err = %v, want wrapped faultio.ErrNoSpace", err)
	}
}

// TestWriteMetricsJSONHealthySink is the control: the same document on an
// uncapped sink must succeed.
func TestWriteMetricsJSONHealthySink(t *testing.T) {
	if err := metricsObserver().WriteMetricsJSON(faultio.NewFailingWriter(nil, 1<<20, nil)); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
}
