package obs

import (
	"fmt"
	"os"
	"strings"
)

// FromFlags builds the Observer behind the commands' shared observability
// flags. tracePath ("" disables tracing) selects the sink by extension —
// ".csv" writes CSV, anything else JSONL. metricsPath ("" disables)
// enables the metrics registry and interval recorder, sampling every
// interval accesses. When both paths are empty the observer is nil
// (fully disabled).
//
// The returned finish function flushes and closes the trace file and
// writes the metrics document; call it once after the last run.
func FromFlags(tracePath, metricsPath string, interval uint64) (*Observer, func() error, error) {
	if tracePath == "" && metricsPath == "" {
		return nil, func() error { return nil }, nil
	}
	o := &Observer{}
	var traceFile *os.File
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, nil, fmt.Errorf("obs: trace: %w", err)
		}
		traceFile = f
		var sink Sink
		if strings.HasSuffix(tracePath, ".csv") {
			sink = NewCSVSink(f)
		} else {
			sink = NewJSONLSink(f)
		}
		o.Tracer = NewTracer(0, sink)
	}
	if metricsPath != "" {
		o.Metrics = NewRegistry()
		o.Interval = NewIntervalRecorder(interval)
	}
	finish := func() error {
		var first error
		keep := func(err error) {
			if err != nil && first == nil {
				first = err
			}
		}
		if o.Tracer != nil {
			keep(o.Tracer.Close())
		}
		if traceFile != nil {
			keep(traceFile.Close())
		}
		if metricsPath != "" {
			f, err := os.Create(metricsPath)
			if err != nil {
				keep(fmt.Errorf("obs: metrics: %w", err))
			} else {
				keep(o.WriteMetricsJSON(f))
				keep(f.Close())
			}
		}
		return first
	}
	return o, finish, nil
}
