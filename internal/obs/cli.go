package obs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// FromFlags builds the Observer behind the commands' shared observability
// flags. tracePath ("" disables tracing) selects the sink by extension —
// ".csv" writes CSV, anything else JSONL. metricsPath ("" disables)
// enables the metrics registry and interval recorder, sampling every
// interval accesses. When both paths are empty the observer is nil
// (fully disabled).
//
// Both sinks are opened eagerly, so a bad path fails here rather than
// after a multi-minute grid; if a later sink fails to open, the ones
// already opened are closed before returning, so a failed FromFlags never
// leaks file handles.
//
// The returned finish function flushes and closes the trace file and
// writes the metrics document; call it once after the last run.
func FromFlags(tracePath, metricsPath string, interval uint64) (*Observer, func() error, error) {
	return fromFlags(tracePath, metricsPath, interval, func(path string) (io.WriteCloser, error) {
		return os.Create(path)
	})
}

// fromFlags is FromFlags with the sink opener injectable, so tests drive
// the open-failure and write-failure paths with faultio instead of real
// files.
func fromFlags(tracePath, metricsPath string, interval uint64, openSink func(string) (io.WriteCloser, error)) (*Observer, func() error, error) {
	if tracePath == "" && metricsPath == "" {
		return nil, func() error { return nil }, nil
	}
	o := &Observer{}
	var opened []io.Closer
	// closeOpened releases sinks in reverse open order, keeping every
	// error; used on both the failed-open path and by finish.
	closeOpened := func() error {
		var errs []error
		for i := len(opened) - 1; i >= 0; i-- {
			errs = append(errs, opened[i].Close())
		}
		return errors.Join(errs...)
	}
	open := func(path, kind string) (io.WriteCloser, error) {
		f, err := openSink(path)
		if err != nil {
			return nil, errors.Join(fmt.Errorf("obs: %s: %w", kind, err), closeOpened())
		}
		opened = append(opened, f)
		return f, nil
	}

	if tracePath != "" {
		f, err := open(tracePath, "trace")
		if err != nil {
			return nil, nil, err
		}
		var sink Sink
		if strings.HasSuffix(tracePath, ".csv") {
			sink = NewCSVSink(f)
		} else {
			sink = NewJSONLSink(f)
		}
		o.Tracer = NewTracer(0, sink)
	}
	var metricsFile io.WriteCloser
	if metricsPath != "" {
		f, err := open(metricsPath, "metrics")
		if err != nil {
			return nil, nil, err
		}
		metricsFile = f
		o.Metrics = NewRegistry()
		o.Interval = NewIntervalRecorder(interval)
	}
	finish := func() error {
		var errs []error
		if o.Tracer != nil {
			errs = append(errs, o.Tracer.Close())
		}
		if metricsFile != nil {
			errs = append(errs, o.WriteMetricsJSON(metricsFile))
		}
		errs = append(errs, closeOpened())
		return errors.Join(errs...)
	}
	return o, finish, nil
}
