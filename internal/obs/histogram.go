package obs

import (
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the number of buckets in a Histogram: one per power of
// two. Bucket i (i < 64) counts observations v with bits.Len64(v) == i,
// i.e. v in [2^(i-1), 2^i); the last bucket catches v ≥ 2^63.
const HistBuckets = 65

// Histogram is a log-bucketed distribution metric. Values land in the
// bucket of their bit length, so the bucket boundaries are 0, 1, 3, 7,
// 15, ... (upper bound of bucket i is 2^i − 1): three orders of magnitude
// of simulated latency fit in a dozen buckets with no configuration.
//
// Observe is wait-free (one atomic add per counter), so a simulation
// goroutine can observe while an HTTP handler snapshots the same
// histogram; counts are commutative, so snapshots taken after all runs
// join are identical whatever the worker-pool width — the same
// determinism contract the registry's counters have.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// histBucket returns the bucket index for a value.
func histBucket(v uint64) int { return bits.Len64(v) }

// HistBucketBound returns the inclusive upper bound of finite bucket i
// (values v ≤ 2^i − 1 fall in buckets 0..i). The last bucket
// (HistBuckets−1) has no finite bound; callers render it as +Inf.
func HistBucketBound(i int) uint64 { return 1<<uint(i) - 1 }

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[histBucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Buckets are per-bucket (not cumulative) counts; Count is their total and
// Sum the sum of observed values.
type HistogramSnapshot struct {
	Buckets [HistBuckets]uint64 `json:"buckets"`
	Count   uint64              `json:"count"`
	Sum     uint64              `json:"sum"`
}

// Snapshot copies the histogram's current state. Concurrent Observes may
// straddle the copy (a value counted in Count but not yet in a bucket, or
// vice versa); once observers quiesce the snapshot is exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// Delta returns s minus prev, bucket-wise.
func (s HistogramSnapshot) Delta(prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum}
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
	}
	return d
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// MaxBucket returns the index of the highest non-empty bucket (−1 when the
// histogram is empty). Expositions use it to stop printing trailing zero
// buckets.
func (s HistogramSnapshot) MaxBucket() int {
	for i := len(s.Buckets) - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return i
		}
	}
	return -1
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// bucket boundary below which at least q·Count observations fall. Log
// buckets make this a factor-of-two estimate, which is what live
// monitoring needs.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target >= s.Count {
		target = s.Count - 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum > target {
			if i == len(s.Buckets)-1 {
				return 1 << 63 // open-ended last bucket
			}
			return HistBucketBound(i)
		}
	}
	return HistBucketBound(len(s.Buckets) - 1)
}
