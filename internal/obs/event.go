package obs

// Kind identifies a traced hook point. The set mirrors the paper's
// Figure 6 (LLT side) and Figure 8 (LLC side) flowcharts plus the
// bookkeeping events the learning-curve analysis needs.
type Kind uint8

const (
	// EvRunStart opens one simulation run; Label carries
	// "workload/setup". Events that follow belong to this run until the
	// next EvRunStart (the stream is single-threaded and sequential).
	EvRunStart Kind = iota
	// EvLLTFill is an LLT allocation after a page walk. Key = VPN,
	// Aux = PFN, PC = triggering instruction.
	EvLLTFill
	// EvLLTBypass is a fill suppressed by a DOA prediction (Fig. 6b).
	// Key = VPN, Aux = PFN, PC = triggering instruction.
	EvLLTBypass
	// EvLLTEvict is an LLT eviction. Key = victim VPN, Aux = victim PFN,
	// Flag = victim's Accessed bit (false ⇒ the entry died on arrival).
	EvLLTEvict
	// EvShadowHit is an LLT miss served by the predictor's shadow table
	// (a detected misprediction, Fig. 6a). Key = VPN, Aux = PFN.
	EvShadowHit
	// EvPHISTFlush is dpPred's negative-feedback flush of one pHIST
	// column. Key = column index.
	EvPHISTFlush
	// EvPFQPush is a predicted-DOA frame entering cbPred's PFN filter
	// queue (Fig. 6b → Fig. 8b coupling). Key = PFN.
	EvPFQPush
	// EvLLCFill is an LLC allocation. Key = block number, PC = triggering
	// instruction, Flag = the block's DP bit (filled under a PFQ match).
	EvLLCFill
	// EvLLCBypass is an LLC fill suppressed by a DOA prediction
	// (Fig. 8b). Key = block number, PC = triggering instruction.
	EvLLCBypass
	// EvLLCEvict is an LLC eviction. Key = victim block number,
	// Flag = victim's Accessed bit.
	EvLLCEvict
	// EvWalk is a completed page walk. Key = VPN, Aux = walk latency in
	// cycles (queueing included), Flag = the walk queued behind the
	// single walker.
	EvWalk
	// EvInterval marks an interval-sampler emission. Key = sample index.
	EvInterval

	numKinds
)

var kindNames = [numKinds]string{
	EvRunStart:   "run_start",
	EvLLTFill:    "llt_fill",
	EvLLTBypass:  "llt_bypass",
	EvLLTEvict:   "llt_evict",
	EvShadowHit:  "shadow_hit",
	EvPHISTFlush: "phist_flush",
	EvPFQPush:    "pfq_push",
	EvLLCFill:    "llc_fill",
	EvLLCBypass:  "llc_bypass",
	EvLLCEvict:   "llc_evict",
	EvWalk:       "walk",
	EvInterval:   "interval",
}

// String returns the kind's wire name (the JSONL/CSV "kind" column).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one traced occurrence. Key/Aux/PC/Flag are kind-dependent (see
// the Kind constants); Seq, Cycle and Access are stamped by the Tracer.
type Event struct {
	// Seq is the tracer's monotone sequence number.
	Seq uint64
	// Cycle is the core cycle at emission.
	Cycle uint64
	// Access is the ordinal of the trace record being processed.
	Access uint64
	// Kind identifies the hook point.
	Kind Kind
	// Key is the event's subject (VPN, block number, PFN, column, ...).
	Key uint64
	// Aux is secondary payload (PFN, latency, ...).
	Aux uint64
	// PC is the triggering instruction, when one exists.
	PC uint64
	// Flag is kind-dependent (victim Accessed bit, DP bit, queued walk).
	Flag bool
	// Label annotates run_start events with "workload/setup".
	Label string
}
