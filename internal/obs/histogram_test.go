package obs

import (
	"reflect"
	"sync"
	"testing"
)

// TestHistogramBucketing pins the log-bucket scheme: values land in the
// bucket of their bit length, bucket i's inclusive upper bound is 2^i − 1.
func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9}, {1 << 40, 41},
	}
	var sum uint64
	for _, c := range cases {
		h.Observe(c.v)
		sum += c.v
	}
	s := h.Snapshot()
	if s.Count != uint64(len(cases)) {
		t.Fatalf("Count = %d, want %d", s.Count, len(cases))
	}
	if s.Sum != sum {
		t.Fatalf("Sum = %d, want %d", s.Sum, sum)
	}
	want := HistogramSnapshot{Count: s.Count, Sum: s.Sum}
	for _, c := range cases {
		want.Buckets[c.bucket]++
	}
	if s != want {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want.Buckets)
	}
	for i, bound := range map[int]uint64{0: 0, 1: 1, 2: 3, 3: 7, 4: 15, 10: 1023} {
		if got := HistBucketBound(i); got != bound {
			t.Errorf("HistBucketBound(%d) = %d, want %d", i, got, bound)
		}
	}
}

// TestHistogramSnapshotViews covers Delta, Mean, MaxBucket and Quantile on
// a known distribution.
func TestHistogramSnapshotViews(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(3) // bucket 2
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000) // bucket 10
	}
	s := h.Snapshot()
	if got := s.Mean(); got != (90*3+10*1000)/100.0 {
		t.Fatalf("Mean = %v", got)
	}
	if got := s.MaxBucket(); got != 10 {
		t.Fatalf("MaxBucket = %d, want 10", got)
	}
	// 50th percentile is inside bucket 2 (bound 3); 99th inside bucket 10
	// (bound 1023).
	if got := s.Quantile(0.5); got != 3 {
		t.Fatalf("Quantile(0.5) = %d, want 3", got)
	}
	if got := s.Quantile(0.99); got != 1023 {
		t.Fatalf("Quantile(0.99) = %d, want 1023", got)
	}
	h.Observe(3)
	d := h.Snapshot().Delta(s)
	if d.Count != 1 || d.Sum != 3 || d.Buckets[2] != 1 {
		t.Fatalf("Delta = %+v", d)
	}
	var empty HistogramSnapshot
	if empty.Mean() != 0 || empty.MaxBucket() != -1 || empty.Quantile(0.5) != 0 {
		t.Fatal("empty-snapshot views not zero-valued")
	}
}

// TestHistogramConcurrentObserve: concurrent observers must lose nothing —
// the same commutativity that makes jobs=1 and jobs=8 grids produce
// identical snapshots.
func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers, each = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(uint64(w))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*each {
		t.Fatalf("Count = %d, want %d", s.Count, workers*each)
	}
	var wantSum uint64
	for w := 0; w < workers; w++ {
		wantSum += uint64(w) * each
	}
	if s.Sum != wantSum {
		t.Fatalf("Sum = %d, want %d", s.Sum, wantSum)
	}
}

// BenchmarkHistogramObserve is CI-gated (benchstat, >10% fails): Observe
// sits on the simulator's per-access path whenever metrics are attached,
// so it must stay a few atomic adds and zero allocations.
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

// TestRegistryHistogramSharing: a histogram created through a Sub view
// lives in the shared store (the ForkRun merge contract) and the flat
// Snapshot carries its scalar views.
func TestRegistryHistogramSharing(t *testing.T) {
	reg := NewRegistry()
	child := reg.Sub("cc/dpPred/")
	child.Histogram("hist.mem_latency").Observe(40)
	child.Histogram("hist.mem_latency").Observe(60)

	hists := reg.Histograms()
	hs, ok := hists["cc/dpPred/hist.mem_latency"]
	if !ok {
		t.Fatalf("histogram not visible from parent registry: %v", reflect.ValueOf(hists).MapKeys())
	}
	if hs.Count != 2 || hs.Sum != 100 {
		t.Fatalf("snapshot = %+v", hs)
	}
	snap := reg.Snapshot()
	if snap["cc/dpPred/hist.mem_latency.count"] != 2 ||
		snap["cc/dpPred/hist.mem_latency.sum"] != 100 ||
		snap["cc/dpPred/hist.mem_latency.mean"] != 50 {
		t.Fatalf("flattened scalar views wrong: %v", snap)
	}
	// Same name through the same view returns the same instance.
	if child.Histogram("hist.mem_latency") != child.Histogram("hist.mem_latency") {
		t.Fatal("Histogram not idempotent")
	}
}
