package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a metric that can move in both directions.
type Gauge struct {
	v float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// registryState is the shared backing store of a Registry and all its
// Sub views.
type registryState struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	probes   map[string]func() float64
	hists    map[string]*Histogram
}

// Registry is a namespace of named metrics. Components register counters,
// gauges, or probe functions (closures reading an existing counter, so the
// owner keeps its state layout); Snapshot evaluates everything into a flat
// name → value map. Sub returns a prefixed view sharing the same store, so
// per-run scopes ("cactusADM/dpPred/llt.misses") coexist in one registry.
type Registry struct {
	state  *registryState
	prefix string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{state: &registryState{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		probes:   make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
	}}
}

// Sub returns a view of the registry that prepends prefix to every name.
func (r *Registry) Sub(prefix string) *Registry {
	return &Registry{state: r.state, prefix: r.prefix + prefix}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	name = r.prefix + name
	r.state.mu.Lock()
	defer r.state.mu.Unlock()
	c, ok := r.state.counters[name]
	if !ok {
		c = &Counter{}
		r.state.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	name = r.prefix + name
	r.state.mu.Lock()
	defer r.state.mu.Unlock()
	g, ok := r.state.gauges[name]
	if !ok {
		g = &Gauge{}
		r.state.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Histograms live in the shared store like every other metric, so a
// ForkRun child registering under its run-scoped view and a server
// snapshotting the parent see the same instance; Observe is atomic, so the
// sharing is race-free.
func (r *Registry) Histogram(name string) *Histogram {
	name = r.prefix + name
	r.state.mu.Lock()
	defer r.state.mu.Unlock()
	h, ok := r.state.hists[name]
	if !ok {
		h = &Histogram{}
		r.state.hists[name] = h
	}
	return h
}

// Histograms snapshots every histogram into a flat name → snapshot map.
func (r *Registry) Histograms() map[string]HistogramSnapshot {
	r.state.mu.Lock()
	hists := make(map[string]*Histogram, len(r.state.hists))
	for n, h := range r.state.hists {
		hists[n] = h
	}
	r.state.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(hists))
	for n, h := range hists {
		out[n] = h.Snapshot()
	}
	return out
}

// RegisterProbe installs a function evaluated at snapshot time. The last
// registration for a name wins; fn must be cheap and side-effect free.
func (r *Registry) RegisterProbe(name string, fn func() float64) {
	name = r.prefix + name
	r.state.mu.Lock()
	defer r.state.mu.Unlock()
	r.state.probes[name] = fn
}

// Snapshot is a point-in-time flat view of every metric.
type Snapshot map[string]float64

// Snapshot evaluates all counters, gauges and probes. Histograms
// contribute three scalar views each — "name.count", "name.sum" and
// "name.mean" — so flat consumers (the -metrics-out JSON, Format) see
// them without understanding buckets; Histograms() returns the full
// distributions.
func (r *Registry) Snapshot() Snapshot {
	r.state.mu.Lock()
	defer r.state.mu.Unlock()
	s := make(Snapshot, len(r.state.counters)+len(r.state.gauges)+len(r.state.probes)+3*len(r.state.hists))
	for n, c := range r.state.counters {
		s[n] = float64(c.v)
	}
	for n, g := range r.state.gauges {
		s[n] = g.v
	}
	for n, fn := range r.state.probes {
		s[n] = fn()
	}
	for n, h := range r.state.hists {
		hs := h.Snapshot()
		s[n+".count"] = float64(hs.Count)
		s[n+".sum"] = float64(hs.Sum)
		s[n+".mean"] = hs.Mean()
	}
	return s
}

// Delta returns s minus prev, per name; names absent from prev count from
// zero.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := make(Snapshot, len(s))
	for n, v := range s {
		d[n] = v - prev[n]
	}
	return d
}

// Names returns the snapshot's metric names, sorted.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the snapshot as one JSON object (names sorted —
// encoding/json orders map keys).
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// Format renders the snapshot as aligned "name value" lines, sorted.
func (s Snapshot) Format() string {
	var out string
	for _, n := range s.Names() {
		out += fmt.Sprintf("%-48s %v\n", n, s[n])
	}
	return out
}
