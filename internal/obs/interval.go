package obs

import (
	"encoding/json"
	"io"
)

// IntervalSample is one point of the per-run time series: deltas over the
// last Every accesses, computed by the simulator from its own counters.
// Rates are per-interval, not cumulative, so the series plots learning
// curves directly (pHIST warm-up bursts, post-phase-change shadow-hit
// spikes, walker-queue pressure).
type IntervalSample struct {
	// Run labels the simulation ("workload/setup"); empty for bare runs.
	Run string `json:"run,omitempty"`
	// Index is the sample ordinal within the run, from 0.
	Index int `json:"index"`
	// Access is the cumulative access count at sampling time; Cycle the
	// core cycle.
	Access uint64  `json:"access"`
	Cycle  float64 `json:"cycle"`

	// Instructions and IPC cover this interval only.
	Instructions uint64  `json:"instructions"`
	IPC          float64 `json:"ipc"`

	// Walks is real page walks this interval; LLTMPKI/LLCMPKI the
	// interval miss rates per kilo-instruction.
	Walks   uint64  `json:"walks"`
	LLTMPKI float64 `json:"llt_mpki"`
	LLCMPKI float64 `json:"llc_mpki"`

	// Bypass rates are bypasses over fill opportunities (fills+bypasses)
	// this interval, in [0,1].
	LLTBypassRate float64 `json:"llt_bypass_rate"`
	LLCBypassRate float64 `json:"llc_bypass_rate"`

	// ShadowHits counts detected mispredictions this interval.
	ShadowHits uint64 `json:"shadow_hits"`

	// WalkQueueCycles is queueing delay accumulated behind the single
	// page walker this interval; WalkerBacklog is the instantaneous
	// number of cycles the walker is booked beyond "now" at sample time.
	WalkQueueCycles uint64 `json:"walk_queue_cycles"`
	WalkerBacklog   uint64 `json:"walker_backlog"`

	// PHISTHist/BHISTHist tally the predictors' saturating counters by
	// value (index = counter value) at sample time; nil when the
	// installed predictor exposes none.
	PHISTHist []uint64 `json:"phist_hist,omitempty"`
	BHISTHist []uint64 `json:"bhist_hist,omitempty"`

	// Confusion-tracker classifications this interval (zero when quality
	// telemetry is off): dead predictions graded true-dead vs premature,
	// plus unpredicted deaths. The premature rates are per-interval
	// Premature/(TrueDead+Premature).
	LLTTrueDead      uint64  `json:"llt_true_dead,omitempty"`
	LLTPremature     uint64  `json:"llt_premature,omitempty"`
	LLTMissed        uint64  `json:"llt_missed,omitempty"`
	LLTPrematureRate float64 `json:"llt_premature_rate,omitempty"`
	LLCTrueDead      uint64  `json:"llc_true_dead,omitempty"`
	LLCPremature     uint64  `json:"llc_premature,omitempty"`
	LLCMissed        uint64  `json:"llc_missed,omitempty"`
	LLCPrematureRate float64 `json:"llc_premature_rate,omitempty"`
}

// IntervalRecorder accumulates interval samples across runs.
type IntervalRecorder struct {
	// Every is the sampling cadence in accesses; the simulator samples
	// when accesses%Every == 0. Zero disables sampling.
	Every uint64

	run     string
	samples []IntervalSample
	index   int
}

// NewIntervalRecorder builds a recorder sampling every n accesses.
func NewIntervalRecorder(n uint64) *IntervalRecorder {
	return &IntervalRecorder{Every: n}
}

// SetRun labels subsequent samples and restarts the per-run index.
func (r *IntervalRecorder) SetRun(label string) {
	r.run = label
	r.index = 0
}

// Add appends one sample, stamping Run and Index, and returns the
// sample's per-run index.
func (r *IntervalRecorder) Add(s IntervalSample) int {
	s.Run = r.run
	s.Index = r.index
	r.index++
	r.samples = append(r.samples, s)
	return s.Index
}

// Samples returns all recorded samples in emission order.
func (r *IntervalRecorder) Samples() []IntervalSample { return r.samples }

// metricsDoc is the -metrics-out JSON document shape.
type metricsDoc struct {
	IntervalAccesses uint64                       `json:"interval_accesses,omitempty"`
	Intervals        []IntervalSample             `json:"intervals"`
	Metrics          Snapshot                     `json:"metrics,omitempty"`
	Histograms       map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// WriteMetricsJSON writes the observer's interval series and final metric
// snapshot as one indented JSON document.
func (o *Observer) WriteMetricsJSON(w io.Writer) error {
	doc := metricsDoc{Intervals: []IntervalSample{}}
	if o != nil && o.Interval != nil {
		doc.IntervalAccesses = o.Interval.Every
		if o.Interval.samples != nil {
			doc.Intervals = o.Interval.samples
		}
	}
	if o != nil && o.Metrics != nil {
		doc.Metrics = o.Metrics.Snapshot()
		if h := o.Metrics.Histograms(); len(h) > 0 {
			doc.Histograms = h
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
