package obs

// DefaultRingSize is the tracer's in-memory event capacity when 0 is
// requested.
const DefaultRingSize = 4096

// Tracer stamps, buffers and forwards structured events. It keeps the
// last ringSize events in a fixed ring (for post-mortem inspection
// without any sink) and streams every event to the sink when one is set.
// The first sink error is latched in Err and stops further sink writes,
// so a full disk cannot abort a simulation.
type Tracer struct {
	ring []Event
	pos  int
	seq  uint64
	full bool

	sink Sink
	err  error

	// clock supplies (cycle, access) stamps; the simulator installs it so
	// predictors can emit events without carrying timing context.
	clock func() (cycle, access uint64)
}

// NewTracer builds a tracer with the given ring capacity (0 selects
// DefaultRingSize) writing to sink (nil keeps the ring only).
func NewTracer(ringSize int, sink Sink) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Tracer{ring: make([]Event, ringSize), sink: sink}
}

// SetClock installs the (cycle, access) stamp source.
func (t *Tracer) SetClock(fn func() (cycle, access uint64)) { t.clock = fn }

// Emit records one event: stamps Seq (and Cycle/Access from the clock when
// installed), appends to the ring, and forwards to the sink.
func (t *Tracer) Emit(ev Event) {
	ev.Seq = t.seq
	t.seq++
	if t.clock != nil {
		ev.Cycle, ev.Access = t.clock()
	}
	t.ring[t.pos] = ev
	t.pos++
	if t.pos == len(t.ring) {
		t.pos = 0
		t.full = true
	}
	if t.sink != nil && t.err == nil {
		if err := t.sink.WriteEvent(ev); err != nil {
			t.err = err
		}
	}
}

// EmitLabeled is Emit with a run label attached (run_start events).
func (t *Tracer) EmitLabeled(ev Event, label string) {
	ev.Label = label
	t.Emit(ev)
}

// Events returns the buffered events oldest-first (at most ring capacity).
func (t *Tracer) Events() []Event {
	if !t.full {
		out := make([]Event, t.pos)
		copy(out, t.ring[:t.pos])
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.pos:]...)
	out = append(out, t.ring[:t.pos]...)
	return out
}

// Count returns the total number of events emitted (not capped by the
// ring).
func (t *Tracer) Count() uint64 { return t.seq }

// Err returns the first sink error, if any.
func (t *Tracer) Err() error { return t.err }

// Close flushes the sink and returns the first error seen.
func (t *Tracer) Close() error {
	if t.sink == nil {
		return t.err
	}
	if err := t.sink.Close(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}
