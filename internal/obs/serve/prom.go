package serve

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Registry names are "workload/setup/metric" once runs scope themselves
// (obs.Observer.BeginRun / ForkRun); bare names come from unscoped
// registrations. The exposition splits each name at its last '/': the
// prefix becomes a run="workload/setup" label and the leaf is sanitized
// into a Prometheus metric name, so every run's series share one metric
// family and dashboards select runs by label.

// splitRun splits a flat registry name into its run label (possibly
// empty) and metric leaf.
func splitRun(name string) (run, metric string) {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return "", name
}

// sanitizeMetric rewrites a registry leaf into the Prometheus name
// charset [a-zA-Z0-9_:], mapping every other rune to '_' and prefixing a
// leading digit.
func sanitizeMetric(leaf string) string {
	var sb strings.Builder
	for i, r := range leaf {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			sb.WriteRune(r)
		} else if r >= '0' && r <= '9' { // leading digit
			sb.WriteByte('_')
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// series is one labeled sample within a metric family.
type series struct {
	run   string
	value float64
}

// histSeries is one labeled histogram within a family.
type histSeries struct {
	run  string
	snap obs.HistogramSnapshot
}

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4): scalars as untyped samples, histograms as cumulative
// _bucket/_sum/_count series with power-of-two le bounds. Families and
// runs are emitted sorted, so the output is deterministic for a quiesced
// registry.
func WriteProm(w io.Writer, reg *obs.Registry) error {
	if reg == nil {
		return nil
	}
	snap := reg.Snapshot()
	hists := reg.Histograms()

	// The flat snapshot view repeats each histogram as three scalars
	// (name.count/.sum/.mean); drop them here — the real histogram series
	// carry the same information under the same family name.
	flattened := make(map[string]bool, 3*len(hists))
	for name := range hists {
		flattened[name+".count"] = true
		flattened[name+".sum"] = true
		flattened[name+".mean"] = true
	}

	families := make(map[string][]series)
	for name, v := range snap {
		if flattened[name] {
			continue
		}
		run, leaf := splitRun(name)
		m := sanitizeMetric(leaf)
		families[m] = append(families[m], series{run: run, value: v})
	}
	histFamilies := make(map[string][]histSeries)
	for name, hs := range hists {
		run, leaf := splitRun(name)
		m := sanitizeMetric(leaf)
		histFamilies[m] = append(histFamilies[m], histSeries{run: run, snap: hs})
	}

	for _, fam := range sortedKeys(families) {
		if _, err := fmt.Fprintf(w, "# TYPE %s untyped\n", fam); err != nil {
			return err
		}
		ss := families[fam]
		sort.Slice(ss, func(i, j int) bool { return ss[i].run < ss[j].run })
		for _, s := range ss {
			if _, err := fmt.Fprintf(w, "%s%s %v\n", fam, runLabel(s.run), s.value); err != nil {
				return err
			}
		}
	}
	for _, fam := range sortedKeys(histFamilies) {
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", fam); err != nil {
			return err
		}
		hs := histFamilies[fam]
		sort.Slice(hs, func(i, j int) bool { return hs[i].run < hs[j].run })
		for _, h := range hs {
			if err := writePromHist(w, fam, h.run, h.snap); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHist emits one histogram's cumulative bucket series. Buckets
// past the highest non-empty one collapse into the +Inf bucket, keeping
// the 65-bucket scheme compact on the wire.
func writePromHist(w io.Writer, fam, run string, s obs.HistogramSnapshot) error {
	var cum uint64
	top := s.MaxBucket()
	for i := 0; i <= top && i < obs.HistBuckets-1; i++ {
		cum += s.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			fam, bucketLabels(run, fmt.Sprintf("%d", obs.HistBucketBound(i))), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam, bucketLabels(run, "+Inf"), s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", fam, runLabel(run), s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam, runLabel(run), s.Count)
	return err
}

// runLabel renders the optional {run="..."} label set.
func runLabel(run string) string {
	if run == "" {
		return ""
	}
	return fmt.Sprintf(`{run=%q}`, escapeLabel(run))
}

// bucketLabels renders a bucket's label set: le plus the optional run.
func bucketLabels(run, le string) string {
	if run == "" {
		return fmt.Sprintf(`{le=%q}`, le)
	}
	return fmt.Sprintf(`{run=%q,le=%q}`, escapeLabel(run), le)
}

// sortedKeys returns m's keys in order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
