// Package serve is the live monitoring plane: a status board the grid
// runner publishes experiment-cell lifecycle into, and an HTTP server
// exposing the observability bundle while a grid runs — Prometheus-text
// metrics (including histogram distributions), a JSON grid snapshot, a
// server-sent-events stream of cell transitions, and the stdlib pprof
// handlers. Everything is stdlib-only, matching the repo's
// zero-dependency rule, and everything is passive: serving traffic never
// perturbs simulation results.
package serve

import (
	"sync"
	"time"
)

// CellState is the lifecycle state of one grid cell.
type CellState string

// Cell lifecycle: Pending (queued, not started), Running (leader holds a
// pool slot), Done, Failed (finished with an error, cancellation
// included).
const (
	Pending CellState = "pending"
	Running CellState = "running"
	Done    CellState = "done"
	Failed  CellState = "failed"
)

// CellStatus is one cell's row in the status snapshot.
type CellStatus struct {
	Workload  string    `json:"workload"`
	Setup     string    `json:"setup"`
	State     CellState `json:"state"`
	ElapsedMS int64     `json:"elapsed_ms,omitempty"`
	Error     string    `json:"error,omitempty"`
}

// Event is one cell transition, broadcast to SSE subscribers.
type Event struct {
	Type      string `json:"type"` // queued | start | done | failed | memo_hit
	Workload  string `json:"workload,omitempty"`
	Setup     string `json:"setup,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`
	Error     string `json:"error,omitempty"`
}

// Status is the /status document body.
type Status struct {
	UptimeMS int64 `json:"uptime_ms"`
	Pending  int   `json:"pending"`
	Running  int   `json:"running"`
	Done     int   `json:"done"`
	Failed   int   `json:"failed"`
	// MemoHits counts cells served from the runner's result memo without
	// re-simulating (aggregation replays and cross-experiment sharing).
	MemoHits uint64       `json:"memo_hits"`
	Cells    []CellStatus `json:"cells"`
}

// Board tracks grid-cell lifecycle for live monitoring. The runner calls
// the transition methods from pool workers; handlers snapshot concurrently.
// Transitions happen once per simulation (seconds of work), never on the
// access path, so one mutex is cheap — the simulator itself never touches
// the board.
type Board struct {
	mu       sync.Mutex
	started  time.Time
	cells    map[string]*CellStatus
	order    []string
	memoHits uint64
	subs     map[chan Event]struct{}
}

// NewBoard creates an empty board; uptime counts from now.
func NewBoard() *Board {
	return &Board{
		started: time.Now(),
		cells:   make(map[string]*CellStatus),
		subs:    make(map[chan Event]struct{}),
	}
}

// cell returns the tracked cell, creating a Pending row on first sight.
// Callers hold b.mu.
func (b *Board) cell(workload, setup string) *CellStatus {
	key := workload + "/" + setup
	c, ok := b.cells[key]
	if !ok {
		c = &CellStatus{Workload: workload, Setup: setup, State: Pending}
		b.cells[key] = c
		b.order = append(b.order, key)
	}
	return c
}

// broadcast fans ev out to subscribers without blocking: a subscriber that
// stopped draining loses events rather than stalling the runner. Callers
// hold b.mu.
func (b *Board) broadcast(ev Event) {
	for ch := range b.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// CellQueued registers a cell as pending. The grid runner announces the
// whole cross product before launching, so /status shows the full grid
// immediately.
func (b *Board) CellQueued(workload, setup string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cell(workload, setup)
	b.broadcast(Event{Type: "queued", Workload: workload, Setup: setup})
}

// CellStart marks a cell running.
func (b *Board) CellStart(workload, setup string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cell(workload, setup).State = Running
	b.broadcast(Event{Type: "start", Workload: workload, Setup: setup})
}

// CellDone marks a cell finished; a non-nil err (cancellation included)
// marks it failed and carries the message into the status row and event.
func (b *Board) CellDone(workload, setup string, elapsed time.Duration, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.cell(workload, setup)
	c.ElapsedMS = elapsed.Milliseconds()
	ev := Event{Type: "done", Workload: workload, Setup: setup, ElapsedMS: c.ElapsedMS}
	if err != nil {
		c.State = Failed
		c.Error = err.Error()
		ev.Type = "failed"
		ev.Error = c.Error
	} else {
		c.State = Done
		c.Error = ""
	}
	b.broadcast(ev)
}

// MemoHit records a cell request served from the result memo.
func (b *Board) MemoHit(workload, setup string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.memoHits++
	b.broadcast(Event{Type: "memo_hit", Workload: workload, Setup: setup})
}

// Subscribe returns a channel of future cell events and a cancel function
// releasing it. The channel is buffered; events overflowing the buffer are
// dropped for that subscriber.
func (b *Board) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 64)
	b.mu.Lock()
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	cancel := func() {
		b.mu.Lock()
		delete(b.subs, ch)
		b.mu.Unlock()
	}
	return ch, cancel
}

// Status snapshots the board in cell-queue order.
func (b *Board) Status() Status {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := Status{
		UptimeMS: time.Since(b.started).Milliseconds(),
		MemoHits: b.memoHits,
		Cells:    make([]CellStatus, 0, len(b.order)),
	}
	for _, key := range b.order {
		c := *b.cells[key]
		st.Cells = append(st.Cells, c)
		switch c.State {
		case Pending:
			st.Pending++
		case Running:
			st.Running++
		case Done:
			st.Done++
		case Failed:
			st.Failed++
		}
	}
	return st
}
