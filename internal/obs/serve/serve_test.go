package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

func testRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	run := reg.Sub("cc/dpPred/")
	run.Counter("llt.misses").Add(42)
	run.RegisterProbe("conf.llt.premature_rate", func() float64 { return 0.125 })
	h := run.Histogram("hist.mem_latency")
	h.Observe(3)
	h.Observe(3)
	h.Observe(200)
	reg.Gauge("grid.jobs").Set(8)
	return reg
}

// TestWriteProm pins the exposition format: run labels from registry
// prefixes, sanitized metric names, cumulative histogram buckets with
// power-of-two bounds, and no duplicate series from the flattened
// histogram scalars.
func TestWriteProm(t *testing.T) {
	var sb strings.Builder
	if err := WriteProm(&sb, testRegistry()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE llt_misses untyped\n",
		`llt_misses{run="cc/dpPred"} 42` + "\n",
		`conf_llt_premature_rate{run="cc/dpPred"} 0.125` + "\n",
		"grid_jobs 8\n",
		"# TYPE hist_mem_latency histogram\n",
		// 3 → bucket 2 (le 3), 200 → bucket 8 (le 255); cumulative.
		`hist_mem_latency_bucket{run="cc/dpPred",le="3"} 2` + "\n",
		`hist_mem_latency_bucket{run="cc/dpPred",le="255"} 3` + "\n",
		`hist_mem_latency_bucket{run="cc/dpPred",le="+Inf"} 3` + "\n",
		`hist_mem_latency_sum{run="cc/dpPred"} 206` + "\n",
		`hist_mem_latency_count{run="cc/dpPred"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The flat snapshot's name.count/.sum/.mean views must not leak as
	// extra untyped families next to the real histogram series.
	if strings.Contains(out, "hist_mem_latency_mean") ||
		strings.Contains(out, "# TYPE hist_mem_latency_count") {
		t.Errorf("flattened histogram scalars leaked into exposition:\n%s", out)
	}
	if WriteProm(io.Discard, nil) != nil {
		t.Error("nil registry must serve empty output")
	}
}

// TestBoardLifecycle walks a two-cell grid through its transitions and
// checks the status snapshot and event stream agree.
func TestBoardLifecycle(t *testing.T) {
	b := NewBoard()
	events, cancel := b.Subscribe()
	defer cancel()

	b.CellQueued("cc", "baseline")
	b.CellQueued("cc", "dpPred")
	b.CellStart("cc", "baseline")
	b.CellDone("cc", "baseline", 250*time.Millisecond, nil)
	b.CellStart("cc", "dpPred")
	b.CellDone("cc", "dpPred", 100*time.Millisecond, errors.New("kaboom"))
	b.MemoHit("cc", "baseline")

	st := b.Status()
	if st.Done != 1 || st.Failed != 1 || st.Pending != 0 || st.Running != 0 {
		t.Fatalf("status counts = %+v", st)
	}
	if st.MemoHits != 1 {
		t.Fatalf("memo hits = %d, want 1", st.MemoHits)
	}
	if len(st.Cells) != 2 || st.Cells[0].Setup != "baseline" || st.Cells[1].Setup != "dpPred" {
		t.Fatalf("cells out of queue order: %+v", st.Cells)
	}
	if st.Cells[0].State != Done || st.Cells[0].ElapsedMS != 250 {
		t.Fatalf("baseline cell = %+v", st.Cells[0])
	}
	if st.Cells[1].State != Failed || st.Cells[1].Error != "kaboom" {
		t.Fatalf("failed cell = %+v", st.Cells[1])
	}

	wantTypes := []string{"queued", "queued", "start", "done", "start", "failed", "memo_hit"}
	for i, wt := range wantTypes {
		select {
		case ev := <-events:
			if ev.Type != wt {
				t.Fatalf("event %d = %q, want %q", i, ev.Type, wt)
			}
		default:
			t.Fatalf("event %d (%q) missing", i, wt)
		}
	}
}

// TestServerEndpoints smoke-tests every route over httptest.
func TestServerEndpoints(t *testing.T) {
	board := NewBoard()
	board.CellQueued("cc", "baseline")
	board.CellStart("cc", "baseline")
	srv := NewServer(testRegistry(), board)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, body)
		}
		return resp, string(body)
	}

	if _, body := get("/healthz"); body != "ok\n" {
		t.Fatalf("healthz = %q", body)
	}
	if _, body := get("/metrics"); !strings.Contains(body, "hist_mem_latency_bucket") {
		t.Fatalf("metrics missing histogram series:\n%s", body)
	}
	_, body := get("/status")
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("status not JSON: %v\n%s", err, body)
	}
	if st.Running != 1 || len(st.Cells) != 1 {
		t.Fatalf("status = %+v", st)
	}
	if _, body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("pprof cmdline empty")
	}

	// SSE: subscribe, trigger a transition, read it off the stream.
	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type = %q", ct)
	}
	board.CellDone("cc", "baseline", 50*time.Millisecond, nil)
	sc := bufio.NewScanner(resp.Body)
	deadline := time.AfterFunc(5*time.Second, func() { resp.Body.Close() })
	defer deadline.Stop()
	var ev Event
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		break
	}
	if ev.Type != "done" || ev.Workload != "cc" || ev.Setup != "baseline" {
		t.Fatalf("SSE event = %+v", ev)
	}
}

// TestServerStartShutdown binds :0 for real, checks liveness over TCP, and
// verifies Shutdown releases an open SSE stream instead of hanging.
func TestServerStartShutdown(t *testing.T) {
	board := NewBoard()
	srv := NewServer(obs.NewRegistry(), board)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	events, err := http.Get("http://" + addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer events.Body.Close()

	done := make(chan error, 1)
	go func() {
		ctx, cancel := contextWithTimeout(3 * time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung on the open SSE stream")
	}
	// Idempotent: a second shutdown is a no-op.
	ctx, cancel := contextWithTimeout(time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}
