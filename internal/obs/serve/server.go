package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/obs"
)

// Server exposes a running experiment over HTTP:
//
//	/metrics      Prometheus text exposition of the observer's registry
//	/status       JSON snapshot of the grid status board
//	/events       server-sent events stream of cell transitions
//	/healthz      liveness probe
//	/debug/pprof  stdlib profiling handlers
//
// Handlers only read: the registry snapshot is mutex-guarded and
// histograms are atomic, so serving concurrently with a simulation is
// race-free and cannot change its results.
type Server struct {
	reg   *obs.Registry
	board *Board

	hs   *http.Server
	ln   net.Listener
	done chan struct{} // closed on Shutdown; unblocks SSE handlers

	mu      sync.Mutex
	started bool
}

// NewServer builds a server over a registry (nil serves empty metrics)
// and a board (nil serves an empty status document and a silent event
// stream).
func NewServer(reg *obs.Registry, board *Board) *Server {
	s := &Server{reg: reg, board: board, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.hs = &http.Server{Handler: mux}
	return s
}

// Handler returns the route mux, for httptest-style in-process serving.
func (s *Server) Handler() http.Handler { return s.hs.Handler }

// Start binds addr (":0" picks a free port) and serves in a background
// goroutine, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.started = true
	s.mu.Unlock()
	go func() { _ = s.hs.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Shutdown stops the server: SSE streams are released first (they would
// otherwise hold graceful shutdown open forever), then the listener and
// idle connections drain within ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	started := s.started
	s.started = false
	s.mu.Unlock()
	if !started {
		return nil
	}
	close(s.done)
	return s.hs.Shutdown(ctx)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WriteProm(w, s.reg)
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	var st Status
	if s.board != nil {
		st = s.board.Status()
	}
	if st.Cells == nil {
		st.Cells = []CellStatus{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// handleEvents streams board events as server-sent events until the
// client disconnects or the server shuts down. Each event is one JSON
// object on a `data:` line; a comment ping every 15s keeps intermediaries
// from timing the stream out while the grid is quiet.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	if s.board == nil {
		<-r.Context().Done()
		return
	}
	events, cancel := s.board.Subscribe()
	defer cancel()
	ping := time.NewTicker(15 * time.Second)
	defer ping.Stop()
	for {
		select {
		case ev := <-events:
			b, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
				return
			}
			fl.Flush()
		case <-ping.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		}
	}
}
