// Package obs is the simulator's observability layer: a zero-dependency
// bundle of (1) a metrics registry of named counters, gauges and probes
// with snapshot/delta semantics, (2) a structured event tracer — ring
// buffer plus pluggable sinks (JSONL, CSV, null) — capturing the paper's
// Figure 6/8 hook-point events (LLT fill/bypass/evict, shadow hits, pHIST
// column flushes, PFQ pushes, LLC bypasses), (3) an interval recorder that
// collects per-N-access time series (IPC, MPKI, bypass rates, walker-queue
// pressure, pHIST/bHIST counter histograms) for learning-curve plots, and
// (4) runtime/pprof profiling helpers for the commands.
//
// Everything is opt-in and nil-safe: a nil *Observer (or nil component
// field) disables that layer, and the simulator guards every hook with a
// single pointer check so the disabled configuration stays off the hot
// path.
package obs

import "sync"

// Observer bundles the observability components a simulation publishes
// into. Any field may be nil; the zero value observes nothing.
//
// An Observer attached directly to a System is single-threaded, like the
// simulator. To observe simulations running in parallel, give each run its
// own view via ForkRun: children buffer privately and publish into the
// parent atomically, so traces and interval series from concurrent runs
// never interleave.
type Observer struct {
	// Tracer receives structured hook-point events.
	Tracer *Tracer
	// Metrics is the registry run counters are published into.
	Metrics *Registry
	// Interval collects per-N-access time-series samples.
	Interval *IntervalRecorder

	// scope is the per-run registry view created by BeginRun.
	scope *Registry

	// mu serializes ForkRun joins (cross-run flushes into Tracer/Interval).
	mu sync.Mutex
}

// BeginRun marks the start of one simulation run (workload under setup).
// It emits a run_start trace event, labels subsequent interval samples,
// and scopes metric registration under "workload/setup/". Callers driving
// a single bare System may skip it.
func (o *Observer) BeginRun(workload, setup string) {
	if o == nil {
		return
	}
	label := workload + "/" + setup
	if o.Tracer != nil {
		o.Tracer.EmitLabeled(Event{Kind: EvRunStart}, label)
	}
	if o.Interval != nil {
		o.Interval.SetRun(label)
	}
	if o.Metrics != nil {
		o.scope = o.Metrics.Sub(label + "/")
	}
}

// RunRegistry returns the registry view the current run should register
// metrics into: the BeginRun scope when one exists, the root registry
// otherwise, nil when metrics are disabled.
func (o *Observer) RunRegistry() *Registry {
	if o == nil {
		return nil
	}
	if o.scope != nil {
		return o.scope
	}
	return o.Metrics
}

// ForkRun returns an isolated child observer for one simulation run plus
// a join function. The child gets its own tracer (buffering every event in
// memory, starting with the run_start event), its own interval recorder
// labeled "workload/setup", and a registry view scoped under
// "workload/setup/" (registry views share one mutex-guarded store, so
// concurrent registration is safe). The join flushes the child's buffered
// events and samples into the parent atomically: events re-acquire
// globally monotone sequence numbers and land in the parent's ring and
// sink contiguously per run.
//
// ForkRun on a nil observer returns (nil, no-op), so callers can fork
// unconditionally. Each child must observe exactly one single-threaded
// run; join must be called exactly once, after the run finishes. When runs
// execute sequentially and join in run order, the flushed trace is
// identical to what one shared observer would have streamed.
func (o *Observer) ForkRun(workload, setup string) (*Observer, func()) {
	if o == nil {
		return nil, func() {}
	}
	label := workload + "/" + setup
	child := &Observer{}
	var events *captureSink
	if o.Tracer != nil {
		events = &captureSink{}
		// Ring size 1: children are write-through buffers, never inspected
		// post-mortem (the parent's ring is refilled at join).
		child.Tracer = NewTracer(1, events)
		child.Tracer.EmitLabeled(Event{Kind: EvRunStart}, label)
	}
	if o.Interval != nil {
		child.Interval = NewIntervalRecorder(o.Interval.Every)
		child.Interval.SetRun(label)
	}
	if o.Metrics != nil {
		child.Metrics = o.Metrics.Sub(label + "/")
	}
	join := func() {
		o.mu.Lock()
		defer o.mu.Unlock()
		if events != nil {
			// Child events carry their own (cycle, access) stamps; a clock
			// left on the parent from a direct attachment must not restamp
			// them.
			saved := o.Tracer.clock
			o.Tracer.clock = nil
			for _, ev := range events.events {
				o.Tracer.Emit(ev)
			}
			o.Tracer.clock = saved
		}
		if child.Interval != nil {
			o.Interval.samples = append(o.Interval.samples, child.Interval.samples...)
		}
	}
	return child, join
}

// captureSink buffers events in memory for a ForkRun child until its join
// republishes them through the parent tracer.
type captureSink struct {
	events []Event
}

// WriteEvent implements Sink.
func (c *captureSink) WriteEvent(ev Event) error {
	c.events = append(c.events, ev)
	return nil
}

// Close implements Sink.
func (c *captureSink) Close() error { return nil }

// TraceAttacher is implemented by predictors that can emit their internal
// events (pHIST column flushes, PFQ pushes) through a tracer.
type TraceAttacher interface {
	AttachTracer(*Tracer)
}

// MetricSource is implemented by predictors that publish their own
// counters into a registry.
type MetricSource interface {
	RegisterMetrics(*Registry)
}

// CounterHistogrammer is implemented by predictors whose prediction-table
// counter distribution is worth sampling per interval (dpPred's pHIST,
// cbPred's bHIST). The returned slice tallies counters by value, index 0
// first.
type CounterHistogrammer interface {
	CounterHistogram() []uint64
}

// QualitySource is implemented by predictors that report their own live
// prediction-quality signal: how many dead predictions they have issued
// and how many of those their own machinery has already detected as
// premature (dpPred's shadow table detects one every time a bypassed
// translation is re-requested, §V-A). Detection is a lower bound on the
// true premature count — the mirror-based confusion tracker supplies the
// ground truth — but it is the only quality signal real hardware has.
type QualitySource interface {
	PredictionQuality() (predictions, detectedPremature uint64)
}
