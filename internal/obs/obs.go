// Package obs is the simulator's observability layer: a zero-dependency
// bundle of (1) a metrics registry of named counters, gauges and probes
// with snapshot/delta semantics, (2) a structured event tracer — ring
// buffer plus pluggable sinks (JSONL, CSV, null) — capturing the paper's
// Figure 6/8 hook-point events (LLT fill/bypass/evict, shadow hits, pHIST
// column flushes, PFQ pushes, LLC bypasses), (3) an interval recorder that
// collects per-N-access time series (IPC, MPKI, bypass rates, walker-queue
// pressure, pHIST/bHIST counter histograms) for learning-curve plots, and
// (4) runtime/pprof profiling helpers for the commands.
//
// Everything is opt-in and nil-safe: a nil *Observer (or nil component
// field) disables that layer, and the simulator guards every hook with a
// single pointer check so the disabled configuration stays off the hot
// path.
package obs

// Observer bundles the observability components a simulation publishes
// into. Any field may be nil; the zero value observes nothing.
type Observer struct {
	// Tracer receives structured hook-point events.
	Tracer *Tracer
	// Metrics is the registry run counters are published into.
	Metrics *Registry
	// Interval collects per-N-access time-series samples.
	Interval *IntervalRecorder

	// scope is the per-run registry view created by BeginRun.
	scope *Registry
}

// BeginRun marks the start of one simulation run (workload under setup).
// It emits a run_start trace event, labels subsequent interval samples,
// and scopes metric registration under "workload/setup/". Callers driving
// a single bare System may skip it.
func (o *Observer) BeginRun(workload, setup string) {
	if o == nil {
		return
	}
	label := workload + "/" + setup
	if o.Tracer != nil {
		o.Tracer.EmitLabeled(Event{Kind: EvRunStart}, label)
	}
	if o.Interval != nil {
		o.Interval.SetRun(label)
	}
	if o.Metrics != nil {
		o.scope = o.Metrics.Sub(label + "/")
	}
}

// RunRegistry returns the registry view the current run should register
// metrics into: the BeginRun scope when one exists, the root registry
// otherwise, nil when metrics are disabled.
func (o *Observer) RunRegistry() *Registry {
	if o == nil {
		return nil
	}
	if o.scope != nil {
		return o.scope
	}
	return o.Metrics
}

// TraceAttacher is implemented by predictors that can emit their internal
// events (pHIST column flushes, PFQ pushes) through a tracer.
type TraceAttacher interface {
	AttachTracer(*Tracer)
}

// MetricSource is implemented by predictors that publish their own
// counters into a registry.
type MetricSource interface {
	RegisterMetrics(*Registry)
}

// CounterHistogrammer is implemented by predictors whose prediction-table
// counter distribution is worth sampling per interval (dpPred's pHIST,
// cbPred's bHIST). The returned slice tallies counters by value, index 0
// first.
type CounterHistogrammer interface {
	CounterHistogram() []uint64
}
