package obs

import (
	"bufio"
	"io"
	"strconv"
)

// Sink consumes traced events. Implementations need not be concurrency
// safe: each simulation is single-threaded, and when runs execute in
// parallel every run traces into its own ForkRun child whose join flushes
// to the shared sink under the parent observer's lock.
type Sink interface {
	WriteEvent(Event) error
	// Close flushes buffered output. It does not close any underlying
	// file the caller owns.
	Close() error
}

// NullSink discards every event; it measures tracing overhead and backs
// ring-buffer-only tracing.
type NullSink struct{}

// WriteEvent implements Sink.
func (NullSink) WriteEvent(Event) error { return nil }

// Close implements Sink.
func (NullSink) Close() error { return nil }

// JSONLSink writes one JSON object per event, hand-encoded (no reflection,
// one amortized allocation-free append buffer) so full tracing stays cheap
// enough for million-access runs. Zero PC/Flag/Label fields are omitted;
// seq, kind, cycle, access, key and aux are always present.
type JSONLSink struct {
	w   *bufio.Writer
	buf []byte
}

// NewJSONLSink wraps w; call Close to flush.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 256)}
}

// WriteEvent implements Sink.
func (s *JSONLSink) WriteEvent(ev Event) error {
	b := s.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, ev.Seq, 10)
	b = append(b, `,"kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, `","cycle":`...)
	b = strconv.AppendUint(b, ev.Cycle, 10)
	b = append(b, `,"access":`...)
	b = strconv.AppendUint(b, ev.Access, 10)
	b = append(b, `,"key":`...)
	b = strconv.AppendUint(b, ev.Key, 10)
	b = append(b, `,"aux":`...)
	b = strconv.AppendUint(b, ev.Aux, 10)
	if ev.PC != 0 {
		b = append(b, `,"pc":`...)
		b = strconv.AppendUint(b, ev.PC, 10)
	}
	if ev.Flag {
		b = append(b, `,"flag":true`...)
	}
	if ev.Label != "" {
		b = append(b, `,"label":`...)
		b = strconv.AppendQuote(b, ev.Label)
	}
	b = append(b, "}\n"...)
	s.buf = b
	_, err := s.w.Write(b)
	return err
}

// Close implements Sink.
func (s *JSONLSink) Close() error { return s.w.Flush() }

// CSVSink writes events as comma-separated rows with a header line. The
// column order matches the JSONL field order.
type CSVSink struct {
	w      *bufio.Writer
	buf    []byte
	header bool
}

// NewCSVSink wraps w; call Close to flush.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 128)}
}

// WriteEvent implements Sink.
func (s *CSVSink) WriteEvent(ev Event) error {
	if !s.header {
		s.header = true
		if _, err := s.w.WriteString("seq,kind,cycle,access,key,aux,pc,flag,label\n"); err != nil {
			return err
		}
	}
	b := s.buf[:0]
	b = strconv.AppendUint(b, ev.Seq, 10)
	b = append(b, ',')
	b = append(b, ev.Kind.String()...)
	b = append(b, ',')
	b = strconv.AppendUint(b, ev.Cycle, 10)
	b = append(b, ',')
	b = strconv.AppendUint(b, ev.Access, 10)
	b = append(b, ',')
	b = strconv.AppendUint(b, ev.Key, 10)
	b = append(b, ',')
	b = strconv.AppendUint(b, ev.Aux, 10)
	b = append(b, ',')
	b = strconv.AppendUint(b, ev.PC, 10)
	b = append(b, ',')
	b = strconv.AppendBool(b, ev.Flag)
	b = append(b, ',')
	b = append(b, ev.Label...) // run labels contain no commas or quotes
	b = append(b, '\n')
	s.buf = b
	_, err := s.w.Write(b)
	return err
}

// Close implements Sink.
func (s *CSVSink) Close() error { return s.w.Flush() }
