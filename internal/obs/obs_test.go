package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistryCountersGaugesProbes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("llt.misses")
	c.Inc()
	c.Add(4)
	if got := r.Counter("llt.misses").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	r.Gauge("walker.backlog").Set(3.5)
	var probed float64 = 7
	r.RegisterProbe("core.ipc", func() float64 { return probed })

	s1 := r.Snapshot()
	if s1["llt.misses"] != 5 || s1["walker.backlog"] != 3.5 || s1["core.ipc"] != 7 {
		t.Fatalf("snapshot = %v", s1)
	}

	c.Add(10)
	probed = 9
	d := r.Snapshot().Delta(s1)
	if d["llt.misses"] != 10 || d["core.ipc"] != 2 || d["walker.backlog"] != 0 {
		t.Fatalf("delta = %v", d)
	}
}

func TestRegistrySubPrefixes(t *testing.T) {
	r := NewRegistry()
	sub := r.Sub("cactusADM/dpPred/")
	sub.Counter("llt.misses").Add(3)
	s := r.Snapshot()
	if s["cactusADM/dpPred/llt.misses"] != 3 {
		t.Fatalf("snapshot missing prefixed counter: %v", s)
	}
	// Nested Sub composes prefixes.
	sub.Sub("x/").Counter("y").Inc()
	if r.Snapshot()["cactusADM/dpPred/x/y"] != 1 {
		t.Fatalf("nested prefix broken: %v", r.Snapshot())
	}
}

func TestTracerRingWrapsOldestFirst(t *testing.T) {
	tr := NewTracer(4, nil)
	for i := 0; i < 6; i++ {
		tr.Emit(Event{Kind: EvLLTFill, Key: uint64(i)})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(i + 2); ev.Key != want || ev.Seq != want {
			t.Fatalf("event %d = %+v, want key/seq %d", i, ev, want)
		}
	}
	if tr.Count() != 6 {
		t.Fatalf("count = %d, want 6", tr.Count())
	}
}

func TestTracerClockStamps(t *testing.T) {
	tr := NewTracer(0, nil)
	tr.SetClock(func() (uint64, uint64) { return 123, 45 })
	tr.Emit(Event{Kind: EvWalk})
	ev := tr.Events()[0]
	if ev.Cycle != 123 || ev.Access != 45 {
		t.Fatalf("stamped event = %+v", ev)
	}
}

func TestJSONLSinkSchema(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := NewTracer(0, sink)
	tr.EmitLabeled(Event{Kind: EvRunStart}, "cc/dpPred")
	tr.Emit(Event{Kind: EvLLTEvict, Key: 0xAB, Aux: 0xCD, PC: 0x400, Flag: true})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if first["kind"] != "run_start" || first["label"] != "cc/dpPred" {
		t.Fatalf("run_start = %v", first)
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if second["kind"] != "llt_evict" || second["key"] != float64(0xAB) ||
		second["aux"] != float64(0xCD) || second["pc"] != float64(0x400) ||
		second["flag"] != true {
		t.Fatalf("llt_evict = %v", second)
	}
	if _, hasLabel := second["label"]; hasLabel {
		t.Fatalf("zero label should be omitted: %v", second)
	}
}

func TestCSVSinkHeaderAndRows(t *testing.T) {
	var buf bytes.Buffer
	sink := NewCSVSink(&buf)
	tr := NewTracer(0, sink)
	tr.Emit(Event{Kind: EvPFQPush, Key: 9})
	tr.Emit(Event{Kind: EvLLCBypass, Key: 10, PC: 11})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	if lines[0] != "seq,kind,cycle,access,key,aux,pc,flag,label" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,pfq_push,") || !strings.HasPrefix(lines[2], "1,llc_bypass,") {
		t.Fatalf("rows = %q", lines[1:])
	}
}

func TestIntervalRecorderAndMetricsJSON(t *testing.T) {
	o := &Observer{
		Metrics:  NewRegistry(),
		Interval: NewIntervalRecorder(1000),
	}
	o.BeginRun("cc", "dpPred")
	o.RunRegistry().Counter("llt.misses").Add(2)
	o.Interval.Add(IntervalSample{Access: 1000, IPC: 0.5})
	o.Interval.Add(IntervalSample{Access: 2000, IPC: 0.6})
	o.BeginRun("cc", "baseline")
	o.Interval.Add(IntervalSample{Access: 1000, IPC: 0.4})

	samples := o.Interval.Samples()
	if len(samples) != 3 {
		t.Fatalf("got %d samples", len(samples))
	}
	if samples[0].Run != "cc/dpPred" || samples[0].Index != 0 || samples[1].Index != 1 {
		t.Fatalf("run labels/indices wrong: %+v", samples[:2])
	}
	if samples[2].Run != "cc/baseline" || samples[2].Index != 0 {
		t.Fatalf("BeginRun did not reset index: %+v", samples[2])
	}

	var buf bytes.Buffer
	if err := o.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		IntervalAccesses uint64             `json:"interval_accesses"`
		Intervals        []IntervalSample   `json:"intervals"`
		Metrics          map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("metrics doc not JSON: %v", err)
	}
	if doc.IntervalAccesses != 1000 || len(doc.Intervals) != 3 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Metrics["cc/dpPred/llt.misses"] != 2 {
		t.Fatalf("metrics = %v", doc.Metrics)
	}
}

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	o.BeginRun("w", "s")
	if o.RunRegistry() != nil {
		t.Fatal("nil observer must have nil registry")
	}
	var buf bytes.Buffer
	if err := o.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTracerEmitNullSink(b *testing.B) {
	tr := NewTracer(0, NullSink{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: EvLLTFill, Key: uint64(i), Aux: 1, PC: 2})
	}
}

func BenchmarkJSONLSinkWrite(b *testing.B) {
	sink := NewJSONLSink(discard{})
	tr := NewTracer(0, sink)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: EvLLCEvict, Key: uint64(i), Aux: 1, PC: 2, Flag: true})
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
