package pagetable

import (
	"sort"

	"repro/internal/arch"
	"repro/internal/ckpt"
)

// EncodeState serializes the page table — allocator state, population
// counters and the full radix tree — for warm-state checkpointing. Tree maps
// are written with sorted keys so the byte stream is deterministic for
// identical logical state. The interior-path memo is not stored: it is a
// pure lookup shortcut that repopulates on the first post-restore walk.
func (pt *PageTable) EncodeState(w *ckpt.Writer) {
	w.Mark("pagetable")
	w.U64(uint64(pt.alloc.policy))
	w.U64(pt.alloc.next)
	w.U64(pt.alloc.seed)
	w.U64(pt.alloc.limit)
	w.U64(pt.mappedPages)
	w.U64(pt.tableNodes)
	encodeNode(w, pt.root)
}

func encodeNode(w *ckpt.Writer, n *node) {
	w.U64(uint64(n.frame))
	w.Bool(n.children != nil)
	if n.children != nil {
		keys := make([]uint64, 0, len(n.children))
		for k := range n.children {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		w.U64(uint64(len(keys)))
		for _, k := range keys {
			w.U64(k)
			encodeNode(w, n.children[k])
		}
	}
	w.Bool(n.leaves != nil)
	if n.leaves != nil {
		keys := make([]uint64, 0, len(n.leaves))
		for k := range n.leaves {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		w.U64(uint64(len(keys)))
		for _, k := range keys {
			w.U64(k)
			w.U64(uint64(n.leaves[k]))
		}
	}
}

// DecodeState restores state written by EncodeState, replacing the table's
// current contents. The allocator limit is verified against the configured
// one (a physical-memory mismatch would remap every frame).
func (pt *PageTable) DecodeState(r *ckpt.Reader) error {
	r.Expect("pagetable")
	policy := AllocPolicy(r.U64())
	next := r.U64()
	seed := r.U64()
	limit := r.U64()
	if r.Err() == nil && limit != pt.alloc.limit {
		r.Failf("pagetable: checkpoint physical memory (%d frames) does not match configured (%d)",
			limit, pt.alloc.limit)
	}
	mapped := r.U64()
	nodes := r.U64()
	root := decodeNode(r, 0)
	if r.Err() != nil {
		return r.Err()
	}
	pt.alloc.policy = policy
	pt.alloc.next = next
	pt.alloc.seed = seed
	pt.mappedPages = mapped
	pt.tableNodes = nodes
	pt.root = root
	pt.memoValid = false
	pt.memoLeaf = nil
	return nil
}

// maxRadixFanout bounds per-node child/leaf counts on decode (a radix node
// holds at most 512 entries).
const maxRadixFanout = 1 << arch.RadixIndexBits

func decodeNode(r *ckpt.Reader, depth int) *node {
	if depth >= arch.RadixLevels {
		r.Failf("pagetable: checkpoint radix tree deeper than %d levels", arch.RadixLevels)
		return nil
	}
	n := &node{frame: arch.PFN(r.U64())}
	if r.Bool() {
		count := r.U64()
		if count > maxRadixFanout {
			r.Failf("pagetable: checkpoint node fanout %d exceeds %d", count, maxRadixFanout)
			return nil
		}
		n.children = make(map[uint64]*node, count)
		for i := uint64(0); i < count && r.Err() == nil; i++ {
			k := r.U64()
			n.children[k] = decodeNode(r, depth+1)
		}
	}
	if r.Bool() {
		count := r.U64()
		if count > maxRadixFanout {
			r.Failf("pagetable: checkpoint leaf fanout %d exceeds %d", count, maxRadixFanout)
			return nil
		}
		n.leaves = make(map[uint64]arch.PFN, count)
		for i := uint64(0); i < count && r.Err() == nil; i++ {
			k := r.U64()
			n.leaves[k] = arch.PFN(r.U64())
		}
	}
	return n
}
