// Package pagetable implements the four-level radix page table the paper
// adds to its simulator (§III): "we allocate a four-level radix tree data
// structure as the page table. The page table contents are cached on the
// processor caches as in the real hardware."
//
// The table maps 36-bit VPNs through four levels of 512-entry nodes
// (PML4 → PDPT → PD → PT). Every node occupies a physical frame obtained
// from the same frame allocator that backs application pages, so page-walk
// accesses compete for cache capacity with application data exactly as on
// real hardware. Translations are created on first touch (demand paging
// with a zero-cost soft page fault, matching the paper's methodology of
// simulating whole applications after their working sets are mapped).
package pagetable

import (
	"fmt"

	"repro/internal/arch"
)

// AllocPolicy selects how the frame allocator assigns physical frames.
type AllocPolicy int

const (
	// AllocScrambled assigns frames in a pseudo-random (but
	// deterministic) order, modelling a long-running OS whose free list
	// is fragmented. This is the default: it decorrelates virtual and
	// physical locality, which matters for LLC set indexing.
	AllocScrambled AllocPolicy = iota
	// AllocSequential assigns frames in ascending order, modelling a
	// freshly booted machine with perfect contiguity.
	AllocSequential
)

// Allocator hands out physical frames deterministically.
type Allocator struct {
	policy AllocPolicy
	next   uint64
	seed   uint64
	limit  uint64
}

// NewAllocator builds an allocator for a physical memory of the given
// number of frames. The seed perturbs the scrambled ordering.
func NewAllocator(frames uint64, policy AllocPolicy, seed uint64) (*Allocator, error) {
	if frames == 0 {
		return nil, fmt.Errorf("pagetable: allocator needs at least one frame")
	}
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Allocator{policy: policy, seed: seed, limit: frames}, nil
}

// Alloc returns the next free frame. It fails only when physical memory is
// exhausted.
func (a *Allocator) Alloc() (arch.PFN, error) {
	if a.next >= a.limit {
		return 0, fmt.Errorf("pagetable: out of physical memory (%d frames)", a.limit)
	}
	n := a.next
	a.next++
	if a.policy == AllocSequential {
		return arch.PFN(n), nil
	}
	return arch.PFN(a.scramble(n)), nil
}

// Allocated returns how many frames have been handed out.
func (a *Allocator) Allocated() uint64 { return a.next }

// scramble maps the counter through a bijection on [0, limit): a balanced
// Feistel network over the smallest even-width power-of-two domain covering
// limit, with cycle walking for out-of-range intermediate values (the
// standard format-preserving-permutation construction). Distinct counters
// therefore always receive distinct frames.
func (a *Allocator) scramble(n uint64) uint64 {
	bits := uint(2) // even, ≥ 2
	for uint64(1)<<bits < a.limit {
		bits += 2
	}
	v := n
	for {
		v = feistel(v, bits, a.seed)
		if v < a.limit {
			return v
		}
	}
}

// feistel is a 4-round balanced Feistel permutation on [0, 2^bits); bits
// must be even.
func feistel(v uint64, bits uint, seed uint64) uint64 {
	half := bits / 2
	hmask := uint64(1)<<half - 1
	l, r := v>>half, v&hmask
	for round := uint64(0); round < 4; round++ {
		l, r = r, l^(mix(r+seed+round)&hmask)
	}
	return l<<half | r
}

// mix is a 64-bit finalizer (splitmix64-style) used as the Feistel round
// function.
func mix(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// node is one radix-tree node. Its frame is where the 512 PTEs live in
// simulated physical memory; children/leaves hold the next level.
type node struct {
	frame    arch.PFN
	children map[uint64]*node    // interior levels
	leaves   map[uint64]arch.PFN // leaf level only
}

// PageTable is a four-level radix page table plus the frame allocator.
type PageTable struct {
	alloc *Allocator
	root  *node

	// Last-path memo: consecutive translations overwhelmingly share the
	// interior radix path (everything above the PT level), so Translate
	// caches the node frames and the leaf-level node of the most recent
	// walk. Radix nodes are never freed or remapped, so the memo can only
	// go stale by pointing at a path that does not exist yet — and it is
	// only populated for paths that do.
	memoKey   uint64 // vpn >> RadixIndexBits of the memoized path
	memoValid bool
	memoSteps [arch.RadixLevels - 1]Step // interior steps (indices fixed by memoKey)
	memoLeaf  *node                      // PT-level node holding the leaves map

	mappedPages uint64
	tableNodes  uint64
}

// New creates an empty page table backed by the allocator.
func New(alloc *Allocator) (*PageTable, error) {
	if alloc == nil {
		return nil, fmt.Errorf("pagetable: nil allocator")
	}
	rootFrame, err := alloc.Alloc()
	if err != nil {
		return nil, err
	}
	return &PageTable{
		alloc:      alloc,
		root:       &node{frame: rootFrame, children: make(map[uint64]*node)},
		tableNodes: 1,
	}, nil
}

// Step is one page-table access of a walk: the level it reads (0 = PML4,
// 3 = PT) and the physical address of the PTE, which the walker sends
// through the data-cache hierarchy.
type Step struct {
	Level   int
	PTEAddr arch.PAddr
}

// Translate maps vpn to its frame, allocating the mapping (and any missing
// radix nodes) on first touch. steps receives the full four-level walk for
// this VPN — the walker truncates it according to its page-walk-cache hits.
// The steps slice is appended to dst to let callers reuse storage.
func (pt *PageTable) Translate(vpn arch.VPN, dst []Step) (arch.PFN, []Step, error) {
	// Fast path: the interior radix path matches the previous walk's, so
	// the memoized steps and leaf node stand in for three map lookups.
	if pt.memoValid && uint64(vpn)>>arch.RadixIndexBits == pt.memoKey {
		dst = append(dst, pt.memoSteps[:]...)
		return pt.leafStep(pt.memoLeaf, vpn, dst)
	}

	n := pt.root
	for level := 0; level < arch.RadixLevels-1; level++ {
		idx := vpn.RadixIndex(level)
		dst = append(dst, Step{
			Level:   level,
			PTEAddr: n.frame.Addr() + arch.PAddr(idx*arch.PTESize),
		})
		child, ok := n.children[idx]
		if !ok {
			frame, err := pt.alloc.Alloc()
			if err != nil {
				return 0, dst, err
			}
			child = &node{frame: frame}
			if level == arch.RadixLevels-2 {
				child.leaves = make(map[uint64]arch.PFN)
			} else {
				child.children = make(map[uint64]*node)
			}
			n.children[idx] = child
			pt.tableNodes++
		}
		n = child
	}
	// Memoize the now-complete interior path (nodes are never freed, so
	// the memo cannot dangle).
	pt.memoKey = uint64(vpn) >> arch.RadixIndexBits
	copy(pt.memoSteps[:], dst[len(dst)-(arch.RadixLevels-1):])
	pt.memoLeaf = n
	pt.memoValid = true
	return pt.leafStep(n, vpn, dst)
}

// leafStep emits the PT-level step for vpn against the given leaf node and
// resolves (allocating on first touch) the final translation.
func (pt *PageTable) leafStep(n *node, vpn arch.VPN, dst []Step) (arch.PFN, []Step, error) {
	idx := vpn.RadixIndex(arch.RadixLevels - 1)
	dst = append(dst, Step{
		Level:   arch.RadixLevels - 1,
		PTEAddr: n.frame.Addr() + arch.PAddr(idx*arch.PTESize),
	})
	pfn, ok := n.leaves[idx]
	if !ok {
		var err error
		pfn, err = pt.alloc.Alloc()
		if err != nil {
			return 0, dst, err
		}
		n.leaves[idx] = pfn
		pt.mappedPages++
	}
	return pfn, dst, nil
}

// Unmap removes the leaf translation for vpn, reporting whether a mapping
// existed. Interior radix nodes stay allocated (as on real hardware, where
// freeing page-table pages is a separate, rare operation), so the
// interior-path memo remains valid; the freed frame is not returned to the
// allocator — a later touch of the same page faults in a fresh frame,
// which is what makes post-shootdown reuse visible to the TLB hierarchy.
func (pt *PageTable) Unmap(vpn arch.VPN) bool {
	n := pt.root
	for level := 0; level < arch.RadixLevels-1; level++ {
		child, ok := n.children[vpn.RadixIndex(level)]
		if !ok {
			return false
		}
		n = child
	}
	idx := vpn.RadixIndex(arch.RadixLevels - 1)
	if _, ok := n.leaves[idx]; !ok {
		return false
	}
	delete(n.leaves, idx)
	pt.mappedPages--
	return true
}

// TranslateIfMapped returns the frame for vpn only if a mapping already
// exists; it never allocates. TLB prefetchers use it so that speculative
// translations do not fault in new pages.
func (pt *PageTable) TranslateIfMapped(vpn arch.VPN) (arch.PFN, bool) {
	n := pt.root
	for level := 0; level < arch.RadixLevels-1; level++ {
		child, ok := n.children[vpn.RadixIndex(level)]
		if !ok {
			return 0, false
		}
		n = child
	}
	pfn, ok := n.leaves[vpn.RadixIndex(arch.RadixLevels-1)]
	return pfn, ok
}

// NodeFrame returns the frame of the radix node reached after consuming
// `levels` levels of the walk for vpn (0 returns the root's frame). It
// reports ok=false when the path does not exist yet; the walker uses this
// to validate page-walk-cache contents.
func (pt *PageTable) NodeFrame(vpn arch.VPN, levels int) (arch.PFN, bool) {
	n := pt.root
	for l := 0; l < levels; l++ {
		child, ok := n.children[vpn.RadixIndex(l)]
		if !ok {
			return 0, false
		}
		n = child
	}
	return n.frame, true
}

// MappedPages returns how many leaf translations exist.
func (pt *PageTable) MappedPages() uint64 { return pt.mappedPages }

// TableNodes returns how many radix nodes (including the root) exist.
func (pt *PageTable) TableNodes() uint64 { return pt.tableNodes }
