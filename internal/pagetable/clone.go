package pagetable

import "repro/internal/arch"

// Clone deep-copies the allocator: both copies hand out the same future
// frame sequence independently.
func (a *Allocator) Clone() *Allocator {
	c := *a
	return &c
}

// Clone deep-copies the page table — the full radix tree, the allocator and
// the interior-path memo — for warm-state forking. Node maps are copied
// recursively; the memoized leaf pointer is remapped to the corresponding
// node of the cloned tree during the same traversal, so the clone's fast
// path stays primed without aliasing the original's nodes.
func (pt *PageTable) Clone() *PageTable {
	return pt.CloneWith(pt.alloc.Clone())
}

// CloneWith is Clone with the allocator injected instead of copied. Tables
// sharing one frame allocator (per-tenant address spaces over a single
// physical memory) are forked by cloning the allocator once and handing
// the same clone to every table's CloneWith, preserving the sharing in the
// forked set.
func (pt *PageTable) CloneWith(alloc *Allocator) *PageTable {
	n := &PageTable{
		alloc:       alloc,
		memoKey:     pt.memoKey,
		memoValid:   pt.memoValid,
		memoSteps:   pt.memoSteps,
		mappedPages: pt.mappedPages,
		tableNodes:  pt.tableNodes,
	}
	n.root = cloneNode(pt.root, pt.memoLeaf, &n.memoLeaf)
	if n.memoLeaf == nil {
		// The memoized path was not found (memo never set); drop the memo
		// rather than alias the original tree. Results are unaffected —
		// the memo is a pure lookup shortcut.
		n.memoValid = false
	}
	return n
}

// cloneNode recursively copies a radix node. When it copies the node that
// memoLeaf points at, it records the copy in memoOut.
func cloneNode(src, memoLeaf *node, memoOut **node) *node {
	if src == nil {
		return nil
	}
	dst := &node{frame: src.frame}
	if src.children != nil {
		dst.children = make(map[uint64]*node, len(src.children))
		for k, ch := range src.children {
			dst.children[k] = cloneNode(ch, memoLeaf, memoOut)
		}
	}
	if src.leaves != nil {
		dst.leaves = make(map[uint64]arch.PFN, len(src.leaves))
		for k, pfn := range src.leaves {
			dst.leaves[k] = pfn
		}
	}
	if src == memoLeaf {
		*memoOut = dst
	}
	return dst
}
