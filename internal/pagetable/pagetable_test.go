package pagetable

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func newPT(t *testing.T, frames uint64, pol AllocPolicy) *PageTable {
	t.Helper()
	a, err := NewAllocator(frames, pol, 1)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestAllocatorSequential(t *testing.T) {
	a, err := NewAllocator(4, AllocSequential, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		f, err := a.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if uint64(f) != i {
			t.Errorf("frame %d = %d", i, f)
		}
	}
	if _, err := a.Alloc(); err == nil {
		t.Error("allocation beyond limit succeeded")
	}
}

func TestAllocatorScrambledIsPermutation(t *testing.T) {
	const frames = 1000
	a, err := NewAllocator(frames, AllocScrambled, 42)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[arch.PFN]bool, frames)
	for i := 0; i < frames; i++ {
		f, err := a.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if uint64(f) >= frames {
			t.Fatalf("frame %d out of range", f)
		}
		if seen[f] {
			t.Fatalf("frame %d allocated twice", f)
		}
		seen[f] = true
	}
	if len(seen) != frames {
		t.Fatalf("allocated %d distinct frames, want %d", len(seen), frames)
	}
}

func TestAllocatorScrambledDeterministic(t *testing.T) {
	mk := func() []arch.PFN {
		a, _ := NewAllocator(64, AllocScrambled, 7)
		out := make([]arch.PFN, 64)
		for i := range out {
			out[i], _ = a.Alloc()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("allocation %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestAllocatorRejectsZeroFrames(t *testing.T) {
	if _, err := NewAllocator(0, AllocSequential, 0); err == nil {
		t.Error("zero-frame allocator accepted")
	}
}

func TestTranslateFirstTouchAllocates(t *testing.T) {
	pt := newPT(t, 1<<20, AllocSequential)
	vpn := arch.VPN(0x12345)
	pfn, steps, err := pt.Translate(vpn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != arch.RadixLevels {
		t.Fatalf("walk has %d steps, want %d", len(steps), arch.RadixLevels)
	}
	// Re-translation is stable and allocates nothing new.
	before := pt.MappedPages()
	pfn2, _, err := pt.Translate(vpn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pfn2 != pfn {
		t.Errorf("unstable translation: %d then %d", pfn, pfn2)
	}
	if pt.MappedPages() != before {
		t.Error("re-translation allocated a page")
	}
}

func TestTranslateDistinctVPNsDistinctPFNs(t *testing.T) {
	pt := newPT(t, 1<<20, AllocScrambled)
	seen := make(map[arch.PFN]arch.VPN)
	for i := 0; i < 5000; i++ {
		vpn := arch.VPN(i * 7919) // spread across the radix tree
		pfn, _, err := pt.Translate(vpn, nil)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[pfn]; dup {
			t.Fatalf("PFN %d assigned to both VPN %d and %d", pfn, prev, vpn)
		}
		seen[pfn] = vpn
	}
}

func TestWalkStepsAreInTableFrames(t *testing.T) {
	pt := newPT(t, 1<<20, AllocSequential)
	vpn := arch.VPN(0x00F0_1234_5)
	_, steps, err := pt.Translate(vpn, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range steps {
		frame, ok := pt.NodeFrame(vpn, s.Level)
		if !ok {
			t.Fatalf("node for level %d missing after translate", s.Level)
		}
		if s.PTEAddr.Page() != frame {
			t.Errorf("level %d PTE at frame %d, node frame is %d",
				s.Level, s.PTEAddr.Page(), frame)
		}
		wantOff := vpn.RadixIndex(s.Level) * arch.PTESize
		if uint64(s.PTEAddr)&arch.PageOffsetMask != wantOff {
			t.Errorf("level %d PTE offset %#x, want %#x",
				s.Level, uint64(s.PTEAddr)&arch.PageOffsetMask, wantOff)
		}
	}
}

func TestNodeFrameMissingPath(t *testing.T) {
	pt := newPT(t, 1024, AllocSequential)
	if _, ok := pt.NodeFrame(arch.VPN(0xABC_DEF_12), 3); ok {
		t.Error("NodeFrame reported a path that was never created")
	}
	if f, ok := pt.NodeFrame(arch.VPN(0), 0); !ok || f != 0 {
		t.Errorf("root frame = %d,%v; want 0,true (sequential alloc)", f, ok)
	}
}

func TestSharedInteriorNodes(t *testing.T) {
	pt := newPT(t, 1<<20, AllocSequential)
	// Two VPNs differing only in the last radix index share 3 nodes.
	base := arch.VPN(0x123456000 >> arch.PageShift)
	_, _, err := pt.Translate(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	nodesBefore := pt.TableNodes()
	_, _, err = pt.Translate(base+1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pt.TableNodes() != nodesBefore {
		t.Errorf("adjacent page allocated %d new nodes, want 0",
			pt.TableNodes()-nodesBefore)
	}
}

func TestTranslateOutOfMemory(t *testing.T) {
	pt := newPT(t, 5, AllocSequential) // root + 3 interior + 1 leaf page
	if _, _, err := pt.Translate(0, nil); err != nil {
		t.Fatalf("first translation should fit: %v", err)
	}
	// A VPN in a different PML4 subtree needs 4 new frames: must fail.
	if _, _, err := pt.Translate(arch.VPN(1)<<27, nil); err == nil {
		t.Error("expected out-of-memory error")
	}
}

// Property: translation is a function (stable) and injective over any set
// of VPNs.
func TestTranslateInjectiveProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		pt := newPT(t, 1<<22, AllocScrambled)
		got := make(map[arch.VPN]arch.PFN)
		rev := make(map[arch.PFN]arch.VPN)
		for _, r := range raw {
			vpn := arch.VPN(r)
			pfn, _, err := pt.Translate(vpn, nil)
			if err != nil {
				return false
			}
			if prev, ok := got[vpn]; ok && prev != pfn {
				return false
			}
			got[vpn] = pfn
			if prevVPN, ok := rev[pfn]; ok && prevVPN != vpn {
				return false
			}
			rev[pfn] = vpn
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the Feistel scramble is a bijection on [0, limit) for assorted
// limits.
func TestScrambleBijectionProperty(t *testing.T) {
	f := func(limRaw uint16, seed uint64) bool {
		limit := uint64(limRaw%2000) + 1
		a, err := NewAllocator(limit, AllocScrambled, seed)
		if err != nil {
			return false
		}
		seen := make(map[arch.PFN]bool, limit)
		for i := uint64(0); i < limit; i++ {
			f, err := a.Alloc()
			if err != nil || uint64(f) >= limit || seen[f] {
				return false
			}
			seen[f] = true
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTranslateIfMapped(t *testing.T) {
	pt := newPT(t, 1<<16, AllocSequential)
	if _, ok := pt.TranslateIfMapped(42); ok {
		t.Error("unmapped VPN reported mapped")
	}
	want, _, err := pt.Translate(42, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := pt.TranslateIfMapped(42)
	if !ok || got != want {
		t.Errorf("TranslateIfMapped = %d,%v; want %d,true", got, ok, want)
	}
	// A sibling VPN sharing interior nodes but no leaf stays unmapped.
	if _, ok := pt.TranslateIfMapped(43); ok {
		t.Error("sibling VPN reported mapped")
	}
	if before := pt.MappedPages(); before != 1 {
		t.Errorf("MappedPages = %d, want 1 (lookup must not allocate)", before)
	}
}
