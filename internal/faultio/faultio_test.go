package faultio

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFailingReaderFailsAtOffset(t *testing.T) {
	src := strings.NewReader("0123456789")
	r := NewFailingReader(src, 4, nil)
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if string(got) != "0123" {
		t.Fatalf("delivered %q before failing, want %q", got, "0123")
	}
	// The failure must be sticky.
	if _, err := r.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("second read err = %v, want ErrInjected", err)
	}
}

func TestFailingReaderPassesThroughShortSource(t *testing.T) {
	r := NewFailingReader(strings.NewReader("ab"), 100, nil)
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "ab" {
		t.Fatalf("ReadAll = (%q, %v), want (ab, nil)", got, err)
	}
}

func TestTruncateEndsWithCleanEOF(t *testing.T) {
	got, err := io.ReadAll(Truncate(strings.NewReader("0123456789"), 3))
	if err != nil || string(got) != "012" {
		t.Fatalf("ReadAll = (%q, %v), want (012, nil)", got, err)
	}
}

func TestFlakyReaderFailsIntermittently(t *testing.T) {
	boom := errors.New("transient")
	r := NewFlakyReader(strings.NewReader("abcdef"), 2, boom)
	buf := make([]byte, 1)
	var out []byte
	fails := 0
	for i := 0; i < 12; i++ {
		n, err := r.Read(buf)
		if errors.Is(err, boom) {
			fails++
			continue
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, buf[:n]...)
	}
	if string(out) != "abcdef" {
		t.Fatalf("recovered %q across retries, want abcdef", out)
	}
	if fails == 0 {
		t.Fatal("no injected failures observed")
	}
}

func TestFailingWriterFillsUp(t *testing.T) {
	var sink bytes.Buffer
	w := NewFailingWriter(&sink, 5, nil)
	n, err := w.Write([]byte("0123"))
	if n != 4 || err != nil {
		t.Fatalf("first write = (%d, %v), want (4, nil)", n, err)
	}
	// Crossing the boundary: partial acceptance plus the error.
	n, err = w.Write([]byte("4567"))
	if n != 1 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("boundary write = (%d, %v), want (1, ErrNoSpace)", n, err)
	}
	if sink.String() != "01234" {
		t.Fatalf("sink holds %q, want %q", sink.String(), "01234")
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("post-full write err = %v, want ErrNoSpace", err)
	}
}

func TestFailingWriterDiscardsWithoutSink(t *testing.T) {
	w := NewFailingWriter(nil, 2, nil)
	if n, err := w.Write([]byte("ab")); n != 2 || err != nil {
		t.Fatalf("write = (%d, %v), want (2, nil)", n, err)
	}
	if _, err := w.Write([]byte("c")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
}

func TestCorruptReaderFlipsOneByte(t *testing.T) {
	src := []byte("hello world")
	r := NewCorruptReader(bytes.NewReader(src), 6)
	got, err := io.ReadAll(io.MultiReader(io.LimitReader(r, 3), r)) // split reads
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), src...)
	want[6] ^= 0xFF
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
}
