// Package faultio provides deterministic fault-injecting io.Reader and
// io.Writer wrappers for exercising error paths: truncated or corrupted
// trace files, checkpoints that die mid-read, metric sinks on a full disk.
// Every wrapper is purely deterministic — failures trigger at byte offsets
// or call counts chosen by the test — so failure-path tests are as
// reproducible as the happy-path ones.
package faultio

import (
	"errors"
	"io"
)

// ErrInjected is the default error returned by failing wrappers.
var ErrInjected = errors.New("faultio: injected fault")

// ErrNoSpace mimics a full disk; FailingWriter returns it by default.
var ErrNoSpace = errors.New("faultio: no space left on device")

// FailingReader yields the underlying reader's bytes until failAfter bytes
// have been delivered, then returns err on every subsequent call. Unlike a
// truncation (io.LimitReader, which ends in a clean EOF), a FailingReader
// models a read that dies mid-stream: a disappearing NFS mount, a closed
// pipe, an I/O error.
type FailingReader struct {
	r         io.Reader
	remaining int64
	err       error
}

// NewFailingReader wraps r to fail with err after failAfter bytes. A nil
// err selects ErrInjected.
func NewFailingReader(r io.Reader, failAfter int64, err error) *FailingReader {
	if err == nil {
		err = ErrInjected
	}
	return &FailingReader{r: r, remaining: failAfter, err: err}
}

// Read implements io.Reader.
func (f *FailingReader) Read(p []byte) (int, error) {
	if f.remaining <= 0 {
		return 0, f.err
	}
	if int64(len(p)) > f.remaining {
		p = p[:f.remaining]
	}
	n, err := f.r.Read(p)
	f.remaining -= int64(n)
	if err == io.EOF {
		// The underlying data ran out before the fault point; pass the
		// EOF through so short sources still terminate.
		return n, err
	}
	if f.remaining <= 0 && err == nil {
		// Deliver the last good bytes now; the next call fails.
		return n, nil
	}
	return n, err
}

// Truncate returns a reader that delivers only the first n bytes of r and
// then reports a clean EOF — a file cut off at byte n, e.g. by a crashed
// writer or a partial copy.
func Truncate(r io.Reader, n int64) io.Reader { return io.LimitReader(r, n) }

// FlakyReader fails every failEvery-th Read call with a transient error but
// continues delivering data on the calls in between — a source that needs
// retries. failEvery <= 0 never fails.
type FlakyReader struct {
	r         io.Reader
	failEvery int
	calls     int
	err       error
}

// NewFlakyReader wraps r to fail every failEvery-th call with err (nil
// selects ErrInjected).
func NewFlakyReader(r io.Reader, failEvery int, err error) *FlakyReader {
	if err == nil {
		err = ErrInjected
	}
	return &FlakyReader{r: r, failEvery: failEvery, err: err}
}

// Read implements io.Reader.
func (f *FlakyReader) Read(p []byte) (int, error) {
	f.calls++
	if f.failEvery > 0 && f.calls%f.failEvery == 0 {
		return 0, f.err
	}
	return f.r.Read(p)
}

// FailingWriter accepts up to capacity bytes and then fails with err — a
// disk that fills up mid-write. Accepted bytes are forwarded to w when w is
// non-nil and discarded otherwise.
type FailingWriter struct {
	w         io.Writer
	remaining int64
	err       error
}

// NewFailingWriter wraps w (which may be nil to discard) to fail with err
// after capacity bytes. A nil err selects ErrNoSpace.
func NewFailingWriter(w io.Writer, capacity int64, err error) *FailingWriter {
	if err == nil {
		err = ErrNoSpace
	}
	return &FailingWriter{w: w, remaining: capacity, err: err}
}

// Write implements io.Writer. A write that crosses the capacity boundary
// is accepted partially, exactly like a real full disk.
func (f *FailingWriter) Write(p []byte) (int, error) {
	if f.remaining <= 0 {
		return 0, f.err
	}
	n := len(p)
	short := false
	if int64(n) > f.remaining {
		n, short = int(f.remaining), true
	}
	if f.w != nil {
		m, err := f.w.Write(p[:n])
		f.remaining -= int64(m)
		if err != nil {
			return m, err
		}
	} else {
		f.remaining -= int64(n)
	}
	if short {
		return n, f.err
	}
	return n, nil
}

// CorruptReader flips the bits of the byte at offset (0-based) in the
// stream read through it, leaving everything else untouched — a single
// corrupted byte in an otherwise well-formed file.
type CorruptReader struct {
	r      io.Reader
	offset int64
	pos    int64
}

// NewCorruptReader wraps r to corrupt the byte at offset.
func NewCorruptReader(r io.Reader, offset int64) *CorruptReader {
	return &CorruptReader{r: r, offset: offset}
}

// Read implements io.Reader.
func (c *CorruptReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if i := c.offset - c.pos; i >= 0 && i < int64(n) {
		p[i] ^= 0xFF
	}
	c.pos += int64(n)
	return n, err
}
