// Package deadpred is the public API of this reproduction of "Dead Page
// and Dead Block Predictors: Cleaning TLBs and Caches Together" (Mazumdar,
// Mitra, Basu — HPCA 2021).
//
// It exposes three layers:
//
//   - the simulated machine (System, Config): the paper's Table I platform
//     — split L1 TLBs over a unified L2 TLB, a radix page walker with
//     page-walk caches, a three-level inclusive cache hierarchy, and an
//     out-of-order timing core;
//   - the predictors: the paper's dpPred (dead-page) and cbPred
//     (correlating dead-block) plus the AIP, SHiP and oracle baselines;
//   - the evaluation: the 14 Table II workload models and the experiment
//     runner that regenerates every figure and table of the paper.
//
// # Quick start
//
//	cfg := deadpred.DefaultConfig()
//	sys, err := deadpred.New(cfg)
//	if err != nil { ... }
//	dp, cb, err := deadpred.AttachPaperPredictors(sys)
//	if err != nil { ... }
//	w, err := deadpred.WorkloadByName("cactusADM")
//	if err != nil { ... }
//	gen := w.New(1)
//	sys.Run(gen, 300_000) // warmup
//	sys.StartMeasurement()
//	sys.Run(gen, 1_000_000)
//	res := sys.Result()
//	fmt.Printf("IPC %.3f, LLT MPKI %.2f (dpPred bypassed %d fills)\n",
//		res.IPC, res.LLTMPKI, dp.Stats().Predictions)
//	_ = cb
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package deadpred

import (
	"io"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/pred"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Machine model.
type (
	// System is one simulated machine instance.
	System = sim.System
	// Config describes the simulated machine (Table I defaults via
	// DefaultConfig).
	Config = sim.Config
	// CacheConfig sizes one data-cache level.
	CacheConfig = sim.CacheConfig
	// Result summarizes a measured simulation region.
	Result = sim.Result
)

// Workloads and traces.
type (
	// Workload is one entry of the paper's Table II suite.
	Workload = trace.Workload
	// Access is one memory reference of a trace.
	Access = trace.Access
	// Generator produces an unbounded deterministic access stream.
	Generator = trace.Generator
	// ErrGenerator is a Generator that latches mid-stream failures
	// (e.g. a Replayer over a truncated trace); check Err after draining.
	ErrGenerator = trace.ErrGenerator
	// MixSpec declares a custom workload as a weighted mix of streams.
	MixSpec = trace.MixSpec
	// StreamSpec is one stream of a MixSpec.
	StreamSpec = trace.StreamSpec
	// Pattern selects how a stream walks its region.
	Pattern = trace.Pattern
)

// Stream patterns for custom workloads.
const (
	// PatternSequential walks the region element by element.
	PatternSequential = trace.Sequential
	// PatternStrided walks with a fixed (often page-crossing) stride.
	PatternStrided = trace.Strided
	// PatternRandom touches uniformly random elements.
	PatternRandom = trace.Random
	// PatternPointerChase touches random elements with each access
	// dependent on the previous (serialized by the core).
	PatternPointerChase = trace.PointerChase
	// PatternHotCold splits accesses between a hot subset and the region.
	PatternHotCold = trace.HotCold
	// PatternSkewed draws elements with power-law popularity.
	PatternSkewed = trace.Skewed
)

// Predictors.
type (
	// DPPred is the paper's dead-page predictor (§V-A).
	DPPred = core.DPPred
	// CBPred is the paper's correlating dead-block predictor (§V-B).
	CBPred = core.CBPred
	// DPPredConfig parameterizes dpPred.
	DPPredConfig = core.DPPredConfig
	// CBPredConfig parameterizes cbPred.
	CBPredConfig = core.CBPredConfig
	// TLBPredictor is the LLT predictor interface.
	TLBPredictor = pred.TLBPredictor
	// LLCPredictor is the LLC predictor interface.
	LLCPredictor = pred.LLCPredictor
)

// Observability (DESIGN.md §8).
type (
	// Observer bundles the telemetry hooks a System or Runner accepts.
	Observer = obs.Observer
	// Tracer records structured hook-point events into a ring buffer and
	// an optional sink.
	Tracer = obs.Tracer
	// TraceEvent is one recorded hook-point event.
	TraceEvent = obs.Event
	// TraceSink receives events as they are emitted (JSONL, CSV, null).
	TraceSink = obs.Sink
	// MetricsRegistry holds named counters, gauges and probes.
	MetricsRegistry = obs.Registry
	// IntervalRecorder collects per-N-access time-series samples.
	IntervalRecorder = obs.IntervalRecorder
	// IntervalSample is one time-series point.
	IntervalSample = obs.IntervalSample
)

// Experiments.
type (
	// Runner executes experiment setups with memoization.
	Runner = exp.Runner
	// Params sets simulation lengths for experiments.
	Params = exp.Params
	// Series is a formatted experiment result grid.
	Series = exp.Series
	// Setup names a machine + predictor combination.
	Setup = exp.Setup
)

// DefaultConfig returns the paper's Table I machine configuration.
func DefaultConfig() Config { return sim.DefaultConfig() }

// New builds a simulated machine with no predictors attached.
func New(cfg Config) (*System, error) { return sim.New(cfg) }

// Workloads returns the Table II workload suite in the paper's order.
func Workloads() []Workload { return trace.Workloads() }

// WorkloadByName finds a Table II workload ("cactusADM", "cc", "cg.B",
// "sssp", "lbm", "Triangle", "KCore", "canneal", "pr", "graph500", "bfs",
// "bc", "mis", "mcf").
func WorkloadByName(name string) (Workload, error) { return trace.ByName(name) }

// NewMix builds a generator for a custom workload specification.
func NewMix(spec MixSpec, seed uint64) (Generator, error) { return trace.NewMix(spec, seed) }

// RecordTrace captures n accesses from a generator into w using the
// repository's binary trace format (see cmd/tracedump).
func RecordTrace(w io.Writer, g Generator, n uint64) error { return trace.Record(w, g, n) }

// NewReplayer opens a recorded trace as a Generator. With loop=true the
// source must be an io.ReadSeeker and the trace restarts at EOF.
func NewReplayer(r io.Reader, loop bool) (*trace.Replayer, error) {
	return trace.NewReplayer(r, loop)
}

// AttachPaperPredictors installs the paper's full proposal — dpPred on the
// LLT and cbPred on the LLC, coupled through the PFN filter queue — with
// the default §V parameters, and returns both predictors for inspection.
func AttachPaperPredictors(s *System) (*DPPred, *CBPred, error) {
	dp, err := core.NewDPPred(core.DefaultDPPredConfig(s.LLT().Entries()))
	if err != nil {
		return nil, nil, err
	}
	cb, err := core.NewCBPred(core.DefaultCBPredConfig(s.LLC().Capacity()))
	if err != nil {
		return nil, nil, err
	}
	s.SetTLBPredictor(dp)
	s.SetLLCPredictor(cb)
	return dp, cb, nil
}

// AttachDPPred installs only the dead-page predictor with default
// parameters.
func AttachDPPred(s *System) (*DPPred, error) {
	dp, err := core.NewDPPred(core.DefaultDPPredConfig(s.LLT().Entries()))
	if err != nil {
		return nil, err
	}
	s.SetTLBPredictor(dp)
	return dp, nil
}

// NewRunner creates an experiment runner.
func NewRunner(p Params) *Runner { return exp.NewRunner(p) }

// DefaultParams returns the full-fidelity experiment parameters; see
// QuickParams for a faster smoke configuration.
func DefaultParams() Params { return exp.DefaultParams() }

// QuickParams returns fast experiment parameters for demos and CI.
func QuickParams() Params { return exp.QuickParams() }

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer creates a tracer with the given ring size (0 picks the
// default) writing to sink. Use NewJSONLSink/NewCSVSink for file output
// or obs.NullSink to keep events only in the ring.
func NewTracer(ringSize int, sink TraceSink) *Tracer { return obs.NewTracer(ringSize, sink) }

// NewJSONLSink streams events to w as one JSON object per line.
func NewJSONLSink(w io.Writer) *obs.JSONLSink { return obs.NewJSONLSink(w) }

// NewCSVSink streams events to w as CSV rows under a fixed header.
func NewCSVSink(w io.Writer) *obs.CSVSink { return obs.NewCSVSink(w) }

// NewIntervalRecorder creates an interval recorder sampling every `every`
// accesses.
func NewIntervalRecorder(every uint64) *IntervalRecorder { return obs.NewIntervalRecorder(every) }
