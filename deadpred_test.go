package deadpred

import "testing"

func TestPublicAPISmoke(t *testing.T) {
	cfg := DefaultConfig()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dp, cb, err := AttachPaperPredictors(sys)
	if err != nil {
		t.Fatal(err)
	}
	w, err := WorkloadByName("cc")
	if err != nil {
		t.Fatal(err)
	}
	g := w.New(1)
	if err := sys.Run(g, 50_000); err != nil {
		t.Fatal(err)
	}
	sys.StartMeasurement()
	if err := sys.Run(g, 100_000); err != nil {
		t.Fatal(err)
	}
	res := sys.Result()
	if res.IPC <= 0 || res.Instructions == 0 {
		t.Fatalf("no progress: %+v", res)
	}
	// The coupled predictors must both be live.
	if dp.Stats().Increments == 0 {
		t.Error("dpPred saw no training events")
	}
	if cb.Stats().Notifications == 0 && dp.Stats().Predictions > 0 {
		t.Error("cbPred heard no DOA pages despite dpPred predictions")
	}
}

func TestWorkloadSuiteComplete(t *testing.T) {
	ws := Workloads()
	if len(ws) != 14 {
		t.Fatalf("suite has %d workloads, want 14", len(ws))
	}
	if _, err := WorkloadByName("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestCustomMixThroughPublicAPI(t *testing.T) {
	spec := MixSpec{
		Name:   "custom",
		GapMin: 1, GapMax: 3,
		Streams: []StreamSpec{
			{Label: "scan", PC: 0x400000, Pattern: PatternSequential,
				Base: 0x10000000, Size: 8 << 20, Weight: 1},
			{Label: "probe", PC: 0x410000, Pattern: PatternSkewed, SkewAlpha: 2,
				Base: 0x20000000, Size: 16 << 20, Weight: 2},
		},
	}
	g, err := NewMix(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AttachDPPred(sys); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(g, 30_000); err != nil {
		t.Fatal(err)
	}
	if sys.Result(); sys.LLT().Stats().Lookups == 0 {
		t.Error("LLT never consulted")
	}
}

func TestRunnerThroughPublicAPI(t *testing.T) {
	r := NewRunner(Params{Warmup: 10_000, Measure: 30_000, Seed: 1, SampleEvery: 5_000})
	w, err := WorkloadByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(w, Setup{Name: "baseline"})
	if err != nil {
		t.Fatal(err)
	}
	if res.MemAccesses != 30_000 {
		t.Errorf("measured %d accesses, want 30000", res.MemAccesses)
	}
}
