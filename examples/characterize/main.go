// Characterize: reproduce the §IV dead-entry characterization for a single
// workload — how many LLT entries and LLC blocks are dead or dead-on-
// arrival, and how strongly DOA blocks concentrate on DOA pages (the
// observation behind cbPred).
//
//	go run ./examples/characterize [workload]
//	go run ./examples/characterize -warmup 5000 -n 20000 pr   # smoke-test scale
package main

import (
	"flag"
	"fmt"
	"log"

	deadpred "repro"
)

func main() {
	var (
		warmup  = flag.Uint64("warmup", 200_000, "warmup accesses before measurement")
		measure = flag.Uint64("n", 800_000, "measured accesses")
	)
	flag.Parse()
	name := "pr"
	if flag.NArg() > 0 {
		name = flag.Arg(0)
	}
	w, err := deadpred.WorkloadByName(name)
	if err != nil {
		log.Fatal(err)
	}

	cfg := deadpred.DefaultConfig()
	sys, err := deadpred.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	g := w.New(1)
	if err := sys.Run(g, *warmup); err != nil { // warm the hierarchy
		log.Fatal(err)
	}
	sys.EnableCharacterization(*measure / 40)
	sys.StartMeasurement()
	if err := sys.Run(g, *measure); err != nil {
		log.Fatal(err)
	}
	sys.Finish()
	res := sys.Result()

	fmt.Printf("workload %s — %s\n\n", w.Name, w.Description)

	llt := res.LLTDead
	fmt.Println("last-level TLB (Figures 1 and 2):")
	fmt.Printf("  sampled residency: %5.1f%% dead at any time, %5.1f%% DOA\n",
		100*llt.SampledDeadFrac(), 100*llt.SampledDOAFrac())
	fmt.Printf("  evictions:         %5.1f%% DOA, %5.1f%% mostly dead, %5.1f%% mostly live\n",
		100*llt.DOAFrac(), 100*llt.MostlyDeadFrac(),
		100*(1-llt.DOAFrac()-llt.MostlyDeadFrac()))

	llc := res.LLCDead
	fmt.Println("\nlast-level cache (Figures 3 and 4):")
	fmt.Printf("  sampled residency: %5.1f%% dead at any time, %5.1f%% DOA\n",
		100*llc.SampledDeadFrac(), 100*llc.SampledDOAFrac())
	fmt.Printf("  evictions:         %5.1f%% DOA, %5.1f%% mostly dead\n",
		100*llc.DOAFrac(), 100*llc.MostlyDeadFrac())

	corr := res.Correlation
	fmt.Println("\ncorrelation (Table III):")
	fmt.Printf("  %d LLC DOA blocks observed; %.1f%% fall on a DOA page in the LLT\n",
		corr.DOABlocks, corr.Percent())
	fmt.Println("\nThe paper's two key observations should be visible: most LLT entries")
	fmt.Println("are dead-on-arrival, and DOA cache blocks concentrate on DOA pages —")
	fmt.Println("which is exactly what dpPred and cbPred exploit.")
}
