// Quickstart: run the paper's full proposal (dpPred + cbPred) on one
// memory-intensive workload and compare against the unmodified baseline.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -warmup 10000 -n 40000   # smoke-test scale
package main

import (
	"flag"
	"fmt"
	"log"

	deadpred "repro"
)

func main() {
	var (
		warmup  = flag.Uint64("warmup", 300_000, "warmup accesses before measurement")
		measure = flag.Uint64("n", 1_000_000, "measured accesses")
	)
	flag.Parse()
	const (
		workload = "cactusADM"
		seed     = 1
	)

	w, err := deadpred.WorkloadByName(workload)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: the Table I machine with plain LRU everywhere.
	base, err := runOnce(w, seed, *warmup, *measure, false)
	if err != nil {
		log.Fatal(err)
	}

	// The proposal: dpPred guiding the LLT, cbPred guiding the LLC.
	prop, err := runOnce(w, seed, *warmup, *measure, true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s (%s)\n\n", w.Name, w.Description)
	fmt.Printf("%-22s %12s %12s\n", "", "baseline", "dpPred+cbPred")
	fmt.Printf("%-22s %12.4f %12.4f\n", "IPC", base.IPC, prop.IPC)
	fmt.Printf("%-22s %12.3f %12.3f\n", "LLT MPKI", base.LLTMPKI, prop.LLTMPKI)
	fmt.Printf("%-22s %12.3f %12.3f\n", "LLC MPKI", base.LLCMPKI, prop.LLCMPKI)
	fmt.Printf("%-22s %12d %12d\n", "page walks", base.Walks, prop.Walks)
	fmt.Printf("\nspeedup: %.2f%%  |  LLT MPKI: %+.1f%%  |  LLC MPKI: %+.1f%%\n",
		100*(prop.IPC/base.IPC-1),
		100*(prop.LLTMPKI/base.LLTMPKI-1),
		100*(prop.LLCMPKI/base.LLCMPKI-1))
}

func runOnce(w deadpred.Workload, seed uint64, warmup, measure uint64, withPredictors bool) (deadpred.Result, error) {
	cfg := deadpred.DefaultConfig()
	cfg.Seed = seed
	sys, err := deadpred.New(cfg)
	if err != nil {
		return deadpred.Result{}, err
	}
	if withPredictors {
		if _, _, err := deadpred.AttachPaperPredictors(sys); err != nil {
			return deadpred.Result{}, err
		}
	}
	g := w.New(seed)
	if err := sys.Run(g, warmup); err != nil {
		return deadpred.Result{}, err
	}
	sys.StartMeasurement()
	if err := sys.Run(g, measure); err != nil {
		return deadpred.Result{}, err
	}
	return sys.Result(), nil
}
