// Graphsweep: compare TLB dead-page predictors across the graph-analytics
// workloads of the suite (GAPBS + Ligra + Graph500), the application class
// whose huge, sparsely-reused footprints motivate the paper.
//
//	go run ./examples/graphsweep
//	go run ./examples/graphsweep -warmup 5000 -n 20000   # smoke-test scale
package main

import (
	"flag"
	"fmt"
	"log"

	deadpred "repro"
	"repro/internal/exp"
	"repro/internal/trace"
)

func main() {
	var (
		warmup  = flag.Uint64("warmup", 0, "warmup accesses (0 = QuickParams default)")
		measure = flag.Uint64("n", 0, "measured accesses (0 = QuickParams default)")
	)
	flag.Parse()
	graphs := []string{"cc", "sssp", "Triangle", "KCore", "pr", "graph500", "bfs", "bc", "mis"}

	params := deadpred.QuickParams()
	if *warmup != 0 {
		params.Warmup = *warmup
	}
	if *measure != 0 {
		params.Measure = *measure
		params.SampleEvery = *measure / 40
	}
	r := exp.NewRunner(params)
	r.ProgressStart = func(w, s string) { fmt.Printf("  … %s under %s\n", w, s) }

	setups := []exp.Setup{exp.Baseline(), exp.DPPredSetup(), exp.SHiPTLBSetup(), exp.AIPTLBSetup()}

	fmt.Printf("%-10s %10s %10s %10s %10s   (normalized IPC; LLT MPKI reduction %%)\n",
		"workload", "baseline", "dpPred", "SHiP-TLB", "AIP-TLB")
	for _, name := range graphs {
		w, err := trace.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		results := make([]deadpred.Result, len(setups))
		for i, su := range setups {
			res, err := r.Run(w, su)
			if err != nil {
				log.Fatal(err)
			}
			results[i] = res
		}
		base := results[0]
		fmt.Printf("%-10s %10.4f", name, base.IPC)
		for _, res := range results[1:] {
			fmt.Printf(" %5.3fx/%+3.0f%%",
				res.IPC/base.IPC, 100*(base.LLTMPKI-res.LLTMPKI)/base.LLTMPKI)
		}
		fmt.Println()
	}
}
