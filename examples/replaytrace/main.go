// Replaytrace: record a workload's access trace to a file, then replay it
// through the simulator — the workflow for users who want to bring traces
// captured on real systems (convert them to the repository's binary format
// with cmd/tracedump as a template).
//
//	go run ./examples/replaytrace
//	go run ./examples/replaytrace -n 20000   # smoke-test scale
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	deadpred "repro"
)

func main() {
	nFlag := flag.Uint64("n", 400_000, "accesses to record (first quarter warms, next half measures)")
	flag.Parse()
	n := *nFlag
	w, err := deadpred.WorkloadByName("graph500")
	if err != nil {
		log.Fatal(err)
	}

	// Record the first n accesses to a temporary trace file.
	path := filepath.Join(os.TempDir(), "graph500.dptr")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := deadpred.RecordTrace(f, w.New(1), n); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("recorded %d accesses to %s (%.1f MB)\n\n", n, path,
		float64(info.Size())/(1<<20))
	defer os.Remove(path)

	// Replay the file through two machine configurations. The recorded
	// trace is identical for both runs — exactly the property that makes
	// trace-driven comparisons fair.
	for _, withPred := range []bool{false, true} {
		rf, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		gen, err := deadpred.NewReplayer(rf, false)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := deadpred.New(deadpred.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		label := "baseline     "
		if withPred {
			label = "dpPred+cbPred"
			if _, _, err := deadpred.AttachPaperPredictors(sys); err != nil {
				log.Fatal(err)
			}
		}
		if err := sys.Run(gen, n/4); err != nil { // warmup on the first quarter
			log.Fatal(err)
		}
		sys.StartMeasurement()
		if err := sys.Run(gen, n/2); err != nil {
			log.Fatal(err)
		}
		if err := gen.Err(); err != nil {
			log.Fatal(err)
		}
		res := sys.Result()
		fmt.Printf("%s  IPC %.4f  LLT MPKI %7.2f  walks %d\n",
			label, res.IPC, res.LLTMPKI, res.Walks)
		rf.Close()
	}
}
