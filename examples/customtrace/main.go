// Customtrace: define your own workload as a weighted mix of access
// streams and evaluate how much the paper's predictors help it. This is
// the API a downstream user would reach for to model their own
// application's access behaviour.
//
//	go run ./examples/customtrace
//	go run ./examples/customtrace -warmup 10000 -n 40000   # smoke-test scale
package main

import (
	"flag"
	"fmt"
	"log"

	deadpred "repro"
)

func main() {
	var (
		warmup  = flag.Uint64("warmup", 300_000, "warmup accesses before measurement")
		measure = flag.Uint64("n", 1_000_000, "measured accesses")
	)
	flag.Parse()
	// A key-value store shaped workload: a large hash table probed with
	// Zipf-skewed popularity, a log written sequentially, and a small
	// hot index. The skewed probe stream is the interesting one: its
	// cold tail is dead-on-arrival in the TLB while its hot head must
	// be protected.
	spec := deadpred.MixSpec{
		Name:   "kvstore",
		GapMin: 3, GapMax: 10,
		Streams: []deadpred.StreamSpec{
			{
				Label: "ht-probe", PC: 0x40_0000, PCCount: 16,
				Pattern: deadpred.PatternSkewed, SkewAlpha: 2.2,
				Base: 0x1000_0000, Size: 48 << 20, Weight: 6,
			},
			{
				Label: "log-append", PC: 0x41_0000, PCCount: 8,
				Pattern: deadpred.PatternSequential,
				Base:    0x8000_0000, Size: 32 << 20, Weight: 2, Write: true,
			},
			{
				Label: "index", PC: 0x42_0000, PCCount: 8,
				Pattern: deadpred.PatternRandom,
				Base:    0xC000_0000, Size: 2 << 20, Weight: 2,
			},
		},
	}

	for _, withPred := range []bool{false, true} {
		cfg := deadpred.DefaultConfig()
		sys, err := deadpred.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		label := "baseline     "
		if withPred {
			label = "dpPred+cbPred"
			if _, _, err := deadpred.AttachPaperPredictors(sys); err != nil {
				log.Fatal(err)
			}
		}
		g, err := deadpred.NewMix(spec, 7)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Run(g, *warmup); err != nil {
			log.Fatal(err)
		}
		sys.StartMeasurement()
		if err := sys.Run(g, *measure); err != nil {
			log.Fatal(err)
		}
		res := sys.Result()
		fmt.Printf("%s  IPC %.4f  LLT MPKI %7.3f  LLC MPKI %7.3f  walks %d\n",
			label, res.IPC, res.LLTMPKI, res.LLCMPKI, res.Walks)
	}
}
